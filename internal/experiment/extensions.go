package experiment

import (
	"fmt"
	"time"

	"github.com/drdp/drdp/internal/baseline"
	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/fed"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/stat"
)

// Table5PriorFitAblation compares the three cloud-side prior-construction
// algorithms (collapsed Gibbs, variational inference, DP-means) on the
// same task set: components recovered, build wall-clock, and downstream
// edge accuracy with the resulting prior.
func Table5PriorFitAblation(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title:   "Table 5: prior-construction ablation (mean over seeds)",
		Columns: []string{"fit", "components", "build ms", "edge acc (n=20)"},
	}
	type fitSpec struct {
		name string
		run  func(tasks []dpprior.TaskPosterior, seed int64) (*dpprior.Prior, error)
	}
	specs := []fitSpec{
		{"gibbs", func(tasks []dpprior.TaskPosterior, seed int64) (*dpprior.Prior, error) {
			return dpprior.Build(tasks, dpprior.BuildOptions{Alpha: 1, Seed: seed})
		}},
		{"variational", func(tasks []dpprior.TaskPosterior, seed int64) (*dpprior.Prior, error) {
			return dpprior.BuildVariational(tasks, 0, dpprior.BuildOptions{Alpha: 1})
		}},
		{"dp-means", func(tasks []dpprior.TaskPosterior, seed int64) (*dpprior.Prior, error) {
			return dpprior.BuildDPMeans(tasks, 2.5, dpprior.BuildOptions{Alpha: 1})
		}},
	}
	for _, spec := range specs {
		var comps, ms, accs []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			start := time.Now()
			prior, err := spec.run(b.Posteriors, seed)
			if err != nil {
				return nil, fmt.Errorf("table5: %s: %w", spec.name, err)
			}
			ms = append(ms, float64(time.Since(start).Microseconds())/1000)
			comps = append(comps, float64(len(prior.Components)))
			compiled, err := dpprior.Compile(prior)
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(20, testSamples)
			tr := DRDPTrainer{Model: b.Model,
				Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05}, Prior: compiled}
			params, err := tr.Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			accs = append(accs, model.Accuracy(b.Model, params, test.X, test.Y))
		}
		tab.AddRow(spec.name,
			fmt.Sprintf("%.1f", Aggregate(comps).Mean),
			fmt.Sprintf("%.2f", Aggregate(ms).Mean),
			Aggregate(accs).String())
	}
	return tab, nil
}

// Table6StochasticMStep compares the full-batch and minibatch M-step
// solvers as the edge dataset grows: accuracy and training wall-clock.
func Table6StochasticMStep(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{500, 2000, 5000}
	if cfg.Fast {
		sizes = []int{500, 2000}
	}
	tab := &Table{
		Title:   "Table 6: full-batch vs minibatch M-step (mean over seeds)",
		Columns: []string{"n", "batch acc", "batch ms", "sgd acc", "sgd ms"},
	}
	for _, n := range sizes {
		var bAcc, bMs, sAcc, sMs []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(n, testSamples)

			run := func(opts ...core.Option) (float64, float64, error) {
				base := []core.Option{
					core.WithPrior(b.Compiled),
					core.WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.02}),
					core.WithEMIters(5, 1e-7),
				}
				l, err := core.New(b.Model, append(base, opts...)...)
				if err != nil {
					return 0, 0, err
				}
				start := time.Now()
				res, err := l.Fit(train.X, train.Y)
				if err != nil {
					return 0, 0, err
				}
				elapsed := float64(time.Since(start).Microseconds()) / 1000
				return model.Accuracy(b.Model, res.Params, test.X, test.Y), elapsed, nil
			}
			acc, msV, err := run()
			if err != nil {
				return nil, fmt.Errorf("table6 batch n=%d: %w", n, err)
			}
			bAcc, bMs = append(bAcc, acc), append(bMs, msV)
			acc, msV, err = run(core.WithStochasticMStep(64, 3, 0.05, seed))
			if err != nil {
				return nil, fmt.Errorf("table6 sgd n=%d: %w", n, err)
			}
			sAcc, sMs = append(sAcc, acc), append(sMs, msV)
		}
		tab.AddRow(fmt.Sprintf("%d", n),
			Aggregate(bAcc).String(), fmt.Sprintf("%.1f", Aggregate(bMs).Mean),
			Aggregate(sAcc).String(), fmt.Sprintf("%.1f", Aggregate(sMs).Mean))
	}
	return tab, nil
}

// Table8SolverAblation compares the three inner M-step solvers on the
// same robust problem: subgradient GD (default), proximal GD (exact prox
// of the Wasserstein penalty) and minibatch Adam. Reported at a moderate
// and an aggressive radius: final objective, wall-clock, and the weight-
// block norm (the proximal solver reaches exact zero at large ρ).
func Table8SolverAblation(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title:   "Table 8: inner-solver ablation (n=100, mean over seeds)",
		Columns: []string{"rho", "solver", "objective", "ms", "|w|"},
	}
	type spec struct {
		name string
		opts []core.Option
	}
	specs := []spec{
		{"subgradient-gd", nil},
		{"proximal-gd", []core.Option{core.WithProximalMStep()}},
		{"lbfgs", []core.Option{core.WithLBFGSMStep(8)}},
		{"minibatch-adam", []core.Option{core.WithStochasticMStep(32, 6, 0.05, 1)}},
	}
	for _, rho := range []float64{0.1, 2} {
		for _, sp := range specs {
			var objs, ms, norms []float64
			for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
				b, err := cfg.scenario(seed).Build()
				if err != nil {
					return nil, err
				}
				train, _ := b.EdgeData(100, 2)
				base := []core.Option{
					core.WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: rho}),
					core.WithPrior(b.Compiled),
					core.WithEMIters(8, 1e-8),
				}
				l, err := core.New(b.Model, append(base, sp.opts...)...)
				if err != nil {
					return nil, fmt.Errorf("table8: %s: %w", sp.name, err)
				}
				start := time.Now()
				res, err := l.Fit(train.X, train.Y)
				if err != nil {
					return nil, fmt.Errorf("table8: %s: %w", sp.name, err)
				}
				ms = append(ms, float64(time.Since(start).Microseconds())/1000)
				objs = append(objs, res.Objective)
				norms = append(norms, normOfWeights(res.Params, b.Model.Dim))
			}
			tab.AddRow(fmt.Sprintf("%g", rho), sp.name,
				fmt.Sprintf("%.4f", Aggregate(objs).Mean),
				fmt.Sprintf("%.1f", Aggregate(ms).Mean),
				fmt.Sprintf("%.4f", Aggregate(norms).Mean))
		}
	}
	return tab, nil
}

func normOfWeights(params []float64, dim int) float64 {
	var s float64
	for _, v := range params[:dim] {
		s += v * v
	}
	return sqrt(s)
}

// Figure7FedAvgComparison compares per-device accuracy of DRDP (one
// prior, local robust training) against a FedAvg global model and local
// ERM as the device tasks grow more heterogeneous.
func Figure7FedAvgComparison(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	spreads := []float64{0.1, 0.5, 1, 2}
	if cfg.Fast {
		spreads = []float64{0.1, 1}
	}
	const devices = 8
	const perDevice = 30
	ser := &Series{
		Title:  "Figure 7: mean per-device accuracy vs task heterogeneity",
		XLabel: "within-cluster spread",
		X:      spreads,
	}
	fedAcc := make([]float64, len(spreads))
	drdpAcc := make([]float64, len(spreads))
	localAcc := make([]float64, len(spreads))
	for si, spread := range spreads {
		var fa, da, la []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			s := cfg.scenario(seed)
			s.Within = spread
			b, err := s.Build()
			if err != nil {
				return nil, err
			}
			rng := b.RNG()

			// Each device draws its own task from cluster 0 of the family
			// (heterogeneity grows with the within-cluster spread).
			tasks := make([]data.LinearTask, devices)
			clients := make([]fed.ClientData, devices)
			trains := make([]*data.Dataset, devices)
			tests := make([]*data.Dataset, devices)
			for dvc := range tasks {
				tasks[dvc] = b.Family.SampleTask(rng, 0)
				tasks[dvc].Flip = s.Flip
				trains[dvc] = tasks[dvc].Sample(rng, perDevice)
				tests[dvc] = tasks[dvc].Sample(rng, 500)
				clients[dvc] = fed.ClientData{X: trains[dvc].X, Y: trains[dvc].Y}
			}

			fedRes, err := fed.Run(b.Model, clients, fed.Config{Rounds: 15, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("figure7: fedavg: %w", err)
			}
			var fSum, dSum, lSum float64
			for dvc := range tasks {
				fSum += model.Accuracy(b.Model, fedRes.Global, tests[dvc].X, tests[dvc].Y)

				tr := DRDPTrainer{Model: b.Model,
					Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05}, Prior: b.Compiled}
				params, err := tr.Train(trains[dvc].X, trains[dvc].Y)
				if err != nil {
					return nil, err
				}
				dSum += model.Accuracy(b.Model, params, tests[dvc].X, tests[dvc].Y)

				lp, err := (baseline.ERM{Model: b.Model}).Train(trains[dvc].X, trains[dvc].Y)
				if err != nil {
					return nil, err
				}
				lSum += model.Accuracy(b.Model, lp, tests[dvc].X, tests[dvc].Y)
			}
			fa = append(fa, fSum/devices)
			da = append(da, dSum/devices)
			la = append(la, lSum/devices)
		}
		fedAcc[si] = Aggregate(fa).Mean
		drdpAcc[si] = Aggregate(da).Mean
		localAcc[si] = Aggregate(la).Mean
	}
	ser.Add("fedavg-global", fedAcc)
	ser.Add("drdp", drdpAcc)
	ser.Add("local-erm", localAcc)
	return ser, nil
}

// Figure8OnlineLearning tracks a data stream at one device: accuracy of
// the warm-started online learner vs retraining from scratch at every
// batch, plus their cumulative training time (milliseconds).
func Figure8OnlineLearning(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	batches := 8
	if cfg.Fast {
		batches = 4
	}
	const batchSize = 25
	s := cfg.scenario(cfg.Seed)
	b, err := s.Build()
	if err != nil {
		return nil, err
	}
	rng := stat.NewRNG(cfg.Seed + 99)
	task := b.Family.SampleTask(rng, 0)
	task.Flip = s.Flip
	test := task.Sample(rng, testSamples)

	mkLearner := func() (*core.Learner, error) {
		return core.New(b.Model,
			core.WithPrior(b.Compiled),
			core.WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
			core.WithEMIters(10, 1e-7))
	}
	l, err := mkLearner()
	if err != nil {
		return nil, err
	}
	online, err := core.NewOnline(l)
	if err != nil {
		return nil, err
	}

	xs := make([]float64, batches)
	accOnline := make([]float64, batches)
	accScratch := make([]float64, batches)
	cumOnline := make([]float64, batches)
	cumScratch := make([]float64, batches)
	var seenX *data.Dataset
	var onlineTotal, scratchTotal float64
	for i := 0; i < batches; i++ {
		xs[i] = float64((i + 1) * batchSize)
		batch := task.Sample(rng, batchSize)
		if seenX == nil {
			seenX = batch.Clone()
		} else {
			merged, err := seenX.Concat(batch)
			if err != nil {
				return nil, err
			}
			seenX = merged
		}

		start := time.Now()
		res, err := online.Observe(batch.X, batch.Y)
		if err != nil {
			return nil, err
		}
		onlineTotal += float64(time.Since(start).Microseconds()) / 1000
		accOnline[i] = model.Accuracy(b.Model, res.Params, test.X, test.Y)
		cumOnline[i] = onlineTotal

		scratch, err := mkLearner()
		if err != nil {
			return nil, err
		}
		start = time.Now()
		sres, err := scratch.Fit(seenX.X, seenX.Y)
		if err != nil {
			return nil, err
		}
		scratchTotal += float64(time.Since(start).Microseconds()) / 1000
		accScratch[i] = model.Accuracy(b.Model, sres.Params, test.X, test.Y)
		cumScratch[i] = scratchTotal
	}
	ser := &Series{
		Title:  "Figure 8: streaming edge data — warm-started online vs scratch retraining",
		XLabel: "samples seen",
		X:      xs,
	}
	ser.Add("acc-online", accOnline)
	ser.Add("acc-scratch", accScratch)
	ser.Add("cum-ms-online", cumOnline)
	ser.Add("cum-ms-scratch", cumScratch)
	return ser, nil
}
