package experiment

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/wire"
)

// Table16WireSpeed measures the wire subsystem against the gob baseline
// it retires from the hot path, at two levels:
//
//   - Micro: encode/decode ns/op and allocs/op for the two hot messages
//     (a batched upload request, a prior response), binary vs a
//     persistent gob stream. The binary decode rows must show 0
//     allocs/op — the codec's core promise, also gated by
//     TestBinaryDecodeAllocBudget in internal/wire.
//   - End to end: upload rounds/sec against a REAL cloud server on
//     loopback with 1000 devices (reduced in fast mode). The binary
//     path is the new hot path — devices share multiplexed connections
//     and each round ships as one BatchAddTask frame per connection;
//     the gob path is the retired one — per-task sequential uploads
//     over plain gob clients. The "vs gob" column is the speedup; the
//     acceptance target is ≥5×.
func Table16WireSpeed(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title:   "Table 16: wire subsystem — fixed-layout binary codec vs gob (micro + end-to-end)",
		Columns: []string{"bench", "codec", "metric", "allocs/op", "vs gob"},
	}
	const dim = 8

	// ----- micro: the hot upload request and the hot download response.
	req := &wire.Request{Kind: wire.BatchAddTask, Tasks: wireTasks(cfg.Seed, 16, dim)}
	prior, err := dpprior.Build(wireTasks(cfg.Seed+1, 40, dim), dpprior.BuildOptions{Alpha: 1, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("table16: build prior: %w", err)
	}
	resp := &wire.Response{Prior: prior, Version: 1}

	micro := []struct {
		name   string
		binary func(b *testing.B)
		gob    func(b *testing.B)
	}{
		{
			name: "encode batch(16 tasks)",
			binary: func(b *testing.B) {
				var buf []byte
				for i := 0; i < b.N; i++ {
					buf = wire.AppendRequest(buf[:0], req)
				}
			},
			gob: gobEncodeBench(req),
		},
		{
			name: "decode batch(16 tasks)",
			binary: func(b *testing.B) {
				payload := wire.AppendRequest(nil, req)
				var out wire.Request
				if err := wire.DecodeRequest(payload, &out, true); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := wire.DecodeRequest(payload, &out, true); err != nil {
						b.Fatal(err)
					}
				}
			},
			gob: gobDecodeBench(req, func() *wire.Request { return new(wire.Request) }),
		},
		{
			name: "encode prior response",
			binary: func(b *testing.B) {
				var buf []byte
				for i := 0; i < b.N; i++ {
					buf = wire.AppendResponse(buf[:0], resp)
				}
			},
			gob: gobEncodeBench(resp),
		},
		{
			name: "decode prior response",
			binary: func(b *testing.B) {
				payload := wire.AppendResponse(nil, resp)
				var out wire.Response
				if err := wire.DecodeResponse(payload, &out, true); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := wire.DecodeResponse(payload, &out, true); err != nil {
						b.Fatal(err)
					}
				}
			},
			gob: gobDecodeBench(resp, func() *wire.Response { return new(wire.Response) }),
		},
	}
	for _, m := range micro {
		br := testing.Benchmark(m.binary)
		gr := testing.Benchmark(m.gob)
		speedup := float64(gr.NsPerOp()) / float64(br.NsPerOp())
		tab.AddRow(m.name, "binary",
			fmt.Sprintf("%d ns/op", br.NsPerOp()),
			fmt.Sprintf("%d", br.AllocsPerOp()),
			fmt.Sprintf("%.1fx", speedup))
		tab.AddRow(m.name, "gob",
			fmt.Sprintf("%d ns/op", gr.NsPerOp()),
			fmt.Sprintf("%d", gr.AllocsPerOp()), "-")
	}

	// ----- end to end: a device fleet uploading rounds against a real
	// server, new hot path vs retired hot path.
	devices, conns, rounds := 1000, 32, 4
	if cfg.Fast {
		devices, conns, rounds = 64, 8, 3
	}
	var binRPS, gobRPS []float64
	for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
		b, err := wireE2E(devices, conns, rounds, dim, true, seed)
		if err != nil {
			return nil, fmt.Errorf("table16: e2e binary seed=%d: %w", seed, err)
		}
		g, err := wireE2E(devices, conns, rounds, dim, false, seed)
		if err != nil {
			return nil, fmt.Errorf("table16: e2e gob seed=%d: %w", seed, err)
		}
		binRPS = append(binRPS, b)
		gobRPS = append(gobRPS, g)
	}
	bm, gm := Aggregate(binRPS).Mean, Aggregate(gobRPS).Mean
	e2eName := fmt.Sprintf("e2e upload (%d devices)", devices)
	tab.AddRow(e2eName, "binary",
		fmt.Sprintf("%.1f rounds/s", bm), "-",
		fmt.Sprintf("%.1fx", bm/gm))
	tab.AddRow(e2eName, "gob",
		fmt.Sprintf("%.1f rounds/s", gm), "-", "-")
	return tab, nil
}

// wireTasks generates a deterministic device workload.
func wireTasks(seed int64, k, dim int) []dpprior.TaskPosterior {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]dpprior.TaskPosterior, k)
	for i := range tasks {
		mu := make(mat.Vec, dim)
		for j := range mu {
			mu[j] = rng.NormFloat64()
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(0.1)
		tasks[i] = dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
	}
	return tasks
}

// gobEncodeBench measures a persistent gob stream's per-message encode
// — type definitions paid once, as on a live connection.
func gobEncodeBench(v any) func(b *testing.B) {
	return func(b *testing.B) {
		enc := gob.NewEncoder(io.Discard)
		if err := enc.Encode(v); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// gobDecodeBench measures a persistent gob stream's per-message decode
// by replaying one value's bytes behind a decoder that has already
// consumed the stream's type definitions.
func gobDecodeBench[T any](v any, newOut func() *T) func(b *testing.B) {
	return func(b *testing.B) {
		var head, msg []byte
		{
			var buf []byte
			w := &sliceWriter{buf: &buf}
			enc := gob.NewEncoder(w)
			if err := enc.Encode(v); err != nil {
				b.Fatal(err)
			}
			n := len(buf)
			if err := enc.Encode(v); err != nil {
				b.Fatal(err)
			}
			head, msg = buf[:n], buf[n:]
		}
		r := &replayReader{head: head, msg: msg}
		dec := gob.NewDecoder(r)
		out := newOut()
		if err := dec.Decode(out); err != nil { // consumes the head value
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dec.Decode(out); err != nil {
				b.Fatal(err)
			}
		}
	}
}

type sliceWriter struct{ buf *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// replayReader serves a gob stream's head once, then replays one
// message's bytes forever.
type replayReader struct {
	head []byte
	msg  []byte
	off  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if len(r.head) > 0 {
		n := copy(p, r.head)
		r.head = r.head[n:]
		return n, nil
	}
	if r.off == len(r.msg) {
		r.off = 0
	}
	n := copy(p, r.msg[r.off:])
	r.off += n
	return n, nil
}

// wireE2E runs one upload workload against a real cloud server on
// loopback and returns rounds/sec. Binary mode is the multiplexed
// batched hot path; gob mode is the retired per-task sequential path.
// Each round also refreshes the prior once per run (the read path),
// tolerating a cold cloud while the first rebuild is in flight.
func wireE2E(devices, conns, rounds, dim int, binary bool, seed int64) (float64, error) {
	srv, err := edge.NewCloudServer(nil, dpprior.BuildOptions{Alpha: 1, Seed: seed}, telemetry.Discard())
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	addrCh := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe("127.0.0.1:0", addrCh) }()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-serveErr:
		return 0, err
	}

	tasks := wireTasks(seed+1, devices, dim)
	shard := func(ci int) []dpprior.TaskPosterior {
		return tasks[ci*devices/conns : (ci+1)*devices/conns]
	}

	fetch := func(c interface {
		FetchPrior(dim int) (*dpprior.Prior, uint64, error)
	}) error {
		if _, _, err := c.FetchPrior(dim); err != nil && !errors.Is(err, edge.ErrNoPrior) {
			return err
		}
		return nil
	}

	if binary {
		muxes := make([]*edge.MuxClient, conns)
		for i := range muxes {
			m, err := edge.DialMux(addr, 2*time.Second, wire.PreferAuto)
			if err != nil {
				return 0, err
			}
			defer m.Close()
			muxes[i] = m
		}
		if muxes[0].Codec() != wire.CodecBinary {
			return 0, fmt.Errorf("e2e binary run negotiated %v", muxes[0].Codec())
		}
		start := time.Now()
		for r := 0; r < rounds; r++ {
			errCh := make(chan error, conns)
			var wg sync.WaitGroup
			for ci := 0; ci < conns; ci++ {
				wg.Add(1)
				go func(m *edge.MuxClient, batch []dpprior.TaskPosterior) {
					defer wg.Done()
					if _, _, err := m.BatchReportTasks(batch); err != nil {
						errCh <- err
					}
				}(muxes[ci], shard(ci))
			}
			wg.Wait()
			close(errCh)
			if err := <-errCh; err != nil {
				return 0, err
			}
			if err := fetch(muxes[0]); err != nil {
				return 0, err
			}
		}
		return float64(rounds) / time.Since(start).Seconds(), nil
	}

	clients := make([]*edge.Client, conns)
	for i := range clients {
		c, err := edge.DialPreference(addr, 2*time.Second, wire.PreferGob)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		clients[i] = c
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		errCh := make(chan error, conns)
		var wg sync.WaitGroup
		for ci := 0; ci < conns; ci++ {
			wg.Add(1)
			go func(c *edge.Client, batch []dpprior.TaskPosterior) {
				defer wg.Done()
				for _, t := range batch {
					if _, err := c.ReportTask(t); err != nil {
						errCh <- err
						return
					}
				}
			}(clients[ci], shard(ci))
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			return 0, err
		}
		if err := fetch(clients[0]); err != nil {
			return 0, err
		}
	}
	return float64(rounds) / time.Since(start).Seconds(), nil
}
