package experiment

import (
	"fmt"

	"github.com/drdp/drdp/internal/baseline"
	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/metrics"
	"github.com/drdp/drdp/internal/model"
)

// Figure9CertificateValidity verifies the Wasserstein duality end to end:
// for each radius ρ, the robust-training certificate (worst-case expected
// loss over the ball) must upper-bound the loss actually realized when
// every training sample is adversarially transported by exactly ρ — a
// distribution inside the ball. Reported: certificate, realized attacked
// loss, and clean loss.
func Figure9CertificateValidity(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	rhos := []float64{0.01, 0.05, 0.1, 0.3, 0.6}
	if cfg.Fast {
		rhos = []float64{0.05, 0.3}
	}
	ser := &Series{
		Title:  "Figure 9: Wasserstein certificate vs realized adversarial loss (n=50)",
		XLabel: "rho",
		X:      rhos,
	}
	certs := make([]float64, len(rhos))
	attacked := make([]float64, len(rhos))
	clean := make([]float64, len(rhos))
	for i, rho := range rhos {
		var cs, as, cl []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			train, _ := b.EdgeData(50, 2)
			set := dro.Set{Kind: dro.Wasserstein, Rho: rho}
			tr := DRDPTrainer{Model: b.Model, Set: set, Prior: b.Compiled}
			params, err := tr.Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			losses := b.Model.Losses(params, train.X, train.Y, nil)
			cert, _ := set.WorstCase(losses, b.Model.Lipschitz(params))
			cs = append(cs, cert)
			cl = append(cl, mat.Mean(losses))

			// Realize the attack: transport every sample by exactly ρ in
			// its loss-increasing direction (a feasible distribution).
			adv, err := data.AdversarialShift(train, params[:b.Model.Dim], rho)
			if err != nil {
				return nil, err
			}
			advLosses := b.Model.Losses(params, adv.X, adv.Y, nil)
			realized := mat.Mean(advLosses)
			if realized > cert+1e-6 {
				return nil, fmt.Errorf("figure9: certificate violated at rho=%g seed=%d: %g > %g",
					rho, seed, realized, cert)
			}
			as = append(as, realized)
		}
		certs[i] = Aggregate(cs).Mean
		attacked[i] = Aggregate(as).Mean
		clean[i] = Aggregate(cl).Mean
	}
	ser.Add("certificate", certs)
	ser.Add("attacked-loss", attacked)
	ser.Add("clean-loss", clean)
	return ser, nil
}

// Figure12GroundMetric cross-evaluates Wasserstein ground metrics: a
// model trained under each transport cost (ℓ2 and ℓ∞ grounds) and plain
// ERM, attacked with the ℓ2-direction attack and the ℓ∞ sign attack at
// matched budgets. Each geometry should defend best against its own
// attack class.
func Figure12GroundMetric(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	budgets := []float64{0, 0.1, 0.2, 0.4}
	if cfg.Fast {
		budgets = []float64{0, 0.2}
	}
	ser := &Series{
		Title:  "Figure 12: accuracy under sign (ℓ∞) attack by training geometry (n=150)",
		XLabel: "linf budget",
		X:      budgets,
	}
	type spec struct {
		name string
		opts []core.Option
	}
	specs := []spec{
		{"erm", nil},
		{"ground-l2", []core.Option{
			core.WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.1})}},
		{"ground-linf", []core.Option{
			core.WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
			core.WithGroundMetric(dro.GroundLInf)}},
	}
	results := make([][]float64, len(specs))
	for i := range results {
		results[i] = make([]float64, len(budgets))
	}
	for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
		b, err := cfg.scenario(seed).Build()
		if err != nil {
			return nil, err
		}
		train, test := b.EdgeData(150, testSamples)
		params := make([]mat.Vec, len(specs))
		for si, sp := range specs {
			l, err := core.New(b.Model, sp.opts...)
			if err != nil {
				return nil, fmt.Errorf("figure12: %s: %w", sp.name, err)
			}
			res, err := l.Fit(train.X, train.Y)
			if err != nil {
				return nil, fmt.Errorf("figure12: %s: %w", sp.name, err)
			}
			params[si] = res.Params
		}
		truth := b.EdgeTask.W
		for bi, budget := range budgets {
			attacked := test
			if budget > 0 {
				attacked, err = data.AdversarialShiftLInf(test, truth, budget)
				if err != nil {
					return nil, err
				}
			}
			for si := range specs {
				results[si][bi] += model.Accuracy(b.Model, params[si], attacked.X, attacked.Y) /
					float64(cfg.Reps)
			}
		}
	}
	for si, sp := range specs {
		ser.Add(sp.name, results[si])
	}
	return ser, nil
}

// Table11AlphaSelection evaluates empirical-Bayes concentration
// selection: cloud task sets with different true structure (tight
// clusters vs scattered singletons) and the α that dpprior.SelectAlpha
// picks for each, with the resulting component count and edge accuracy.
func Table11AlphaSelection(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title:   "Table 11: empirical-Bayes α selection (mean over seeds)",
		Columns: []string{"cloud structure", "selected α", "components", "edge acc (n=20)"},
	}
	type regime struct {
		name     string
		clusters int
		within   float64
	}
	regimes := []regime{
		{"2 tight clusters", 2, 0.2},
		{"4 clusters", 4, 0.3},
		{"scattered (12 singletons)", 12, 1.5},
	}
	if cfg.Fast {
		regimes = regimes[:2]
	}
	for _, r := range regimes {
		var alphas, comps, accs []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			s := cfg.scenario(seed)
			s.Clusters = r.clusters
			s.CloudTasks = 12
			s.Within = r.within
			b, err := s.Build()
			if err != nil {
				return nil, err
			}
			alpha, prior, err := dpprior.SelectAlpha(b.Posteriors, dpprior.BuildOptions{Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("table11: %s: %w", r.name, err)
			}
			alphas = append(alphas, alpha)
			comps = append(comps, float64(len(prior.Components)))
			compiled, err := dpprior.Compile(prior)
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(20, testSamples)
			tr := DRDPTrainer{Model: b.Model,
				Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05}, Prior: compiled}
			params, err := tr.Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			accs = append(accs, model.Accuracy(b.Model, params, test.X, test.Y))
		}
		tab.AddRow(r.name,
			fmt.Sprintf("%.3f", Aggregate(alphas).Mean),
			fmt.Sprintf("%.1f", Aggregate(comps).Mean),
			Aggregate(accs).String())
	}
	return tab, nil
}

// Table10Imbalance measures rare-event detection at the edge: the
// positive class shrinks from balanced to 5 %, and χ²-DRO — which
// upweights high-loss (minority) samples — is compared with plain ERM
// and the prior-assisted learner on AUC and minority recall.
func Table10Imbalance(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	fracs := []float64{0.5, 0.2, 0.1, 0.05}
	if cfg.Fast {
		fracs = []float64{0.5, 0.1}
	}
	tab := &Table{
		Title:   "Table 10: class imbalance (n=120; AUC / minority recall, mean over seeds)",
		Columns: []string{"pos frac", "erm AUC", "erm recall", "chi2 AUC", "chi2 recall", "drdp AUC", "drdp recall"},
	}
	for _, frac := range fracs {
		var eAUC, eRec, cAUC, cRec, dAUC, dRec []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			train, err := b.EdgeTask.SampleImbalanced(b.RNG(), 120, frac)
			if err != nil {
				return nil, err
			}
			test, err := b.EdgeTask.SampleImbalanced(b.RNG(), testSamples, frac)
			if err != nil {
				return nil, err
			}
			eval := func(tr baseline.Trainer, aucs, recs *[]float64) error {
				params, err := tr.Train(train.X, train.Y)
				if err != nil {
					return err
				}
				auc, err := metrics.AUC(func(x mat.Vec) float64 {
					return b.Model.Proba(params, x)
				}, test)
				if err != nil {
					return err
				}
				rec, err := metrics.MinorityRecall(b.Model, params, test)
				if err != nil {
					return err
				}
				*aucs = append(*aucs, auc)
				*recs = append(*recs, rec)
				return nil
			}
			if err := eval(baseline.ERM{Model: b.Model}, &eAUC, &eRec); err != nil {
				return nil, fmt.Errorf("table10 erm: %w", err)
			}
			if err := eval(baseline.DRO{Model: b.Model,
				Set: dro.Set{Kind: dro.Chi2, Rho: 0.3}}, &cAUC, &cRec); err != nil {
				return nil, fmt.Errorf("table10 chi2: %w", err)
			}
			if err := eval(DRDPTrainer{Model: b.Model,
				Set: dro.Set{Kind: dro.Chi2, Rho: 0.3}, Prior: b.Compiled}, &dAUC, &dRec); err != nil {
				return nil, fmt.Errorf("table10 drdp: %w", err)
			}
		}
		tab.AddRow(fmt.Sprintf("%g", frac),
			fmt.Sprintf("%.3f", Aggregate(eAUC).Mean), fmt.Sprintf("%.3f", Aggregate(eRec).Mean),
			fmt.Sprintf("%.3f", Aggregate(cAUC).Mean), fmt.Sprintf("%.3f", Aggregate(cRec).Mean),
			fmt.Sprintf("%.3f", Aggregate(dAUC).Mean), fmt.Sprintf("%.3f", Aggregate(dRec).Mean))
	}
	return tab, nil
}

// Table7Calibration compares probabilistic calibration (ECE, lower is
// better) and test NLL of DRDP against the local baselines at small n:
// the prior's regularization should temper the overconfidence of
// small-sample maximum likelihood.
func Table7Calibration(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	const n = 30
	tab := &Table{
		Title:   "Table 7: calibration at n=30 (mean over seeds; ECE lower is better)",
		Columns: []string{"method", "ECE", "test NLL", "test acc"},
	}
	type spec struct {
		name string
		mk   func(b *Built) baseline.Trainer
	}
	specs := []spec{
		{"local-erm", func(b *Built) baseline.Trainer { return baseline.ERM{Model: b.Model} }},
		{"local-ridge", func(b *Built) baseline.Trainer { return baseline.Ridge{Model: b.Model, Lambda: 0.1} }},
		{"drdp", func(b *Built) baseline.Trainer {
			return DRDPTrainer{Model: b.Model,
				Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05}, Prior: b.Compiled}
		}},
	}
	for _, sp := range specs {
		var eces, nlls, accs []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(n, testSamples)
			params, err := sp.mk(b).Train(train.X, train.Y)
			if err != nil {
				return nil, fmt.Errorf("table7: %s: %w", sp.name, err)
			}
			ece, err := metrics.ECE(func(x mat.Vec) float64 {
				return b.Model.Proba(params, x)
			}, test, 10)
			if err != nil {
				return nil, err
			}
			rep := metrics.Evaluate(b.Model, params, test, dro.Set{})
			eces = append(eces, ece)
			nlls = append(nlls, rep.NLL)
			accs = append(accs, rep.Accuracy)
		}
		tab.AddRow(sp.name,
			fmt.Sprintf("%.4f", Aggregate(eces).Mean),
			fmt.Sprintf("%.4f", Aggregate(nlls).Mean),
			Aggregate(accs).String())
	}
	return tab, nil
}
