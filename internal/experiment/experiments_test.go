package experiment

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/drdp/drdp/internal/em"
	"github.com/drdp/drdp/internal/telemetry"
)

// fastCfg keeps the smoke tests quick while exercising every runner.
func fastCfg() RunConfig { return RunConfig{Reps: 1, Seed: 11, Fast: true} }

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	tab, err := Table1SampleEfficiency(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Errorf("expected 7 method rows, got %d", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "drdp") {
		t.Error("drdp row missing")
	}
}

func TestTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	tab, err := Table2ShiftRobustness(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tab.Rows))
	}
}

func TestTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner (slow: 650-dim softmax); skip in -short")
	}
	tab, err := Table3Digits(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tab.Rows))
	}
}

func TestTable4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	tab, err := Table4SystemsCost(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Error("no rows")
	}
	// Wire size must grow in the component count within a dim block, and
	// 3g must always be slower than wifi (sanity of the link model).
	for _, row := range tab.Rows {
		if row[4] >= row[6] && row[4] == row[6] {
			t.Errorf("wifi %s not faster than 3g %s", row[4], row[6])
		}
	}
}

func TestFigureSmokes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners; skip in -short")
	}
	cfg := fastCfg()
	figs := []struct {
		name string
		run  func(RunConfig) (*Series, error)
	}{
		{"fig1", Figure1RadiusSweep},
		{"fig2", Figure2AlphaSweep},
		{"fig4", Figure4CloudTasks},
		{"fig5", Figure5SetAblation},
		{"fig6", Figure6MultiDevice},
		{"fig7", Figure7FedAvgComparison},
		{"fig8", Figure8OnlineLearning},
		{"fig9", Figure9CertificateValidity},
		{"fig11", Figure11DriftTracking},
		{"fig12", Figure12GroundMetric},
	}
	for _, f := range figs {
		t.Run(f.name, func(t *testing.T) {
			ser, err := f.run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(ser.X) == 0 || len(ser.Names) == 0 {
				t.Fatalf("empty series %+v", ser)
			}
			var buf bytes.Buffer
			if err := ser.Render(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTable5And6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners; skip in -short")
	}
	cfg := fastCfg()
	t5, err := Table5PriorFitAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 3 {
		t.Errorf("table5 rows %d, want 3 (gibbs/variational/dp-means)", len(t5.Rows))
	}
	t6, err := Table6StochasticMStep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) == 0 {
		t.Error("table6 empty")
	}
	t7, err := Table7Calibration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 3 {
		t.Errorf("table7 rows %d, want 3", len(t7.Rows))
	}
	t8, err := Table8SolverAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 8 {
		t.Errorf("table8 rows %d, want 8 (4 solvers × 2 radii)", len(t8.Rows))
	}
	t9, err := Table9Deployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t9.Rows) != 4 { // 2 links (fast) × 2 policies
		t.Errorf("table9 rows %d, want 4", len(t9.Rows))
	}
	f10, err := Figure10Compression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.X) != 3 {
		t.Errorf("figure10 levels %d, want 3", len(f10.X))
	}
	t10, err := Table10Imbalance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 2 { // fast mode: 2 fractions
		t.Errorf("table10 rows %d, want 2", len(t10.Rows))
	}
	t11, err := Table11AlphaSelection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t11.Rows) != 2 { // fast mode: 2 regimes
		t.Errorf("table11 rows %d, want 2", len(t11.Rows))
	}
	t12, err := Table12LossyLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t12.Rows) != 3 { // fast mode: 3 loss rates
		t.Errorf("table12 rows %d, want 3", len(t12.Rows))
	}
	// Compression must strictly shrink the wire size.
	if !(f10.Y[0][2] < f10.Y[0][1] && f10.Y[0][1] < f10.Y[0][0]) {
		t.Errorf("wire sizes not decreasing: %v", f10.Y[0])
	}
}

func TestFigure3ConvergenceMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	ser, err := Figure3Convergence(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ser.Y) != 1 {
		t.Fatalf("expected one series, got %d", len(ser.Y))
	}
	if err := em.CheckMonotone(ser.Y[0], 1e-6); err != nil {
		t.Errorf("convergence trace not monotone: %v", err)
	}
	if len(ser.Y[0]) < 3 {
		t.Errorf("trace too short: %v", ser.Y[0])
	}
}

// TestExperimentTelemetryFootprint checks that running an experiment
// leaves a training footprint in the process-wide registry — the same
// counters drdp-bench -json records per experiment.
func TestExperimentTelemetryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	before := telemetry.Snapshot()
	if _, err := Table1SampleEfficiency(fastCfg()); err != nil {
		t.Fatal(err)
	}
	after := telemetry.Snapshot()
	fits := after.CounterDelta(before, "drdp_core_fits_total")
	iters := after.CounterDelta(before, "drdp_core_em_iterations_total")
	if fits <= 0 || iters < fits {
		t.Errorf("implausible training footprint: %g fits, %g EM iterations", fits, iters)
	}
	hb, _ := after.Histogram("drdp_core_fit_seconds")
	ha, _ := before.Histogram("drdp_core_fit_seconds")
	if d := hb.Delta(ha); float64(d.Count) != fits {
		t.Errorf("fit-seconds observations %d != fits %g", d.Count, fits)
	}
}

// TestTable14Smoke runs the poisoned-edge sweep in fast mode and checks
// the headline claim: at a non-zero poison fraction, admission control
// on beats admission control off on clean late-device accuracy.
func TestTable14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	tab, err := Table14PoisonedEdges(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // fast mode: 2 fractions × admission on/off
		t.Fatalf("table14 rows %d, want 4", len(tab.Rows))
	}
	acc := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.SplitN(row[2], "±", 2)[0], 64)
		if err != nil {
			t.Fatalf("unparseable accuracy cell %q: %v", row[2], err)
		}
		return v
	}
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		off, on := tab.Rows[i], tab.Rows[i+1]
		if off[0] != on[0] || off[1] != "off" || on[1] != "on" {
			t.Fatalf("unexpected row layout: %v / %v", off, on)
		}
		if off[0] != "0%" && acc(on) <= acc(off) {
			t.Errorf("poisoned %s: admission on %.3f not above off %.3f",
				on[0], acc(on), acc(off))
		}
	}
}

// TestTable15Smoke runs the sharded-cluster experiment in fast mode and
// checks its acceptance criterion: every kill run recovers a prior
// byte-identical to its same-seed control.
func TestTable15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	tab, err := Table15ShardedCluster(RunConfig{Reps: 1, Seed: 5, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 2 shard counts × failover off/on
		t.Fatalf("table15 rows %d, want 4", len(tab.Rows))
	}
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		off, on := tab.Rows[i], tab.Rows[i+1]
		if off[0] != on[0] || off[1] != "off" || on[1] != "on" {
			t.Fatalf("unexpected row layout: %v / %v", off, on)
		}
		if v := off[len(off)-1]; v != "baseline" {
			t.Errorf("control row at %s shards: prior verdict %q, want baseline", off[0], v)
		}
		if v := on[len(on)-1]; v != "byte-identical" {
			t.Errorf("kill run at %s shards: prior verdict %q, want byte-identical", on[0], v)
		}
		if on[3] == "-" || on[4] == "-" {
			t.Errorf("kill run at %s shards: missing failover/recovery timings: %v", on[0], on)
		}
	}
}

// TestTable18Smoke runs the regional-aggregation experiment in fast
// mode and checks its acceptance criteria: the partition run recovers a
// cloud prior byte-identical to its same-seed control, and regional
// summarization cuts upload bytes at least 2x in both rows.
func TestTable18Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	tab, err := Table18Regions(RunConfig{Reps: 1, Seed: 5, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // partition off/on
		t.Fatalf("table18 rows %d, want 2", len(tab.Rows))
	}
	off, on := tab.Rows[0], tab.Rows[1]
	if off[0] != "off" || on[0] != "on" {
		t.Fatalf("unexpected row layout: %v / %v", off, on)
	}
	if v := off[len(off)-1]; v != "baseline" {
		t.Errorf("control row: prior verdict %q, want baseline", v)
	}
	if v := on[len(on)-1]; v != "byte-identical" {
		t.Errorf("partition row: prior verdict %q, want byte-identical", v)
	}
	for _, row := range tab.Rows {
		var red float64
		if _, err := fmt.Sscanf(row[1], "%fx", &red); err != nil || red < 2 {
			t.Errorf("partition=%s reduction %q, want >= 2x", row[0], row[1])
		}
	}
	if on[6] != "yes" {
		t.Errorf("partition row not recovered: %v", on)
	}
}

// TestTable19Smoke runs the disk-fault chaos experiment in fast mode
// and checks its acceptance criterion: the chaos run repairs the rotted
// log and converges to a prior byte-identical to its same-seed control,
// with demotion/scrub/hedge columns populated.
func TestTable19Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner; skip in -short")
	}
	tab, err := Table19DiskChaos(RunConfig{Reps: 1, Seed: 5, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // chaos off/on
		t.Fatalf("table19 rows %d, want 2", len(tab.Rows))
	}
	off, on := tab.Rows[0], tab.Rows[1]
	if off[0] != "off" || on[0] != "on" {
		t.Fatalf("unexpected row layout: %v / %v", off, on)
	}
	if v := off[len(off)-1]; v != "baseline" {
		t.Errorf("control row: prior verdict %q, want baseline", v)
	}
	if v := on[len(on)-1]; v != "byte-identical" {
		t.Errorf("chaos row: prior verdict %q, want byte-identical", v)
	}
	for i, col := range []string{"demote ms", "rot flips", "scrubbed", "hedges"} {
		if on[3+i] == "-" {
			t.Errorf("chaos row missing %s: %v", col, on)
		}
		if off[3+i] != "-" {
			t.Errorf("control row has %s: %v", col, off)
		}
	}
}
