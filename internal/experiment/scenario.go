package experiment

import (
	"fmt"
	"math/rand"

	"github.com/drdp/drdp/internal/baseline"
	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
	"github.com/drdp/drdp/internal/stat"
)

// Scenario describes the canonical cloud+edge workload of the evaluation:
// a family of related binary tasks, K of which the cloud has solved with
// plentiful data, and one fresh edge task with scarce local data. The
// zero value is not usable; call Defaults() or set fields explicitly.
type Scenario struct {
	Dim          int     // feature dimensionality
	Clusters     int     // task-family clusters
	CloudTasks   int     // tasks the cloud has solved
	CloudSamples int     // samples per cloud task
	Spread       float64 // cluster-center norm in weight space
	Within       float64 // within-cluster task spread (relatedness dial)
	Flip         float64 // label noise
	Alpha        float64 // DP concentration used to build the prior
	Truncation   int     // prior component truncation (0 = none)
	Seed         int64
}

// Defaults returns the parameters of the main-result workload
// (Table 1 of EXPERIMENTS.md): d=20, 4 clusters, K=8 cloud tasks.
func Defaults(seed int64) Scenario {
	return Scenario{
		Dim:          20,
		Clusters:     4,
		CloudTasks:   8,
		CloudSamples: 400,
		Spread:       4,
		Within:       0.3,
		Flip:         0.05,
		Alpha:        1,
		Seed:         seed,
	}
}

// Built is a realized scenario: the trained cloud, its DP prior, and the
// edge task with generators for train/test data.
type Built struct {
	Scenario Scenario
	Family   *data.TaskFamily
	// CloudParams holds the per-task parameters the cloud trained.
	CloudParams []mat.Vec
	// Posteriors are the cloud task summaries the prior was built from.
	Posteriors []dpprior.TaskPosterior
	// Prior is the wire-format DP prior; Compiled is its fast form.
	Prior    *dpprior.Prior
	Compiled *dpprior.Compiled
	// EdgeTask is the fresh task the edge device faces (drawn from the
	// same family, cluster 0).
	EdgeTask data.LinearTask
	// Model is the edge model family (logistic with Dim features).
	Model model.Logistic

	rng *rand.Rand
}

// Build trains the cloud tasks, summarizes them with Laplace posteriors,
// constructs the DP prior and draws the edge task.
func (s Scenario) Build() (*Built, error) {
	if s.Dim <= 0 || s.Clusters <= 0 || s.CloudTasks <= 0 || s.CloudSamples <= 0 {
		return nil, fmt.Errorf("experiment: invalid scenario %+v", s)
	}
	rng := stat.NewRNG(s.Seed)
	family, err := data.NewTaskFamily(rng, s.Dim, s.Clusters, s.Spread, s.Within)
	if err != nil {
		return nil, fmt.Errorf("experiment: build family: %w", err)
	}
	m := model.Logistic{Dim: s.Dim}
	tasks := family.CloudTasks(rng, s.CloudTasks)
	b := &Built{
		Scenario: s,
		Family:   family,
		Model:    m,
		rng:      rng,
	}
	for i, task := range tasks {
		ds := task.Sample(rng, s.CloudSamples)
		params, err := (baseline.Ridge{Model: m, Lambda: 1e-3,
			Opts: opt.Options{MaxIter: 300}}).Train(ds.X, ds.Y)
		if err != nil {
			return nil, fmt.Errorf("experiment: train cloud task %d: %w", i, err)
		}
		cov, err := model.LaplacePosterior(m, params, ds.X, ds.Y, 1e-3)
		if err != nil {
			return nil, fmt.Errorf("experiment: cloud task %d posterior: %w", i, err)
		}
		b.CloudParams = append(b.CloudParams, params)
		b.Posteriors = append(b.Posteriors, dpprior.TaskPosterior{
			Mu: params, Sigma: cov, N: s.CloudSamples,
		})
	}
	prior, err := dpprior.Build(b.Posteriors, dpprior.BuildOptions{
		Alpha:         s.Alpha,
		MaxComponents: s.Truncation,
		Seed:          s.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: build prior: %w", err)
	}
	compiled, err := dpprior.Compile(prior)
	if err != nil {
		return nil, fmt.Errorf("experiment: compile prior: %w", err)
	}
	b.Prior = prior
	b.Compiled = compiled
	b.EdgeTask = family.SampleTask(rng, 0)
	b.EdgeTask.Flip = s.Flip
	return b, nil
}

// EdgeData draws an n-sample local training set and a test set of
// testN samples for the edge task.
func (b *Built) EdgeData(n, testN int) (train, test *data.Dataset) {
	return b.EdgeTask.Sample(b.rng, n), b.EdgeTask.Sample(b.rng, testN)
}

// RNG exposes the scenario's seeded stream for follow-on draws.
func (b *Built) RNG() *rand.Rand { return b.rng }

// CloudMean returns the heaviest prior component's mean: the cloud's
// single best guess, used by the cloud-only and Gaussian-MAP baselines.
func (b *Built) CloudMean() mat.Vec {
	best, bestW := 0, 0.0
	for i, c := range b.Prior.Components {
		if c.Weight > bestW {
			best, bestW = i, c.Weight
		}
	}
	return mat.CloneVec(b.Prior.Components[best].Mu)
}

// Methods returns the standard trainer lineup compared throughout the
// evaluation, sharing the scenario's cloud knowledge where applicable.
// rho is the Wasserstein radius used by the robust methods; tau the DRDP
// prior weight (0 = 1/n default).
func (b *Built) Methods(rho, tau float64) []baseline.Trainer {
	m := b.Model
	cloudMean := b.CloudMean()
	return []baseline.Trainer{
		baseline.ERM{Model: m},
		baseline.Ridge{Model: m, Lambda: 0.1},
		baseline.GaussMAP{Model: m, Mu: cloudMean, Lambda: 1},
		baseline.CloudOnly{Params: cloudMean},
		baseline.FineTune{Model: m, Init: cloudMean, Steps: 10},
		baseline.DRO{Model: m, Set: dro.Set{Kind: dro.Wasserstein, Rho: rho}},
		DRDPTrainer{
			Model: m,
			Set:   dro.Set{Kind: dro.Wasserstein, Rho: rho},
			Prior: b.Compiled,
			Tau:   tau,
		},
	}
}

// DRDPTrainer adapts the core learner to the baseline.Trainer interface
// so the harness can sweep it alongside the baselines.
type DRDPTrainer struct {
	Model   model.Model
	Set     dro.Set
	Prior   *dpprior.Compiled
	Tau     float64
	EMIters int
	// Parallelism > 0 fans the training hot paths over that many
	// workers (core.WithParallelism); 0 keeps the inline serial path.
	// Results are bit-identical either way.
	Parallelism int
}

var _ baseline.Trainer = DRDPTrainer{}

// Name implements baseline.Trainer.
func (d DRDPTrainer) Name() string { return "drdp" }

// Train implements baseline.Trainer.
func (d DRDPTrainer) Train(x *mat.Dense, y []float64) (mat.Vec, error) {
	opts := []core.Option{core.WithUncertaintySet(d.Set)}
	if d.Prior != nil {
		opts = append(opts, core.WithPrior(d.Prior))
	}
	if d.Tau > 0 {
		opts = append(opts, core.WithPriorWeight(d.Tau))
	}
	if d.EMIters > 0 {
		opts = append(opts, core.WithEMIters(d.EMIters, 0))
	}
	if d.Parallelism > 0 {
		opts = append(opts, core.WithParallelism(d.Parallelism))
	}
	l, err := core.New(d.Model, opts...)
	if err != nil {
		return nil, fmt.Errorf("experiment: drdp: %w", err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		return nil, fmt.Errorf("experiment: drdp: %w", err)
	}
	return res.Params, nil
}
