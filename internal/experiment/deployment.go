package experiment

import (
	"fmt"
	"time"

	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/sim"
	"github.com/drdp/drdp/internal/stat"
)

// Table9Deployment runs the discrete-event fleet simulator across link
// profiles and cloud rebuild policies: 4 data-rich pioneers bootstrap the
// cloud, then 8 data-poor devices arrive. Reported per configuration:
// mean late-device accuracy, mean late-device time-to-model, cloud
// rebuild count and total traffic.
func Table9Deployment(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title: "Table 9: fleet deployment simulation (4 pioneers + 8 late devices)",
		Columns: []string{"link", "rebuild", "late acc", "late ttm",
			"rebuilds", "KB down", "KB up"},
	}
	links := []edge.LinkProfile{edge.LinkWiFi, edge.Link4G, edge.Link3G}
	if cfg.Fast {
		links = []edge.LinkProfile{edge.LinkWiFi, edge.Link3G}
	}
	for _, link := range links {
		for _, rebuildEvery := range []int{1, 4} {
			var accs, ttms, rebuilds, down, up []float64
			for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
				rng := stat.NewRNG(seed)
				family, err := data.NewTaskFamily(rng, 8, 2, 5, 0.2)
				if err != nil {
					return nil, err
				}
				simCfg := sim.Config{
					Family:       family,
					Model:        model.Logistic{Dim: 8},
					Set:          dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
					Alpha:        1,
					RebuildEvery: rebuildEvery,
					Flip:         0.05,
					Seed:         seed,
				}
				var specs []sim.DeviceSpec
				for i := 0; i < 4; i++ {
					specs = append(specs, sim.DeviceSpec{
						ID: i, ArriveAt: time.Duration(i) * 10 * time.Second,
						Link: link, Samples: 200, Report: true, Cluster: i % 2,
					})
				}
				for i := 0; i < 8; i++ {
					specs = append(specs, sim.DeviceSpec{
						ID: 4 + i, ArriveAt: time.Duration(60+i*5) * time.Second,
						Link: link, Samples: 12, Cluster: i % 2,
					})
				}
				res, err := sim.Run(simCfg, specs)
				if err != nil {
					return nil, fmt.Errorf("table9: %s rebuild=%d: %w", link.Name, rebuildEvery, err)
				}
				var acc, ttm float64
				for _, d := range res.Devices {
					if d.ID >= 4 {
						acc += d.Accuracy / 8
						ttm += d.TimeToModel.Seconds() / 8
					}
				}
				accs = append(accs, acc)
				ttms = append(ttms, ttm)
				rebuilds = append(rebuilds, float64(res.Rebuilds))
				down = append(down, float64(res.BytesDown)/1024)
				up = append(up, float64(res.BytesUp)/1024)
			}
			tab.AddRow(link.Name, fmt.Sprintf("every %d", rebuildEvery),
				Aggregate(accs).String(),
				fmt.Sprintf("%.2fs", Aggregate(ttms).Mean),
				fmt.Sprintf("%.0f", Aggregate(rebuilds).Mean),
				fmt.Sprintf("%.1f", Aggregate(down).Mean),
				fmt.Sprintf("%.1f", Aggregate(up).Mean))
		}
	}
	return tab, nil
}

// Table12LossyLinks sweeps link loss on the fleet simulator: the same
// pioneer/late-device deployment as Table 9 over a 3G uplink whose
// transfers fail with probability p, with the resilient transport's
// retry schedule. Reported per loss rate: mean late-device accuracy,
// mean late-device time-to-model, devices that degraded to prior-free
// training, reports that never reached the cloud, and total retries —
// how much accuracy the DP prior buys, and how gracefully it erodes,
// as the network gets worse.
func Table12LossyLinks(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title: "Table 12: lossy uplinks — accuracy and degradation vs link loss (3G, retry=4)",
		Columns: []string{"loss", "late acc", "late ttm",
			"degraded", "reports lost", "retries"},
	}
	losses := []float64{0, 0.1, 0.3, 0.5, 0.8}
	if cfg.Fast {
		losses = []float64{0, 0.3, 0.8}
	}
	for _, loss := range losses {
		var accs, ttms, degraded, lost, retries []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			rng := stat.NewRNG(seed)
			family, err := data.NewTaskFamily(rng, 8, 2, 5, 0.2)
			if err != nil {
				return nil, err
			}
			simCfg := sim.Config{
				Family:       family,
				Model:        model.Logistic{Dim: 8},
				Set:          dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
				Alpha:        1,
				RebuildEvery: 1,
				Flip:         0.05,
				Retry:        edge.RetryPolicy{MaxAttempts: 4, Base: 200 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
				Seed:         seed,
			}
			var specs []sim.DeviceSpec
			for i := 0; i < 4; i++ {
				specs = append(specs, sim.DeviceSpec{
					ID: i, ArriveAt: time.Duration(i) * 10 * time.Second,
					Link: edge.Link3G, Samples: 200, Report: true, Cluster: i % 2,
					LossRate: loss,
				})
			}
			for i := 0; i < 8; i++ {
				specs = append(specs, sim.DeviceSpec{
					ID: 4 + i, ArriveAt: time.Duration(60+i*5) * time.Second,
					Link: edge.Link3G, Samples: 12, Cluster: i % 2,
					LossRate: loss,
				})
			}
			res, err := sim.Run(simCfg, specs)
			if err != nil {
				return nil, fmt.Errorf("table12: loss=%.1f: %w", loss, err)
			}
			var acc, ttm float64
			var fleetRetries int
			for _, d := range res.Devices {
				fleetRetries += d.Retries
				if d.ID >= 4 {
					acc += d.Accuracy / 8
					ttm += d.TimeToModel.Seconds() / 8
				}
			}
			accs = append(accs, acc)
			ttms = append(ttms, ttm)
			degraded = append(degraded, float64(res.Degraded))
			lost = append(lost, float64(res.ReportsLost))
			retries = append(retries, float64(fleetRetries))
		}
		tab.AddRow(fmt.Sprintf("%.0f%%", loss*100),
			Aggregate(accs).String(),
			fmt.Sprintf("%.2fs", Aggregate(ttms).Mean),
			fmt.Sprintf("%.1f", Aggregate(degraded).Mean),
			fmt.Sprintf("%.1f", Aggregate(lost).Mean),
			fmt.Sprintf("%.0f", Aggregate(retries).Mean))
	}
	return tab, nil
}

// Figure10Compression sweeps the prior compression level: effective wire
// size per level against the edge accuracy achieved with the compressed
// prior — the systems tradeoff for constrained uplinks.
func Figure10Compression(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	levels := []struct {
		name  string
		level int
	}{
		{"full", 0}, {"diagonal", 1}, {"spherical", 2},
	}
	ser := &Series{
		Title:  "Figure 10: prior compression — wire size vs edge accuracy (n=20)",
		XLabel: "level(0=full,1=diag,2=sph)",
		X:      []float64{0, 1, 2},
	}
	sizes := make([]float64, len(levels))
	accs := make([]float64, len(levels))
	for li, lv := range levels {
		var ss, as []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			compressed, compiled, err := compressAndCompile(b, lv.level)
			if err != nil {
				return nil, err
			}
			ss = append(ss, float64(compressed.EffectiveWireSize(levelOf(lv.level)))/1024)
			train, test := b.EdgeData(20, testSamples)
			tr := DRDPTrainer{Model: b.Model,
				Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05}, Prior: compiled}
			params, err := tr.Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			as = append(as, model.Accuracy(b.Model, params, test.X, test.Y))
		}
		sizes[li] = Aggregate(ss).Mean
		accs[li] = Aggregate(as).Mean
	}
	ser.Add("wire-KB", sizes)
	ser.Add("accuracy", accs)
	return ser, nil
}

// Figure11DriftTracking streams batches from a rotating (concept-drift)
// task and compares three streaming policies on accuracy against the
// CURRENT distribution: accumulate-everything online learning, sliding-
// window online learning, and a static model frozen after the first two
// batches.
func Figure11DriftTracking(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	steps := 10
	if cfg.Fast {
		steps = 5
	}
	const batchSize = 40
	const dim = 8
	rng := stat.NewRNG(cfg.Seed + 7)
	task, err := data.NewDriftingTask(rng, dim, 4, 0.12, 0.05)
	if err != nil {
		return nil, err
	}
	m := model.Logistic{Dim: dim}
	set := dro.Set{Kind: dro.Wasserstein, Rho: 0.05}
	mk := func() (*core.Learner, error) {
		return core.New(m, core.WithUncertaintySet(set))
	}
	lAll, err := mk()
	if err != nil {
		return nil, err
	}
	onlineAll, err := core.NewOnline(lAll)
	if err != nil {
		return nil, err
	}
	lWin, err := mk()
	if err != nil {
		return nil, err
	}
	onlineWin, err := core.NewOnlineWindow(lWin, 2*batchSize)
	if err != nil {
		return nil, err
	}

	xs := make([]float64, steps)
	accAll := make([]float64, steps)
	accWin := make([]float64, steps)
	accStatic := make([]float64, steps)
	var static []float64
	for t := 0; t < steps; t++ {
		xs[t] = float64(t)
		batch := task.SampleAt(rng, t, batchSize)
		test := task.SampleAt(rng, t, testSamples)

		resAll, err := onlineAll.Observe(batch.X, batch.Y)
		if err != nil {
			return nil, err
		}
		accAll[t] = model.Accuracy(m, resAll.Params, test.X, test.Y)

		resWin, err := onlineWin.Observe(batch.X, batch.Y)
		if err != nil {
			return nil, err
		}
		accWin[t] = model.Accuracy(m, resWin.Params, test.X, test.Y)

		if t == 1 {
			static = append([]float64(nil), resAll.Params...)
		}
		if static != nil {
			accStatic[t] = model.Accuracy(m, static, test.X, test.Y)
		} else {
			accStatic[t] = accAll[t] // before freezing they coincide
		}
	}
	ser := &Series{
		Title:  "Figure 11: accuracy on the current distribution under concept drift",
		XLabel: "stream step",
		X:      xs,
	}
	ser.Add("online-all", accAll)
	ser.Add("online-window", accWin)
	ser.Add("static-after-2", accStatic)
	return ser, nil
}

func levelOf(i int) dpprior.CompressionLevel {
	return dpprior.CompressionLevel(i)
}

func compressAndCompile(b *Built, level int) (*dpprior.Prior, *dpprior.Compiled, error) {
	compressed, err := b.Prior.Compress(levelOf(level))
	if err != nil {
		return nil, nil, err
	}
	compiled, err := dpprior.Compile(compressed)
	if err != nil {
		return nil, nil, err
	}
	return compressed, compiled, nil
}
