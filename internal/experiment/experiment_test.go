package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/drdp/drdp/internal/model"
)

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("longer", "x")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "longer") {
		t.Errorf("render output:\n%s", out)
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,bb\n1,2\nlonger,x\n" {
		t.Errorf("csv output %q", got)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow(`va"l,ue`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, `"va""l,ue"`) {
		t.Errorf("escaping failed: %q", got)
	}
}

func TestTableAddRowPanics(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("short row accepted")
		}
	}()
	tab.AddRow("only-one")
}

func TestSeries(t *testing.T) {
	s := &Series{Title: "fig", XLabel: "rho", X: []float64{0.1, 0.2}}
	s.Add("drdp", []float64{0.9, 0.85})
	s.Add("erm", []float64{0.8, 0.7})
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "drdp") {
		t.Errorf("series render: %s", buf.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series length accepted")
		}
	}()
	s.Add("bad", []float64{1})
}

func TestAggregate(t *testing.T) {
	ms := Aggregate([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(ms.Mean-5) > 1e-12 {
		t.Errorf("mean %v", ms.Mean)
	}
	// Sample std with n-1: sqrt(32/7).
	if math.Abs(ms.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("std %v", ms.Std)
	}
	if ms.N != 8 {
		t.Errorf("n %d", ms.N)
	}
	empty := Aggregate(nil)
	if empty.Mean != 0 || empty.Std != 0 || empty.N != 0 {
		t.Errorf("empty aggregate %+v", empty)
	}
	one := Aggregate([]float64{3})
	if one.Std != 0 {
		t.Errorf("single-sample std %v", one.Std)
	}
	if s := ms.String(); !strings.Contains(s, "±") {
		t.Errorf("MeanStd string %q", s)
	}
}

func TestRepeatAndSeeds(t *testing.T) {
	seeds := Seeds(10, 4)
	if len(seeds) != 4 || seeds[0] != 10 || seeds[1] == seeds[0] {
		t.Errorf("seeds %v", seeds)
	}
	ms, err := Repeat(seeds, func(seed int64) (float64, error) {
		return float64(seed % 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ms.N != 4 {
		t.Errorf("repeat n %d", ms.N)
	}
	_, err = Repeat(seeds, func(seed int64) (float64, error) {
		return 0, errTest
	})
	if err == nil {
		t.Error("error not propagated")
	}
}

var errTest = errBase{}

type errBase struct{}

func (errBase) Error() string { return "test error" }

func TestScenarioBuildAndMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario build trains the cloud; skip in -short")
	}
	s := Defaults(77)
	s.Dim = 6
	s.CloudTasks = 4
	s.CloudSamples = 150
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.CloudParams) != 4 || len(b.Posteriors) != 4 {
		t.Fatalf("cloud size wrong: %d params, %d posteriors",
			len(b.CloudParams), len(b.Posteriors))
	}
	if err := b.Prior.Validate(); err != nil {
		t.Fatalf("scenario prior invalid: %v", err)
	}
	if b.Prior.Dim != 7 { // 6 weights + bias
		t.Errorf("prior dim %d, want 7", b.Prior.Dim)
	}
	// Cloud tasks must actually be good at their own job: check the first
	// cloud model classifies a fresh draw of its own task well. (Cluster
	// structure guarantees relatedness, not identity, so use cloud task 0
	// directly.)
	train, test := b.EdgeData(50, 400)
	if train.Len() != 50 || test.Len() != 400 {
		t.Errorf("edge data sizes %d/%d", train.Len(), test.Len())
	}

	methods := b.Methods(0.1, 0)
	if len(methods) != 7 {
		t.Fatalf("expected 7 methods, got %d", len(methods))
	}
	names := map[string]bool{}
	for _, tr := range methods {
		if names[tr.Name()] {
			t.Errorf("duplicate method name %s", tr.Name())
		}
		names[tr.Name()] = true
		params, err := tr.Train(train.X, train.Y)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		acc := model.Accuracy(b.Model, params, test.X, test.Y)
		if acc < 0.5 {
			t.Errorf("%s: test accuracy %v below chance", tr.Name(), acc)
		}
	}
	if !names["drdp"] {
		t.Error("drdp missing from method lineup")
	}
}

func TestScenarioInvalid(t *testing.T) {
	if _, err := (Scenario{}).Build(); err == nil {
		t.Error("zero scenario accepted")
	}
}
