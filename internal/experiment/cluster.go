package experiment

import (
	"bytes"
	"fmt"

	"github.com/drdp/drdp/internal/sim"
	"github.com/drdp/drdp/internal/telemetry"
)

// Table15ShardedCluster measures the replicated shard tier: round
// throughput and failover recovery on the REAL tier (in-process nodes
// with live listeners, log streaming, and coordinator probes), at 1 and
// 3 shards, with the fault injector off and on. Every kill run is
// checked against its same-seed control run for byte-identical merged
// priors — the tier's recovery acceptance criterion — and the "prior"
// column reports the verdict.
func Table15ShardedCluster(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title: "Table 15: replicated shard tier — throughput and mid-round failover recovery (2 replicas/shard)",
		Columns: []string{"shards", "failover", "rounds/s", "failover ms",
			"recovery ms", "tasks", "prior"},
	}
	rounds, perRound := 6, 4
	if cfg.Fast {
		rounds, perRound = 4, 3
	}
	for _, shards := range []int{1, 3} {
		// Same-seed control priors for the byte-identity check.
		control := make(map[int64][]byte, cfg.Reps)
		for _, kill := range []bool{false, true} {
			var rps, failover, recovery []float64
			tasks := 0
			identical := true
			for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
				ccfg := sim.ClusterConfig{
					Shards:        shards,
					Replicas:      2,
					Rounds:        rounds,
					TasksPerRound: perRound,
					Dim:           6,
					KillShard:     -1,
					Seed:          seed,
					Logger:        telemetry.Discard(),
				}
				if kill {
					ccfg.KillShard = 0
					ccfg.KillRound = rounds / 2
				}
				res, err := sim.RunCluster(ccfg)
				if err != nil {
					return nil, fmt.Errorf("table15: shards=%d kill=%v seed=%d: %w", shards, kill, seed, err)
				}
				rps = append(rps, res.RoundsPerSec)
				tasks = res.Tasks
				if kill {
					failover = append(failover, float64(res.FailoverTime.Milliseconds()))
					recovery = append(recovery, float64(res.RecoveryTime.Milliseconds()))
					if !bytes.Equal(res.PriorBytes, control[seed]) {
						identical = false
					}
				} else {
					control[seed] = res.PriorBytes
				}
			}
			verdict := "baseline"
			if kill {
				verdict = "byte-identical"
				if !identical {
					verdict = "DIVERGED"
				}
			}
			onOff := map[bool]string{false: "off", true: "on"}[kill]
			fo, rec := "-", "-"
			if kill {
				fo = fmt.Sprintf("%.0f", Aggregate(failover).Mean)
				rec = fmt.Sprintf("%.0f", Aggregate(recovery).Mean)
			}
			tab.AddRow(fmt.Sprintf("%d", shards), onOff,
				fmt.Sprintf("%.1f", Aggregate(rps).Mean),
				fo, rec, fmt.Sprintf("%d", tasks), verdict)
		}
	}
	return tab, nil
}
