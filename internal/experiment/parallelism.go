package experiment

import (
	"fmt"
	"math"
	"time"

	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
)

// Table13Parallel measures the data-parallel training core: wall-clock
// of one gradient-dominated DRDP fit at increasing worker counts, the
// speedup over the serial path, and — the determinism invariant — whether
// the fitted parameters are bit-for-bit identical to the serial result.
// The `identical` column must read yes at every worker count on every
// machine; speedup depends on available cores.
func Table13Parallel(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 20000
	if cfg.Fast {
		n = 4000
	}
	workerCounts := []int{1, 2, 4, 8}
	if cfg.Parallelism > 8 {
		workerCounts = append(workerCounts, cfg.Parallelism)
	}

	tab := &Table{
		Title:   fmt.Sprintf("Table 13: data-parallel training (n=%d, Wasserstein+prior)", n),
		Columns: []string{"parallelism", "fit_seconds", "speedup", "identical"},
	}

	b, err := cfg.scenario(cfg.Seed).Build()
	if err != nil {
		return nil, err
	}
	train, _ := b.EdgeData(n, 10)

	var serialSeconds float64
	var serialParams mat.Vec
	for _, workers := range workerCounts {
		tr := DRDPTrainer{
			Model:       b.Model,
			Set:         dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
			Prior:       b.Compiled,
			EMIters:     3,
			Parallelism: workers,
		}
		var secs []float64
		var params mat.Vec
		for rep := 0; rep < cfg.Reps; rep++ {
			t0 := time.Now()
			params, err = tr.Train(train.X, train.Y)
			if err != nil {
				return nil, fmt.Errorf("table13: parallelism=%d: %w", workers, err)
			}
			secs = append(secs, time.Since(t0).Seconds())
		}
		best := secs[0]
		for _, s := range secs[1:] {
			if s < best {
				best = s
			}
		}
		if workers == 1 {
			serialSeconds = best
			serialParams = params
		}
		identical := "yes"
		for i := range params {
			if math.Float64bits(params[i]) != math.Float64bits(serialParams[i]) {
				identical = "NO"
				break
			}
		}
		tab.AddRow(
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.4f", best),
			fmt.Sprintf("%.2fx", serialSeconds/best),
			identical,
		)
	}
	return tab, nil
}
