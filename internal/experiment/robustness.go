package experiment

import (
	"fmt"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/sim"
	"github.com/drdp/drdp/internal/stat"
)

// Table14PoisonedEdges sweeps the poisoned-edge fraction on the fleet
// simulator with the cloud's admission control on and off: 10 reporting
// pioneers (a fraction of them uploading adversarial posteriors crafted
// to drag the shared prior off the task distribution) followed by 8
// clean data-poor devices who depend on that prior. Reported per
// configuration: mean clean late-device accuracy, uploads rejected by
// validation, and the quarantine's precision/recall against ground-truth
// poisoners — what admission control buys the honest fleet, and whether
// it taxes honest reporters to get it.
func Table14PoisonedEdges(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title: "Table 14: poisoned edges — clean-fleet accuracy with admission control on/off",
		Columns: []string{"poisoned", "admission", "clean acc",
			"rejected", "quar prec", "quar recall"},
	}
	fracs := []float64{0, 0.15, 0.3, 0.5}
	if cfg.Fast {
		fracs = []float64{0, 0.3}
	}
	const pioneers = 10
	const late = 8
	for _, frac := range fracs {
		poisonCount := int(frac*pioneers + 0.5)
		for _, admission := range []bool{false, true} {
			var accs, rejected, precs, recalls []float64
			for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
				rng := stat.NewRNG(seed)
				family, err := data.NewTaskFamily(rng, 8, 2, 5, 0.2)
				if err != nil {
					return nil, err
				}
				simCfg := sim.Config{
					Family:       family,
					Model:        model.Logistic{Dim: 8},
					Set:          dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
					Alpha:        1,
					RebuildEvery: 1,
					Flip:         0.05,
					Admission:    admission,
					TrimFrac:     0.6,
					Seed:         seed,
				}
				var specs []sim.DeviceSpec
				for i := 0; i < pioneers; i++ {
					spec := sim.DeviceSpec{
						ID: i, ArriveAt: time.Duration(i) * 10 * time.Second,
						Link: edge.LinkWiFi, Samples: 200, Report: true, Cluster: i % 2,
					}
					// Spread the poisoners evenly through the arrival order
					// so early rebuilds see them interleaved with honest
					// reports, not batched at one end.
					if ((i+1)*poisonCount)/pioneers > (i*poisonCount)/pioneers {
						spec.Poison = sim.PoisonAdversarial
					}
					specs = append(specs, spec)
				}
				for i := 0; i < late; i++ {
					specs = append(specs, sim.DeviceSpec{
						ID: pioneers + i, ArriveAt: time.Duration(120+i*5) * time.Second,
						Link: edge.LinkWiFi, Samples: 12, Cluster: i % 2,
					})
				}
				res, err := sim.Run(simCfg, specs)
				if err != nil {
					return nil, fmt.Errorf("table14: poisoned=%.0f%% admission=%v: %w",
						frac*100, admission, err)
				}
				var acc float64
				for _, d := range res.Devices {
					if d.ID >= pioneers {
						acc += d.Accuracy / late
					}
				}
				accs = append(accs, acc)
				rejected = append(rejected, float64(res.RejectedUploads))
				// Quarantine quality against ground truth: flagged = upload
				// rejected or quarantined; positive = device was a poisoner.
				var flagged, flaggedPoisoned, poisoned int
				for i, d := range res.Devices {
					isPoisoner := specs[i].Poison != sim.PoisonNone && specs[i].Report
					if isPoisoner {
						poisoned++
					}
					if d.Rejected || d.Quarantined {
						flagged++
						if isPoisoner {
							flaggedPoisoned++
						}
					}
				}
				prec, recall := 1.0, 1.0
				if flagged > 0 {
					prec = float64(flaggedPoisoned) / float64(flagged)
				}
				if poisoned > 0 {
					recall = float64(flaggedPoisoned) / float64(poisoned)
				}
				precs = append(precs, prec)
				recalls = append(recalls, recall)
			}
			mode := "off"
			if admission {
				mode = "on"
			}
			tab.AddRow(fmt.Sprintf("%.0f%%", frac*100), mode,
				Aggregate(accs).String(),
				fmt.Sprintf("%.1f", Aggregate(rejected).Mean),
				fmt.Sprintf("%.2f", Aggregate(precs).Mean),
				fmt.Sprintf("%.2f", Aggregate(recalls).Mean))
		}
	}
	return tab, nil
}
