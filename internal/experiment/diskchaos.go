package experiment

import (
	"bytes"
	"fmt"
	"os"

	"github.com/drdp/drdp/internal/sim"
	"github.com/drdp/drdp/internal/telemetry"
)

// Table19DiskChaos runs the disk-fault chaos scenario on the real
// replicated tier: a control run, then a same-seed chaos run with bit
// rot on one follower's disk and a slow-but-alive (gray) leader. The
// table reports what each defense bought — scrubber frames repaired
// over the wire, demotion time for the gray leader, hedged-read
// counters, and the read/round p99 the hedging protects — and the
// "prior" column is the acceptance verdict: the chaos run's merged
// prior must be byte-identical to the control's, with the rotted log
// repaired byte-identical to its leader's.
func Table19DiskChaos(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title: "Table 19: disk-fault chaos — scrub repair, gray-leader demotion, hedged reads (3 replicas)",
		Columns: []string{"chaos", "read p99 ms", "round p99 ms", "demote ms",
			"rot flips", "scrubbed", "hedges", "tasks", "prior"},
	}
	rounds, perRound := 12, 4
	if cfg.Fast {
		rounds, perRound = 8, 3
	}
	// Same-seed control priors for the byte-identity verdict.
	control := make(map[int64][]byte, cfg.Reps)
	for _, chaos := range []bool{false, true} {
		var readP99, roundP99, demote, flips, scrubbed, fired, won []float64
		tasks := 0
		identical, repaired := true, true
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			dir, err := os.MkdirTemp("", "drdp-table19-*")
			if err != nil {
				return nil, err
			}
			res, err := sim.RunDiskChaos(sim.DiskChaosConfig{
				Rounds:        rounds,
				TasksPerRound: perRound,
				Dir:           dir,
				Chaos:         chaos,
				Seed:          seed,
				Logger:        telemetry.Discard(),
			})
			os.RemoveAll(dir)
			if err != nil {
				return nil, fmt.Errorf("table19: chaos=%v seed=%d: %w", chaos, seed, err)
			}
			readP99 = append(readP99, float64(res.ReadP99.Microseconds())/1e3)
			roundP99 = append(roundP99, float64(res.RoundP99.Microseconds())/1e3)
			tasks = res.Tasks
			if chaos {
				demote = append(demote, float64(res.DemotionTime.Milliseconds()))
				flips = append(flips, float64(res.RotFlips))
				scrubbed = append(scrubbed, res.ScrubRepairedFrames)
				fired = append(fired, res.HedgeFired)
				won = append(won, res.HedgeWon)
				if !bytes.Equal(res.PriorBytes, control[seed]) {
					identical = false
				}
				repaired = repaired && res.Repaired
			} else {
				control[seed] = res.PriorBytes
			}
		}
		verdict := "baseline"
		dm, fl, sc, hg := "-", "-", "-", "-"
		if chaos {
			verdict = "byte-identical"
			if !identical || !repaired {
				verdict = "DIVERGED"
			}
			dm = fmt.Sprintf("%.0f", Aggregate(demote).Mean)
			fl = fmt.Sprintf("%.1f", Aggregate(flips).Mean)
			sc = fmt.Sprintf("%.1f", Aggregate(scrubbed).Mean)
			hg = fmt.Sprintf("%.1f/%.1f", Aggregate(fired).Mean, Aggregate(won).Mean)
		}
		onOff := map[bool]string{false: "off", true: "on"}[chaos]
		tab.AddRow(onOff,
			fmt.Sprintf("%.1f", Aggregate(readP99).Mean),
			fmt.Sprintf("%.1f", Aggregate(roundP99).Mean),
			dm, fl, sc, hg, fmt.Sprintf("%d", tasks), verdict)
	}
	return tab, nil
}
