package experiment

import (
	"bytes"
	"fmt"

	"github.com/drdp/drdp/internal/sim"
	"github.com/drdp/drdp/internal/telemetry"
)

// Table18Regions measures the hierarchical edge → region → cloud tier:
// cloud-upload byte reduction from regional pre-aggregation and device
// accuracy, with and without a mid-run regional cloud partition. Every
// partition run is checked against its same-seed control run for a
// byte-identical final cloud prior — a partition that heals before the
// next sync barrier must be invisible to the cloud — and the "prior"
// column reports the verdict.
func Table18Regions(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title: "Table 18: regional aggregation — cloud-upload reduction and partition recovery (2 regions)",
		Columns: []string{"partition", "reduction", "raw KB", "up KB",
			"accuracy", "gossip", "recovered", "prior"},
	}
	rounds, perRound := 9, 6
	if cfg.Fast {
		rounds, perRound = 6, 4
	}
	// Same-seed control priors for the byte-identity check.
	control := make(map[int64][]byte, cfg.Reps)
	for _, partition := range []bool{false, true} {
		var reduction, accuracy []float64
		var rawB, upB int64
		gossip := 0
		identical, recovered := true, true
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			rcfg := sim.RegionsConfig{
				Rounds:          rounds,
				UploadsPerRound: perRound,
				Partition:       partition,
				Gossip:          partition,
				Seed:            seed,
				Logger:          telemetry.Discard(),
			}
			if cfg.Fast {
				rcfg.PartitionEnd = 5
				rcfg.RegionCutStart = 3
			}
			res, err := sim.RunRegions(rcfg)
			if err != nil {
				return nil, fmt.Errorf("table18: partition=%v seed=%d: %w", partition, seed, err)
			}
			reduction = append(reduction, res.Reduction)
			accuracy = append(accuracy, res.Accuracy)
			rawB += res.RawBytes
			upB += res.UpBytes
			if partition {
				gossip += res.GossipInjected
				recovered = recovered && res.Recovered
				if !bytes.Equal(res.PriorBytes, control[seed]) {
					identical = false
				}
			} else {
				control[seed] = res.PriorBytes
			}
		}
		verdict := "baseline"
		rec := "-"
		if partition {
			verdict = "byte-identical"
			if !identical {
				verdict = "DIVERGED"
			}
			rec = map[bool]string{true: "yes", false: "NO"}[recovered]
		}
		onOff := map[bool]string{false: "off", true: "on"}[partition]
		tab.AddRow(onOff,
			fmt.Sprintf("%.1fx", Aggregate(reduction).Mean),
			fmt.Sprintf("%.1f", float64(rawB)/1024),
			fmt.Sprintf("%.1f", float64(upB)/1024),
			fmt.Sprintf("%.3f", Aggregate(accuracy).Mean),
			fmt.Sprintf("%d", gossip), rec, verdict)
	}
	return tab, nil
}
