// Package experiment is the harness that regenerates every table and
// figure in EXPERIMENTS.md: the canonical cloud+edge scenario builder,
// seeded repetition with mean±std aggregation, and ASCII/CSV emitters for
// tables (rows of labelled cells) and series (figure data).
package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a rows×columns result grid with a title and column headers.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, which must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row has %d cells, want %d", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is figure data: one x axis and any number of named y series.
type Series struct {
	Title  string
	XLabel string
	X      []float64
	Names  []string
	Y      [][]float64 // Y[s][i] pairs with X[i]
}

// Add appends one named series; its length must match X.
func (s *Series) Add(name string, ys []float64) {
	if len(ys) != len(s.X) {
		panic(fmt.Sprintf("experiment: series %q has %d points, want %d", name, len(ys), len(s.X)))
	}
	s.Names = append(s.Names, name)
	s.Y = append(s.Y, ys)
}

// Table converts the series to a Table for rendering.
func (s *Series) Table() *Table {
	t := &Table{Title: s.Title, Columns: append([]string{s.XLabel}, s.Names...)}
	for i, x := range s.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, ys := range s.Y {
			row = append(row, fmt.Sprintf("%.4f", ys[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Render writes the series as an aligned ASCII table.
func (s *Series) Render(w io.Writer) error { return s.Table().Render(w) }

// WriteCSV writes the series as CSV.
func (s *Series) WriteCSV(w io.Writer) error { return s.Table().WriteCSV(w) }

// MeanStd is an aggregated measurement over repetitions.
type MeanStd struct {
	Mean, Std float64
	N         int
}

// String formats as "mean±std".
func (m MeanStd) String() string {
	return fmt.Sprintf("%.4f±%.4f", m.Mean, m.Std)
}

// Aggregate computes MeanStd over xs.
func Aggregate(xs []float64) MeanStd {
	n := len(xs)
	if n == 0 {
		return MeanStd{}
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	std := 0.0
	if n > 1 {
		std = sqrt(ss / float64(n-1))
	}
	return MeanStd{Mean: mean, Std: std, N: n}
}

// Repeat runs fn once per seed and aggregates the returned measurements.
// fn failures abort with the offending seed attached.
func Repeat(seeds []int64, fn func(seed int64) (float64, error)) (MeanStd, error) {
	vals := make([]float64, 0, len(seeds))
	for _, seed := range seeds {
		v, err := fn(seed)
		if err != nil {
			return MeanStd{}, fmt.Errorf("experiment: seed %d: %w", seed, err)
		}
		vals = append(vals, v)
	}
	return Aggregate(vals), nil
}

// Seeds returns n deterministic seeds derived from base.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*1_000_003
	}
	return out
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
