package experiment

import (
	"fmt"
	"time"

	"github.com/drdp/drdp/internal/baseline"
	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/metrics"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
	"github.com/drdp/drdp/internal/stat"
)

// RunConfig controls the cost/fidelity tradeoff of the experiment
// runners: Reps seeds are averaged; Fast shrinks dimensions and sweep
// grids so the full suite finishes in seconds (used by tests and the
// default bench run).
type RunConfig struct {
	Reps int
	Seed int64
	Fast bool
	// Parallelism > 0 runs every DRDP fit through that many workers
	// (bit-identical results; wall-clock only). 0 keeps the serial path.
	Parallelism int
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scenario returns the workload scaled per the config.
func (c RunConfig) scenario(seed int64) Scenario {
	s := Defaults(seed)
	if c.Fast {
		s.Dim = 8
		s.CloudTasks = 6
		s.CloudSamples = 150
	}
	return s
}

const testSamples = 1500

// Table1SampleEfficiency regenerates the main result: test accuracy vs
// local sample size for DRDP and every baseline.
func Table1SampleEfficiency(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{10, 20, 50, 100, 200}
	if cfg.Fast {
		sizes = []int{10, 30, 100}
	}
	tab := &Table{
		Title:   "Table 1: test accuracy vs local sample size n (mean±std)",
		Columns: []string{"method"},
	}
	for _, n := range sizes {
		tab.Columns = append(tab.Columns, fmt.Sprintf("n=%d", n))
	}
	// methodNames fixes the row order.
	var methodNames []string
	cells := map[string][]string{}
	for _, n := range sizes {
		accByMethod := map[string][]float64{}
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(n, testSamples)
			for _, tr := range b.Methods(0.05, 0) {
				params, err := tr.Train(train.X, train.Y)
				if err != nil {
					return nil, fmt.Errorf("table1: %s at n=%d: %w", tr.Name(), n, err)
				}
				acc := model.Accuracy(b.Model, params, test.X, test.Y)
				accByMethod[tr.Name()] = append(accByMethod[tr.Name()], acc)
				if n == sizes[0] && seed == Seeds(cfg.Seed, cfg.Reps)[0] {
					methodNames = append(methodNames, tr.Name())
				}
			}
		}
		for name, accs := range accByMethod {
			cells[name] = append(cells[name], Aggregate(accs).String())
		}
	}
	for _, name := range methodNames {
		tab.AddRow(append([]string{name}, cells[name]...)...)
	}
	return tab, nil
}

// Table2ShiftRobustness regenerates the shift study: accuracy and robust
// certificates under covariate shift of growing magnitude, DRDP vs the
// non-robust transfer baseline and local ERM.
func Table2ShiftRobustness(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	shifts := []float64{0, 0.2, 0.5, 1.0}
	n := 50
	tab := &Table{
		Title:   "Table 2: accuracy under covariate shift ε (n=50, mean±std)",
		Columns: []string{"method"},
	}
	for _, eps := range shifts {
		tab.Columns = append(tab.Columns, fmt.Sprintf("ε=%g", eps))
	}
	type methodSpec struct {
		name string
		mk   func(b *Built) baseline.Trainer
	}
	specs := []methodSpec{
		{"local-erm", func(b *Built) baseline.Trainer { return baseline.ERM{Model: b.Model} }},
		{"gauss-map", func(b *Built) baseline.Trainer {
			return baseline.GaussMAP{Model: b.Model, Mu: b.CloudMean(), Lambda: 1}
		}},
		{"dro-noprior", func(b *Built) baseline.Trainer {
			return baseline.DRO{Model: b.Model, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.2}}
		}},
		{"drdp", func(b *Built) baseline.Trainer {
			return DRDPTrainer{Model: b.Model, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.2}, Prior: b.Compiled}
		}},
	}
	rows := map[string][]string{}
	for _, eps := range shifts {
		accs := map[string][]float64{}
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(n, testSamples)
			shifted := data.UniformShift(test, eps)
			for _, spec := range specs {
				params, err := spec.mk(b).Train(train.X, train.Y)
				if err != nil {
					return nil, fmt.Errorf("table2: %s: %w", spec.name, err)
				}
				accs[spec.name] = append(accs[spec.name],
					model.Accuracy(b.Model, params, shifted.X, shifted.Y))
			}
		}
		for _, spec := range specs {
			rows[spec.name] = append(rows[spec.name], Aggregate(accs[spec.name]).String())
		}
	}
	for _, spec := range specs {
		tab.AddRow(append([]string{spec.name}, rows[spec.name]...)...)
	}
	return tab, nil
}

// Table3Digits regenerates the multiclass synthetic-digit study with a
// softmax head: DRDP vs local baselines at two per-class budgets.
func Table3Digits(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	budgets := []int{5, 20}
	if cfg.Fast {
		budgets = []int{5}
	}
	tab := &Table{
		Title:   "Table 3: synthetic-digit accuracy (softmax head, mean±std)",
		Columns: []string{"method"},
	}
	for _, pc := range budgets {
		tab.Columns = append(tab.Columns, fmt.Sprintf("n/class=%d", pc))
	}
	m := model.Softmax{Dim: data.DigitDim, Classes: 10}
	rows := map[string][]string{}
	order := []string{"local-erm", "local-ridge", "drdp", "drdp-mlp"}
	for _, pc := range budgets {
		accs := map[string][]float64{}
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			rng := stat.NewRNG(seed)
			gen := data.DigitTask{Noise: 0.45, Jitter: true}
			// Cloud: tasks at lower noise (clean factory data).
			cloudGen := data.DigitTask{Noise: 0.25, Jitter: true}
			buildPrior := func(cloudTrain func(*data.Dataset) (mat.Vec, error), p int) (*dpprior.Compiled, error) {
				var posteriors []dpprior.TaskPosterior
				for k := 0; k < 3; k++ {
					ds := cloudGen.SamplePerClass(rng, 25)
					params, err := cloudTrain(ds)
					if err != nil {
						return nil, fmt.Errorf("table3: cloud task %d: %w", k, err)
					}
					// Full Laplace is O(p²) gradient evaluations at p≈650:
					// too slow here; use an isotropic posterior instead.
					sigma := mat.Eye(p)
					sigma.ScaleBy(0.05)
					posteriors = append(posteriors, dpprior.TaskPosterior{Mu: params, Sigma: sigma, N: ds.Len()})
				}
				prior, err := dpprior.Build(posteriors, dpprior.BuildOptions{Alpha: 1, Seed: seed})
				if err != nil {
					return nil, err
				}
				return dpprior.Compile(prior)
			}
			compiled, err := buildPrior(func(ds *data.Dataset) (mat.Vec, error) {
				return (baseline.Ridge{Model: m, Lambda: 1e-3}).Train(ds.X, ds.Y)
			}, m.NumParams())
			if err != nil {
				return nil, err
			}
			// MLP head with a small hidden layer; the cloud trains MLPs too.
			mlp := model.MLP{Dim: data.DigitDim, Hidden: 8, Classes: 10}
			mlpInit := mlp.InitParams(rng)
			mlpPrior, err := buildPrior(func(ds *data.Dataset) (mat.Vec, error) {
				l, err := core.New(mlp, core.WithInit(mlpInit),
					core.WithMStepOptions(opt.Options{MaxIter: 150}))
				if err != nil {
					return nil, err
				}
				res, err := l.Fit(ds.X, ds.Y)
				if err != nil {
					return nil, err
				}
				return res.Params, nil
			}, mlp.NumParams())
			if err != nil {
				return nil, err
			}

			train := gen.SamplePerClass(rng, pc)
			test := gen.SamplePerClass(rng, 40)
			trainers := []baseline.Trainer{
				baseline.ERM{Model: m},
				baseline.Ridge{Model: m, Lambda: 0.1},
				DRDPTrainer{Model: m, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.01},
					Prior: compiled, EMIters: 5},
			}
			for _, tr := range trainers {
				params, err := tr.Train(train.X, train.Y)
				if err != nil {
					return nil, fmt.Errorf("table3: %s: %w", tr.Name(), err)
				}
				accs[tr.Name()] = append(accs[tr.Name()],
					model.Accuracy(m, params, test.X, test.Y))
			}
			mlpTr := DRDPTrainer{Model: mlp, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.01},
				Prior: mlpPrior, EMIters: 5}
			mlpParams, err := mlpTr.Train(train.X, train.Y)
			if err != nil {
				return nil, fmt.Errorf("table3: drdp-mlp: %w", err)
			}
			accs["drdp-mlp"] = append(accs["drdp-mlp"],
				model.Accuracy(mlp, mlpParams, test.X, test.Y))
		}
		for _, name := range order {
			rows[name] = append(rows[name], Aggregate(accs[name]).String())
		}
	}
	for _, name := range order {
		tab.AddRow(append([]string{name}, rows[name]...)...)
	}
	return tab, nil
}

// Table4SystemsCost regenerates the systems-cost analysis: prior wire
// size and transfer time across link profiles and truncation levels,
// plus per-EM-iteration training wall-clock.
func Table4SystemsCost(cfg RunConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		Title: "Table 4: knowledge-transfer systems cost",
		Columns: []string{"dim", "trunc T", "components", "wire bytes",
			"t(wifi)", "t(4g)", "t(3g)", "edge ms/EM-iter"},
	}
	dims := []int{20, 100}
	if cfg.Fast {
		dims = []int{10}
	}
	for _, d := range dims {
		for _, trunc := range []int{5, 10, 20} {
			s := cfg.scenario(cfg.Seed)
			s.Dim = d
			s.Truncation = trunc
			s.CloudSamples = 200
			b, err := s.Build()
			if err != nil {
				return nil, err
			}
			wire := b.Prior.WireSize()
			// Edge training time per EM iteration.
			train, _ := b.EdgeData(50, 2)
			learner, err := core.New(b.Model,
				core.WithPrior(b.Compiled),
				core.WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
				core.WithEMIters(5, 1e-12))
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := learner.Fit(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			perIter := time.Since(start).Seconds() * 1000 / float64(res.EMIterations)
			tab.AddRow(
				fmt.Sprintf("%d", d),
				fmt.Sprintf("%d", trunc),
				fmt.Sprintf("%d", len(b.Prior.Components)),
				fmt.Sprintf("%d", wire),
				edge.LinkWiFi.TransferTime(wire).String(),
				edge.Link4G.TransferTime(wire).String(),
				edge.Link3G.TransferTime(wire).String(),
				fmt.Sprintf("%.2f", perIter),
			)
		}
	}
	return tab, nil
}

// Figure1RadiusSweep regenerates the robustness–accuracy tradeoff:
// accuracy vs Wasserstein radius ρ on clean and shifted test sets.
func Figure1RadiusSweep(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	rhos := []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.3, 1}
	if cfg.Fast {
		rhos = []float64{0.001, 0.05, 0.3}
	}
	ser := &Series{
		Title:  "Figure 1: accuracy vs Wasserstein radius ρ (n=50)",
		XLabel: "rho",
		X:      rhos,
	}
	clean := make([]float64, len(rhos))
	shifted := make([]float64, len(rhos))
	cert := make([]float64, len(rhos))
	for i, rho := range rhos {
		var cAccs, sAccs, certs []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(50, testSamples)
			shiftedTest := data.UniformShift(test, 0.6)
			tr := DRDPTrainer{Model: b.Model,
				Set: dro.Set{Kind: dro.Wasserstein, Rho: rho}, Prior: b.Compiled}
			params, err := tr.Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			cAccs = append(cAccs, model.Accuracy(b.Model, params, test.X, test.Y))
			sAccs = append(sAccs, model.Accuracy(b.Model, params, shiftedTest.X, shiftedTest.Y))
			rep := metrics.Evaluate(b.Model, params, &data.Dataset{X: train.X, Y: train.Y, NumClasses: 2},
				dro.Set{Kind: dro.Wasserstein, Rho: rho})
			certs = append(certs, rep.RobustLoss)
		}
		clean[i] = Aggregate(cAccs).Mean
		shifted[i] = Aggregate(sAccs).Mean
		cert[i] = Aggregate(certs).Mean
	}
	ser.Add("acc-clean", clean)
	ser.Add("acc-shifted", shifted)
	ser.Add("certificate", cert)
	return ser, nil
}

// Figure2AlphaSweep regenerates the prior-trust dial: accuracy vs DP
// concentration α with a related cloud and with a misleading cloud.
func Figure2AlphaSweep(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	alphas := []float64{0.01, 0.1, 1, 10, 100}
	if cfg.Fast {
		alphas = []float64{0.01, 1, 100}
	}
	ser := &Series{
		Title:  "Figure 2: accuracy vs DP concentration α (n=20)",
		XLabel: "alpha",
		X:      alphas,
	}
	related := make([]float64, len(alphas))
	unrelated := make([]float64, len(alphas))
	baseMass := make([]float64, len(alphas))
	components := make([]float64, len(alphas))
	for i, alpha := range alphas {
		var rel, unrel, bm, nc []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			// Related cloud: standard scenario.
			s := cfg.scenario(seed)
			s.Alpha = alpha
			b, err := s.Build()
			if err != nil {
				return nil, err
			}
			bm = append(bm, b.Prior.BaseWeight)
			nc = append(nc, float64(len(b.Prior.Components)))
			train, test := b.EdgeData(20, testSamples)
			tr := DRDPTrainer{Model: b.Model, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
				Prior: b.Compiled}
			params, err := tr.Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			rel = append(rel, model.Accuracy(b.Model, params, test.X, test.Y))

			// Misleading cloud: negate the component means so the prior
			// points away from the edge task. The multi-start data veto
			// should contain the damage; its strength varies with α via
			// the mixture weights.
			bad := *b.Prior
			bad.Components = append([]dpprior.Component(nil), b.Prior.Components...)
			for j := range bad.Components {
				mu := mat.CloneVec(bad.Components[j].Mu)
				mat.Scale(-1, mu)
				bad.Components[j].Mu = mu
			}
			badCompiled, err := dpprior.Compile(&bad)
			if err != nil {
				return nil, err
			}
			trBad := DRDPTrainer{Model: b.Model, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
				Prior: badCompiled}
			paramsBad, err := trBad.Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			unrel = append(unrel, model.Accuracy(b.Model, paramsBad, test.X, test.Y))
		}
		related[i] = Aggregate(rel).Mean
		unrelated[i] = Aggregate(unrel).Mean
		baseMass[i] = Aggregate(bm).Mean
		components[i] = Aggregate(nc).Mean
	}
	ser.Add("related-cloud", related)
	ser.Add("misleading-cloud", unrelated)
	ser.Add("base-mass", baseMass)
	ser.Add("prior-components", components)
	return ser, nil
}

// Figure3Convergence regenerates the EM convergence study: objective
// trace of one representative fit, demonstrating monotone descent.
func Figure3Convergence(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	b, err := cfg.scenario(cfg.Seed).Build()
	if err != nil {
		return nil, err
	}
	train, _ := b.EdgeData(50, 2)
	learner, err := core.New(b.Model,
		core.WithPrior(b.Compiled),
		core.WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
		core.WithEMIters(20, 1e-12),
		// Start far from the solution so the trace shows real descent.
		core.WithInit(make(mat.Vec, b.Model.NumParams())))
	if err != nil {
		return nil, err
	}
	res, err := learner.Fit(train.X, train.Y)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(res.Trace))
	for i := range xs {
		xs[i] = float64(i)
	}
	ser := &Series{
		Title:  "Figure 3: DRDP objective vs EM iteration (n=50)",
		XLabel: "iteration",
		X:      xs,
	}
	ser.Add("objective", res.Trace)
	return ser, nil
}

// Figure4CloudTasks regenerates the knowledge-accumulation study:
// accuracy vs the number of cloud tasks K behind the prior.
func Figure4CloudTasks(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	ks := []int{1, 2, 4, 8, 16, 32}
	if cfg.Fast {
		ks = []int{1, 4, 16}
	}
	ser := &Series{
		Title:  "Figure 4: accuracy vs number of cloud tasks K (n=20)",
		XLabel: "K",
		X:      make([]float64, len(ks)),
	}
	drdp := make([]float64, len(ks))
	localOnly := make([]float64, len(ks))
	for i, k := range ks {
		ser.X[i] = float64(k)
		var accs, locals []float64
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			s := cfg.scenario(seed)
			s.CloudTasks = k
			b, err := s.Build()
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(20, testSamples)
			tr := DRDPTrainer{Model: b.Model, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
				Prior: b.Compiled}
			params, err := tr.Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			accs = append(accs, model.Accuracy(b.Model, params, test.X, test.Y))
			ermParams, err := (baseline.ERM{Model: b.Model}).Train(train.X, train.Y)
			if err != nil {
				return nil, err
			}
			locals = append(locals, model.Accuracy(b.Model, ermParams, test.X, test.Y))
		}
		drdp[i] = Aggregate(accs).Mean
		localOnly[i] = Aggregate(locals).Mean
	}
	ser.Add("drdp", drdp)
	ser.Add("local-erm", localOnly)
	return ser, nil
}

// Figure5SetAblation regenerates the uncertainty-set ablation: shifted-
// test accuracy for Wasserstein, KL, χ² and no robustness, all with the
// same prior.
func Figure5SetAblation(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	shifts := []float64{0, 0.25, 0.5, 1.0}
	if cfg.Fast {
		shifts = []float64{0, 0.5}
	}
	ser := &Series{
		Title:  "Figure 5: shifted accuracy by uncertainty-set geometry (n=50)",
		XLabel: "shift",
		X:      shifts,
	}
	sets := []dro.Set{
		{Kind: dro.None},
		{Kind: dro.Wasserstein, Rho: 0.2},
		{Kind: dro.KL, Rho: 0.2},
		{Kind: dro.Chi2, Rho: 0.2},
	}
	results := make([][]float64, len(sets))
	for i := range results {
		results[i] = make([]float64, len(shifts))
	}
	for si, eps := range shifts {
		accs := make([][]float64, len(sets))
		for _, seed := range Seeds(cfg.Seed, cfg.Reps) {
			b, err := cfg.scenario(seed).Build()
			if err != nil {
				return nil, err
			}
			train, test := b.EdgeData(50, testSamples)
			shifted := data.UniformShift(test, eps)
			for mi, set := range sets {
				tr := DRDPTrainer{Model: b.Model, Set: set, Prior: b.Compiled}
				params, err := tr.Train(train.X, train.Y)
				if err != nil {
					return nil, err
				}
				accs[mi] = append(accs[mi], model.Accuracy(b.Model, params, shifted.X, shifted.Y))
			}
		}
		for mi := range sets {
			results[mi][si] = Aggregate(accs[mi]).Mean
		}
	}
	for mi, set := range sets {
		ser.Add(set.Kind.String(), results[mi])
	}
	return ser, nil
}

// Figure6MultiDevice regenerates the heterogeneous-fleet study: 20 edge
// devices with non-IID local data pull the same cloud prior; the figure
// reports the per-device accuracy gain of DRDP over local ERM as a
// histogram (series: sorted per-device gains).
func Figure6MultiDevice(cfg RunConfig) (*Series, error) {
	cfg = cfg.withDefaults()
	devices := 20
	if cfg.Fast {
		devices = 8
	}
	s := cfg.scenario(cfg.Seed)
	b, err := s.Build()
	if err != nil {
		return nil, err
	}
	rng := b.RNG()
	gains := make([]float64, 0, devices)
	for dev := 0; dev < devices; dev++ {
		// Each device gets its own related task and a small skewed sample.
		task := b.Family.SampleTask(rng, dev%s.Clusters)
		task.Flip = s.Flip
		pool := task.Sample(rng, 400)
		parts, err := data.DirichletPartition(pool, 10, 0.5, rng)
		if err != nil {
			return nil, err
		}
		local := parts[0] // a skewed shard
		if local.Len() < 4 {
			local = pool.Subset([]int{0, 1, 2, 3})
		}
		test := task.Sample(rng, testSamples)

		tr := DRDPTrainer{Model: b.Model, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
			Prior: b.Compiled}
		params, err := tr.Train(local.X, local.Y)
		if err != nil {
			return nil, err
		}
		ermParams, err := (baseline.ERM{Model: b.Model}).Train(local.X, local.Y)
		if err != nil {
			return nil, err
		}
		gain := model.Accuracy(b.Model, params, test.X, test.Y) -
			model.Accuracy(b.Model, ermParams, test.X, test.Y)
		gains = append(gains, gain)
	}
	// Sorted gains make the "fraction of devices helped" readable.
	sortFloats(gains)
	xs := make([]float64, len(gains))
	for i := range xs {
		xs[i] = float64(i)
	}
	ser := &Series{
		Title:  "Figure 6: per-device accuracy gain of DRDP over local ERM (sorted)",
		XLabel: "device rank",
		X:      xs,
	}
	ser.Add("gain", gains)
	return ser, nil
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
