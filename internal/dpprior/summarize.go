package dpprior

import (
	"fmt"
	"math"

	"github.com/drdp/drdp/internal/mat"
)

// This file is the upward-summarization half of the hierarchical
// (edge → region → cloud) topology: a regional aggregator absorbs raw
// device posteriors locally and ships the cloud a handful of component
// summaries instead. The cloud ingests the summaries through the same
// BatchAddTask path as raw tasks — a summary IS a TaskPosterior, just
// one that stands for a cluster of them.

// DefaultSummaryComponents caps a summarization window's output when
// BuildOptions.MaxComponents is unset (0 means "unlimited" to Build,
// which would defeat summarization).
const DefaultSummaryComponents = 8

// ComponentTasks converts a prior's mixture components back into task
// posteriors: one pseudo-task per component, with the component's mean
// and covariance and totalN apportioned across components by their
// Count share (minimum 1 observation each, so every summary passes
// validation). The result is deterministic in component order.
func ComponentTasks(p *Prior, totalN int) []TaskPosterior {
	if p == nil || len(p.Components) == 0 {
		return nil
	}
	var countSum float64
	for _, c := range p.Components {
		countSum += c.Count
	}
	if countSum <= 0 {
		countSum = float64(len(p.Components))
	}
	if totalN < len(p.Components) {
		totalN = len(p.Components)
	}
	out := make([]TaskPosterior, 0, len(p.Components))
	for _, c := range p.Components {
		share := c.Count / countSum
		if c.Count <= 0 {
			share = 1 / countSum
		}
		n := int(math.Round(share * float64(totalN)))
		if n < 1 {
			n = 1
		}
		if n > MaxTaskN {
			n = MaxTaskN
		}
		mu := make(mat.Vec, len(c.Mu))
		copy(mu, c.Mu)
		sigma := &mat.Dense{Rows: c.Sigma.Rows, Cols: c.Sigma.Cols,
			Data: append([]float64(nil), c.Sigma.Data...)}
		out = append(out, TaskPosterior{Mu: mu, Sigma: sigma, N: n})
	}
	return out
}

// SummarizeTasks clusters a window of task posteriors into at most
// opts.MaxComponents pseudo-tasks via a local DP build, preserving the
// window's total observation count. This is what a regional aggregator
// uploads instead of the raw window: O(components) summaries standing
// for O(window) tasks. Deterministic given tasks (in order) and opts.
// A window no larger than the component budget is returned as-is —
// summarizing would only blur it without saving bytes.
func SummarizeTasks(tasks []TaskPosterior, opts BuildOptions) ([]TaskPosterior, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	budget := opts.MaxComponents
	if budget <= 0 {
		budget = DefaultSummaryComponents
		opts.MaxComponents = budget
	}
	if len(tasks) <= budget {
		return tasks, nil
	}
	p, err := Build(tasks, opts)
	if err != nil {
		return nil, fmt.Errorf("dpprior: summarize window of %d tasks: %w", len(tasks), err)
	}
	totalN := 0
	for _, t := range tasks {
		totalN += t.N
		if totalN > MaxTaskN {
			totalN = MaxTaskN
			break
		}
	}
	return ComponentTasks(p, totalN), nil
}

// WireSize estimates the task's encoded size in bytes on the binary
// codec: 8 bytes per float64 across Mu and Sigma plus fixed framing.
// Used for upload-byte accounting in the regional tier, where the exact
// framing overhead is noise next to the matrix payload.
func (t TaskPosterior) WireSize() int {
	n := 8 * len(t.Mu)
	if t.Sigma != nil {
		n += 8 * len(t.Sigma.Data)
	}
	return n + 16
}
