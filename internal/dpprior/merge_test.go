package dpprior

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// mergeTasks synthesizes a deterministic task set around a few centers.
func mergeTasks(t *testing.T, seed int64, n, dim int) []TaskPosterior {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]TaskPosterior, 0, n)
	for i := 0; i < n; i++ {
		mu := make(mat.Vec, dim)
		center := float64(i%3) * 4
		for j := range mu {
			mu[j] = center + 0.1*rng.NormFloat64()
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(0.05)
		out = append(out, TaskPosterior{Mu: mu, Sigma: sigma, N: 50 + i})
	}
	return out
}

func buildShard(t *testing.T, tasks []TaskPosterior, seed int64) *Prior {
	t.Helper()
	p, err := Build(tasks, BuildOptions{Alpha: 1, Seed: seed})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func mergeGobBytes(t *testing.T, p *Prior) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatalf("encode prior: %v", err)
	}
	return buf.Bytes()
}

func TestMergePriorsSingleShardIdentity(t *testing.T) {
	p := buildShard(t, mergeTasks(t, 1, 6, 4), 7)
	m, err := MergePriors([]*Prior{p})
	if err != nil {
		t.Fatalf("MergePriors: %v", err)
	}
	// A single-shard merge reproduces the prior: identical component
	// shapes and weights (the same CRP division), base mass and scale
	// equal up to the closing-sum rounding.
	if len(m.Components) != len(p.Components) {
		t.Fatalf("components %d, want %d", len(m.Components), len(p.Components))
	}
	for i := range p.Components {
		if m.Components[i].Weight != p.Components[i].Weight {
			t.Fatalf("component %d weight %g, want %g", i, m.Components[i].Weight, p.Components[i].Weight)
		}
		if &m.Components[i].Mu[0] != &p.Components[i].Mu[0] {
			t.Fatalf("component %d mean copied instead of aliased", i)
		}
	}
	if math.Abs(m.BaseWeight-p.BaseWeight) > 1e-12 {
		t.Fatalf("base weight %g, want %g", m.BaseWeight, p.BaseWeight)
	}
	if math.Abs(m.BaseSigma-p.BaseSigma) > 1e-12*p.BaseSigma {
		t.Fatalf("base sigma %g, want %g", m.BaseSigma, p.BaseSigma)
	}
}

func TestMergePriorsDeterministicAndValid(t *testing.T) {
	a := buildShard(t, mergeTasks(t, 2, 5, 4), 11)
	b := buildShard(t, mergeTasks(t, 3, 7, 4), 13)
	c := buildShard(t, mergeTasks(t, 4, 4, 4), 17)

	m1, err := MergePriors([]*Prior{a, b, c})
	if err != nil {
		t.Fatalf("MergePriors: %v", err)
	}
	m2, err := MergePriors([]*Prior{a, b, c})
	if err != nil {
		t.Fatalf("MergePriors (again): %v", err)
	}
	if !bytes.Equal(mergeGobBytes(t, m1), mergeGobBytes(t, m2)) {
		t.Fatalf("merge of identical shard priors is not byte-identical")
	}
	if err := m1.Validate(); err != nil {
		t.Fatalf("merged prior invalid: %v", err)
	}
	if want := len(a.Components) + len(b.Components) + len(c.Components); len(m1.Components) != want {
		t.Fatalf("merged components %d, want %d", len(m1.Components), want)
	}
	// Shapes are aliased, not copied: shard order is preserved.
	if &m1.Components[0].Mu[0] != &a.Components[0].Mu[0] {
		t.Fatalf("merge copied component means instead of aliasing")
	}
	// Nil (cold) shards are skipped without perturbing the result.
	m3, err := MergePriors([]*Prior{nil, a, nil, b, c, nil})
	if err != nil {
		t.Fatalf("MergePriors with nils: %v", err)
	}
	if !bytes.Equal(mergeGobBytes(t, m1), mergeGobBytes(t, m3)) {
		t.Fatalf("nil shards perturbed the merge")
	}
}

func TestMergePriorsErrors(t *testing.T) {
	if _, err := MergePriors(nil); !errors.Is(err, ErrNoShardPriors) {
		t.Fatalf("empty merge: got %v, want ErrNoShardPriors", err)
	}
	if _, err := MergePriors([]*Prior{nil, nil}); !errors.Is(err, ErrNoShardPriors) {
		t.Fatalf("all-nil merge: got %v, want ErrNoShardPriors", err)
	}
	a := buildShard(t, mergeTasks(t, 5, 5, 4), 19)
	b := buildShard(t, mergeTasks(t, 6, 5, 3), 23)
	if _, err := MergePriors([]*Prior{a, b}); err == nil {
		t.Fatalf("dim mismatch accepted")
	}
	c := buildShard(t, mergeTasks(t, 7, 5, 4), 29)
	c.Alpha = 2
	if _, err := MergePriors([]*Prior{a, c}); err == nil {
		t.Fatalf("alpha mismatch accepted")
	}
}

func TestTaskFingerprintStable(t *testing.T) {
	tasks := mergeTasks(t, 8, 4, 4)
	fp := tasks[0].Fingerprint()
	if fp != tasks[0].Fingerprint() {
		t.Fatalf("fingerprint not stable")
	}
	seen := map[uint64]bool{}
	for i := range tasks {
		seen[tasks[i].Fingerprint()] = true
	}
	if len(seen) != len(tasks) {
		t.Fatalf("fingerprint collision across %d distinct tasks", len(tasks))
	}
	clone := TaskPosterior{Mu: append(mat.Vec{}, tasks[0].Mu...), Sigma: tasks[0].Sigma, N: tasks[0].N}
	if clone.Fingerprint() != fp {
		t.Fatalf("identical content, different fingerprint")
	}
	clone.N++
	if clone.Fingerprint() == fp {
		t.Fatalf("changed content, same fingerprint")
	}
}
