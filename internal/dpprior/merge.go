package dpprior

import (
	"errors"
	"fmt"
)

// Cross-shard prior merging: when the task log is split across N shards,
// each shard builds a DP prior over its own task subset and an edge (or
// an aggregator) folds the per-shard component sets back into one prior.
//
// The merge is exact under the CRP predictive view the builder uses: a
// component summarizing m_k tasks carries weight m_k/(α+K) in a prior
// built from K tasks, so components from different shards recombine by
// rescaling every count against the total task population —
// w_k = m_k/(α+ΣK_s), base mass α/(α+ΣK_s) — which is precisely the
// weight each cluster would have had in a single-shard build that found
// the same partition. Component shapes (Mu, Sigma) are aliased, not
// copied, and shard order is preserved, so the merge is deterministic:
// byte-identical shard priors always merge to a byte-identical result.

// ErrNoShardPriors reports a merge with no populated shard priors (every
// shard cold). Test with errors.Is.
var ErrNoShardPriors = errors.New("dpprior: no shard priors to merge")

// MergePriors folds per-shard DP priors into one prior over the union of
// the shards' task sets. Nil entries (cold shards) are skipped; at least
// one populated prior is required. All populated priors must agree on
// Dim and Alpha. Truncation mass a shard already folded into its base
// weight stays in the merged base weight.
func MergePriors(shards []*Prior) (*Prior, error) {
	var live []*Prior
	for _, p := range shards {
		if p != nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil, ErrNoShardPriors
	}
	first := live[0]
	var totalCount float64
	var comps []Component
	var baseSigmaSum float64
	for i, p := range live {
		if p.Dim != first.Dim {
			return nil, fmt.Errorf("dpprior: merge: shard %d dim %d, want %d", i, p.Dim, first.Dim)
		}
		if p.Alpha != first.Alpha {
			return nil, fmt.Errorf("dpprior: merge: shard %d alpha %g, want %g", i, p.Alpha, first.Alpha)
		}
		var shardCount float64
		for _, c := range p.Components {
			shardCount += c.Count
		}
		totalCount += shardCount
		baseSigmaSum += p.BaseSigma * (shardCount + 1)
		comps = append(comps, p.Components...)
	}
	if totalCount <= 0 {
		return nil, ErrNoShardPriors
	}
	alpha := first.Alpha
	denom := alpha + totalCount
	merged := make([]Component, len(comps))
	var compMass float64
	for i, c := range comps {
		merged[i] = Component{
			Weight: c.Count / denom,
			Mu:     c.Mu,
			Sigma:  c.Sigma,
			Count:  c.Count,
		}
		compMass += merged[i].Weight
	}
	// Base mass closes the sum: the CRP new-cluster share α/(α+N) plus
	// whatever mass shard-side truncation had already folded into shard
	// base measures (those counts are absent from compMass). Closing
	// against compMass keeps Validate's Σ=1 check exact after rescaling.
	base := 1 - compMass
	if base <= 0 {
		return nil, fmt.Errorf("dpprior: merge: component mass %g leaves no base measure", compMass)
	}
	p := &Prior{
		Alpha:      alpha,
		Components: merged,
		BaseWeight: base,
		BaseSigma:  baseSigmaSum / (totalCount + float64(len(live))),
		Dim:        first.Dim,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dpprior: merge: %w", err)
	}
	return p, nil
}
