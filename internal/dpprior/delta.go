package dpprior

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Delta synchronization: when the cloud rebuilds the prior after a new
// task report, most mixture components usually survive bit-identically —
// a new task lands in one cluster (or founds its own), the other
// clusters keep their members and therefore moment-match to exactly the
// same mean and covariance; only the CRP weights (whose denominator
// α+K grew) change. The heavy payload of a component is its covariance
// (d² floats), so shipping "keep component i, new weight w" instead of
// the component itself is where the wire savings live.
//
// A PriorDelta describes the new prior relative to a specific old one
// the receiver already holds: Keep entries reference old components by
// index (with updated weight/count), Add entries carry full new
// components, and components the new prior dropped are simply never
// referenced. Apply reconstructs the new prior exactly — same component
// order, same bytes — so a patched cache is indistinguishable from a
// full fetch.

// Fingerprint returns a stable identity for the component's shape (its
// mean and covariance, not its weight): two components with the same
// fingerprint are, modulo hash collisions, the same cluster. Diff uses
// it to pair surviving components across rebuilds; exact float equality
// is verified before a pairing is trusted.
func (c *Component) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(f float64) {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	write(float64(len(c.Mu)))
	for _, v := range c.Mu {
		write(v)
	}
	if c.Sigma != nil {
		for _, v := range c.Sigma.Data {
			write(v)
		}
	}
	return h.Sum64()
}

// sameShape reports exact (bitwise) equality of mean and covariance.
func sameShape(a, b *Component) bool {
	if len(a.Mu) != len(b.Mu) {
		return false
	}
	for i, v := range a.Mu {
		if v != b.Mu[i] {
			return false
		}
	}
	if a.Sigma == nil || b.Sigma == nil {
		return a.Sigma == b.Sigma
	}
	if a.Sigma.Rows != b.Sigma.Rows || a.Sigma.Cols != b.Sigma.Cols {
		return false
	}
	for i, v := range a.Sigma.Data {
		if v != b.Sigma.Data[i] {
			return false
		}
	}
	return true
}

// DeltaKeep reuses one component of the old prior at a new position
// with updated mixture weight and member count.
type DeltaKeep struct {
	Old, New int
	Weight   float64
	Count    float64
}

// DeltaAdd inserts one full component at a new position.
type DeltaAdd struct {
	New  int
	Comp Component
}

// PriorDelta is the wire object of delta synchronization: everything
// needed to rebuild the prior at ToVersion from the prior at
// FromVersion. Components absent from both Keep and Add were removed.
type PriorDelta struct {
	FromVersion, ToVersion uint64

	// Scalar prior fields always ship — they are cheap and all of them
	// (BaseWeight in particular) move on every rebuild.
	Alpha      float64
	BaseWeight float64
	BaseSigma  float64
	Dim        int

	NumComponents int // len(Components) of the target prior
	Keep          []DeltaKeep
	Add           []DeltaAdd
}

// Diff computes the delta that rebuilds new from old. Components are
// paired by shape fingerprint and verified with exact float equality,
// so a Keep entry is always safe to apply. Diff never fails: in the
// worst case (every component changed) the delta degenerates to Add
// entries for everything — compare WireSize against the full prior
// before shipping it.
func Diff(old, new *Prior, fromVersion, toVersion uint64) *PriorDelta {
	d := &PriorDelta{
		FromVersion:   fromVersion,
		ToVersion:     toVersion,
		Alpha:         new.Alpha,
		BaseWeight:    new.BaseWeight,
		BaseSigma:     new.BaseSigma,
		Dim:           new.Dim,
		NumComponents: len(new.Components),
	}
	// Index old components by fingerprint; consume each at most once so
	// duplicate shapes pair one-to-one.
	byFP := make(map[uint64][]int, len(old.Components))
	for i := range old.Components {
		fp := old.Components[i].Fingerprint()
		byFP[fp] = append(byFP[fp], i)
	}
	used := make([]bool, len(old.Components))
	for i := range new.Components {
		nc := &new.Components[i]
		match := -1
		for _, j := range byFP[nc.Fingerprint()] {
			if !used[j] && sameShape(&old.Components[j], nc) {
				match = j
				break
			}
		}
		if match >= 0 {
			used[match] = true
			d.Keep = append(d.Keep, DeltaKeep{Old: match, New: i, Weight: nc.Weight, Count: nc.Count})
		} else {
			d.Add = append(d.Add, DeltaAdd{New: i, Comp: *nc})
		}
	}
	return d
}

// WireSize returns the approximate serialized size in bytes, comparable
// with Prior.WireSize: the cost of shipping this delta to one edge.
func (d *PriorDelta) WireSize() int {
	const f64 = 8
	size := 8 * f64 // versions, alpha, base weight, base sigma, dim, count, slice lens
	size += len(d.Keep) * 4 * f64
	for _, a := range d.Add {
		size += f64 * (3 + len(a.Comp.Mu))
		if a.Comp.Sigma != nil {
			size += f64 * len(a.Comp.Sigma.Data)
		}
	}
	return size
}

// Apply rebuilds the target prior from the old prior the delta was
// computed against. Kept components alias the old prior's Mu/Sigma
// slices — priors are immutable once published, so sharing is safe and
// keeps patching allocation-light. The result is validated before being
// returned.
func (d *PriorDelta) Apply(old *Prior) (*Prior, error) {
	if old == nil {
		return nil, fmt.Errorf("dpprior: apply delta: no base prior")
	}
	if old.Dim != d.Dim {
		return nil, fmt.Errorf("dpprior: apply delta: base dim %d, delta dim %d", old.Dim, d.Dim)
	}
	if d.NumComponents < 0 || d.NumComponents > len(d.Keep)+len(d.Add) {
		return nil, fmt.Errorf("dpprior: apply delta: %d components from %d keep + %d add",
			d.NumComponents, len(d.Keep), len(d.Add))
	}
	comps := make([]Component, d.NumComponents)
	filled := make([]bool, d.NumComponents)
	place := func(at int) error {
		if at < 0 || at >= d.NumComponents {
			return fmt.Errorf("dpprior: apply delta: component index %d out of range [0,%d)", at, d.NumComponents)
		}
		if filled[at] {
			return fmt.Errorf("dpprior: apply delta: component %d assigned twice", at)
		}
		filled[at] = true
		return nil
	}
	for _, k := range d.Keep {
		if k.Old < 0 || k.Old >= len(old.Components) {
			return nil, fmt.Errorf("dpprior: apply delta: keep references old component %d of %d",
				k.Old, len(old.Components))
		}
		if err := place(k.New); err != nil {
			return nil, err
		}
		oc := &old.Components[k.Old]
		comps[k.New] = Component{Weight: k.Weight, Mu: oc.Mu, Sigma: oc.Sigma, Count: k.Count}
	}
	for _, a := range d.Add {
		if err := place(a.New); err != nil {
			return nil, err
		}
		comps[a.New] = a.Comp
	}
	for i, ok := range filled {
		if !ok {
			return nil, fmt.Errorf("dpprior: apply delta: component %d never assigned", i)
		}
	}
	p := &Prior{
		Alpha:      d.Alpha,
		Components: comps,
		BaseWeight: d.BaseWeight,
		BaseSigma:  d.BaseSigma,
		Dim:        d.Dim,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dpprior: apply delta: %w", err)
	}
	return p, nil
}
