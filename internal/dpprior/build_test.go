package dpprior

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// makeTaskFamily creates K task posteriors drawn around nClusters ground-
// truth centers, returning the tasks and their true cluster labels.
func makeTaskFamily(rng *rand.Rand, k, dim, nClusters int, sep float64) ([]TaskPosterior, []int) {
	centers := make([]mat.Vec, nClusters)
	for c := range centers {
		centers[c] = make(mat.Vec, dim)
		for j := range centers[c] {
			centers[c][j] = sep * rng.NormFloat64()
		}
	}
	tasks := make([]TaskPosterior, k)
	labels := make([]int, k)
	for i := range tasks {
		c := i % nClusters
		labels[i] = c
		mu := mat.CloneVec(centers[c])
		for j := range mu {
			mu[j] += 0.2 * rng.NormFloat64()
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(0.05)
		tasks[i] = TaskPosterior{Mu: mu, Sigma: sigma, N: 100 + rng.Intn(100)}
	}
	return tasks, labels
}

func TestBuildRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	tasks, labels := makeTaskFamily(rng, 12, 4, 3, 10)
	p, err := Build(tasks, BuildOptions{Alpha: 1, Seed: 99, GibbsIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("built prior invalid: %v", err)
	}
	if len(p.Components) < 2 || len(p.Components) > 5 {
		t.Errorf("found %d components for 3 well-separated clusters", len(p.Components))
	}
	// Every true cluster center should be near some component mean.
	for c := 0; c < 3; c++ {
		// Center = mean of members' means.
		center := make(mat.Vec, 4)
		var n float64
		for i, l := range labels {
			if l == c {
				mat.Axpy(1, tasks[i].Mu, center)
				n++
			}
		}
		mat.Scale(1/n, center)
		best := math.Inf(1)
		for _, comp := range p.Components {
			if d := mat.Dist2(comp.Mu, center); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("true cluster %d center is %.2f from nearest component", c, best)
		}
	}
}

func TestBuildBaseWeightFollowsAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tasks, _ := makeTaskFamily(rng, 8, 3, 2, 8)
	for _, alpha := range []float64{0.1, 1, 10} {
		p, err := Build(tasks, BuildOptions{Alpha: alpha, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := alpha / (alpha + 8)
		// Truncation may fold extra mass into base; it can only be >= CRP mass.
		if p.BaseWeight < want-1e-9 {
			t.Errorf("alpha=%v: base weight %v < CRP mass %v", alpha, p.BaseWeight, want)
		}
	}
}

func TestBuildTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tasks, _ := makeTaskFamily(rng, 20, 3, 6, 12)
	p, err := Build(tasks, BuildOptions{Alpha: 1, MaxComponents: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) > 2 {
		t.Errorf("truncation to 2 produced %d components", len(p.Components))
	}
	if err := p.Validate(); err != nil {
		t.Errorf("truncated prior invalid: %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tasks, _ := makeTaskFamily(rng, 4, 3, 2, 5)
	if _, err := Build(nil, BuildOptions{Alpha: 1}); err == nil {
		t.Error("Build with no tasks should fail")
	}
	if _, err := Build(tasks, BuildOptions{Alpha: 0}); err == nil {
		t.Error("Build with alpha=0 should fail")
	}
	bad := append([]TaskPosterior(nil), tasks...)
	bad[1].Mu = mat.Vec{1}
	if _, err := Build(bad, BuildOptions{Alpha: 1}); err == nil {
		t.Error("Build with mismatched dims should fail")
	}
	bad2 := append([]TaskPosterior(nil), tasks...)
	bad2[0].Sigma = mat.NewDense(2, 3)
	if _, err := Build(bad2, BuildOptions{Alpha: 1}); err == nil {
		t.Error("Build with bad covariance shape should fail")
	}
}

func TestBuildSingleTask(t *testing.T) {
	sigma := mat.Eye(2)
	tasks := []TaskPosterior{{Mu: mat.Vec{1, 2}, Sigma: sigma, N: 50}}
	p, err := Build(tasks, BuildOptions{Alpha: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) != 1 {
		t.Fatalf("single task produced %d components", len(p.Components))
	}
	if mat.Dist2(p.Components[0].Mu, mat.Vec{1, 2}) > 1e-9 {
		t.Errorf("component mean %v, want {1,2}", p.Components[0].Mu)
	}
	// Weight split 1/(1+1) vs 1/(1+1).
	if math.Abs(p.Components[0].Weight-0.5) > 1e-9 || math.Abs(p.BaseWeight-0.5) > 1e-9 {
		t.Errorf("weights %v/%v, want 0.5/0.5", p.Components[0].Weight, p.BaseWeight)
	}
}

func TestBuildComponentCovarianceIncludesScatter(t *testing.T) {
	// Two tasks far apart that Gibbs should *merge only if scale says so*;
	// force them into one cluster by using a large ClusterScale, and check
	// the resulting covariance captures the between-mean scatter.
	sigma := mat.Eye(1)
	sigma.ScaleBy(0.01)
	tasks := []TaskPosterior{
		{Mu: mat.Vec{-1}, Sigma: sigma.Clone(), N: 10},
		{Mu: mat.Vec{1}, Sigma: sigma.Clone(), N: 10},
	}
	p, err := Build(tasks, BuildOptions{Alpha: 0.01, ClusterScale: 100, BaseSigma: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) != 1 {
		t.Skipf("Gibbs kept tasks separate (%d comps); scatter check needs a merge", len(p.Components))
	}
	// Between-scatter: mean 0, variance 1 (plus 0.01 within) ≈ 1.01.
	gotVar := p.Components[0].Sigma.At(0, 0)
	if math.Abs(gotVar-1.01) > 0.05 {
		t.Errorf("merged covariance %v, want ≈ 1.01 (within + scatter)", gotVar)
	}
}

func TestBuildDPMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	tasks, _ := makeTaskFamily(rng, 12, 4, 3, 10)
	p, err := BuildDPMeans(tasks, 5, BuildOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("DP-means prior invalid: %v", err)
	}
	if len(p.Components) < 2 {
		t.Errorf("DP-means found %d components for 3 separated clusters", len(p.Components))
	}
	// Errors.
	if _, err := BuildDPMeans(nil, 5, BuildOptions{Alpha: 1}); err == nil {
		t.Error("no tasks should fail")
	}
	if _, err := BuildDPMeans(tasks, 0, BuildOptions{Alpha: 1}); err == nil {
		t.Error("lambda=0 should fail")
	}
	if _, err := BuildDPMeans(tasks, 5, BuildOptions{Alpha: 0}); err == nil {
		t.Error("alpha=0 should fail")
	}
}

func TestBuildDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	tasks, _ := makeTaskFamily(rng, 10, 3, 2, 8)
	p1, err := Build(tasks, BuildOptions{Alpha: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(tasks, BuildOptions{Alpha: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Components) != len(p2.Components) {
		t.Fatalf("same seed produced %d vs %d components", len(p1.Components), len(p2.Components))
	}
	for i := range p1.Components {
		if mat.Dist2(p1.Components[i].Mu, p2.Components[i].Mu) > 1e-12 {
			t.Errorf("component %d means differ across identical runs", i)
		}
	}
}
