package dpprior

import (
	"fmt"

	"github.com/drdp/drdp/internal/mat"
)

// CompressionLevel selects how much covariance structure the wire prior
// keeps. Full covariances cost O(d²) floats per component; constrained
// uplinks (Table 4) often cannot afford that for high-dimensional models.
type CompressionLevel int

const (
	// FullCovariance keeps the dense d×d matrices (no compression).
	FullCovariance CompressionLevel = iota
	// DiagonalCovariance keeps only the variances: d floats/component,
	// preserving per-coordinate confidence but dropping correlations.
	DiagonalCovariance
	// SphericalCovariance keeps one variance per component (the mean of
	// the diagonal): 1 float/component, maximal compression.
	SphericalCovariance
)

// String names the level.
func (c CompressionLevel) String() string {
	switch c {
	case FullCovariance:
		return "full"
	case DiagonalCovariance:
		return "diagonal"
	case SphericalCovariance:
		return "spherical"
	default:
		return fmt.Sprintf("CompressionLevel(%d)", int(c))
	}
}

// Compress returns a copy of the prior with every component covariance
// reduced to the requested level. The result is a valid prior whose
// density is an approximation of the original; weights, means and the
// base measure are untouched. Compressing an already-compressed prior is
// a no-op at equal or looser levels.
func (p *Prior) Compress(level CompressionLevel) (*Prior, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &Prior{
		Alpha:      p.Alpha,
		BaseWeight: p.BaseWeight,
		BaseSigma:  p.BaseSigma,
		Dim:        p.Dim,
		Components: make([]Component, len(p.Components)),
	}
	for i, c := range p.Components {
		nc := Component{
			Weight: c.Weight,
			Mu:     mat.CloneVec(c.Mu),
			Count:  c.Count,
		}
		switch level {
		case FullCovariance:
			nc.Sigma = c.Sigma.Clone()
		case DiagonalCovariance:
			d := make(mat.Vec, p.Dim)
			for j := 0; j < p.Dim; j++ {
				d[j] = c.Sigma.At(j, j)
			}
			nc.Sigma = mat.Diag(d)
		case SphericalCovariance:
			v := c.Sigma.Trace() / float64(p.Dim)
			d := make(mat.Vec, p.Dim)
			mat.Fill(d, v)
			nc.Sigma = mat.Diag(d)
		default:
			return nil, fmt.Errorf("dpprior: Compress: unknown level %d", int(level))
		}
		out.Components[i] = nc
	}
	return out, nil
}

// EffectiveWireSize returns the bytes a level-compressed encoding needs,
// assuming the covariance is stored at its natural density (d² floats
// full, d diagonal, 1 spherical). The gob encoding of a compressed Prior
// still ships d² floats (mostly zeros); production deployments would use
// the compact encoding this function models, so Table 4 reports it.
func (p *Prior) EffectiveWireSize(level CompressionLevel) int {
	const f64 = 8
	size := 4 * f64
	for _, c := range p.Components {
		covFloats := 0
		switch level {
		case FullCovariance:
			covFloats = len(c.Sigma.Data)
		case DiagonalCovariance:
			covFloats = p.Dim
		case SphericalCovariance:
			covFloats = 1
		}
		size += f64 * (2 + len(c.Mu) + covFloats)
	}
	return size
}
