// Package dpprior implements the Dirichlet-process machinery that carries
// cloud knowledge to edge devices in drdp: stick-breaking weight
// construction, Chinese-restaurant-process partitions, a truncated DP
// Gaussian-mixture fit over cloud task posteriors (collapsed Gibbs with a
// DP-means fast path), and the serializable Prior object that edges
// receive over the wire.
//
// The prior over edge parameters θ has the truncated stick-breaking form
//
//	p(θ) = Σ_k w_k N(θ; μ_k, Σ_k) + w_0 N(θ; 0, σ0² I)
//
// where the components summarize clusters of cloud tasks and the base
// term is the DP's "new cluster" escape hatch with mass governed by the
// concentration α.
package dpprior

import (
	"fmt"
	"math"
	"math/rand"
)

// StickBreaking draws truncated stick-breaking weights for a DP with
// concentration alpha: v_k ~ Beta(1, alpha), w_k = v_k Π_{j<k}(1-v_j),
// for k = 1..t, with the leftover stick returned as the final remainder.
// The returned weights slice has length t and sums to 1-remainder.
func StickBreaking(rng *rand.Rand, alpha float64, t int) (weights []float64, remainder float64) {
	if alpha <= 0 {
		panic(fmt.Sprintf("dpprior: StickBreaking: alpha must be positive, got %g", alpha))
	}
	if t <= 0 {
		panic(fmt.Sprintf("dpprior: StickBreaking: truncation must be positive, got %d", t))
	}
	weights = make([]float64, t)
	stick := 1.0
	for k := 0; k < t; k++ {
		v := betaSample(rng, 1, alpha)
		weights[k] = v * stick
		stick *= 1 - v
	}
	return weights, stick
}

// ExpectedStickWeights returns the mean of the truncated stick-breaking
// weights, E[w_k] = (1/(1+α)) (α/(1+α))^k, plus the expected remainder.
// These are the deterministic weights used when the prior is built without
// Monte-Carlo stick draws.
func ExpectedStickWeights(alpha float64, t int) (weights []float64, remainder float64) {
	if alpha <= 0 || t <= 0 {
		panic(fmt.Sprintf("dpprior: ExpectedStickWeights: invalid alpha=%g t=%d", alpha, t))
	}
	weights = make([]float64, t)
	stick := 1.0
	frac := 1 / (1 + alpha)
	for k := 0; k < t; k++ {
		weights[k] = frac * stick
		stick *= 1 - frac
	}
	return weights, stick
}

// StickBreakingPY draws truncated Pitman–Yor stick-breaking weights:
// v_k ~ Beta(1−discount, alpha + (k+1)·discount). discount = 0 recovers
// the Dirichlet process; discount ∈ (0,1) produces power-law cluster
// sizes, matching task populations with a long tail of rare task types.
func StickBreakingPY(rng *rand.Rand, discount, alpha float64, t int) (weights []float64, remainder float64) {
	if discount < 0 || discount >= 1 {
		panic(fmt.Sprintf("dpprior: StickBreakingPY: discount %g must be in [0,1)", discount))
	}
	if alpha <= -discount {
		panic(fmt.Sprintf("dpprior: StickBreakingPY: alpha %g must exceed -discount", alpha))
	}
	if t <= 0 {
		panic(fmt.Sprintf("dpprior: StickBreakingPY: truncation must be positive, got %d", t))
	}
	weights = make([]float64, t)
	stick := 1.0
	for k := 0; k < t; k++ {
		v := betaSample(rng, 1-discount, alpha+float64(k+1)*discount)
		weights[k] = v * stick
		stick *= 1 - v
	}
	return weights, stick
}

// CRPPY samples a Pitman–Yor generalized CRP partition: a customer joins
// table t with probability ∝ (count_t − discount) and starts a new table
// with probability ∝ (alpha + tables·discount).
func CRPPY(rng *rand.Rand, n int, discount, alpha float64) []int {
	if discount < 0 || discount >= 1 {
		panic(fmt.Sprintf("dpprior: CRPPY: discount %g must be in [0,1)", discount))
	}
	if alpha <= -discount {
		panic(fmt.Sprintf("dpprior: CRPPY: alpha %g must exceed -discount", alpha))
	}
	assign := make([]int, n)
	var counts []float64
	for i := 0; i < n; i++ {
		newMass := alpha + float64(len(counts))*discount
		total := float64(i) - float64(len(counts))*discount + newMass
		u := rng.Float64() * total
		var acc float64
		table := len(counts)
		for t, c := range counts {
			acc += c - discount
			if u < acc {
				table = t
				break
			}
		}
		if table == len(counts) {
			counts = append(counts, 0)
		}
		counts[table]++
		assign[i] = table
	}
	return assign
}

// CRP samples a Chinese-restaurant-process partition of n items with
// concentration alpha, returning per-item table assignments (0-based,
// tables numbered in order of first occupancy).
func CRP(rng *rand.Rand, n int, alpha float64) []int {
	if alpha <= 0 {
		panic(fmt.Sprintf("dpprior: CRP: alpha must be positive, got %g", alpha))
	}
	assign := make([]int, n)
	var counts []float64
	for i := 0; i < n; i++ {
		total := float64(i) + alpha
		u := rng.Float64() * total
		var acc float64
		table := len(counts) // default: new table
		for t, c := range counts {
			acc += c
			if u < acc {
				table = t
				break
			}
		}
		if table == len(counts) {
			counts = append(counts, 0)
		}
		counts[table]++
		assign[i] = table
	}
	return assign
}

// ExpectedTables returns the expected number of occupied CRP tables for n
// customers at concentration alpha: Σ_{i=0}^{n-1} α/(α+i) ≈ α log(1+n/α).
func ExpectedTables(alpha float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += alpha / (alpha + float64(i))
	}
	return s
}

// betaSample draws Beta(a, b) via the Gamma ratio, inlined here to keep
// dpprior independent of package stat's sampling helpers in this hot path.
func betaSample(rng *rand.Rand, a, b float64) float64 {
	x := gammaSample(rng, a)
	y := gammaSample(rng, b)
	return x / (x + y)
}

// gammaSample draws Gamma(shape=a, rate=1) by Marsaglia–Tsang.
func gammaSample(rng *rand.Rand, a float64) float64 {
	boost := 1.0
	if a < 1 {
		boost = math.Pow(rng.Float64(), 1/a)
		a++
	}
	d := a - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return boost * d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return boost * d * v
		}
	}
}
