package dpprior

import (
	"bytes"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// FuzzDecodePrior hardens the wire decoder: arbitrary bytes must produce
// either a validated prior or an error — never a panic or an un-Validated
// prior (which could carry NaNs or negative weights into training).
func FuzzDecodePrior(f *testing.F) {
	// Seed with a real encoding plus mutations-to-be.
	valid := &Prior{
		Alpha: 1,
		Components: []Component{
			{Weight: 0.7, Mu: mat.Vec{1, 2}, Sigma: mat.Eye(2), Count: 2},
		},
		BaseWeight: 0.3,
		BaseSigma:  5,
		Dim:        2,
	}
	var buf bytes.Buffer
	if err := valid.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Decode(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Whatever decodes must be structurally valid and compilable or
		// rejected by Compile with an error (never a panic).
		if vErr := p.Validate(); vErr != nil {
			t.Fatalf("Decode returned an invalid prior: %v", vErr)
		}
		if _, cErr := Compile(p); cErr != nil {
			// Rejection is fine (e.g. non-PSD covariance); panics are not,
			// and would fail the fuzz run on their own.
			return
		}
	})
}
