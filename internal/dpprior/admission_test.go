package dpprior

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// admTask builds a well-formed task posterior near center.
func admTask(rng *rand.Rand, dim int, center float64) TaskPosterior {
	mu := make(mat.Vec, dim)
	for j := range mu {
		mu[j] = center + 0.3*rng.NormFloat64()
	}
	sigma := mat.Eye(dim)
	sigma.ScaleBy(0.1)
	return TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
}

func TestValidateAcceptsWellFormedTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	task := admTask(rng, 4, 0)
	if err := task.Validate(0); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	if err := task.Validate(4); err != nil {
		t.Errorf("valid task rejected at pinned dim: %v", err)
	}
}

func TestValidateRejectsMalformedTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := func() TaskPosterior { return admTask(rng, 3, 0) }

	cases := []struct {
		name string
		mut  func() (TaskPosterior, int)
	}{
		{"empty mean", func() (TaskPosterior, int) {
			return TaskPosterior{}, 0
		}},
		{"dim mismatch", func() (TaskPosterior, int) {
			return base(), 5
		}},
		{"NaN mean", func() (TaskPosterior, int) {
			task := base()
			task.Mu[1] = math.NaN()
			return task, 0
		}},
		{"Inf mean", func() (TaskPosterior, int) {
			task := base()
			task.Mu[0] = math.Inf(1)
			return task, 0
		}},
		{"nil covariance", func() (TaskPosterior, int) {
			task := base()
			task.Sigma = nil
			return task, 0
		}},
		{"mis-shaped covariance", func() (TaskPosterior, int) {
			task := base()
			task.Sigma = mat.Eye(2)
			return task, 0
		}},
		{"non-finite covariance", func() (TaskPosterior, int) {
			task := base()
			task.Sigma.Set(0, 0, math.NaN())
			return task, 0
		}},
		{"asymmetric covariance", func() (TaskPosterior, int) {
			task := base()
			task.Sigma.Set(0, 1, 7)
			return task, 0
		}},
		{"indefinite covariance", func() (TaskPosterior, int) {
			task := base()
			task.Sigma.Set(1, 1, -2)
			return task, 0
		}},
		{"negative N", func() (TaskPosterior, int) {
			task := base()
			task.N = -1
			return task, 0
		}},
		{"absurd N", func() (TaskPosterior, int) {
			task := base()
			task.N = MaxTaskN + 1
			return task, 0
		}},
	}
	for _, tc := range cases {
		task, dim := tc.mut()
		if err := task.Validate(dim); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestTaskValidatorPinsDim: the stateful recovery validator locks onto
// the first task's dimensionality.
func TestTaskValidatorPinsDim(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	validate := TaskValidator()
	if err := validate(admTask(rng, 4, 0)); err != nil {
		t.Fatalf("first task rejected: %v", err)
	}
	if err := validate(admTask(rng, 4, 1)); err != nil {
		t.Errorf("same-dim task rejected: %v", err)
	}
	if err := validate(admTask(rng, 6, 0)); err == nil {
		t.Error("dim change accepted after pinning")
	}
	// An invalid first task must not pin anything.
	validate = TaskValidator()
	bad := admTask(rng, 2, 0)
	bad.Mu[0] = math.NaN()
	if err := validate(bad); err == nil {
		t.Fatal("NaN first task accepted")
	}
	if err := validate(admTask(rng, 4, 0)); err != nil {
		t.Errorf("valid task rejected after invalid first task: %v", err)
	}
}

func TestFallbackScoresSeparateOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tasks := make([]TaskPosterior, 0, 9)
	for i := 0; i < 8; i++ {
		tasks = append(tasks, admTask(rng, 4, 0))
	}
	outlier := admTask(rng, 4, 50)
	tasks = append(tasks, outlier)
	scores := FallbackScores(tasks)
	for i := 0; i < 8; i++ {
		if scores[8] >= scores[i] {
			t.Fatalf("outlier score %g not below honest score %g", scores[8], scores[i])
		}
	}
}

// TestJudgeColdStart: with no served prior, the model-free fallback
// still quarantines the adversarial upload and keeps the honest ones.
func TestJudgeColdStart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var undecided []TaskPosterior
	for i := 0; i < 9; i++ {
		undecided = append(undecided, admTask(rng, 4, 0))
	}
	undecided = append(undecided, admTask(rng, 4, 80))
	q, _, ok := Judge(nil, nil, undecided, AdmissionOptions{})
	if !ok {
		t.Fatal("population of 10 not judged")
	}
	for i := 0; i < 9; i++ {
		if q[i] {
			t.Errorf("honest task %d quarantined", i)
		}
	}
	if !q[9] {
		t.Error("adversarial task admitted")
	}
}

// TestJudgeWarmPath: with a served prior and an accepted reference set,
// scores come from prior log density and still isolate the outlier.
func TestJudgeWarmPath(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var accepted []TaskPosterior
	for i := 0; i < 8; i++ {
		accepted = append(accepted, admTask(rng, 4, 0))
	}
	prior, err := Build(accepted, BuildOptions{Alpha: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	served, err := Compile(prior)
	if err != nil {
		t.Fatal(err)
	}
	undecided := []TaskPosterior{admTask(rng, 4, 0.2), admTask(rng, 4, -60)}
	q, _, ok := Judge(served, accepted, undecided, AdmissionOptions{})
	if !ok {
		t.Fatal("not judged")
	}
	if q[0] {
		t.Error("honest undecided task quarantined")
	}
	if !q[1] {
		t.Error("adversarial undecided task admitted")
	}
}

// TestJudgeSmallPopulationStaysProvisional: below MinScored nothing is
// judged — robust statistics over two points are noise.
func TestJudgeSmallPopulationStaysProvisional(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	undecided := []TaskPosterior{admTask(rng, 4, 0), admTask(rng, 4, 90)}
	if _, _, ok := Judge(nil, nil, undecided, AdmissionOptions{MinScored: 4}); ok {
		t.Error("population of 2 judged despite MinScored 4")
	}
}

// TestJudgeTrimFracCapsQuarantine: the budget bounds how much one round
// may trim, worst outliers first.
func TestJudgeTrimFracCapsQuarantine(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var undecided []TaskPosterior
	for i := 0; i < 8; i++ {
		undecided = append(undecided, admTask(rng, 4, 0))
	}
	// Three outliers at increasing distance; TrimFrac only allows one
	// quarantine over a population of 11, and it must be the worst.
	undecided = append(undecided, admTask(rng, 4, 40))
	undecided = append(undecided, admTask(rng, 4, 60))
	undecided = append(undecided, admTask(rng, 4, 500))
	q, _, ok := Judge(nil, nil, undecided, AdmissionOptions{TrimFrac: 0.1})
	if !ok {
		t.Fatal("not judged")
	}
	var n int
	for _, v := range q {
		if v {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("trim budget 0.1 over 11 tasks quarantined %d", n)
	}
	if !q[10] {
		t.Error("the worst outlier was not the one quarantined")
	}
}

// TestJudgeNaNScoreIsAlwaysCandidate: a task whose score is NaN (e.g. a
// degenerate mean) is treated as catastrophically low.
func TestJudgeNaNScoreIsAlwaysCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var accepted []TaskPosterior
	for i := 0; i < 8; i++ {
		accepted = append(accepted, admTask(rng, 4, 0))
	}
	prior, err := Build(accepted, BuildOptions{Alpha: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	served, err := Compile(prior)
	if err != nil {
		t.Fatal(err)
	}
	weird := admTask(rng, 4, 0)
	weird.Mu[0] = math.Inf(1) // LogDensity goes non-finite
	q, _, ok := Judge(served, accepted, []TaskPosterior{weird}, AdmissionOptions{})
	if !ok {
		t.Fatal("not judged")
	}
	if !q[0] {
		t.Error("non-finite-scoring task admitted")
	}
}

// TestJudgeScaleScreenCatchesPlausibleMeanHijack: an attacker who copies
// a perfectly plausible mean but claims a huge sample count and a tiny
// covariance — to dominate the sample-weighted component mean — scores
// fine on mean plausibility and is caught only by the scale screen.
func TestJudgeScaleScreenCatchesPlausibleMeanHijack(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var honest []TaskPosterior
	for i := 0; i < 9; i++ {
		honest = append(honest, admTask(rng, 4, 0))
	}
	hijack := admTask(rng, 4, 0) // mean indistinguishable from honest
	hijack.Sigma = mat.Eye(4)
	hijack.Sigma.ScaleBy(1e-4)
	hijack.N = 100000

	// Cold start (no served prior): FallbackScores alone would admit it.
	undecided := append(append([]TaskPosterior(nil), honest...), hijack)
	q, _, ok := Judge(nil, nil, undecided, AdmissionOptions{})
	if !ok {
		t.Fatal("not judged")
	}
	for i := range honest {
		if q[i] {
			t.Errorf("honest task %d quarantined by scale screen", i)
		}
	}
	if !q[len(honest)] {
		t.Error("plausible-mean hijack admitted cold")
	}

	// Warm path: density scoring gives the hijack a fine score too.
	prior, err := Build(honest, BuildOptions{Alpha: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	served, err := Compile(prior)
	if err != nil {
		t.Fatal(err)
	}
	q, _, ok = Judge(served, honest, []TaskPosterior{hijack}, AdmissionOptions{})
	if !ok {
		t.Fatal("not judged warm")
	}
	if !q[0] {
		t.Error("plausible-mean hijack admitted warm")
	}
}

// TestJudgeDefersOverBudgetCandidates: in a population so small the
// trim budget rounds to zero, a flagged candidate must come back
// deferred — not silently accepted (verdicts are sticky, so a wrong
// accept here would let the attacker into every future rebuild). With
// a budget the same candidate is quarantined outright.
func TestJudgeDefersOverBudgetCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var undecided []TaskPosterior
	for i := 0; i < 3; i++ {
		undecided = append(undecided, admTask(rng, 4, 0))
	}
	hijack := admTask(rng, 4, 0)
	hijack.Sigma = mat.Eye(4)
	hijack.Sigma.ScaleBy(1e-4)
	hijack.N = 100000
	undecided = append(undecided, hijack)

	// Default TrimFrac 0.2 over a population of 4: budget int(0.8) = 0.
	q, def, ok := Judge(nil, nil, undecided, AdmissionOptions{})
	if !ok {
		t.Fatal("population of 4 not judged")
	}
	for i := 0; i < 3; i++ {
		if q[i] || def[i] {
			t.Errorf("honest task %d quarantined=%v deferred=%v", i, q[i], def[i])
		}
	}
	if q[3] {
		t.Error("hijack quarantined despite a zero budget")
	}
	if !def[3] {
		t.Error("over-budget hijack not deferred — a sticky accept verdict")
	}

	// Same round with budget for one: quarantined, no longer deferred.
	q, def, ok = Judge(nil, nil, undecided, AdmissionOptions{TrimFrac: 0.3})
	if !ok {
		t.Fatal("not judged with budget")
	}
	if !q[3] || def[3] {
		t.Errorf("with budget 1: quarantined=%v deferred=%v, want true/false", q[3], def[3])
	}
}

// TestJudgeScaleScreenToleratesHonestHeterogeneity: a data-poor device
// (16x fewer samples, correspondingly wider posterior) in a data-rich
// fleet stays inside the scale screen's absolute floor.
func TestJudgeScaleScreenToleratesHonestHeterogeneity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var honest []TaskPosterior
	for i := 0; i < 9; i++ {
		honest = append(honest, admTask(rng, 4, 0))
	}
	small := admTask(rng, 4, 0)
	small.N = 6 // ~16x below the fleet's 100
	small.Sigma = mat.Eye(4)
	small.Sigma.ScaleBy(1.6) // ~16x above the fleet's 0.1
	undecided := append(append([]TaskPosterior(nil), honest...), small)
	q, _, ok := Judge(nil, nil, undecided, AdmissionOptions{})
	if !ok {
		t.Fatal("not judged")
	}
	if q[len(honest)] {
		t.Error("honest data-poor device quarantined")
	}
}
