package dpprior

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStickBreakingSimplexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(rawAlpha float64, rawT uint8) bool {
		alpha := math.Mod(math.Abs(rawAlpha), 20) + 0.01
		tr := int(rawT%30) + 1
		w, rem := StickBreaking(rng, alpha, tr)
		if len(w) != tr || rem < 0 || rem > 1 {
			return false
		}
		total := rem
		for _, v := range w {
			if v < 0 || v > 1 {
				return false
			}
			total += v
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStickBreakingSmallAlphaConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// With tiny alpha the first stick takes nearly everything.
	var first float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		w, _ := StickBreaking(rng, 0.05, 10)
		first += w[0]
	}
	if first/trials < 0.9 {
		t.Errorf("E[w_0] at alpha=0.05 is %v, expected > 0.9", first/trials)
	}
}

func TestStickBreakingLargeAlphaSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var first, rem float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		w, r := StickBreaking(rng, 50, 10)
		first += w[0]
		rem += r
	}
	if first/trials > 0.1 {
		t.Errorf("E[w_0] at alpha=50 is %v, expected < 0.1", first/trials)
	}
	if rem/trials < 0.5 {
		t.Errorf("E[remainder] at alpha=50, T=10 is %v, expected large", rem/trials)
	}
}

func TestStickBreakingPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct {
		alpha float64
		t     int
	}{{0, 5}, {-1, 5}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StickBreaking(%v, %v) did not panic", tc.alpha, tc.t)
				}
			}()
			StickBreaking(rng, tc.alpha, tc.t)
		}()
	}
}

func TestExpectedStickWeights(t *testing.T) {
	w, rem := ExpectedStickWeights(1, 3)
	// E[w_k] = (1/2)^(k+1): 1/2, 1/4, 1/8, remainder 1/8.
	want := []float64{0.5, 0.25, 0.125}
	for i, v := range want {
		if math.Abs(w[i]-v) > 1e-12 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], v)
		}
	}
	if math.Abs(rem-0.125) > 1e-12 {
		t.Errorf("remainder = %v, want 0.125", rem)
	}
}

func TestExpectedStickMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alpha, tr := 2.0, 5
	want, _ := ExpectedStickWeights(alpha, tr)
	got := make([]float64, tr)
	const trials = 20000
	for i := 0; i < trials; i++ {
		w, _ := StickBreaking(rng, alpha, tr)
		for j, v := range w {
			got[j] += v
		}
	}
	for j := range got {
		got[j] /= trials
		if math.Abs(got[j]-want[j]) > 0.01 {
			t.Errorf("E[w_%d]: MC %v vs analytic %v", j, got[j], want[j])
		}
	}
}

func TestCRPBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	assign := CRP(rng, 100, 1)
	if len(assign) != 100 {
		t.Fatalf("CRP returned %d assignments", len(assign))
	}
	if assign[0] != 0 {
		t.Error("first customer must sit at table 0")
	}
	// Tables must be numbered contiguously in order of first occupancy.
	maxSeen := -1
	for _, a := range assign {
		if a < 0 {
			t.Fatalf("negative table %d", a)
		}
		if a > maxSeen+1 {
			t.Fatalf("table numbering skipped: saw %d after max %d", a, maxSeen)
		}
		if a > maxSeen {
			maxSeen = a
		}
	}
}

func TestCRPTableGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	countTables := func(alpha float64) float64 {
		const trials = 300
		var total float64
		for i := 0; i < trials; i++ {
			assign := CRP(rng, 200, alpha)
			max := 0
			for _, a := range assign {
				if a > max {
					max = a
				}
			}
			total += float64(max + 1)
		}
		return total / trials
	}
	small := countTables(0.5)
	large := countTables(10)
	if small >= large {
		t.Errorf("tables(alpha=0.5)=%v should be < tables(alpha=10)=%v", small, large)
	}
	// Compare against the exact expectation.
	want := ExpectedTables(10, 200)
	if math.Abs(large-want) > 0.15*want {
		t.Errorf("tables at alpha=10: MC %v vs analytic %v", large, want)
	}
}

func TestStickBreakingPYSimplexAndDPLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Simplex property across parameters.
	for _, d := range []float64{0, 0.3, 0.7} {
		for trial := 0; trial < 50; trial++ {
			w, rem := StickBreakingPY(rng, d, 1, 12)
			total := rem
			for _, v := range w {
				if v < 0 || v > 1 {
					t.Fatalf("weight %v out of range", v)
				}
				total += v
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("total %v", total)
			}
		}
	}
	// discount=0 matches the DP expectation E[w_0] = 1/(1+α).
	var first float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		w, _ := StickBreakingPY(rng, 0, 2, 5)
		first += w[0]
	}
	if math.Abs(first/trials-1.0/3) > 0.01 {
		t.Errorf("PY(0, 2) E[w_0] = %v, want 1/3", first/trials)
	}
}

func TestStickBreakingPYPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct{ d, a float64 }{{-0.1, 1}, {1, 1}, {0.5, -0.6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StickBreakingPY(%v, %v) did not panic", tc.d, tc.a)
				}
			}()
			StickBreakingPY(rng, tc.d, tc.a, 5)
		}()
	}
}

func TestCRPPYPowerLawTables(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tables := func(d float64) float64 {
		const trials = 200
		var total float64
		for i := 0; i < trials; i++ {
			assign := CRPPY(rng, 500, d, 1)
			max := 0
			for _, a := range assign {
				if a > max {
					max = a
				}
			}
			total += float64(max + 1)
		}
		return total / trials
	}
	dp := tables(0)
	py := tables(0.5)
	// PY with positive discount produces many more tables (n^d growth
	// vs log n).
	if py < 2*dp {
		t.Errorf("PY tables %v not ≫ DP tables %v", py, dp)
	}
	// discount=0 matches the DP analytic expectation.
	if want := ExpectedTables(1, 500); math.Abs(dp-want) > 0.15*want {
		t.Errorf("CRPPY(d=0) tables %v vs DP analytic %v", dp, want)
	}
}

func TestExpectedTables(t *testing.T) {
	// n=1: exactly 1 table regardless of alpha.
	if got := ExpectedTables(3, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("ExpectedTables(3,1) = %v, want 1", got)
	}
	// n=2, alpha=1: 1 + 1/2.
	if got := ExpectedTables(1, 2); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("ExpectedTables(1,2) = %v, want 1.5", got)
	}
}
