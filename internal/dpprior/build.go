package dpprior

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/drdp/drdp/internal/mat"
)

// TaskPosterior is the cloud-side summary of one previously solved task:
// a Gaussian posterior over that task's parameters and the sample count
// that produced it.
type TaskPosterior struct {
	Mu    mat.Vec
	Sigma *mat.Dense
	N     int // training samples behind this posterior
}

// BuildOptions configures prior construction on the cloud.
type BuildOptions struct {
	// Alpha is the DP concentration; it sets the base-measure mass
	// α/(α+K) that a brand-new edge task receives. Must be positive.
	Alpha float64
	// MaxComponents truncates the mixture; mass of dropped clusters is
	// folded into the base measure. Zero means no truncation.
	MaxComponents int
	// BaseSigma is the scale of the isotropic base measure. Zero selects
	// a data-driven default (twice the RMS norm of the task means).
	BaseSigma float64
	// ClusterScale is the within-cluster standard deviation used by the
	// collapsed Gibbs clustering. Zero selects a data-driven default
	// (the mean task-posterior standard deviation).
	ClusterScale float64
	// GibbsIters is the number of collapsed Gibbs sweeps (default 50).
	GibbsIters int
	// Seed drives the Gibbs sampler.
	Seed int64
}

func (o *BuildOptions) defaults(tasks []TaskPosterior) BuildOptions {
	out := *o
	if out.GibbsIters <= 0 {
		out.GibbsIters = 50
	}
	if out.BaseSigma <= 0 {
		var ss float64
		for _, t := range tasks {
			n := mat.Norm2(t.Mu)
			ss += n * n
		}
		out.BaseSigma = 2 * math.Sqrt(ss/float64(len(tasks))+1)
	}
	if out.ClusterScale <= 0 {
		var s float64
		for _, t := range tasks {
			s += math.Sqrt(t.Sigma.Trace() / float64(t.Sigma.Rows))
		}
		out.ClusterScale = s/float64(len(tasks)) + 1e-6
	}
	return out
}

// Build constructs the DP mixture prior from cloud task posteriors:
// it clusters the tasks with a collapsed Gibbs sampler for a conjugate
// spherical DP Gaussian mixture over the task means, then moment-matches
// one Gaussian component per cluster (within-task posterior covariance
// plus between-task scatter). Component weights follow the CRP predictive
// for the next task: w_k = m_k/(α+K), base weight α/(α+K).
func Build(tasks []TaskPosterior, opts BuildOptions) (*Prior, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("dpprior: Build: no tasks")
	}
	if opts.Alpha <= 0 {
		return nil, fmt.Errorf("dpprior: Build: alpha %g must be positive", opts.Alpha)
	}
	dim := len(tasks[0].Mu)
	for i, t := range tasks {
		if len(t.Mu) != dim {
			return nil, fmt.Errorf("dpprior: Build: task %d has dim %d, want %d", i, len(t.Mu), dim)
		}
		if t.Sigma == nil || t.Sigma.Rows != dim || t.Sigma.Cols != dim {
			return nil, fmt.Errorf("dpprior: Build: task %d covariance has wrong shape", i)
		}
	}
	o := opts.defaults(tasks)
	rng := rand.New(rand.NewSource(o.Seed))

	assign := gibbsCluster(rng, tasks, o)
	return assemble(tasks, assign, o)
}

// gibbsCluster runs collapsed Gibbs sweeps over cluster assignments for
// the task means under the conjugate model
//
//	x_j | c ~ N(φ_c, s² I),  φ_c ~ N(0, σ0² I),  partition ~ CRP(α).
func gibbsCluster(rng *rand.Rand, tasks []TaskPosterior, o BuildOptions) []int {
	n := len(tasks)
	dim := len(tasks[0].Mu)
	s2 := o.ClusterScale * o.ClusterScale
	sigma02 := o.BaseSigma * o.BaseSigma

	// Cluster state: member counts and coordinate sums.
	type cluster struct {
		count int
		sum   mat.Vec
	}
	var clusters []*cluster
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	// Predictive log density of x joining cluster c (nil = new cluster).
	predictive := func(x mat.Vec, c *cluster) float64 {
		var postVar, quad float64
		if c == nil || c.count == 0 {
			postVar = sigma02 + s2
			quad = mat.Dot(x, x)
		} else {
			prec := 1/sigma02 + float64(c.count)/s2
			postVar = 1/prec + s2
			var ss float64
			for j, v := range x {
				m := c.sum[j] / s2 / prec
				d := v - m
				ss += d * d
			}
			quad = ss
		}
		return -0.5*float64(dim)*math.Log(2*math.Pi*postVar) - quad/(2*postVar)
	}

	addTo := func(i, c int) {
		assign[i] = c
		clusters[c].count++
		mat.Axpy(1, tasks[i].Mu, clusters[c].sum)
	}
	removeFrom := func(i int) {
		c := clusters[assign[i]]
		c.count--
		mat.Axpy(-1, tasks[i].Mu, c.sum)
		assign[i] = -1
	}

	// Sequential initialization then Gibbs sweeps.
	for sweep := 0; sweep <= o.GibbsIters; sweep++ {
		for i := 0; i < n; i++ {
			if assign[i] >= 0 {
				removeFrom(i)
			}
			logp := make([]float64, 0, len(clusters)+1)
			ids := make([]int, 0, len(clusters)+1)
			for c, cl := range clusters {
				if cl.count == 0 {
					continue
				}
				logp = append(logp, math.Log(float64(cl.count))+predictive(tasks[i].Mu, cl))
				ids = append(ids, c)
			}
			logp = append(logp, math.Log(o.Alpha)+predictive(tasks[i].Mu, nil))
			ids = append(ids, -1)

			probs := mat.Softmax(logp, logp)
			u := rng.Float64()
			var acc float64
			choice := len(probs) - 1
			for k, p := range probs {
				acc += p
				if u < acc {
					choice = k
					break
				}
			}
			target := ids[choice]
			if target == -1 {
				// Reuse an emptied slot if available, else grow.
				target = -1
				for c, cl := range clusters {
					if cl.count == 0 {
						target = c
						break
					}
				}
				if target == -1 {
					clusters = append(clusters, &cluster{sum: make(mat.Vec, dim)})
					target = len(clusters) - 1
				}
			}
			addTo(i, target)
		}
	}
	// Renumber clusters densely.
	remap := map[int]int{}
	out := make([]int, n)
	for i, a := range assign {
		id, ok := remap[a]
		if !ok {
			id = len(remap)
			remap[a] = id
		}
		out[i] = id
	}
	return out
}

// assemble moment-matches one component per cluster and applies CRP
// predictive weights with truncation.
func assemble(tasks []TaskPosterior, assign []int, o BuildOptions) (*Prior, error) {
	dim := len(tasks[0].Mu)
	nClusters := 0
	for _, a := range assign {
		if a+1 > nClusters {
			nClusters = a + 1
		}
	}
	type group struct {
		members []int
	}
	groups := make([]group, nClusters)
	for i, a := range assign {
		groups[a].members = append(groups[a].members, i)
	}

	comps := make([]Component, 0, nClusters)
	for _, g := range groups {
		if len(g.members) == 0 {
			continue
		}
		// Sample-count-weighted mean of member means.
		var totalN float64
		mu := make(mat.Vec, dim)
		for _, j := range g.members {
			w := float64(tasks[j].N)
			if w <= 0 {
				w = 1
			}
			mat.Axpy(w, tasks[j].Mu, mu)
			totalN += w
		}
		mat.Scale(1/totalN, mu)
		// Covariance: weighted within-task posterior covariance plus
		// between-task scatter of the member means.
		sigma := mat.NewDense(dim, dim)
		for _, j := range g.members {
			w := float64(tasks[j].N)
			if w <= 0 {
				w = 1
			}
			sigma.AddScaled(w/totalN, tasks[j].Sigma)
			d := mat.SubVec(tasks[j].Mu, mu)
			sigma.OuterAdd(w/totalN, d, d)
		}
		sigma.Symmetrize()
		comps = append(comps, Component{
			Mu:    mu,
			Sigma: sigma,
			Count: float64(len(g.members)),
		})
	}

	k := float64(len(tasks))
	base := o.Alpha / (o.Alpha + k)
	for i := range comps {
		comps[i].Weight = comps[i].Count / (o.Alpha + k)
	}

	// Truncate: keep the heaviest clusters, fold dropped mass into base.
	if o.MaxComponents > 0 && len(comps) > o.MaxComponents {
		sort.Slice(comps, func(i, j int) bool { return comps[i].Weight > comps[j].Weight })
		for _, c := range comps[o.MaxComponents:] {
			base += c.Weight
		}
		comps = comps[:o.MaxComponents]
	}

	p := &Prior{
		Alpha:      o.Alpha,
		Components: comps,
		BaseWeight: base,
		BaseSigma:  o.BaseSigma,
		Dim:        dim,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dpprior: assemble: %w", err)
	}
	return p, nil
}

// BuildDPMeans is a deterministic, fast alternative to Build: it clusters
// task means with the DP-means algorithm (k-means with a new-cluster
// penalty λ) and then assembles components exactly as Build does. Useful
// when the cloud must rebuild priors at high rate; used by the systems
// ablation in Table 4.
func BuildDPMeans(tasks []TaskPosterior, lambda float64, opts BuildOptions) (*Prior, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("dpprior: BuildDPMeans: no tasks")
	}
	if opts.Alpha <= 0 {
		return nil, fmt.Errorf("dpprior: BuildDPMeans: alpha %g must be positive", opts.Alpha)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("dpprior: BuildDPMeans: lambda %g must be positive", lambda)
	}
	o := opts.defaults(tasks)
	dim := len(tasks[0].Mu)

	centers := []mat.Vec{mat.CloneVec(tasks[0].Mu)}
	assign := make([]int, len(tasks))
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, t := range tasks {
			best, bestD := -1, lambda
			for c, center := range centers {
				if d := mat.Dist2(t.Mu, center); d < bestD {
					best, bestD = c, d
				}
			}
			if best == -1 {
				centers = append(centers, mat.CloneVec(t.Mu))
				best = len(centers) - 1
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centers.
		counts := make([]float64, len(centers))
		for c := range centers {
			centers[c] = make(mat.Vec, dim)
		}
		for i, t := range tasks {
			mat.Axpy(1, t.Mu, centers[assign[i]])
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				mat.Scale(1/counts[c], centers[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	// Renumber densely (empty clusters possible after recompute).
	remap := map[int]int{}
	for i, a := range assign {
		id, ok := remap[a]
		if !ok {
			id = len(remap)
			remap[a] = id
		}
		assign[i] = id
	}
	return assemble(tasks, assign, o)
}
