package dpprior

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/parallel"
	"github.com/drdp/drdp/internal/stat"
)

// Component is one Gaussian atom of the truncated DP mixture prior.
type Component struct {
	Weight float64    // mixture weight, > 0
	Mu     mat.Vec    // component mean in parameter space
	Sigma  *mat.Dense // component covariance, SPD
	Count  float64    // how many cloud tasks this component summarizes
}

// Prior is the serializable cloud→edge knowledge object: a truncated
// stick-breaking Dirichlet-process mixture over edge model parameters,
// with an isotropic Gaussian base measure carrying the DP's new-cluster
// mass. All fields are exported so the prior round-trips through
// encoding/gob unchanged.
type Prior struct {
	Alpha      float64     // DP concentration
	Components []Component // the mixture atoms (weights + base sum to 1)
	BaseWeight float64     // mass on the base measure N(0, BaseSigma² I)
	BaseSigma  float64     // base measure scale, > 0
	Dim        int         // parameter dimensionality
}

// Validate reports the first structural problem in p, or nil.
func (p *Prior) Validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("dpprior: prior dim %d must be positive", p.Dim)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("dpprior: prior alpha %g must be positive", p.Alpha)
	}
	if p.BaseSigma <= 0 {
		return fmt.Errorf("dpprior: prior base sigma %g must be positive", p.BaseSigma)
	}
	if p.BaseWeight < 0 {
		return fmt.Errorf("dpprior: base weight %g must be non-negative", p.BaseWeight)
	}
	total := p.BaseWeight
	for i, c := range p.Components {
		if c.Weight <= 0 {
			return fmt.Errorf("dpprior: component %d weight %g must be positive", i, c.Weight)
		}
		if len(c.Mu) != p.Dim {
			return fmt.Errorf("dpprior: component %d mean dim %d, want %d", i, len(c.Mu), p.Dim)
		}
		if c.Sigma == nil || c.Sigma.Rows != p.Dim || c.Sigma.Cols != p.Dim {
			return fmt.Errorf("dpprior: component %d covariance has wrong shape", i)
		}
		total += c.Weight
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("dpprior: weights sum to %g, want 1", total)
	}
	return nil
}

// WireSize returns the approximate serialized size in bytes: the
// communication cost the cloud pays to ship this prior to one edge.
func (p *Prior) WireSize() int {
	const f64 = 8
	size := 4 * f64 // alpha, base weight, base sigma, dim
	for _, c := range p.Components {
		size += f64 * (2 + len(c.Mu) + len(c.Sigma.Data))
	}
	return size
}

// Encode writes the prior to w in gob format.
func (p *Prior) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("dpprior: encode prior: %w", err)
	}
	return nil
}

// Decode reads a prior from r and validates it.
func Decode(r io.Reader) (*Prior, error) {
	var p Prior
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("dpprior: decode prior: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Compiled is a Prior with per-component Cholesky factors and precision
// matrices precomputed for the hot paths: log density, responsibilities,
// and the EM quadratic surrogate's value/gradient. Compile once per
// training run; Compiled is safe for concurrent readers.
type Compiled struct {
	Prior      *Prior
	comps      []*stat.MVNormal
	precisions []*mat.Dense // Σ_k⁻¹ for each component
	logW       []float64    // log weights, index len(comps) = base
	basePrec   float64      // 1/BaseSigma²
}

// ErrEmptyPrior reports a prior with no mass anywhere.
var ErrEmptyPrior = errors.New("dpprior: prior has no components and zero base weight")

// Compile validates p and precomputes factorizations.
func Compile(p *Prior) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Components) == 0 && p.BaseWeight == 0 {
		return nil, ErrEmptyPrior
	}
	c := &Compiled{
		Prior:      p,
		comps:      make([]*stat.MVNormal, len(p.Components)),
		precisions: make([]*mat.Dense, len(p.Components)),
		logW:       make([]float64, len(p.Components)+1),
		basePrec:   1 / (p.BaseSigma * p.BaseSigma),
	}
	for i, comp := range p.Components {
		mv, err := stat.NewMVNormal(comp.Mu, comp.Sigma)
		if err != nil {
			return nil, fmt.Errorf("dpprior: component %d: %w", i, err)
		}
		c.comps[i] = mv
		c.precisions[i] = mv.Precision()
		c.logW[i] = math.Log(comp.Weight)
	}
	if p.BaseWeight > 0 {
		c.logW[len(p.Components)] = math.Log(p.BaseWeight)
	} else {
		c.logW[len(p.Components)] = math.Inf(-1)
	}
	return c, nil
}

// Dim returns the parameter dimensionality.
func (c *Compiled) Dim() int { return c.Prior.Dim }

// NumComponents returns the number of mixture atoms (excluding the base).
func (c *Compiled) NumComponents() int { return len(c.comps) }

// LogDensity returns log p(θ) under the mixture prior.
func (c *Compiled) LogDensity(theta mat.Vec) float64 {
	lp := c.componentLogJoint(theta)
	return mat.LogSumExp(lp)
}

// Responsibilities returns the posterior component responsibilities
// γ_k ∝ w_k N(θ; μ_k, Σ_k) at the current iterate θ; the final entry is
// the base-measure responsibility. The result sums to 1.
func (c *Compiled) Responsibilities(theta mat.Vec) []float64 {
	return c.ResponsibilitiesPool(nil, theta)
}

// ResponsibilitiesPool is Responsibilities with the per-component
// Gaussian density evaluations fanned out on the pool. Each component
// writes its own slot of the log-joint vector and the softmax runs
// serially, so the result is bit-identical to the nil-pool (inline)
// path at any worker count.
func (c *Compiled) ResponsibilitiesPool(p *parallel.Pool, theta mat.Vec) []float64 {
	lp := c.componentLogJointPool(p, theta)
	return mat.Softmax(lp, lp)
}

// componentLogJoint returns log w_k + log N(θ; μ_k, Σ_k) per component,
// with the base measure appended.
func (c *Compiled) componentLogJoint(theta mat.Vec) []float64 {
	return c.componentLogJointPool(nil, theta)
}

func (c *Compiled) componentLogJointPool(p *parallel.Pool, theta mat.Vec) []float64 {
	lp := make([]float64, len(c.comps)+1)
	p.ForEach(len(c.comps), func(i int) {
		lp[i] = c.logW[i] + c.comps[i].LogPDF(theta)
	})
	base := c.logW[len(c.comps)]
	if !math.IsInf(base, -1) {
		base += stat.LogNormPDF(theta, make(mat.Vec, c.Prior.Dim), c.Prior.BaseSigma)
	}
	lp[len(c.comps)] = base
	return lp
}

// SurrogateValue evaluates the EM majorization surrogate of −log p(θ)
// at theta given responsibilities gamma (the additive constant involving
// entropy and normalizers is dropped — it does not affect the M-step):
//
//	S(θ; γ) = Σ_k γ_k ½(θ−μ_k)ᵀ Σ_k⁻¹ (θ−μ_k) + γ_0 ½ θᵀθ / σ0²
func (c *Compiled) SurrogateValue(theta mat.Vec, gamma []float64) float64 {
	c.checkGamma(gamma)
	var s float64
	for i, prec := range c.precisions {
		if gamma[i] == 0 {
			continue
		}
		diff := mat.SubVec(theta, c.Prior.Components[i].Mu)
		s += gamma[i] * 0.5 * prec.QuadForm(diff)
	}
	if g0 := gamma[len(c.precisions)]; g0 > 0 {
		s += g0 * 0.5 * c.basePrec * mat.Dot(theta, theta)
	}
	return s
}

// SurrogateGrad accumulates ∇_θ S(θ; γ) into dst (which must have length
// Dim) and returns dst:
//
//	∇S = Σ_k γ_k Σ_k⁻¹ (θ−μ_k) + γ_0 θ/σ0²
func (c *Compiled) SurrogateGrad(theta mat.Vec, gamma []float64, dst mat.Vec) mat.Vec {
	c.checkGamma(gamma)
	if dst == nil {
		dst = make(mat.Vec, len(theta))
	}
	for i, prec := range c.precisions {
		if gamma[i] == 0 {
			continue
		}
		diff := mat.SubVec(theta, c.Prior.Components[i].Mu)
		mat.Axpy(gamma[i], prec.MulVec(diff), dst)
	}
	if g0 := gamma[len(c.precisions)]; g0 > 0 {
		mat.Axpy(g0*c.basePrec, theta, dst)
	}
	return dst
}

// Sample draws θ from the prior: pick a component (or base) by weight,
// then draw from the chosen Gaussian.
func (c *Compiled) Sample(rng *rand.Rand) mat.Vec {
	u := rng.Float64()
	var acc float64
	for i, comp := range c.Prior.Components {
		acc += comp.Weight
		if u < acc {
			return c.comps[i].Sample(rng)
		}
	}
	// Base measure (also the round-off fallthrough).
	x := make(mat.Vec, c.Prior.Dim)
	for j := range x {
		x[j] = c.Prior.BaseSigma * rng.NormFloat64()
	}
	return x
}

func (c *Compiled) checkGamma(gamma []float64) {
	if len(gamma) != len(c.precisions)+1 {
		panic(fmt.Sprintf("dpprior: responsibilities length %d, want %d (components+base)",
			len(gamma), len(c.precisions)+1))
	}
}
