package dpprior

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/stat"
)

// twoComponentPrior builds a small well-formed prior for tests.
func twoComponentPrior() *Prior {
	return &Prior{
		Alpha: 1,
		Components: []Component{
			{Weight: 0.5, Mu: mat.Vec{2, 0}, Sigma: mat.Eye(2), Count: 3},
			{Weight: 0.3, Mu: mat.Vec{-2, 0}, Sigma: mat.Diag(mat.Vec{0.5, 0.5}), Count: 2},
		},
		BaseWeight: 0.2,
		BaseSigma:  5,
		Dim:        2,
	}
}

func TestPriorValidate(t *testing.T) {
	p := twoComponentPrior()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid prior rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Prior)
	}{
		{"zero dim", func(p *Prior) { p.Dim = 0 }},
		{"bad alpha", func(p *Prior) { p.Alpha = 0 }},
		{"bad base sigma", func(p *Prior) { p.BaseSigma = -1 }},
		{"negative base weight", func(p *Prior) { p.BaseWeight = -0.1 }},
		{"zero component weight", func(p *Prior) { p.Components[0].Weight = 0 }},
		{"weights off simplex", func(p *Prior) { p.BaseWeight = 0.5 }},
		{"wrong mean dim", func(p *Prior) { p.Components[0].Mu = mat.Vec{1} }},
		{"nil sigma", func(p *Prior) { p.Components[1].Sigma = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := twoComponentPrior()
			tt.mutate(q)
			if err := q.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestPriorGobRoundTrip(t *testing.T) {
	p := twoComponentPrior()
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Alpha != p.Alpha || q.Dim != p.Dim || q.BaseWeight != p.BaseWeight {
		t.Errorf("scalar fields changed: %+v vs %+v", q, p)
	}
	if len(q.Components) != len(p.Components) {
		t.Fatalf("component count %d, want %d", len(q.Components), len(p.Components))
	}
	for i := range q.Components {
		if !q.Components[i].Sigma.Equal(p.Components[i].Sigma, 0) {
			t.Errorf("component %d sigma changed", i)
		}
		if mat.Dist2(q.Components[i].Mu, p.Components[i].Mu) != 0 {
			t.Errorf("component %d mean changed", i)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	p := twoComponentPrior()
	p.Alpha = -1 // invalid but encodable
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Fatal("Decode accepted an invalid prior")
	}
}

func TestWireSize(t *testing.T) {
	p := twoComponentPrior()
	// 4 scalars + 2 components × (2 scalars + 2 mean + 4 cov) = 4+16 floats.
	want := 8 * (4 + 2*(2+2+4))
	if got := p.WireSize(); got != want {
		t.Errorf("WireSize = %d, want %d", got, want)
	}
	// The gob encoding should be within a small factor of the estimate.
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < want/2 {
		t.Errorf("gob size %d suspiciously small vs estimate %d", buf.Len(), want)
	}
}

func TestCompileRejectsBadPrior(t *testing.T) {
	p := twoComponentPrior()
	p.Dim = 0
	if _, err := Compile(p); err == nil {
		t.Fatal("Compile accepted invalid prior")
	}
}

func TestCompiledLogDensityMatchesManual(t *testing.T) {
	p := twoComponentPrior()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	theta := mat.Vec{1, 1}
	mv0, _ := stat.NewMVNormal(p.Components[0].Mu, p.Components[0].Sigma)
	mv1, _ := stat.NewMVNormal(p.Components[1].Mu, p.Components[1].Sigma)
	manual := math.Log(0.5*math.Exp(mv0.LogPDF(theta)) +
		0.3*math.Exp(mv1.LogPDF(theta)) +
		0.2*math.Exp(stat.LogNormPDF(theta, mat.Vec{0, 0}, 5)))
	if got := c.LogDensity(theta); math.Abs(got-manual) > 1e-10 {
		t.Errorf("LogDensity = %v, want %v", got, manual)
	}
}

func TestResponsibilitiesSimplexAndConcentration(t *testing.T) {
	c, err := Compile(twoComponentPrior())
	if err != nil {
		t.Fatal(err)
	}
	// At a point on top of component 0's mean, component 0 dominates.
	gamma := c.Responsibilities(mat.Vec{2, 0})
	if len(gamma) != 3 {
		t.Fatalf("got %d responsibilities, want 3 (2 comps + base)", len(gamma))
	}
	var sum float64
	for _, g := range gamma {
		if g < 0 {
			t.Fatalf("negative responsibility %v", g)
		}
		sum += g
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("responsibilities sum to %v", sum)
	}
	if gamma[0] < 0.9 {
		t.Errorf("component 0 responsibility at its mean = %v, want > 0.9", gamma[0])
	}
	// Far away from all components, the broad base measure wins.
	gammaFar := c.Responsibilities(mat.Vec{30, 30})
	if gammaFar[2] < 0.99 {
		t.Errorf("base responsibility far away = %v, want ≈ 1", gammaFar[2])
	}
}

func TestSurrogateValueAndGradConsistency(t *testing.T) {
	c, err := Compile(twoComponentPrior())
	if err != nil {
		t.Fatal(err)
	}
	theta := mat.Vec{0.7, -1.3}
	gamma := c.Responsibilities(theta)

	// Finite-difference check of SurrogateGrad against SurrogateValue.
	grad := c.SurrogateGrad(theta, gamma, nil)
	const h = 1e-6
	for i := range theta {
		tp := mat.CloneVec(theta)
		tm := mat.CloneVec(theta)
		tp[i] += h
		tm[i] -= h
		fd := (c.SurrogateValue(tp, gamma) - c.SurrogateValue(tm, gamma)) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, finite diff %v", i, grad[i], fd)
		}
	}
}

func TestSurrogateMajorizesNegLogDensity(t *testing.T) {
	// MM property: for the surrogate S built at θ0 with γ(θ0),
	// S(θ) - S(θ0) >= (-log p(θ)) - (-log p(θ0)) for all θ
	// (the surrogate majorizes the objective up to an additive constant).
	c, err := Compile(twoComponentPrior())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		theta0 := mat.Vec{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		gamma := c.Responsibilities(theta0)
		base := c.SurrogateValue(theta0, gamma) - (-c.LogDensity(theta0))
		theta := mat.Vec{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		lhs := c.SurrogateValue(theta, gamma) - (-c.LogDensity(theta))
		if lhs < base-1e-8 {
			t.Fatalf("majorization violated at θ0=%v θ=%v: gap %v < %v",
				theta0, theta, lhs, base)
		}
	}
}

func TestCompiledSampleMixtureFrequencies(t *testing.T) {
	c, err := Compile(twoComponentPrior())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	const trials = 20000
	var nearC0 int
	for i := 0; i < trials; i++ {
		x := c.Sample(rng)
		if len(x) != 2 {
			t.Fatalf("sample dim %d", len(x))
		}
		if mat.Dist2(x, mat.Vec{2, 0}) < 3 {
			nearC0++
		}
	}
	frac := float64(nearC0) / trials
	// Component 0 has weight 0.5 and is tight; expect roughly half the
	// draws near its mean (some base-measure draws land there too).
	if frac < 0.4 || frac > 0.75 {
		t.Errorf("fraction near component 0 = %v, expected ≈ 0.5", frac)
	}
}

func TestCompileEmptyPrior(t *testing.T) {
	p := &Prior{Alpha: 1, BaseWeight: 1, BaseSigma: 2, Dim: 3}
	c, err := Compile(p)
	if err != nil {
		t.Fatalf("base-only prior should compile: %v", err)
	}
	// Log density must match the base Gaussian exactly.
	theta := mat.Vec{1, 2, 3}
	want := stat.LogNormPDF(theta, mat.Vec{0, 0, 0}, 2)
	if got := c.LogDensity(theta); math.Abs(got-want) > 1e-10 {
		t.Errorf("base-only LogDensity = %v, want %v", got, want)
	}
}
