package dpprior

import (
	"fmt"
	"math"
)

// SelectAlpha chooses the DP concentration by empirical Bayes: it
// alternates (a) clustering the tasks at the current α and (b) maximizing
// the Chinese-restaurant-process likelihood of the resulting partition
// over α,
//
//	log p(partition | α) = K log α + Σ_c log Γ(|c|) − Σ_{i<n} log(α+i),
//
// which is concave in α and solved by golden-section search on log α.
// The cluster-data marginals do not involve α, so this is the exact EB
// update given the hardened partition. Returns the selected α and the
// prior built with it. opts.Alpha is ignored (it is what's being chosen).
func SelectAlpha(tasks []TaskPosterior, opts BuildOptions) (float64, *Prior, error) {
	if len(tasks) == 0 {
		return 0, nil, fmt.Errorf("dpprior: SelectAlpha: no tasks")
	}
	n := len(tasks)
	alpha := 1.0
	for round := 0; round < 8; round++ {
		o := opts
		o.Alpha = alpha
		p, err := Build(tasks, o)
		if err != nil {
			return 0, nil, fmt.Errorf("dpprior: SelectAlpha: %w", err)
		}
		sizes := make([]float64, len(p.Components))
		for i, c := range p.Components {
			sizes[i] = c.Count
		}
		next := maximizeCRPAlpha(sizes, n)
		if math.Abs(math.Log(next)-math.Log(alpha)) < 1e-3 {
			alpha = next
			break
		}
		alpha = next
	}
	// Rebuild at the final α so weights use it.
	o := opts
	o.Alpha = alpha
	p, err := Build(tasks, o)
	if err != nil {
		return 0, nil, fmt.Errorf("dpprior: SelectAlpha: final build: %w", err)
	}
	return alpha, p, nil
}

// CRPLogLik returns log p(partition | alpha) for the given cluster sizes
// (the normalizing data terms are omitted — they are α-free).
func CRPLogLik(sizes []float64, n int, alpha float64) float64 {
	if alpha <= 0 {
		return math.Inf(-1)
	}
	ll := float64(len(sizes)) * math.Log(alpha)
	for _, s := range sizes {
		lg, _ := math.Lgamma(s)
		ll += lg // log Γ(|c|) = log (|c|−1)!
	}
	for i := 0; i < n; i++ {
		ll -= math.Log(alpha + float64(i))
	}
	return ll
}

// maximizeCRPAlpha maximizes CRPLogLik over α by golden-section search
// on log α in [1e-3, 1e3].
func maximizeCRPAlpha(sizes []float64, n int) float64 {
	neg := func(logA float64) float64 {
		return -CRPLogLik(sizes, n, math.Exp(logA))
	}
	const invPhi = 0.6180339887498949
	a, b := math.Log(1e-3), math.Log(1e3)
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := neg(x1), neg(x2)
	for i := 0; i < 100; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = neg(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = neg(x2)
		}
	}
	return math.Exp((a + b) / 2)
}
