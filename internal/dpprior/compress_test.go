package dpprior

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func corrPrior() *Prior {
	sigma := mat.FromRows([][]float64{{1, 0.8}, {0.8, 1}})
	return &Prior{
		Alpha: 1,
		Components: []Component{
			{Weight: 0.9, Mu: mat.Vec{1, -1}, Sigma: sigma, Count: 3},
		},
		BaseWeight: 0.1,
		BaseSigma:  5,
		Dim:        2,
	}
}

func TestCompressDiagonal(t *testing.T) {
	p := corrPrior()
	c, err := p.Compress(DiagonalCovariance)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("compressed prior invalid: %v", err)
	}
	s := c.Components[0].Sigma
	if s.At(0, 0) != 1 || s.At(1, 1) != 1 {
		t.Errorf("diagonal lost: %+v", s)
	}
	if s.At(0, 1) != 0 || s.At(1, 0) != 0 {
		t.Errorf("correlations kept: %+v", s)
	}
	// Original untouched.
	if p.Components[0].Sigma.At(0, 1) != 0.8 {
		t.Error("Compress mutated original")
	}
}

func TestCompressSpherical(t *testing.T) {
	p := corrPrior()
	p.Components[0].Sigma = mat.Diag(mat.Vec{2, 4})
	c, err := p.Compress(SphericalCovariance)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Components[0].Sigma
	if s.At(0, 0) != 3 || s.At(1, 1) != 3 {
		t.Errorf("spherical variance should be mean 3: %+v", s)
	}
}

func TestCompressFullIsClone(t *testing.T) {
	p := corrPrior()
	c, err := p.Compress(FullCovariance)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Components[0].Sigma.Equal(p.Components[0].Sigma, 0) {
		t.Error("full compression changed covariance")
	}
	c.Components[0].Sigma.Set(0, 0, 99)
	if p.Components[0].Sigma.At(0, 0) == 99 {
		t.Error("full compression aliased storage")
	}
}

func TestCompressErrors(t *testing.T) {
	p := corrPrior()
	if _, err := p.Compress(CompressionLevel(42)); err == nil {
		t.Error("unknown level accepted")
	}
	bad := corrPrior()
	bad.Alpha = -1
	if _, err := bad.Compress(DiagonalCovariance); err == nil {
		t.Error("invalid prior accepted")
	}
}

func TestEffectiveWireSize(t *testing.T) {
	p := corrPrior() // 1 component, dim 2
	full := p.EffectiveWireSize(FullCovariance)
	diag := p.EffectiveWireSize(DiagonalCovariance)
	sph := p.EffectiveWireSize(SphericalCovariance)
	if !(sph < diag && diag < full) {
		t.Errorf("sizes not ordered: %d %d %d", sph, diag, full)
	}
	// full: 4 + (2+2+4) = 12 floats; diag: 4+(2+2+2)=10; sph: 4+(2+2+1)=9.
	if full != 12*8 || diag != 10*8 || sph != 9*8 {
		t.Errorf("sizes %d/%d/%d, want 96/80/72", full, diag, sph)
	}
	if p.WireSize() != full {
		t.Errorf("WireSize %d disagrees with full effective %d", p.WireSize(), full)
	}
}

func TestCompressionLevelString(t *testing.T) {
	for level, want := range map[CompressionLevel]string{
		FullCovariance: "full", DiagonalCovariance: "diagonal", SphericalCovariance: "spherical",
	} {
		if got := level.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestCompressedPriorStillUseful(t *testing.T) {
	// A diagonal-compressed prior must compile and give a density close
	// to the full prior away from strong-correlation directions.
	rng := rand.New(rand.NewSource(200))
	tasks, _ := makeTaskFamily(rng, 8, 5, 2, 8)
	p, err := Build(tasks, BuildOptions{Alpha: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := p.Compress(DiagonalCovariance)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Compile(diag)
	if err != nil {
		t.Fatal(err)
	}
	// At each component mean both densities are high and within a few
	// nats of each other (they share means and marginal variances).
	for _, comp := range p.Components {
		lf := cf.LogDensity(comp.Mu)
		ld := cd.LogDensity(comp.Mu)
		if math.Abs(lf-ld) > 10 {
			t.Errorf("densities diverge at a component mean: full %v diag %v", lf, ld)
		}
	}
}
