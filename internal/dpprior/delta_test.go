package dpprior

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// deltaPrior builds a small valid prior whose component shapes are
// controlled by the centers, so tests can change exactly one cluster.
func deltaPrior(t *testing.T, centers []float64, weights []float64, base float64) *Prior {
	t.Helper()
	dim := 3
	comps := make([]Component, len(centers))
	for i, c := range centers {
		mu := mat.Vec{c, c, c}
		sig := mat.NewDense(dim, dim)
		for j := 0; j < dim; j++ {
			sig.Set(j, j, 0.5+0.1*float64(i))
		}
		comps[i] = Component{Weight: weights[i], Mu: mu, Sigma: sig, Count: float64(i + 1)}
	}
	p := &Prior{Alpha: 1, Components: comps, BaseWeight: base, BaseSigma: 2, Dim: dim}
	if err := p.Validate(); err != nil {
		t.Fatalf("test prior invalid: %v", err)
	}
	return p
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDiffApplyRoundTrip: a one-component change plus global reweighting
// produces a delta that (a) keeps the unchanged components, (b) applies
// back to an exactly equal prior, and (c) is smaller on the wire.
func TestDiffApplyRoundTrip(t *testing.T) {
	old := deltaPrior(t, []float64{1, 5, 9}, []float64{0.3, 0.3, 0.3}, 0.1)
	// New prior: same shapes for clusters 0 and 1 (reweighted), cluster 2
	// replaced by a new shape, plus an extra component.
	next := deltaPrior(t, []float64{1, 5, 12, 20}, []float64{0.2, 0.2, 0.2, 0.3}, 0.1)
	// Force clusters 0,1 to be bitwise-identical shapes.
	next.Components[0].Mu = old.Components[0].Mu
	next.Components[0].Sigma = old.Components[0].Sigma
	next.Components[1].Mu = old.Components[1].Mu
	next.Components[1].Sigma = old.Components[1].Sigma

	d := Diff(old, next, 3, 4)
	if len(d.Keep) != 2 {
		t.Fatalf("kept %d components, want 2 (delta %+v)", len(d.Keep), d)
	}
	if len(d.Add) != 2 {
		t.Fatalf("added %d components, want 2", len(d.Add))
	}
	if d.WireSize() >= next.WireSize() {
		t.Errorf("delta wire size %d not smaller than full %d", d.WireSize(), next.WireSize())
	}

	got, err := d.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, got), gobBytes(t, next)) {
		t.Error("patched prior is not byte-identical to the target")
	}
}

// TestDiffAllChanged: nothing survives → pure-Add delta that still
// applies correctly (the caller falls back to full on size).
func TestDiffAllChanged(t *testing.T) {
	old := deltaPrior(t, []float64{1, 5}, []float64{0.4, 0.5}, 0.1)
	next := deltaPrior(t, []float64{2, 6}, []float64{0.4, 0.5}, 0.1)
	d := Diff(old, next, 1, 2)
	if len(d.Keep) != 0 || len(d.Add) != 2 {
		t.Fatalf("keep=%d add=%d, want 0/2", len(d.Keep), len(d.Add))
	}
	got, err := d.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, got), gobBytes(t, next)) {
		t.Error("pure-add delta did not reproduce the target")
	}
}

// TestDeltaRemovedComponent: dropping a component works and weights
// re-validate.
func TestDeltaRemovedComponent(t *testing.T) {
	old := deltaPrior(t, []float64{1, 5, 9}, []float64{0.3, 0.3, 0.3}, 0.1)
	next := deltaPrior(t, []float64{1, 5}, []float64{0.45, 0.45}, 0.1)
	next.Components[0].Mu = old.Components[0].Mu
	next.Components[0].Sigma = old.Components[0].Sigma
	next.Components[1].Mu = old.Components[1].Mu
	next.Components[1].Sigma = old.Components[1].Sigma

	d := Diff(old, next, 5, 6)
	if len(d.Keep) != 2 || len(d.Add) != 0 {
		t.Fatalf("keep=%d add=%d, want 2/0", len(d.Keep), len(d.Add))
	}
	got, err := d.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Components) != 2 {
		t.Fatalf("patched prior has %d components, want 2", len(got.Components))
	}
}

// TestDeltaApplyRejectsCorruptDeltas: malformed index sets must error,
// not panic or produce an invalid prior.
func TestDeltaApplyRejectsCorruptDeltas(t *testing.T) {
	old := deltaPrior(t, []float64{1, 5}, []float64{0.4, 0.5}, 0.1)
	next := deltaPrior(t, []float64{1, 6}, []float64{0.4, 0.5}, 0.1)
	next.Components[0].Mu = old.Components[0].Mu
	next.Components[0].Sigma = old.Components[0].Sigma
	good := Diff(old, next, 1, 2)

	cases := map[string]func(*PriorDelta){
		"keep-old-out-of-range": func(d *PriorDelta) { d.Keep[0].Old = 99 },
		"keep-new-out-of-range": func(d *PriorDelta) { d.Keep[0].New = 99 },
		"double-fill":           func(d *PriorDelta) { d.Add[0].New = d.Keep[0].New },
		"hole":                  func(d *PriorDelta) { d.NumComponents = 3 },
		"dim-mismatch":          func(d *PriorDelta) { d.Dim = 7 },
	}
	for name, corrupt := range cases {
		d := *good
		d.Keep = append([]DeltaKeep(nil), good.Keep...)
		d.Add = append([]DeltaAdd(nil), good.Add...)
		corrupt(&d)
		if _, err := d.Apply(old); err == nil {
			t.Errorf("%s: corrupt delta applied cleanly", name)
		}
	}
	if _, err := good.Apply(nil); err == nil {
		t.Error("applying to a nil base prior did not error")
	}
}

// TestFingerprintStability: fingerprints are deterministic, ignore
// weight/count, and differ across shapes.
func TestFingerprintStability(t *testing.T) {
	p := deltaPrior(t, []float64{1, 2}, []float64{0.4, 0.5}, 0.1)
	a := &p.Components[0]
	fp := a.Fingerprint()
	if fp != a.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
	b := *a
	b.Weight, b.Count = 0.9, 42
	if b.Fingerprint() != fp {
		t.Error("fingerprint depends on weight/count")
	}
	if p.Components[1].Fingerprint() == fp {
		t.Error("distinct shapes share a fingerprint")
	}
}

// TestDiffOnRebuiltPriors: the realistic path — Build over n tasks, then
// over n+1 where the extra task founds its own far-away cluster. The
// surviving clusters must pair as Keeps so the delta beats the full
// prior on the wire.
func TestDiffOnRebuiltPriors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dim := 4
	mkTask := func(center float64) TaskPosterior {
		mu := make(mat.Vec, dim)
		for i := range mu {
			mu[i] = center + 0.05*rng.NormFloat64()
		}
		sig := mat.NewDense(dim, dim)
		for i := 0; i < dim; i++ {
			sig.Set(i, i, 0.1)
		}
		return TaskPosterior{Mu: mu, Sigma: sig, N: 50}
	}
	var tasks []TaskPosterior
	for i := 0; i < 4; i++ {
		tasks = append(tasks, mkTask(-20))
	}
	for i := 0; i < 4; i++ {
		tasks = append(tasks, mkTask(20))
	}
	opts := BuildOptions{Alpha: 1, Seed: 3}
	oldP, err := Build(tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	newP, err := Build(append(tasks, mkTask(60)), opts)
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(oldP, newP, 8, 9)
	if len(d.Keep) == 0 {
		t.Fatalf("no components survived the rebuild: keep=%d add=%d", len(d.Keep), len(d.Add))
	}
	if d.WireSize() >= newP.WireSize() {
		t.Errorf("delta %dB not smaller than full prior %dB", d.WireSize(), newP.WireSize())
	}
	got, err := d.Apply(oldP)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, got), gobBytes(t, newP)) {
		t.Error("patched prior differs from the rebuilt prior")
	}
}
