package dpprior

import (
	"fmt"
	"math"
	"sort"

	"github.com/drdp/drdp/internal/mat"
)

// MaxTaskN bounds TaskPosterior.N: a sample count above it is treated as
// corrupt or adversarial (it would let one upload dominate every
// weighted aggregation in the prior).
const MaxTaskN = 1 << 30

// Validate reports the first semantic problem in the task posterior, or
// nil: the mean must be non-empty and finite (and match dim when dim is
// non-zero), the covariance must be present, square, symmetric and
// numerically positive definite (up to the same tiny diagonal jitter
// MVNormal itself tolerates), and the sample count must be sane. This is
// the cloud's admission gate: everything an edge uploads — and every
// CRC-valid record recovered from disk — passes through it before it can
// influence a served prior.
func (t *TaskPosterior) Validate(dim int) error {
	if len(t.Mu) == 0 {
		return fmt.Errorf("dpprior: task posterior has an empty mean")
	}
	if dim > 0 && len(t.Mu) != dim {
		return fmt.Errorf("dpprior: task posterior dim %d, want %d", len(t.Mu), dim)
	}
	for j, v := range t.Mu {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dpprior: task posterior mean[%d] is %g", j, v)
		}
	}
	d := len(t.Mu)
	if t.Sigma == nil {
		return fmt.Errorf("dpprior: task posterior has no covariance")
	}
	if t.Sigma.Rows != d || t.Sigma.Cols != d {
		return fmt.Errorf("dpprior: task posterior covariance %dx%d for dim %d",
			t.Sigma.Rows, t.Sigma.Cols, d)
	}
	scale := t.Sigma.MaxAbs()
	if math.IsNaN(scale) || math.IsInf(scale, 0) {
		return fmt.Errorf("dpprior: task posterior covariance has non-finite entries: %w", mat.ErrNotFinite)
	}
	symTol := 1e-8 * (1 + scale)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if diff := math.Abs(t.Sigma.At(i, j) - t.Sigma.At(j, i)); diff > symTol {
				return fmt.Errorf("dpprior: task posterior covariance is asymmetric at (%d,%d): |Δ|=%g", i, j, diff)
			}
		}
	}
	// The same tolerance the density hot path applies: a hair of diagonal
	// jitter may rescue a borderline Laplace covariance, but NaN/Inf and
	// genuinely indefinite matrices are rejected outright.
	if _, _, err := mat.NewCholeskyJitter(t.Sigma, 1e-10, 3); err != nil {
		return fmt.Errorf("dpprior: task posterior covariance: %w", err)
	}
	if t.N < 0 || t.N > MaxTaskN {
		return fmt.Errorf("dpprior: task posterior sample count %d out of range [0, %d]", t.N, MaxTaskN)
	}
	return nil
}

// TaskValidator returns a stateful validator for a stream of task
// posteriors: the first valid task pins the dimensionality and every
// later task must agree with it. It is the recovery-side admission gate
// (store.Options.Validate) — a corrupted-but-CRC-valid record cannot
// resurrect a poisoned prior after a restart.
func TaskValidator() func(TaskPosterior) error {
	dim := 0
	return func(t TaskPosterior) error {
		if err := t.Validate(dim); err != nil {
			return err
		}
		if dim == 0 {
			dim = len(t.Mu)
		}
		return nil
	}
}

// AdmissionOptions tunes statistical quarantine (see Judge).
type AdmissionOptions struct {
	// TrimFrac caps the fraction of the scored population that one
	// judgment round may quarantine (default 0.2). Raise it when more
	// than a fifth of the fleet may be hostile.
	TrimFrac float64
	// MinScored is the smallest population (accepted + undecided) worth
	// judging; below it every task stays provisional (default 4) —
	// robust statistics over two points are noise.
	MinScored int
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.TrimFrac <= 0 {
		o.TrimFrac = 0.2
	}
	if o.MinScored <= 0 {
		o.MinScored = 4
	}
	return o
}

// outlierK is the MAD-rule cutoff: a task is a quarantine candidate when
// its score falls more than outlierK robust standard deviations
// (1.4826·MAD) below the population median. Deliberately generous —
// heterogeneous task clusters must not read as attacks; adversarial
// posteriors land orders of magnitude further out.
const outlierK = 6.0

// ScoreTasks scores each task's plausibility as the log density of its
// posterior mean under the currently served prior. Admitted tasks anchor
// the score distribution; a poisoned upload scores catastrophically
// below it.
func ScoreTasks(c *Compiled, tasks []TaskPosterior) []float64 {
	scores := make([]float64, len(tasks))
	for i, t := range tasks {
		scores[i] = c.LogDensity(t.Mu)
	}
	return scores
}

// FallbackScores scores tasks without a served prior (cold start): the
// negative robust distance of each task mean from the coordinate-wise
// median, in coordinate MAD units. Model-free, so a hostile task that
// managed to get into an early build cannot vouch for itself.
func FallbackScores(tasks []TaskPosterior) []float64 {
	if len(tasks) == 0 {
		return nil
	}
	dim := len(tasks[0].Mu)
	med := make([]float64, dim)
	madU := make([]float64, dim)
	col := make([]float64, len(tasks))
	for j := 0; j < dim; j++ {
		for i, t := range tasks {
			col[i] = t.Mu[j]
		}
		med[j] = median(col)
		for i, t := range tasks {
			col[i] = math.Abs(t.Mu[j] - med[j])
		}
		m := median(col)
		madU[j] = math.Max(m, 1e-9*(1+math.Abs(med[j])))
	}
	scores := make([]float64, len(tasks))
	for i, t := range tasks {
		var ss float64
		for j, v := range t.Mu {
			z := (v - med[j]) / madU[j]
			ss += z * z
		}
		scores[i] = -math.Sqrt(ss / float64(dim))
	}
	return scores
}

// scaleLogFloor is the absolute tolerance, in log units, of the scale
// screen: even in a perfectly homogeneous fleet (MAD 0) a task is not
// flagged until its claimed sample count or covariance scale is more
// than a 64× ratio away from the fleet median. Honest heterogeneity
// (data-rich vs data-poor devices, ~10–20×) stays well inside it;
// hijack attacks need orders of magnitude and land far outside.
var scaleLogFloor = math.Log(64)

// scaleOutliers flags tasks whose claimed evidence scale is implausible
// against the population: a log sample count far ABOVE the robust range
// (overclaiming — one upload would dominate every sample-weighted
// aggregation) or a log covariance scale far BELOW it (overconfidence —
// a density spike that can vouch for itself or capture EM starts).
// Deviations are measured in outlierK robust standard deviations with
// the scaleLogFloor absolute floor; the harmless directions (tiny N,
// inflated covariance) are not flagged, so honest data-poor devices are
// never taxed.
func scaleOutliers(all []TaskPosterior) []bool {
	n := len(all)
	fN := make([]float64, n)
	fS := make([]float64, n)
	for i, t := range all {
		nn := float64(t.N)
		if nn < 0 {
			nn = 0
		}
		fN[i] = math.Log1p(nn)
		if t.Sigma != nil && t.Sigma.Rows > 0 {
			fS[i] = math.Log(t.Sigma.Trace()/float64(t.Sigma.Rows) + 1e-300)
		}
	}
	out := make([]bool, n)
	flag := func(f []float64, above bool) {
		med := median(append([]float64(nil), f...))
		dev := make([]float64, n)
		for i, v := range f {
			dev[i] = math.Abs(v - med)
		}
		lim := math.Max(outlierK*1.4826*median(dev), scaleLogFloor)
		for i, v := range f {
			if above && v-med > lim || !above && med-v > lim {
				out[i] = true
			}
		}
	}
	flag(fN, true)  // overclaimed sample count
	flag(fS, false) // overconfident covariance
	return out
}

// Judge decides quarantine verdicts for the undecided tasks, given the
// already-accepted reference set and the currently served prior. It
// returns one verdict per undecided task (true = quarantine) and whether
// the population was large enough to judge at all; when ok is false the
// caller keeps the tasks provisional and re-judges on a later round.
//
// Scoring: with a served prior and a non-empty accepted reference, each
// task scores by prior log density (ScoreTasks); otherwise — cold start,
// or a prior that hostile tasks may themselves have shaped — by the
// model-free FallbackScores. A task is quarantined when its score falls
// more than outlierK·1.4826·MAD below the population median, worst
// first, capped at TrimFrac of the population; non-finite scores are
// always candidates. Independently of where its mean lands, a task
// flagged by the scale screen (scaleOutliers) is also a candidate — a
// plausible-looking mean does not excuse an implausible claim of
// evidence.
//
// A candidate past the trim budget is deferred, not accepted: a sticky
// accept verdict for a task the judge itself flagged would let an
// attacker ride out one crowded round and poison every rebuild after.
// The caller must keep a deferred task undecided — and out of this
// round's build — so a later, larger round (with a larger budget) can
// judge it properly.
func Judge(served *Compiled, accepted, undecided []TaskPosterior, opts AdmissionOptions) (quarantine, deferred []bool, ok bool) {
	o := opts.withDefaults()
	pop := len(accepted) + len(undecided)
	if len(undecided) == 0 || pop < o.MinScored {
		return nil, nil, false
	}
	all := make([]TaskPosterior, 0, pop)
	all = append(all, accepted...)
	all = append(all, undecided...)
	// Absolute floors under the MAD threshold gap: a reference made of
	// the build's own members scores its prior optimistically tightly, so
	// without a floor an ordinary same-cluster newcomer (≈1 component-σ
	// out per coordinate ≈ ½ log-density unit per dimension) would read
	// as an outlier. Real attacks land orders of magnitude below either
	// floor.
	var scores []float64
	var gapFloor float64
	if served != nil && len(accepted) > 0 {
		scores = ScoreTasks(served, all)
		gapFloor = 2 * float64(len(all[0].Mu))
	} else {
		scores = FallbackScores(all)
		gapFloor = 4 // FallbackScores are per-coordinate-normalized
	}
	med := median(append([]float64(nil), scores...))
	dev := make([]float64, len(scores))
	for i, s := range scores {
		dev[i] = math.Abs(s - med)
	}
	mad := median(dev)
	thr := med - math.Max(outlierK*1.4826*mad, gapFloor)

	scaleBad := scaleOutliers(all)

	type cand struct {
		idx   int // index into undecided
		score float64
	}
	var cands []cand
	for i := range undecided {
		s := scores[len(accepted)+i]
		if math.IsNaN(s) {
			s = math.Inf(-1)
		}
		if scaleBad[len(accepted)+i] {
			// Rank scale outliers ahead of mere mean outliers: a scoring
			// path the task may have shaped itself must not push it past
			// the trim budget.
			s = math.Inf(-1)
		}
		if s < thr || math.IsInf(s, -1) {
			cands = append(cands, cand{idx: i, score: s})
		}
	}
	quarantine = make([]bool, len(undecided))
	deferred = make([]bool, len(undecided))
	if len(cands) == 0 {
		return quarantine, deferred, true
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].idx < cands[j].idx
	})
	budget := int(o.TrimFrac * float64(pop))
	for _, c := range cands {
		if budget <= 0 {
			deferred[c.idx] = true
			continue
		}
		quarantine[c.idx] = true
		budget--
	}
	return quarantine, deferred, true
}

// median returns the median of xs, sorting it in place. NaNs sort as
// smaller than everything (they count as catastrophically low scores).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	for i, v := range xs {
		if math.IsNaN(v) {
			xs[i] = math.Inf(-1)
		}
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	lo, hi := xs[n/2-1], xs[n/2]
	if math.IsInf(lo, -1) {
		return lo // avoid -Inf + Inf = NaN in the midpoint
	}
	return lo + (hi-lo)/2
}
