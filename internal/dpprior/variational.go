package dpprior

import (
	"fmt"
	"math"

	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/stat"
)

// BuildVariational constructs the DP mixture prior like Build, but
// clusters the task posteriors with truncated stick-breaking
// coordinate-ascent variational inference (Blei & Jordan 2006) instead of
// collapsed Gibbs. Deterministic given the inputs, typically faster for
// larger K, and used by the prior-construction ablation (Table 5).
//
// Variational family: q(v_t) Beta, q(φ_t) spherical Gaussian, q(z_j)
// categorical; likelihood x_j | z_j=t ~ N(φ_t, s² I) with φ_t ~ N(0, σ0² I)
// exactly as in the Gibbs fit. truncation bounds the number of clusters
// considered (≤ number of tasks; 0 picks min(K, 20)).
func BuildVariational(tasks []TaskPosterior, truncation int, opts BuildOptions) (*Prior, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("dpprior: BuildVariational: no tasks")
	}
	if opts.Alpha <= 0 {
		return nil, fmt.Errorf("dpprior: BuildVariational: alpha %g must be positive", opts.Alpha)
	}
	dim := len(tasks[0].Mu)
	for i, t := range tasks {
		if len(t.Mu) != dim {
			return nil, fmt.Errorf("dpprior: BuildVariational: task %d has dim %d, want %d",
				i, len(t.Mu), dim)
		}
		if t.Sigma == nil || t.Sigma.Rows != dim || t.Sigma.Cols != dim {
			return nil, fmt.Errorf("dpprior: BuildVariational: task %d covariance has wrong shape", i)
		}
	}
	o := opts.defaults(tasks)
	n := len(tasks)
	tr := truncation
	if tr <= 0 {
		tr = n
		if tr > 20 {
			tr = 20
		}
	}
	if tr > n {
		tr = n
	}

	s2 := o.ClusterScale * o.ClusterScale
	sigma02 := o.BaseSigma * o.BaseSigma
	d := float64(dim)

	// Variational parameters.
	gamma1 := make([]float64, tr) // Beta(γ1, γ2) for sticks
	gamma2 := make([]float64, tr)
	means := make([]mat.Vec, tr) // q(φ_t) means
	tau2 := make([]float64, tr)  // q(φ_t) spherical variances
	resp := mat.NewDense(n, tr)  // q(z_j)
	logits := make(mat.Vec, tr)

	// Init: responsibilities spread by a deterministic round-robin with a
	// slight tilt toward distinct anchors so symmetric fixed points break.
	for t := 0; t < tr; t++ {
		gamma1[t], gamma2[t] = 1, o.Alpha
		means[t] = mat.CloneVec(tasks[t%n].Mu)
		tau2[t] = sigma02
	}
	for j := 0; j < n; j++ {
		for t := 0; t < tr; t++ {
			switch {
			case tr == 1:
				resp.Set(j, t, 1)
			case t == j%tr:
				resp.Set(j, t, 0.8)
			default:
				resp.Set(j, t, 0.2/float64(tr-1))
			}
		}
	}

	const iters = 200
	prev := mat.NewDense(n, tr)
	for iter := 0; iter < iters; iter++ {
		// Update sticks: γ_t1 = 1 + N_t, γ_t2 = α + Σ_{l>t} N_l.
		counts := make([]float64, tr)
		for j := 0; j < n; j++ {
			for t := 0; t < tr; t++ {
				counts[t] += resp.At(j, t)
			}
		}
		tail := 0.0
		for t := tr - 1; t >= 0; t-- {
			gamma1[t] = 1 + counts[t]
			gamma2[t] = o.Alpha + tail
			tail += counts[t]
		}

		// Update cluster factors.
		for t := 0; t < tr; t++ {
			prec := 1/sigma02 + counts[t]/s2
			tau2[t] = 1 / prec
			m := make(mat.Vec, dim)
			for j := 0; j < n; j++ {
				if r := resp.At(j, t); r > 0 {
					mat.Axpy(r, tasks[j].Mu, m)
				}
			}
			mat.Scale(1/(s2*prec), m)
			means[t] = m
		}

		// Update responsibilities.
		copy(prev.Data, resp.Data)
		// Precompute E[log v_t] and E[log(1-v_t)] prefix sums.
		elogv := make([]float64, tr)
		elog1mv := make([]float64, tr)
		for t := 0; t < tr; t++ {
			denom := stat.Digamma(gamma1[t] + gamma2[t])
			elogv[t] = stat.Digamma(gamma1[t]) - denom
			elog1mv[t] = stat.Digamma(gamma2[t]) - denom
		}
		for j := 0; j < n; j++ {
			var prefix float64
			for t := 0; t < tr; t++ {
				dd := mat.Dist2(tasks[j].Mu, means[t])
				logits[t] = elogv[t] + prefix -
					(dd*dd+d*tau2[t])/(2*s2)
				prefix += elog1mv[t]
			}
			mat.Softmax(logits, logits)
			for t := 0; t < tr; t++ {
				resp.Set(j, t, logits[t])
			}
		}

		// Converged when responsibilities stop moving.
		var change float64
		for i, v := range resp.Data {
			if c := math.Abs(v - prev.Data[i]); c > change {
				change = c
			}
		}
		if change < 1e-8 && iter > 2 {
			break
		}
	}

	// Harden assignments and reuse the shared moment-matching assembly.
	assign := make([]int, n)
	for j := 0; j < n; j++ {
		assign[j] = mat.ArgMax(resp.Row(j))
	}
	// Renumber densely.
	remap := map[int]int{}
	for j, a := range assign {
		id, ok := remap[a]
		if !ok {
			id = len(remap)
			remap[a] = id
		}
		assign[j] = id
	}
	return assemble(tasks, assign, o)
}
