package dpprior

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/stat"
)

func TestDigammaKnownValues(t *testing.T) {
	const gammaEuler = 0.5772156649015329
	tests := []struct {
		x, want float64
	}{
		{1, -gammaEuler},
		{0.5, -gammaEuler - 2*math.Log(2)},
		{2, 1 - gammaEuler},
		{10, 2.251752589066721},
	}
	for _, tt := range tests {
		if got := stat.Digamma(tt.x); math.Abs(got-tt.want) > 1e-10 {
			t.Errorf("Digamma(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	// Recurrence property ψ(x+1) = ψ(x) + 1/x on a grid.
	for x := 0.1; x < 20; x += 0.37 {
		lhs := stat.Digamma(x + 1)
		rhs := stat.Digamma(x) + 1/x
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Errorf("recurrence fails at %v: %v vs %v", x, lhs, rhs)
		}
	}
	if !math.IsNaN(stat.Digamma(0)) || !math.IsNaN(stat.Digamma(-3)) {
		t.Error("poles should be NaN")
	}
}

func TestBuildVariationalRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	tasks, labels := makeTaskFamily(rng, 12, 4, 3, 10)
	p, err := BuildVariational(tasks, 0, BuildOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("variational prior invalid: %v", err)
	}
	if len(p.Components) < 2 || len(p.Components) > 5 {
		t.Errorf("found %d components for 3 well-separated clusters", len(p.Components))
	}
	// Each true center near some component mean.
	for c := 0; c < 3; c++ {
		center := make(mat.Vec, 4)
		var n float64
		for i, l := range labels {
			if l == c {
				mat.Axpy(1, tasks[i].Mu, center)
				n++
			}
		}
		mat.Scale(1/n, center)
		best := math.Inf(1)
		for _, comp := range p.Components {
			if d := mat.Dist2(comp.Mu, center); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("cluster %d center is %.2f from nearest component", c, best)
		}
	}
}

func TestBuildVariationalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	tasks, _ := makeTaskFamily(rng, 8, 3, 2, 8)
	p1, err := BuildVariational(tasks, 0, BuildOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildVariational(tasks, 0, BuildOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Components) != len(p2.Components) {
		t.Fatalf("nondeterministic: %d vs %d components", len(p1.Components), len(p2.Components))
	}
	for i := range p1.Components {
		if mat.Dist2(p1.Components[i].Mu, p2.Components[i].Mu) != 0 {
			t.Error("nondeterministic component means")
		}
	}
}

func TestBuildVariationalAgreesWithGibbs(t *testing.T) {
	// On well-separated clusters the two fits should find the same number
	// of components with nearby means.
	rng := rand.New(rand.NewSource(152))
	tasks, _ := makeTaskFamily(rng, 12, 4, 3, 12)
	vi, err := BuildVariational(tasks, 0, BuildOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	gibbs, err := Build(tasks, BuildOptions{Alpha: 1, Seed: 4, GibbsIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(vi.Components) != len(gibbs.Components) {
		t.Logf("component counts differ: vi=%d gibbs=%d (acceptable on marginal data)",
			len(vi.Components), len(gibbs.Components))
	}
	// Every Gibbs component mean should be near some VI component mean.
	for i, g := range gibbs.Components {
		best := math.Inf(1)
		for _, v := range vi.Components {
			if d := mat.Dist2(g.Mu, v.Mu); d < best {
				best = d
			}
		}
		if best > 1.5 {
			t.Errorf("gibbs component %d is %.2f from nearest VI component", i, best)
		}
	}
}

func TestBuildVariationalTruncationAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	tasks, _ := makeTaskFamily(rng, 10, 3, 5, 12)
	// Truncation below the true cluster count caps the components.
	p, err := BuildVariational(tasks, 2, BuildOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) > 2 {
		t.Errorf("truncation 2 produced %d components", len(p.Components))
	}
	if _, err := BuildVariational(nil, 0, BuildOptions{Alpha: 1}); err == nil {
		t.Error("no tasks accepted")
	}
	if _, err := BuildVariational(tasks, 0, BuildOptions{}); err == nil {
		t.Error("alpha=0 accepted")
	}
	bad := append([]TaskPosterior(nil), tasks...)
	bad[0].Sigma = nil
	if _, err := BuildVariational(bad, 0, BuildOptions{Alpha: 1}); err == nil {
		t.Error("nil covariance accepted")
	}
}

func TestBuildVariationalSingleTask(t *testing.T) {
	tasks := []TaskPosterior{{Mu: mat.Vec{1, 2}, Sigma: mat.Eye(2), N: 50}}
	p, err := BuildVariational(tasks, 0, BuildOptions{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) != 1 {
		t.Fatalf("single task produced %d components", len(p.Components))
	}
	// CRP predictive weights: 1/(2+1) component, 2/(2+1) base.
	if math.Abs(p.BaseWeight-2.0/3) > 1e-9 {
		t.Errorf("base weight %v, want 2/3", p.BaseWeight)
	}
}
