package dpprior

import (
	"math"
	"math/rand"
	"testing"
)

func TestCRPLogLikShape(t *testing.T) {
	// One big table (n=10 in one cluster) favors tiny α; ten singletons
	// favor large α.
	oneTable := []float64{10}
	singletons := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	small, large := 0.05, 50.0
	if CRPLogLik(oneTable, 10, small) <= CRPLogLik(oneTable, 10, large) {
		t.Error("one table should prefer small alpha")
	}
	if CRPLogLik(singletons, 10, large) <= CRPLogLik(singletons, 10, small) {
		t.Error("singletons should prefer large alpha")
	}
	if !math.IsInf(CRPLogLik(oneTable, 10, 0), -1) {
		t.Error("alpha=0 should be -Inf")
	}
}

func TestMaximizeCRPAlphaBrackets(t *testing.T) {
	// The maximizer must beat nearby values on both sides.
	sizes := []float64{4, 3, 3}
	best := maximizeCRPAlpha(sizes, 10)
	ll := CRPLogLik(sizes, 10, best)
	for _, factor := range []float64{0.5, 2} {
		if CRPLogLik(sizes, 10, best*factor) > ll+1e-9 {
			t.Errorf("alpha %v not optimal (beaten at ×%v)", best, factor)
		}
	}
}

func TestSelectAlphaRespondsToStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(270))
	// Tightly clustered family (12 tasks, 2 clusters) → few components →
	// small α. Widely scattered tasks (each its own cluster) → many
	// components → larger α.
	clustered, _ := makeTaskFamily(rng, 12, 4, 2, 10)
	aClustered, pClustered, err := SelectAlpha(clustered, BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scattered, _ := makeTaskFamily(rng, 12, 4, 12, 14)
	aScattered, pScattered, err := SelectAlpha(scattered, BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if aClustered >= aScattered {
		t.Errorf("clustered α=%v should be < scattered α=%v", aClustered, aScattered)
	}
	if len(pClustered.Components) >= len(pScattered.Components) {
		t.Errorf("component counts should reflect structure: %d vs %d",
			len(pClustered.Components), len(pScattered.Components))
	}
	if err := pClustered.Validate(); err != nil {
		t.Errorf("selected prior invalid: %v", err)
	}
	// The selected α propagates into the prior's base weight.
	wantBase := aClustered / (aClustered + 12)
	if pClustered.BaseWeight < wantBase-1e-9 {
		t.Errorf("base weight %v below CRP mass %v", pClustered.BaseWeight, wantBase)
	}
}

func TestSelectAlphaErrors(t *testing.T) {
	if _, _, err := SelectAlpha(nil, BuildOptions{}); err == nil {
		t.Error("no tasks accepted")
	}
}
