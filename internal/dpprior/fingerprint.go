package dpprior

import (
	"hash/fnv"
	"math"
)

// Fingerprint returns a stable 64-bit identity for the task posterior's
// content (mean, covariance and sample count). The sharded cloud tier
// uses it twice: to route an upload to its shard (the same task always
// lands on the same shard, whichever edge or retry delivers it) and to
// deduplicate ambiguous re-uploads — a report whose ack was lost to a
// leader crash can be resent safely, because a fingerprint the shard has
// already appended is acknowledged without a second append.
func (t *TaskPosterior) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(bits uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	write(uint64(len(t.Mu)))
	for _, v := range t.Mu {
		write(math.Float64bits(v))
	}
	if t.Sigma != nil {
		for _, v := range t.Sigma.Data {
			write(math.Float64bits(v))
		}
	}
	write(uint64(t.N))
	return h.Sum64()
}
