package dpprior

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func benchPrior(b *testing.B, dim, comps int) *Compiled {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	p := &Prior{Alpha: 1, BaseWeight: 0.1, BaseSigma: 5, Dim: dim}
	w := 0.9 / float64(comps)
	for c := 0; c < comps; c++ {
		mu := make(mat.Vec, dim)
		for i := range mu {
			mu[i] = rng.NormFloat64()
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(0.3)
		p.Components = append(p.Components, Component{Weight: w, Mu: mu, Sigma: sigma, Count: 1})
	}
	compiled, err := Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	return compiled
}

func BenchmarkCompilePriorD50(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tasks, _ := makeTaskFamily(rng, 8, 50, 3, 10)
	p, err := Build(tasks, BuildOptions{Alpha: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResponsibilitiesD50(b *testing.B) {
	c := benchPrior(b, 50, 5)
	theta := make(mat.Vec, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Responsibilities(theta)
	}
}

func BenchmarkSurrogateGradD50(b *testing.B) {
	c := benchPrior(b, 50, 5)
	theta := make(mat.Vec, 50)
	gamma := c.Responsibilities(theta)
	grad := make(mat.Vec, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mat.Fill(grad, 0)
		c.SurrogateGrad(theta, gamma, grad)
	}
}

func BenchmarkGibbsBuildK16(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tasks, _ := makeTaskFamily(rng, 16, 20, 4, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tasks, BuildOptions{Alpha: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariationalBuildK16(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tasks, _ := makeTaskFamily(rng, 16, 20, 4, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildVariational(tasks, 0, BuildOptions{Alpha: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
