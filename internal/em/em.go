// Package em provides the expectation-maximization machinery behind
// drdp's convex relaxation: a generic majorize-minimize loop with
// convergence monitoring, plus a classic Gaussian-mixture EM fitter used
// by the data pipeline and as an alternative cloud-side clusterer.
package em

import (
	"fmt"
	"math"
)

// Problem is one majorize-minimize (EM-style) problem. EStep builds the
// surrogate state at the current iterate; MStep minimizes the surrogate
// and returns the next iterate. Objective evaluates the true objective
// being descended (used for the convergence test and the monotonicity
// guarantee).
type Problem[T any] interface {
	EStep(theta []float64) T
	MStep(theta []float64, aux T) []float64
	Objective(theta []float64) float64
}

// Options configures Run. The zero value picks defaults.
type Options struct {
	MaxIters int     // default 50
	Tol      float64 // relative objective change tolerance; default 1e-6

	// OnIter, when non-nil, is invoked after every completed E/M
	// iteration with the fresh objective. Errors or long work inside the
	// hook stall the loop; it is meant for telemetry and progress
	// reporting.
	OnIter func(Iteration)
}

// Iteration is the per-iteration report passed to Options.OnIter.
type Iteration struct {
	Iter      int       // 1-based iteration index
	Objective float64   // objective after this iteration
	Prev      float64   // objective before this iteration
	Theta     []float64 // current iterate (shared, do not mutate)
}

// Result reports an EM run.
type Result struct {
	Theta      []float64
	Objective  float64
	Trace      []float64 // objective after each iteration (including initial)
	Iterations int
	Converged  bool
}

// Run iterates E/M steps until the relative objective change drops below
// tol or MaxIters is reached. The trace always starts with the objective
// at theta0, so monotonicity checks can compare adjacent entries.
func Run[T any](p Problem[T], theta0 []float64, opts Options) Result {
	if opts.MaxIters <= 0 {
		opts.MaxIters = 50
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	theta := append([]float64(nil), theta0...)
	obj := p.Objective(theta)
	trace := []float64{obj}

	for iter := 1; iter <= opts.MaxIters; iter++ {
		aux := p.EStep(theta)
		theta = p.MStep(theta, aux)
		next := p.Objective(theta)
		trace = append(trace, next)
		if opts.OnIter != nil {
			opts.OnIter(Iteration{Iter: iter, Objective: next, Prev: obj, Theta: theta})
		}
		rel := math.Abs(obj-next) / (1 + math.Abs(obj))
		obj = next
		if rel < opts.Tol {
			return Result{Theta: theta, Objective: obj, Trace: trace, Iterations: iter, Converged: true}
		}
	}
	return Result{Theta: theta, Objective: obj, Trace: trace, Iterations: opts.MaxIters, Converged: false}
}

// CheckMonotone returns an error naming the first iteration at which the
// objective trace increased by more than tol — the diagnostic drdp's
// tests use to enforce the MM descent property.
func CheckMonotone(trace []float64, tol float64) error {
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1]+tol {
			return fmt.Errorf("em: objective increased at iteration %d: %g -> %g",
				i, trace[i-1], trace[i])
		}
	}
	return nil
}
