package em

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// halvingProblem is a toy MM problem: objective (x-5)², M-step moves
// halfway to 5. Monotone and convergent.
type halvingProblem struct{}

func (halvingProblem) EStep(theta []float64) struct{} { return struct{}{} }
func (halvingProblem) MStep(theta []float64, _ struct{}) []float64 {
	return []float64{theta[0] + (5-theta[0])/2}
}
func (halvingProblem) Objective(theta []float64) float64 {
	d := theta[0] - 5
	return d * d
}

func TestRunConvergesAndTraces(t *testing.T) {
	res := Run[struct{}](halvingProblem{}, []float64{0}, Options{MaxIters: 100, Tol: 1e-10})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if math.Abs(res.Theta[0]-5) > 1e-3 {
		t.Errorf("theta = %v, want ≈ 5", res.Theta)
	}
	if len(res.Trace) != res.Iterations+1 {
		t.Errorf("trace length %d, iterations %d", len(res.Trace), res.Iterations)
	}
	if res.Trace[0] != 25 {
		t.Errorf("trace[0] = %v, want initial objective 25", res.Trace[0])
	}
	if err := CheckMonotone(res.Trace, 0); err != nil {
		t.Errorf("monotone check failed: %v", err)
	}
}

func TestRunRespectsMaxIters(t *testing.T) {
	res := Run[struct{}](halvingProblem{}, []float64{0}, Options{MaxIters: 3, Tol: 1e-300})
	if res.Iterations != 3 || res.Converged {
		t.Errorf("expected exactly 3 non-converged iterations: %+v", res)
	}
}

func TestRunDoesNotMutateStart(t *testing.T) {
	start := []float64{0}
	Run[struct{}](halvingProblem{}, start, Options{MaxIters: 5})
	if start[0] != 0 {
		t.Error("Run mutated theta0")
	}
}

func TestCheckMonotone(t *testing.T) {
	if err := CheckMonotone([]float64{3, 2, 2, 1}, 0); err != nil {
		t.Errorf("monotone trace rejected: %v", err)
	}
	if err := CheckMonotone([]float64{3, 2, 2.5}, 0); err == nil {
		t.Error("increasing trace accepted")
	}
	if err := CheckMonotone([]float64{3, 3.0000001}, 1e-3); err != nil {
		t.Errorf("tolerance not honored: %v", err)
	}
	if err := CheckMonotone(nil, 0); err != nil {
		t.Errorf("empty trace: %v", err)
	}
}

func sampleBlobs(rng *rand.Rand, centers []mat.Vec, perCluster int, noise float64) []mat.Vec {
	var out []mat.Vec
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			x := mat.CloneVec(c)
			for j := range x {
				x[j] += noise * rng.NormFloat64()
			}
			out = append(out, x)
		}
	}
	return out
}

func TestFitGMMRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	centers := []mat.Vec{{-5, 0}, {5, 0}, {0, 8}}
	x := sampleBlobs(rng, centers, 60, 0.5)
	g, trace, err := FitGMM(x, 3, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Log likelihood must be (near) monotone non-decreasing.
	for i := 1; i < len(trace); i++ {
		if trace[i] < trace[i-1]-1e-6 {
			t.Fatalf("log-likelihood decreased at iter %d: %v -> %v", i, trace[i-1], trace[i])
		}
	}
	// Every true center should be near some fitted mean.
	for _, c := range centers {
		best := math.Inf(1)
		for _, m := range g.Means {
			if d := mat.Dist2(c, m); d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Errorf("center %v is %.2f from nearest fitted mean", c, best)
		}
	}
	// Weights near 1/3 each.
	for _, w := range g.Weights {
		if w < 0.2 || w > 0.5 {
			t.Errorf("weight %v far from 1/3", w)
		}
	}
}

func TestFitGMMAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	centers := []mat.Vec{{-10}, {10}}
	x := sampleBlobs(rng, centers, 30, 0.3)
	g, _, err := FitGMM(x, 2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	assign := g.Assign(x)
	// First 30 points share one label, last 30 the other.
	for i := 1; i < 30; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("cluster 0 split: %v", assign[:30])
		}
	}
	for i := 31; i < 60; i++ {
		if assign[i] != assign[30] {
			t.Fatalf("cluster 1 split")
		}
	}
	if assign[0] == assign[30] {
		t.Error("both blobs mapped to the same component")
	}
}

func TestFitGMMErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	if _, _, err := FitGMM(nil, 2, 10, rng); err == nil {
		t.Error("empty data accepted")
	}
	x := []mat.Vec{{1}, {2}}
	if _, _, err := FitGMM(x, 0, 10, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := FitGMM(x, 3, 10, rng); err == nil {
		t.Error("k>n accepted")
	}
	bad := []mat.Vec{{1}, {2, 3}}
	if _, _, err := FitGMM(bad, 1, 10, rng); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestGMMLogLikelihoodImprovesOverUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	centers := []mat.Vec{{-5}, {5}}
	x := sampleBlobs(rng, centers, 40, 0.5)
	g2, _, err := FitGMM(x, 2, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	g1, _, err := FitGMM(x, 1, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g2.LogLikelihood(x) <= g1.LogLikelihood(x) {
		t.Error("2-component fit should beat 1-component on bimodal data")
	}
}
