package em

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
)

// GMM is a spherical Gaussian mixture model fit by classic EM. It serves
// two roles in drdp: a reference clusterer for validating the DP prior's
// Gibbs clustering, and a building block for synthetic data diagnostics.
type GMM struct {
	Weights []float64 // mixture weights on the simplex
	Means   []mat.Vec
	Vars    []float64 // per-component spherical variance
}

// FitGMM runs EM for a k-component spherical GMM on the rows of x,
// initialized by random sample assignment from rng. It returns the fitted
// model and the per-iteration log-likelihood trace (monotone
// non-decreasing up to numerical tolerance).
func FitGMM(x []mat.Vec, k int, iters int, rng *rand.Rand) (*GMM, []float64, error) {
	n := len(x)
	if n == 0 {
		return nil, nil, fmt.Errorf("em: FitGMM: no data")
	}
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("em: FitGMM: k=%d invalid for n=%d", k, n)
	}
	if iters <= 0 {
		iters = 100
	}
	d := len(x[0])
	for i, xi := range x {
		if len(xi) != d {
			return nil, nil, fmt.Errorf("em: FitGMM: row %d has dim %d, want %d", i, len(xi), d)
		}
	}

	g := &GMM{
		Weights: make([]float64, k),
		Means:   make([]mat.Vec, k),
		Vars:    make([]float64, k),
	}
	// Init: means at k distinct random points, shared unit variance.
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		g.Means[c] = mat.CloneVec(x[perm[c]])
		g.Weights[c] = 1 / float64(k)
		g.Vars[c] = 1
	}

	resp := mat.NewDense(n, k)
	var trace []float64
	logp := make(mat.Vec, k)
	for iter := 0; iter < iters; iter++ {
		// E-step + log-likelihood.
		var ll float64
		for i, xi := range x {
			for c := 0; c < k; c++ {
				logp[c] = math.Log(g.Weights[c]) + sphericalLogPDF(xi, g.Means[c], g.Vars[c])
			}
			lse := mat.LogSumExp(logp)
			ll += lse
			for c := 0; c < k; c++ {
				resp.Set(i, c, math.Exp(logp[c]-lse))
			}
		}
		trace = append(trace, ll)

		// M-step.
		for c := 0; c < k; c++ {
			var nc float64
			mean := make(mat.Vec, d)
			for i, xi := range x {
				r := resp.At(i, c)
				nc += r
				mat.Axpy(r, xi, mean)
			}
			if nc < 1e-10 {
				// Dead component: re-seed at a random point.
				g.Means[c] = mat.CloneVec(x[rng.Intn(n)])
				g.Vars[c] = 1
				g.Weights[c] = 1e-6
				continue
			}
			mat.Scale(1/nc, mean)
			var ss float64
			for i, xi := range x {
				r := resp.At(i, c)
				if r == 0 {
					continue
				}
				dd := mat.Dist2(xi, mean)
				ss += r * dd * dd
			}
			g.Means[c] = mean
			g.Vars[c] = math.Max(ss/(nc*float64(d)), 1e-8)
			g.Weights[c] = nc / float64(n)
		}
		normalize(g.Weights)
	}
	return g, trace, nil
}

// LogLikelihood returns the total log-likelihood of the rows of x under g.
func (g *GMM) LogLikelihood(x []mat.Vec) float64 {
	logp := make(mat.Vec, len(g.Weights))
	var ll float64
	for _, xi := range x {
		for c := range g.Weights {
			logp[c] = math.Log(g.Weights[c]) + sphericalLogPDF(xi, g.Means[c], g.Vars[c])
		}
		ll += mat.LogSumExp(logp)
	}
	return ll
}

// Assign returns the most responsible component for each row of x.
func (g *GMM) Assign(x []mat.Vec) []int {
	out := make([]int, len(x))
	logp := make(mat.Vec, len(g.Weights))
	for i, xi := range x {
		for c := range g.Weights {
			logp[c] = math.Log(g.Weights[c]) + sphericalLogPDF(xi, g.Means[c], g.Vars[c])
		}
		out[i] = mat.ArgMax(logp)
	}
	return out
}

func sphericalLogPDF(x, mu mat.Vec, variance float64) float64 {
	d := float64(len(x))
	dd := mat.Dist2(x, mu)
	return -0.5*d*math.Log(2*math.Pi*variance) - dd*dd/(2*variance)
}

func normalize(w []float64) {
	var s float64
	for _, v := range w {
		s += v
	}
	for i := range w {
		w[i] /= s
	}
}
