// Package trace is drdp's zero-dependency distributed-tracing
// subsystem: a span model (TraceID/SpanID/parent links, monotonic
// start/duration, typed attributes, a bounded per-span event log), a
// lock-cheap in-process recorder with head sampling, and a fixed-size
// flight recorder that retains the last N complete traces — plus a
// "notable" ring that pins error/slow traces so a burst of healthy
// traffic cannot evict the one failover trace worth keeping.
//
// Trace context crosses the wire as two uint64s (edge.Request.TraceID /
// ParentSpan). The zero value means untraced: no span is ever allocated
// for an untraced request, so a fleet running with sampling off pays
// nothing. Every Span method is safe on a nil receiver — callers thread
// spans unconditionally and the nil case is the fast path.
//
// The recorder groups spans into per-trace fragments. A fragment is the
// set of spans one process recorded for one TraceID: the edge's root
// span plus its local children, or a server's joined span tree. When the
// fragment's local root ends, the fragment is complete and moves into
// the flight recorder. In-process clusters (the sim harness) share one
// Tracer, so an edge round's fragment contains the server spans of every
// node it touched, distinguished by the "node" attribute.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// TraceID identifies one distributed trace. Zero means untraced.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means no parent.
type SpanID uint64

// String renders the ID as fixed-width hex (JSON-safe: uint64 does not
// survive a float64 round trip above 2^53).
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// AttrKind discriminates attribute value types.
type AttrKind uint8

// Attribute kinds.
const (
	KindString AttrKind = iota
	KindInt
	KindFloat
	KindBool
	KindDuration
)

// Attr is one typed span attribute. Use the constructors (Str, Int,
// Float, Bool, Dur); the zero value is a "" string attr.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Int  int64
	Flt  float64
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: KindString, Str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, Flt: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: KindBool}
	if v {
		a.Int = 1
	}
	return a
}

// Dur builds a duration attribute.
func Dur(key string, v time.Duration) Attr { return Attr{Key: key, Kind: KindDuration, Int: int64(v)} }

// Err builds the conventional error attribute.
func Err(err error) Attr { return Str("error", err.Error()) }

// Value renders the attribute value as a string (tables, trees, JSON).
func (a Attr) Value() string {
	switch a.Kind {
	case KindInt:
		return fmt.Sprintf("%d", a.Int)
	case KindFloat:
		return fmt.Sprintf("%g", a.Flt)
	case KindBool:
		if a.Int != 0 {
			return "true"
		}
		return "false"
	case KindDuration:
		return time.Duration(a.Int).String()
	default:
		return a.Str
	}
}

// Event is one timestamped occurrence inside a span: a retry, a shed
// decision, a quarantine verdict. Offset is relative to the span start.
type Event struct {
	Offset time.Duration
	Name   string
	Attrs  []Attr
}

// maxEvents bounds one span's event log; past it, events are dropped
// and counted so a retry storm cannot balloon a span.
const maxEvents = 32

// Span is one timed operation in a trace. Spans are created through
// Tracer.StartTrace / Tracer.Join / Span.Child and finished with End or
// EndErr. All methods are safe on a nil receiver (the untraced path)
// and safe for concurrent use (a client span may receive events from a
// breaker callback while the request runs).
type Span struct {
	frag *fragment

	trace  TraceID
	id     SpanID
	parent SpanID
	name   string

	start time.Time // carries the monotonic clock

	mu      sync.Mutex
	dur     time.Duration
	ended   bool
	err     string
	notable bool
	attrs   []Attr
	events  []Event
	dropped int // events beyond maxEvents
}

// Pin marks the span's trace notable regardless of error or duration,
// so the flight recorder retains it in the pinned ring. Use for rare
// events worth keeping through bursts of healthy traffic — failovers,
// promotions — that are neither failures nor slow.
func (s *Span) Pin() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.notable = true
	s.mu.Unlock()
}

// TraceID returns the span's trace, or 0 on a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// ID returns the span's ID, or 0 on a nil span.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// WireContext returns the (TraceID, SpanID) pair to propagate in a
// request. Both are 0 on a nil span — the untraced wire form.
func (s *Span) WireContext() (uint64, uint64) {
	if s == nil {
		return 0, 0
	}
	return uint64(s.trace), uint64(s.id)
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Event records one occurrence on the span's bounded event log.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	off := time.Since(s.start)
	s.mu.Lock()
	if len(s.events) >= maxEvents {
		s.dropped++
	} else {
		s.events = append(s.events, Event{Offset: off, Name: name, Attrs: attrs})
	}
	s.mu.Unlock()
}

// Child starts a child span in the same trace and fragment. Returns nil
// on a nil receiver, so untraced call chains stay allocation-free.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.frag.newSpan(name, s.id, attrs)
}

// End finishes the span. The first End wins; later calls are no-ops.
// When the span is its fragment's root, the fragment completes and
// moves into the flight recorder.
func (s *Span) End() { s.EndErr(nil) }

// EndErr finishes the span, recording err (nil = success).
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if err != nil {
		s.err = err.Error()
	}
	s.mu.Unlock()
	s.frag.spanEnded(s)
}

// Failed reports whether the span ended with an error.
func (s *Span) Failed() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err != ""
}

// Duration returns the span's duration (0 while still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}
