package trace

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Tracer configuration.
const (
	// DefaultCapacity is the recent-trace flight-recorder ring size.
	DefaultCapacity = 64
	// DefaultNotableCapacity is the pinned error/slow ring size.
	DefaultNotableCapacity = 32
	// DefaultSlowThreshold marks a trace notable by root duration.
	DefaultSlowThreshold = 250 * time.Millisecond
	// maxSpansPerTrace bounds one fragment; spans past it are dropped
	// and counted, so a runaway loop cannot exhaust memory.
	maxSpansPerTrace = 512
)

// Config sizes a Tracer. The zero value is valid: sampling off,
// default rings and slow threshold.
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1] for locally
	// started traces (StartTrace / Record). 0 disables local tracing
	// entirely — no spans are allocated. Joined traces (a request that
	// arrived with a TraceID) are always recorded: the originator
	// already paid the sampling decision.
	SampleRate float64
	// SlowThreshold marks a completed trace notable when its root ran
	// at least this long (0 = DefaultSlowThreshold; negative disables).
	SlowThreshold time.Duration
	// Capacity is the recent-trace ring size (0 = DefaultCapacity).
	Capacity int
	// NotableCapacity is the error/slow ring size (0 = DefaultNotableCapacity).
	NotableCapacity int
	// Seed makes ID generation and the sampling sequence deterministic
	// (tests); 0 derives a base from the clock.
	Seed int64
}

// Stats are a tracer's own counters, for /tracez and tests.
type Stats struct {
	Started      uint64 // sampling decisions taken (StartTrace + Record)
	Sampled      uint64 // decisions that started a recorded trace
	Joined       uint64 // remote fragments joined
	Completed    uint64 // fragments moved into the flight recorder
	Notable      uint64 // completed fragments pinned as error/slow
	SpansDropped uint64 // spans discarded over the per-trace bound
}

// Tracer is the in-process span recorder plus flight recorder. All
// methods are safe for concurrent use. The hot path — a sampling
// decision that says no — is one atomic load and one atomic add.
type Tracer struct {
	rateBits atomic.Uint64 // float64 bits of SampleRate
	slowNs   atomic.Int64

	idCtr  atomic.Uint64
	idBase uint64

	started      atomic.Uint64
	sampled      atomic.Uint64
	joined       atomic.Uint64
	completed    atomic.Uint64
	notable      atomic.Uint64
	spansDropped atomic.Uint64

	mu         sync.Mutex
	recent     []*TraceDump // ring, nil until written
	recentNext int
	pinned     []*TraceDump // notable ring
	pinnedNext int
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.NotableCapacity <= 0 {
		cfg.NotableCapacity = DefaultNotableCapacity
	}
	slow := cfg.SlowThreshold
	if slow == 0 {
		slow = DefaultSlowThreshold
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t := &Tracer{
		idBase: splitmix64(uint64(seed)),
		recent: make([]*TraceDump, cfg.Capacity),
		pinned: make([]*TraceDump, cfg.NotableCapacity),
	}
	t.rateBits.Store(math.Float64bits(cfg.SampleRate))
	t.slowNs.Store(int64(slow))
	return t
}

// Default is the process-wide tracer the edge/cluster instrumentation
// records into. Sampling starts off; daemons enable it via
// -trace-sample, tests and the sim audit via SetSampleRate.
var Default = New(Config{})

// SetSampleRate adjusts head sampling on a live tracer (clamped to [0, 1]).
func (t *Tracer) SetSampleRate(r float64) {
	if math.IsNaN(r) || r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	t.rateBits.Store(math.Float64bits(r))
}

// SampleRate returns the current head-sampling rate.
func (t *Tracer) SampleRate() float64 { return math.Float64frombits(t.rateBits.Load()) }

// SetSlowThreshold adjusts the notable-by-duration bound (negative
// disables slow pinning).
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// Enabled reports whether locally started traces can be sampled at all.
func (t *Tracer) Enabled() bool { return t.SampleRate() > 0 }

// Stats snapshots the tracer's counters.
func (t *Tracer) Stats() Stats {
	return Stats{
		Started:      t.started.Load(),
		Sampled:      t.sampled.Load(),
		Joined:       t.joined.Load(),
		Completed:    t.completed.Load(),
		Notable:      t.notable.Load(),
		SpansDropped: t.spansDropped.Load(),
	}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// hash used for ID generation and the deterministic sampling sequence.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextID draws a process-unique nonzero ID.
func (t *Tracer) nextID() uint64 {
	for {
		if id := splitmix64(t.idBase + t.idCtr.Add(1)); id != 0 {
			return id
		}
	}
}

// sample takes one head-sampling decision. Deterministic given the
// tracer seed: decision k depends only on the seed and k.
func (t *Tracer) sample() bool {
	rate := t.SampleRate()
	if rate <= 0 {
		return false
	}
	t.started.Add(1)
	if rate >= 1 {
		t.sampled.Add(1)
		return true
	}
	n := t.idCtr.Add(1)
	// Map the hash to [0,1) and compare against the rate.
	u := float64(splitmix64(t.idBase^0xa5a5a5a5a5a5a5a5+n)>>11) / float64(1<<53)
	if u < rate {
		t.sampled.Add(1)
		return true
	}
	return false
}

// StartTrace begins a new locally rooted trace, subject to head
// sampling. Returns nil (the no-op span) when the trace is not sampled.
func (t *Tracer) StartTrace(name string, attrs ...Attr) *Span {
	if !t.sample() {
		return nil
	}
	f := &fragment{t: t, trace: TraceID(t.nextID())}
	return f.newSpan(name, 0, attrs)
}

// Join starts a fragment for a trace that arrived over the wire: the
// originator sampled it, so it is always recorded. traceID 0 (the
// untraced wire form) returns nil without allocating.
func (t *Tracer) Join(traceID, parentSpan uint64, name string, attrs ...Attr) *Span {
	if traceID == 0 {
		return nil
	}
	t.joined.Add(1)
	f := &fragment{t: t, trace: TraceID(traceID)}
	return f.newSpan(name, SpanID(parentSpan), attrs)
}

// Record retro-records one already-finished operation as a single-span
// trace, subject to head sampling. Used where the decision to trace is
// only knowable after the fact (e.g. "this replication pull actually
// shipped frames").
func (t *Tracer) Record(name string, start time.Time, d time.Duration, err error, attrs ...Attr) {
	if !t.sample() {
		return
	}
	f := &fragment{t: t, trace: TraceID(t.nextID())}
	sp := f.newSpan(name, 0, attrs)
	sp.start = start
	sp.mu.Lock()
	sp.ended = true
	sp.dur = d
	if err != nil {
		sp.err = err.Error()
	}
	sp.mu.Unlock()
	f.spanEnded(sp)
}

// fragment is the set of spans one process records for one trace. The
// first span created is the fragment root; when it ends, the fragment
// is dumped and offered to the flight recorder.
type fragment struct {
	t     *Tracer
	trace TraceID

	mu      sync.Mutex
	spans   []*Span
	root    *Span
	done    bool
	dropped int
}

func (f *fragment) newSpan(name string, parent SpanID, attrs []Attr) *Span {
	sp := &Span{
		frag:   f,
		trace:  f.trace,
		id:     SpanID(f.t.nextID()),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	f.mu.Lock()
	if f.root == nil {
		f.root = sp
	}
	if len(f.spans) >= maxSpansPerTrace {
		f.dropped++
		f.t.spansDropped.Add(1)
	} else {
		f.spans = append(f.spans, sp)
	}
	f.mu.Unlock()
	return sp
}

// spanEnded completes the fragment when the ended span is its root.
func (f *fragment) spanEnded(sp *Span) {
	f.mu.Lock()
	if f.done || sp != f.root {
		f.mu.Unlock()
		return
	}
	f.done = true
	spans := append([]*Span(nil), f.spans...)
	dropped := f.dropped
	f.mu.Unlock()
	f.t.complete(dump(f.trace, spans, dropped))
}

// complete files a finished trace into the flight recorder: always into
// the recent ring, and additionally into the pinned ring when the trace
// errored or its root ran past the slow threshold.
func (t *Tracer) complete(td *TraceDump) {
	slow := time.Duration(t.slowNs.Load())
	td.Notable = td.Err || td.Pinned || (slow >= 0 && td.Dur >= slow)
	t.completed.Add(1)
	t.mu.Lock()
	t.recent[t.recentNext] = td
	t.recentNext = (t.recentNext + 1) % len(t.recent)
	if td.Notable {
		t.notable.Add(1)
		t.pinned[t.pinnedNext] = td
		t.pinnedNext = (t.pinnedNext + 1) % len(t.pinned)
	}
	t.mu.Unlock()
}

// Snapshot copies the flight recorder: recent traces and pinned
// (error/slow) traces, each oldest first.
func (t *Tracer) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Snapshot{
		Recent:  ringCopy(t.recent, t.recentNext),
		Notable: ringCopy(t.pinned, t.pinnedNext),
		Stats:   t.Stats(),
	}
}

// Find returns every retained dump of one trace (a trace can appear in
// both rings), newest first; nil when the recorder no longer holds it.
func (t *Tracer) Find(id TraceID) []*TraceDump {
	snap := t.Snapshot()
	var out []*TraceDump
	for i := len(snap.Notable) - 1; i >= 0; i-- {
		if snap.Notable[i].Trace == id.String() {
			out = append(out, snap.Notable[i])
		}
	}
	for i := len(snap.Recent) - 1; i >= 0; i-- {
		if snap.Recent[i].Trace == id.String() {
			out = append(out, snap.Recent[i])
		}
	}
	return out
}

func ringCopy(ring []*TraceDump, next int) []*TraceDump {
	out := make([]*TraceDump, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		if td := ring[(next+i)%len(ring)]; td != nil {
			out = append(out, td)
		}
	}
	return out
}

// Snapshot is a point-in-time copy of the flight recorder.
type Snapshot struct {
	Recent  []*TraceDump `json:"recent"`
	Notable []*TraceDump `json:"notable"`
	Stats   Stats        `json:"stats"`
}
