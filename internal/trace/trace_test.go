package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// on builds a tracer that samples everything, deterministically.
func on() *Tracer {
	return New(Config{SampleRate: 1, Seed: 42, SlowThreshold: -1})
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	if id := s.TraceID(); id != 0 {
		t.Fatalf("nil TraceID = %v, want 0", id)
	}
	if id := s.ID(); id != 0 {
		t.Fatalf("nil ID = %v, want 0", id)
	}
	tr, sp := s.WireContext()
	if tr != 0 || sp != 0 {
		t.Fatalf("nil WireContext = (%d,%d), want (0,0)", tr, sp)
	}
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil Child = %v, want nil", c)
	}
	// None of these may panic.
	s.SetAttr(Str("k", "v"))
	s.Event("ev")
	s.End()
	s.EndErr(errors.New("boom"))
	if s.Failed() {
		t.Fatal("nil Failed = true")
	}
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil Duration = %v, want 0", d)
	}
}

func TestUntracedPathAllocatesNothing(t *testing.T) {
	tr := New(Config{Seed: 1}) // sampling off
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartTrace("round")
		c := sp.Child("call")
		c.Event("retry")
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("untraced path allocates %.1f per run, want 0", allocs)
	}
	joined := testing.AllocsPerRun(100, func() {
		sp := tr.Join(0, 0, "serve")
		sp.End()
	})
	if joined != 0 {
		t.Fatalf("untraced Join allocates %.1f per run, want 0", joined)
	}
}

func TestSpanTreeCompletesIntoRecorder(t *testing.T) {
	tr := on()
	root := tr.StartTrace("round", Int("round", 3))
	if root == nil {
		t.Fatal("sampled StartTrace returned nil")
	}
	call := root.Child("call report-task", Str("shard", "1"))
	call.Event("retry", Str("cause", "transport"))
	call.EndErr(errors.New("conn reset"))
	call2 := root.Child("call report-task")
	call2.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(snap.Recent))
	}
	td := snap.Recent[0]
	if td.Name != "round" {
		t.Fatalf("root name = %q, want round", td.Name)
	}
	if !td.Err {
		t.Fatal("trace with a failed span not marked Err")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(td.Spans))
	}
	rootd := td.Root()
	if rootd.Attr("round") != "3" {
		t.Fatalf("root round attr = %q, want 3", rootd.Attr("round"))
	}
	calls := td.SpansNamed("call report-task")
	if len(calls) != 2 {
		t.Fatalf("call spans = %d, want 2", len(calls))
	}
	if calls[0].Parent != rootd.ID {
		t.Fatalf("call parent = %s, want %s", calls[0].Parent, rootd.ID)
	}
	if !calls[0].HasEvent("retry") {
		t.Fatal("retry event missing")
	}
	if calls[0].Err != "conn reset" {
		t.Fatalf("call err = %q", calls[0].Err)
	}
	// Err trace must also be pinned notable.
	if len(snap.Notable) != 1 || !snap.Notable[0].Notable {
		t.Fatalf("err trace not pinned: notable = %v", snap.Notable)
	}
}

func TestJoinAlwaysRecords(t *testing.T) {
	tr := New(Config{Seed: 7}) // head sampling OFF
	sp := tr.Join(0xabc, 0xdef, "serve report-task", Str("node", "s0r0"))
	if sp == nil {
		t.Fatal("Join with nonzero trace returned nil despite rate 0")
	}
	if sp.TraceID() != 0xabc {
		t.Fatalf("joined trace = %v, want abc", sp.TraceID())
	}
	sp.End()
	snap := tr.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("recent = %d, want 1", len(snap.Recent))
	}
	if got := snap.Recent[0].Spans[0].Parent; got != SpanID(0xdef).String() {
		t.Fatalf("wire parent = %s, want %s", got, SpanID(0xdef).String())
	}
	if tr.Stats().Joined != 1 {
		t.Fatalf("joined stat = %d, want 1", tr.Stats().Joined)
	}
}

func TestSamplingDeterministicAndProportional(t *testing.T) {
	count := func(rate float64) int {
		tr := New(Config{SampleRate: rate, Seed: 99})
		n := 0
		for i := 0; i < 2000; i++ {
			if sp := tr.StartTrace("t"); sp != nil {
				sp.End()
				n++
			}
		}
		return n
	}
	a, b := count(0.25), count(0.25)
	if a != b {
		t.Fatalf("same seed, different sample counts: %d vs %d", a, b)
	}
	if a < 400 || a > 600 {
		t.Fatalf("rate 0.25 sampled %d/2000, want ≈500", a)
	}
	if got := count(0); got != 0 {
		t.Fatalf("rate 0 sampled %d, want 0", got)
	}
	if got := count(1); got != 2000 {
		t.Fatalf("rate 1 sampled %d, want 2000", got)
	}
}

func TestRingEvictionAndNotablePinning(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 3, Capacity: 4, NotableCapacity: 4, SlowThreshold: -1})
	// One error trace, then a burst of healthy traffic big enough to
	// evict it from the recent ring.
	bad := tr.StartTrace("failover-round")
	bad.EndErr(errors.New("leader down"))
	badID := bad.TraceID()
	for i := 0; i < 10; i++ {
		tr.StartTrace(fmt.Sprintf("healthy-%d", i)).End()
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("recent = %d, want 4", len(snap.Recent))
	}
	for _, td := range snap.Recent {
		if td.Trace == badID.String() {
			t.Fatal("error trace should have been evicted from recent ring")
		}
	}
	found := tr.Find(badID)
	if len(found) == 0 {
		t.Fatal("error trace evicted from notable ring too — pinning failed")
	}
	if !found[0].Err || !found[0].Notable {
		t.Fatalf("pinned dump flags: err=%v notable=%v", found[0].Err, found[0].Notable)
	}
}

func TestSlowThresholdPinsTrace(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 5, SlowThreshold: time.Nanosecond})
	sp := tr.StartTrace("slow")
	time.Sleep(time.Millisecond)
	sp.End()
	snap := tr.Snapshot()
	if len(snap.Notable) != 1 {
		t.Fatalf("slow trace not pinned: notable = %d", len(snap.Notable))
	}
	// Negative threshold disables slow pinning.
	tr2 := New(Config{SampleRate: 1, Seed: 5, SlowThreshold: -1})
	sp2 := tr2.StartTrace("fast")
	time.Sleep(time.Millisecond)
	sp2.End()
	if n := len(tr2.Snapshot().Notable); n != 0 {
		t.Fatalf("disabled slow pinning still pinned %d", n)
	}
}

func TestRecordRetro(t *testing.T) {
	tr := on()
	start := time.Now().Add(-40 * time.Millisecond)
	tr.Record("repl pull", start, 40*time.Millisecond, nil, Int("frames", 3))
	tr.Record("repl pull", start, time.Millisecond, errors.New("lagging"))
	snap := tr.Snapshot()
	if len(snap.Recent) != 2 {
		t.Fatalf("recent = %d, want 2", len(snap.Recent))
	}
	ok, bad := snap.Recent[0], snap.Recent[1]
	if ok.Dur != 40*time.Millisecond || ok.Root().Attr("frames") != "3" {
		t.Fatalf("retro dump wrong: dur=%v frames=%q", ok.Dur, ok.Root().Attr("frames"))
	}
	if !bad.Err {
		t.Fatal("retro error not recorded")
	}
}

func TestSpanBoundsEnforced(t *testing.T) {
	tr := on()
	root := tr.StartTrace("bounded")
	for i := 0; i < maxEvents+10; i++ {
		root.Event("e")
	}
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.Child("c").End()
	}
	root.End()
	td := tr.Snapshot().Recent[0]
	if len(td.Root().Events) != maxEvents {
		t.Fatalf("events = %d, want %d", len(td.Root().Events), maxEvents)
	}
	if td.Root().Dropped != 10 {
		t.Fatalf("events dropped = %d, want 10", td.Root().Dropped)
	}
	if len(td.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want %d", len(td.Spans), maxSpansPerTrace)
	}
	if td.Dropped != 11 { // 10 overflow children + the root's own late slot… root was first, so 11 extra created
		// 1 root + 522 children created, 512 kept → 11 dropped.
		t.Fatalf("spans dropped = %d, want 11", td.Dropped)
	}
	if tr.Stats().SpansDropped != 11 {
		t.Fatalf("dropped stat = %d, want 11", tr.Stats().SpansDropped)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := on()
	sp := tr.StartTrace("once")
	sp.End()
	sp.EndErr(errors.New("late"))
	snap := tr.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("recent = %d, want 1", len(snap.Recent))
	}
	if snap.Recent[0].Err {
		t.Fatal("late EndErr overwrote a finished span")
	}
	if tr.Stats().Completed != 1 {
		t.Fatalf("completed = %d, want 1", tr.Stats().Completed)
	}
}

func TestConcurrentSpansAndSnapshots(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 11, Capacity: 8, NotableCapacity: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.StartTrace("round", Int("g", int64(g)))
				var cwg sync.WaitGroup
				for c := 0; c < 3; c++ {
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						ch := root.Child("call")
						ch.Event("retry")
						ch.End()
					}()
				}
				cwg.Wait()
				root.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tr.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := tr.Stats().Completed; got != 8*50 {
		t.Fatalf("completed = %d, want %d", got, 8*50)
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	tr := on()
	root := tr.StartTrace("round")
	root.Child("call", Dur("backoff", 5*time.Millisecond), Bool("ok", true), Float("rho", 0.05)).End()
	root.End()
	snap := tr.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Recent) != 1 || back.Recent[0].Trace != snap.Recent[0].Trace {
		t.Fatalf("round trip lost the trace: %+v", back.Recent)
	}
	call := back.Recent[0].SpansNamed("call")[0]
	if call.Attr("backoff") != "5ms" || call.Attr("ok") != "true" || call.Attr("rho") != "0.05" {
		t.Fatalf("attrs lost in round trip: %+v", call.Attrs)
	}
}

func TestTreeRendering(t *testing.T) {
	tr := on()
	root := tr.StartTrace("round", Int("round", 2))
	call := root.Child("call report-task")
	call.Event("redirect", Str("to", "s0r1"))
	serve := call.Child("serve report-task", Str("node", "s0r1"))
	serve.End()
	call.End()
	root.EndErr(errors.New("partial"))
	td := tr.Snapshot().Recent[0]
	tree := td.Tree()
	for _, want := range []string{
		"trace " + td.Trace,
		"ERROR",
		"round (",
		"└─ call report-task",
		"· +", "redirect to=s0r1",
		"serve report-task", "node=s0r1",
	} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	// serve must be nested deeper than call.
	if strings.Index(tree, "serve report-task") < strings.Index(tree, "call report-task") {
		t.Fatalf("child rendered before parent:\n%s", tree)
	}
}

func TestWireContextRoundTrip(t *testing.T) {
	origin := on()
	remote := New(Config{Seed: 13}) // remote has sampling off

	root := origin.StartTrace("round")
	call := root.Child("call")
	traceID, parent := call.WireContext()

	serve := remote.Join(traceID, parent, "serve")
	serve.Event("append", Int("version", 4))
	serve.End()
	call.End()
	root.End()

	// Remote fragment carries the originator's trace ID.
	rsnap := remote.Snapshot()
	if len(rsnap.Recent) != 1 {
		t.Fatalf("remote recent = %d, want 1", len(rsnap.Recent))
	}
	if rsnap.Recent[0].Trace != root.TraceID().String() {
		t.Fatalf("remote trace = %s, want %s", rsnap.Recent[0].Trace, root.TraceID())
	}
	if rsnap.Recent[0].Spans[0].Parent != call.ID().String() {
		t.Fatalf("remote parent = %s, want %s", rsnap.Recent[0].Spans[0].Parent, call.ID())
	}
}
