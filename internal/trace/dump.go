package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// AttrDump is one attribute rendered for JSON/HTML.
type AttrDump struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// EventDump is one span event rendered for JSON/HTML.
type EventDump struct {
	Offset time.Duration `json:"offset_ns"`
	Name   string        `json:"name"`
	Attrs  []AttrDump    `json:"attrs,omitempty"`
}

// SpanDump is one completed (or still-open-at-finalize) span. IDs are
// hex strings: uint64 does not survive JSON's float64 round trip.
type SpanDump struct {
	ID     string        `json:"id"`
	Parent string        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Err    string        `json:"err,omitempty"`
	// Open marks a span that had not ended when its trace finalized
	// (e.g. an abandoned handler still running in the background).
	Open    bool        `json:"open,omitempty"`
	Attrs   []AttrDump  `json:"attrs,omitempty"`
	Events  []EventDump `json:"events,omitempty"`
	Dropped int         `json:"events_dropped,omitempty"`
}

// TraceDump is one complete trace as retained by the flight recorder.
type TraceDump struct {
	Trace   string        `json:"trace"`
	Name    string        `json:"name"` // root span name
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Err     bool          `json:"err"`
	Notable bool          `json:"notable"`
	// Pinned is set when a span called Pin: the trace is notable by
	// declaration, independent of error state or duration.
	Pinned bool `json:"pinned,omitempty"`
	// Dropped counts spans discarded over the per-trace bound.
	Dropped int        `json:"spans_dropped,omitempty"`
	Spans   []SpanDump `json:"spans"`
}

func dumpAttrs(attrs []Attr) []AttrDump {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]AttrDump, len(attrs))
	for i, a := range attrs {
		out[i] = AttrDump{Key: a.Key, Value: a.Value()}
	}
	return out
}

// dump freezes a fragment's spans into a TraceDump.
func dump(id TraceID, spans []*Span, dropped int) *TraceDump {
	td := &TraceDump{Trace: id.String(), Dropped: dropped}
	for i, sp := range spans {
		sp.mu.Lock()
		pinned := sp.notable
		sd := SpanDump{
			ID:      sp.id.String(),
			Name:    sp.name,
			Start:   sp.start,
			Dur:     sp.dur,
			Err:     sp.err,
			Open:    !sp.ended,
			Attrs:   dumpAttrs(sp.attrs),
			Dropped: sp.dropped,
		}
		if sp.parent != 0 {
			sd.Parent = sp.parent.String()
		}
		if len(sp.events) > 0 {
			sd.Events = make([]EventDump, len(sp.events))
			for j, ev := range sp.events {
				sd.Events[j] = EventDump{Offset: ev.Offset, Name: ev.Name, Attrs: dumpAttrs(ev.Attrs)}
			}
		}
		sp.mu.Unlock()
		if sd.Open {
			sd.Dur = time.Since(sd.Start)
		}
		if sd.Err != "" {
			td.Err = true
		}
		if pinned {
			td.Pinned = true
		}
		if i == 0 {
			td.Name = sd.Name
			td.Start = sd.Start
			td.Dur = sd.Dur
		}
		td.Spans = append(td.Spans, sd)
	}
	return td
}

// MergeDumps stitches every retained fragment of one trace into a
// single dump. Each process-local fragment (the edge's root spans, each
// server's joined serve spans) completes into the flight recorder on its
// own; merging by span ID reassembles the full cross-node tree for
// display. Spans are ordered by start time, so the originating root
// comes first; fragments of other traces (or duplicates from a trace
// retained in both rings) are skipped. Returns nil on no input.
func MergeDumps(dumps []*TraceDump) *TraceDump {
	if len(dumps) == 0 {
		return nil
	}
	out := &TraceDump{Trace: dumps[0].Trace}
	seenDump := make(map[*TraceDump]bool, len(dumps))
	seenSpan := make(map[string]bool)
	for _, td := range dumps {
		if td == nil || td.Trace != out.Trace || seenDump[td] {
			continue
		}
		seenDump[td] = true
		out.Err = out.Err || td.Err
		out.Notable = out.Notable || td.Notable
		out.Pinned = out.Pinned || td.Pinned
		out.Dropped += td.Dropped
		for _, sd := range td.Spans {
			if seenSpan[sd.ID] {
				continue
			}
			seenSpan[sd.ID] = true
			out.Spans = append(out.Spans, sd)
		}
	}
	sort.SliceStable(out.Spans, func(a, b int) bool {
		return out.Spans[a].Start.Before(out.Spans[b].Start)
	})
	if root := out.Root(); root != nil {
		out.Name, out.Start, out.Dur = root.Name, root.Start, root.Dur
	}
	return out
}

// Span lookup helpers used by tests and the audit printers.

// Root returns the dump's root span (the first recorded).
func (td *TraceDump) Root() *SpanDump {
	if len(td.Spans) == 0 {
		return nil
	}
	return &td.Spans[0]
}

// SpansNamed returns every span whose name matches exactly.
func (td *TraceDump) SpansNamed(name string) []*SpanDump {
	var out []*SpanDump
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			out = append(out, &td.Spans[i])
		}
	}
	return out
}

// Attr returns the span's attribute value for key ("" when absent).
func (sd *SpanDump) Attr(key string) string {
	for _, a := range sd.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// HasEvent reports whether the span logged an event with this name.
func (sd *SpanDump) HasEvent(name string) bool {
	for _, ev := range sd.Events {
		if ev.Name == name {
			return true
		}
	}
	return false
}

// Tree renders the trace as an indented ASCII span tree:
//
//	round (12.3ms)
//	├─ call report-task (4.1ms) shard=1
//	│  ├─ dial (0.2ms)
//	│  └─ serve report-task (1.0ms) node=s1r0
//	│       · append seq=7
//	└─ merged-fetch (6.0ms)
//
// Spans recorded on other nodes but joined into the same trace attach
// under their wire parent; orphans (parent span not in this dump)
// attach at the top level.
func (td *TraceDump) Tree() string {
	children := make(map[string][]int)
	byID := make(map[string]bool, len(td.Spans))
	for i := range td.Spans {
		byID[td.Spans[i].ID] = true
	}
	var roots []int
	for i := range td.Spans {
		p := td.Spans[i].Parent
		if p == "" || !byID[p] {
			roots = append(roots, i)
			continue
		}
		children[p] = append(children[p], i)
	}
	// Children in start order so the tree reads chronologically.
	order := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool {
			return td.Spans[idx[a]].Start.Before(td.Spans[idx[b]].Start)
		})
	}
	order(roots)
	for _, c := range children {
		order(c)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s", td.Trace, flags(td))
	b.WriteByte('\n')
	var walk func(idx int, prefix string, last bool)
	walk = func(idx int, prefix string, last bool) {
		sd := &td.Spans[idx]
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(&b, "%s%s%s (%s)%s%s\n",
			prefix, branch, sd.Name, sd.Dur.Round(time.Microsecond), attrSuffix(sd.Attrs), errSuffix(sd))
		for _, ev := range sd.Events {
			fmt.Fprintf(&b, "%s· +%s %s%s\n", childPrefix, ev.Offset.Round(time.Microsecond), ev.Name, attrSuffix(ev.Attrs))
		}
		kids := children[sd.ID]
		for i, k := range kids {
			walk(k, childPrefix, i == len(kids)-1)
		}
	}
	for i, r := range roots {
		walk(r, "", i == len(roots)-1)
	}
	if td.Dropped > 0 {
		fmt.Fprintf(&b, "(+%d spans dropped over the per-trace bound)\n", td.Dropped)
	}
	return b.String()
}

func flags(td *TraceDump) string {
	out := td.Dur.Round(time.Microsecond).String()
	if td.Err {
		out += " ERROR"
	}
	if td.Notable {
		out += " notable"
	}
	return out
}

func attrSuffix(attrs []AttrDump) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return " " + strings.Join(parts, " ")
}

func errSuffix(sd *SpanDump) string {
	switch {
	case sd.Err != "":
		return " ERROR: " + sd.Err
	case sd.Open:
		return " (still open)"
	default:
		return ""
	}
}
