package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/drdp/drdp/internal/telemetry"
)

// replicate pulls frames from leader into follower in batches until the
// follower's version reaches the leader's, returning the batch count.
func replicate(t *testing.T, leader, follower *Store, batch int) int {
	t.Helper()
	pulls := 0
	for {
		frames, upTo, err := leader.FramesSince(follower.Version(), batch)
		if err != nil {
			t.Fatalf("FramesSince: %v", err)
		}
		if len(frames) == 0 {
			if follower.Version() < upTo {
				t.Fatalf("follower stuck at %d below leader %d", follower.Version(), upTo)
			}
			return pulls
		}
		pulls++
		if _, err := follower.ApplyFrames(frames); err != nil {
			t.Fatalf("ApplyFrames: %v", err)
		}
	}
}

func readLog(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	return b
}

func openPair(t *testing.T) (leader, follower *Store) {
	t.Helper()
	var err error
	// SnapshotEvery < 0 keeps both full logs on disk so the test can
	// compare them byte for byte.
	leader, err = Open(Options{Dir: t.TempDir(), SnapshotEvery: -1, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatalf("open leader: %v", err)
	}
	follower, err = Open(Options{Dir: t.TempDir(), SnapshotEvery: -1, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	t.Cleanup(func() { leader.Close(); follower.Close() })
	return leader, follower
}

func TestReplicationByteIdenticalLog(t *testing.T) {
	leader, follower := openPair(t)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 23; i++ {
		if _, err := leader.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	replicate(t, leader, follower, 7)
	if follower.Version() != leader.Version() {
		t.Fatalf("follower version %d, leader %d", follower.Version(), leader.Version())
	}
	lt, _ := leader.View()
	ft, _ := follower.View()
	if !bytes.Equal(gobBytes(t, lt), gobBytes(t, ft)) {
		t.Fatalf("replicated task set differs from leader's")
	}
	if !bytes.Equal(readLog(t, leader.opts.Dir), readLog(t, follower.opts.Dir)) {
		t.Fatalf("replicated log is not byte-identical to the leader's")
	}
	// Re-applying an already-covered batch is a no-op.
	frames, _, err := leader.FramesSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := follower.ApplyFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if v != leader.Version() || follower.Len() != leader.Len() {
		t.Fatalf("stale re-apply changed the follower: version %d len %d", v, follower.Len())
	}
	if !bytes.Equal(readLog(t, leader.opts.Dir), readLog(t, follower.opts.Dir)) {
		t.Fatalf("stale re-apply grew the follower log")
	}
}

func TestReplicationVerdictSidecar(t *testing.T) {
	leader, follower := openPair(t)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 6; i++ {
		if _, err := leader.Append(mkTask(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.SetVerdicts(map[uint64]bool{2: true, 5: true, 6: false}); err != nil {
		t.Fatal(err)
	}
	replicate(t, leader, follower, 4)
	if err := follower.ApplyVerdicts(leader.Verdicts()); err != nil {
		t.Fatal(err)
	}
	got, want := follower.Verdicts(), leader.Verdicts()
	if len(got) != len(want) {
		t.Fatalf("follower has %d verdicts, want %d", len(got), len(want))
	}
	for seq, q := range want {
		if got[seq] != q {
			t.Fatalf("verdict for seq %d: %v, want %v", seq, got[seq], q)
		}
	}
	// Re-shipping the identical map must not grow the sidecar.
	before, err := os.Stat(filepath.Join(follower.opts.Dir, verdictLogName))
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyVerdicts(leader.Verdicts()); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(follower.opts.Dir, verdictLogName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("idempotent re-ship grew verdict sidecar from %d to %d bytes", before.Size(), after.Size())
	}
	// A verdict ahead of the follower's version is deferred, not an error.
	if err := follower.ApplyVerdicts(map[uint64]bool{99: true}); err != nil {
		t.Fatalf("future verdict should be deferred: %v", err)
	}
	if _, ok := follower.Verdicts()[99]; ok {
		t.Fatalf("future verdict was applied before its task arrived")
	}
}

// TestFollowerTornTailRecovery is the mid-stream crash scenario: the
// follower dies while a frame is half-written, recovery truncates the
// torn tail and rolls the version back to the last intact frame, and the
// next pull re-requests from there — converging to a byte-identical log.
func TestFollowerTornTailRecovery(t *testing.T) {
	leader, follower := openPair(t)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 12; i++ {
		if _, err := leader.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	replicate(t, leader, follower, 5)
	fdir := follower.opts.Dir
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last frame mid-payload, as a crash during ApplyFrames would.
	path := filepath.Join(fdir, logName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	follower, err = Open(Options{Dir: fdir, SnapshotEvery: -1, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	defer follower.Close()
	if !follower.Recovery().Truncated {
		t.Fatalf("torn tail not detected")
	}
	if follower.Version() != leader.Version()-1 {
		t.Fatalf("follower recovered at %d, want %d", follower.Version(), leader.Version()-1)
	}
	replicate(t, leader, follower, 5)
	if !bytes.Equal(readLog(t, leader.opts.Dir), readLog(t, fdir)) {
		t.Fatalf("log not byte-identical after torn-tail re-request")
	}
}

func TestApplyFramesRejectsCorruptAndMislabeled(t *testing.T) {
	leader, follower := openPair(t)
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 3; i++ {
		if _, err := leader.Append(mkTask(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, err := leader.FramesSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	flipped := Frame{Seq: frames[0].Seq, Bytes: append([]byte(nil), frames[0].Bytes...)}
	flipped.Bytes[len(flipped.Bytes)-1] ^= 0x40
	if _, err := follower.ApplyFrames([]Frame{flipped}); err == nil {
		t.Fatalf("corrupt frame accepted")
	}
	mislabeled := Frame{Seq: frames[1].Seq + 10, Bytes: frames[1].Bytes}
	if _, err := follower.ApplyFrames([]Frame{mislabeled}); err == nil {
		t.Fatalf("mislabeled frame accepted")
	}
	if follower.Version() != 0 || follower.Len() != 0 {
		t.Fatalf("rejected frames mutated the follower")
	}
}

// TestReplicationConcurrentPull races a pulling follower against a
// leader that is still appending (run under -race in CI).
func TestReplicationConcurrentPull(t *testing.T) {
	leader, follower := openPair(t)
	const total = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(25))
		for i := 0; i < total; i++ {
			if _, err := leader.Append(mkTask(rng, 3)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for follower.Version() < total {
		frames, _, err := leader.FramesSince(follower.Version(), 8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := follower.ApplyFrames(frames); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if !bytes.Equal(readLog(t, leader.opts.Dir), readLog(t, follower.opts.Dir)) {
		t.Fatalf("concurrent replication diverged from leader log")
	}
}
