package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// Framing: [4-byte big-endian payload length][4-byte IEEE CRC32][payload].
const headerBytes = 8

// encodeRecord frames one log record: gob payload with a length prefix
// and checksum. Each record gets its own encoder so it is self-contained
// on the read side (recovery can decode any intact prefix).
func encodeRecord(rec logRecord) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	frame := make([]byte, headerBytes+payload.Len())
	binary.BigEndian.PutUint32(frame[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(frame[headerBytes:], payload.Bytes())
	return frame, nil
}

// readRecord reads one framed record from r, returning it and the bytes
// consumed. io.EOF means a clean end of log; any other error marks a
// torn or corrupt record (the caller truncates there).
func readRecord(r io.Reader, maxBytes int64) (logRecord, int64, error) {
	var rec logRecord
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return rec, 0, io.EOF // clean boundary
		}
		return rec, 0, fmt.Errorf("store: torn record header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if int64(n) > maxBytes {
		return rec, 0, fmt.Errorf("store: record length %d exceeds limit %d", n, maxBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return rec, 0, fmt.Errorf("store: torn record payload: %w", err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(hdr[4:8]) {
		return rec, 0, fmt.Errorf("store: record checksum mismatch")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return rec, 0, fmt.Errorf("store: decode record: %w", err)
	}
	return rec, headerBytes + int64(n), nil
}
