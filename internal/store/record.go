package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// Framing: [4-byte big-endian payload length][4-byte IEEE CRC32][payload].
// Shared by the task log and the verdict sidecar.
const headerBytes = 8

// encodePayload frames one gob value with a length prefix and checksum.
// Each value gets its own encoder so it is self-contained on the read
// side (recovery can decode any intact prefix).
func encodePayload(v any) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	frame := make([]byte, headerBytes+payload.Len())
	binary.BigEndian.PutUint32(frame[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(frame[headerBytes:], payload.Bytes())
	return frame, nil
}

// readPayload reads one framed value from r into v, returning the bytes
// consumed. io.EOF means a clean end of log; any other error marks a
// torn or corrupt record (the caller truncates there).
func readPayload(r io.Reader, maxBytes int64, v any) (int64, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF // clean boundary
		}
		return 0, fmt.Errorf("store: torn record header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if int64(n) > maxBytes {
		return 0, fmt.Errorf("store: record length %d exceeds limit %d", n, maxBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, fmt.Errorf("store: torn record payload: %w", err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(hdr[4:8]) {
		return 0, fmt.Errorf("store: record checksum mismatch")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return 0, fmt.Errorf("store: decode record: %w", err)
	}
	return headerBytes + int64(n), nil
}

func encodeRecord(rec logRecord) ([]byte, error) {
	return encodePayload(rec)
}

func readRecord(r io.Reader, maxBytes int64) (logRecord, int64, error) {
	var rec logRecord
	n, err := readPayload(r, maxBytes, &rec)
	return rec, n, err
}
