package store

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/telemetry"
)

// mkTask builds a small deterministic task posterior.
func mkTask(rng *rand.Rand, dim int) dpprior.TaskPosterior {
	mu := make(mat.Vec, dim)
	for i := range mu {
		mu[i] = rng.NormFloat64()
	}
	sig := mat.NewDense(dim, dim)
	for i := 0; i < dim; i++ {
		sig.Set(i, i, 0.5+rng.Float64())
	}
	return dpprior.TaskPosterior{Mu: mu, Sigma: sig, N: 10 + rng.Intn(90)}
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMemoryStore(t *testing.T) {
	s, err := Open(Options{Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 3; i++ {
		v, err := s.Append(mkTask(rng, 4))
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i) {
			t.Errorf("append %d returned version %d", i, v)
		}
	}
	tasks, v := s.View()
	if len(tasks) != 3 || v != 3 || s.Len() != 3 || s.Version() != 3 {
		t.Errorf("view: %d tasks at version %d", len(tasks), v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(mkTask(rng, 4)); err != ErrClosed {
		t.Errorf("append on closed store: %v", err)
	}
}

// TestPersistRecover: close and reopen recovers the exact task set —
// byte-identical under gob, same version.
func TestPersistRecover(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	s, err := Open(Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	var want []dpprior.TaskPosterior
	for i := 0; i < 7; i++ {
		task := mkTask(rng, 3)
		want = append(want, task)
		if _, err := s.Append(task); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, v := r.View()
	if v != 7 {
		t.Errorf("recovered version %d, want 7", v)
	}
	if !bytes.Equal(gobBytes(t, got), gobBytes(t, want)) {
		t.Error("recovered task set is not byte-identical")
	}
	if ri := r.Recovery(); ri.Truncated {
		t.Errorf("clean shutdown reported truncation: %+v", ri)
	}
}

// TestCrashRecoveryTornTail: a crash mid-append leaves a torn record;
// recovery must keep every complete record, chop the tail, and leave the
// log appendable.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	s, err := Open(Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append(mkTask(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: append a torn record (header + partial payload).
	logPath := filepath.Join(dir, logName)
	full, err := encodeRecord(logRecord{Seq: 6, Task: mkTask(rng, 3)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := full[:len(full)-7]
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	if r.Version() != 5 || r.Len() != 5 {
		t.Errorf("recovered to version %d with %d tasks, want 5/5", r.Version(), r.Len())
	}
	ri := r.Recovery()
	if !ri.Truncated || ri.TruncatedBytes != int64(len(torn)) {
		t.Errorf("recovery info %+v, want truncated %d bytes", ri, len(torn))
	}
	// The log must be clean again: append and survive another reopen.
	if v, err := r.Append(mkTask(rng, 3)); err != nil || v != 6 {
		t.Fatalf("append after recovery: v=%d err=%v", v, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Version() != 6 || r2.Recovery().Truncated {
		t.Errorf("second reopen: version %d, recovery %+v", r2.Version(), r2.Recovery())
	}
}

// TestCrashRecoveryCorruptRecord: a bit flip in a record's payload fails
// its checksum; that record and everything after it are dropped.
func TestCrashRecoveryCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	s, err := Open(Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for i := 0; i < 4; i++ {
		if _, err := s.Append(mkTask(rng, 3)); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(filepath.Join(dir, logName))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte inside record 3 (0-based 2).
	logPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[ends[1]+headerBytes+3] ^= 0xff
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatalf("recovery failed on corrupt record: %v", err)
	}
	defer r.Close()
	if r.Version() != 2 || r.Len() != 2 {
		t.Errorf("recovered to version %d with %d tasks, want 2/2", r.Version(), r.Len())
	}
	if ri := r.Recovery(); !ri.Truncated || ri.TruncatedBytes != ends[3]-ends[1] {
		t.Errorf("recovery info %+v, want %d truncated bytes", ri, ends[3]-ends[1])
	}
}

// TestSnapshotCompaction: crossing SnapshotEvery compacts the log; the
// recovered state is identical and mostly snapshot-sourced.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	s, err := Open(Options{Dir: dir, SnapshotEvery: 4, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	var want []dpprior.TaskPosterior
	for i := 0; i < 10; i++ {
		task := mkTask(rng, 3)
		want = append(want, task)
		if _, err := s.Append(task); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot after %d appends: %v", 10, err)
	}

	r, err := Open(Options{Dir: dir, SnapshotEvery: 4, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, v := r.View()
	if v != 10 {
		t.Errorf("recovered version %d, want 10", v)
	}
	if !bytes.Equal(gobBytes(t, got), gobBytes(t, want)) {
		t.Error("compacted store recovered a different task set")
	}
	ri := r.Recovery()
	if ri.SnapshotTasks < 4 {
		t.Errorf("snapshot holds %d tasks; compaction never ran?", ri.SnapshotTasks)
	}
	if ri.SnapshotTasks+ri.LogRecords != 10 {
		t.Errorf("snapshot %d + log %d != 10", ri.SnapshotTasks, ri.LogRecords)
	}
}

// TestReplaySkipsSnapshotCoveredRecords: a crash between snapshot write
// and log truncation leaves records the snapshot already covers; replay
// must skip them instead of duplicating tasks.
func TestReplaySkipsSnapshotCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	s, err := Open(Options{Dir: dir, SnapshotEvery: -1, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append(mkTask(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the pre-truncation crash: put already-covered records (and
	// one new record) back in the log.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(2); seq <= 4; seq++ {
		frame, err := encodeRecord(logRecord{Seq: seq, Task: mkTask(rng, 3)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	r, err := Open(Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 4 || r.Len() != 4 {
		t.Errorf("recovered version %d with %d tasks, want 4/4", r.Version(), r.Len())
	}
	if ri := r.Recovery(); ri.SkippedRecords != 2 || ri.LogRecords != 1 {
		t.Errorf("recovery info %+v, want 2 skipped / 1 replayed", ri)
	}
}

// TestCorruptSnapshotIsHardError: unlike the log tail, a torn snapshot
// cannot be partially trusted — Open must refuse.
func TestCorruptSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Logger: telemetry.Discard()}); err == nil {
		t.Fatal("corrupt snapshot opened cleanly")
	}
}

// TestConcurrentAppendAndView exercises the store under the race
// detector: appenders, readers, and a forced snapshot all at once.
func TestConcurrentAppendAndView(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), SnapshotEvery: 8, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, perWriter = 4, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				if _, err := s.Append(mkTask(rng, 3)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tasks, v := s.View()
			if uint64(len(tasks)) > v {
				t.Errorf("view: %d tasks above version %d", len(tasks), v)
				return
			}
			_ = s.Len()
			_ = s.Version()
		}
	}()
	wg.Wait()
	if s.Version() != writers*perWriter {
		t.Errorf("final version %d, want %d", s.Version(), writers*perWriter)
	}
}
