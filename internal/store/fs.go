package store

import (
	"io"
	"os"
)

// FS abstracts every file operation the store performs, so tests can
// slide a fault injector (FaultFS) under the exact production code
// paths: append, fsync, snapshot temp-file install, recovery replay.
// The default implementation is the real filesystem (osFS).
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens name with os.OpenFile semantics. Opening a missing
	// file without O_CREATE must return an error satisfying
	// errors.Is(err, os.ErrNotExist).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temp file in dir with os.CreateTemp
	// pattern semantics (the snapshot staging file).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the store's view of one open file: sequential reads for
// recovery, appends plus fsync for the logs, truncate/seek for tail
// repair and compaction.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Name() string
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the default FS backed by package os.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
