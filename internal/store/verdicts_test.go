package store

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
)

// TestVerdictsPersistAcrossReopen: quarantine verdicts written through
// SetVerdicts survive a close/reopen cycle via the sidecar log.
func TestVerdictsPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < 4; i++ {
		if _, err := s.Append(mkTask(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetVerdicts(map[uint64]bool{2: true, 3: false}); err != nil {
		t.Fatal(err)
	}
	// Later verdicts override earlier ones on replay.
	if err := s.SetVerdicts(map[uint64]bool{3: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v := s2.Verdicts()
	if len(v) != 2 || !v[2] || !v[3] {
		t.Errorf("recovered verdicts %v, want 2:true 3:true", v)
	}
	tasks, seqs, version := s2.ViewRecords()
	if len(tasks) != 4 || len(seqs) != 4 || version != 4 {
		t.Fatalf("recovered %d tasks, %d seqs at version %d", len(tasks), len(seqs), version)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Errorf("seq[%d] = %d", i, seq)
		}
	}
}

// TestSetVerdictsRejectsUnknownSeq: verdicts can only refer to sequence
// numbers the store has actually issued.
func TestSetVerdictsRejectsUnknownSeq(t *testing.T) {
	s, err := Open(Options{Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(41))
	if _, err := s.Append(mkTask(rng, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVerdicts(map[uint64]bool{0: true}); err == nil {
		t.Error("seq 0 accepted")
	}
	if err := s.SetVerdicts(map[uint64]bool{2: true}); err == nil {
		t.Error("seq beyond version accepted")
	}
	if err := s.SetVerdicts(nil); err != nil {
		t.Errorf("empty verdict set: %v", err)
	}
}

// TestVerdictsFoldIntoSnapshot: snapshot compaction folds verdicts into
// the snapshot file and truncates the sidecar, and reopening still
// recovers them.
func TestVerdictsFoldIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SnapshotEvery: 3, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	if _, err := s.Append(mkTask(rng, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVerdicts(map[uint64]bool{1: true}); err != nil {
		t.Fatal(err)
	}
	// These two appends cross SnapshotEvery and trigger compaction.
	for i := 0; i < 2; i++ {
		if _, err := s.Append(mkTask(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(filepath.Join(dir, verdictLogName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("verdict sidecar not truncated after snapshot: %d bytes", fi.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v := s2.Verdicts(); len(v) != 1 || !v[1] {
		t.Errorf("verdicts after snapshot reopen: %v", v)
	}
	if s2.Len() != 3 || s2.Version() != 3 {
		t.Errorf("recovered %d tasks at version %d", s2.Len(), s2.Version())
	}
}

// TestVerdictLogTornTailTruncated: a torn write at the sidecar's tail is
// chopped off like the task log's, not a hard error.
func TestVerdictLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	if _, err := s.Append(mkTask(rng, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVerdicts(map[uint64]bool{1: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, verdictLogName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 9, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(Options{Dir: dir, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Recovery().Truncated {
		t.Error("torn verdict tail not reported")
	}
	if v := s2.Verdicts(); len(v) != 1 || !v[1] {
		t.Errorf("verdicts after torn-tail recovery: %v", v)
	}
	// The store stays writable after the repair.
	if err := s2.SetVerdicts(map[uint64]bool{1: false}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDropsInvalidRecords: a CRC-valid log record whose task
// fails semantic validation is dropped at recovery — it cannot resurrect
// a poisoned prior — while the version sequence it consumed is kept.
func TestRecoveryDropsInvalidRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	if _, err := s.Append(mkTask(rng, 3)); err != nil {
		t.Fatal(err)
	}
	// A poisoned task: CRC will be valid (it goes through the normal
	// append path), but the mean is non-finite.
	bad := mkTask(rng, 3)
	bad.Mu[0] = math.NaN()
	if _, err := s.Append(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(mkTask(rng, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, Logger: telemetry.Discard(),
		Validate: dpprior.TaskValidator()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ri := s2.Recovery()
	if ri.InvalidRecords != 1 {
		t.Errorf("InvalidRecords = %d, want 1", ri.InvalidRecords)
	}
	tasks, seqs, version := s2.ViewRecords()
	if len(tasks) != 2 {
		t.Fatalf("recovered %d tasks, want 2", len(tasks))
	}
	// The invariant: version counts every task ever appended, even the
	// dropped one, so seq numbering (and verdict keys) stay stable.
	if version != 3 {
		t.Errorf("version = %d, want 3", version)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Errorf("seqs = %v, want [1 3]", seqs)
	}
	for i, task := range tasks {
		if math.IsNaN(task.Mu[0]) {
			t.Errorf("task %d is the poisoned record", i)
		}
	}

	// And the snapshot written from the filtered state round-trips.
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Dir: dir, Logger: telemetry.Discard(),
		Validate: dpprior.TaskValidator()})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 || s3.Version() != 3 {
		t.Errorf("post-snapshot reopen: %d tasks at version %d", s3.Len(), s3.Version())
	}
}
