package store

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/telemetry"
)

// openFault opens a store in dir under a FaultFS with the given plan,
// disarmed so the open itself runs clean.
func openFault(t *testing.T, dir string, plan FaultPlan) (*Store, *FaultFS) {
	t.Helper()
	ffs := NewFaultFS(nil, plan)
	ffs.Disarm()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard(), FS: ffs, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s, ffs
}

// reopenClean reopens dir on the real filesystem and returns the store.
func reopenClean(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard(), SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAppendWriteErrorPoisonsStore: a failed append-path write latches
// ErrPoisoned — the store fails fast on every later write instead of
// appending after a possibly-torn frame — and a reopen recovers exactly
// the acknowledged appends.
func TestAppendWriteErrorPoisonsStore(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFault(t, dir, FaultPlan{Seed: 1, WriteErrorRate: 1})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		if _, err := s.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Arm()
	if _, err := s.Append(mkTask(rng, 4)); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("append under write fault: %v", err)
	}
	if s.Poisoned() == nil {
		t.Fatal("store not poisoned after failed append")
	}
	// Every later write fails fast with ErrPoisoned, even ones that
	// would now succeed; reads still serve from memory.
	ffs.Disarm()
	if _, err := s.Append(mkTask(rng, 4)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned store: %v", err)
	}
	if err := s.SetVerdicts(map[uint64]bool{1: true}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("verdict write on poisoned store: %v", err)
	}
	if _, err := s.ApplyFrames([]Frame{{Seq: 99}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("apply frames on poisoned store: %v", err)
	}
	if s.Version() != 3 || s.Len() != 3 {
		t.Fatalf("poisoned store serves version %d len %d, want 3/3", s.Version(), s.Len())
	}
	s.Close()

	re := reopenClean(t, dir)
	if re.Version() != 3 || re.Len() != 3 {
		t.Fatalf("reopen recovered version %d len %d, want 3/3", re.Version(), re.Len())
	}
	if re.Recovery().Truncated {
		t.Fatal("reopen found a torn tail; the failed append leaked bytes")
	}
}

// TestShortWriteNeverAcknowledgedHalfFrame: a torn write (strict prefix
// persisted) fails the append, poisons the store, and the half-frame is
// chopped back off — no acknowledged append is ever half-written.
func TestShortWriteNeverAcknowledgedHalfFrame(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFault(t, dir, FaultPlan{Seed: 7, ShortWriteRate: 1})
	rng := rand.New(rand.NewSource(2))
	var acked uint64
	for i := 0; i < 5; i++ {
		v, err := s.Append(mkTask(rng, 4))
		if err != nil {
			t.Fatal(err)
		}
		acked = v
	}
	ffs.Arm()
	if _, err := s.Append(mkTask(rng, 4)); !errors.Is(err, ErrInjectedShort) {
		t.Fatalf("append under short-write fault: %v", err)
	}
	if got := ffs.Injected("short-write"); got != 1 {
		t.Fatalf("short-write injections = %d, want 1", got)
	}
	if s.Poisoned() == nil {
		t.Fatal("store not poisoned after torn write")
	}
	s.Close()

	re := reopenClean(t, dir)
	if re.Version() != acked || re.Len() != int(acked) {
		t.Fatalf("reopen recovered version %d len %d, want %d acknowledged appends",
			re.Version(), re.Len(), acked)
	}
	if re.Recovery().Truncated {
		t.Fatal("recovery truncated a tail: poisoning left the torn frame on disk")
	}
}

// TestSyncErrorPoisonsStore: fsync failure is as fatal as a failed
// write — the kernel may or may not have flushed, so the frame cannot
// be acknowledged.
func TestSyncErrorPoisonsStore(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFault(t, dir, FaultPlan{Seed: 3, SyncErrorRate: 1})
	rng := rand.New(rand.NewSource(3))
	if _, err := s.Append(mkTask(rng, 4)); err != nil {
		t.Fatal(err)
	}
	ffs.Arm()
	if _, err := s.Append(mkTask(rng, 4)); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("append under sync fault: %v", err)
	}
	if s.Poisoned() == nil {
		t.Fatal("store not poisoned after failed fsync")
	}
	s.Close()
	if re := reopenClean(t, dir); re.Version() != 1 {
		t.Fatalf("reopen recovered version %d, want 1", re.Version())
	}
}

// TestSnapshotCompactionFailureSurfaces: a rename failure during
// compaction must not be swallowed — the append that triggered it still
// succeeds (it is already durable), CompactionError reports the
// failure, the old snapshot stays authoritative, and the next
// compaction retries.
func TestSnapshotCompactionFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultPlan{Seed: 5, RenameErrorRate: 1})
	ffs.Disarm()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard(), FS: ffs, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3; i++ {
		if _, err := s.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Arm()
	// The 4th append crosses SnapshotEvery; compaction fails on the
	// rename but the append itself must succeed.
	v, err := s.Append(mkTask(rng, 4))
	if err != nil {
		t.Fatalf("append with failing compaction: %v", err)
	}
	if v != 4 {
		t.Fatalf("append returned version %d, want 4", v)
	}
	if s.CompactionError() == nil {
		t.Fatal("compaction failure not surfaced through CompactionError")
	}
	if got := ffs.Injected("rename"); got == 0 {
		t.Fatal("no rename fault injected")
	}
	if s.Poisoned() != nil {
		t.Fatal("compaction failure must not poison the store (append is durable)")
	}
	// The next compaction (faults disarmed) retries and clears the error.
	ffs.Disarm()
	if _, err := s.Append(mkTask(rng, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.CompactionError(); err != nil {
		t.Fatalf("compaction error not cleared after successful retry: %v", err)
	}
	s.Close()

	if re := reopenClean(t, dir); re.Version() != 5 || re.Len() != 5 {
		t.Fatalf("reopen recovered version %d len %d, want 5/5", re.Version(), re.Len())
	}
}

// TestENOSPCFailsFastAndRecovers: once the byte budget is exhausted
// every write fails with the injected ENOSPC; acknowledged appends
// survive the reopen.
func TestENOSPCFailsFastAndRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultPlan{Seed: 9, ENOSPCAfter: 1})
	ffs.Disarm()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard(), FS: ffs, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := s.Append(mkTask(rng, 4)); err != nil {
		t.Fatal(err)
	}
	ffs.Arm()
	// The 1-byte budget admits one more write (charged before the
	// threshold trips), then the disk is full.
	if _, err := s.Append(mkTask(rng, 4)); err != nil {
		t.Fatalf("append within ENOSPC budget: %v", err)
	}
	if _, err := s.Append(mkTask(rng, 4)); !errors.Is(err, ErrInjectedNoSpc) {
		t.Fatalf("append past ENOSPC budget: %v", err)
	}
	if s.Poisoned() == nil {
		t.Fatal("ENOSPC write failure did not poison the store")
	}
	s.Close()
	re := reopenClean(t, dir)
	if re.Version() != 2 || re.Len() != 2 {
		t.Fatalf("reopen recovered version %d len %d, want the 2 acknowledged appends", re.Version(), re.Len())
	}
	if re.Recovery().Truncated {
		t.Fatal("reopen found a torn tail after ENOSPC")
	}
}

// TestVerdictWriteFailurePoisons: the verdict sidecar shares the
// poison discipline — a failed verdict write never half-persists.
func TestVerdictWriteFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFault(t, dir, FaultPlan{Seed: 11, WriteErrorRate: 1})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3; i++ {
		if _, err := s.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetVerdicts(map[uint64]bool{1: true}); err != nil {
		t.Fatal(err)
	}
	ffs.Arm()
	if err := s.SetVerdicts(map[uint64]bool{2: true}); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("verdict write under fault: %v", err)
	}
	if s.Poisoned() == nil {
		t.Fatal("store not poisoned after failed verdict write")
	}
	s.Close()
	re := reopenClean(t, dir)
	verdicts := re.Verdicts()
	if len(verdicts) != 1 || !verdicts[1] {
		t.Fatalf("reopen verdicts = %v, want exactly {1:true}", verdicts)
	}
}
