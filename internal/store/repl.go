package store

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
)

// Replication primitives: a leader ships its append-only log to followers
// frame by frame, and a follower applies the frames verbatim to its own
// log. Because a logRecord holds no maps, gob re-encodes it to the exact
// bytes the leader first wrote, so FramesSince can serve the stream from
// in-memory state — no file-offset bookkeeping — while the follower's log
// stays byte-identical to the leader's. The follower's durable version is
// its acknowledgement: after a crash (even mid-stream, with a torn tail)
// it re-requests from Version(), which recovery has already rolled back
// to the last intact frame.

// DefaultMaxPullFrames caps one FramesSince batch when the caller passes
// no limit, bounding a single replication response.
const DefaultMaxPullFrames = 256

// Frame is one replicated log record: the verbatim framed bytes
// (length + CRC + gob payload) and the sequence number they carry.
type Frame struct {
	Seq   uint64
	Bytes []byte
}

// FramesSince returns the framed log records with sequence numbers above
// after (at most maxFrames; 0 means DefaultMaxPullFrames), plus the
// store's current version so the caller can measure its replication lag.
// Sequence numbers a past recovery dropped are simply absent: the
// follower's version jumps over them exactly as the leader's did.
func (s *Store) FramesSince(after uint64, maxFrames int) ([]Frame, uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	tasks := s.tasks[:len(s.tasks):len(s.tasks)]
	seqs := s.seqs[:len(s.seqs):len(s.seqs)]
	upTo := s.version
	s.mu.Unlock()

	if maxFrames <= 0 {
		maxFrames = DefaultMaxPullFrames
	}
	start := sort.Search(len(seqs), func(i int) bool { return seqs[i] > after })
	var frames []Frame
	for i := start; i < len(seqs) && len(frames) < maxFrames; i++ {
		b, err := encodeRecord(logRecord{Seq: seqs[i], Task: tasks[i]})
		if err != nil {
			return nil, 0, err
		}
		frames = append(frames, Frame{Seq: seqs[i], Bytes: b})
	}
	return frames, upTo, nil
}

// ApplyFrames appends replicated frames to the follower's log and state,
// returning the new store version. Frames at or below the current version
// are skipped (re-requests after an ambiguous crash are idempotent); the
// rest must be self-consistent (CRC-valid, Seq matching the payload) and
// in increasing order. The whole batch is written and fsynced as one unit
// before the in-memory state advances, so the returned version is durable
// — it is the acknowledgement the follower reports upstream.
func (s *Store) ApplyFrames(frames []Frame) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	type applied struct {
		seq   uint64
		task  dpprior.TaskPosterior
		valid bool
	}
	var batch []applied
	var raw []byte
	ver := s.version
	for _, fr := range frames {
		if fr.Seq <= ver {
			continue
		}
		rec, n, err := readRecord(bytes.NewReader(fr.Bytes), s.opts.MaxRecordBytes)
		if err != nil {
			return 0, fmt.Errorf("store: replicated frame %d: %w", fr.Seq, err)
		}
		if rec.Seq != fr.Seq {
			return 0, fmt.Errorf("store: replicated frame labeled %d carries seq %d", fr.Seq, rec.Seq)
		}
		if n != int64(len(fr.Bytes)) {
			return 0, fmt.Errorf("store: replicated frame %d has %d trailing bytes", fr.Seq, int64(len(fr.Bytes))-n)
		}
		ver = rec.Seq
		valid := true
		if s.opts.Validate != nil && s.opts.Validate(rec.Task) != nil {
			valid = false
		}
		batch = append(batch, applied{seq: rec.Seq, task: rec.Task, valid: valid})
		raw = append(raw, fr.Bytes...)
	}
	if len(batch) == 0 {
		return s.version, nil
	}
	if s.logF != nil {
		if _, err := s.logF.Write(raw); err != nil {
			return 0, fmt.Errorf("store: apply frames: %w", err)
		}
		if !s.opts.NoSync {
			if err := s.logF.Sync(); err != nil {
				return 0, fmt.Errorf("store: sync applied frames: %w", err)
			}
		}
		telemetry.StoreLogBytes.Add(float64(len(raw)))
	}
	invalid := 0
	for _, a := range batch {
		if a.valid {
			s.tasks = append(s.tasks, a.task)
			s.seqs = append(s.seqs, a.seq)
		} else {
			invalid++
		}
		s.version = a.seq
		s.sinceSnap++
		telemetry.StoreAppends.Inc()
	}
	if invalid > 0 {
		telemetry.StoreInvalidRecords.Add(float64(invalid))
		s.logger.Warn("store: dropped invalid replicated tasks", "records", invalid)
	}
	telemetry.StoreTasks.Set(float64(len(s.tasks)))
	if s.logF != nil && s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			s.logger.Warn("store: snapshot compaction failed", "err", err)
		}
	}
	return s.version, nil
}

// ApplyVerdicts replicates the leader's admission verdicts: entries that
// differ from (or are absent in) the local set are appended durably to
// the verdict sidecar; the rest are skipped, so re-shipping the full map
// every pull does not grow the sidecar. Verdicts for sequence numbers
// beyond the local version are deferred — the frames carrying those tasks
// have not arrived yet, and the next pull re-offers the verdicts.
func (s *Store) ApplyVerdicts(verdicts map[uint64]bool) error {
	s.mu.Lock()
	diff := make(map[uint64]bool)
	for seq, q := range verdicts {
		if seq == 0 || seq > s.version {
			continue
		}
		if cur, ok := s.verdicts[seq]; !ok || cur != q {
			diff[seq] = q
		}
	}
	s.mu.Unlock()
	return s.SetVerdicts(diff)
}
