package store

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
)

// Replication primitives: a leader ships its append-only log to followers
// frame by frame, and a follower applies the frames verbatim to its own
// log. Because a logRecord holds no maps, gob re-encodes it to the exact
// bytes the leader first wrote, so FramesSince can serve the stream from
// in-memory state — no file-offset bookkeeping — while the follower's log
// stays byte-identical to the leader's. The follower's durable version is
// its acknowledgement: after a crash (even mid-stream, with a torn tail)
// it re-requests from Version(), which recovery has already rolled back
// to the last intact frame.

// DefaultMaxPullFrames caps one FramesSince batch when the caller passes
// no limit, bounding a single replication response.
const DefaultMaxPullFrames = 256

// Frame is one replicated log record: the verbatim framed bytes
// (length + CRC + gob payload) and the sequence number they carry.
type Frame struct {
	Seq   uint64
	Bytes []byte
}

// DefaultFrameCacheSize is how many encoded frames a store retains for
// FramesSince when Options.FrameCacheSize is zero.
const DefaultFrameCacheSize = 512

// cacheFrameLocked remembers one encoded frame, evicting the oldest
// entries FIFO past the cap. The bytes must be immutable (they are
// handed to replication responses without copying). Caller holds s.mu.
func (s *Store) cacheFrameLocked(seq uint64, b []byte) {
	limit := s.opts.FrameCacheSize
	if limit == 0 {
		limit = DefaultFrameCacheSize
	}
	if limit < 0 {
		return
	}
	if s.frameCache == nil {
		s.frameCache = make(map[uint64][]byte, limit)
	}
	if _, ok := s.frameCache[seq]; ok {
		return
	}
	s.frameCache[seq] = b
	s.frameSeqs = append(s.frameSeqs, seq)
	for len(s.frameSeqs) > limit {
		delete(s.frameCache, s.frameSeqs[0])
		s.frameSeqs = s.frameSeqs[1:]
	}
}

// FramesSince returns the framed log records with sequence numbers above
// after (at most maxFrames; 0 means DefaultMaxPullFrames), plus the
// store's current version so the caller can measure its replication lag.
// Sequence numbers a past recovery dropped are simply absent: the
// follower's version jumps over them exactly as the leader's did.
//
// Recently appended (or previously pulled) frames come straight from the
// encoded-frame cache; only frames that fell out of it — or never
// entered it, on a memory-only store — pay a re-encode, outside the
// lock, and are cached for the next follower.
func (s *Store) FramesSince(after uint64, maxFrames int) ([]Frame, uint64, error) {
	if maxFrames <= 0 {
		maxFrames = DefaultMaxPullFrames
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	tasks := s.tasks[:len(s.tasks):len(s.tasks)]
	seqs := s.seqs[:len(s.seqs):len(s.seqs)]
	upTo := s.version
	start := sort.Search(len(seqs), func(i int) bool { return seqs[i] > after })
	n := len(seqs) - start
	if n > maxFrames {
		n = maxFrames
	}
	if n <= 0 {
		s.mu.Unlock()
		return nil, upTo, nil
	}
	frames := make([]Frame, n)
	var misses []int
	for i := 0; i < n; i++ {
		frames[i].Seq = seqs[start+i]
		if b, ok := s.frameCache[frames[i].Seq]; ok {
			frames[i].Bytes = b
		} else {
			misses = append(misses, i)
		}
	}
	s.mu.Unlock()

	telemetry.StoreFrameCacheHits.Add(float64(n - len(misses)))
	if len(misses) == 0 {
		return frames, upTo, nil
	}
	telemetry.StoreFrameCacheMisses.Add(float64(len(misses)))
	for _, i := range misses {
		b, err := encodeRecord(logRecord{Seq: frames[i].Seq, Task: tasks[start+i]})
		if err != nil {
			return nil, 0, err
		}
		frames[i].Bytes = b
	}
	s.mu.Lock()
	if !s.closed {
		for _, i := range misses {
			s.cacheFrameLocked(frames[i].Seq, frames[i].Bytes)
		}
	}
	s.mu.Unlock()
	return frames, upTo, nil
}

// ApplyFrames appends replicated frames to the follower's log and state,
// returning the new store version. Frames at or below the current version
// are skipped (re-requests after an ambiguous crash are idempotent); the
// rest must be self-consistent (CRC-valid, Seq matching the payload) and
// in increasing order. The whole batch is written and fsynced as one unit
// before the in-memory state advances, so the returned version is durable
// — it is the acknowledgement the follower reports upstream.
func (s *Store) ApplyFrames(frames []Frame) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.poisoned != nil {
		return 0, fmt.Errorf("%w: %w", ErrPoisoned, s.poisoned)
	}
	type applied struct {
		seq   uint64
		task  dpprior.TaskPosterior
		bytes []byte
		valid bool
	}
	var batch []applied
	var raw []byte
	ver := s.version
	for _, fr := range frames {
		if fr.Seq <= ver {
			continue
		}
		rec, n, err := readRecord(bytes.NewReader(fr.Bytes), s.opts.MaxRecordBytes)
		if err != nil {
			return 0, fmt.Errorf("store: replicated frame %d: %w", fr.Seq, err)
		}
		if rec.Seq != fr.Seq {
			return 0, fmt.Errorf("store: replicated frame labeled %d carries seq %d", fr.Seq, rec.Seq)
		}
		if n != int64(len(fr.Bytes)) {
			return 0, fmt.Errorf("store: replicated frame %d has %d trailing bytes", fr.Seq, int64(len(fr.Bytes))-n)
		}
		ver = rec.Seq
		valid := true
		if s.opts.Validate != nil && s.opts.Validate(rec.Task) != nil {
			valid = false
		}
		batch = append(batch, applied{seq: rec.Seq, task: rec.Task, bytes: fr.Bytes, valid: valid})
		raw = append(raw, fr.Bytes...)
	}
	if len(batch) == 0 {
		return s.version, nil
	}
	if s.logF != nil {
		if _, err := s.logF.Write(raw); err != nil {
			s.poisonLocked(err)
			return 0, fmt.Errorf("store: apply frames: %w", err)
		}
		if !s.opts.NoSync {
			if err := s.logF.Sync(); err != nil {
				s.poisonLocked(err)
				return 0, fmt.Errorf("store: sync applied frames: %w", err)
			}
		}
		s.logSize += int64(len(raw))
		telemetry.StoreLogBytes.Add(float64(len(raw)))
	}
	invalid := 0
	for _, a := range batch {
		if a.valid {
			s.tasks = append(s.tasks, a.task)
			s.seqs = append(s.seqs, a.seq)
		} else {
			invalid++
		}
		s.version = a.seq
		s.sinceSnap++
		telemetry.StoreAppends.Inc()
		// Cache the applied frame verbatim: a promoted follower serves
		// its own replication stream from these same bytes.
		s.cacheFrameLocked(a.seq, a.bytes)
	}
	if invalid > 0 {
		telemetry.StoreInvalidRecords.Add(float64(invalid))
		s.logger.Warn("store: dropped invalid replicated tasks", "records", invalid)
	}
	telemetry.StoreTasks.Set(float64(len(s.tasks)))
	if s.logF != nil && s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			s.compactErr = err
			telemetry.StoreSnapshotFailures.Inc()
			s.logger.Warn("store: snapshot compaction failed", "err", err)
		}
	}
	return s.version, nil
}

// ApplyVerdicts replicates the leader's admission verdicts: entries that
// differ from (or are absent in) the local set are appended durably to
// the verdict sidecar; the rest are skipped, so re-shipping the full map
// every pull does not grow the sidecar. Verdicts for sequence numbers
// beyond the local version are deferred — the frames carrying those tasks
// have not arrived yet, and the next pull re-offers the verdicts.
func (s *Store) ApplyVerdicts(verdicts map[uint64]bool) error {
	s.mu.Lock()
	diff := make(map[uint64]bool)
	for seq, q := range verdicts {
		if seq == 0 || seq > s.version {
			continue
		}
		if cur, ok := s.verdicts[seq]; !ok || cur != q {
			diff[seq] = q
		}
	}
	s.mu.Unlock()
	return s.SetVerdicts(diff)
}
