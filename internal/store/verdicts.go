package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/drdp/drdp/internal/dpprior"
)

const verdictLogName = "verdicts.log"

// verdictRecord is one framed entry of the verdict sidecar: the
// admission judge's decision for the task appended at Seq. Later records
// for the same Seq override earlier ones on replay.
type verdictRecord struct {
	Seq         uint64
	Quarantined bool
}

// loadVerdicts opens the verdict sidecar and replays it over the
// verdicts recovered from the snapshot. A torn or corrupt tail is
// truncated like the task log's; a verdict for a sequence number the
// store has never issued is dropped (it cannot refer to a real task).
func (s *Store) loadVerdicts() error {
	path := filepath.Join(s.opts.Dir, verdictLogName)
	f, err := s.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: open verdict log: %w", err)
	}
	s.verdictF = f

	offset := int64(0)
	for {
		var rec verdictRecord
		n, err := readPayload(f, s.opts.MaxRecordBytes, &rec)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			end, serr := f.Seek(0, io.SeekEnd)
			if serr != nil {
				return fmt.Errorf("store: seek verdict log: %w", serr)
			}
			s.recovery.Truncated = true
			s.recovery.TruncatedBytes += end - offset
			s.verdictsTruncated = true
			if terr := f.Truncate(offset); terr != nil {
				return fmt.Errorf("store: truncate verdict log tail: %w", terr)
			}
			break
		}
		offset += n
		if rec.Seq == 0 || rec.Seq > s.version {
			continue
		}
		s.verdicts[rec.Seq] = rec.Quarantined
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek verdict log end: %w", err)
	}
	s.verdictSize = offset
	return nil
}

// SetVerdicts durably records admission verdicts (true = quarantined)
// keyed by the sequence number that appended each task. Verdicts for
// sequence numbers the store has never issued are rejected. Writes are
// ordered by sequence number so the on-disk log is deterministic for a
// given verdict set.
func (s *Store) SetVerdicts(verdicts map[uint64]bool) error {
	if len(verdicts) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.poisoned != nil {
		return fmt.Errorf("%w: %w", ErrPoisoned, s.poisoned)
	}
	seqs := make([]uint64, 0, len(verdicts))
	for seq := range verdicts {
		if seq == 0 || seq > s.version {
			return fmt.Errorf("store: verdict for unknown seq %d (version %d)", seq, s.version)
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	if s.verdictF != nil {
		var frames []byte
		for _, seq := range seqs {
			frame, err := encodePayload(verdictRecord{Seq: seq, Quarantined: verdicts[seq]})
			if err != nil {
				return err
			}
			frames = append(frames, frame...)
		}
		if _, err := s.verdictF.Write(frames); err != nil {
			s.poisonLocked(err)
			return fmt.Errorf("store: append verdicts: %w", err)
		}
		if !s.opts.NoSync {
			if err := s.verdictF.Sync(); err != nil {
				s.poisonLocked(err)
				return fmt.Errorf("store: sync verdict log: %w", err)
			}
		}
		s.verdictSize += int64(len(frames))
	}
	for _, seq := range seqs {
		s.verdicts[seq] = verdicts[seq]
	}
	return nil
}

// Verdicts returns a copy of the recorded admission verdicts
// (seq → quarantined).
func (s *Store) Verdicts() map[uint64]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]bool, len(s.verdicts))
	for seq, q := range s.verdicts {
		out[seq] = q
	}
	return out
}

// ViewRecords is View plus the per-task sequence numbers (the key space
// of Verdicts). Both slices are immutable snapshots; callers must not
// modify them.
func (s *Store) ViewRecords() ([]dpprior.TaskPosterior, []uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasks[:len(s.tasks):len(s.tasks)], s.seqs[:len(s.seqs):len(s.seqs)], s.version
}
