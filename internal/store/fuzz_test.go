package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/drdp/drdp/internal/telemetry"
)

// FuzzRecover feeds arbitrary bytes to the store as a log file. Recovery
// must never panic, and must be idempotent: whatever task set the first
// Open salvages, a second Open of the truncated log recovers the same
// set with nothing further to chop.
func FuzzRecover(f *testing.F) {
	// Seed with a valid two-record log, a torn version of it, and
	// pathological prefixes.
	rng := rand.New(rand.NewSource(7))
	var valid []byte
	for seq := uint64(1); seq <= 2; seq++ {
		frame, err := encodeRecord(logRecord{Seq: seq, Task: mkTask(rng, 3)})
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, frame...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4, 9, 9, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Small record bound so a hostile length prefix cannot make the
		// fuzzer allocate its way to an OOM.
		opts := Options{Dir: dir, NoSync: true, MaxRecordBytes: 1 << 20, Logger: telemetry.Discard()}
		s, err := Open(opts)
		if err != nil {
			// Only the snapshot may hard-fail Open, and there is none here.
			t.Fatalf("recovery hard-failed on log bytes: %v", err)
		}
		n, v := s.Len(), s.Version()
		if uint64(n) > v {
			t.Fatalf("recovered %d tasks above version %d", n, v)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := Open(opts)
		if err != nil {
			t.Fatalf("second open failed: %v", err)
		}
		defer r.Close()
		if r.Len() != n || r.Version() != v {
			t.Fatalf("recovery not idempotent: %d/%d then %d/%d", n, v, r.Len(), r.Version())
		}
		if ri := r.Recovery(); ri.Truncated {
			t.Fatalf("second open still truncating: %+v", ri)
		}
	})
}
