package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/drdp/drdp/internal/telemetry"
)

// Integrity scrubbing. Disk corruption that lands after a write
// succeeded (bit rot, a lying fsync) passes every code path until the
// bytes are re-read — which for a store that serves from memory may be
// never, until the restart that needs them. Scrub is the background
// re-read: it CRC-walks the task log and verdict sidecar, verifies the
// snapshot decodes, quarantines the corrupt range, and — given a
// RepairSource — repairs the log by re-pulling verbatim frames from a
// replica over the same FramesSince stream replication uses, restoring
// the byte-identical-log invariant through bit rot.

// RepairSource supplies the verbatim frames and verdicts a scrub uses
// to repair quarantined ranges — typically the shard leader, reached
// over the PullLog RPC.
type RepairSource interface {
	// FramesSince returns verbatim log frames with sequence numbers
	// above after (*Store satisfies this directly).
	FramesSince(after uint64, maxFrames int) ([]Frame, uint64, error)
	// Verdicts returns the peer's full verdict map.
	Verdicts() (map[uint64]bool, error)
}

// peerSource adapts a local *Store into a RepairSource (tests and
// in-process repair).
type peerSource struct{ peer *Store }

func (p peerSource) FramesSince(after uint64, maxFrames int) ([]Frame, uint64, error) {
	return p.peer.FramesSince(after, maxFrames)
}
func (p peerSource) Verdicts() (map[uint64]bool, error) { return p.peer.Verdicts(), nil }

// PeerSource wraps a local peer store as a RepairSource.
func PeerSource(peer *Store) RepairSource { return peerSource{peer: peer} }

// ScrubReport summarizes one integrity pass.
type ScrubReport struct {
	FramesChecked int // intact log frames CRC-verified
	CorruptFrames int // frames quarantined (first corrupt frame to tail)

	// QuarantinedFrom/To is the quarantined sequence range (0/0 = none).
	QuarantinedFrom uint64
	QuarantinedTo   uint64

	RepairedFrames int  // frames restored verbatim from the RepairSource
	Repaired       bool // the quarantined range was fully restored

	SnapshotOK       bool // snapshot file decoded (or is absent)
	SnapshotRepaired bool // corrupt snapshot rewritten from memory

	VerdictFrames     int  // intact sidecar records verified
	VerdictCorrupt    bool // sidecar held corrupt bytes
	VerdictsRewritten int  // verdicts rewritten after merging the source's
	VerdictsMerged    int  // missing verdicts re-derived from the source

	PoisonCleared bool // a poisoned store was restored to writable
}

// Clean reports whether the pass found nothing wrong.
func (r ScrubReport) Clean() bool {
	return r.CorruptFrames == 0 && r.SnapshotOK && !r.SnapshotRepaired && !r.VerdictCorrupt
}

// Scrub runs one integrity pass over the on-disk state. src supplies
// replica-assisted repair; with a nil src corruption is detected and
// quarantined but the log bytes are left in place (the in-memory state
// keeps serving, and recovery on reopen truncates from the first
// corrupt frame). A successful pass also clears a poisoned store: the
// log has been re-verified end to end and ends on a clean boundary, so
// writing again is safe.
//
// Memory-only stores scrub trivially clean. The detection walks hold
// the store lock, but network repair pulls do NOT: a slow or timed-out
// repair source must not stall appends and reads on a store whose
// in-memory state is perfectly healthy. The lock is reacquired to
// splice, and the splice is skipped (retried next pass) if the log
// moved while the pull was in flight.
func (s *Store) Scrub(src RepairSource) (ScrubReport, error) {
	rep := ScrubReport{SnapshotOK: true}

	// Phase 1 (locked): verify the snapshot and walk both logs,
	// recording what needs repair.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return rep, ErrClosed
	}
	if s.logF == nil {
		s.mu.Unlock()
		return rep, nil
	}

	// Snapshot first: it must decode, or every restart from now on is a
	// hard error. The full state is still in memory, so a corrupt
	// snapshot self-heals by forcing a compaction — the rewritten
	// snapshot and the emptied logs are consistent by construction, and
	// there is nothing left to walk.
	ok, err := s.snapshotIntactLocked()
	if err != nil {
		s.mu.Unlock()
		return rep, err
	}
	if !ok {
		rep.SnapshotOK = false
		telemetry.StoreScrubCorrupt.Inc()
		if err := s.snapshotLocked(); err != nil {
			s.mu.Unlock()
			return rep, fmt.Errorf("store: scrub: rewrite corrupt snapshot: %w", err)
		}
		rep.SnapshotRepaired = true
		s.mu.Unlock()
		s.logger.Warn("store: scrub rewrote corrupt snapshot", "dir", s.opts.Dir)
		return rep, nil
	}

	logPlan, err := s.detectLogCorruptionLocked(&rep)
	if err != nil {
		s.mu.Unlock()
		return rep, err
	}
	verdictsCorrupt, err := s.detectVerdictCorruptionLocked(&rep)
	if err != nil {
		s.mu.Unlock()
		return rep, err
	}
	// Evidence the peer's verdict map is needed: a corrupt sidecar to
	// merge before rewriting, a recovery-truncated sidecar to reconcile,
	// or a log repair this pass (the replica still remembers what a
	// truncation silently dropped). Unconditional reconciling would put
	// a network pull on every scrub tick of every healthy node.
	needPeerVerdicts := verdictsCorrupt || s.verdictsTruncated || logPlan != nil
	if src == nil || (logPlan == nil && !needPeerVerdicts) {
		defer s.mu.Unlock()
		if verdictsCorrupt {
			if err := s.rewriteVerdictsLocked(&rep, nil); err != nil {
				return rep, err
			}
		}
		s.finishScrubLocked(&rep)
		return rep, nil
	}
	s.mu.Unlock()

	// Phase 2 (unlocked): pull repair state from the peer. The store
	// keeps serving while these round-trips are in flight.
	var frames []Frame
	if logPlan != nil {
		frames, err = pullRange(src, logPlan.lastGood, logPlan.upTo, s.opts.MaxRecordBytes)
		if err != nil {
			return rep, fmt.Errorf("store: scrub: pull repair frames after %d: %w", logPlan.lastGood, err)
		}
	}
	var peer map[uint64]bool
	if needPeerVerdicts {
		peer, err = src.Verdicts()
		if err != nil {
			return rep, fmt.Errorf("store: scrub: pull repair verdicts: %w", err)
		}
	}

	// Phase 3 (locked): splice the pulled frames — but only if the log
	// is still exactly as the walk left it. An append or compaction that
	// landed mid-pull makes the plan stale; splicing against it would
	// drop the new frames, so the pass bails and the next one retries.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return rep, ErrClosed
	}
	if logPlan != nil {
		switch {
		case s.logSize != logPlan.logSize || s.version != logPlan.upTo:
			s.logger.Warn("store: scrub: log changed during repair pull; retrying next pass",
				"dir", s.opts.Dir, "walked-bytes", logPlan.logSize, "log-bytes", s.logSize)
		case !framesCover(frames, s.seqsAboveLocked(logPlan.lastGood)):
			// The source could not supply the whole quarantined range (its
			// log trails ours, or compaction moved past lastGood). Splicing
			// the partial pull would truncate acknowledged frames off the
			// disk image and leave the on-disk log ending before the
			// in-memory state — a restart from that image would silently
			// lose the missing tail. Leave the quarantined bytes in place
			// for the next pass; memory keeps serving the full state.
			s.logger.Error("store: scrub: repair source lacks quarantined frames; tail at risk until a peer can supply them",
				"dir", s.opts.Dir, "pulled", len(frames),
				"needed", len(s.seqsAboveLocked(logPlan.lastGood)),
				"from", rep.QuarantinedFrom, "to", rep.QuarantinedTo)
		default:
			if err := s.spliceTailLocked(logPlan.offset, frames); err != nil {
				return rep, err
			}
			rep.RepairedFrames = len(frames)
			rep.Repaired = true
			telemetry.StoreScrubRepaired.Add(float64(len(frames)))
			s.logger.Info("store: scrub repaired log from replica",
				"dir", s.opts.Dir, "frames", len(frames),
				"from", rep.QuarantinedFrom, "to", rep.QuarantinedTo)
		}
	}
	if verdictsCorrupt {
		if err := s.rewriteVerdictsLocked(&rep, peer); err != nil {
			return rep, err
		}
	} else if peer != nil && (s.verdictsTruncated || rep.Repaired) {
		if err := s.reconcileVerdictsLocked(&rep, peer); err != nil {
			return rep, err
		}
	}
	s.finishScrubLocked(&rep)
	return rep, nil
}

// framesCover reports whether the pulled frames carry exactly the
// sequence numbers a full repair needs (pullRange already verified
// CRCs and strict ascent, so an element-wise compare suffices).
func framesCover(frames []Frame, want []uint64) bool {
	if len(frames) != len(want) {
		return false
	}
	for i, fr := range frames {
		if fr.Seq != want[i] {
			return false
		}
	}
	return true
}

// finishScrubLocked publishes the pass's frame count and clears poison
// if the walk proved the on-disk state clean. Caller holds s.mu.
func (s *Store) finishScrubLocked(rep *ScrubReport) {
	telemetry.StoreScrubFrames.Add(float64(rep.FramesChecked + rep.VerdictFrames))
	if s.poisoned == nil || (rep.CorruptFrames != 0 && !rep.Repaired) || rep.VerdictCorrupt {
		return
	}
	// The walk re-verified every byte up to the logical end, and the
	// poisoning already chopped the torn tail beyond it. But a re-read
	// goes through the page cache and proves nothing about durability:
	// after a failed fsync the kernel may have dropped dirty pages whose
	// writes reported success. So clearing also requires a fresh
	// successful fsync over the verified bytes — if the disk still
	// refuses to sync, the poison stays and reopen is the way out.
	// Residual caveat: kernels that clear the error state on the first
	// failed fsync can let a later fsync succeed without the dropped
	// pages ever reaching disk; only a replica-assisted repair
	// (rep.Repaired) rewrites the bytes themselves.
	if !s.opts.NoSync {
		if s.logF != nil {
			if err := s.logF.Sync(); err != nil {
				s.logger.Warn("store: scrub: log still failing fsync; poison kept", "err", err)
				return
			}
		}
		if s.verdictF != nil {
			if err := s.verdictF.Sync(); err != nil {
				s.logger.Warn("store: scrub: verdict log still failing fsync; poison kept", "err", err)
				return
			}
		}
	}
	s.poisoned = nil
	rep.PoisonCleared = true
	s.logger.Info("store: scrub cleared poisoned state", "dir", s.opts.Dir)
}

// snapshotIntactLocked re-reads and decodes the snapshot file (absent =
// intact). I/O errors other than not-exist propagate; decode or
// consistency failures report corrupt. Caller holds s.mu.
func (s *Store) snapshotIntactLocked() (bool, error) {
	f, err := s.fs.OpenFile(filepath.Join(s.opts.Dir, snapshotName), os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return true, nil
		}
		return false, fmt.Errorf("store: scrub: open snapshot: %w", err)
	}
	defer f.Close()
	snap, err := decodeSnapshot(f)
	if err != nil {
		return false, nil
	}
	if uint64(len(snap.Tasks)) > snap.Version {
		return false, nil
	}
	if snap.Seqs != nil && len(snap.Seqs) != len(snap.Tasks) {
		return false, nil
	}
	return true, nil
}

// logRepairPlan captures what a detection walk found while the lock
// was held, so the repair pull can happen without it.
type logRepairPlan struct {
	offset   int64  // byte offset of the first corrupt frame
	lastGood uint64 // last sequence number proven intact
	upTo     uint64 // log version at detection time
	logSize  int64  // log size at detection time (staleness check)
}

// detectLogCorruptionLocked CRC-walks the task log. A nil plan means
// every frame is intact; otherwise the returned plan bounds the
// quarantined range a later splice repairs. The repair itself — chop
// the quarantined bytes, re-pull the exact frames from the peer — uses
// verbatim log bytes, the same ones replication ships, so the repaired
// log is byte-identical to one that never rotted. The walk cannot
// resync past a corrupt length prefix, so everything after the first
// bad frame is suspect even if later frames happen to be intact;
// repair re-pulls the whole range verbatim, which restores those too.
// Caller holds s.mu.
func (s *Store) detectLogCorruptionLocked(rep *ScrubReport) (*logRepairPlan, error) {
	if _, err := s.logF.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: scrub: rewind log: %w", err)
	}
	// Restore the append position no matter how the walk ends.
	defer func() { s.logF.Seek(s.logSize, io.SeekStart) }()

	offset := int64(0) // end of the last intact frame
	lastGood := s.snapVersion
	sawFrame := false
	reader := io.LimitReader(s.logF, s.logSize)
	for offset < s.logSize {
		rec, n, err := readRecord(reader, s.opts.MaxRecordBytes)
		if err != nil {
			break // corrupt or torn at offset
		}
		offset += n
		if rec.Seq > lastGood || !sawFrame {
			lastGood = rec.Seq
		}
		sawFrame = true
		rep.FramesChecked++
	}
	if offset >= s.logSize {
		return nil, nil // every frame intact
	}

	// Quarantine (lastGood, version].
	quarantined := len(s.seqsAboveLocked(lastGood))
	if quarantined == 0 {
		quarantined = 1 // trailing garbage past the last real frame
	}
	rep.CorruptFrames = quarantined
	rep.QuarantinedFrom = lastGood + 1
	rep.QuarantinedTo = s.version
	telemetry.StoreScrubCorrupt.Add(float64(quarantined))
	s.logger.Warn("store: scrub found corrupt log range",
		"dir", s.opts.Dir, "from", rep.QuarantinedFrom, "to", rep.QuarantinedTo,
		"intact-bytes", offset, "log-bytes", s.logSize)
	return &logRepairPlan{
		offset:   offset,
		lastGood: lastGood,
		upTo:     s.version,
		logSize:  s.logSize,
	}, nil
}

// seqsAboveLocked returns the in-memory sequence numbers above after.
// Caller holds s.mu.
func (s *Store) seqsAboveLocked(after uint64) []uint64 {
	i := sort.Search(len(s.seqs), func(i int) bool { return s.seqs[i] > after })
	return s.seqs[i:]
}

// pullRange pulls verbatim frames in (after, upTo] from src, verifying
// each one: CRC-valid, the label matching the payload, strictly
// ascending. Frames beyond upTo are not taken — repair restores state,
// it does not advance it. The pull stops early (without error) if the
// source has nothing above the cursor; the caller treats the shortfall
// as an incomplete pull and skips the splice.
func pullRange(src RepairSource, after, upTo uint64, maxRecordBytes int64) ([]Frame, error) {
	var out []Frame
	cursor := after
	for cursor < upTo {
		frames, _, err := src.FramesSince(cursor, 0)
		if err != nil {
			return nil, err
		}
		progressed := false
		for _, fr := range frames {
			if fr.Seq > upTo {
				return out, nil
			}
			rec, n, err := readRecord(bytes.NewReader(fr.Bytes), maxRecordBytes)
			if err != nil {
				return nil, fmt.Errorf("repair frame %d: %w", fr.Seq, err)
			}
			if rec.Seq != fr.Seq {
				return nil, fmt.Errorf("repair frame labeled %d carries seq %d", fr.Seq, rec.Seq)
			}
			if n != int64(len(fr.Bytes)) {
				return nil, fmt.Errorf("repair frame %d has trailing bytes", fr.Seq)
			}
			if fr.Seq <= cursor {
				return nil, fmt.Errorf("repair frames not ascending at seq %d", fr.Seq)
			}
			out = append(out, fr)
			cursor = fr.Seq
			progressed = true
		}
		if !progressed {
			return out, nil // the source's log ends here
		}
	}
	return out, nil
}

// spliceTailLocked truncates the log at offset and appends the repaired
// frames durably, updating the logical size and frame cache. The
// in-memory state is untouched — memory was never corrupted; only the
// disk image is being brought back in line with it. Caller holds s.mu.
func (s *Store) spliceTailLocked(offset int64, frames []Frame) error {
	if err := s.logF.Truncate(offset); err != nil {
		return fmt.Errorf("store: scrub: truncate quarantined tail: %w", err)
	}
	if _, err := s.logF.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("store: scrub: seek repair point: %w", err)
	}
	s.logSize = offset
	var raw []byte
	for _, fr := range frames {
		raw = append(raw, fr.Bytes...)
	}
	if len(raw) > 0 {
		if _, err := s.logF.Write(raw); err != nil {
			return fmt.Errorf("store: scrub: write repair frames: %w", err)
		}
	}
	if err := s.logF.Sync(); err != nil {
		return fmt.Errorf("store: scrub: sync repaired log: %w", err)
	}
	s.logSize += int64(len(raw))
	for _, fr := range frames {
		s.cacheFrameLocked(fr.Seq, fr.Bytes)
	}
	return nil
}

// detectVerdictCorruptionLocked CRC-walks the sidecar and reports
// whether it holds corrupt bytes. Caller holds s.mu.
func (s *Store) detectVerdictCorruptionLocked(rep *ScrubReport) (bool, error) {
	if s.verdictF == nil {
		return false, nil
	}
	if _, err := s.verdictF.Seek(0, io.SeekStart); err != nil {
		return false, fmt.Errorf("store: scrub: rewind verdict log: %w", err)
	}
	defer func() { s.verdictF.Seek(s.verdictSize, io.SeekStart) }()
	offset := int64(0)
	reader := io.LimitReader(s.verdictF, s.verdictSize)
	for offset < s.verdictSize {
		var rec verdictRecord
		n, err := readPayload(reader, s.opts.MaxRecordBytes, &rec)
		if err != nil {
			break
		}
		offset += n
		rep.VerdictFrames++
	}
	if offset >= s.verdictSize {
		return false, nil
	}
	rep.VerdictCorrupt = true
	telemetry.StoreScrubCorrupt.Inc()
	return true, nil
}

// rewriteVerdictsLocked heals a corrupt sidecar by merging the peer's
// verdict map over memory (the leader is authoritative for replicated
// verdicts; nil = local-only rewrite) and rewriting the file from the
// merged state — quarantine verdicts are re-derived, never silently
// dropped. No staleness check is needed even though the peer map was
// pulled unlocked: the in-memory map is authoritative and current, so
// rewriting from it is correct under any interleaving. Caller holds
// s.mu.
func (s *Store) rewriteVerdictsLocked(rep *ScrubReport, peer map[uint64]bool) error {
	if s.verdictF == nil {
		return nil
	}
	for seq, q := range peer {
		if seq != 0 && seq <= s.version {
			s.verdicts[seq] = q
		}
	}
	// Rewrite the whole sidecar from the merged map, ordered by sequence
	// number so the result is deterministic for a given verdict set.
	seqs := make([]uint64, 0, len(s.verdicts))
	for seq := range s.verdicts {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var raw []byte
	for _, seq := range seqs {
		frame, err := encodePayload(verdictRecord{Seq: seq, Quarantined: s.verdicts[seq]})
		if err != nil {
			return err
		}
		raw = append(raw, frame...)
	}
	if err := s.verdictF.Truncate(0); err != nil {
		return fmt.Errorf("store: scrub: truncate verdict log: %w", err)
	}
	if _, err := s.verdictF.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: scrub: rewind verdict log: %w", err)
	}
	s.verdictSize = 0
	if len(raw) > 0 {
		if _, err := s.verdictF.Write(raw); err != nil {
			return fmt.Errorf("store: scrub: rewrite verdict log: %w", err)
		}
	}
	if err := s.verdictF.Sync(); err != nil {
		return fmt.Errorf("store: scrub: sync verdict log: %w", err)
	}
	s.verdictSize = int64(len(raw))
	rep.VerdictsRewritten = len(seqs)
	telemetry.StoreScrubRepaired.Add(float64(len(seqs)))
	if peer != nil {
		s.verdictsTruncated = false // the peer's set is folded in; nothing left to re-derive
	}
	s.logger.Warn("store: scrub rewrote corrupt verdict sidecar",
		"dir", s.opts.Dir, "verdicts", len(seqs))
	return nil
}

// reconcileVerdictsLocked appends verdicts the peer knows and the
// local store lost (a recovery truncated them with the corrupt tail) or
// disagrees on. The sidecar bytes are intact, so this is a plain
// durable append, not a rewrite. Caller holds s.mu; the file position
// is at the logical end.
func (s *Store) reconcileVerdictsLocked(rep *ScrubReport, peer map[uint64]bool) error {
	if s.verdictF == nil {
		return nil
	}
	var seqs []uint64
	for seq, q := range peer {
		if seq == 0 || seq > s.version {
			continue
		}
		if cur, ok := s.verdicts[seq]; !ok || cur != q {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		s.verdictsTruncated = false // the peer agrees; nothing was lost
		return nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var raw []byte
	for _, seq := range seqs {
		frame, err := encodePayload(verdictRecord{Seq: seq, Quarantined: peer[seq]})
		if err != nil {
			return err
		}
		raw = append(raw, frame...)
	}
	if _, err := s.verdictF.Write(raw); err != nil {
		return fmt.Errorf("store: scrub: append reconciled verdicts: %w", err)
	}
	if err := s.verdictF.Sync(); err != nil {
		return fmt.Errorf("store: scrub: sync reconciled verdicts: %w", err)
	}
	s.verdictSize += int64(len(raw))
	for _, seq := range seqs {
		s.verdicts[seq] = peer[seq]
	}
	rep.VerdictsMerged = len(seqs)
	telemetry.StoreScrubRepaired.Add(float64(len(seqs)))
	s.verdictsTruncated = false
	s.logger.Warn("store: scrub re-derived lost verdicts from replica",
		"dir", s.opts.Dir, "verdicts", len(seqs))
	return nil
}

// Scrubber is a background scrub loop; Close stops it.
type Scrubber struct {
	stop chan struct{}
	done chan struct{}
}

// StartScrubber launches a background scrub loop over s. src is
// resolved each pass (nil func or nil result = detect-only), so a
// cluster node can hand in "whoever leads my shard right now". onReport
// observes every pass (nil = log-only).
func (s *Store) StartScrubber(every time.Duration, src func() RepairSource, onReport func(ScrubReport, error)) *Scrubber {
	if every <= 0 {
		every = time.Minute
	}
	sc := &Scrubber{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(sc.done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-sc.stop:
				return
			case <-ticker.C:
			}
			var source RepairSource
			if src != nil {
				source = src()
			}
			rep, err := s.Scrub(source)
			if c, ok := source.(io.Closer); ok {
				// Per-pass sources (a dialed connection to whoever leads the
				// shard right now) are released between passes.
				c.Close()
			}
			if errors.Is(err, ErrClosed) {
				return
			}
			if err != nil {
				s.logger.Error("store: scrub pass failed", "err", err)
			}
			if onReport != nil {
				onReport(rep, err)
			}
		}
	}()
	return sc
}

// Close stops the scrub loop and waits out an in-flight pass.
func (sc *Scrubber) Close() {
	select {
	case <-sc.stop:
	default:
		close(sc.stop)
	}
	<-sc.done
}
