// Package store is the cloud's durable task-posterior store: an
// append-only log of reported tasks plus periodic snapshot compaction,
// built so a cloud restart recovers the exact task set (and therefore,
// with a seeded builder, the byte-identical prior) it was serving.
//
// # On-disk layout
//
// A store directory holds at most two files:
//
//	snapshot.gob   gob({Version, Tasks, Seqs, Verdicts}) — the compacted prefix
//	tasks.log      framed records appended since the snapshot
//	verdicts.log   framed admission verdicts appended since the snapshot
//
// Each log record is framed as
//
//	[4-byte big-endian payload length][4-byte IEEE CRC32 of payload][payload]
//
// where the payload is an independently gob-encoded {Seq, Task} pair.
// Records are self-delimiting and self-checking, so recovery can replay
// the log from the start and stop at the first torn or corrupt record:
// a crash mid-append loses at most the record being written, never the
// tail behind it. The truncated bytes are chopped off so the next append
// lands on a clean boundary.
//
// Sequence numbers make compaction crash-safe in either order: a record
// whose Seq is already covered by the snapshot is skipped on replay, so
// a crash between "snapshot written" and "log truncated" merely replays
// no-ops.
//
// # Concurrency and versioning
//
// The store is safe for concurrent use. Version() is the total number of
// tasks ever appended — the same monotonic counter the edge protocol
// uses as the prior version. View() returns an immutable prefix snapshot
// of the task slice (appends never mutate published entries), which is
// what lets the cloud's rebuild worker read the task set without
// blocking appenders.
//
// # Admission integrity
//
// With Options.Validate set, recovery re-validates every task it reads:
// a CRC-valid record that fails semantic validation (a poisoned posterior
// written before validation existed, or bit rot that survived the
// checksum) is dropped — its sequence number still advances the version,
// preserving the S17 invariant — and counted in RecoveryInfo. Quarantine
// verdicts from the cloud's admission judge persist in a sidecar log
// (SetVerdicts/Verdicts) with the same framing, so a restart keeps
// every past verdict.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
)

const (
	snapshotName = "snapshot.gob"
	logName      = "tasks.log"

	// DefaultSnapshotEvery is how many appended records accumulate in the
	// log before it is compacted into the snapshot.
	DefaultSnapshotEvery = 64

	// DefaultMaxRecordBytes bounds one log record on the read path; a
	// corrupt length prefix cannot make recovery allocate unbounded
	// memory.
	DefaultMaxRecordBytes = 64 << 20
)

// Options configures a Store.
type Options struct {
	// Dir is the store directory, created if missing. Empty means
	// memory-only: no persistence, but the same API and versioning.
	Dir string
	// SnapshotEvery compacts the log into the snapshot after this many
	// appended records (0 = DefaultSnapshotEvery; negative = never).
	SnapshotEvery int
	// NoSync skips fsync after appends and snapshots. Cuts append latency
	// for tests and benchmarks at the cost of durability on power loss.
	NoSync bool
	// MaxRecordBytes bounds one record during recovery
	// (0 = DefaultMaxRecordBytes).
	MaxRecordBytes int64
	// Logger receives recovery notices; nil picks the default handler.
	Logger *slog.Logger
	// Validate, when non-nil, re-checks every task read during recovery;
	// a task it rejects is dropped (the sequence number still advances
	// the version) and counted in RecoveryInfo.InvalidRecords. Appends
	// are not gated here — the cloud validates before appending.
	Validate func(dpprior.TaskPosterior) error
	// FrameCacheSize bounds the encoded-frame cache serving FramesSince
	// (0 = DefaultFrameCacheSize; negative = disabled). The cache lets a
	// leader ship its recent log to followers without re-encoding each
	// record per pull.
	FrameCacheSize int
	// FS overrides the filesystem the store uses (nil = the real one).
	// Tests slide a FaultFS here to run the store under disk chaos.
	FS FS
}

// RecoveryInfo reports what Open found on disk.
type RecoveryInfo struct {
	SnapshotTasks  int   // tasks loaded from the snapshot
	LogRecords     int   // records replayed from the log
	SkippedRecords int   // log records already covered by the snapshot
	TruncatedBytes int64 // torn/corrupt tail bytes chopped off the log
	Truncated      bool  // recovery found and removed a bad tail
	InvalidRecords int   // CRC-valid tasks dropped by Options.Validate
}

// Store is a crash-safe, append-only task-posterior store.
type Store struct {
	opts   Options
	logger *slog.Logger
	fs     FS

	mu        sync.Mutex
	tasks     []dpprior.TaskPosterior
	seqs      []uint64 // seqs[i] is the store version that appended tasks[i]
	verdicts  map[uint64]bool
	version   uint64 // == total tasks appended, ever
	sinceSnap int    // records in the log since the last snapshot
	// snapVersion is the version the on-disk snapshot covers (0 = no
	// snapshot): the floor below which the log owes no frames. The
	// scrubber pulls repairs from here when the log's very first frame
	// is the corrupt one.
	snapVersion uint64
	logF        File
	verdictF    File
	closed      bool
	recovery    RecoveryInfo

	// logSize / verdictSize are the logical end offsets of the two logs:
	// the byte after the last fully acknowledged frame. A failed append
	// truncates back to them; the scrubber walks exactly [0, size).
	logSize     int64
	verdictSize int64
	// verdictsTruncated remembers that recovery chopped a corrupt tail
	// off the verdict sidecar — evidence verdicts may be lost. The next
	// scrub pass with a repair source reconciles against the replica set
	// and clears it; without the flag a clean-looking (shorter) sidecar
	// would hide the loss, and reconciling every pass would put network
	// pulls on the scrub cadence.
	verdictsTruncated bool

	// poisoned latches the first append-path write/sync failure: once a
	// frame may be torn on disk, every further write fails fast with
	// ErrPoisoned instead of appending after garbage. Reads still serve;
	// reopening the store recovers cleanly (recovery truncates the tear).
	poisoned error
	// compactErr is the last snapshot-compaction failure (nil after a
	// success); surfaced through CompactionError so operators see failed
	// compactions instead of a silently growing log.
	compactErr error

	// frameCache holds recently encoded log frames by sequence number,
	// evicted FIFO by frameSeqs. Entries are immutable once cached (the
	// same bytes the log holds), so FramesSince can hand them out
	// without copying.
	frameCache map[uint64][]byte
	frameSeqs  []uint64
}

// logRecord is one framed log entry. Seq is the store version the
// append produced, letting replay skip records the snapshot already
// covers.
type logRecord struct {
	Seq  uint64
	Task dpprior.TaskPosterior
}

// snapshotFile is the compacted on-disk prefix. Seqs and Verdicts are
// absent from pre-admission snapshots; gob decodes them as nil and
// recovery derives Seqs as the contiguous prefix (which is exactly what
// it was before tasks could be dropped).
type snapshotFile struct {
	Version  uint64
	Tasks    []dpprior.TaskPosterior
	Seqs     []uint64
	Verdicts map[uint64]bool
}

// Open opens (or creates) a store, recovering the task set from the
// snapshot and log. A torn or corrupt log tail is truncated and
// reported via Recovery(); a corrupt snapshot is a hard error (delete
// it to start cold).
func Open(opts Options) (*Store, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	s := &Store{
		opts:     opts,
		logger:   telemetry.OrDefault(opts.Logger),
		fs:       opts.FS,
		verdicts: make(map[uint64]bool),
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := s.fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayLog(); err != nil {
		return nil, err
	}
	if err := s.loadVerdicts(); err != nil {
		return nil, err
	}
	if s.recovery.Truncated {
		telemetry.StoreRecoveries.Inc()
		telemetry.StoreTruncatedBytes.Add(float64(s.recovery.TruncatedBytes))
		s.logger.Warn("store: truncated corrupt log tail",
			"dir", opts.Dir, "bytes", s.recovery.TruncatedBytes,
			"records", s.recovery.LogRecords)
	}
	if s.recovery.InvalidRecords > 0 {
		telemetry.StoreInvalidRecords.Add(float64(s.recovery.InvalidRecords))
		s.logger.Warn("store: dropped invalid tasks during recovery",
			"dir", opts.Dir, "records", s.recovery.InvalidRecords)
	}
	telemetry.StoreTasks.Set(float64(len(s.tasks)))
	return s, nil
}

// snapshotMagic trails a checksummed snapshot file:
// [gob payload][4-byte IEEE CRC32 of payload][magic]. Legacy snapshots
// (no trailer) still load; they just cannot be integrity-checked.
var snapshotMagic = []byte("SCRC")

// decodeSnapshot reads one snapshot file, verifying the CRC trailer
// when present. Any decode or checksum failure reports the file corrupt.
func decodeSnapshot(f File) (snapshotFile, error) {
	var snap snapshotFile
	raw, err := io.ReadAll(f)
	if err != nil {
		return snap, err
	}
	if n := len(raw); n >= 8 && bytes.Equal(raw[n-4:], snapshotMagic) {
		payload := raw[:n-8]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(raw[n-8:n-4]) {
			return snap, errors.New("snapshot checksum mismatch")
		}
		raw = payload
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}

func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.opts.Dir, snapshotName)
	f, err := s.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	snap, err := decodeSnapshot(f)
	if err != nil {
		return fmt.Errorf("store: snapshot %s is corrupt (delete it to start cold): %w", path, err)
	}
	if uint64(len(snap.Tasks)) > snap.Version {
		return fmt.Errorf("store: snapshot %s holds %d tasks above version %d",
			path, len(snap.Tasks), snap.Version)
	}
	if snap.Seqs == nil {
		// Pre-admission snapshot: tasks were the contiguous seq prefix.
		snap.Seqs = make([]uint64, len(snap.Tasks))
		for i := range snap.Seqs {
			snap.Seqs[i] = uint64(i + 1)
		}
	}
	if len(snap.Seqs) != len(snap.Tasks) {
		return fmt.Errorf("store: snapshot %s holds %d tasks but %d seqs",
			path, len(snap.Tasks), len(snap.Seqs))
	}
	for i, t := range snap.Tasks {
		if s.opts.Validate != nil {
			if err := s.opts.Validate(t); err != nil {
				s.recovery.InvalidRecords++
				continue
			}
		}
		s.tasks = append(s.tasks, t)
		s.seqs = append(s.seqs, snap.Seqs[i])
	}
	for seq, q := range snap.Verdicts {
		s.verdicts[seq] = q
	}
	s.version = snap.Version
	s.snapVersion = snap.Version
	s.recovery.SnapshotTasks = len(snap.Tasks)
	return nil
}

// replayLog scans the framed log, appending records beyond the snapshot
// version and truncating the first torn or corrupt tail it hits.
func (s *Store) replayLog() error {
	path := filepath.Join(s.opts.Dir, logName)
	f, err := s.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: open log: %w", err)
	}
	s.logF = f

	offset := int64(0) // end of the last fully valid record
	for {
		rec, n, err := readRecord(f, s.opts.MaxRecordBytes)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// Torn or corrupt tail: everything before offset is intact.
			end, serr := f.Seek(0, io.SeekEnd)
			if serr != nil {
				return fmt.Errorf("store: seek log: %w", serr)
			}
			s.recovery.Truncated = true
			s.recovery.TruncatedBytes = end - offset
			if terr := f.Truncate(offset); terr != nil {
				return fmt.Errorf("store: truncate log tail: %w", terr)
			}
			break
		}
		offset += n
		if rec.Seq <= s.version {
			// Already covered by the snapshot (crash between snapshot
			// write and log truncation).
			s.recovery.SkippedRecords++
			continue
		}
		s.version = rec.Seq
		s.recovery.LogRecords++
		s.sinceSnap++
		if s.opts.Validate != nil {
			if err := s.opts.Validate(rec.Task); err != nil {
				// Drop the task but keep its sequence number: the version
				// is the count of tasks ever appended, valid or not.
				s.recovery.InvalidRecords++
				continue
			}
		}
		s.tasks = append(s.tasks, rec.Task)
		s.seqs = append(s.seqs, rec.Seq)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek log end: %w", err)
	}
	s.logSize = offset
	return nil
}

// Recovery reports what Open found on disk (zero value for a fresh or
// memory-only store).
func (s *Store) Recovery() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Version returns the store version: the total number of tasks ever
// appended. It is the prior version the edge protocol advertises.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Len returns the number of stored tasks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tasks)
}

// View returns the current task set and version. The returned slice is
// an immutable snapshot (append-only storage never mutates published
// entries); callers must not modify it.
func (s *Store) View() ([]dpprior.TaskPosterior, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasks[:len(s.tasks):len(s.tasks)], s.version
}

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrPoisoned reports a write on a store whose log hit an append-path
// write or fsync failure. The store refuses further writes (reads still
// serve from memory) because the log may end in a torn frame; reopening
// the store recovers cleanly — recovery truncates the tear.
var ErrPoisoned = errors.New("store: poisoned by earlier append failure")

// poisonLocked latches the first append-path failure and tries to chop
// the possibly-torn frame back off the log so even a crash before the
// reopen leaves a clean tail. Caller holds s.mu.
func (s *Store) poisonLocked(cause error) {
	if s.poisoned != nil {
		return
	}
	s.poisoned = cause
	telemetry.StorePoisoned.Inc()
	if s.logF != nil {
		if err := s.logF.Truncate(s.logSize); err == nil {
			s.logF.Seek(s.logSize, io.SeekStart)
		}
	}
	if s.verdictF != nil {
		if err := s.verdictF.Truncate(s.verdictSize); err == nil {
			s.verdictF.Seek(s.verdictSize, io.SeekStart)
		}
	}
	s.logger.Error("store: write failure poisoned the store; reopen to recover", "err", cause)
}

// Poisoned returns the failure that poisoned the store (nil = healthy).
func (s *Store) Poisoned() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poisoned
}

// CompactionError returns the most recent snapshot-compaction failure
// (nil after a success). Compaction failures do not fail the append that
// triggered them — the append is already durable — but they must not be
// invisible either.
func (s *Store) CompactionError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactErr
}

// Append durably appends one task and returns the new store version.
// No half-frame is ever acknowledged: a write or fsync failure poisons
// the store (ErrPoisoned on every later write) rather than letting the
// running process append after a torn frame.
func (s *Store) Append(t dpprior.TaskPosterior) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.poisoned != nil {
		return 0, fmt.Errorf("%w: %w", ErrPoisoned, s.poisoned)
	}
	seq := s.version + 1
	if s.logF != nil {
		frame, err := encodeRecord(logRecord{Seq: seq, Task: t})
		if err != nil {
			return 0, err
		}
		if _, err := s.logF.Write(frame); err != nil {
			s.poisonLocked(err)
			return 0, fmt.Errorf("store: append: %w", err)
		}
		if !s.opts.NoSync {
			if err := s.logF.Sync(); err != nil {
				s.poisonLocked(err)
				return 0, fmt.Errorf("store: sync log: %w", err)
			}
		}
		s.logSize += int64(len(frame))
		telemetry.StoreLogBytes.Add(float64(len(frame)))
		// The frame is already encoded; remembering it makes the next
		// replication pull a copy-free cache hit. (Memory-only stores
		// skip this and let FramesSince fill the cache on demand.)
		s.cacheFrameLocked(seq, frame)
	}
	s.tasks = append(s.tasks, t)
	s.seqs = append(s.seqs, seq)
	s.version = seq
	s.sinceSnap++
	telemetry.StoreAppends.Inc()
	telemetry.StoreTasks.Set(float64(len(s.tasks)))
	if s.logF != nil && s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			// The append itself is durable; compaction just didn't happen.
			// The old snapshot stays authoritative. Latch the error (it is
			// CompactionError until a compaction succeeds), count it, and
			// retry on the next append.
			s.compactErr = err
			telemetry.StoreSnapshotFailures.Inc()
			s.logger.Warn("store: snapshot compaction failed", "err", err)
		}
	}
	return seq, nil
}

// Snapshot forces compaction: the full task set is written as a new
// snapshot and the log is truncated. No-op for memory-only stores.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.poisoned != nil {
		return fmt.Errorf("%w: %w", ErrPoisoned, s.poisoned)
	}
	if s.logF == nil {
		return nil
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	// Write the snapshot beside its target and rename over it, so a crash
	// mid-write never tears the previous snapshot — and so ANY failure on
	// the temp-file path (encode, fsync, close, rename) leaves the old
	// snapshot authoritative: the error propagates, the temp file is
	// removed, nothing on disk changed. The log is truncated only after
	// the new snapshot is durable; a crash in between is handled by
	// sequence-number skipping on replay.
	tmp, err := s.fs.CreateTemp(s.opts.Dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	defer s.fs.Remove(tmp.Name())
	snap := snapshotFile{Version: s.version, Tasks: s.tasks, Seqs: s.seqs}
	if len(s.verdicts) > 0 {
		snap.Verdicts = s.verdicts
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		tmp.Close()
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	// Trailer: CRC over the payload, then the magic. The scrubber (and
	// every future load) can prove the snapshot intact instead of hoping
	// gob notices.
	var trailer [8]byte
	binary.BigEndian.PutUint32(trailer[:4], crc32.ChecksumIEEE(payload.Bytes()))
	copy(trailer[4:], snapshotMagic)
	payload.Write(trailer[:])
	if _, err := tmp.Write(payload.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: sync snapshot: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := s.fs.Rename(tmp.Name(), filepath.Join(s.opts.Dir, snapshotName)); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	if err := s.logF.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate log: %w", err)
	}
	if _, err := s.logF.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewind log: %w", err)
	}
	s.logSize = 0
	if s.verdictF != nil {
		// Verdicts are folded into the snapshot; the sidecar restarts empty.
		if err := s.verdictF.Truncate(0); err != nil {
			return fmt.Errorf("store: truncate verdict log: %w", err)
		}
		if _, err := s.verdictF.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("store: rewind verdict log: %w", err)
		}
		s.verdictSize = 0
	}
	s.sinceSnap = 0
	s.snapVersion = s.version
	s.compactErr = nil
	telemetry.StoreSnapshots.Inc()
	return nil
}

// Sync flushes the log to stable storage (useful with NoSync stores
// before an orderly shutdown).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.logF == nil {
		return nil
	}
	return s.logF.Sync()
}

// Close syncs and closes the store. Further appends fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.verdictF != nil {
		if err := s.verdictF.Sync(); err != nil {
			s.verdictF.Close()
			s.logF.Close()
			return fmt.Errorf("store: sync verdicts on close: %w", err)
		}
		if err := s.verdictF.Close(); err != nil {
			s.logF.Close()
			return fmt.Errorf("store: close verdicts: %w", err)
		}
	}
	if s.logF == nil {
		return nil
	}
	if err := s.logF.Sync(); err != nil {
		s.logF.Close()
		return fmt.Errorf("store: sync on close: %w", err)
	}
	return s.logF.Close()
}
