package store

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"syscall"

	"github.com/drdp/drdp/internal/telemetry"
)

// Disk-fault injection. FaultFS wraps another FS and injects the
// failure modes real disks exhibit — failed and short writes, fsync
// errors, rename errors on snapshot install, ENOSPC after a byte
// budget, and post-write bit flips (bit rot that lands after the write
// syscall succeeded) — from a seeded RNG, so a failing chaos run
// replays exactly under the same seed.

// Injected fault errors. ErrInjectedNoSpc wraps the os-level sentinel
// (syscall.ENOSPC) so production error handling keyed on
// errors.Is(err, syscall.ENOSPC) treats the injected fault like the
// real thing; the others have no single canonical errno and stay
// package-local sentinels.
var (
	ErrInjectedWrite  = errors.New("faultfs: injected write error")
	ErrInjectedShort  = errors.New("faultfs: injected short write")
	ErrInjectedSync   = errors.New("faultfs: injected fsync error")
	ErrInjectedRename = errors.New("faultfs: injected rename error")
	ErrInjectedNoSpc  = fmt.Errorf("faultfs: injected: %w", syscall.ENOSPC)
)

// FaultPlan configures a FaultFS. Rates are per-operation probabilities
// in [0,1], drawn from the seeded RNG in call order — deterministic for
// a single-goroutine caller, and reproducibly pseudo-random under
// concurrency (the draw sequence is serialized by a mutex).
type FaultPlan struct {
	Seed int64
	// WriteErrorRate fails a Write before any byte reaches the file.
	WriteErrorRate float64
	// ShortWriteRate persists a strict prefix of the buffer, then fails —
	// the torn-write case recovery must truncate.
	ShortWriteRate float64
	// SyncErrorRate fails a Sync after the kernel may or may not have
	// flushed (the caller cannot tell — exactly like a real fsync lie).
	SyncErrorRate float64
	// RenameErrorRate fails a Rename, leaving the old target in place.
	RenameErrorRate float64
	// BitFlipRate corrupts one already-written byte of a successful
	// Write: the syscall reported success, the medium rotted the data.
	BitFlipRate float64
	// ENOSPCAfter fails every write once this many bytes (across the
	// whole FS) have been written. <= 0 means no budget.
	ENOSPCAfter int64
}

// FaultFS is a deterministic, seedable fault-injecting FS.
type FaultFS struct {
	base FS

	mu       sync.Mutex
	rng      *rand.Rand
	plan     FaultPlan
	written  int64
	disarmed bool
	counts   map[string]int
}

// NewFaultFS wraps base (nil = the real filesystem) with the plan's
// fault injection.
func NewFaultFS(base FS, plan FaultPlan) *FaultFS {
	if base == nil {
		base = OSFS()
	}
	return &FaultFS{
		base:   base,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		plan:   plan,
		counts: make(map[string]int),
	}
}

// Disarm suspends fault injection (setup and verification phases of a
// test run clean); Arm re-enables it.
func (f *FaultFS) Disarm() { f.mu.Lock(); f.disarmed = true; f.mu.Unlock() }

// Arm (re-)enables fault injection.
func (f *FaultFS) Arm() { f.mu.Lock(); f.disarmed = false; f.mu.Unlock() }

// Injected reports how many faults of one kind ("write", "short-write",
// "sync", "rename", "enospc", "bit-flip") were injected so far.
func (f *FaultFS) Injected(kind string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[kind]
}

// InjectedTotal reports the total number of injected faults.
func (f *FaultFS) InjectedTotal() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.counts {
		n += c
	}
	return n
}

// hit draws one fault decision; kind is counted when it fires.
func (f *FaultFS) hit(rate float64, kind string) bool {
	if rate <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.disarmed {
		return false
	}
	if f.rng.Float64() >= rate {
		return false
	}
	f.injectLocked(kind)
	return true
}

func (f *FaultFS) injectLocked(kind string) {
	f.counts[kind]++
	telemetry.StoreFaultInjected(kind).Inc()
}

// charge accounts n written bytes against the ENOSPC budget, returning
// false once the budget is exhausted (the write must fail).
func (f *FaultFS) charge(n int) bool {
	if f.plan.ENOSPCAfter <= 0 {
		return true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.disarmed {
		return true
	}
	if f.written >= f.plan.ENOSPCAfter {
		f.injectLocked("enospc")
		return false
	}
	f.written += int64(n)
	return true
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.base.MkdirAll(path, perm) }

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.hit(f.plan.RenameErrorRate, "rename") {
		return fmt.Errorf("faultfs: rename %s: %w", oldpath, ErrInjectedRename)
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.base.Remove(name) }

// faultFile wraps one open file with the plan's write/sync faults.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Name() string               { return ff.f.Name() }
func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }
func (ff *faultFile) Close() error               { return ff.f.Close() }
func (ff *faultFile) Truncate(size int64) error  { return ff.f.Truncate(size) }

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if !ff.fs.charge(len(p)) {
		return 0, fmt.Errorf("faultfs: write %s: %w", ff.f.Name(), ErrInjectedNoSpc)
	}
	if ff.fs.hit(ff.fs.plan.WriteErrorRate, "write") {
		return 0, fmt.Errorf("faultfs: write %s: %w", ff.f.Name(), ErrInjectedWrite)
	}
	if len(p) > 1 && ff.fs.hit(ff.fs.plan.ShortWriteRate, "short-write") {
		// Persist a strict prefix, then fail: the torn frame lands on disk.
		ff.fs.mu.Lock()
		n := 1 + ff.fs.rng.Intn(len(p)-1)
		ff.fs.mu.Unlock()
		if wn, err := ff.f.Write(p[:n]); err != nil {
			return wn, err
		}
		return n, fmt.Errorf("faultfs: write %s: %w", ff.f.Name(), ErrInjectedShort)
	}
	n, err := ff.f.Write(p)
	if err != nil || n != len(p) {
		return n, err
	}
	if ff.fs.hit(ff.fs.plan.BitFlipRate, "bit-flip") {
		ff.rot(p)
	}
	return n, nil
}

// rot flips one bit inside the just-written region. The write call has
// already returned success by the time the caller sees it — this is the
// silent-corruption case only a CRC walk (the scrubber) can catch.
func (ff *faultFile) rot(p []byte) {
	end, err := ff.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return
	}
	ff.fs.mu.Lock()
	off := end - int64(len(p)) + int64(ff.fs.rng.Intn(len(p)))
	bit := byte(1) << ff.fs.rng.Intn(8)
	ff.fs.mu.Unlock()
	if _, err := ff.f.Seek(off, io.SeekStart); err != nil {
		return
	}
	var b [1]byte
	if _, err := ff.f.Read(b[:]); err != nil {
		ff.f.Seek(end, io.SeekStart)
		return
	}
	b[0] ^= bit
	if _, err := ff.f.Seek(off, io.SeekStart); err != nil {
		return
	}
	ff.f.Write(b[:])
	ff.f.Seek(end, io.SeekStart)
}

func (ff *faultFile) Sync() error {
	if ff.fs.hit(ff.fs.plan.SyncErrorRate, "sync") {
		return fmt.Errorf("faultfs: sync %s: %w", ff.f.Name(), ErrInjectedSync)
	}
	return ff.f.Sync()
}
