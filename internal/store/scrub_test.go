package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/telemetry"
)

// openPlain opens a store on the real filesystem with compaction off
// (the whole history stays in the log, which is what the byte-identity
// assertions compare).
func openPlain(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard(), SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// flipByte corrupts one byte of the named file in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestScrubCleanStore: an intact store scrubs clean, checking every
// frame.
func TestScrubCleanStore(t *testing.T) {
	s := openPlain(t, t.TempDir())
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		if _, err := s.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetVerdicts(map[uint64]bool{3: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.FramesChecked != 8 || rep.VerdictFrames != 1 {
		t.Fatalf("clean store scrub: %+v", rep)
	}
	// The walk must not disturb the append position.
	if _, err := s.Append(mkTask(rng, 4)); err != nil {
		t.Fatalf("append after scrub: %v", err)
	}
	if rep, err = s.Scrub(nil); err != nil || rep.FramesChecked != 9 {
		t.Fatalf("scrub after post-scrub append: %+v err %v", rep, err)
	}
}

// TestScrubDetectsAndRepairsBitRot: bit rot in the follower's log is
// quarantined by a detect-only pass and repaired to a byte-identical
// log by a replica-assisted pass.
func TestScrubDetectsAndRepairsBitRot(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, follower := openPlain(t, leaderDir), openPlain(t, followerDir)
	defer leader.Close()
	defer follower.Close()

	rng := rand.New(rand.NewSource(2))
	var ends []int64
	for i := 0; i < 10; i++ {
		if _, err := leader.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	replicate(t, leader, follower, 0)
	if follower.Version() != 10 {
		t.Fatalf("follower at version %d after replication", follower.Version())
	}

	// Record frame boundaries on the follower to land the flip inside
	// frame 4's payload.
	logPath := filepath.Join(followerDir, logName)
	raw := readFile(t, logPath)
	off := int64(0)
	for off < int64(len(raw)) {
		_, n, err := readRecord(bytes.NewReader(raw[off:]), DefaultMaxRecordBytes)
		if err != nil {
			t.Fatal(err)
		}
		off += n
		ends = append(ends, off)
	}
	flipByte(t, logPath, ends[3]+headerBytes+2)

	// Detect-only pass: quarantines frames 5..10, leaves bytes alone,
	// keeps serving from memory.
	rep, err := follower.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptFrames != 6 || rep.QuarantinedFrom != 5 || rep.QuarantinedTo != 10 {
		t.Fatalf("detect-only scrub: %+v", rep)
	}
	if rep.Repaired || rep.RepairedFrames != 0 {
		t.Fatalf("detect-only scrub repaired: %+v", rep)
	}
	if follower.Len() != 10 {
		t.Fatalf("scrub disturbed in-memory state: len %d", follower.Len())
	}

	// Replica-assisted pass: the log ends byte-identical to the leader's.
	rep, err = follower.Scrub(PeerSource(leader))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired || rep.RepairedFrames != 6 {
		t.Fatalf("repair scrub: %+v", rep)
	}
	if !bytes.Equal(readFile(t, logPath), readFile(t, filepath.Join(leaderDir, logName))) {
		t.Fatal("repaired follower log is not byte-identical to the leader's")
	}
	// And the repaired log is a valid recovery image.
	follower.Close()
	re := reopenClean(t, followerDir)
	if re.Version() != 10 || re.Len() != 10 || re.Recovery().Truncated {
		t.Fatalf("reopen after repair: version %d len %d recovery %+v",
			re.Version(), re.Len(), re.Recovery())
	}
}

// TestScrubRepairsFaultFSBitRot: rot injected by the FaultFS during
// replication is healed back to the leader's exact bytes.
func TestScrubRepairsFaultFSBitRot(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader := openPlain(t, leaderDir)
	defer leader.Close()
	ffs := NewFaultFS(nil, FaultPlan{Seed: 42, BitFlipRate: 0.3})
	follower, err := Open(Options{Dir: followerDir, Logger: telemetry.Discard(), SnapshotEvery: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if _, err := leader.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
		// Frame-by-frame replication so flips land in distinct frames.
		frames, _, err := leader.FramesSince(follower.Version(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := follower.ApplyFrames(frames); err != nil {
			t.Fatal(err)
		}
	}
	if ffs.Injected("bit-flip") == 0 {
		t.Fatal("no bit flips injected; raise the rate or appends")
	}
	ffs.Disarm() // scrub must not be sabotaged by fresh rot
	rep, err := follower.Scrub(PeerSource(leader))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatalf("scrub saw no corruption despite %d injected flips", ffs.Injected("bit-flip"))
	}
	if !rep.Repaired {
		t.Fatalf("scrub did not fully repair: %+v", rep)
	}
	if !bytes.Equal(readFile(t, filepath.Join(followerDir, logName)),
		readFile(t, filepath.Join(leaderDir, logName))) {
		t.Fatal("repaired follower log is not byte-identical to the leader's")
	}
}

// TestScrubVerdictSidecarRepair: corrupt verdict-sidecar bytes survive
// a reopen as a truncated (verdict-dropping) recovery, and the scrub
// re-derives the dropped verdicts from the replica instead of losing
// them.
func TestScrubVerdictSidecarRepair(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, follower := openPlain(t, leaderDir), openPlain(t, followerDir)
	defer leader.Close()

	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		if _, err := leader.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	want := map[uint64]bool{2: true, 4: false, 5: true}
	if err := leader.SetVerdicts(want); err != nil {
		t.Fatal(err)
	}
	replicate(t, leader, follower, 0)
	if err := follower.ApplyVerdicts(leader.Verdicts()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(follower.Verdicts(), want) {
		t.Fatalf("follower verdicts %v before corruption", follower.Verdicts())
	}
	follower.Close()

	// Flip a byte in the first sidecar record: recovery truncates from
	// there, dropping every verdict on the floor.
	flipByte(t, filepath.Join(followerDir, verdictLogName), headerBytes+1)
	follower = openPlain(t, followerDir)
	defer follower.Close()
	if !follower.Recovery().Truncated {
		t.Fatal("reopen did not detect the corrupt sidecar")
	}
	if len(follower.Verdicts()) != 0 {
		t.Fatalf("expected reopened store to have lost verdicts, has %v", follower.Verdicts())
	}

	// The scrub restores them from the replica — not silently dropped.
	rep, err := follower.Scrub(PeerSource(leader))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(follower.Verdicts(), want) {
		t.Fatalf("verdicts after scrub = %v, want %v (report %+v)", follower.Verdicts(), want, rep)
	}
	// The rewritten sidecar must also survive the next reopen.
	follower.Close()
	re := reopenClean(t, followerDir)
	if !reflect.DeepEqual(re.Verdicts(), want) {
		t.Fatalf("verdicts after reopen = %v, want %v", re.Verdicts(), want)
	}
}

// TestScrubLiveVerdictCorruption: rot under a running store (no reopen)
// is caught by the CRC walk and healed in place from memory + replica.
func TestScrubLiveVerdictCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openPlain(t, dir)
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4; i++ {
		if _, err := s.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	want := map[uint64]bool{1: true, 3: true}
	if err := s.SetVerdicts(want); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, verdictLogName), headerBytes)
	rep, err := s.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.VerdictCorrupt || rep.VerdictsRewritten != 2 {
		t.Fatalf("live sidecar scrub: %+v", rep)
	}
	s.Close()
	re := reopenClean(t, dir)
	if !reflect.DeepEqual(re.Verdicts(), want) {
		t.Fatalf("verdicts after rewrite+reopen = %v, want %v", re.Verdicts(), want)
	}
}

// TestScrubSnapshotSelfHeal: a corrupt snapshot — a hard error on the
// next restart — is rewritten from memory by the scrub.
func TestScrubSnapshotSelfHeal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Logger: telemetry.Discard(), SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5; i++ {
		if _, err := s.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	flipByte(t, filepath.Join(dir, snapshotName), 10)
	// Sanity: a reopen now would be a hard error.
	if _, err := Open(Options{Dir: dir, Logger: telemetry.Discard()}); err == nil {
		t.Fatal("corrupt snapshot did not fail a cold open")
	}
	rep, err := s.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotOK || !rep.SnapshotRepaired {
		t.Fatalf("snapshot scrub: %+v", rep)
	}
	s.Close()
	re := reopenClean(t, dir)
	if re.Version() != 8 || re.Len() != 8 {
		t.Fatalf("reopen after snapshot heal: version %d len %d, want 8/8", re.Version(), re.Len())
	}
}

// TestScrubClearsPoison: a store poisoned by a transient write failure
// is restored to writable by a scrub pass that re-verifies the log.
func TestScrubClearsPoison(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFault(t, dir, FaultPlan{Seed: 13, WriteErrorRate: 1})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		if _, err := s.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Arm()
	if _, err := s.Append(mkTask(rng, 4)); err == nil {
		t.Fatal("append under write fault succeeded")
	}
	if _, err := s.Append(mkTask(rng, 4)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("store not poisoned: %v", err)
	}
	ffs.Disarm() // the transient fault has passed
	rep, err := s.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PoisonCleared || s.Poisoned() != nil {
		t.Fatalf("scrub did not clear poison: %+v, poisoned=%v", rep, s.Poisoned())
	}
	if v, err := s.Append(mkTask(rng, 4)); err != nil || v != 4 {
		t.Fatalf("append after poison cleared: version %d err %v", v, err)
	}
	s.Close()
	if re := reopenClean(t, dir); re.Version() != 4 || re.Recovery().Truncated {
		t.Fatalf("reopen after cleared poison: version %d recovery %+v", re.Version(), re.Recovery())
	}
}

// TestScrubSkipsPartialRepair: a repair source that cannot supply the
// whole quarantined range must not be spliced in — truncating the
// quarantined tail and appending a partial pull would leave the disk
// image ending before the in-memory state, silently losing acked
// frames on the next restart. The pass leaves the bytes alone and a
// later pass with a caught-up peer repairs fully.
func TestScrubSkipsPartialRepair(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, follower := openPlain(t, leaderDir), openPlain(t, followerDir)
	laggard := openPlain(t, t.TempDir())
	defer leader.Close()
	defer follower.Close()
	defer laggard.Close()

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		if _, err := leader.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	replicate(t, leader, follower, 0)
	// The laggard stopped pulling at version 7: it cannot cover the top
	// of a range quarantined on the follower.
	for laggard.Version() < 7 {
		frames, _, err := leader.FramesSince(laggard.Version(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := laggard.ApplyFrames(frames); err != nil {
			t.Fatal(err)
		}
	}

	// Rot frame 4 on the follower: frames 5..10 are quarantined, but the
	// laggard can supply only 5..7.
	logPath := filepath.Join(followerDir, logName)
	raw := readFile(t, logPath)
	off := int64(0)
	for i := 0; i < 4; i++ {
		_, n, err := readRecord(bytes.NewReader(raw[off:]), DefaultMaxRecordBytes)
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	flipByte(t, logPath, off-2)
	corrupted := readFile(t, logPath)

	rep, err := follower.Scrub(PeerSource(laggard))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired || rep.RepairedFrames != 0 {
		t.Fatalf("partial pull was spliced: %+v", rep)
	}
	if !bytes.Equal(readFile(t, logPath), corrupted) {
		t.Fatal("partial repair touched the on-disk log")
	}
	if follower.Len() != 10 {
		t.Fatalf("scrub disturbed in-memory state: len %d", follower.Len())
	}

	// A caught-up peer still repairs the same quarantine byte-identical.
	rep, err = follower.Scrub(PeerSource(leader))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired {
		t.Fatalf("full repair failed after skipped partial: %+v", rep)
	}
	if !bytes.Equal(readFile(t, logPath), readFile(t, filepath.Join(leaderDir, logName))) {
		t.Fatal("repaired follower log is not byte-identical to the leader's")
	}
}

// TestStartScrubber: the background loop detects and repairs rot
// without outside help.
func TestStartScrubber(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, follower := openPlain(t, leaderDir), openPlain(t, followerDir)
	defer leader.Close()
	defer follower.Close()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 6; i++ {
		if _, err := leader.Append(mkTask(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	replicate(t, leader, follower, 0)
	flipByte(t, filepath.Join(followerDir, logName), headerBytes+3)

	reports := make(chan ScrubReport, 16)
	sc := follower.StartScrubber(5*time.Millisecond,
		func() RepairSource { return PeerSource(leader) },
		func(rep ScrubReport, err error) {
			if err == nil {
				reports <- rep
			}
		})
	defer sc.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case rep := <-reports:
			if rep.Repaired {
				if !bytes.Equal(readFile(t, filepath.Join(followerDir, logName)),
					readFile(t, filepath.Join(leaderDir, logName))) {
					t.Fatal("scrubber-repaired log not byte-identical to leader's")
				}
				return
			}
		case <-deadline:
			t.Fatal("scrubber never repaired the rot")
		}
	}
}
