package data

import (
	"bytes"
	"testing"
)

// FuzzReadCSV hardens the dataset parser: arbitrary input must produce
// either a valid dataset or an error — never a panic or an invalid
// Dataset.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("1,2,1\n3,4,-1\n"), 2)
	f.Add([]byte("1,2,0\n3,4,2\n"), 3)
	f.Add([]byte("0.5,-1.25\n"), 0)
	f.Add([]byte(""), 2)
	f.Add([]byte("a,b,c\n"), 2)
	f.Add([]byte("1\n1,2\n"), 0)
	f.Fuzz(func(t *testing.T, raw []byte, numClasses int) {
		if numClasses < 0 || numClasses > 64 {
			numClasses = numClasses & 63
			if numClasses < 0 {
				numClasses = -numClasses
			}
		}
		ds, err := ReadCSV(bytes.NewReader(raw), numClasses)
		if err != nil {
			return
		}
		if vErr := ds.Validate(); vErr != nil {
			t.Fatalf("ReadCSV returned an invalid dataset: %v", vErr)
		}
		// Round trip must preserve the parse.
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of parsed dataset failed: %v", err)
		}
		back, err := ReadCSV(&buf, ds.NumClasses)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.Len() != ds.Len() || back.Dim() != ds.Dim() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Len(), back.Dim(), ds.Len(), ds.Dim())
		}
	})
}
