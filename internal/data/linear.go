package data

import (
	"fmt"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
)

// LinearTask is a binary classification task with standard-Gaussian
// features and labels sign(Wᵀx + Bias), flipped with probability Flip —
// the canonical small-sample edge task of the evaluation. The true
// Bayes-optimal logistic parameters are proportional to [W; Bias], which
// is what lets experiments measure parameter recovery directly.
type LinearTask struct {
	W    mat.Vec
	Bias float64
	Flip float64 // label flip probability in [0, 1)
}

// Dim returns the feature dimensionality.
func (t LinearTask) Dim() int { return len(t.W) }

// Params returns the flattened true parameters [W; Bias] in the layout of
// model.Logistic.
func (t LinearTask) Params() mat.Vec {
	return append(mat.CloneVec(t.W), t.Bias)
}

// Sample draws n labeled samples.
func (t LinearTask) Sample(rng *rand.Rand, n int) *Dataset {
	x := mat.NewDense(n, t.Dim())
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if mat.Dot(t.W, row)+t.Bias >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
		if t.Flip > 0 && rng.Float64() < t.Flip {
			y[i] = -y[i]
		}
	}
	return &Dataset{X: x, Y: y, NumClasses: 2}
}

// SampleImbalanced draws n samples with the positive class constrained
// to the fraction posFrac by rejection — the class-imbalance stressor
// (rare-event detection at the edge). Label noise applies after the
// class quota is met, so the imbalance level is exact.
func (t LinearTask) SampleImbalanced(rng *rand.Rand, n int, posFrac float64) (*Dataset, error) {
	if posFrac <= 0 || posFrac >= 1 {
		return nil, fmt.Errorf("data: SampleImbalanced: posFrac %g must be in (0,1)", posFrac)
	}
	nPos := int(float64(n)*posFrac + 0.5)
	if nPos < 1 {
		nPos = 1
	}
	if nPos >= n {
		nPos = n - 1
	}
	x := mat.NewDense(n, t.Dim())
	y := make([]float64, n)
	havePos, haveNeg := 0, nPos // negatives fill indices nPos..n-1
	fill := func(idx int, wantPos bool) {
		row := x.Row(idx)
		for {
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			isPos := mat.Dot(t.W, row)+t.Bias >= 0
			if isPos == wantPos {
				break
			}
		}
		if wantPos {
			y[idx] = 1
		} else {
			y[idx] = -1
		}
	}
	for havePos < nPos {
		fill(havePos, true)
		havePos++
	}
	for haveNeg < n {
		fill(haveNeg, false)
		haveNeg++
	}
	ds := &Dataset{X: x, Y: y, NumClasses: 2}
	if t.Flip > 0 {
		for i := range ds.Y {
			if rng.Float64() < t.Flip {
				ds.Y[i] = -ds.Y[i]
			}
		}
	}
	ds.Shuffle(rng)
	return ds, nil
}

// TaskFamily generates related binary tasks: true weight vectors are
// drawn as cluster center + within-cluster noise, mirroring a cloud that
// has seen several groups of similar IoT deployments. Relatedness is
// controlled by Within (small = tasks nearly identical inside a cluster).
type TaskFamily struct {
	Centers []mat.Vec // cluster centers in weight space
	Within  float64   // within-cluster std of task weights
	Flip    float64   // label noise applied to all tasks
}

// NewTaskFamily draws nClusters centers of norm ≈ spread in dimension dim.
func NewTaskFamily(rng *rand.Rand, dim, nClusters int, spread, within float64) (*TaskFamily, error) {
	if dim <= 0 || nClusters <= 0 {
		return nil, fmt.Errorf("data: NewTaskFamily: dim=%d clusters=%d", dim, nClusters)
	}
	if spread <= 0 || within < 0 {
		return nil, fmt.Errorf("data: NewTaskFamily: spread=%g within=%g", spread, within)
	}
	f := &TaskFamily{Centers: make([]mat.Vec, nClusters), Within: within}
	for c := range f.Centers {
		v := make(mat.Vec, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		norm := mat.Norm2(v)
		if norm == 0 {
			v[0] = 1
			norm = 1
		}
		mat.Scale(spread/norm, v)
		f.Centers[c] = v
	}
	return f, nil
}

// SampleTask draws one task from cluster c (c = -1 picks uniformly).
func (f *TaskFamily) SampleTask(rng *rand.Rand, c int) LinearTask {
	if c < 0 {
		c = rng.Intn(len(f.Centers))
	}
	w := mat.CloneVec(f.Centers[c%len(f.Centers)])
	for j := range w {
		w[j] += f.Within * rng.NormFloat64()
	}
	return LinearTask{W: w, Bias: 0.2 * f.Within * rng.NormFloat64(), Flip: f.Flip}
}

// CloudTasks draws k tasks cycling through the clusters, the workload the
// cloud has already solved before the edge device appears.
func (f *TaskFamily) CloudTasks(rng *rand.Rand, k int) []LinearTask {
	out := make([]LinearTask, k)
	for i := range out {
		out[i] = f.SampleTask(rng, i%len(f.Centers))
	}
	return out
}

// RegressionTask is a linear regression task y = Wᵀx + Bias + ε with
// standard-Gaussian features and N(0, Noise²) output noise — the
// regression counterpart of LinearTask for the least-squares model.
type RegressionTask struct {
	W     mat.Vec
	Bias  float64
	Noise float64 // output noise std, ≥ 0
}

// Dim returns the feature dimensionality.
func (t RegressionTask) Dim() int { return len(t.W) }

// Params returns the true parameters [W; Bias].
func (t RegressionTask) Params() mat.Vec {
	return append(mat.CloneVec(t.W), t.Bias)
}

// Sample draws n labeled samples.
func (t RegressionTask) Sample(rng *rand.Rand, n int) *Dataset {
	x := mat.NewDense(n, t.Dim())
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = mat.Dot(t.W, row) + t.Bias + t.Noise*rng.NormFloat64()
	}
	return &Dataset{X: x, Y: y, NumClasses: 0}
}

// BlobTask is a multiclass task: class c draws features from
// N(Centers[c], Noise² I). Labels are class indices.
type BlobTask struct {
	Centers []mat.Vec
	Noise   float64
}

// NewBlobTask places classes at random centers with pairwise separation
// governed by spread.
func NewBlobTask(rng *rand.Rand, dim, classes int, spread, noise float64) (*BlobTask, error) {
	if dim <= 0 || classes < 2 {
		return nil, fmt.Errorf("data: NewBlobTask: dim=%d classes=%d", dim, classes)
	}
	if spread <= 0 || noise <= 0 {
		return nil, fmt.Errorf("data: NewBlobTask: spread=%g noise=%g", spread, noise)
	}
	b := &BlobTask{Centers: make([]mat.Vec, classes), Noise: noise}
	for c := range b.Centers {
		v := make(mat.Vec, dim)
		for j := range v {
			v[j] = spread * rng.NormFloat64()
		}
		b.Centers[c] = v
	}
	return b, nil
}

// Dim returns the feature dimensionality.
func (b *BlobTask) Dim() int { return len(b.Centers[0]) }

// Classes returns the number of classes.
func (b *BlobTask) Classes() int { return len(b.Centers) }

// Sample draws n samples with balanced class proportions.
func (b *BlobTask) Sample(rng *rand.Rand, n int) *Dataset {
	x := mat.NewDense(n, b.Dim())
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		c := i % b.Classes()
		y[i] = float64(c)
		row := x.Row(i)
		for j := range row {
			row[j] = b.Centers[c][j] + b.Noise*rng.NormFloat64()
		}
	}
	ds := &Dataset{X: x, Y: y, NumClasses: b.Classes()}
	ds.Shuffle(rng)
	return ds
}
