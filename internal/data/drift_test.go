package data

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func TestNewDriftingTask(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	d, err := NewDriftingTask(rng, 6, 4, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mat.Norm2(d.W0)-4) > 1e-9 || math.Abs(mat.Norm2(d.Worp)-4) > 1e-9 {
		t.Errorf("norms %v / %v, want 4", mat.Norm2(d.W0), mat.Norm2(d.Worp))
	}
	if dot := mat.Dot(d.W0, d.Worp); math.Abs(dot) > 1e-9 {
		t.Errorf("drift plane not orthogonal: %v", dot)
	}
	// Errors.
	if _, err := NewDriftingTask(rng, 1, 4, 0.1, 0); err == nil {
		t.Error("dim=1 accepted")
	}
	if _, err := NewDriftingTask(rng, 4, 0, 0.1, 0); err == nil {
		t.Error("norm=0 accepted")
	}
	if _, err := NewDriftingTask(rng, 4, 1, -1, 0); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestDriftRotationGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	d, err := NewDriftingTask(rng, 5, 3, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Norm preserved at every step.
	for _, step := range []int{0, 1, 5, 20} {
		w := d.At(step).W
		if math.Abs(mat.Norm2(w)-3) > 1e-9 {
			t.Errorf("step %d norm %v", step, mat.Norm2(w))
		}
	}
	// At step 0 the task is W0 exactly.
	if mat.Dist2(d.At(0).W, d.W0) > 1e-12 {
		t.Error("At(0) != W0")
	}
	// Angle between w(0) and w(t) equals Rate·t (mod 2π) for small t.
	w0, w5 := d.At(0).W, d.At(5).W
	cos := mat.Dot(w0, w5) / (mat.Norm2(w0) * mat.Norm2(w5))
	if math.Abs(math.Acos(cos)-1.0) > 1e-9 { // 0.2·5 = 1 radian
		t.Errorf("rotation angle %v, want 1", math.Acos(cos))
	}
	if got := d.AngleAt(5); got != 1.0 {
		t.Errorf("AngleAt(5) = %v", got)
	}
}

func TestDriftMakesOldModelsStale(t *testing.T) {
	// A classifier perfect for step 0 must lose accuracy on a far-rotated
	// distribution — the premise of the drift experiment.
	rng := rand.New(rand.NewSource(232))
	d, err := NewDriftingTask(rng, 4, 4, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	params := append(mat.CloneVec(d.W0), 0)
	early := d.SampleAt(rng, 0, 1000)
	late := d.SampleAt(rng, 6, 1000) // 1.8 radians later
	accEarly := accuracyLinear(params, early)
	accLate := accuracyLinear(params, late)
	if accEarly < 0.99 {
		t.Errorf("step-0 accuracy %v", accEarly)
	}
	if accLate > 0.75 {
		t.Errorf("accuracy after 1.8 rad drift still %v — drift too weak", accLate)
	}
}

// accuracyLinear scores sign(wᵀx + b) labels without importing model.
func accuracyLinear(params mat.Vec, ds *Dataset) float64 {
	var correct int
	d := len(params) - 1
	for i := 0; i < ds.Len(); i++ {
		score := mat.Dot(params[:d], ds.X.Row(i)) + params[d]
		pred := 1.0
		if score < 0 {
			pred = -1
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
