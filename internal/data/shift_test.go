package data

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func TestCovariateShift(t *testing.T) {
	d := binaryDS()
	shifted, err := CovariateShift(d, mat.Vec{10, -10})
	if err != nil {
		t.Fatal(err)
	}
	if shifted.X.At(0, 0) != 11 || shifted.X.At(0, 1) != -8 {
		t.Errorf("shift wrong: %v", shifted.X.Row(0))
	}
	// Original untouched.
	if d.X.At(0, 0) != 1 {
		t.Error("CovariateShift mutated input")
	}
	if _, err := CovariateShift(d, mat.Vec{1}); err == nil {
		t.Error("wrong delta dim accepted")
	}
}

func TestUniformShiftMagnitude(t *testing.T) {
	d := binaryDS()
	shifted := UniformShift(d, 3)
	moved := mat.SubVec(shifted.X.Row(0), d.X.Row(0))
	if math.Abs(mat.Norm2(moved)-3) > 1e-9 {
		t.Errorf("shift magnitude %v, want 3", mat.Norm2(moved))
	}
}

func TestScaleShift(t *testing.T) {
	d := binaryDS()
	s := ScaleShift(d, 2)
	if s.X.At(1, 0) != 6 {
		t.Errorf("scale wrong: %v", s.X.Row(1))
	}
}

func TestFeatureNoiseChangesData(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	d := binaryDS()
	noisy := FeatureNoise(d, 1, rng)
	if noisy.X.Equal(d.X, 1e-12) {
		t.Error("noise did nothing")
	}
	// Zero noise is identity.
	clean := FeatureNoise(d, 0, rng)
	if !clean.X.Equal(d.X, 0) {
		t.Error("zero noise changed data")
	}
}

func TestLabelFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	task := LinearTask{W: mat.Vec{1, 1}}
	d := task.Sample(rng, 5000)
	flipped, err := LabelFlip(d, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for i := range d.Y {
		if d.Y[i] != flipped.Y[i] {
			n++
		}
	}
	rate := float64(n) / float64(d.Len())
	if math.Abs(rate-0.3) > 0.03 {
		t.Errorf("flip rate %v, want 0.3", rate)
	}
	if _, err := LabelFlip(d, 1.5, rng); err == nil {
		t.Error("p>1 accepted")
	}
	mc := &Dataset{X: mat.NewDense(1, 1), Y: []float64{0}, NumClasses: 3}
	if _, err := LabelFlip(mc, 0.1, rng); err == nil {
		t.Error("multiclass accepted")
	}
}

func TestAdversarialShiftIncreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	task := LinearTask{W: mat.Vec{2, -1}}
	d := task.Sample(rng, 200)
	w := mat.Vec{2, -1}
	adv, err := AdversarialShift(d, w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Margins y·wᵀx must all decrease by exactly budget·‖w‖... per unit:
	// y wᵀ(x − y·budget·w/‖w‖) = y wᵀx − budget‖w‖.
	for i := 0; i < d.Len(); i++ {
		before := d.Y[i] * mat.Dot(w, d.X.Row(i))
		after := adv.Y[i] * mat.Dot(w, adv.X.Row(i))
		if math.Abs((before-after)-mat.Norm2(w)) > 1e-9 {
			t.Fatalf("margin drop %v, want %v", before-after, mat.Norm2(w))
		}
	}
	// Zero scorer: identity.
	same, err := AdversarialShift(d, mat.Vec{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !same.X.Equal(d.X, 0) {
		t.Error("zero-w shift changed data")
	}
	if _, err := AdversarialShift(d, mat.Vec{1}, 1); err == nil {
		t.Error("wrong dim accepted")
	}
}

func TestAdversarialShiftLInf(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	task := LinearTask{W: mat.Vec{2, -1, 0}}
	d := task.Sample(rng, 100)
	adv, err := AdversarialShiftLInf(d, task.W, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Margin must drop by exactly budget·‖w‖₁ = 0.5·3 = 1.5 per sample;
	// zero-weight coordinates stay untouched.
	for i := 0; i < d.Len(); i++ {
		before := d.Y[i] * mat.Dot(task.W, d.X.Row(i))
		after := adv.Y[i] * mat.Dot(task.W, adv.X.Row(i))
		if math.Abs((before-after)-1.5) > 1e-9 {
			t.Fatalf("margin drop %v, want 1.5", before-after)
		}
		if adv.X.At(i, 2) != d.X.At(i, 2) {
			t.Fatal("zero-weight coordinate moved")
		}
	}
	if _, err := AdversarialShiftLInf(d, mat.Vec{1}, 0.5); err == nil {
		t.Error("wrong dim accepted")
	}
	mc := &Dataset{X: mat.NewDense(1, 3), Y: []float64{0}, NumClasses: 3}
	if _, err := AdversarialShiftLInf(mc, task.W, 0.5); err == nil {
		t.Error("multiclass accepted")
	}
}

func TestDirichletPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	b, err := NewBlobTask(rng, 2, 4, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Sample(rng, 400)

	parts, err := DirichletPartition(ds, 8, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 8 {
		t.Fatalf("got %d parts", len(parts))
	}
	var total int
	for p, part := range parts {
		if part.Len() == 0 {
			t.Errorf("device %d empty", p)
		}
		total += part.Len()
	}
	if total != 400 {
		t.Errorf("partition lost samples: %d/400", total)
	}

	// Non-IID check: with alpha=0.3 at least one device should have a
	// very skewed class mix (dominant class > 50%), while with alpha=100
	// all devices should be near-balanced (dominant class < 45%).
	skewed := false
	for _, part := range parts {
		counts := part.ClassCounts()
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if float64(max)/float64(part.Len()) > 0.5 {
			skewed = true
		}
	}
	if !skewed {
		t.Error("alpha=0.3 produced no skewed device")
	}

	iid, err := DirichletPartition(ds, 4, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for p, part := range iid {
		counts := part.ClassCounts()
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if frac := float64(max) / float64(part.Len()); frac > 0.45 {
			t.Errorf("alpha=100 device %d dominant class fraction %v", p, frac)
		}
	}

	if _, err := DirichletPartition(ds, 0, 1, rng); err == nil {
		t.Error("parts=0 accepted")
	}
	if _, err := DirichletPartition(ds, 2, 0, rng); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestApportion(t *testing.T) {
	counts := apportion([]float64{0.5, 0.3, 0.2}, 10)
	if counts[0]+counts[1]+counts[2] != 10 {
		t.Errorf("apportion total %v", counts)
	}
	if counts[0] != 5 || counts[1] != 3 || counts[2] != 2 {
		t.Errorf("apportion %v", counts)
	}
	// Remainders: 1/3 each over 10 → 4/3/3 in some order, total 10.
	counts = apportion([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 10)
	sum := counts[0] + counts[1] + counts[2]
	if sum != 10 {
		t.Errorf("apportion total %d", sum)
	}
}

func TestDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	task := DigitTask{Noise: 0.2, Jitter: true}
	ds := task.SamplePerClass(rng, 5)
	if ds.Len() != 50 || ds.Dim() != DigitDim || ds.NumClasses != 10 {
		t.Fatalf("digits shape: n=%d d=%d c=%d", ds.Len(), ds.Dim(), ds.NumClasses)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := ds.ClassCounts()
	for c := 0; c < 10; c++ {
		if counts[c] != 5 {
			t.Errorf("class %d count %d", c, counts[c])
		}
	}
	// Templates must be pairwise distinct.
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			if mat.Dist2(task.Template(a), task.Template(b)) < 1 {
				t.Errorf("templates %d and %d nearly identical", a, b)
			}
		}
	}
}

func TestDigitsClassesAreLearnable(t *testing.T) {
	// Clean templates must be nearest-template classifiable even with
	// moderate noise — otherwise the benchmark task is degenerate.
	rng := rand.New(rand.NewSource(95))
	task := DigitTask{Noise: 0.3}
	var correct, total int
	for trial := 0; trial < 200; trial++ {
		d := trial % 10
		img := task.SampleOne(rng, d)
		best, bestDist := -1, math.Inf(1)
		for c := 0; c < 10; c++ {
			if dist := mat.Dist2(img, task.Template(c)); dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == d {
			correct++
		}
		total++
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("nearest-template accuracy %v at noise 0.3", acc)
	}
}

func TestShiftImage(t *testing.T) {
	img := make(mat.Vec, DigitDim)
	img[0] = 1 // top-left pixel
	right := shiftImage(img, 1, 0)
	if right[1] != 1 || right[0] != 0 {
		t.Error("shift right failed")
	}
	down := shiftImage(img, 0, 1)
	if down[DigitSize] != 1 {
		t.Error("shift down failed")
	}
	// Shifting off the edge zero-fills.
	gone := shiftImage(img, -1, 0)
	if mat.Sum(gone) != 0 {
		t.Error("off-edge shift should drop the pixel")
	}
}

func TestRenderASCII(t *testing.T) {
	task := DigitTask{}
	art := RenderASCII(task.Template(1))
	if len(art) != DigitDim+DigitSize { // 64 cells + 8 newlines
		t.Errorf("ASCII length %d", len(art))
	}
	// Mid-intensity glyph branches.
	img := make(mat.Vec, DigitDim)
	img[0], img[1], img[2] = 0.5, 0.2, 0.05
	art = RenderASCII(img)
	if art[0] != '+' || art[1] != '.' || art[2] != ' ' {
		t.Errorf("glyphs %q", art[:3])
	}
	for name, fn := range map[string]func(){
		"render": func() { RenderASCII(mat.Vec{1}) },
		"digit":  func() { task.Template(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGobDecodeInvalid(t *testing.T) {
	if _, err := DecodeGob(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage gob accepted")
	}
}
