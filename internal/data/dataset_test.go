package data

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func binaryDS() *Dataset {
	return &Dataset{
		X:          mat.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}),
		Y:          []float64{1, -1, 1, -1},
		NumClasses: 2,
	}
}

func TestDatasetValidate(t *testing.T) {
	if err := binaryDS().Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Dataset)
	}{
		{"nil X", func(d *Dataset) { d.X = nil }},
		{"label count", func(d *Dataset) { d.Y = d.Y[:2] }},
		{"negative classes", func(d *Dataset) { d.NumClasses = -1 }},
		{"bad binary label", func(d *Dataset) { d.Y[0] = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := binaryDS()
			tt.mutate(d)
			if err := d.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
	// Multiclass label range.
	mc := &Dataset{X: mat.FromRows([][]float64{{1}}), Y: []float64{3}, NumClasses: 3}
	if err := mc.Validate(); err == nil {
		t.Error("out-of-range class label accepted")
	}
	mc.Y[0] = 1.5
	if err := mc.Validate(); err == nil {
		t.Error("fractional class label accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := binaryDS()
	c := d.Clone()
	c.X.Set(0, 0, 99)
	c.Y[0] = -1
	if d.X.At(0, 0) == 99 || d.Y[0] == -1 {
		t.Error("Clone shares storage")
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	// Construct a dataset where the label equals the first feature's sign.
	n := 100
	x := mat.NewDense(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		if v >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	d := &Dataset{X: x, Y: y, NumClasses: 2}
	d.Shuffle(rng)
	for i := 0; i < n; i++ {
		want := 1.0
		if d.X.At(i, 0) < 0 {
			want = -1
		}
		if d.Y[i] != want {
			t.Fatalf("row %d: feature/label pairing broken", i)
		}
	}
}

func TestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	d := binaryDS()
	train, test, err := d.Split(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 1 || test.Len() != 3 {
		t.Errorf("split sizes %d/%d", train.Len(), test.Len())
	}
	if _, _, err := d.Split(0, rng); err == nil {
		t.Error("Split(0) accepted")
	}
	if _, _, err := d.Split(4, rng); err == nil {
		t.Error("Split(n) accepted")
	}
}

func TestConcat(t *testing.T) {
	d := binaryDS()
	all, err := d.Concat(d)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 8 {
		t.Errorf("concat length %d", all.Len())
	}
	other := &Dataset{X: mat.NewDense(1, 3), Y: []float64{1}, NumClasses: 2}
	if _, err := d.Concat(other); err == nil {
		t.Error("dim mismatch accepted")
	}
	mc := &Dataset{X: mat.NewDense(1, 2), Y: []float64{0}, NumClasses: 3}
	if _, err := d.Concat(mc); err == nil {
		t.Error("class mismatch accepted")
	}
}

func TestClassCounts(t *testing.T) {
	counts := binaryDS().ClassCounts()
	if counts[1] != 2 || counts[-1] != 2 {
		t.Errorf("counts %v", counts)
	}
}

func TestLinearTaskBayesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	task := LinearTask{W: mat.Vec{2, -1}, Bias: 0.5}
	ds := task.Sample(rng, 500)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Noiseless task: the true params classify everything correctly.
	params := task.Params()
	var correct int
	for i := 0; i < ds.Len(); i++ {
		score := mat.Dot(params[:2], ds.X.Row(i)) + params[2]
		pred := 1.0
		if score < 0 {
			pred = -1
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	if correct != ds.Len() {
		t.Errorf("true params misclassify %d/%d noiseless samples", ds.Len()-correct, ds.Len())
	}
}

func TestLinearTaskFlipRate(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	task := LinearTask{W: mat.Vec{1}, Flip: 0.25}
	ds := task.Sample(rng, 20000)
	var flipped int
	for i := 0; i < ds.Len(); i++ {
		want := 1.0
		if ds.X.At(i, 0) < 0 {
			want = -1
		}
		if ds.Y[i] != want {
			flipped++
		}
	}
	rate := float64(flipped) / float64(ds.Len())
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("flip rate %v, want 0.25", rate)
	}
}

func TestSampleImbalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	task := LinearTask{W: mat.Vec{2, -1}}
	ds, err := task.SampleImbalanced(rng, 200, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := ds.ClassCounts()
	if counts[1] != 20 {
		t.Errorf("positive count %d, want 20", counts[1])
	}
	// Labels must still match the separator (no flip configured).
	for i := 0; i < ds.Len(); i++ {
		want := 1.0
		if mat.Dot(task.W, ds.X.Row(i)) < 0 {
			want = -1
		}
		if ds.Y[i] != want {
			t.Fatalf("label mismatch at row %d", i)
		}
	}
	// Errors and edge quotas.
	if _, err := task.SampleImbalanced(rng, 100, 0); err == nil {
		t.Error("posFrac=0 accepted")
	}
	if _, err := task.SampleImbalanced(rng, 100, 1); err == nil {
		t.Error("posFrac=1 accepted")
	}
	tiny, err := task.SampleImbalanced(rng, 10, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.ClassCounts()[1] < 1 {
		t.Error("quota floor failed: no positive sample")
	}
}

func TestTaskFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	f, err := NewTaskFamily(rng, 5, 3, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Centers) != 3 {
		t.Fatalf("got %d centers", len(f.Centers))
	}
	for _, c := range f.Centers {
		if math.Abs(mat.Norm2(c)-4) > 1e-9 {
			t.Errorf("center norm %v, want 4", mat.Norm2(c))
		}
	}
	// Tasks from the same cluster stay close; different clusters are far.
	t0a := f.SampleTask(rng, 0)
	t0b := f.SampleTask(rng, 0)
	t1 := f.SampleTask(rng, 1)
	same := mat.Dist2(t0a.W, t0b.W)
	diff := mat.Dist2(t0a.W, t1.W)
	if same >= diff {
		t.Errorf("within-cluster dist %v >= cross-cluster %v", same, diff)
	}
	tasks := f.CloudTasks(rng, 7)
	if len(tasks) != 7 {
		t.Errorf("CloudTasks returned %d", len(tasks))
	}
	// Errors.
	if _, err := NewTaskFamily(rng, 0, 3, 1, 0.1); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := NewTaskFamily(rng, 3, 3, -1, 0.1); err == nil {
		t.Error("negative spread accepted")
	}
}

func TestRegressionTask(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	task := RegressionTask{W: mat.Vec{2, -1}, Bias: 0.5, Noise: 0.1}
	ds := task.Sample(rng, 500)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.NumClasses != 0 {
		t.Errorf("regression dataset has NumClasses %d", ds.NumClasses)
	}
	// Residuals under the true params have std ≈ Noise.
	var ss float64
	for i := 0; i < ds.Len(); i++ {
		r := mat.Dot(task.W, ds.X.Row(i)) + task.Bias - ds.Y[i]
		ss += r * r
	}
	if std := math.Sqrt(ss / float64(ds.Len())); math.Abs(std-0.1) > 0.02 {
		t.Errorf("residual std %v, want ≈ 0.1", std)
	}
	if p := task.Params(); len(p) != 3 || p[2] != 0.5 {
		t.Errorf("Params = %v", p)
	}
}

func TestBlobTask(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	b, err := NewBlobTask(rng, 4, 3, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Sample(rng, 90)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := ds.ClassCounts()
	for c := 0; c < 3; c++ {
		if counts[c] != 30 {
			t.Errorf("class %d count %d, want 30", c, counts[c])
		}
	}
	if _, err := NewBlobTask(rng, 4, 1, 5, 0.5); err == nil {
		t.Error("1 class accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := binaryDS()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.X.Equal(d.X, 0) {
		t.Error("features changed in CSV round trip")
	}
	for i := range d.Y {
		if got.Y[i] != d.Y[i] {
			t.Error("labels changed in CSV round trip")
		}
	}
	if _, err := ReadCSV(bytes.NewReader(nil), 2); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,notanumber\n"), 0); err == nil {
		t.Error("bad float accepted")
	}
}

func TestGobRoundTrip(t *testing.T) {
	d := binaryDS()
	var buf bytes.Buffer
	if err := d.EncodeGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.X.Equal(d.X, 0) || got.NumClasses != 2 {
		t.Error("gob round trip changed dataset")
	}
}
