package data

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
)

// DriftingTask is a binary task whose true weight vector rotates over
// time in a fixed 2-plane — smooth concept drift, the streaming stressor
// for the online learner (EXPERIMENTS.md Figure 11). At step t the task
// weights are
//
//	w(t) = cos(Rate·t)·W0 + sin(Rate·t)·W⊥
//
// with ‖w(t)‖ = ‖W0‖ for all t.
type DriftingTask struct {
	W0   mat.Vec // initial weights
	Worp mat.Vec // orthogonal direction of equal norm
	Rate float64 // radians of rotation per step
	Flip float64 // label noise
}

// NewDriftingTask draws a random task of the given norm and drift rate.
func NewDriftingTask(rng *rand.Rand, dim int, norm, rate, flip float64) (*DriftingTask, error) {
	if dim < 2 {
		return nil, fmt.Errorf("data: NewDriftingTask: dim %d must be ≥ 2 for a rotation plane", dim)
	}
	if norm <= 0 || rate < 0 {
		return nil, fmt.Errorf("data: NewDriftingTask: norm=%g rate=%g", norm, rate)
	}
	w0 := make(mat.Vec, dim)
	for i := range w0 {
		w0[i] = rng.NormFloat64()
	}
	mat.Scale(norm/mat.Norm2(w0), w0)
	// Gram-Schmidt a second random vector against w0.
	worp := make(mat.Vec, dim)
	for i := range worp {
		worp[i] = rng.NormFloat64()
	}
	mat.Axpy(-mat.Dot(worp, w0)/(norm*norm), w0, worp)
	n := mat.Norm2(worp)
	if n == 0 {
		return nil, fmt.Errorf("data: NewDriftingTask: degenerate orthogonal draw")
	}
	mat.Scale(norm/n, worp)
	return &DriftingTask{W0: w0, Worp: worp, Rate: rate, Flip: flip}, nil
}

// At returns the task as of step t.
func (d *DriftingTask) At(t int) LinearTask {
	angle := d.Rate * float64(t)
	w := make(mat.Vec, len(d.W0))
	c, s := math.Cos(angle), math.Sin(angle)
	for i := range w {
		w[i] = c*d.W0[i] + s*d.Worp[i]
	}
	return LinearTask{W: w, Flip: d.Flip}
}

// SampleAt draws n samples from the step-t distribution.
func (d *DriftingTask) SampleAt(rng *rand.Rand, t, n int) *Dataset {
	return d.At(t).Sample(rng, n)
}

// AngleAt returns the cumulative rotation at step t in radians.
func (d *DriftingTask) AngleAt(t int) float64 { return d.Rate * float64(t) }
