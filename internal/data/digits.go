package data

import (
	"fmt"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
)

// digitTemplates are 8×8 stroke bitmaps for the ten digit classes: the
// parametric stand-in for an MNIST-style vision-at-the-edge corpus. Each
// sample is a template under random intensity scaling, per-pixel Gaussian
// noise and a random ±1-pixel translation, which preserves the properties
// the evaluation needs: classes that overlap under noise, within-class
// variation, and a controllable difficulty dial.
var digitTemplates = [10]string{
	`
..####..
.#....#.
.#....#.
.#....#.
.#....#.
.#....#.
.#....#.
..####..`,
	`
...##...
..###...
...##...
...##...
...##...
...##...
...##...
..####..`,
	`
..####..
.#....#.
......#.
.....#..
....#...
...#....
..#.....
.######.`,
	`
..####..
.#....#.
......#.
...###..
......#.
......#.
.#....#.
..####..`,
	`
....##..
...#.#..
..#..#..
.#...#..
.######.
.....#..
.....#..
.....#..`,
	`
.######.
.#......
.#......
.#####..
......#.
......#.
.#....#.
..####..`,
	`
..####..
.#......
.#......
.#####..
.#....#.
.#....#.
.#....#.
..####..`,
	`
.######.
......#.
.....#..
....#...
....#...
...#....
...#....
...#....`,
	`
..####..
.#....#.
.#....#.
..####..
.#....#.
.#....#.
.#....#.
..####..`,
	`
..####..
.#....#.
.#....#.
..#####.
......#.
......#.
......#.
..####..`,
}

// DigitSize is the side length of the synthetic digit grid.
const DigitSize = 8

// DigitDim is the flattened feature dimensionality of a digit sample.
const DigitDim = DigitSize * DigitSize

// DigitTask generates synthetic stroke-digit images.
type DigitTask struct {
	// Noise is the per-pixel Gaussian noise std (typical: 0.2–0.6).
	Noise float64
	// Jitter enables the random ±1-pixel translation.
	Jitter bool
	// IntensityLow/High bound the random stroke intensity (defaults 0.8/1.2).
	IntensityLow, IntensityHigh float64
}

// parseTemplate converts a bitmap string into a flat 64-vector of 0/1.
func parseTemplate(s string) mat.Vec {
	out := make(mat.Vec, 0, DigitDim)
	for _, r := range s {
		switch r {
		case '#':
			out = append(out, 1)
		case '.':
			out = append(out, 0)
		}
	}
	if len(out) != DigitDim {
		panic(fmt.Sprintf("data: digit template has %d cells, want %d", len(out), DigitDim))
	}
	return out
}

var parsedDigits = func() [10]mat.Vec {
	var out [10]mat.Vec
	for i, s := range digitTemplates {
		out[i] = parseTemplate(s)
	}
	return out
}()

// Template returns a copy of the clean bitmap for digit d.
func (t DigitTask) Template(d int) mat.Vec {
	if d < 0 || d > 9 {
		panic(fmt.Sprintf("data: digit %d out of range", d))
	}
	return mat.CloneVec(parsedDigits[d])
}

// SampleOne draws one image of digit d.
func (t DigitTask) SampleOne(rng *rand.Rand, d int) mat.Vec {
	img := t.Template(d)
	lo, hi := t.IntensityLow, t.IntensityHigh
	if lo <= 0 {
		lo = 0.8
	}
	if hi <= lo {
		hi = lo + 0.4
	}
	intensity := lo + (hi-lo)*rng.Float64()
	mat.Scale(intensity, img)
	if t.Jitter {
		img = shiftImage(img, rng.Intn(3)-1, rng.Intn(3)-1)
	}
	for i := range img {
		img[i] += t.Noise * rng.NormFloat64()
	}
	return img
}

// Sample draws n samples with balanced classes, shuffled.
func (t DigitTask) Sample(rng *rand.Rand, n int) *Dataset {
	x := mat.NewDense(n, DigitDim)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		d := i % 10
		y[i] = float64(d)
		copy(x.Row(i), t.SampleOne(rng, d))
	}
	ds := &Dataset{X: x, Y: y, NumClasses: 10}
	ds.Shuffle(rng)
	return ds
}

// SamplePerClass draws exactly perClass samples of each digit, shuffled.
func (t DigitTask) SamplePerClass(rng *rand.Rand, perClass int) *Dataset {
	return t.Sample(rng, perClass*10)
}

// shiftImage translates the 8×8 image by (dx, dy), zero-filling.
func shiftImage(img mat.Vec, dx, dy int) mat.Vec {
	out := make(mat.Vec, DigitDim)
	for r := 0; r < DigitSize; r++ {
		for c := 0; c < DigitSize; c++ {
			sr, sc := r-dy, c-dx
			if sr < 0 || sr >= DigitSize || sc < 0 || sc >= DigitSize {
				continue
			}
			out[r*DigitSize+c] = img[sr*DigitSize+sc]
		}
	}
	return out
}

// RenderASCII draws a sample as ASCII art for examples and debugging.
func RenderASCII(img mat.Vec) string {
	if len(img) != DigitDim {
		panic(fmt.Sprintf("data: RenderASCII: length %d, want %d", len(img), DigitDim))
	}
	buf := make([]byte, 0, DigitDim+DigitSize)
	for r := 0; r < DigitSize; r++ {
		for c := 0; c < DigitSize; c++ {
			v := img[r*DigitSize+c]
			switch {
			case v > 0.66:
				buf = append(buf, '#')
			case v > 0.33:
				buf = append(buf, '+')
			case v > 0.15:
				buf = append(buf, '.')
			default:
				buf = append(buf, ' ')
			}
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
