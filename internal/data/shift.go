package data

import (
	"fmt"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/stat"
)

// CovariateShift returns a copy of ds with delta added to every feature
// vector — a mean shift of the test distribution, the canonical stressor
// for the DRO robustness claims.
func CovariateShift(ds *Dataset, delta mat.Vec) (*Dataset, error) {
	if len(delta) != ds.Dim() {
		return nil, fmt.Errorf("data: CovariateShift: delta dim %d, want %d", len(delta), ds.Dim())
	}
	out := ds.Clone()
	for i := 0; i < out.Len(); i++ {
		mat.Axpy(1, delta, out.X.Row(i))
	}
	return out, nil
}

// UniformShift shifts every feature by eps/sqrt(d), producing a shift of
// total Euclidean magnitude eps regardless of dimensionality.
func UniformShift(ds *Dataset, eps float64) *Dataset {
	delta := make(mat.Vec, ds.Dim())
	if ds.Dim() > 0 {
		mat.Fill(delta, eps/mat.Norm2(onesVec(ds.Dim())))
	}
	out, err := CovariateShift(ds, delta)
	if err != nil {
		// Unreachable: delta is constructed with the right dimension.
		panic(err)
	}
	return out
}

// ScaleShift multiplies all features by factor (sensor gain drift).
func ScaleShift(ds *Dataset, factor float64) *Dataset {
	out := ds.Clone()
	mat.Scale(factor, out.X.Data)
	return out
}

// FeatureNoise adds N(0, sigma²) noise to every feature.
func FeatureNoise(ds *Dataset, sigma float64, rng *rand.Rand) *Dataset {
	out := ds.Clone()
	for i := range out.X.Data {
		out.X.Data[i] += sigma * rng.NormFloat64()
	}
	return out
}

// LabelFlip flips each binary (±1) label with probability p.
func LabelFlip(ds *Dataset, p float64, rng *rand.Rand) (*Dataset, error) {
	if ds.NumClasses != 2 {
		return nil, fmt.Errorf("data: LabelFlip: dataset is not binary (classes=%d)", ds.NumClasses)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("data: LabelFlip: p=%g out of [0,1]", p)
	}
	out := ds.Clone()
	for i := range out.Y {
		if rng.Float64() < p {
			out.Y[i] = -out.Y[i]
		}
	}
	return out, nil
}

// AdversarialShift moves each sample by budget in the direction that
// increases its loss under a linear scorer w — the worst-case-in-the-ball
// perturbation realized, used to validate the Wasserstein certificate
// empirically. For a sample with label y, the loss-increasing direction
// of the margin y·wᵀx is −y·w/‖w‖.
func AdversarialShift(ds *Dataset, w mat.Vec, budget float64) (*Dataset, error) {
	if len(w) != ds.Dim() {
		return nil, fmt.Errorf("data: AdversarialShift: w dim %d, want %d", len(w), ds.Dim())
	}
	if ds.NumClasses != 2 {
		return nil, fmt.Errorf("data: AdversarialShift: dataset is not binary")
	}
	norm := mat.Norm2(w)
	if norm == 0 {
		return ds.Clone(), nil
	}
	out := ds.Clone()
	for i := 0; i < out.Len(); i++ {
		mat.Axpy(-out.Y[i]*budget/norm, w, out.X.Row(i))
	}
	return out, nil
}

// AdversarialShiftLInf moves each sample by the ℓ∞-budget sign attack
// against a linear scorer w: every coordinate shifts by ±budget in the
// loss-increasing direction, the worst case of an ℓ∞-ground Wasserstein
// ball (total ℓ∞ perturbation = budget; margin drop = budget·‖w‖₁).
func AdversarialShiftLInf(ds *Dataset, w mat.Vec, budget float64) (*Dataset, error) {
	if len(w) != ds.Dim() {
		return nil, fmt.Errorf("data: AdversarialShiftLInf: w dim %d, want %d", len(w), ds.Dim())
	}
	if ds.NumClasses != 2 {
		return nil, fmt.Errorf("data: AdversarialShiftLInf: dataset is not binary")
	}
	out := ds.Clone()
	for i := 0; i < out.Len(); i++ {
		row := out.X.Row(i)
		for j, wj := range w {
			switch {
			case wj > 0:
				row[j] -= out.Y[i] * budget
			case wj < 0:
				row[j] += out.Y[i] * budget
			}
		}
	}
	return out, nil
}

// DirichletPartition splits ds across parts devices with label-skewed
// proportions drawn from a symmetric Dirichlet(alpha): small alpha gives
// highly non-IID per-device class mixes, large alpha approaches IID.
// Every device receives at least one sample when possible.
func DirichletPartition(ds *Dataset, parts int, alpha float64, rng *rand.Rand) ([]*Dataset, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("data: DirichletPartition: parts=%d", parts)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("data: DirichletPartition: alpha=%g must be positive", alpha)
	}
	// Group sample indices by class (binary labels map −1→0, +1→1).
	classOf := func(y float64) int {
		if ds.NumClasses == 2 {
			if y > 0 {
				return 1
			}
			return 0
		}
		return int(y)
	}
	byClass := map[int][]int{}
	for i, y := range ds.Y {
		c := classOf(y)
		byClass[c] = append(byClass[c], i)
	}
	assignments := make([][]int, parts)
	for _, idx := range byClass {
		// Per-class device proportions.
		props := stat.DirichletSym(rng, alpha, parts)
		// Convert to counts by largest remainder.
		counts := apportion(props, len(idx))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		pos := 0
		for p, c := range counts {
			assignments[p] = append(assignments[p], idx[pos:pos+c]...)
			pos += c
		}
	}
	out := make([]*Dataset, parts)
	for p := range out {
		if len(assignments[p]) == 0 {
			// Guarantee non-emptiness by stealing one sample from the
			// largest device.
			big, bigLen := 0, 0
			for q, a := range assignments {
				if len(a) > bigLen {
					big, bigLen = q, len(a)
				}
			}
			if bigLen > 1 {
				last := assignments[big][bigLen-1]
				assignments[big] = assignments[big][:bigLen-1]
				assignments[p] = append(assignments[p], last)
			}
		}
		out[p] = ds.Subset(assignments[p])
	}
	return out, nil
}

// apportion converts proportions to integer counts summing to total using
// the largest-remainder method.
func apportion(props []float64, total int) []int {
	counts := make([]int, len(props))
	rem := make([]float64, len(props))
	used := 0
	for i, p := range props {
		exact := p * float64(total)
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		used += counts[i]
	}
	for used < total {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		used++
	}
	return counts
}

func onesVec(n int) mat.Vec {
	v := make(mat.Vec, n)
	mat.Fill(v, 1)
	return v
}
