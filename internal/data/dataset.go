// Package data is drdp's synthetic data engine. Real IoT traces and image
// corpora are not available offline, so the package provides parametric
// generators that expose exactly the dials the paper's claims depend on:
// local sample scarcity, relatedness between the edge task and the cloud's
// task family, covariate/label shift between train and test, and non-IID
// heterogeneity across devices. See DESIGN.md ("Substitutions") for the
// mapping from the paper's data to these generators.
package data

import (
	"fmt"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
)

// Dataset is a supervised sample: row-major features plus labels.
// Label conventions follow package model: regression targets directly,
// binary labels as ±1 (NumClasses == 2), multiclass labels as class
// indices (NumClasses >= 3). NumClasses == 0 marks regression.
type Dataset struct {
	X          *mat.Dense
	Y          []float64
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return d.X.Cols }

// Validate reports structural problems.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("data: nil feature matrix")
	}
	if d.X.Rows != len(d.Y) {
		return fmt.Errorf("data: %d rows but %d labels", d.X.Rows, len(d.Y))
	}
	if d.NumClasses < 0 {
		return fmt.Errorf("data: negative class count %d", d.NumClasses)
	}
	if d.NumClasses >= 3 {
		for i, y := range d.Y {
			if y != float64(int(y)) || y < 0 || int(y) >= d.NumClasses {
				return fmt.Errorf("data: label %g at row %d invalid for %d classes", y, i, d.NumClasses)
			}
		}
	}
	if d.NumClasses == 2 {
		for i, y := range d.Y {
			if y != 1 && y != -1 {
				return fmt.Errorf("data: binary label %g at row %d, want ±1", y, i)
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		X:          d.X.Clone(),
		Y:          append([]float64(nil), d.Y...),
		NumClasses: d.NumClasses,
	}
}

// Shuffle permutes samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.Len()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ri, rj := d.X.Row(i), d.X.Row(j)
		for k := range ri {
			ri[k], rj[k] = rj[k], ri[k]
		}
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	}
}

// Subset returns a dataset view copy of the given row indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		X:          mat.NewDense(len(idx), d.Dim()),
		Y:          make([]float64, len(idx)),
		NumClasses: d.NumClasses,
	}
	for i, j := range idx {
		copy(out.X.Row(i), d.X.Row(j))
		out.Y[i] = d.Y[j]
	}
	return out
}

// Split partitions into a training set with n samples and a test set with
// the rest, after a shuffle driven by rng. It fails when n is out of range.
func (d *Dataset) Split(n int, rng *rand.Rand) (train, test *Dataset, err error) {
	if n <= 0 || n >= d.Len() {
		return nil, nil, fmt.Errorf("data: Split: n=%d out of range (0, %d)", n, d.Len())
	}
	c := d.Clone()
	c.Shuffle(rng)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return c.Subset(idx[:n]), c.Subset(idx[n:]), nil
}

// Concat appends other's samples to a copy of d. Dimensions and label
// conventions must match.
func (d *Dataset) Concat(other *Dataset) (*Dataset, error) {
	if d.Dim() != other.Dim() {
		return nil, fmt.Errorf("data: Concat: dims %d vs %d", d.Dim(), other.Dim())
	}
	if d.NumClasses != other.NumClasses {
		return nil, fmt.Errorf("data: Concat: class counts %d vs %d", d.NumClasses, other.NumClasses)
	}
	out := &Dataset{
		X:          mat.NewDense(d.Len()+other.Len(), d.Dim()),
		Y:          make([]float64, 0, d.Len()+other.Len()),
		NumClasses: d.NumClasses,
	}
	for i := 0; i < d.Len(); i++ {
		copy(out.X.Row(i), d.X.Row(i))
	}
	for i := 0; i < other.Len(); i++ {
		copy(out.X.Row(d.Len()+i), other.X.Row(i))
	}
	out.Y = append(out.Y, d.Y...)
	out.Y = append(out.Y, other.Y...)
	return out, nil
}

// ClassCounts returns a histogram of labels for classification datasets.
func (d *Dataset) ClassCounts() map[int]int {
	out := make(map[int]int)
	for _, y := range d.Y {
		out[int(y)]++
	}
	return out
}
