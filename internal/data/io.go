package data

import (
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"

	"github.com/drdp/drdp/internal/mat"
)

// WriteCSV writes the dataset as rows of feature values followed by the
// label in the last column. No header is emitted.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	record := make([]string, d.Dim()+1)
	for i := 0; i < d.Len(); i++ {
		row := d.X.Row(i)
		for j, v := range row {
			record[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		record[d.Dim()] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("data: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("data: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a dataset written by WriteCSV. numClasses follows the
// Dataset convention and is recorded, not inferred.
func ReadCSV(r io.Reader, numClasses int) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("data: read csv: empty input")
	}
	dim := len(records[0]) - 1
	if dim < 1 {
		return nil, fmt.Errorf("data: read csv: need at least one feature column")
	}
	ds := &Dataset{
		X:          mat.NewDense(len(records), dim),
		Y:          make([]float64, len(records)),
		NumClasses: numClasses,
	}
	for i, rec := range records {
		if len(rec) != dim+1 {
			return nil, fmt.Errorf("data: read csv: row %d has %d fields, want %d", i, len(rec), dim+1)
		}
		row := ds.X.Row(i)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("data: read csv: row %d col %d: %w", i, j, err)
			}
			row[j] = v
		}
		y, err := strconv.ParseFloat(rec[dim], 64)
		if err != nil {
			return nil, fmt.Errorf("data: read csv: row %d label: %w", i, err)
		}
		ds.Y[i] = y
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// EncodeGob writes the dataset in gob format (compact binary transport
// between drdp processes).
func (d *Dataset) EncodeGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(d); err != nil {
		return fmt.Errorf("data: encode dataset: %w", err)
	}
	return nil
}

// DecodeGob reads a dataset written by EncodeGob and validates it.
func DecodeGob(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("data: decode dataset: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
