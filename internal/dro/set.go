// Package dro implements the distributionally-robust-optimization layer of
// drdp: uncertainty sets centered at the empirical distribution of the
// edge device's local samples, and the dual reformulations that turn the
// inner sup over the set into a single-layer expression.
//
// Three ball geometries are supported:
//
//   - Wasserstein: for losses that are L(θ)-Lipschitz in the sample, strong
//     duality collapses the worst case to  mean loss + ρ·L(θ)  — a dual-norm
//     regularizer on the parameters (Mohajerin Esfahani & Kuhn 2018;
//     Shafieezadeh-Abadeh et al. 2015 for logistic regression).
//   - KL: exponential-tilting dual  min_{λ>0} λρ + λ log (1/n) Σ e^{ℓ_i/λ},
//     yielding tilted worst-case sample weights q_i ∝ e^{ℓ_i/λ*}.
//   - Chi-square: variance-penalized worst case with water-filling weights,
//     solved exactly by an active-set pass.
//
// The package works on per-sample loss values, so it is agnostic to the
// model; gradients of the robust objective follow from Danskin's theorem
// using the returned worst-case weights.
//
// All loss-vector sums run on the fixed chunk grid of package parallel
// and combine partials with its fixed-order tree reduction, so every
// solver here is bit-for-bit deterministic at any worker count; pass a
// pool to WorstCasePool to actually fan the passes out.
package dro

import (
	"fmt"
	"math"

	"github.com/drdp/drdp/internal/parallel"
)

// Kind selects the geometry of the uncertainty ball.
type Kind int

// Supported uncertainty-set geometries.
const (
	// None disables robustness: the set is the singleton {P̂_n}.
	None Kind = iota
	// Wasserstein is an order-1 Wasserstein ball; it enters the training
	// objective as a dual-norm penalty on the parameters.
	Wasserstein
	// KL is a Kullback-Leibler ball; it enters as exponential tilting of
	// the sample weights.
	KL
	// Chi2 is a chi-square ball; it enters as a variance penalty with
	// water-filling weights.
	Chi2
)

// String returns the canonical name of the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Wasserstein:
		return "wasserstein"
	case KL:
		return "kl"
	case Chi2:
		return "chi2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a name (as printed by String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none":
		return None, nil
	case "wasserstein":
		return Wasserstein, nil
	case "kl":
		return KL, nil
	case "chi2":
		return Chi2, nil
	}
	return None, fmt.Errorf("dro: unknown uncertainty set %q", s)
}

// Set is an uncertainty ball of radius Rho around the empirical
// distribution. The zero value is the singleton set (no robustness).
type Set struct {
	Kind Kind
	Rho  float64 // ball radius, >= 0
}

// Validate reports a structurally invalid set.
func (s Set) Validate() error {
	if s.Rho < 0 {
		return fmt.Errorf("dro: radius %g must be non-negative", s.Rho)
	}
	switch s.Kind {
	case None, Wasserstein, KL, Chi2:
		return nil
	}
	return fmt.Errorf("dro: unknown kind %d", int(s.Kind))
}

// WorstCase returns the worst-case expected loss over the ball and the
// worst-case sample weights (summing to 1). lipschitz is the loss's
// Lipschitz constant in the sample argument at the current parameters —
// only the Wasserstein geometry consumes it; pass 0 for the others.
//
// The weights are the gradient weights for the robust objective: by
// Danskin's theorem, ∇ worst-case = Σ_i q_i ∇ℓ_i (+ the parameter penalty
// term for Wasserstein, which the caller adds via ThetaPenalty).
func (s Set) WorstCase(losses []float64, lipschitz float64) (value float64, weights []float64) {
	return s.WorstCasePool(nil, losses, lipschitz)
}

// WorstCasePool is WorstCase with the O(n) passes over the loss vector
// (means, exponential-tilt sums, water-filling passes) fanned out on the
// pool. A nil pool runs inline through the identical chunk grid, so the
// result is bit-for-bit the same at any parallelism.
func (s Set) WorstCasePool(p *parallel.Pool, losses []float64, lipschitz float64) (value float64, weights []float64) {
	if len(losses) == 0 {
		panic("dro: WorstCase: empty losses")
	}
	n := len(losses)
	switch s.Kind {
	case None:
		return meanPool(p, losses), uniform(n)
	case Wasserstein:
		return meanPool(p, losses) + s.Rho*lipschitz, uniform(n)
	case KL:
		if s.Rho == 0 {
			return meanPool(p, losses), uniform(n)
		}
		v, w, _ := klWorstCase(p, losses, s.Rho)
		return v, w
	case Chi2:
		if s.Rho == 0 {
			return meanPool(p, losses), uniform(n)
		}
		return chi2WorstCase(p, losses, s.Rho)
	default:
		panic(fmt.Sprintf("dro: WorstCase: unknown kind %d", int(s.Kind)))
	}
}

// ThetaPenalty returns the coefficient of the dual-norm parameter penalty
// in the single-layer reformulation: ρ for the Wasserstein set (to be
// multiplied by ‖θ‖_* by the caller), 0 for all other geometries.
func (s Set) ThetaPenalty() float64 {
	if s.Kind == Wasserstein {
		return s.Rho
	}
	return 0
}

func meanPool(p *parallel.Pool, x []float64) float64 {
	return p.SumChunked(len(x), func(i int) float64 { return x[i] }) / float64(len(x))
}

func uniform(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// scanLosses returns the extrema of losses plus a NaN flag, computed per
// chunk and combined with the (order-independent) max/min, so pooled and
// inline scans agree exactly.
func scanLosses(p *parallel.Pool, losses []float64) (minL, maxL float64, hasNaN bool) {
	chunks := parallel.Chunks(len(losses))
	mins := make([]float64, chunks)
	maxs := make([]float64, chunks)
	nans := make([]bool, chunks)
	p.ForEachChunk(len(losses), func(c, lo, hi int) {
		mn, mx, nan := losses[lo], losses[lo], math.IsNaN(losses[lo])
		for _, v := range losses[lo+1 : hi] {
			if math.IsNaN(v) {
				nan = true
				continue
			}
			if v > mx || math.IsNaN(mx) {
				mx = v
			}
			if v < mn || math.IsNaN(mn) {
				mn = v
			}
		}
		mins[c], maxs[c], nans[c] = mn, mx, nan
	})
	minL, maxL, hasNaN = mins[0], maxs[0], nans[0]
	for c := 1; c < chunks; c++ {
		hasNaN = hasNaN || nans[c]
		if maxs[c] > maxL || math.IsNaN(maxL) {
			maxL = maxs[c]
		}
		if mins[c] < minL || math.IsNaN(minL) {
			minL = mins[c]
		}
	}
	return minL, maxL, hasNaN
}

// KLWorstCase solves  sup_{Q: KL(Q||P̂)≤ρ} E_Q[ℓ]  by its dual
//
//	min_{λ>0} λρ + λ log (1/n) Σ_i exp(ℓ_i/λ)
//
// returning the worst-case value, the tilted weights q_i ∝ e^{ℓ_i/λ*},
// and the optimal dual variable λ*.
//
// Degenerate inputs resolve without tilting: when the loss spread is
// below measurement precision (≤ klDegenerateRel relative to the loss
// magnitude) every distribution in the ball has the same mean, and the
// result is maxL with uniform weights and λ = +Inf. The same uniform
// fallback applies when any loss is non-finite — the value is then ±Inf
// or NaN as the data dictates, but the weights stay a safe mean-gradient
// direction instead of NaN poison.
func KLWorstCase(losses []float64, rho float64) (value float64, weights []float64, lambda float64) {
	return klWorstCase(nil, losses, rho)
}

// klDegenerateRel is the relative spread below which KL tilting is
// numerically meaningless. A spread at rounding-noise level (~1e-16 of
// the loss magnitude) cannot pin down λ*: the dual differences vanish
// under the maxL term and the bracket search would return an arbitrary
// tiny λ whose "tilted" weights are a point mass — violating the KL ball
// whenever ρ < log n, and jumping discontinuously from the uniform
// weights returned just below the cutoff. Declaring the spread
// degenerate three decades above noise keeps the weight map continuous:
// the true tilt at such spreads differs from uniform by O(spread/ρ).
const klDegenerateRel = 1e-12

func klWorstCase(p *parallel.Pool, losses []float64, rho float64) (value float64, weights []float64, lambda float64) {
	if rho <= 0 {
		panic(fmt.Sprintf("dro: KLWorstCase: rho %g must be positive", rho))
	}
	n := len(losses)
	minL, maxL, hasNaN := scanLosses(p, losses)
	if hasNaN {
		return math.NaN(), uniform(n), math.Inf(1)
	}
	if math.IsInf(maxL, 0) || math.IsInf(minL, 0) {
		return maxL, uniform(n), math.Inf(1)
	}
	spread := maxL - minL
	if math.IsInf(spread, 1) {
		// Finite extrema whose difference overflows: clamp so the
		// bracket stays representable; the search below degrades to
		// "concentrate on the max", which is the right limit.
		spread = math.MaxFloat64
	}
	if spread <= klDegenerateRel*(1+math.Abs(maxL)) {
		// Degenerate: every distribution in the ball has the same mean.
		return maxL, uniform(n), math.Inf(1)
	}

	dual := func(lam float64) float64 {
		// Stable λ log mean exp(ℓ/λ): factor out the max. The summand
		// exponent is ≤ 0, so the sum is in [1, n] and never overflows.
		s := p.SumChunked(n, func(i int) float64 {
			return math.Exp((losses[i] - maxL) / lam)
		})
		return lam*rho + maxL + lam*math.Log(s/float64(n))
	}

	// The dual is convex in λ; bracket the minimizer on a log grid then
	// refine by golden-section search. Cap the grid so lam *= 4 can
	// never overflow to +Inf (which would loop forever: Inf <= Inf).
	lo, hi := spread*1e-6, spread*1e6/math.Max(rho, 1e-12)
	const hiCap = math.MaxFloat64 / 8
	if !(hi < hiCap) {
		hi = hiCap
	}
	bestLam, bestVal := lo, dual(lo)
	for lam := lo * 4; lam <= hi; lam *= 4 {
		if v := dual(lam); v < bestVal {
			bestVal, bestLam = v, lam
		}
	}
	a, b := bestLam/4, bestLam*4
	lambda = goldenSection(dual, a, b, 200)
	// The sup over reweightings of the sample can never exceed the max
	// loss; clamp away the residual λρ overshoot from bracketing λ > 0.
	value = math.Min(dual(lambda), maxL)

	// Tilted weights at λ*. The argmax entries contribute exp(0) = 1, so
	// the normalizer is ≥ 1 and the division is always safe.
	weights = make([]float64, n)
	p.ForEachChunk(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			weights[i] = math.Exp((losses[i] - maxL) / lambda)
		}
	})
	z := p.SumChunked(n, func(i int) float64 { return weights[i] })
	p.ForEachChunk(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			weights[i] /= z
		}
	})
	return value, weights, lambda
}

// Chi2WorstCase solves  sup_Q E_Q[ℓ]  over the χ² ball
//
//	{ q ∈ Δ_n : (1/2n) Σ_i (n q_i − 1)² ≤ ρ }
//
// exactly via an active-set pass: unconstrained the optimum is
// q = 1/n + δ with δ ∝ centered losses scaled to the ball boundary; any
// weights driven negative are clamped to zero and the remainder re-solved.
//
// Non-finite losses take the same uniform-weight fallback as KLWorstCase.
func Chi2WorstCase(losses []float64, rho float64) (value float64, weights []float64) {
	return chi2WorstCase(nil, losses, rho)
}

func chi2WorstCase(p *parallel.Pool, losses []float64, rho float64) (value float64, weights []float64) {
	if rho <= 0 {
		panic(fmt.Sprintf("dro: Chi2WorstCase: rho %g must be positive", rho))
	}
	n := len(losses)
	_, maxL, hasNaN := scanLosses(p, losses)
	if hasNaN {
		return math.NaN(), uniform(n)
	}
	if math.IsInf(maxL, 1) {
		return maxL, uniform(n)
	}
	active := make([]bool, n) // true = clamped to zero
	weights = make([]float64, n)

	for pass := 0; pass < n; pass++ {
		// Solve on the free set.
		var m int
		for _, a := range active {
			if !a {
				m++
			}
		}
		if m == 0 {
			break
		}
		mean := p.SumChunked(n, func(i int) float64 {
			if active[i] {
				return 0
			}
			return losses[i]
		}) / float64(m)
		if math.IsInf(mean, 0) || math.IsNaN(mean) {
			// The free-set sum overflowed (losses near ±MaxFloat64):
			// centered deviations would be NaN. Give up on tilting.
			return maxL, uniform(n)
		}
		// Largest centered deviation, for an overflow-safe sum of
		// squares: Σ d² computed directly overflows once |d| exceeds
		// ~1e154 and would zero the tilt for exactly the losses that
		// most deserve one.
		devs := make([]float64, parallel.Chunks(n))
		p.ForEachChunk(n, func(c, lo, hi int) {
			var mx float64
			for i := lo; i < hi; i++ {
				if !active[i] {
					if d := math.Abs(losses[i] - mean); d > mx {
						mx = d
					}
				}
			}
			devs[c] = mx
		})
		var maxDev float64
		for _, d := range devs {
			if d > maxDev {
				maxDev = d
			}
		}
		scale := 0.0
		if maxDev > 0 {
			ssScaled := p.SumChunked(n, func(i int) float64 {
				if active[i] {
					return 0
				}
				d := (losses[i] - mean) / maxDev
				return d * d
			})
			norm := maxDev * math.Sqrt(ssScaled)
			// KKT solution on the free set: q_i = 1/m + β(ℓ_i − mean)
			// with β set by the active ball constraint. Each clamped
			// coordinate contributes a fixed (n·0 − 1)² = 1 to the χ²
			// sum and the 1/m-vs-1/n offset of the free coordinates
			// another (n−m)·n/m, so the budget left for the tilt is
			// 2nρ − (n−m)·n/m; ignoring that cost (as a prior version
			// did) returns weights outside the ball once clamping
			// starts.
			nf, mf := float64(n), float64(m)
			budget := 2*nf*rho - (nf-mf)*nf/mf
			if budget > 0 && !math.IsInf(norm, 1) {
				scale = math.Sqrt(budget) / (nf * norm)
			}
		}
		negatives := make([]bool, parallel.Chunks(n))
		p.ForEachChunk(n, func(c, lo, hi int) {
			neg := false
			for i := lo; i < hi; i++ {
				if active[i] {
					weights[i] = 0
					continue
				}
				weights[i] = 1/float64(m) + scale*(losses[i]-mean)
				if weights[i] < 0 {
					neg = true
				}
			}
			negatives[c] = neg
		})
		negative := false
		for _, neg := range negatives {
			negative = negative || neg
		}
		if !negative {
			break
		}
		for i, w := range weights {
			if !active[i] && w < 0 {
				active[i] = true
			}
		}
	}
	// Project residual numerical error back to the simplex.
	z := p.SumChunked(n, func(i int) float64 {
		if weights[i] > 0 {
			return weights[i]
		}
		return 0
	})
	if z <= 0 || math.IsInf(z, 0) || math.IsNaN(z) {
		return maxL, uniform(n)
	}
	p.ForEachChunk(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if weights[i] < 0 {
				weights[i] = 0
			}
			weights[i] /= z
		}
	})
	value = p.SumChunked(n, func(i int) float64 { return weights[i] * losses[i] })
	return value, weights
}

// goldenSection minimizes convex f on [a, b] to high precision.
func goldenSection(f func(float64) float64, a, b float64, iters int) float64 {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < iters && b-a > 1e-12*(1+math.Abs(a)); i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}
