// Package dro implements the distributionally-robust-optimization layer of
// drdp: uncertainty sets centered at the empirical distribution of the
// edge device's local samples, and the dual reformulations that turn the
// inner sup over the set into a single-layer expression.
//
// Three ball geometries are supported:
//
//   - Wasserstein: for losses that are L(θ)-Lipschitz in the sample, strong
//     duality collapses the worst case to  mean loss + ρ·L(θ)  — a dual-norm
//     regularizer on the parameters (Mohajerin Esfahani & Kuhn 2018;
//     Shafieezadeh-Abadeh et al. 2015 for logistic regression).
//   - KL: exponential-tilting dual  min_{λ>0} λρ + λ log (1/n) Σ e^{ℓ_i/λ},
//     yielding tilted worst-case sample weights q_i ∝ e^{ℓ_i/λ*}.
//   - Chi-square: variance-penalized worst case with water-filling weights,
//     solved exactly by an active-set pass.
//
// The package works on per-sample loss values, so it is agnostic to the
// model; gradients of the robust objective follow from Danskin's theorem
// using the returned worst-case weights.
package dro

import (
	"fmt"
	"math"
)

// Kind selects the geometry of the uncertainty ball.
type Kind int

// Supported uncertainty-set geometries.
const (
	// None disables robustness: the set is the singleton {P̂_n}.
	None Kind = iota
	// Wasserstein is an order-1 Wasserstein ball; it enters the training
	// objective as a dual-norm penalty on the parameters.
	Wasserstein
	// KL is a Kullback-Leibler ball; it enters as exponential tilting of
	// the sample weights.
	KL
	// Chi2 is a chi-square ball; it enters as a variance penalty with
	// water-filling weights.
	Chi2
)

// String returns the canonical name of the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Wasserstein:
		return "wasserstein"
	case KL:
		return "kl"
	case Chi2:
		return "chi2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a name (as printed by String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none":
		return None, nil
	case "wasserstein":
		return Wasserstein, nil
	case "kl":
		return KL, nil
	case "chi2":
		return Chi2, nil
	}
	return None, fmt.Errorf("dro: unknown uncertainty set %q", s)
}

// Set is an uncertainty ball of radius Rho around the empirical
// distribution. The zero value is the singleton set (no robustness).
type Set struct {
	Kind Kind
	Rho  float64 // ball radius, >= 0
}

// Validate reports a structurally invalid set.
func (s Set) Validate() error {
	if s.Rho < 0 {
		return fmt.Errorf("dro: radius %g must be non-negative", s.Rho)
	}
	switch s.Kind {
	case None, Wasserstein, KL, Chi2:
		return nil
	}
	return fmt.Errorf("dro: unknown kind %d", int(s.Kind))
}

// WorstCase returns the worst-case expected loss over the ball and the
// worst-case sample weights (summing to 1). lipschitz is the loss's
// Lipschitz constant in the sample argument at the current parameters —
// only the Wasserstein geometry consumes it; pass 0 for the others.
//
// The weights are the gradient weights for the robust objective: by
// Danskin's theorem, ∇ worst-case = Σ_i q_i ∇ℓ_i (+ the parameter penalty
// term for Wasserstein, which the caller adds via ThetaPenalty).
func (s Set) WorstCase(losses []float64, lipschitz float64) (value float64, weights []float64) {
	if len(losses) == 0 {
		panic("dro: WorstCase: empty losses")
	}
	n := len(losses)
	switch s.Kind {
	case None:
		return meanOf(losses), uniform(n)
	case Wasserstein:
		return meanOf(losses) + s.Rho*lipschitz, uniform(n)
	case KL:
		if s.Rho == 0 {
			return meanOf(losses), uniform(n)
		}
		v, w, _ := KLWorstCase(losses, s.Rho)
		return v, w
	case Chi2:
		if s.Rho == 0 {
			return meanOf(losses), uniform(n)
		}
		return Chi2WorstCase(losses, s.Rho)
	default:
		panic(fmt.Sprintf("dro: WorstCase: unknown kind %d", int(s.Kind)))
	}
}

// ThetaPenalty returns the coefficient of the dual-norm parameter penalty
// in the single-layer reformulation: ρ for the Wasserstein set (to be
// multiplied by ‖θ‖_* by the caller), 0 for all other geometries.
func (s Set) ThetaPenalty() float64 {
	if s.Kind == Wasserstein {
		return s.Rho
	}
	return 0
}

func meanOf(x []float64) float64 {
	var t float64
	for _, v := range x {
		t += v
	}
	return t / float64(len(x))
}

func uniform(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// KLWorstCase solves  sup_{Q: KL(Q||P̂)≤ρ} E_Q[ℓ]  by its dual
//
//	min_{λ>0} λρ + λ log (1/n) Σ_i exp(ℓ_i/λ)
//
// returning the worst-case value, the tilted weights q_i ∝ e^{ℓ_i/λ*},
// and the optimal dual variable λ*.
func KLWorstCase(losses []float64, rho float64) (value float64, weights []float64, lambda float64) {
	if rho <= 0 {
		panic(fmt.Sprintf("dro: KLWorstCase: rho %g must be positive", rho))
	}
	n := len(losses)
	maxL, minL := losses[0], losses[0]
	for _, v := range losses[1:] {
		if v > maxL {
			maxL = v
		}
		if v < minL {
			minL = v
		}
	}
	spread := maxL - minL
	if spread < 1e-15 {
		// Degenerate: every distribution in the ball has the same mean.
		return maxL, uniform(n), math.Inf(1)
	}

	dual := func(lam float64) float64 {
		// Stable λ log mean exp(ℓ/λ): factor out the max.
		var s float64
		for _, v := range losses {
			s += math.Exp((v - maxL) / lam)
		}
		return lam*rho + maxL + lam*math.Log(s/float64(n))
	}

	// The dual is convex in λ; bracket the minimizer on a log grid then
	// refine by golden-section search.
	lo, hi := spread*1e-6, spread*1e6/math.Max(rho, 1e-12)
	bestLam, bestVal := lo, dual(lo)
	for lam := lo; lam <= hi; lam *= 4 {
		if v := dual(lam); v < bestVal {
			bestVal, bestLam = v, lam
		}
	}
	a, b := bestLam/4, bestLam*4
	lambda = goldenSection(dual, a, b, 200)
	// The sup over reweightings of the sample can never exceed the max
	// loss; clamp away the residual λρ overshoot from bracketing λ > 0.
	value = math.Min(dual(lambda), maxL)

	// Tilted weights at λ*.
	weights = make([]float64, n)
	var z float64
	for i, v := range losses {
		weights[i] = math.Exp((v - maxL) / lambda)
		z += weights[i]
	}
	for i := range weights {
		weights[i] /= z
	}
	return value, weights, lambda
}

// Chi2WorstCase solves  sup_Q E_Q[ℓ]  over the χ² ball
//
//	{ q ∈ Δ_n : (1/2n) Σ_i (n q_i − 1)² ≤ ρ }
//
// exactly via an active-set pass: unconstrained the optimum is
// q = 1/n + δ with δ ∝ centered losses scaled to the ball boundary; any
// weights driven negative are clamped to zero and the remainder re-solved.
func Chi2WorstCase(losses []float64, rho float64) (value float64, weights []float64) {
	if rho <= 0 {
		panic(fmt.Sprintf("dro: Chi2WorstCase: rho %g must be positive", rho))
	}
	n := len(losses)
	active := make([]bool, n) // true = clamped to zero
	weights = make([]float64, n)

	for pass := 0; pass < n; pass++ {
		// Solve on the free set.
		var m int
		var mean float64
		for i, v := range losses {
			if !active[i] {
				mean += v
				m++
			}
		}
		if m == 0 {
			break
		}
		mean /= float64(m)
		var ss float64
		for i, v := range losses {
			if !active[i] {
				d := v - mean
				ss += d * d
			}
		}
		// Total mass on the free set is 1; uniform part 1/m each, tilt
		// proportional to centered loss with magnitude set by the radius.
		// Ball constraint in terms of δ: (n/2) Σ δ_i² ≤ ρ (approximating
		// the clamped coordinates' contribution as fixed), so
		// ‖δ‖ = sqrt(2ρ/n) along the centered-loss direction.
		scale := 0.0
		if ss > 0 {
			scale = math.Sqrt(2*rho/float64(n)) / math.Sqrt(ss)
		}
		negative := false
		for i, v := range losses {
			if active[i] {
				weights[i] = 0
				continue
			}
			weights[i] = 1/float64(m) + scale*(v-mean)
			if weights[i] < 0 {
				negative = true
			}
		}
		if !negative {
			break
		}
		for i, w := range weights {
			if !active[i] && w < 0 {
				active[i] = true
			}
		}
	}
	// Project residual numerical error back to the simplex.
	var z float64
	for _, w := range weights {
		if w > 0 {
			z += w
		}
	}
	value = 0
	for i := range weights {
		if weights[i] < 0 {
			weights[i] = 0
		}
		weights[i] /= z
		value += weights[i] * losses[i]
	}
	return value, weights
}

// goldenSection minimizes convex f on [a, b] to high precision.
func goldenSection(f func(float64) float64, a, b float64, iters int) float64 {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < iters && b-a > 1e-12*(1+math.Abs(a)); i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}
