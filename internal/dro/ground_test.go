package dro

import (
	"math"
	"math/rand"
	"testing"
)

func TestGroundNormDualValues(t *testing.T) {
	w := []float64{3, -4, 1}
	tests := []struct {
		g    GroundNorm
		want float64
	}{
		{GroundL2, math.Sqrt(26)},
		{GroundL1, 4},   // dual ℓ∞
		{GroundLInf, 8}, // dual ℓ1
	}
	for _, tt := range tests {
		if got := tt.g.Dual(w); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%v.Dual = %v, want %v", tt.g, got, tt.want)
		}
	}
}

func TestGroundNormString(t *testing.T) {
	for g, want := range map[GroundNorm]string{
		GroundL2: "l2", GroundL1: "l1", GroundLInf: "linf",
	} {
		if got := g.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

// Property: DualGrad is consistent with finite differences of Dual away
// from kinks.
func TestGroundNormDualGradConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(240))
	for _, g := range []GroundNorm{GroundL2, GroundL1, GroundLInf} {
		for trial := 0; trial < 50; trial++ {
			n := 2 + rng.Intn(5)
			w := make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			grad := make([]float64, n)
			g.DualGrad(w, 1, grad)
			const h = 1e-7
			for i := range w {
				wp := append([]float64(nil), w...)
				wm := append([]float64(nil), w...)
				wp[i] += h
				wm[i] -= h
				fd := (g.Dual(wp) - g.Dual(wm)) / (2 * h)
				if math.Abs(fd-grad[i]) > 1e-5 {
					t.Fatalf("%v grad[%d]=%v fd=%v (w=%v)", g, i, grad[i], fd, w)
				}
			}
		}
	}
}

func TestGroundNormZeroVector(t *testing.T) {
	w := []float64{0, 0}
	for _, g := range []GroundNorm{GroundL2, GroundL1, GroundLInf} {
		if got := g.Dual(w); got != 0 {
			t.Errorf("%v.Dual(0) = %v", g, got)
		}
		grad := []float64{0, 0}
		g.DualGrad(w, 1, grad) // must not panic or produce NaN
		for _, v := range grad {
			if math.IsNaN(v) {
				t.Errorf("%v grad NaN at zero", g)
			}
		}
	}
}

func TestGroundNormPanics(t *testing.T) {
	bad := GroundNorm(42)
	for name, fn := range map[string]func(){
		"dual": func() { bad.Dual([]float64{1}) },
		"grad": func() { bad.DualGrad([]float64{1}, 1, []float64{0}) },
		"len":  func() { GroundL2.DualGrad([]float64{1, 2}, 1, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDualNormInequalityProperty(t *testing.T) {
	// Hölder: |wᵀδ| ≤ Dual_g(w) · ‖δ‖_g for each ground norm g.
	rng := rand.New(rand.NewSource(241))
	norms := map[GroundNorm]func([]float64) float64{
		GroundL2: func(x []float64) float64 {
			var s float64
			for _, v := range x {
				s += v * v
			}
			return math.Sqrt(s)
		},
		GroundL1: func(x []float64) float64 {
			var s float64
			for _, v := range x {
				s += math.Abs(v)
			}
			return s
		},
		GroundLInf: func(x []float64) float64 {
			var m float64
			for _, v := range x {
				if a := math.Abs(v); a > m {
					m = a
				}
			}
			return m
		},
	}
	for g, norm := range norms {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(6)
			w := make([]float64, n)
			d := make([]float64, n)
			var dot float64
			for i := range w {
				w[i] = rng.NormFloat64()
				d[i] = rng.NormFloat64()
				dot += w[i] * d[i]
			}
			if math.Abs(dot) > g.Dual(w)*norm(d)*(1+1e-12)+1e-12 {
				t.Fatalf("Hölder violated for %v", g)
			}
		}
	}
}
