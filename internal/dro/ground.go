package dro

import (
	"fmt"
	"math"
)

// GroundNorm selects the transport cost of the Wasserstein ball: the
// norm in which sample perturbations are measured. The single-layer
// reformulation penalizes the *dual* norm of the weight vector:
//
//	ground ℓ2 → penalty ‖w‖₂ (default)
//	ground ℓ1 → penalty ‖w‖∞ (adversary moves one coordinate at a time)
//	ground ℓ∞ → penalty ‖w‖₁ (adversary moves all coordinates at once —
//	            the sign-attack geometry)
type GroundNorm int

// Ground metrics.
const (
	// GroundL2 is the Euclidean transport cost.
	GroundL2 GroundNorm = iota
	// GroundL1 is the Manhattan transport cost.
	GroundL1
	// GroundLInf is the max-coordinate transport cost.
	GroundLInf
)

// String names the ground metric.
func (g GroundNorm) String() string {
	switch g {
	case GroundL2:
		return "l2"
	case GroundL1:
		return "l1"
	case GroundLInf:
		return "linf"
	default:
		return fmt.Sprintf("GroundNorm(%d)", int(g))
	}
}

// Dual returns the dual-norm value of w under the ground metric — the
// Lipschitz constant of a margin loss in the perturbed features.
func (g GroundNorm) Dual(w []float64) float64 {
	switch g {
	case GroundL2:
		var s float64
		for _, v := range w {
			s += v * v
		}
		return math.Sqrt(s)
	case GroundL1: // dual is ℓ∞
		var m float64
		for _, v := range w {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	case GroundLInf: // dual is ℓ1
		var s float64
		for _, v := range w {
			s += math.Abs(v)
		}
		return s
	default:
		panic(fmt.Sprintf("dro: unknown ground norm %d", int(g)))
	}
}

// DualGrad accumulates coef·∂Dual(w)/∂w (a subgradient) into grad, which
// must have the same length as w.
func (g GroundNorm) DualGrad(w []float64, coef float64, grad []float64) {
	if len(w) != len(grad) {
		panic(fmt.Sprintf("dro: DualGrad: lengths %d != %d", len(w), len(grad)))
	}
	switch g {
	case GroundL2:
		norm := g.Dual(w)
		if norm == 0 {
			return
		}
		for i, v := range w {
			grad[i] += coef * v / norm
		}
	case GroundL1: // subgradient of ℓ∞: mass on an argmax coordinate
		best, bestAbs := -1, 0.0
		for i, v := range w {
			if a := math.Abs(v); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 || bestAbs == 0 {
			return
		}
		grad[best] += coef * sign(w[best])
	case GroundLInf: // subgradient of ℓ1: sign vector
		for i, v := range w {
			if v != 0 {
				grad[i] += coef * sign(v)
			}
		}
	default:
		panic(fmt.Sprintf("dro: unknown ground norm %d", int(g)))
	}
}

func sign(x float64) float64 {
	if x > 0 {
		return 1
	}
	if x < 0 {
		return -1
	}
	return 0
}
