package dro

import (
	"math"
	"math/rand"
	"testing"
)

func TestKindStringParse(t *testing.T) {
	for _, k := range []Kind{None, Wasserstein, KL, Chi2} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip of %v failed: %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
	if s := Kind(99).String(); s != "Kind(99)" {
		t.Errorf("unknown kind string = %q", s)
	}
}

func TestSetValidate(t *testing.T) {
	if err := (Set{Kind: KL, Rho: 0.1}).Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := (Set{Kind: KL, Rho: -1}).Validate(); err == nil {
		t.Error("negative radius accepted")
	}
	if err := (Set{Kind: Kind(42)}).Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := (Set{}).Validate(); err != nil {
		t.Errorf("zero value should be valid (singleton): %v", err)
	}
}

func TestWorstCaseNone(t *testing.T) {
	losses := []float64{1, 2, 3}
	v, w := Set{}.WorstCase(losses, 5)
	if math.Abs(v-2) > 1e-12 {
		t.Errorf("None worst case = %v, want mean 2", v)
	}
	for _, wi := range w {
		if math.Abs(wi-1.0/3) > 1e-12 {
			t.Errorf("None weights = %v, want uniform", w)
		}
	}
}

func TestWorstCaseWasserstein(t *testing.T) {
	losses := []float64{1, 2, 3}
	s := Set{Kind: Wasserstein, Rho: 0.5}
	v, w := s.WorstCase(losses, 2) // lipschitz 2
	if math.Abs(v-(2+0.5*2)) > 1e-12 {
		t.Errorf("Wasserstein worst case = %v, want 3", v)
	}
	for _, wi := range w {
		if math.Abs(wi-1.0/3) > 1e-12 {
			t.Errorf("Wasserstein weights should stay uniform: %v", w)
		}
	}
	if p := s.ThetaPenalty(); p != 0.5 {
		t.Errorf("ThetaPenalty = %v, want 0.5", p)
	}
	if p := (Set{Kind: KL, Rho: 0.5}).ThetaPenalty(); p != 0 {
		t.Errorf("KL ThetaPenalty = %v, want 0", p)
	}
}

func TestWorstCaseEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty losses did not panic")
		}
	}()
	Set{}.WorstCase(nil, 0)
}

func TestKLWorstCaseDegenerate(t *testing.T) {
	v, w, lam := KLWorstCase([]float64{2, 2, 2}, 0.5)
	if v != 2 {
		t.Errorf("degenerate KL worst case = %v, want 2", v)
	}
	if !math.IsInf(lam, 1) {
		t.Errorf("degenerate lambda = %v, want +Inf", lam)
	}
	for _, wi := range w {
		if math.Abs(wi-1.0/3) > 1e-12 {
			t.Errorf("degenerate weights = %v", w)
		}
	}
}

func TestKLWorstCaseBounds(t *testing.T) {
	losses := []float64{0, 1, 2, 5}
	mean, max := 2.0, 5.0
	prev := mean
	for _, rho := range []float64{0.001, 0.01, 0.1, 0.5, 2, 10} {
		v, w, lam := KLWorstCase(losses, rho)
		if v < mean-1e-9 || v > max+1e-9 {
			t.Errorf("rho=%v: value %v outside [mean, max]", rho, v)
		}
		if v < prev-1e-9 {
			t.Errorf("rho=%v: value %v decreased from %v (should be monotone)", rho, v, prev)
		}
		prev = v
		if lam <= 0 {
			t.Errorf("rho=%v: lambda %v", rho, lam)
		}
		var sum float64
		for _, wi := range w {
			if wi < 0 {
				t.Fatalf("negative weight %v", wi)
			}
			sum += wi
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("rho=%v: weights sum %v", rho, sum)
		}
	}
	// Small rho: close to mean. Large rho: close to max.
	v, _, _ := KLWorstCase(losses, 1e-6)
	if math.Abs(v-mean) > 0.02 {
		t.Errorf("tiny rho: %v, want ≈ mean %v", v, mean)
	}
	v, _, _ = KLWorstCase(losses, 50)
	if max-v > 0.2 {
		t.Errorf("huge rho: %v, want ≈ max %v", v, max)
	}
}

func TestKLWeightsMonotoneInLoss(t *testing.T) {
	losses := []float64{0, 1, 2, 3}
	_, w, _ := KLWorstCase(losses, 0.3)
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Errorf("tilted weights not increasing with loss: %v", w)
		}
	}
}

// Property: the dual value upper-bounds E_Q[loss] for every Q in the ball.
func TestKLDualDominatesFeasibleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	losses := make([]float64, 12)
	for i := range losses {
		losses[i] = rng.NormFloat64() * 2
	}
	rho := 0.25
	value, _, _ := KLWorstCase(losses, rho)
	n := float64(len(losses))
	for trial := 0; trial < 500; trial++ {
		// Random distribution near uniform.
		q := make([]float64, len(losses))
		var z float64
		for i := range q {
			q[i] = math.Exp(0.8 * rng.NormFloat64())
			z += q[i]
		}
		var kl, eq float64
		for i := range q {
			q[i] /= z
			kl += q[i] * math.Log(q[i]*n)
			eq += q[i] * losses[i]
		}
		if kl <= rho && eq > value+1e-7 {
			t.Fatalf("feasible Q (KL=%v) beats dual value: %v > %v", kl, eq, value)
		}
	}
}

func TestChi2WorstCaseNoClamping(t *testing.T) {
	// Small rho: no weight clamps; closed form mean + sqrt(2ρ·σ²_pop).
	losses := []float64{1, 2, 3, 4}
	rho := 0.01
	mean := 2.5
	variance := 1.25 // population variance of {1,2,3,4}
	want := mean + math.Sqrt(2*rho*variance)
	got, w := Chi2WorstCase(losses, rho)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("chi2 value = %v, want %v", got, want)
	}
	var sum float64
	for _, wi := range w {
		if wi < 0 {
			t.Fatalf("negative weight %v", wi)
		}
		sum += wi
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum %v", sum)
	}
}

func TestChi2WorstCaseLargeRhoConcentrates(t *testing.T) {
	losses := []float64{0, 1, 2, 10}
	v, w := Chi2WorstCase(losses, 1e6)
	if math.Abs(v-10) > 1e-6 {
		t.Errorf("huge rho chi2 value = %v, want 10", v)
	}
	if w[3] < 0.999 {
		t.Errorf("weights should concentrate on max loss: %v", w)
	}
}

func TestChi2MonotoneInRho(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	losses := make([]float64, 15)
	for i := range losses {
		losses[i] = rng.Float64() * 5
	}
	prev := -math.Inf(1)
	for _, rho := range []float64{0.001, 0.01, 0.1, 1, 10, 100} {
		v, _ := Chi2WorstCase(losses, rho)
		if v < prev-1e-9 {
			t.Errorf("chi2 value decreased at rho=%v: %v < %v", rho, v, prev)
		}
		prev = v
	}
}

func TestChi2DualDominatesFeasibleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	losses := make([]float64, 10)
	for i := range losses {
		losses[i] = rng.NormFloat64()
	}
	rho := 0.3
	value, _ := Chi2WorstCase(losses, rho)
	n := float64(len(losses))
	for trial := 0; trial < 500; trial++ {
		q := make([]float64, len(losses))
		var z float64
		for i := range q {
			q[i] = rng.Float64()
			z += q[i]
		}
		var chi2, eq float64
		for i := range q {
			q[i] /= z
			d := n*q[i] - 1
			chi2 += d * d
			eq += q[i] * losses[i]
		}
		chi2 /= 2 * n
		if chi2 <= rho && eq > value+1e-7 {
			t.Fatalf("feasible Q (chi2=%v) beats value: %v > %v", chi2, eq, value)
		}
	}
}

func TestWorstCaseDispatchKLChi2(t *testing.T) {
	losses := []float64{0, 1, 5}
	for _, s := range []Set{{Kind: KL, Rho: 0.2}, {Kind: Chi2, Rho: 0.2}} {
		v, w := s.WorstCase(losses, 0)
		if v <= 2 { // mean is 2; robust value must exceed it here
			t.Errorf("%v worst case %v should exceed mean", s.Kind, v)
		}
		if len(w) != 3 {
			t.Errorf("%v weights length %d", s.Kind, len(w))
		}
	}
	// Zero radius short-circuits to the mean.
	for _, k := range []Kind{KL, Chi2} {
		v, _ := (Set{Kind: k, Rho: 0}).WorstCase(losses, 0)
		if math.Abs(v-2) > 1e-12 {
			t.Errorf("%v with rho=0: %v, want mean", k, v)
		}
	}
}

func TestKLChi2PanicOnNonPositiveRho(t *testing.T) {
	for name, fn := range map[string]func(){
		"kl":   func() { KLWorstCase([]float64{1, 2}, 0) },
		"chi2": func() { Chi2WorstCase([]float64{1, 2}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: non-positive rho did not panic", name)
				}
			}()
			fn()
		}()
	}
}
