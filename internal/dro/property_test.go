package dro

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/parallel"
)

// bruteKLDual minimizes the KL dual objective on a dense log grid of λ —
// a slow reference the closed bracket search must match.
func bruteKLDual(losses []float64, rho float64) float64 {
	maxL := losses[0]
	for _, v := range losses {
		if v > maxL {
			maxL = v
		}
	}
	dual := func(lam float64) float64 {
		var s float64
		for _, v := range losses {
			s += math.Exp((v - maxL) / lam)
		}
		return lam*rho + maxL + lam*math.Log(s/float64(len(losses)))
	}
	best := math.Inf(1)
	for e := -9.0; e <= 9.0; e += 0.01 {
		if v := dual(math.Pow(10, e)); v < best {
			best = v
		}
	}
	return best
}

func klDivFromUniform(q []float64) float64 {
	n := float64(len(q))
	var d float64
	for _, v := range q {
		if v > 0 {
			d += v * math.Log(v*n)
		}
	}
	return d
}

func checkSimplex(t *testing.T, w []float64) {
	t.Helper()
	var sum float64
	for i, v := range w {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("weight %d = %g is not a probability", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g, want 1", sum)
	}
}

func TestKLWorstCasePropertyVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		losses := make([]float64, n)
		scale := math.Pow(10, float64(rng.Intn(7)-3))
		for i := range losses {
			losses[i] = scale * rng.NormFloat64()
		}
		rho := math.Pow(10, -3+4*rng.Float64())
		v, w, lam := KLWorstCase(losses, rho)

		if lam <= 0 {
			t.Fatalf("trial %d: lambda %g must be positive", trial, lam)
		}
		checkSimplex(t, w)
		// The returned weights must be inside (or on) the KL ball.
		if d := klDivFromUniform(w); d > rho*(1+1e-6)+1e-9 {
			t.Fatalf("trial %d: KL(q||uniform) = %g exceeds rho = %g", trial, d, rho)
		}
		// Dual optimality: not worse than a dense λ grid (up to grid
		// resolution), and between the mean and the max loss.
		brute := bruteKLDual(losses, rho)
		if v > brute+1e-6*(1+math.Abs(brute)) {
			t.Fatalf("trial %d: value %g beats brute-force dual %g the wrong way", trial, v, brute)
		}
		mean, maxL := 0.0, losses[0]
		for _, l := range losses {
			mean += l / float64(n)
			if l > maxL {
				maxL = l
			}
		}
		if v < mean-1e-9*(1+math.Abs(mean)) || v > maxL+1e-12 {
			t.Fatalf("trial %d: value %g outside [mean %g, max %g]", trial, v, mean, maxL)
		}
		// Primal consistency: the tilted weights attain ~the dual value
		// from below (weak duality up to solver tolerance).
		var attained float64
		for i, l := range losses {
			attained += w[i] * l
		}
		if attained > v+1e-6*(1+math.Abs(v)) {
			t.Fatalf("trial %d: attained %g exceeds dual value %g", trial, attained, v)
		}
	}
}

// TestKLWorstCaseNearDegenerateSpread locks the fix for the weight cliff
// just above the old absolute 1e-15 spread cutoff: rounding-noise spreads
// now resolve as degenerate (uniform weights), instead of a point mass
// that violates the ball whenever rho < log n.
func TestKLWorstCaseNearDegenerateSpread(t *testing.T) {
	n := 16
	rho := 0.1 // < log 16, so a point mass would be infeasible
	losses := make([]float64, n)
	for i := range losses {
		losses[i] = 1.0
	}
	losses[3] = 1.0 + 2e-15 // spread 2e-15: above 1e-15, below noise
	v, w, lam := KLWorstCase(losses, rho)
	if !math.IsInf(lam, 1) {
		t.Fatalf("near-degenerate spread should resolve as degenerate, got lambda %g", lam)
	}
	checkSimplex(t, w)
	for i, q := range w {
		if math.Abs(q-1.0/float64(n)) > 1e-12 {
			t.Fatalf("weight %d = %g, want uniform 1/%d", i, q, n)
		}
	}
	if math.Abs(v-losses[3]) > 1e-12 {
		t.Fatalf("value %g, want max loss %g", v, losses[3])
	}
	// And the ball constraint holds where it previously broke.
	if d := klDivFromUniform(w); d > rho {
		t.Fatalf("KL(q||uniform) = %g exceeds rho = %g", d, rho)
	}
}

// TestKLWorstCaseHugeLosses is the bracket-overflow regression: losses
// near ±MaxFloat64 made the grid's upper endpoint overflow to +Inf and
// `lam *= 4` loop forever at lam = +Inf. The call must terminate and
// return finite, feasible output.
func TestKLWorstCaseHugeLosses(t *testing.T) {
	losses := []float64{1e308, -1e308, 5e307, 0}
	v, w, lam := KLWorstCase(losses, 0.5)
	if math.IsNaN(v) || math.IsNaN(lam) {
		t.Fatalf("huge losses produced NaN: value %g lambda %g", v, lam)
	}
	if v > 1e308 {
		t.Fatalf("value %g exceeds max loss", v)
	}
	checkSimplex(t, w)
}

func TestKLWorstCaseNonFiniteLosses(t *testing.T) {
	v, w, lam := KLWorstCase([]float64{1, math.Inf(1), 2}, 0.5)
	if !math.IsInf(v, 1) {
		t.Fatalf("worst case with a +Inf loss is +Inf, got %g", v)
	}
	if !math.IsInf(lam, 1) {
		t.Fatalf("non-finite fallback lambda = %g, want +Inf", lam)
	}
	checkSimplex(t, w) // crucially: no NaN poison in the gradient weights

	v, w, _ = KLWorstCase([]float64{1, math.NaN(), 2}, 0.5)
	if !math.IsNaN(v) {
		t.Fatalf("worst case with a NaN loss is NaN, got %g", v)
	}
	checkSimplex(t, w)
}

func TestKLWorstCaseSingleSample(t *testing.T) {
	v, w, _ := KLWorstCase([]float64{3.5}, 1.0)
	if v != 3.5 || len(w) != 1 || w[0] != 1 {
		t.Fatalf("n=1: got value %g weights %v", v, w)
	}
}

// bruteChi2Feasible draws random feasible weight vectors in the χ² ball;
// none may beat the active-set solver's value.
func TestChi2WorstCasePropertyVsRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		losses := make([]float64, n)
		for i := range losses {
			losses[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
		}
		rho := math.Pow(10, -2+3*rng.Float64())
		v, w := Chi2WorstCase(losses, rho)
		checkSimplex(t, w)
		// Returned weights inside the ball.
		if d := chi2Div(w); d > rho*(1+1e-6)+1e-9 {
			t.Fatalf("trial %d: chi2 divergence %g exceeds rho %g", trial, d, rho)
		}
		// Value is attained by the weights.
		var attained float64
		for i, l := range losses {
			attained += w[i] * l
		}
		if math.Abs(attained-v) > 1e-9*(1+math.Abs(v)) {
			t.Fatalf("trial %d: value %g but weights attain %g", trial, v, attained)
		}
		// Adversary: random feasible q must not beat the solver.
		for adv := 0; adv < 200; adv++ {
			q := randomChi2Feasible(rng, n, rho)
			var qv float64
			for i, l := range losses {
				qv += q[i] * l
			}
			if qv > v+1e-7*(1+math.Abs(v)) {
				t.Fatalf("trial %d: feasible adversary attains %g > solver value %g", trial, qv, v)
			}
		}
	}
}

func chi2Div(q []float64) float64 {
	n := float64(len(q))
	var s float64
	for _, v := range q {
		d := n*v - 1
		s += d * d
	}
	return s / (2 * n)
}

// randomChi2Feasible perturbs uniform weights by a random direction
// scaled to stay inside the χ² ball and on the simplex.
func randomChi2Feasible(rng *rand.Rand, n int, rho float64) []float64 {
	dir := make([]float64, n)
	var mean float64
	for i := range dir {
		dir[i] = rng.NormFloat64()
		mean += dir[i] / float64(n)
	}
	var ss float64
	for i := range dir {
		dir[i] -= mean // keep Σ q = 1
		ss += dir[i] * dir[i]
	}
	if ss == 0 {
		ss = 1
	}
	scale := rng.Float64() * math.Sqrt(2*rho/float64(n)) / math.Sqrt(ss)
	q := make([]float64, n)
	for i := range q {
		q[i] = 1/float64(n) + scale*dir[i]
		if q[i] < 0 { // clamped draws may leave the ball; skip by zeroing
			q[i] = 0
		}
	}
	var z float64
	for _, v := range q {
		z += v
	}
	for i := range q {
		q[i] /= z
	}
	if chi2Div(q) > rho {
		// Renormalization can push back outside; fall back to uniform.
		for i := range q {
			q[i] = 1 / float64(n)
		}
	}
	return q
}

// TestChi2WorstCaseHugeLosses is the sum-of-squares overflow regression:
// deviations beyond ~1e154 made Σd² overflow to +Inf, zeroing the tilt
// and silently returning uniform weights. The scaled two-pass norm keeps
// the tilt alive; at true overflow scale the solver degrades to a
// defined uniform fallback, never NaN.
func TestChi2WorstCaseHugeLosses(t *testing.T) {
	// Deviations ~1e200: old code overflowed, new code must still tilt.
	losses := []float64{1e200, -1e200, 0, 0}
	v, w := Chi2WorstCase(losses, 0.5)
	if math.IsNaN(v) {
		t.Fatal("huge losses produced NaN value")
	}
	checkSimplex(t, w)
	if w[0] <= w[1] {
		t.Fatalf("tilt lost to overflow: weight on max loss %g <= weight on min loss %g", w[0], w[1])
	}
	if v <= 0 {
		t.Fatalf("worst case %g should exceed the mean 0", v)
	}

	// Mean-overflow scale: defined fallback, no NaN.
	v, w = Chi2WorstCase([]float64{1.5e308, 1.5e308, -1.5e308}, 0.5)
	if math.IsNaN(v) {
		t.Fatal("mean overflow produced NaN value")
	}
	checkSimplex(t, w)
}

func TestChi2WorstCaseNonFiniteLosses(t *testing.T) {
	v, w := Chi2WorstCase([]float64{1, math.Inf(1), 2}, 0.5)
	if !math.IsInf(v, 1) {
		t.Fatalf("worst case with a +Inf loss is +Inf, got %g", v)
	}
	checkSimplex(t, w)

	v, w = Chi2WorstCase([]float64{1, math.NaN(), 2}, 0.5)
	if !math.IsNaN(v) {
		t.Fatalf("worst case with a NaN loss is NaN, got %g", v)
	}
	checkSimplex(t, w)
}

// TestWorstCasePoolBitIdentical asserts the tentpole invariant at the
// dro layer: pooled solves match the serial path bit for bit for every
// geometry, across chunk-boundary sizes.
func TestWorstCasePoolBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, kind := range []Kind{None, Wasserstein, KL, Chi2} {
		for _, n := range []int{10, 256, 257, 1000} {
			losses := make([]float64, n)
			for i := range losses {
				losses[i] = rng.NormFloat64()
			}
			s := Set{Kind: kind, Rho: 0.3}
			v0, w0 := s.WorstCase(losses, 1.0)
			for _, workers := range []int{2, 8} {
				v, w := s.WorstCasePool(parallel.New(workers), losses, 1.0)
				if math.Float64bits(v) != math.Float64bits(v0) {
					t.Fatalf("%v n=%d workers=%d: value bits differ", kind, n, workers)
				}
				for i := range w {
					if math.Float64bits(w[i]) != math.Float64bits(w0[i]) {
						t.Fatalf("%v n=%d workers=%d: weight %d bits differ", kind, n, workers, i)
					}
				}
			}
		}
	}
}
