package dro

import (
	"math/rand"
	"testing"
)

func benchLosses(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64()
	}
	return out
}

func BenchmarkKLWorstCase200(b *testing.B) {
	losses := benchLosses(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KLWorstCase(losses, 0.2)
	}
}

func BenchmarkKLWorstCase5000(b *testing.B) {
	losses := benchLosses(5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KLWorstCase(losses, 0.2)
	}
}

func BenchmarkChi2WorstCase200(b *testing.B) {
	losses := benchLosses(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Chi2WorstCase(losses, 0.2)
	}
}

func BenchmarkChi2WorstCase5000(b *testing.B) {
	losses := benchLosses(5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Chi2WorstCase(losses, 0.2)
	}
}

func BenchmarkWassersteinWorstCase(b *testing.B) {
	losses := benchLosses(200)
	s := Set{Kind: Wasserstein, Rho: 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.WorstCase(losses, 2.5)
	}
}
