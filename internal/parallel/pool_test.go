package parallel

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestChunkGrid(t *testing.T) {
	cases := []struct {
		n, chunks int
	}{
		{0, 0}, {1, 1}, {255, 1}, {256, 1}, {257, 2}, {512, 2}, {513, 3}, {10_000, 40},
	}
	for _, c := range cases {
		if got := Chunks(c.n); got != c.chunks {
			t.Errorf("Chunks(%d) = %d, want %d", c.n, got, c.chunks)
		}
	}
	// Bounds tile [0, n) exactly, in order, without overlap.
	n := 1000
	next := 0
	for c := 0; c < Chunks(n); c++ {
		lo, hi := ChunkBounds(c, n)
		if lo != next || hi <= lo || hi > n {
			t.Fatalf("chunk %d bounds [%d,%d) break tiling at %d", c, lo, hi, next)
		}
		next = hi
	}
	if next != n {
		t.Fatalf("chunks cover [0,%d), want [0,%d)", next, n)
	}
}

func TestWorkers(t *testing.T) {
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", got)
	}
	if got := New(4).Workers(); got != 4 {
		t.Errorf("New(4).Workers() = %d, want 4", got)
	}
	if got := New(0).Workers(); got < 1 {
		t.Errorf("New(0).Workers() = %d, want >= 1", got)
	}
}

func TestForEachChunkCoversAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		n := 5*ChunkRows + 17
		hits := make([]int32, n)
		p.ForEachChunk(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachCoversAllOnce(t *testing.T) {
	p := New(8)
	n := 37
	hits := make([]int32, n)
	p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d visited %d times", i, h)
		}
	}
}

func TestScatterPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in a chunk did not reach the caller")
		}
	}()
	New(4).ForEach(600, func(i int) {
		if i == 300 {
			panic("boom")
		}
	})
}

// TestSumChunkedBitIdentical is the core determinism property: the same
// inputs reduce to the same bits at every worker count, including the
// nil-pool inline path.
func TestSumChunkedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 255, 256, 257, 1000, 4096, 10_001} {
		x := make([]float64, n)
		for i := range x {
			// Wild exponent range makes the sum order-sensitive, so any
			// grouping drift shows up in the bits.
			x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(24)-12))
		}
		var nilPool *Pool
		ref := nilPool.SumChunked(n, func(i int) float64 { return x[i] })
		for _, workers := range []int{1, 2, 3, 8, 32} {
			got := New(workers).SumChunked(n, func(i int) float64 { return x[i] })
			if math.Float64bits(got) != math.Float64bits(ref) {
				t.Fatalf("n=%d workers=%d: sum %x differs from inline %x",
					n, workers, math.Float64bits(got), math.Float64bits(ref))
			}
		}
	}
}

func TestTreeReduceMatchesVecs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 3, 5, 8, 13} {
		scalars := make([]float64, k)
		vecs := make([][]float64, k)
		for i := range scalars {
			v := rng.NormFloat64()
			scalars[i] = v
			vecs[i] = []float64{v, 2 * v}
		}
		s := TreeReduce(append([]float64(nil), scalars...))
		vec := TreeReduceVecs(vecs)
		if math.Float64bits(vec[0]) != math.Float64bits(s) {
			t.Fatalf("k=%d: TreeReduceVecs[0] %g != TreeReduce %g", k, vec[0], s)
		}
	}
	if got := TreeReduce(nil); got != 0 {
		t.Errorf("TreeReduce(nil) = %g, want 0", got)
	}
	if got := TreeReduceVecs(nil); got != nil {
		t.Errorf("TreeReduceVecs(nil) = %v, want nil", got)
	}
}
