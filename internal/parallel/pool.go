// Package parallel is the shared worker-pool evaluation layer behind
// drdp's training hot paths: per-sample losses, worst-case weights,
// weighted gradients and multi-start EM all fan out through a Pool.
//
// The design invariant is determinism. Work over n items is split on a
// fixed chunk grid (ChunkRows items per chunk) that depends only on n —
// never on the worker count or GOMAXPROCS — and per-chunk partial
// results are combined by a fixed-order pairwise tree reduction
// (TreeReduce, TreeReduceVecs). Because each chunk is computed exactly
// as the serial code would compute it and the combination order is a
// pure function of the chunk count, results are bit-for-bit identical
// at any parallelism level, including fully inline execution on a nil
// Pool. Parallelism changes who computes a chunk, never what is
// computed or in which order partials meet.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drdp/drdp/internal/telemetry"
)

// ChunkRows is the fixed chunk size of the evaluation grid. It is a
// constant on purpose: making it adaptive to the worker count would
// change summation groupings — and therefore low-order float bits —
// with the parallelism setting. 256 rows keeps per-chunk work large
// enough (tens of microseconds for typical feature counts) to amortize
// dispatch overhead while still exposing parallelism at edge-scale n.
const ChunkRows = 256

// Pool executes chunked batch work on up to Workers goroutines. The
// zero of *Pool (nil) is valid and runs everything inline on the
// calling goroutine — the serial reference path that parallel runs are
// bit-identical to. A Pool holds no goroutines between calls (workers
// are spawned per batch and exit with it), so it needs no Close and is
// safe to share between any number of concurrent callers.
type Pool struct {
	workers int
}

// New returns a pool of n workers; n <= 0 picks runtime.GOMAXPROCS(0).
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the configured worker count; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Chunks returns the number of grid chunks for n items:
// ceil(n/ChunkRows). It depends only on n.
func Chunks(n int) int {
	return (n + ChunkRows - 1) / ChunkRows
}

// ChunkBounds returns the [lo, hi) item range of chunk c of n items.
func ChunkBounds(c, n int) (lo, hi int) {
	lo = c * ChunkRows
	hi = lo + ChunkRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ForEachChunk calls fn(chunk, lo, hi) for every grid chunk of [0, n)
// and returns when all chunks are done. Chunks run concurrently on up
// to Workers goroutines; fn must confine its writes to chunk-private
// state or to disjoint ranges of shared buffers (out[lo:hi] patterns).
// A nil pool, a single worker, or a single chunk runs inline on the
// calling goroutine. A panic in any chunk is re-raised on the caller.
func (p *Pool) ForEachChunk(n int, fn func(chunk, lo, hi int)) {
	chunks := Chunks(n)
	if chunks == 0 {
		return
	}
	w := p.Workers()
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		telemetry.ParallelInline.Inc()
		for c := 0; c < chunks; c++ {
			lo, hi := ChunkBounds(c, n)
			fn(c, lo, hi)
		}
		return
	}
	p.scatter(w, chunks, func(c int) {
		lo, hi := ChunkBounds(c, n)
		fn(c, lo, hi)
	})
}

// ForEach calls fn(i) for every i in [0, n) at grain 1 — the right
// shape for small counts of expensive independent tasks, such as
// per-component Gaussian density evaluations or multi-start EM runs.
// The same write-disjointness and panic contract as ForEachChunk
// applies.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		telemetry.ParallelInline.Inc()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.scatter(w, n, fn)
}

// scatter runs tasks 0..tasks-1 on w goroutines pulling indices from a
// shared atomic counter, records utilization telemetry, and re-raises
// the first chunk panic on the calling goroutine.
func (p *Pool) scatter(w, tasks int, fn func(i int)) {
	telemetry.ParallelBatches.Inc()
	telemetry.ParallelTasks.Add(float64(tasks))
	var (
		next    atomic.Int64
		panicMu sync.Mutex
		panicV  any
		wg      sync.WaitGroup
	)
	start := time.Now()
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			busy := time.Duration(0)
			defer func() {
				telemetry.ParallelBusySeconds.Add(busy.Seconds())
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= tasks {
					return
				}
				t0 := time.Now()
				fn(i)
				busy += time.Since(t0)
			}
		}()
	}
	wg.Wait()
	telemetry.ParallelSectionSeconds.Add(time.Since(start).Seconds())
	if panicV != nil {
		panic(panicV)
	}
}

// SumChunked computes Σ_{i<n} term(i) with per-chunk left-to-right
// partial sums combined by the fixed-order tree — the deterministic
// replacement for a serial accumulation loop.
func (p *Pool) SumChunked(n int, term func(i int) float64) float64 {
	parts := make([]float64, Chunks(n))
	p.ForEachChunk(n, func(c, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += term(i)
		}
		parts[c] = s
	})
	return TreeReduce(parts)
}

// TreeReduce sums scalar partials by fixed-order pairwise folding:
// stride-1 neighbors first, then stride 2, 4, … The result depends
// only on len(parts) and the values, never on execution order.
func TreeReduce(parts []float64) float64 {
	if len(parts) == 0 {
		return 0
	}
	for stride := 1; stride < len(parts); stride *= 2 {
		for i := 0; i+stride < len(parts); i += 2 * stride {
			parts[i] += parts[i+stride]
		}
	}
	return parts[0]
}

// TreeReduceVecs sums equal-length vector partials with the same fixed
// pairwise tree as TreeReduce, accumulating in place into parts[0],
// which it returns. The non-root partials are clobbered.
func TreeReduceVecs(parts [][]float64) []float64 {
	if len(parts) == 0 {
		return nil
	}
	for stride := 1; stride < len(parts); stride *= 2 {
		for i := 0; i+stride < len(parts); i += 2 * stride {
			a, b := parts[i], parts[i+stride]
			for j, v := range b {
				a[j] += v
			}
		}
	}
	return parts[0]
}
