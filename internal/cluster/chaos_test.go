package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/telemetry"
)

// TestGrayLeaderDemoted arms the gray policy, slows (but does not kill)
// a shard leader, and checks the coordinator demotes it: a follower is
// promoted, the slow node stays in the replica set as a follower, and
// writes keep landing through the new leader.
func TestGrayLeaderDemoted(t *testing.T) {
	cfg := fastConfig(1, 3)
	cfg.GrayLatency = 20 * time.Millisecond
	cfg.GrayAfter = 3
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 3
	sc := dialTest(cl.CoordinatorAddr())
	defer sc.Close()
	for i, task := range makeTasks(402, 8, dim) {
		if _, err := sc.ReportTask(task); err != nil {
			t.Fatalf("report task %d: %v", i, err)
		}
	}
	if !cl.Quiesce(5 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}

	demotions := telemetry.ClusterDemotions.Value()
	slow := cl.LeaderOf(0)
	oldAddr := slow.Addr()
	// Slow, not dead: well over the gray threshold, well under the probe
	// timeout, so liveness probes keep succeeding.
	slow.Server().SetServeDelay(80 * time.Millisecond)
	if !cl.WaitFailover(0, oldAddr, 10*time.Second) {
		t.Fatal("gray leader was not demoted")
	}
	if got := telemetry.ClusterDemotions.Value(); got != demotions+1 {
		t.Fatalf("drdp_cluster_demotions_total = %v, want %v", got, demotions+1)
	}
	if !slow.Server().IsFollower() {
		t.Fatal("demoted leader should be a follower, not dead")
	}
	m := cl.Coordinator().Map()
	found := false
	for _, f := range m.Shards[0].Followers {
		if f == oldAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("demoted leader %s missing from follower set %v", oldAddr, m.Shards[0].Followers)
	}
	// The demoted node still answers probes slowly; restore it so the
	// post-demotion writes below are not throttled through it.
	slow.Server().SetServeDelay(0)
	for i, task := range makeTasks(403, 4, dim) {
		if _, err := sc.ReportTask(task); err != nil {
			t.Fatalf("post-demotion report %d: %v", i, err)
		}
	}
	if !cl.Quiesce(5 * time.Second) {
		t.Fatal("cluster did not quiesce after demotion")
	}
	if got := cl.LeaderOf(0).Server().Store().Len(); got != 12 {
		t.Fatalf("new leader holds %d tasks, want 12", got)
	}
}

// TestScrubRepairsFollowerOverNetwork flips a byte in a follower's
// on-disk log while the cluster runs and checks the node's background
// scrubber pulls the quarantined range back from the leader over the
// wire, ending byte-identical.
func TestScrubRepairsFollowerOverNetwork(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(1, 2)
	cfg.Dir = dir
	cfg.ScrubEvery = 10 * time.Millisecond
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 3
	sc := dialTest(cl.CoordinatorAddr())
	defer sc.Close()
	for i, task := range makeTasks(404, 20, dim) {
		if _, err := sc.ReportTask(task); err != nil {
			t.Fatalf("report task %d: %v", i, err)
		}
	}
	if !cl.Quiesce(5 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}

	leaderLog := filepath.Join(dir, "s0", "r0", "tasks.log")
	followerLog := filepath.Join(dir, "s0", "r1", "tasks.log")
	want, err := os.ReadFile(leaderLog)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(followerLog)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("follower log differs from leader before corruption")
	}

	// Bit rot in the middle of the follower's log, behind the store's back.
	f, err := os.OpenFile(followerLog, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{got[len(got)/2] ^ 0xff}
	if _, err := f.WriteAt(buf, int64(len(got)/2)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := os.ReadFile(followerLog)
		if err == nil && bytes.Equal(cur, want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scrubber did not repair the follower log byte-identical in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The repaired node survives a cold restart: close it and reopen the
	// store path implicitly by checking the bytes stayed equal.
	if cur, _ := os.ReadFile(followerLog); !bytes.Equal(cur, want) {
		t.Fatal("repaired log regressed")
	}
}

// TestHedgedReadsCoverSlowReplica makes the first replica in read order
// slow and checks a hedged client still answers fast: the hedge fires,
// the second replica wins, and the prior matches a sequential client's.
func TestHedgedReadsCoverSlowReplica(t *testing.T) {
	cl, err := Start(fastConfig(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 3
	up := dialTest(cl.CoordinatorAddr())
	defer up.Close()
	for i, task := range makeTasks(405, 10, dim) {
		if _, err := up.ReportTask(task); err != nil {
			t.Fatalf("report task %d: %v", i, err)
		}
	}
	if !cl.Quiesce(5 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}

	// Reads try followers first: replica 1 is order[0]. Make it slow.
	cl.Node(0, 1).Server().SetServeDelay(200 * time.Millisecond)

	control := dialTest(cl.CoordinatorAddr())
	defer control.Close()
	wantPrior, err := control.FetchMergedPrior(dim)
	if err != nil {
		t.Fatal(err)
	}

	fired := telemetry.ClusterHedgeFired.Value()
	won := telemetry.ClusterHedgeWon.Value()
	hedged := dialTest(cl.CoordinatorAddr())
	defer hedged.Close()
	hedged.SetHedge(HedgeConfig{Delay: 20 * time.Millisecond})
	start := time.Now()
	gotPrior, err := hedged.FetchMergedPrior(dim)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if telemetry.ClusterHedgeFired.Value() <= fired {
		t.Fatal("hedge never fired against the slow replica")
	}
	if telemetry.ClusterHedgeWon.Value() <= won {
		t.Fatal("secondary leg never won against the slow replica")
	}
	if elapsed >= 200*time.Millisecond {
		t.Fatalf("hedged read took %v, not faster than the slow replica's 200ms", elapsed)
	}
	if !bytes.Equal(gobBytes(t, wantPrior), gobBytes(t, gotPrior)) {
		t.Fatal("hedged prior differs from sequential prior")
	}
	// Later reads on the same client must keep working (connection
	// ownership returned correctly after the hedge).
	if _, err := hedged.FetchMergedPrior(dim); err != nil {
		t.Fatalf("second hedged fetch: %v", err)
	}
}

// TestHedgeFiresOnIndecisivePrimary: on a 2-replica shard whose
// follower (first in read order) is dead, the primary hedge leg
// settles indecisively — an immediate connection-refused — long before
// the hedge delay. The secondary must fire right then rather than
// never: with only two replicas there is no sequential fallback after
// the hedge, so skipping the leg would fail the read "shard
// unreachable" even though the leader is healthy.
func TestHedgeFiresOnIndecisivePrimary(t *testing.T) {
	cl, err := Start(fastConfig(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 3
	up := dialTest(cl.CoordinatorAddr())
	defer up.Close()
	for i, task := range makeTasks(406, 6, dim) {
		if _, err := up.ReportTask(task); err != nil {
			t.Fatalf("report task %d: %v", i, err)
		}
	}
	if !cl.Quiesce(5 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}
	control := dialTest(cl.CoordinatorAddr())
	defer control.Close()
	wantPrior, err := control.FetchMergedPrior(dim)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the follower. The coordinator only probes leaders, so the dead
	// node stays first in the read order.
	follower := cl.Node(0, 1)
	if follower == cl.LeaderOf(0) {
		follower = cl.Node(0, 0)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	fired := telemetry.ClusterHedgeFired.Value()
	hedged := DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		// One attempt per leg: the dead-follower leg settles (refused)
		// in microseconds, far inside the hedge delay.
		Retry:  edge.RetryPolicy{MaxAttempts: 1},
		Seed:   1,
		Logger: telemetry.Discard(),
	})
	defer hedged.Close()
	hedged.SetHedge(HedgeConfig{Delay: 2 * time.Second})
	start := time.Now()
	gotPrior, err := hedged.FetchMergedPrior(dim)
	if err != nil {
		t.Fatalf("hedged read with dead follower: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("read took %v: the hedge waited out the delay instead of firing on the indecisive primary", elapsed)
	}
	if telemetry.ClusterHedgeFired.Value() <= fired {
		t.Fatal("hedge never fired for the dead primary")
	}
	if !bytes.Equal(gobBytes(t, wantPrior), gobBytes(t, gotPrior)) {
		t.Fatal("hedged prior differs from control prior")
	}
}
