package cluster

import (
	"errors"
	"sort"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

// Hedged reads: a gray replica — alive but slow — stalls every read
// routed to it for a full round-trip timeout, long before the
// coordinator's EWMA demotes it. The client covers that window itself:
// if the first replica has not answered within a delay derived from its
// own recent read latencies — or settles indecisively before the delay
// elapses — the same fetch is fired at a second replica and the first
// valid answer wins. Validity is version-gated by
// the same read-your-writes floor as sequential reads (MinVersion), so
// a hedge can never win with a prior the client has already moved past
// — CodeLagging answers are indecisive and the hedge keeps waiting.

const (
	// DefaultHedgeMinDelay floors the adaptive hedge delay so jittery
	// sub-millisecond latencies cannot hedge every read.
	DefaultHedgeMinDelay = time.Millisecond
	// DefaultHedgeMaxDelay caps the adaptive delay (and is the delay
	// before any latency history exists): past this, waiting longer to
	// hedge costs more than the second request.
	DefaultHedgeMaxDelay = 250 * time.Millisecond
	// hedgeWindow is how many recent read latencies feed the adaptive
	// delay.
	hedgeWindow = 64
)

// HedgeConfig tunes hedged shard reads (see SetHedge).
type HedgeConfig struct {
	// Delay before the second request fires. 0 = adaptive: the p99 of
	// the client's recent shard-read latencies, clamped to
	// [MinDelay, MaxDelay].
	Delay time.Duration
	// MinDelay/MaxDelay clamp the adaptive delay
	// (0 = DefaultHedgeMinDelay / DefaultHedgeMaxDelay).
	MinDelay time.Duration
	MaxDelay time.Duration
}

// SetHedge enables hedged shard-prior reads. Requires at least two
// replicas per shard to do anything; with fewer the read path is the
// ordinary sequential scan. Call before issuing reads (the client is
// single-goroutine by contract).
func (c *ShardedClient) SetHedge(cfg HedgeConfig) { c.hedge = &cfg }

// recordLatency folds one successful shard-read duration into the ring
// behind the adaptive hedge delay.
func (c *ShardedClient) recordLatency(d time.Duration) {
	if len(c.lat) < hedgeWindow {
		c.lat = append(c.lat, d)
		return
	}
	c.lat[c.latIdx%hedgeWindow] = d
	c.latIdx++
}

// hedgeDelay resolves the current delay before a second request fires.
func (c *ShardedClient) hedgeDelay() time.Duration {
	lo, hi := c.hedge.MinDelay, c.hedge.MaxDelay
	if lo <= 0 {
		lo = DefaultHedgeMinDelay
	}
	if hi <= 0 {
		hi = DefaultHedgeMaxDelay
	}
	if c.hedge.Delay > 0 {
		return c.hedge.Delay
	}
	if len(c.lat) == 0 {
		return hi // no history yet: hedge conservatively
	}
	s := append([]time.Duration(nil), c.lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	p99 := s[(len(s)*99+99)/100-1]
	if p99 < lo {
		return lo
	}
	if p99 > hi {
		return hi
	}
	return p99
}

// takeConn removes addr's connection from the pool (dialing if absent)
// and hands ownership to the caller. A ResilientClient is not safe for
// concurrent use, so a connection lent to a hedge leg must not be
// reachable through the pool until the leg is done with it.
func (c *ShardedClient) takeConn(addr string) *edge.ResilientClient {
	rc, ok := c.conns[addr]
	if ok {
		delete(c.conns, addr)
	} else {
		rc = edge.DialResilient(addr, c.ropts)
	}
	rc.SetTraceParent(c.op)
	return rc
}

// hedgeResult is one leg's answer, carrying the borrowed connection
// back to whoever receives it.
type hedgeResult struct {
	addr      string
	rc        *edge.ResilientClient
	p         *dpprior.Prior
	v         uint64
	err       error
	dur       time.Duration
	secondary bool
}

// decisive reports whether a leg's answer settles the read: a success
// does, and so does CodeNoTasks (a cold shard answers the same
// everywhere). CodeLagging — the replica trails our floor — and
// transport failures are indecisive: the other leg may still do better.
func (r *hedgeResult) decisive() bool {
	if r.err == nil {
		return true
	}
	var se *edge.ServerError
	return errors.As(r.err, &se) && se.Code == edge.CodeNoTasks
}

// hedgedFetch races a shard-prior fetch between the first two replicas
// in read order: the primary fires immediately, the secondary after the
// hedge delay, first decisive answer wins. Returns nil when neither leg
// was decisive (the caller falls through to the remaining replicas);
// lastErr then carries the newest leg error.
func (c *ShardedClient) hedgedFetch(shard, dim int, addrs []string, floor uint64) (*hedgeResult, error) {
	delay := c.hedgeDelay()
	// Both connections leave the pool up front: the loser may still be
	// mid-round-trip when the winner returns, and nothing else may touch
	// it until it surfaces.
	primary := c.takeConn(addrs[0])
	secondary := c.takeConn(addrs[1])
	cached := c.priors[shard] // read-only under Delta.Apply; safe to share across legs
	results := make(chan hedgeResult, 2)
	fetch := func(addr string, rc *edge.ResilientClient, sec bool) {
		start := time.Now()
		p, v, err := rc.FetchPriorDeltaMin(dim, floor, floor, cached)
		results <- hedgeResult{addr: addr, rc: rc, p: p, v: v, err: err, dur: time.Since(start), secondary: sec}
	}
	go fetch(addrs[0], primary, false)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	fired := false
	outstanding := 1
	var winner *hedgeResult
	var lastErr error
	settle := func(r hedgeResult) {
		outstanding--
		if winner == nil && r.decisive() {
			winner = &r
			return
		}
		if r.err != nil {
			lastErr = r.err
		}
		// An indecisive (or post-win) leg that already finished its round
		// trip goes straight back into the pool.
		c.conns[r.addr] = r.rc
	}
	fire := func(reason string) {
		fired = true
		outstanding++
		telemetry.ClusterHedgeFired.Inc()
		if c.op != nil {
			c.op.Event("hedge-fired", trace.Str("replica", addrs[1]),
				trace.Str("reason", reason),
				trace.Int("delay-us", int64(delay/time.Microsecond)))
		}
		go fetch(addrs[1], secondary, true)
	}
	for outstanding > 0 && winner == nil {
		if fired {
			settle(<-results)
			continue
		}
		select {
		case r := <-results:
			settle(r)
			if winner == nil {
				// The primary settled indecisively (lagging follower, fast
				// connection refusal) before the timer: waiting out the rest
				// of the delay buys nothing, and returning without ever
				// trying the secondary would skip a replica the fallback
				// scan no longer covers. Fire the hedge now.
				fire("primary-indecisive")
			}
		case <-timer.C:
			fire("delay")
		}
	}
	if !fired {
		// The secondary connection was borrowed but never used.
		c.conns[addrs[1]] = secondary
	}
	if winner == nil {
		return nil, lastErr
	}
	c.conns[winner.addr] = winner.rc
	c.recordLatency(winner.dur)
	if winner.secondary {
		telemetry.ClusterHedgeWon.Inc()
		if c.op != nil {
			c.op.Event("hedge-won", trace.Str("replica", winner.addr))
		}
	}
	if outstanding > 0 {
		// The losing leg is still in flight. Ownership of its connection
		// passes to a reaper: when the straggler finally surfaces, the
		// connection is closed rather than pooled — its next caller would
		// otherwise block behind the stale round trip.
		telemetry.ClusterHedgeCancelled.Inc()
		go func() {
			r := <-results
			r.rc.Close()
		}()
	}
	return winner, nil
}
