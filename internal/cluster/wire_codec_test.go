package cluster

import (
	"bytes"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/wire"
)

// runCodecScenario feeds one deterministic workload — batched uploads,
// exactly as the sim does — through a sharded client pinned to the
// given codec preference, and returns the merged prior's gob bytes
// from a fresh post-quiesce client using the same preference.
func runCodecScenario(t *testing.T, pref wire.Preference) ([]byte, map[string]int) {
	t.Helper()
	cl, err := Start(fastConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 4
	tasks := makeTasks(421, 24, dim)
	sc := DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		Seed: 1, Logger: telemetry.Discard(), WireCodec: pref,
	})
	defer sc.Close()
	for i := 0; i < len(tasks); i += 6 {
		n, err := sc.BatchReportTasks(tasks[i : i+6])
		if err != nil {
			t.Fatalf("batch at %d: %v", i, err)
		}
		if n != 6 {
			t.Fatalf("batch at %d applied %d tasks, want 6", i, n)
		}
	}
	codecs := sc.Codecs()
	if !cl.Quiesce(10 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}
	fresh := DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		Seed: 2, Logger: telemetry.Discard(), WireCodec: pref,
	})
	defer fresh.Close()
	p, err := fresh.FetchMergedPrior(dim)
	if err != nil {
		t.Fatalf("merged prior: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("merged prior invalid: %v", err)
	}
	return gobBytes(t, p), codecs
}

// TestClusterCodecsByteIdentical: the same workload shipped over the
// binary codec and over the gob fallback must converge to
// byte-identical merged priors — the codec changes the wire format,
// never the replicated state. Doubles as the mixed-codec matrix at
// cluster scale: the gob run exercises legacy edges against negotiating
// servers, the auto run exercises negotiated binary end to end.
func TestClusterCodecsByteIdentical(t *testing.T) {
	binaryBytes, binaryCodecs := runCodecScenario(t, wire.PreferAuto)
	gobPriorBytes, gobCodecs := runCodecScenario(t, wire.PreferGob)
	if !bytes.Equal(binaryBytes, gobPriorBytes) {
		t.Fatalf("merged prior differs across codecs (%d vs %d bytes)",
			len(binaryBytes), len(gobPriorBytes))
	}
	if pref, _ := wire.DefaultPreference(); pref == wire.PreferGob {
		// DRDP_WIRE=gob latches every auto client onto the fallback by
		// design (the dual-codec chaos matrix), so only the byte-identity
		// half of this test is meaningful.
		t.Log("DRDP_WIRE=gob set: skipping connection-codec census")
	} else if binaryCodecs["binary"] == 0 || binaryCodecs["gob"] != 0 {
		t.Errorf("auto run connections = %v, want all binary", binaryCodecs)
	}
	if gobCodecs["gob"] == 0 || gobCodecs["binary"] != 0 {
		t.Errorf("gob run connections = %v, want all gob", gobCodecs)
	}
}

// TestClusterMixedCodecClients: a gob edge and a binary edge sharing
// one live cluster see the same state — uploads from either codec land
// in the same shards and both read paths assemble the same merged
// prior.
func TestClusterMixedCodecClients(t *testing.T) {
	cl, err := Start(fastConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 4
	tasks := makeTasks(422, 12, dim)
	bc := DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		Seed: 3, Logger: telemetry.Discard(), WireCodec: wire.PreferAuto,
	})
	defer bc.Close()
	gc := DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		Seed: 4, Logger: telemetry.Discard(), WireCodec: wire.PreferGob,
	})
	defer gc.Close()

	// Interleave uploads from both codecs.
	for i, task := range tasks {
		c := bc
		if i%2 == 1 {
			c = gc
		}
		if _, err := c.ReportTask(task); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	if !cl.Quiesce(10 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}
	bp, err := bc.FetchMergedPrior(dim)
	if err != nil {
		t.Fatalf("binary merged fetch: %v", err)
	}
	gp, err := gc.FetchMergedPrior(dim)
	if err != nil {
		t.Fatalf("gob merged fetch: %v", err)
	}
	if !bytes.Equal(gobBytes(t, bp), gobBytes(t, gp)) {
		t.Error("binary and gob clients fetched different merged priors")
	}
}
