package cluster

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

const (
	// DefaultProbeInterval paces leader liveness probes.
	DefaultProbeInterval = 50 * time.Millisecond
	// DefaultFailThreshold is how many consecutive failed probes declare
	// a leader dead.
	DefaultFailThreshold = 3
	// DefaultProbeTimeout bounds one probe round trip.
	DefaultProbeTimeout = 500 * time.Millisecond
)

// Coordinator owns the shard map: it serves GetShardMap to edges
// (conditionally, like the prior), probes every shard leader, and on
// leader loss promotes the follower with the longest acked log —
// highest durable store version, ties broken by the lowest replica
// index, so every coordinator decision is deterministic given the same
// observations. Each promotion bumps the map version; edges discover it
// through their next conditional fetch or a CodeNotLeader redirect.
type Coordinator struct {
	probeInterval time.Duration
	failThreshold int
	probeTimeout  time.Duration
	logger        *slog.Logger

	mu       sync.Mutex
	m        edge.ShardMap
	nodes    [][]*Node // [shard][replica]; nil entries are dead nodes
	failures []int
	addr     string

	stopCh chan struct{}
	wg     sync.WaitGroup
	ln     net.Listener
	closed bool
}

// NewCoordinator builds a coordinator over the given replica sets
// (nodes[shard][replica]; replica 0 must be the current leader). Probe
// cadence parameters at zero take the defaults.
func NewCoordinator(nodes [][]*Node, probeInterval time.Duration, failThreshold int, logger *slog.Logger) (*Coordinator, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one shard")
	}
	if probeInterval <= 0 {
		probeInterval = DefaultProbeInterval
	}
	if failThreshold <= 0 {
		failThreshold = DefaultFailThreshold
	}
	co := &Coordinator{
		probeInterval: probeInterval,
		failThreshold: failThreshold,
		probeTimeout:  DefaultProbeTimeout,
		logger:        telemetry.OrDefault(logger),
		nodes:         nodes,
		failures:      make([]int, len(nodes)),
		stopCh:        make(chan struct{}),
	}
	m := edge.ShardMap{Version: 1}
	for i, reps := range nodes {
		if len(reps) == 0 || reps[0] == nil {
			return nil, fmt.Errorf("cluster: shard %d has no leader", i)
		}
		sr := edge.ShardReplicas{Leader: reps[0].Addr()}
		for _, f := range reps[1:] {
			if f != nil {
				sr.Followers = append(sr.Followers, f.Addr())
			}
		}
		m.Shards = append(m.Shards, sr)
	}
	co.m = m
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	co.ln = ln
	co.addr = ln.Addr().String()
	co.wg.Add(2)
	go co.serve(ln)
	go co.probeLoop()
	return co, nil
}

// Addr is the coordinator's shard-map endpoint.
func (co *Coordinator) Addr() string { return co.addr }

// Map returns a copy of the current shard map.
func (co *Coordinator) Map() edge.ShardMap {
	co.mu.Lock()
	defer co.mu.Unlock()
	m := co.m
	m.Shards = append([]edge.ShardReplicas(nil), co.m.Shards...)
	return m
}

// serve answers GetShardMap over the edge protocol, negotiating the
// wire codec per connection exactly like a cloud server: a hello gets
// an ack and the binary framer, anything else speaks gob. The endpoint
// is deliberately tiny: one request kind, conditional on KnownVersion,
// everything else rejected.
func (co *Coordinator) serve(ln net.Listener) {
	defer co.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		co.wg.Add(1)
		go func() {
			defer co.wg.Done()
			defer conn.Close()
			br := bufio.NewReader(conn)
			codec := wire.CodecGob
			var bdec *wire.Decoder
			var benc *wire.Encoder
			var gdec *gob.Decoder
			var genc *gob.Encoder
			if wire.SniffHello(br) {
				prefer, _, err := wire.ReadHello(br)
				if err != nil {
					return
				}
				chosen := wire.CodecBinary
				if prefer == wire.CodecGob {
					chosen = wire.CodecGob
				}
				if err := wire.WriteAck(conn, chosen); err != nil {
					return
				}
				codec = chosen
			}
			if codec == wire.CodecBinary {
				telemetry.WireNegotiateServerBinary.Inc()
				bdec = wire.NewDecoder(br, edge.DefaultMaxFrameBytes)
				benc = wire.NewEncoder(conn)
				defer bdec.Release()
				defer benc.Release()
			} else {
				telemetry.WireNegotiateServerGob.Inc()
				gdec = gob.NewDecoder(br)
				genc = gob.NewEncoder(conn)
			}
			for {
				var req edge.Request
				var err error
				if codec == wire.CodecBinary {
					err = bdec.DecodeRequest(&req)
				} else {
					err = gdec.Decode(&req)
				}
				if err != nil {
					return
				}
				telemetry.ServerReqCounter(req.Kind.String()).Inc()
				var sp *trace.Span
				if req.TraceID != 0 {
					sp = trace.Default.Join(req.TraceID, req.ParentSpan,
						"serve "+req.Kind.String(), trace.Str("node", "coordinator"))
				}
				var resp edge.Response
				if req.Kind != edge.GetShardMap {
					resp = edge.Response{Err: "coordinator serves get-shard-map only", Code: edge.CodeBadRequest}
				} else {
					m := co.Map()
					if req.KnownVersion != 0 && req.KnownVersion == m.Version {
						resp = edge.Response{Version: m.Version, NotModified: true}
					} else {
						sp.Event("map", trace.Int("version", int64(m.Version)))
						resp = edge.Response{Map: &m, Version: m.Version}
					}
				}
				if resp.Err != "" {
					sp.EndErr(errors.New(resp.Err))
				} else {
					sp.End()
				}
				if codec == wire.CodecBinary {
					err = benc.EncodeResponse(&resp)
				} else {
					err = genc.Encode(&resp)
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

// probeLoop watches every shard leader and triggers failover after
// failThreshold consecutive missed probes.
func (co *Coordinator) probeLoop() {
	defer co.wg.Done()
	// One ticker for the life of the loop: a per-iteration time.After
	// allocates (and leaks until expiry) a timer every probe interval,
	// which at a 10ms cadence is real garbage on a long-lived coordinator.
	ticker := time.NewTicker(co.probeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-co.stopCh:
			return
		case <-ticker.C:
		}
		co.mu.Lock()
		leaders := make([]string, len(co.m.Shards))
		for i, s := range co.m.Shards {
			leaders[i] = s.Leader
		}
		co.mu.Unlock()
		for shard, addr := range leaders {
			start := time.Now()
			if co.probe(addr) {
				co.mu.Lock()
				co.failures[shard] = 0
				co.mu.Unlock()
				continue
			}
			// Only FAILED probes are retro-recorded: healthy probes at the
			// probe cadence would flood the flight recorder's recent ring.
			trace.Default.Record("probe", start, time.Since(start), errProbeFailed,
				trace.Int("shard", int64(shard)), trace.Str("leader", addr))
			co.mu.Lock()
			co.failures[shard]++
			trip := co.failures[shard] >= co.failThreshold
			co.mu.Unlock()
			if trip {
				co.failover(shard)
			}
		}
	}
}

// errProbeFailed marks a failed liveness probe in the flight recorder.
var errProbeFailed = errors.New("cluster: leader probe failed")

// probe round-trips one GetStats against a leader. A live listener that
// answers anything classifiable counts as alive; only transport-level
// failure (refused, reset, timeout) counts against the leader.
func (co *Coordinator) probe(addr string) bool {
	c, err := edge.Dial(addr, co.probeTimeout)
	if err != nil {
		return false
	}
	defer c.Close()
	c.SetRoundTripTimeout(co.probeTimeout)
	_, err = c.Stats()
	var se *edge.ServerError
	return err == nil || errors.As(err, &se)
}

// failover promotes the best surviving follower of a shard: the one
// with the longest durable log (highest store version), ties broken by
// the lowest replica index. The dead leader is dropped from the replica
// set, remaining followers are repointed at the new leader, and the map
// version bump redirects edges.
func (co *Coordinator) failover(shard int) {
	// The failover gets its own trace, pinned so a later burst of healthy
	// round traces can never evict the one record of what was promoted
	// and why. Subject to head sampling like every locally rooted trace.
	sp := trace.Default.StartTrace("failover", trace.Int("shard", int64(shard)))
	sp.Pin()
	defer sp.End()
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return
	}
	reps := co.nodes[shard]
	deadAddr := co.m.Shards[shard].Leader
	sp.SetAttr(trace.Str("dead", deadAddr))
	best := -1
	var bestVer uint64
	for i, n := range reps {
		if n == nil || n.Addr() == deadAddr {
			continue
		}
		v := n.Server().Store().Version()
		if best == -1 || v > bestVer {
			best, bestVer = i, v
		}
		// Equal versions keep the earlier (lowest-index) replica: the scan
		// order is ascending and > is strict.
	}
	if best == -1 {
		sp.Event("no-survivor")
		co.logger.Error("cluster: shard has no surviving replica to promote", "shard", shard)
		co.failures[shard] = 0
		return
	}
	promoted := reps[best]
	// Drop the dead leader from the tracked set.
	for i, n := range reps {
		if n != nil && n.Addr() == deadAddr {
			reps[i] = nil
		}
	}
	surviving := 0
	for _, n := range reps {
		if n != nil && n != promoted {
			surviving++
		}
	}
	promoted.Promote(surviving)
	sp.Event("promoted", trace.Str("node", promoted.Name()),
		trace.Int("log-version", int64(bestVer)), trace.Int("followers", int64(surviving)))
	sr := edge.ShardReplicas{Leader: promoted.Addr()}
	for _, n := range reps {
		if n != nil && n != promoted {
			sr.Followers = append(sr.Followers, n.Addr())
			n.Follow(promoted.Addr())
			sp.Event("repoint", trace.Str("node", n.Name()))
		}
	}
	co.m.Shards[shard] = sr
	co.m.Version++
	sp.SetAttr(trace.Int("map-version", int64(co.m.Version)))
	co.failures[shard] = 0
	telemetry.ClusterPromotions.Inc()
	co.logger.Warn("cluster: leader failover",
		"shard", shard, "dead", deadAddr, "promoted", promoted.Name(),
		"log-version", bestVer, "map-version", co.m.Version)
}

// Close stops probing and the map endpoint. The nodes are not closed —
// the cluster harness owns them.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil
	}
	co.closed = true
	co.mu.Unlock()
	close(co.stopCh)
	err := co.ln.Close()
	co.wg.Wait()
	return err
}
