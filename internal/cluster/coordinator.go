package cluster

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

const (
	// DefaultProbeInterval paces leader liveness probes.
	DefaultProbeInterval = 50 * time.Millisecond
	// DefaultFailThreshold is how many consecutive failed probes declare
	// a leader dead.
	DefaultFailThreshold = 3
	// DefaultProbeTimeout bounds one probe round trip.
	DefaultProbeTimeout = 500 * time.Millisecond
	// DefaultGrayCooldown is how long a demoted-for-slowness node is
	// passed over as a promotion candidate. A gray node usually has the
	// longest log — it was the leader until moments ago — so without a
	// cooldown the next trip promotes it right back and leadership
	// ping-pongs between the slow node and everyone else.
	DefaultGrayCooldown = 30 * time.Second
)

// Coordinator owns the shard map: it serves GetShardMap to edges
// (conditionally, like the prior), probes every shard leader, and on
// leader loss promotes the follower with the longest acked log —
// highest durable store version, ties broken by the lowest replica
// index, so every coordinator decision is deterministic given the same
// observations. Each promotion bumps the map version; edges discover it
// through their next conditional fetch or a CodeNotLeader redirect.
type Coordinator struct {
	probeInterval time.Duration
	failThreshold int
	probeTimeout  time.Duration
	logger        *slog.Logger

	mu       sync.Mutex
	m        edge.ShardMap
	nodes    [][]*Node // [shard][replica]; nil entries are dead nodes
	failures []int
	addr     string

	// Gray-failure policy (SetGrayPolicy): a leader whose EWMA of
	// successful probe latency stays above grayLatency for grayAfter
	// consecutive probes is demoted — alive, but too slow to lead.
	grayLatency  time.Duration
	grayAfter    int
	grayCooldown time.Duration
	ewma         []float64            // per-shard probe-latency EWMA, seconds; 0 = no sample yet
	grayCount    []int                // consecutive over-threshold probes per shard
	demotedAt    map[string]time.Time // addr → when it was demoted for slowness

	stopCh chan struct{}
	wg     sync.WaitGroup
	ln     net.Listener
	closed bool
}

// NewCoordinator builds a coordinator over the given replica sets
// (nodes[shard][replica]; replica 0 must be the current leader). Probe
// cadence parameters at zero take the defaults.
func NewCoordinator(nodes [][]*Node, probeInterval time.Duration, failThreshold int, logger *slog.Logger) (*Coordinator, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one shard")
	}
	if probeInterval <= 0 {
		probeInterval = DefaultProbeInterval
	}
	if failThreshold <= 0 {
		failThreshold = DefaultFailThreshold
	}
	co := &Coordinator{
		probeInterval: probeInterval,
		failThreshold: failThreshold,
		probeTimeout:  DefaultProbeTimeout,
		logger:        telemetry.OrDefault(logger),
		nodes:         nodes,
		failures:      make([]int, len(nodes)),
		grayCooldown:  DefaultGrayCooldown,
		ewma:          make([]float64, len(nodes)),
		grayCount:     make([]int, len(nodes)),
		demotedAt:     make(map[string]time.Time),
		stopCh:        make(chan struct{}),
	}
	m := edge.ShardMap{Version: 1}
	for i, reps := range nodes {
		if len(reps) == 0 || reps[0] == nil {
			return nil, fmt.Errorf("cluster: shard %d has no leader", i)
		}
		sr := edge.ShardReplicas{Leader: reps[0].Addr()}
		for _, f := range reps[1:] {
			if f != nil {
				sr.Followers = append(sr.Followers, f.Addr())
			}
		}
		m.Shards = append(m.Shards, sr)
	}
	co.m = m
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	co.ln = ln
	co.addr = ln.Addr().String()
	co.wg.Add(2)
	go co.serve(ln)
	go co.probeLoop()
	return co, nil
}

// Addr is the coordinator's shard-map endpoint.
func (co *Coordinator) Addr() string { return co.addr }

// Map returns a copy of the current shard map.
func (co *Coordinator) Map() edge.ShardMap {
	co.mu.Lock()
	defer co.mu.Unlock()
	m := co.m
	m.Shards = append([]edge.ShardReplicas(nil), co.m.Shards...)
	return m
}

// serve answers GetShardMap over the edge protocol, negotiating the
// wire codec per connection exactly like a cloud server: a hello gets
// an ack and the binary framer, anything else speaks gob. The endpoint
// is deliberately tiny: one request kind, conditional on KnownVersion,
// everything else rejected.
func (co *Coordinator) serve(ln net.Listener) {
	defer co.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		co.wg.Add(1)
		go func() {
			defer co.wg.Done()
			defer conn.Close()
			br := bufio.NewReader(conn)
			codec := wire.CodecGob
			var bdec *wire.Decoder
			var benc *wire.Encoder
			var gdec *gob.Decoder
			var genc *gob.Encoder
			if wire.SniffHello(br) {
				prefer, _, err := wire.ReadHello(br)
				if err != nil {
					return
				}
				chosen := wire.CodecBinary
				if prefer == wire.CodecGob {
					chosen = wire.CodecGob
				}
				if err := wire.WriteAck(conn, chosen); err != nil {
					return
				}
				codec = chosen
			}
			if codec == wire.CodecBinary {
				telemetry.WireNegotiateServerBinary.Inc()
				bdec = wire.NewDecoder(br, edge.DefaultMaxFrameBytes)
				benc = wire.NewEncoder(conn)
				defer bdec.Release()
				defer benc.Release()
			} else {
				telemetry.WireNegotiateServerGob.Inc()
				gdec = gob.NewDecoder(br)
				genc = gob.NewEncoder(conn)
			}
			for {
				var req edge.Request
				var err error
				if codec == wire.CodecBinary {
					err = bdec.DecodeRequest(&req)
				} else {
					err = gdec.Decode(&req)
				}
				if err != nil {
					return
				}
				telemetry.ServerReqCounter(req.Kind.String()).Inc()
				var sp *trace.Span
				if req.TraceID != 0 {
					sp = trace.Default.Join(req.TraceID, req.ParentSpan,
						"serve "+req.Kind.String(), trace.Str("node", "coordinator"))
				}
				var resp edge.Response
				if req.Kind != edge.GetShardMap {
					resp = edge.Response{Err: "coordinator serves get-shard-map only", Code: edge.CodeBadRequest}
				} else {
					m := co.Map()
					if req.KnownVersion != 0 && req.KnownVersion == m.Version {
						resp = edge.Response{Version: m.Version, NotModified: true}
					} else {
						sp.Event("map", trace.Int("version", int64(m.Version)))
						resp = edge.Response{Map: &m, Version: m.Version}
					}
				}
				if resp.Err != "" {
					sp.EndErr(errors.New(resp.Err))
				} else {
					sp.End()
				}
				if codec == wire.CodecBinary {
					err = benc.EncodeResponse(&resp)
				} else {
					err = genc.Encode(&resp)
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

// probeLoop watches every shard leader and triggers failover after
// failThreshold consecutive missed probes.
func (co *Coordinator) probeLoop() {
	defer co.wg.Done()
	// One ticker for the life of the loop: a per-iteration time.After
	// allocates (and leaks until expiry) a timer every probe interval,
	// which at a 10ms cadence is real garbage on a long-lived coordinator.
	ticker := time.NewTicker(co.probeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-co.stopCh:
			return
		case <-ticker.C:
		}
		co.mu.Lock()
		leaders := make([]string, len(co.m.Shards))
		for i, s := range co.m.Shards {
			leaders[i] = s.Leader
		}
		co.mu.Unlock()
		for shard, addr := range leaders {
			start := time.Now()
			if co.probe(addr) {
				co.observeHealthy(shard, addr, time.Since(start))
				continue
			}
			// Only FAILED probes are retro-recorded: healthy probes at the
			// probe cadence would flood the flight recorder's recent ring.
			trace.Default.Record("probe", start, time.Since(start), errProbeFailed,
				trace.Int("shard", int64(shard)), trace.Str("leader", addr))
			co.mu.Lock()
			name := co.nodeNameLocked(shard, addr)
			co.failures[shard]++
			trip := co.failures[shard] >= co.failThreshold
			co.mu.Unlock()
			telemetry.ReplicaHealthGauge(name).Set(0)
			if trip {
				co.failover(shard)
			}
		}
	}
}

// errProbeFailed marks a failed liveness probe in the flight recorder.
var errProbeFailed = errors.New("cluster: leader probe failed")

// SetGrayPolicy arms gray-failure detection (safe on a live
// coordinator): when the EWMA of a leader's successful probe latency
// stays above latency for after consecutive probes (0 = the fail
// threshold), the leader is demoted — the best follower is promoted and
// the slow leader stays in the replica set as a follower. latency must
// stay well under the probe timeout, or a slow leader reads as dead and
// ordinary failover wins the race. Zero latency disarms.
func (co *Coordinator) SetGrayPolicy(latency time.Duration, after int) {
	co.mu.Lock()
	co.grayLatency = latency
	co.grayAfter = after
	if co.grayAfter <= 0 {
		co.grayAfter = co.failThreshold
	}
	co.mu.Unlock()
}

// grayAlpha weights the newest sample in the probe-latency EWMA: high
// enough that a few slow probes move the average, low enough that one
// scheduler hiccup does not demote a healthy leader.
const grayAlpha = 0.3

// observeHealthy folds one successful probe into the shard's latency
// EWMA, publishes the replica health score, and demotes the leader when
// the gray policy trips.
func (co *Coordinator) observeHealthy(shard int, addr string, rtt time.Duration) {
	co.mu.Lock()
	name := co.nodeNameLocked(shard, addr)
	co.failures[shard] = 0
	if co.ewma[shard] == 0 {
		co.ewma[shard] = rtt.Seconds()
	} else {
		co.ewma[shard] = grayAlpha*rtt.Seconds() + (1-grayAlpha)*co.ewma[shard]
	}
	avg := co.ewma[shard]
	gray := co.grayLatency.Seconds()
	trip := false
	if co.grayLatency > 0 && avg > gray {
		co.grayCount[shard]++
		trip = co.grayCount[shard] >= co.grayAfter
		co.logger.Debug("cluster: probe over gray threshold",
			"shard", shard, "leader", name, "rtt", rtt,
			"ewma-ms", avg*1e3, "count", co.grayCount[shard])
	} else {
		co.grayCount[shard] = 0
	}
	co.mu.Unlock()
	// Health score in [0,1]: 1 at or under the gray threshold, decaying
	// toward 0 as the EWMA overshoots it. Without a policy every live
	// leader scores 1 — the gauge still distinguishes alive from dead.
	score := 1.0
	if gray > 0 && avg > gray {
		score = gray / avg
	}
	telemetry.ReplicaHealthGauge(name).Set(score)
	if trip {
		co.demote(shard)
	}
}

// nodeNameLocked resolves a replica address to its metric label,
// falling back to the address for nodes the coordinator no longer
// tracks. Caller holds co.mu.
func (co *Coordinator) nodeNameLocked(shard int, addr string) string {
	for _, n := range co.nodes[shard] {
		if n != nil && n.Addr() == addr {
			return n.Name()
		}
	}
	return addr
}

// bestFollowerLocked picks the promotion target among reps, excluding
// the current leader at excludeAddr: the longest durable log (highest
// store version), ties broken by the lowest replica index (the scan
// order is ascending and > is strict), so every coordinator decision
// is deterministic given the same observations. Nodes demoted for
// slowness within the gray cooldown are passed over — a gray node
// usually holds the longest log, and promoting it right back
// ping-pongs leadership — unless no other candidate exists: slow beats
// unavailable. Caller holds co.mu.
func (co *Coordinator) bestFollowerLocked(reps []*Node, excludeAddr string) (int, uint64) {
	best, cooling := -1, -1
	var bestVer, coolingVer uint64
	now := time.Now()
	for i, n := range reps {
		if n == nil || n.Addr() == excludeAddr {
			continue
		}
		v := n.Server().Store().Version()
		if at, ok := co.demotedAt[n.Addr()]; ok && now.Sub(at) < co.grayCooldown {
			if cooling == -1 || v > coolingVer {
				cooling, coolingVer = i, v
			}
			continue
		}
		if best == -1 || v > bestVer {
			best, bestVer = i, v
		}
	}
	if best == -1 {
		return cooling, coolingVer
	}
	return best, bestVer
}

// probe round-trips one GetStats against a leader. A live listener that
// answers anything classifiable counts as alive; only transport-level
// failure (refused, reset, timeout) counts against the leader.
func (co *Coordinator) probe(addr string) bool {
	c, err := edge.Dial(addr, co.probeTimeout)
	if err != nil {
		return false
	}
	defer c.Close()
	c.SetRoundTripTimeout(co.probeTimeout)
	_, err = c.Stats()
	var se *edge.ServerError
	return err == nil || errors.As(err, &se)
}

// failover promotes the best surviving follower of a shard: the one
// with the longest durable log (highest store version), ties broken by
// the lowest replica index. The dead leader is dropped from the replica
// set, remaining followers are repointed at the new leader, and the map
// version bump redirects edges.
func (co *Coordinator) failover(shard int) {
	// The failover gets its own trace, pinned so a later burst of healthy
	// round traces can never evict the one record of what was promoted
	// and why. Subject to head sampling like every locally rooted trace.
	sp := trace.Default.StartTrace("failover", trace.Int("shard", int64(shard)))
	sp.Pin()
	defer sp.End()
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return
	}
	reps := co.nodes[shard]
	deadAddr := co.m.Shards[shard].Leader
	sp.SetAttr(trace.Str("dead", deadAddr))
	best, bestVer := co.bestFollowerLocked(reps, deadAddr)
	if best == -1 {
		sp.Event("no-survivor")
		co.logger.Error("cluster: shard has no surviving replica to promote", "shard", shard)
		co.failures[shard] = 0
		return
	}
	promoted := reps[best]
	// Drop the dead leader from the tracked set.
	for i, n := range reps {
		if n != nil && n.Addr() == deadAddr {
			reps[i] = nil
		}
	}
	surviving := 0
	for _, n := range reps {
		if n != nil && n != promoted {
			surviving++
		}
	}
	promoted.Promote(surviving)
	sp.Event("promoted", trace.Str("node", promoted.Name()),
		trace.Int("log-version", int64(bestVer)), trace.Int("followers", int64(surviving)))
	sr := edge.ShardReplicas{Leader: promoted.Addr()}
	for _, n := range reps {
		if n != nil && n != promoted {
			sr.Followers = append(sr.Followers, n.Addr())
			n.Follow(promoted.Addr())
			sp.Event("repoint", trace.Str("node", n.Name()))
		}
	}
	co.m.Shards[shard] = sr
	co.m.Version++
	sp.SetAttr(trace.Int("map-version", int64(co.m.Version)))
	co.failures[shard] = 0
	co.grayCount[shard] = 0
	co.ewma[shard] = 0 // the new leader starts with a fresh latency history
	telemetry.ClusterPromotions.Inc()
	co.logger.Warn("cluster: leader failover",
		"shard", shard, "dead", deadAddr, "promoted", promoted.Name(),
		"log-version", bestVer, "map-version", co.m.Version)
}

// demote handles a gray leader — alive but persistently slow. The best
// follower is promoted exactly as in failover, but the old leader is
// kept in the replica set: demoted in place (writes refused from the
// next request on) and repointed at the new leader as an ordinary
// pulling follower. Its log is intact and up to date, so it keeps
// serving version-gated reads, and after the gray cooldown it is a
// promotion candidate again.
func (co *Coordinator) demote(shard int) {
	sp := trace.Default.StartTrace("demotion", trace.Int("shard", int64(shard)))
	sp.Pin()
	defer sp.End()
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return
	}
	reps := co.nodes[shard]
	slowAddr := co.m.Shards[shard].Leader
	sp.SetAttr(trace.Str("slow", slowAddr))
	var old *Node
	for _, n := range reps {
		if n != nil && n.Addr() == slowAddr {
			old = n
		}
	}
	best, bestVer := co.bestFollowerLocked(reps, slowAddr)
	if best == -1 || old == nil {
		// Single-replica shard (or the slow leader is already untracked):
		// nothing to demote to. Slow beats unavailable.
		sp.Event("no-follower")
		co.grayCount[shard] = 0
		return
	}
	// Demote before promoting so there is never a moment with two
	// writable leaders; writes racing the switch get CodeNotLeader and
	// re-resolve through the bumped map.
	old.Server().SetFollower(true)
	promoted := reps[best]
	surviving := 0
	for _, n := range reps {
		if n != nil && n != promoted {
			surviving++
		}
	}
	promoted.Promote(surviving)
	sp.Event("promoted", trace.Str("node", promoted.Name()),
		trace.Int("log-version", int64(bestVer)), trace.Int("followers", int64(surviving)))
	sr := edge.ShardReplicas{Leader: promoted.Addr()}
	for _, n := range reps {
		if n != nil && n != promoted {
			sr.Followers = append(sr.Followers, n.Addr())
			n.Follow(promoted.Addr())
			sp.Event("repoint", trace.Str("node", n.Name()))
		}
	}
	co.m.Shards[shard] = sr
	co.m.Version++
	sp.SetAttr(trace.Int("map-version", int64(co.m.Version)))
	co.failures[shard] = 0
	co.grayCount[shard] = 0
	co.ewma[shard] = 0 // the new leader starts with a fresh latency history
	co.demotedAt[old.Addr()] = time.Now()
	telemetry.ClusterDemotions.Inc()
	telemetry.Events.RecordKV("cluster", "demoted", "node", old.Name())
	co.logger.Warn("cluster: gray leader demoted",
		"shard", shard, "slow", old.Name(), "promoted", promoted.Name(),
		"log-version", bestVer, "map-version", co.m.Version)
}

// Close stops probing and the map endpoint. The nodes are not closed —
// the cluster harness owns them.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil
	}
	co.closed = true
	co.mu.Unlock()
	close(co.stopCh)
	err := co.ln.Close()
	co.wg.Wait()
	return err
}
