package cluster

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/telemetry"
)

// fastConfig is the chaos-test cadence: millisecond replication pulls
// and sub-second failure detection so a failover completes well inside
// a test timeout.
func fastConfig(shards, replicas int) Config {
	return Config{
		Shards:        shards,
		Replicas:      replicas,
		Build:         dpprior.BuildOptions{Alpha: 1, Seed: 7},
		SyncReplicas:  1,
		AckTimeout:    300 * time.Millisecond,
		PullInterval:  2 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 2,
		Seed:          11,
		Logger:        telemetry.Discard(),
	}
}

func makeTasks(seed int64, k, dim int) []dpprior.TaskPosterior {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]dpprior.TaskPosterior, k)
	for i := range tasks {
		mu := make(mat.Vec, dim)
		for j := range mu {
			mu[j] = rng.NormFloat64()
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(0.1)
		tasks[i] = dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
	}
	return tasks
}

func outlierTask(dim int) dpprior.TaskPosterior {
	mu := make(mat.Vec, dim)
	for j := range mu {
		mu[j] = -40 - float64(j)
	}
	sigma := mat.Eye(dim)
	sigma.ScaleBy(1e-4)
	return dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100000}
}

func gobBytes(t *testing.T, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func dialTest(coordAddr string) *ShardedClient {
	return DialSharded(coordAddr, edge.ResilientOptions{Seed: 1, Logger: telemetry.Discard()})
}

// runScenario feeds the same deterministic task list into a fresh 3×2
// cluster, optionally killing shard 0's leader halfway through, and
// returns the merged prior as fetched by a brand-new client after the
// cluster quiesces. The cluster is torn down before returning so two
// scenarios never coexist.
func runScenario(t *testing.T, kill bool) []byte {
	t.Helper()
	cl, err := Start(fastConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 4
	tasks := makeTasks(301, 24, dim)
	sc := dialTest(cl.CoordinatorAddr())
	defer sc.Close()
	for i, task := range tasks {
		if kill && i == len(tasks)/2 {
			old := cl.Coordinator().Map().Shards[0].Leader
			if _, err := cl.KillLeader(0); err != nil {
				t.Fatalf("kill leader: %v", err)
			}
			if !cl.WaitFailover(0, old, 5*time.Second) {
				t.Fatal("failover did not complete")
			}
		}
		if _, err := sc.ReportTask(task); err != nil {
			t.Fatalf("report task %d: %v", i, err)
		}
	}
	if !cl.Quiesce(10 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}
	// A fresh client (no cached map, no cached priors) sees the final
	// state cold — exactly what a rebooted edge would fetch.
	fresh := dialTest(cl.CoordinatorAddr())
	defer fresh.Close()
	p, err := fresh.FetchMergedPrior(dim)
	if err != nil {
		t.Fatalf("merged prior: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("merged prior invalid: %v", err)
	}
	return gobBytes(t, p)
}

// TestClusterFailoverByteIdenticalPriors is the acceptance test: a
// 3-shard × 2-replica cluster with the leader of shard 0 killed
// mid-round must converge to a merged prior byte-identical to an
// unfailed control run over the same task sequence.
func TestClusterFailoverByteIdenticalPriors(t *testing.T) {
	control := runScenario(t, false)
	failed := runScenario(t, true)
	if !bytes.Equal(control, failed) {
		t.Fatalf("merged prior after failover differs from control run (%d vs %d bytes)",
			len(control), len(failed))
	}
	if telemetry.ClusterPromotions.Value() == 0 {
		t.Error("no promotion was recorded")
	}
}

// TestClusterVerdictsSurviveFailover: the admission judge's quarantine
// verdicts replicate with the task log, so a poisoned task stays
// rejected — and the served prior stays byte-identical — after the
// leader that judged it dies.
func TestClusterVerdictsSurviveFailover(t *testing.T) {
	cfg := fastConfig(1, 2)
	// MinScored pinned to the full population: one deterministic
	// judgment round (see the edge admission tests).
	cfg.Admission = edge.AdmissionConfig{Quarantine: true, TrimFrac: 0.4, MinScored: 9}
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 3
	sc := dialTest(cl.CoordinatorAddr())
	defer sc.Close()
	poison := outlierTask(dim)
	for _, task := range makeTasks(302, 8, dim) {
		if _, err := sc.ReportTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc.ReportTask(poison); err != nil {
		t.Fatal(err)
	}
	leader := cl.LeaderOf(0)
	deadline := time.Now().Add(5 * time.Second)
	for leader.Server().Stats().Quarantined != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("leader never quarantined the outlier (got %d)", leader.Server().Stats().Quarantined)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cl.Quiesce(10 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}
	// The verdict sidecar reached the follower before the leader dies.
	follower := cl.Node(0, 1)
	quarantined := 0
	for _, q := range follower.Server().Store().Verdicts() {
		if q {
			quarantined++
		}
	}
	if quarantined != 1 {
		t.Fatalf("follower replicated %d quarantine verdicts, want 1", quarantined)
	}
	before, bv, err := leader.Server().Prior()
	if err != nil {
		t.Fatal(err)
	}
	beforeBytes := gobBytes(t, before)

	old := cl.Coordinator().Map().Shards[0].Leader
	if _, err := cl.KillLeader(0); err != nil {
		t.Fatal(err)
	}
	if !cl.WaitFailover(0, old, 5*time.Second) {
		t.Fatal("failover did not complete")
	}
	promoted := cl.LeaderOf(0)
	if promoted == nil {
		t.Fatal("no leader after failover")
	}
	promoted.Server().WaitCaughtUp()
	if got := promoted.Server().Stats().Quarantined; got != 1 {
		t.Fatalf("promoted leader Quarantined = %d, want 1", got)
	}
	after, av, err := promoted.Server().Prior()
	if err != nil {
		t.Fatal(err)
	}
	if av != bv {
		t.Fatalf("promoted prior version %d, want %d", av, bv)
	}
	if !bytes.Equal(beforeBytes, gobBytes(t, after)) {
		t.Fatal("promoted leader serves different prior bytes than the dead leader did")
	}
	// Regression: re-uploading the poisoned content is absorbed by the
	// dedupe set — no new append, no re-judgment, still rejected.
	n := promoted.Server().Store().Len()
	if _, err := sc.ReportTask(poison); err != nil {
		t.Fatalf("deduped resend refused: %v", err)
	}
	if promoted.Server().Store().Len() != n {
		t.Fatal("poisoned resend appended a second copy after failover")
	}
	if got := promoted.Server().Stats().Quarantined; got != 1 {
		t.Fatalf("post-resend Quarantined = %d, want 1", got)
	}
}

// TestFollowerTornTailRestartCatchup: a follower that crashed
// mid-stream (torn frame at the log tail) truncates the bad tail on
// restart and re-requests from its last good sequence, converging to a
// log byte-identical to the leader's.
func TestFollowerTornTailRestartCatchup(t *testing.T) {
	base := t.TempDir()
	build := dpprior.BuildOptions{Alpha: 1, Seed: 7}
	leader, err := StartNode(NodeConfig{
		Shard: 0, Replica: 0, Dir: filepath.Join(base, "r0"),
		Build: build, Seed: 21, Logger: telemetry.Discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	followerCfg := NodeConfig{
		Shard: 0, Replica: 1, Dir: filepath.Join(base, "r1"),
		Build: build, LeaderAddr: leader.Addr(),
		PullInterval: 2 * time.Millisecond, CatchupJitter: -1,
		Seed: 21, Logger: telemetry.Discard(),
	}
	follower, err := StartNode(followerCfg)
	if err != nil {
		t.Fatal(err)
	}

	const dim = 3
	c, err := edge.Dial(leader.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Fewer tasks than the snapshot threshold: the whole history stays
	// in tasks.log on both sides, so the files are directly comparable.
	for _, task := range makeTasks(303, 10, dim) {
		if _, err := c.ReportTask(task); err != nil {
			t.Fatal(err)
		}
	}
	waitVersion := func(n *Node, want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for n.Server().Store().Version() < want {
			if time.Now().After(deadline) {
				t.Fatalf("node %s stuck at version %d, want %d", n.Name(), n.Server().Store().Version(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	target := leader.Server().Store().Version()
	waitVersion(follower, target)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the follower's log tail mid-frame.
	logPath := filepath.Join(base, "r1", "tasks.log")
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	follower, err = StartNode(followerCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	rec := follower.Server().Store().Recovery()
	if !rec.Truncated || rec.TruncatedBytes == 0 {
		t.Fatalf("restart did not report the torn tail: %+v", rec)
	}
	waitVersion(follower, target)

	leaderLog, err := os.ReadFile(filepath.Join(base, "r0", "tasks.log"))
	if err != nil {
		t.Fatal(err)
	}
	followerLog, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(leaderLog, followerLog) {
		t.Fatalf("follower log (%d bytes) differs from leader log (%d bytes) after catch-up",
			len(followerLog), len(leaderLog))
	}
	if follower.Lag() != 0 {
		t.Fatalf("caught-up follower reports lag %d", follower.Lag())
	}
}

// TestShardedClientDedupeRouting: fingerprint routing is stable, so a
// full re-upload of a fleet's tasks lands every task on the shard that
// already holds it and the dedupe set absorbs all of them.
func TestShardedClientDedupeRouting(t *testing.T) {
	cfg := fastConfig(3, 1)
	cfg.SyncReplicas = 0 // single replica per shard: nothing to ack
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dim = 4
	tasks := makeTasks(304, 9, dim)
	sc := dialTest(cl.CoordinatorAddr())
	defer sc.Close()
	for _, task := range tasks {
		if _, err := sc.ReportTask(task); err != nil {
			t.Fatal(err)
		}
	}
	total := func() int {
		n := 0
		for s := 0; s < cfg.Shards; s++ {
			n += cl.LeaderOf(s).Server().Store().Len()
		}
		return n
	}
	if got := total(); got != len(tasks) {
		t.Fatalf("cluster holds %d tasks, want %d", got, len(tasks))
	}
	// Re-report the whole fleet (an ambiguous-retry storm): routing by
	// fingerprint sends each copy to the shard that already has it.
	for _, task := range tasks {
		if _, err := sc.ReportTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if got := total(); got != len(tasks) {
		t.Fatalf("re-upload grew the cluster to %d tasks, want %d", got, len(tasks))
	}
	if !cl.Quiesce(10 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}
	p, err := sc.FetchMergedPrior(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("merged prior invalid: %v", err)
	}
}
