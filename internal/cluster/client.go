package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

// ShardedClient is an edge's view of the replicated shard tier: it
// caches the coordinator's shard map (conditional fetch, like the
// prior), routes each task upload to its shard by fingerprint, and
// assembles the global DP prior by fetching every shard's prior and
// merging the component sets client-side (dpprior.MergePriors).
//
// Reads honor read-your-writes: every prior fetch carries the highest
// version this client has already applied for that shard, and a replica
// that trails it answers CodeLagging — the client then falls through
// leader-ward. Writes follow redirects: a CodeNotLeader answer (or a
// dead leader) triggers a forced map refresh and a retry against the
// new leader.
//
// Not safe for concurrent use; give each device its own.
type ShardedClient struct {
	coord  *edge.ResilientClient
	ropts  edge.ResilientOptions
	logger *slog.Logger

	m       *edge.ShardMap
	conns   map[string]*edge.ResilientClient
	applied []uint64         // per shard: highest built version applied
	priors  []*dpprior.Prior // per shard: cached prior at applied[i]

	hedge  *HedgeConfig    // hedged shard reads (nil = sequential only)
	lat    []time.Duration // ring of recent read latencies (adaptive hedge delay)
	latIdx int

	parent *trace.Span // round span set by the caller (nil = untraced)
	op     *trace.Span // current operation span, nested under parent
}

// SetTraceParent attaches subsequent operations to sp as child spans
// (nil detaches). The device sets its round span here, so every upload,
// shard fetch, redirect, and underlying RPC lands in the round's trace.
func (c *ShardedClient) SetTraceParent(sp *trace.Span) { c.parent = sp }

// noopEnd keeps untraced beginOp calls allocation-free.
var noopEnd = func(error) {}

// beginOp opens an operation span under the current op — so a ShardPrior
// issued by FetchMergedPrior nests under its "merged-fetch" span — or
// under the round parent, and points the coordinator connection at it.
// The returned func ends the span and restores the previous op.
func (c *ShardedClient) beginOp(name string) func(error) {
	anchor := c.op
	if anchor == nil {
		anchor = c.parent
	}
	if anchor == nil {
		return noopEnd
	}
	sp := anchor.Child(name)
	prev := c.op
	c.op = sp
	c.coord.SetTraceParent(sp)
	return func(err error) {
		sp.EndErr(err)
		c.op = prev
		c.coord.SetTraceParent(prev)
	}
}

// DialSharded connects a sharded client to the coordinator at coordAddr.
// ropts configures every underlying connection (coordinator and nodes).
func DialSharded(coordAddr string, ropts edge.ResilientOptions) *ShardedClient {
	return &ShardedClient{
		coord:  edge.DialResilient(coordAddr, ropts),
		ropts:  ropts,
		logger: telemetry.OrDefault(ropts.Logger),
		conns:  make(map[string]*edge.ResilientClient),
	}
}

// refreshMap ensures a current shard map. force drops the conditional
// check (used after a redirect or a dead node). A version bump resizes
// the per-shard caches only when the shard count changed.
func (c *ShardedClient) refreshMap(force bool) error {
	known := uint64(0)
	if !force && c.m != nil {
		known = c.m.Version
	}
	m, version, err := c.coord.FetchShardMap(known)
	if err != nil {
		if c.m != nil {
			// Degrade: keep routing with the cached map; a stale leader
			// answer redirects us back here with force.
			return nil
		}
		return fmt.Errorf("cluster: fetch shard map: %w", err)
	}
	if m == nil { // not modified
		return nil
	}
	if c.m != nil && version != c.m.Version {
		telemetry.ClusterRedirects.Inc()
		if c.op != nil {
			c.op.Event("redirect", trace.Int("map-version", int64(version)))
		}
	}
	c.m = m
	if len(c.applied) != len(m.Shards) {
		c.applied = make([]uint64, len(m.Shards))
		c.priors = make([]*dpprior.Prior, len(m.Shards))
	}
	return nil
}

// conn returns (dialing lazily) the resilient connection to addr,
// pointed at the current operation span so its calls trace correctly.
func (c *ShardedClient) conn(addr string) *edge.ResilientClient {
	rc, ok := c.conns[addr]
	if !ok {
		rc = edge.DialResilient(addr, c.ropts)
		c.conns[addr] = rc
	}
	rc.SetTraceParent(c.op)
	return rc
}

// Map returns the cached shard map (fetching it on first use).
func (c *ShardedClient) Map() (*edge.ShardMap, error) {
	if err := c.refreshMap(false); err != nil {
		return nil, err
	}
	return c.m, nil
}

// ReportTask routes one task posterior to its shard's leader, following
// at most two redirects (forced map refreshes) when the leader moved.
// The shard is chosen by content fingerprint, so retries and redirects
// always land the task on the same shard.
func (c *ShardedClient) ReportTask(t dpprior.TaskPosterior) (uint64, error) {
	end := c.beginOp("upload")
	v, err := c.reportTask(t)
	end(err)
	return v, err
}

func (c *ShardedClient) reportTask(t dpprior.TaskPosterior) (uint64, error) {
	if err := c.refreshMap(false); err != nil {
		return 0, err
	}
	shard := c.m.ShardOf(t.Fingerprint())
	if c.op != nil {
		c.op.SetAttr(trace.Int("shard", int64(shard)))
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if err := c.refreshMap(true); err != nil {
				return 0, err
			}
			if s := c.m.ShardOf(t.Fingerprint()); s != shard {
				shard = s
			}
		}
		v, err := c.conn(c.m.Shards[shard].Leader).ReportTask(t)
		if err == nil {
			return v, nil
		}
		lastErr = err
		var se *edge.ServerError
		if errors.As(err, &se) && se.Code != edge.CodeNotLeader {
			// A real rejection (validation, overload budget exhausted):
			// redirecting cannot help.
			return 0, err
		}
		// Not-leader or transport failure: the topology likely moved.
		// Give the coordinator a beat to notice before re-resolving.
		time.Sleep(10 * time.Millisecond)
	}
	return 0, fmt.Errorf("cluster: report to shard %d failed after redirects: %w", shard, lastErr)
}

// BatchReportTasks ships a round's task posteriors in one framed write
// per shard: the tasks are grouped by fingerprint-routed shard
// (preserving upload order within each group, so per-shard append order
// matches the sequential path exactly) and each group goes up as one
// BatchAddTask. Returns the number of tasks applied. A shard whose
// leader moved gets the same redirect handling as single uploads.
func (c *ShardedClient) BatchReportTasks(ts []dpprior.TaskPosterior) (int, error) {
	end := c.beginOp("batch-upload")
	n, err := c.batchReportTasks(ts)
	end(err)
	return n, err
}

func (c *ShardedClient) batchReportTasks(ts []dpprior.TaskPosterior) (int, error) {
	if len(ts) == 0 {
		return 0, nil
	}
	if err := c.refreshMap(false); err != nil {
		return 0, err
	}
	groups := make(map[int][]dpprior.TaskPosterior)
	for _, t := range ts {
		shard := c.m.ShardOf(t.Fingerprint())
		groups[shard] = append(groups[shard], t)
	}
	done := 0
	for shard := 0; shard < len(c.m.Shards); shard++ {
		batch, ok := groups[shard]
		if !ok {
			continue
		}
		var lastErr error
		sent := false
		for attempt := 0; attempt < 3 && !sent; attempt++ {
			if attempt > 0 {
				if err := c.refreshMap(true); err != nil {
					return done, err
				}
			}
			_, n, err := c.conn(c.m.Shards[shard].Leader).BatchReportTasks(batch)
			if err == nil {
				done += n
				sent = true
				break
			}
			lastErr = err
			var se *edge.ServerError
			if errors.As(err, &se) && se.Code != edge.CodeNotLeader {
				return done, err
			}
			// Not-leader or transport failure: re-resolve and retry. The
			// retry is safe — cluster nodes dedupe uploads by fingerprint,
			// so tasks that landed before an ambiguous failure ack without
			// a second append.
			time.Sleep(10 * time.Millisecond)
		}
		if !sent {
			return done, fmt.Errorf("cluster: batch to shard %d failed after redirects: %w", shard, lastErr)
		}
	}
	return done, nil
}

// Codecs reports the negotiated wire codec of every live connection
// (coordinator and shard nodes) as codec-name → connection count, so
// cluster results can state which codec actually carried the round.
func (c *ShardedClient) Codecs() map[string]int {
	out := make(map[string]int)
	out[c.coord.Codec().String()]++
	for _, rc := range c.conns {
		out[rc.Codec().String()]++
	}
	return out
}

// ShardPrior fetches one shard's current prior, trying followers first
// (read scaling) and the leader last, with the read-your-writes floor.
// A NotModified answer returns the cached prior.
func (c *ShardedClient) ShardPrior(shard, dim int) (*dpprior.Prior, uint64, error) {
	end := c.beginOp("shard-prior")
	if c.op != nil {
		c.op.SetAttr(trace.Int("shard", int64(shard)))
	}
	p, v, err := c.shardPrior(shard, dim)
	if errors.Is(err, edge.ErrNoPrior) {
		// A cold shard is a normal early-round answer, not a failure;
		// erroring the span would pin every warm-up trace as notable.
		c.op.Event("cold")
		end(nil)
	} else {
		end(err)
	}
	return p, v, err
}

func (c *ShardedClient) shardPrior(shard, dim int) (*dpprior.Prior, uint64, error) {
	if err := c.refreshMap(false); err != nil {
		return nil, 0, err
	}
	if shard < 0 || shard >= len(c.m.Shards) {
		return nil, 0, fmt.Errorf("cluster: shard %d out of range", shard)
	}
	sr := c.m.Shards[shard]
	order := append(append([]string(nil), sr.Followers...), sr.Leader)
	floor := c.applied[shard]
	var lastErr error
	if c.hedge != nil && len(order) >= 2 {
		// Race the first two replicas; a decisive answer settles the read.
		// Both legs indecisive (lagging, unreachable) falls through to a
		// sequential scan of the remaining replicas.
		r, herr := c.hedgedFetch(shard, dim, order[:2], floor)
		if r != nil {
			if r.err != nil {
				return nil, 0, r.err // cold shard: same answer everywhere
			}
			if r.p == nil { // not modified: cache is current
				return c.priors[shard], floor, nil
			}
			c.priors[shard] = r.p
			c.applied[shard] = r.v
			return r.p, r.v, nil
		}
		lastErr = herr
		order = order[2:]
		if len(order) == 0 {
			return nil, 0, fmt.Errorf("cluster: shard %d unreachable: %w", shard, lastErr)
		}
	}
	for _, addr := range order {
		start := time.Now()
		p, v, err := c.conn(addr).FetchPriorDeltaMin(dim, floor, floor, c.priors[shard])
		if err != nil {
			lastErr = err
			var se *edge.ServerError
			switch {
			case errors.As(err, &se) && se.Code == edge.CodeLagging:
				if c.op != nil {
					c.op.Event("lagging", trace.Str("replica", addr))
				}
				continue // this replica trails us; try the next one
			case errors.As(err, &se) && se.Code == edge.CodeNoTasks:
				return nil, 0, err // cold shard: same answer everywhere
			case errors.As(err, &se):
				continue
			default:
				if c.op != nil {
					c.op.Event("fall-through", trace.Str("replica", addr))
				}
				continue // transport failure: next replica
			}
		}
		c.recordLatency(time.Since(start))
		if p == nil { // not modified: cache is current
			return c.priors[shard], floor, nil
		}
		c.priors[shard] = p
		c.applied[shard] = v
		return p, v, nil
	}
	return nil, 0, fmt.Errorf("cluster: shard %d unreachable: %w", shard, lastErr)
}

// FetchMergedPrior assembles the global prior: every shard's prior is
// fetched (cold shards contribute nothing) and the component sets are
// merged into one DP prior. At least one shard must be warm.
func (c *ShardedClient) FetchMergedPrior(dim int) (*dpprior.Prior, error) {
	end := c.beginOp("merged-fetch")
	p, err := c.fetchMergedPrior(dim)
	if errors.Is(err, edge.ErrNoPrior) {
		end(nil) // every shard cold: a warm-up answer, not a failure
	} else {
		end(err)
	}
	return p, err
}

func (c *ShardedClient) fetchMergedPrior(dim int) (*dpprior.Prior, error) {
	if err := c.refreshMap(false); err != nil {
		return nil, err
	}
	shards := make([]*dpprior.Prior, len(c.m.Shards))
	for i := range c.m.Shards {
		p, _, err := c.ShardPrior(i, dim)
		if err != nil {
			if errors.Is(err, edge.ErrNoPrior) {
				continue // cold shard
			}
			return nil, err
		}
		shards[i] = p
	}
	merged, err := dpprior.MergePriors(shards)
	if err != nil {
		if errors.Is(err, dpprior.ErrNoShardPriors) {
			return nil, edge.ErrNoPrior
		}
		return nil, err
	}
	return merged, nil
}

// Applied returns the per-shard read-your-writes floors (highest prior
// versions this client has applied).
func (c *ShardedClient) Applied() []uint64 {
	return append([]uint64(nil), c.applied...)
}

// Close closes every underlying connection.
func (c *ShardedClient) Close() error {
	err := c.coord.Close()
	for _, rc := range c.conns {
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
