// Package cluster is the replicated shard tier on top of the edge
// protocol: N shards, each a leader plus followers streaming the
// leader's append-only log, a coordinator that probes leaders and
// promotes the longest-acked follower on leader loss, and a sharded
// client that routes task uploads by fingerprint and merges per-shard
// priors into one DP prior.
//
// # Roles and invariants
//
// Every node is a full edge.CloudServer over its own store. A leader
// accepts ReportTask and serves the replication stream (PullLog); a
// follower pulls frames (verbatim log bytes), fsyncs them, and serves
// reads from the prior it builds locally — the seeded builder makes a
// follower's prior at version v byte-identical to the leader's. The
// follower's durable version doubles as its acknowledgement: with
// SyncReplicas set, a leader acks an upload only after a quorum of
// followers hold it, so a leader crash cannot lose an acked task.
//
// Promotion picks the follower with the longest acked log (highest
// durable store version), breaking ties on the lowest replica index, and
// reaches edges as a shard-map version bump. Reads are safe from any
// replica because every fetch carries the edge's read-your-writes floor
// (Request.MinVersion): a lagging replica refuses rather than serving a
// prior the edge has already moved past.
package cluster

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

const (
	// DefaultPullInterval paces a caught-up follower's polling.
	DefaultPullInterval = 20 * time.Millisecond
	// DefaultCatchupJitter bounds the seeded random delay before a
	// (re)started follower's first pull, so a fleet of restarting
	// followers does not stampede the leader in lockstep.
	DefaultCatchupJitter = 50 * time.Millisecond
	// DefaultMaxHealthyLag is the replication lag (in sequence numbers)
	// beyond which a follower's /healthz check reports unhealthy.
	DefaultMaxHealthyLag = 256
)

// NodeConfig configures one replica.
type NodeConfig struct {
	Shard   int // shard index (labels, routing)
	Replica int // replica index within the shard; 0 starts as leader
	// Dir is the node's store directory ("" = memory-only).
	Dir string
	// FS, when set, backs the node's store files — the disk-fault chaos
	// hook (nil = the real filesystem).
	FS store.FS
	// ScrubEvery, when positive, runs a background integrity scrub of the
	// node's store at that cadence. A follower repairs quarantined ranges
	// from its current leader; a leader scrubs detect-only.
	ScrubEvery time.Duration
	// Build seeds the node's prior builder; every replica of a shard must
	// share it for byte-identical priors.
	Build dpprior.BuildOptions
	// LeaderAddr is the address to pull from when starting as a follower.
	LeaderAddr string
	// SyncReplicas/AckTimeout configure semi-synchronous appends when
	// this node leads (see edge.CloudServer).
	SyncReplicas int
	AckTimeout   time.Duration
	// PullInterval paces the caught-up follower poll
	// (0 = DefaultPullInterval).
	PullInterval time.Duration
	// CatchupJitter bounds the seeded pre-pull delay on (re)start
	// (0 = DefaultCatchupJitter; negative = none).
	CatchupJitter time.Duration
	// MaxHealthyLag is the /healthz lag threshold (0 = DefaultMaxHealthyLag).
	MaxHealthyLag uint64
	// Seed drives the catch-up jitter and the pull client's backoff.
	Seed int64
	// Admission is applied to the server (leaders judge; followers
	// inherit verdicts through the replicated sidecar).
	Admission edge.AdmissionConfig
	Logger    *slog.Logger
}

// Node is one running replica: a CloudServer, its listener, and (as a
// follower) the pull loop replicating the leader's log.
type Node struct {
	cfg    NodeConfig
	srv    *edge.CloudServer
	logger *slog.Logger
	addr   string

	mu         sync.Mutex
	leaderAddr string
	pullStop   chan struct{}
	pullWg     sync.WaitGroup
	lag        uint64
	healthStop func()
	scrubber   *store.Scrubber
	closed     bool
}

// Name labels the node in metrics and logs ("s0r1").
func (n *Node) Name() string { return fmt.Sprintf("s%dr%d", n.cfg.Shard, n.cfg.Replica) }

// Addr is the node's listen address.
func (n *Node) Addr() string { return n.addr }

// Server exposes the underlying CloudServer (promotion, stats, store).
func (n *Node) Server() *edge.CloudServer { return n.srv }

// StartNode opens the node's store, starts its server on a loopback
// port, and — when cfg.LeaderAddr is set — begins following that leader.
func StartNode(cfg NodeConfig) (*Node, error) {
	logger := telemetry.OrDefault(cfg.Logger)
	st, err := store.Open(store.Options{Dir: cfg.Dir, FS: cfg.FS, Logger: logger, Validate: validateTask})
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d/%d store: %w", cfg.Shard, cfg.Replica, err)
	}
	srv, err := edge.NewCloudServerWithStore(st, nil, cfg.Build, logger)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("cluster: node %d/%d: %w", cfg.Shard, cfg.Replica, err)
	}
	srv.SetSemiSync(cfg.SyncReplicas, cfg.AckTimeout)
	srv.SetAdmission(cfg.Admission)
	srv.EnableDedupe()
	n := &Node{cfg: cfg, srv: srv, logger: logger}
	srv.SetNodeName(n.Name())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("cluster: node %d/%d listen: %w", cfg.Shard, cfg.Replica, err)
	}
	n.addr = ln.Addr().String()
	go srv.Serve(ln)
	n.healthStop = telemetry.RegisterHealth("repl-lag-"+n.Name(), n.lagHealth)
	if cfg.LeaderAddr != "" {
		srv.SetFollower(true)
		n.Follow(cfg.LeaderAddr)
	}
	if cfg.ScrubEvery > 0 {
		n.scrubber = st.StartScrubber(cfg.ScrubEvery, n.repairSource, n.onScrub)
	}
	return n, nil
}

// repairSource resolves where this pass's scrub may repair from: the
// node's current leader when it is a follower, detect-only otherwise.
// Resolved fresh each pass so a post-failover scrub pulls from the new
// leader; the scrubber closes the returned source after the pass.
func (n *Node) repairSource() store.RepairSource {
	n.mu.Lock()
	addr := n.leaderAddr
	n.mu.Unlock()
	if addr == "" || !n.srv.IsFollower() {
		return nil
	}
	return NewPullRepairSource(addr, DefaultScrubTimeout)
}

// onScrub logs any pass that found or fixed something; clean passes at
// scrub cadence would only be noise.
func (n *Node) onScrub(rep store.ScrubReport, err error) {
	if err == nil && rep.Clean() {
		return
	}
	n.logger.Warn("cluster: scrub pass", "node", n.Name(),
		"frames", rep.FramesChecked, "corrupt", rep.CorruptFrames,
		"repaired", rep.RepairedFrames, "verdicts-rewritten", rep.VerdictsRewritten,
		"snapshot-repaired", rep.SnapshotRepaired, "poison-cleared", rep.PoisonCleared,
		"err", err)
}

// validateTask is the store's recovery-time semantic check (dimension 0
// = accept any consistent shape).
func validateTask(t dpprior.TaskPosterior) error { return t.Validate(0) }

// lagHealth is the node's /healthz readiness check: a follower whose
// replication lag exceeds the threshold is not ready to serve reads.
func (n *Node) lagHealth() error {
	n.mu.Lock()
	lag := n.lag
	n.mu.Unlock()
	max := n.cfg.MaxHealthyLag
	if max == 0 {
		max = DefaultMaxHealthyLag
	}
	if n.srv.IsFollower() && lag > max {
		return fmt.Errorf("replication lag %d exceeds %d", lag, max)
	}
	return nil
}

// Lag reports the node's last observed replication lag in sequence
// numbers (0 for a leader).
func (n *Node) Lag() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lag
}

// Follow (re)points the node's pull loop at a leader address, stopping
// any previous loop first. Used at start and after a promotion repoints
// surviving followers.
func (n *Node) Follow(leaderAddr string) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if n.pullStop != nil {
		close(n.pullStop)
	}
	stop := make(chan struct{})
	n.pullStop = stop
	n.leaderAddr = leaderAddr
	n.mu.Unlock()
	n.pullWg.Add(1)
	go n.pullLoop(leaderAddr, stop)
}

// Promote makes the node a leader: the pull loop stops and writes are
// accepted from here on. The store already holds everything this node
// ever acked, so no log repair is needed. followers is the surviving
// follower count — the semi-sync quorum shrinks to what can still ack,
// so a depleted shard degrades to async appends instead of stalling
// every upload into the ack timeout.
func (n *Node) Promote(followers int) {
	n.mu.Lock()
	if n.pullStop != nil {
		close(n.pullStop)
		n.pullStop = nil
	}
	n.lag = 0
	n.mu.Unlock()
	n.pullWg.Wait()
	quorum := n.cfg.SyncReplicas
	if followers < quorum {
		quorum = followers
	}
	n.srv.SetSemiSync(quorum, n.cfg.AckTimeout)
	n.srv.SetFollower(false)
	telemetry.ReplLagGauge(n.Name()).Set(0)
	telemetry.Events.RecordKV("cluster", "promoted", "node", n.Name())
	n.logger.Info("cluster: follower promoted to leader", "node", n.Name())
}

// pullLoop replicates the leader's log until stopped, tracking lag on
// the node and its gauge.
func (n *Node) pullLoop(leaderAddr string, stop chan struct{}) {
	defer n.pullWg.Done()
	gauge := telemetry.ReplLagGauge(n.Name())
	Replicate(n.srv, leaderAddr, ReplicateOptions{
		FollowerID:    n.cfg.Replica + 1,
		Interval:      n.cfg.PullInterval,
		CatchupJitter: n.cfg.CatchupJitter,
		Seed:          n.cfg.Seed + int64(1000*n.cfg.Shard+n.cfg.Replica),
		Logger:        n.logger,
		OnLag: func(lag uint64) {
			n.mu.Lock()
			n.lag = lag
			n.mu.Unlock()
			gauge.Set(float64(lag))
		},
	}, stop)
}

// ReplicateOptions tunes one Replicate loop.
type ReplicateOptions struct {
	// FollowerID identifies this replica in pull requests (> 0; the
	// leader records the pull's AfterSeq as this follower's durable
	// acknowledgement).
	FollowerID int
	// Interval paces a caught-up follower's polling (0 = DefaultPullInterval).
	Interval time.Duration
	// CatchupJitter bounds the seeded pre-pull delay
	// (0 = DefaultCatchupJitter; negative = none).
	CatchupJitter time.Duration
	// Seed drives the catch-up jitter and the pull client's backoff.
	Seed int64
	// OnLag, when set, observes the replication lag after every
	// successful pull.
	OnLag  func(lag uint64)
	Logger *slog.Logger
}

// Replicate streams a leader's log into srv until stop closes: pull
// frames after the local durable version, apply them (fsync-gated), and
// immediately pull again while behind — the immediate re-pull is also
// what carries the acknowledgement of the batch just applied. All
// reconnect/backoff behavior comes from ResilientClient; there is no
// bespoke retry here. This is the loop behind a cluster Node's follower
// role, exported so a standalone drdp-cloud process can follow a leader
// too.
func Replicate(srv *edge.CloudServer, leaderAddr string, o ReplicateOptions, stop <-chan struct{}) {
	logger := telemetry.OrDefault(o.Logger)
	rng := rand.New(rand.NewSource(o.Seed))
	// One timer serves the jitter sleep and every pause below. The loop
	// pauses on most iterations of a long-lived follower, and a fresh
	// time.After per pause allocates a timer each lap.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	// pause sleeps for d on the shared timer; false means stop closed.
	pause := func(d time.Duration) bool {
		timer.Reset(d)
		select {
		case <-timer.C:
			return true
		case <-stop:
			if !timer.Stop() {
				<-timer.C
			}
			return false
		}
	}
	// Seeded catch-up jitter: desynchronize a herd of (re)starting
	// followers before the first pull.
	jitterMax := o.CatchupJitter
	if jitterMax == 0 {
		jitterMax = DefaultCatchupJitter
	}
	if jitterMax > 0 {
		if !pause(time.Duration(rng.Int63n(int64(jitterMax)))) {
			return
		}
	}
	interval := o.Interval
	if interval <= 0 {
		interval = DefaultPullInterval
	}
	client := edge.DialResilient(leaderAddr, edge.ResilientOptions{
		Retry:            edge.RetryPolicy{MaxAttempts: 3, Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
		Breaker:          edge.BreakerConfig{Threshold: 6, Cooldown: 250 * time.Millisecond},
		DialTimeout:      time.Second,
		RoundTripTimeout: 2 * time.Second,
		Seed:             o.Seed + 1,
		Logger:           telemetry.Discard(),
	})
	defer client.Close()
	for {
		select {
		case <-stop:
			return
		default:
		}
		pullStart := time.Now()
		batch, err := client.PullLog(o.FollowerID, srv.Store().Version(), 0)
		if err != nil {
			// Transport retries are exhausted or the leader refused (e.g. it
			// was demoted); pause and try again — the coordinator will
			// repoint us if the topology changed. Failed pulls are
			// retro-recorded (idle successful polls are not — at the pull
			// cadence they would flood the flight recorder).
			trace.Default.Record("repl-pull", pullStart, time.Since(pullStart), err,
				trace.Str("node", srv.NodeName()), trace.Str("leader", leaderAddr))
			pause(interval)
			continue
		}
		if len(batch.Frames) > 0 {
			// A pull that actually shipped frames is worth a trace; only
			// after the fact do we know it was not an idle poll.
			trace.Default.Record("repl-pull", pullStart, time.Since(pullStart), nil,
				trace.Str("node", srv.NodeName()), trace.Str("leader", leaderAddr),
				trace.Int("frames", int64(len(batch.Frames))), trace.Int("up-to", int64(batch.UpTo)))
		}
		v, err := srv.ApplyReplicated(batch.Frames, batch.Verdicts)
		if err != nil {
			logger.Error("cluster: applying replicated frames failed", "err", err)
			pause(interval)
			continue
		}
		lag := uint64(0)
		if batch.UpTo > v {
			lag = batch.UpTo - v
		}
		if o.OnLag != nil {
			o.OnLag(lag)
		}
		if len(batch.Frames) > 0 || lag > 0 {
			// Still behind (or just applied a batch whose ack the next pull
			// must deliver): pull again immediately.
			continue
		}
		if !pause(interval) {
			return
		}
	}
}

// Close stops the pull loop and the server. The store is synced and
// closed by the server.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	if n.pullStop != nil {
		close(n.pullStop)
		n.pullStop = nil
	}
	n.mu.Unlock()
	n.pullWg.Wait()
	if n.scrubber != nil {
		n.scrubber.Close()
	}
	if n.healthStop != nil {
		n.healthStop()
	}
	return n.srv.Close()
}
