package cluster

import (
	"math"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/store"
)

// DefaultScrubTimeout bounds one repair pull round trip.
const DefaultScrubTimeout = time.Second

// PullRepairSource adapts a replica's PullLog endpoint into a
// store.RepairSource, so a node's scrubber can re-pull quarantined log
// ranges from whichever peer is reachable. Pulls are anonymous
// (FollowerID 0): they carry no acknowledgement and any replica —
// leader or follower — answers them, because frames are verbatim leader
// bytes wherever they are held. The connection is dialed lazily on
// first use and released by Close; the scrubber closes the source after
// every pass, so a long-lived node re-resolves its peer each time.
type PullRepairSource struct {
	addr    string
	timeout time.Duration

	mu sync.Mutex
	c  *edge.Client
}

// NewPullRepairSource builds a repair source over addr. timeout bounds
// the dial and each pull round trip (0 = DefaultScrubTimeout).
func NewPullRepairSource(addr string, timeout time.Duration) *PullRepairSource {
	if timeout <= 0 {
		timeout = DefaultScrubTimeout
	}
	return &PullRepairSource{addr: addr, timeout: timeout}
}

// conn returns the lazily dialed client.
func (p *PullRepairSource) conn() (*edge.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c != nil {
		return p.c, nil
	}
	c, err := edge.Dial(p.addr, p.timeout)
	if err != nil {
		return nil, err
	}
	c.SetRoundTripTimeout(p.timeout)
	p.c = c
	return c, nil
}

// drop discards the cached connection after a transport error, so the
// next call redials instead of reusing a dead stream.
func (p *PullRepairSource) drop() {
	p.mu.Lock()
	if p.c != nil {
		p.c.Close()
		p.c = nil
	}
	p.mu.Unlock()
}

// FramesSince pulls verbatim log frames after `after` from the peer.
func (p *PullRepairSource) FramesSince(after uint64, maxFrames int) ([]store.Frame, uint64, error) {
	c, err := p.conn()
	if err != nil {
		return nil, 0, err
	}
	b, err := c.PullLog(0, after, maxFrames)
	if err != nil {
		p.drop()
		return nil, 0, err
	}
	return b.Frames, b.UpTo, nil
}

// Verdicts pulls the peer's verdict sidecar. The AfterSeq is pinned to
// the maximum so the answer ships verdicts without any frames.
func (p *PullRepairSource) Verdicts() (map[uint64]bool, error) {
	c, err := p.conn()
	if err != nil {
		return nil, err
	}
	b, err := c.PullLog(0, math.MaxUint64, 1)
	if err != nil {
		p.drop()
		return nil, err
	}
	return b.Verdicts, nil
}

// Close releases the dialed connection (safe when none was dialed).
func (p *PullRepairSource) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c == nil {
		return nil
	}
	err := p.c.Close()
	p.c = nil
	return err
}
