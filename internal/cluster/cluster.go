package cluster

import (
	"fmt"
	"log/slog"
	"path/filepath"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/store"
)

// Config sizes a local cluster (the sim/test harness: every node in
// this process, each on its own loopback listener and store).
type Config struct {
	// Shards is the number of shards (≥ 1).
	Shards int
	// Replicas is the replica count per shard including the leader (≥ 1).
	Replicas int
	// Dir is the base directory for node stores ("" = memory-only).
	// Node s's replica r stores under Dir/s<shard>/r<replica>.
	Dir string
	// Build seeds every node's prior builder (shared — required for
	// byte-identical replica priors).
	Build dpprior.BuildOptions
	// SyncReplicas makes leader appends semi-synchronous (0 = async).
	SyncReplicas int
	// AckTimeout bounds the semi-sync wait (0 = edge.DefaultAckTimeout).
	AckTimeout time.Duration
	// PullInterval / ProbeInterval / FailThreshold tune replication and
	// failover cadence (0 = package defaults).
	PullInterval  time.Duration
	ProbeInterval time.Duration
	FailThreshold int
	// GrayLatency arms gray-failure detection: a leader whose probe
	// latency EWMA stays above it for GrayAfter consecutive probes is
	// demoted, not failed over (0 = disabled). Keep it well under the
	// probe timeout or ordinary failover fires first.
	GrayLatency time.Duration
	GrayAfter   int
	// ScrubEvery runs each node's background integrity scrub at that
	// cadence (0 = no scrubbing). Followers repair from their leader.
	ScrubEvery time.Duration
	// NodeFS, when set, supplies the filesystem backing each node's
	// store — the disk-fault chaos hook (nil result = real filesystem).
	NodeFS func(shard, replica int) store.FS
	// Seed drives every node's jitter deterministically.
	Seed int64
	// Admission configures leader-side quarantine.
	Admission edge.AdmissionConfig
	Logger    *slog.Logger
}

// Cluster is a running shard tier: nodes plus coordinator.
type Cluster struct {
	cfg   Config
	nodes [][]*Node
	coord *Coordinator
}

// Start launches Shards×Replicas nodes and the coordinator.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 || cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard and 1 replica, got %d×%d", cfg.Shards, cfg.Replicas)
	}
	c := &Cluster{cfg: cfg}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}
	for s := 0; s < cfg.Shards; s++ {
		var reps []*Node
		for r := 0; r < cfg.Replicas; r++ {
			ncfg := NodeConfig{
				Shard:        s,
				Replica:      r,
				Build:        cfg.Build,
				SyncReplicas: cfg.SyncReplicas,
				AckTimeout:   cfg.AckTimeout,
				PullInterval: cfg.PullInterval,
				ScrubEvery:   cfg.ScrubEvery,
				Seed:         cfg.Seed,
				Admission:    cfg.Admission,
				Logger:       cfg.Logger,
			}
			if cfg.NodeFS != nil {
				ncfg.FS = cfg.NodeFS(s, r)
			}
			if cfg.Dir != "" {
				ncfg.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("s%d", s), fmt.Sprintf("r%d", r))
			}
			if r > 0 {
				ncfg.LeaderAddr = reps[0].Addr()
			}
			n, err := StartNode(ncfg)
			if err != nil {
				c.nodes = append(c.nodes, reps)
				return fail(err)
			}
			reps = append(reps, n)
		}
		c.nodes = append(c.nodes, reps)
	}
	co, err := NewCoordinator(c.nodes, cfg.ProbeInterval, cfg.FailThreshold, cfg.Logger)
	if err != nil {
		return fail(err)
	}
	if cfg.GrayLatency > 0 {
		co.SetGrayPolicy(cfg.GrayLatency, cfg.GrayAfter)
	}
	c.coord = co
	return c, nil
}

// CoordinatorAddr is the shard-map endpoint edges dial.
func (c *Cluster) CoordinatorAddr() string { return c.coord.Addr() }

// Coordinator exposes the coordinator (map inspection in tests).
func (c *Cluster) Coordinator() *Coordinator { return c.coord }

// Node returns the node at (shard, replica) as started; nil after it
// was killed.
func (c *Cluster) Node(shard, replica int) *Node { return c.nodes[shard][replica] }

// LeaderOf resolves the node currently leading a shard (nil if none).
func (c *Cluster) LeaderOf(shard int) *Node {
	addr := c.coord.Map().Shards[shard].Leader
	for _, n := range c.nodes[shard] {
		if n != nil && n.Addr() == addr {
			return n
		}
	}
	return nil
}

// KillLeader abruptly stops a shard's current leader (fault injection:
// the listener closes mid-round, in-flight connections die) and returns
// the killed node's name. The coordinator notices via failed probes and
// promotes a follower.
func (c *Cluster) KillLeader(shard int) (string, error) {
	n := c.LeaderOf(shard)
	if n == nil {
		return "", fmt.Errorf("cluster: shard %d has no live leader", shard)
	}
	name := n.Name()
	for i, nn := range c.nodes[shard] {
		if nn == n {
			c.nodes[shard][i] = nil
		}
	}
	if err := n.Close(); err != nil {
		return name, err
	}
	return name, nil
}

// WaitFailover blocks until the shard's leader differs from oldAddr or
// the timeout expires, returning whether failover happened.
func (c *Cluster) WaitFailover(shard int, oldAddr string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.coord.Map().Shards[shard].Leader != oldAddr {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// WaitReplicated blocks until every live follower of every shard has
// caught up to its leader's store version (and the leaders' built
// priors cover their stores), or the timeout expires.
func (c *Cluster) WaitReplicated(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.replicated() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

func (c *Cluster) replicated() bool {
	m := c.coord.Map()
	for s := range m.Shards {
		leader := c.LeaderOf(s)
		if leader == nil {
			return false
		}
		target := leader.Server().Store().Version()
		for _, n := range c.nodes[s] {
			if n == nil || n == leader {
				continue
			}
			if n.Server().Store().Version() < target {
				return false
			}
		}
	}
	return true
}

// Quiesce waits for full replication and then for every live node's
// served prior to cover its store — after it returns true, every
// replica of a shard serves the same prior bytes.
func (c *Cluster) Quiesce(timeout time.Duration) bool {
	if !c.WaitReplicated(timeout) {
		return false
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, reps := range c.nodes {
			for _, n := range reps {
				if n != nil {
					n.Server().WaitCaughtUp()
				}
			}
		}
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Close stops the coordinator and every live node.
func (c *Cluster) Close() error {
	var err error
	if c.coord != nil {
		err = c.coord.Close()
	}
	for _, reps := range c.nodes {
		for _, n := range reps {
			if n != nil {
				if cerr := n.Close(); err == nil {
					err = cerr
				}
			}
		}
	}
	return err
}
