package cluster

import (
	"testing"
	"time"

	"github.com/drdp/drdp/internal/trace"
)

// TestTraceFailoverContinuity is the chaos test for trace continuity: a
// device round whose leader is killed mid-round must yield ONE trace
// holding the edge's parent span, a successful serve span on the old
// leader (pre-kill), the failed attempts against the dead leader, and a
// successful serve span on the promoted leader — plus a pinned
// "failover" trace in the flight recorder recording the promotion.
func TestTraceFailoverContinuity(t *testing.T) {
	prev := trace.Default.SampleRate()
	trace.Default.SetSampleRate(1)
	defer trace.Default.SetSampleRate(prev)

	cl, err := Start(fastConfig(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sc := dialTest(cl.CoordinatorAddr())
	defer sc.Close()

	const dim = 4
	tasks := makeTasks(77, 4, dim)
	oldName := cl.LeaderOf(0).Name()
	oldAddr := cl.Coordinator().Map().Shards[0].Leader

	round := trace.Default.StartTrace("device-round", trace.Int("device", 1))
	if round == nil {
		t.Fatal("sampling is on but StartTrace returned nil")
	}
	sc.SetTraceParent(round)

	// Pre-kill upload: a successful serve span on the old leader joins
	// the round trace.
	if _, err := sc.ReportTask(tasks[0]); err != nil {
		t.Fatalf("pre-kill upload: %v", err)
	}

	if _, err := cl.KillLeader(0); err != nil {
		t.Fatalf("kill leader: %v", err)
	}

	// Mid-round retries: keep the SAME round open until an upload lands
	// on whichever follower gets promoted. The early attempts hit the
	// dead leader and fail into the trace.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := sc.ReportTask(tasks[1]); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("upload never succeeded after the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sc.SetTraceParent(nil)
	round.End()

	if !cl.WaitFailover(0, oldAddr, 5*time.Second) {
		t.Fatal("failover did not complete")
	}
	newName := cl.LeaderOf(0).Name()
	if newName == oldName {
		t.Fatalf("leader did not change: still %s", newName)
	}

	// Every fragment of the round — the edge's spans plus each server's
	// joined serve spans — merges into one cross-node tree.
	td := trace.MergeDumps(trace.Default.Find(round.TraceID()))
	if td == nil {
		t.Fatal("round trace not retained by the flight recorder")
	}

	if root := td.Root(); root == nil || root.Name != "device-round" {
		t.Fatalf("trace root = %+v, want the edge's device-round span", td.Root())
	}
	sawOld, sawNew := false, false
	for _, sd := range td.SpansNamed("serve report-task") {
		switch sd.Attr("node") {
		case oldName:
			if sd.Err == "" {
				sawOld = true
			}
		case newName:
			if sd.Err == "" {
				sawNew = true
			}
		}
	}
	if !sawOld {
		t.Errorf("no successful serve span on old leader %s in trace:\n%s", oldName, td.Tree())
	}
	if !sawNew {
		t.Errorf("no successful serve span on new leader %s in trace:\n%s", newName, td.Tree())
	}

	// The dead leader shows up as failure evidence inside the same trace:
	// an errored client span or a retry/transport-fault/breaker event.
	sawFailure := false
	for i := range td.Spans {
		sd := &td.Spans[i]
		if sd.Err != "" {
			sawFailure = true
		}
		if sd.HasEvent("retry") || sd.HasEvent("transport-fault") || sd.HasEvent("breaker-open") {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Errorf("no failed attempt recorded in the round trace:\n%s", td.Tree())
	}

	// The promotion itself is a pinned failover trace with a "promoted"
	// event naming the new leader.
	snap := trace.Default.Snapshot()
	var failover *trace.TraceDump
	for _, nd := range snap.Notable {
		if nd.Name == "failover" && nd.Pinned {
			failover = nd
		}
	}
	if failover == nil {
		t.Fatal("no pinned failover trace in the notable ring")
	}
	root := failover.Root()
	if !root.HasEvent("promoted") {
		t.Fatalf("failover trace lacks a promoted event:\n%s", failover.Tree())
	}
	for _, ev := range root.Events {
		if ev.Name != "promoted" {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "node" && a.Value != newName {
				t.Errorf("failover promoted %q, map says leader is %q", a.Value, newName)
			}
		}
	}
}
