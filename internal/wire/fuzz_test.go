package wire

import (
	"bytes"
	"maps"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/store"
)

// FuzzWireCodec throws arbitrary bytes at both decoders and both
// framing layers. Two properties must hold:
//
//  1. No input panics or balloons memory — malformed counts, truncated
//     payloads, and corrupt frames fail with an error.
//  2. Any payload that decodes re-encodes to a stable message:
//     decode(encode(decode(x))) == decode(x). Floats are compared by
//     their encoded bits (NaN payloads round-trip bit-exactly), and the
//     verdict map by key/value equality (its encode order is not
//     deterministic).
func FuzzWireCodec(f *testing.F) {
	task := testTask(3, 1)
	f.Add(AppendRequest(nil, &Request{Kind: GetPrior, Dim: 4, KnownVersion: 9, MinVersion: 2}))
	f.Add(AppendRequest(nil, &Request{Kind: ReportTask, Task: &task}))
	f.Add(AppendRequest(nil, &Request{Kind: BatchAddTask, Tasks: []dpprior.TaskPosterior{testTask(2, 1), testTask(2, 2)}}))
	f.Add(AppendResponse(nil, &Response{Err: "edge: boom", Code: CodeBadRequest}))
	f.Add(AppendResponse(nil, &Response{Prior: testPrior(3, 2), Version: 4}))
	f.Add(AppendResponse(nil, &Response{Delta: testDelta(2), Version: 7}))
	f.Add(AppendResponse(nil, &Response{
		Frames:     []store.Frame{{Seq: 1, Bytes: []byte{1, 2, 3}}},
		VerdictMap: map[uint64]bool{1: true},
		UpTo:       1,
	}))
	f.Add(AppendResponse(nil, &Response{Map: &ShardMap{Version: 1, Shards: []ShardReplicas{{Leader: "a:1", Followers: []string{"b:1"}}}}}))
	f.Add([]byte{})
	f.Add([]byte{msgRequest})
	f.Add([]byte{msgResponse, 0, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, payload []byte) {
		var req Request
		if DecodeRequest(payload, &req, false) == nil {
			enc := AppendRequest(nil, &req)
			var again Request
			if err := DecodeRequest(enc, &again, false); err != nil {
				t.Fatalf("re-decode of re-encoded request failed: %v", err)
			}
			if !bytes.Equal(enc, AppendRequest(nil, &again)) {
				t.Fatal("request re-encode is not stable")
			}
		}

		var resp Response
		if DecodeResponse(payload, &resp, false) == nil {
			enc := AppendResponse(nil, &resp)
			var again Response
			if err := DecodeResponse(enc, &again, false); err != nil {
				t.Fatalf("re-decode of re-encoded response failed: %v", err)
			}
			if !maps.Equal(resp.VerdictMap, again.VerdictMap) {
				t.Fatal("verdict map did not round-trip")
			}
			// The verdict map encodes in map order; compare the rest of the
			// message byte-wise without it.
			resp.VerdictMap, again.VerdictMap = nil, nil
			if !bytes.Equal(AppendResponse(nil, &resp), AppendResponse(nil, &again)) {
				t.Fatal("response re-encode is not stable")
			}
		}

		// The framing layer: arbitrary bytes as a frame stream must error
		// or decode, never panic, with allocation bounded by the limit.
		dec := NewDecoder(bytes.NewReader(payload), 1<<16)
		defer dec.Release()
		var fr Request
		_ = dec.DecodeRequest(&fr)
	})
}
