package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/store"
)

func testTask(dim int, seed float64) dpprior.TaskPosterior {
	mu := make(mat.Vec, dim)
	for i := range mu {
		mu[i] = seed + 0.25*float64(i)
	}
	sigma := mat.Eye(dim)
	sigma.ScaleBy(0.5 + 0.1*seed)
	return dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100 + int(seed)}
}

func testPrior(dim, comps int) *dpprior.Prior {
	p := &dpprior.Prior{Alpha: 1.5, BaseWeight: 0.1, BaseSigma: 2, Dim: dim}
	for k := 0; k < comps; k++ {
		mu := make(mat.Vec, dim)
		for i := range mu {
			mu[i] = float64(k) + 0.5*float64(i)
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(0.3 + 0.1*float64(k))
		p.Components = append(p.Components, dpprior.Component{
			Weight: 0.9 / float64(comps),
			Mu:     mu,
			Sigma:  sigma,
			Count:  float64(k + 1),
		})
	}
	return p
}

func testDelta(dim int) *dpprior.PriorDelta {
	return &dpprior.PriorDelta{
		FromVersion: 3, ToVersion: 7,
		Alpha: 1.2, BaseWeight: 0.15, BaseSigma: 1.8, Dim: dim,
		NumComponents: 2,
		Keep:          []dpprior.DeltaKeep{{Old: 0, New: 1, Weight: 0.4, Count: 3}},
		Add:           []dpprior.DeltaAdd{{New: 0, Comp: testPrior(dim, 1).Components[0]}},
	}
}

// TestRequestRoundTrip pins the binary codec on one request of every
// kind: decode(encode(x)) must reproduce x exactly.
func TestRequestRoundTrip(t *testing.T) {
	task := testTask(4, 1)
	reqs := []Request{
		{Kind: GetPrior, Dim: 8, KnownVersion: 42, MinVersion: 7, TraceID: 0xdead, ParentSpan: 0xbeef},
		{Kind: ReportTask, Task: &task},
		{Kind: GetStats},
		{Kind: GetPriorDelta, Dim: 4, KnownVersion: 3, MinVersion: 2},
		{Kind: PullLog, FollowerID: 2, AfterSeq: 99, MaxFrames: 64},
		{Kind: GetShardMap, KnownVersion: 5},
		{Kind: BatchAddTask, Tasks: []dpprior.TaskPosterior{testTask(3, 1), testTask(3, 2), testTask(3, 3)}},
	}
	for _, orig := range reqs {
		payload := AppendRequest(nil, &orig)
		var got Request
		if err := DecodeRequest(payload, &got, false); err != nil {
			t.Fatalf("%s: decode: %v", orig.Kind, err)
		}
		if !reflect.DeepEqual(&orig, &got) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", orig.Kind, got, orig)
		}
	}
}

// TestResponseRoundTrip pins the binary codec on every response payload
// shape: errors, priors, deltas, replication frames + verdicts, shard
// maps, stats, and batch acknowledgements.
func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Err: "edge: boom", Code: CodeBadRequest, Version: 9},
		{Prior: testPrior(3, 2), Version: 4},
		{Delta: testDelta(3), Version: 7},
		{NotModified: true, Version: 11},
		{
			Frames:     []store.Frame{{Seq: 1, Bytes: []byte{1, 2, 3}}, {Seq: 2, Bytes: []byte{4}}},
			VerdictMap: map[uint64]bool{1: true, 2: false},
			UpTo:       2, Version: 2,
		},
		{Map: &ShardMap{Version: 3, Shards: []ShardReplicas{
			{Leader: "a:1", Followers: []string{"b:1", "c:1"}},
			{Leader: "d:1", Followers: []string{}},
		}}},
		{Stats: Stats{Tasks: 5, PriorVersion: 2, Components: 3, WireBytes: 1000, Accepted: 4, Quarantined: 1, Rejected: 2}},
		{Version: 10, BatchDone: 7},
	}
	for i, orig := range resps {
		payload := AppendResponse(nil, &orig)
		var got Response
		if err := DecodeResponse(payload, &got, false); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(&orig, &got) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, orig)
		}
	}
}

// TestNegotiationHandshake pins the hello/ack exchange — including the
// property the gob fallback depends on: the hello's first byte is a
// valid gob message length, so a legacy server consumes exactly the
// hello before failing.
func TestNegotiationHandshake(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, CodecBinary); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != helloLen {
		t.Fatalf("hello is %d bytes, want %d", buf.Len(), helloLen)
	}
	if buf.Bytes()[0] != helloLen-1 {
		t.Fatalf("hello leading byte %#x is not the gob length %#x", buf.Bytes()[0], helloLen-1)
	}
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	if !SniffHello(br) {
		t.Fatal("SniffHello missed a real hello")
	}
	codec, version, err := ReadHello(br)
	if err != nil {
		t.Fatal(err)
	}
	if codec != CodecBinary || version != Version {
		t.Fatalf("ReadHello = (%v, %d), want (%v, %d)", codec, version, CodecBinary, Version)
	}

	// A gob stream's opening bytes must not sniff as a hello.
	if SniffHello(bufio.NewReader(strings.NewReader("\x1f\xff\x81\x03\x01\x01"))) {
		t.Error("SniffHello matched a gob stream")
	}
	// Nor a short or empty stream.
	if SniffHello(bufio.NewReader(strings.NewReader("\x0b"))) {
		t.Error("SniffHello matched a 1-byte stream")
	}

	for _, c := range []Codec{CodecGob, CodecBinary} {
		var ab bytes.Buffer
		if err := WriteAck(&ab, c); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAck(&ab)
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Errorf("ack round trip: got %v, want %v", got, c)
		}
	}
	if _, err := ReadAck(strings.NewReader("XXXXXXXX")); err == nil {
		t.Error("garbage ack accepted")
	}
	if _, err := ReadAck(strings.NewReader("DR")); err == nil {
		t.Error("truncated ack accepted")
	}
}

// TestFrameRoundTrip runs requests and responses through the framed
// Encoder/Decoder pair — header, CRC, and payload together.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	defer enc.Release()
	task := testTask(4, 2)
	req := &Request{Kind: ReportTask, Task: &task}
	resp := &Response{Prior: testPrior(4, 3), Version: 12}
	if err := enc.EncodeRequest(req); err != nil {
		t.Fatal(err)
	}
	if err := enc.EncodeResponse(resp); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf, 1<<20)
	defer dec.Release()
	var gotReq Request
	if err := dec.DecodeRequest(&gotReq); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, &gotReq) {
		t.Errorf("framed request mismatch:\n got %+v\nwant %+v", gotReq, req)
	}
	var gotResp Response
	if err := dec.DecodeResponse(&gotResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, &gotResp) {
		t.Errorf("framed response mismatch:\n got %+v\nwant %+v", gotResp, resp)
	}
}

// TestFrameCRCMismatch: a flipped payload bit must fail the frame, not
// produce a half-decoded message.
func TestFrameCRCMismatch(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	defer enc.Release()
	if err := enc.EncodeRequest(&Request{Kind: GetStats}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0x40
	dec := NewDecoder(bytes.NewReader(b), 0)
	defer dec.Release()
	var got Request
	err := dec.DecodeRequest(&got)
	if err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt frame decoded: err=%v", err)
	}
}

// TestFrameLimit: a frame larger than the decoder's limit is rejected
// from the header alone, before any payload allocation.
func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	defer enc.Release()
	tasks := make([]dpprior.TaskPosterior, 8)
	for i := range tasks {
		tasks[i] = testTask(8, float64(i))
	}
	if err := enc.EncodeRequest(&Request{Kind: BatchAddTask, Tasks: tasks}); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf, 64)
	defer dec.Release()
	var got Request
	err := dec.DecodeRequest(&got)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame decoded: err=%v", err)
	}
}

// TestDecodeRejectsGiantCount: a payload whose element count claims far
// more elements than the remaining bytes could hold must fail without
// attempting the allocation.
func TestDecodeRejectsGiantCount(t *testing.T) {
	payload := AppendRequest(nil, &Request{Kind: BatchAddTask, Tasks: []dpprior.TaskPosterior{testTask(2, 1)}})
	// The batch count is the u32 straight after the fixed request header:
	// type+kind+flags + dim + known + min + follower + after + maxFrames
	// + traceID + parentSpan = 1+1+2 + 4+8+8+4+8+4+8+8 = 56 bytes.
	binary.LittleEndian.PutUint32(payload[56:], 0xFFFFFFFF)
	var got Request
	err := DecodeRequest(payload, &got, false)
	if err == nil || !strings.Contains(err.Error(), "element count") {
		t.Fatalf("giant count decoded: err=%v", err)
	}
}

// TestDecodeRejectsTrailingBytes: a structurally valid payload with
// extra bytes is corrupt, not decodable.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	payload := AppendRequest(nil, &Request{Kind: GetStats})
	payload = append(payload, 0xAA)
	var got Request
	if err := DecodeRequest(payload, &got, false); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	rpayload := AppendResponse(nil, &Response{Version: 1})
	rpayload = append(rpayload, 0xAA)
	var gotResp Response
	if err := DecodeResponse(rpayload, &gotResp, false); err == nil {
		t.Fatal("trailing bytes accepted on response")
	}
}

// TestDecodeWrongMessageType: a request payload fed to the response
// decoder (and vice versa) fails on the type byte.
func TestDecodeWrongMessageType(t *testing.T) {
	reqPayload := AppendRequest(nil, &Request{Kind: GetStats})
	var resp Response
	if err := DecodeResponse(reqPayload, &resp, false); err == nil {
		t.Error("request payload decoded as response")
	}
	respPayload := AppendResponse(nil, &Response{Version: 1})
	var req Request
	if err := DecodeRequest(respPayload, &req, false); err == nil {
		t.Error("response payload decoded as request")
	}
}

// TestDecodeReuseRecycles: with reuse, a second decode into the same
// destination recycles the payload slices (same backing arrays) while
// still producing the right values.
func TestDecodeReuseRecycles(t *testing.T) {
	resp := &Response{Prior: testPrior(6, 4), Version: 5}
	payload := AppendResponse(nil, resp)
	var got Response
	if err := DecodeResponse(payload, &got, true); err != nil {
		t.Fatal(err)
	}
	firstMu := &got.Prior.Components[0].Mu[0]
	if err := DecodeResponse(payload, &got, true); err != nil {
		t.Fatal(err)
	}
	if &got.Prior.Components[0].Mu[0] != firstMu {
		t.Error("reuse decode reallocated a component mean")
	}
	if !reflect.DeepEqual(resp, &got) {
		t.Errorf("reuse decode mismatch:\n got %+v\nwant %+v", got, resp)
	}
}

// TestBinaryDecodeAllocBudget pins the codec's core promise: steady-state
// decode with reuse performs zero heap allocations per message, on both
// the hot upload payload (request with a task) and the hot download
// payload (response with a prior). make bench-wire gates on this test,
// so a regression fails CI, not just a benchmark eyeball.
func TestBinaryDecodeAllocBudget(t *testing.T) {
	task := testTask(8, 3)
	reqPayload := AppendRequest(nil, &Request{Kind: ReportTask, Task: &task})
	respPayload := AppendResponse(nil, &Response{Prior: testPrior(8, 6), Version: 9})

	var req Request
	var resp Response
	// Warm up so the reused buffers reach steady-state capacity.
	if err := DecodeRequest(reqPayload, &req, true); err != nil {
		t.Fatal(err)
	}
	if err := DecodeResponse(respPayload, &resp, true); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeRequest(reqPayload, &req, true); err != nil {
			t.Error(err)
		}
	}); allocs > 0 {
		t.Errorf("request decode with reuse allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeResponse(respPayload, &resp, true); err != nil {
			t.Error(err)
		}
	}); allocs > 0 {
		t.Errorf("response decode with reuse allocates %.1f/op, want 0", allocs)
	}
}

// TestParsePreference pins the configuration strings: the three valid
// modes parse, and anything else — including the typos that used to
// silently mean auto — is rejected.
func TestParsePreference(t *testing.T) {
	for s, want := range map[string]Preference{
		"":       PreferAuto,
		"auto":   PreferAuto,
		"gob":    PreferGob,
		"binary": PreferBinary,
	} {
		got, err := ParsePreference(s)
		if err != nil {
			t.Errorf("ParsePreference(%q): unexpected error %v", s, err)
		}
		if got != want {
			t.Errorf("ParsePreference(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"nonsense", "Binary", "GOB", "auto ", "binry"} {
		if _, err := ParsePreference(s); err == nil {
			t.Errorf("ParsePreference(%q) accepted, want error", s)
		}
	}
}

// TestPreferenceString pins the flag-facing names.
func TestPreferenceString(t *testing.T) {
	for p, want := range map[Preference]string{
		PreferAuto:   "auto",
		PreferGob:    "gob",
		PreferBinary: "binary",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}
