package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"github.com/drdp/drdp/internal/telemetry"
)

// Binary framing: every message travels as
//
//	[u32 LE payload length][u32 LE IEEE CRC32 of payload][payload]
//
// The length is checked against the receiver's frame limit before any
// allocation, and the CRC before any decoding, so a torn or corrupt
// frame fails the connection instead of producing a half-decoded
// message — the same contract the durable store applies to its log
// records.

// frameHeaderLen is the length+CRC prefix size.
const frameHeaderLen = 8

// bufPool recycles message buffers across connections and short-lived
// encoders, so a dial-heavy workload does not pay a fresh arena per
// connection.
var bufPool = sync.Pool{
	New: func() any { return make([]byte, 0, 4096) },
}

func getBuf() []byte  { return bufPool.Get().([]byte)[:0] }
func putBuf(b []byte) { bufPool.Put(b[:0]) } //nolint:staticcheck // slice header allocation is amortized by reuse

// Encoder writes framed binary messages to w, reusing one grow-only
// buffer across messages.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing framed messages to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, buf: getBuf()}
}

// Release returns the encoder's buffer to the pool. The encoder must
// not be used afterwards.
func (e *Encoder) Release() {
	if e.buf != nil {
		putBuf(e.buf)
		e.buf = nil
	}
}

// EncodeRequest frames and writes one request.
func (e *Encoder) EncodeRequest(req *Request) error {
	return e.flush(AppendRequest(e.reserve(), req))
}

// EncodeResponse frames and writes one response.
func (e *Encoder) EncodeResponse(resp *Response) error {
	return e.flush(AppendResponse(e.reserve(), resp))
}

// reserve starts a fresh message, leaving room for the frame header.
func (e *Encoder) reserve() []byte {
	if e.buf == nil {
		e.buf = getBuf()
	}
	b := e.buf[:0]
	return append(b, make([]byte, frameHeaderLen)...)
}

// flush backfills the header over the appended payload and writes the
// whole frame in one call, so a message is never split across writes at
// this layer.
func (e *Encoder) flush(b []byte) error {
	e.buf = b // keep the grown buffer even on error
	payload := b[frameHeaderLen:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	n, err := e.w.Write(b)
	telemetry.WireBytesBinaryOut.Add(float64(n))
	if err != nil {
		return err
	}
	telemetry.WireMsgsBinaryOut.Inc()
	return nil
}

// Decoder reads framed binary messages from r, reusing one grow-only
// payload buffer across frames.
type Decoder struct {
	r   io.Reader
	max int64
	buf []byte
	// Reuse makes DecodeRequest/DecodeResponse recycle the payload
	// slices already hanging off the destination message. Only safe when
	// the caller consumes each message fully before reading the next;
	// the production paths retain payloads (tasks go to the store,
	// priors to the cache), so they leave it off.
	Reuse bool
}

// NewDecoder returns a Decoder reading framed messages from r. max
// bounds one frame's payload; <=0 means no limit.
func NewDecoder(r io.Reader, max int64) *Decoder {
	return &Decoder{r: r, max: max, buf: getBuf()}
}

// Release returns the decoder's buffer to the pool. The decoder must
// not be used afterwards.
func (d *Decoder) Release() {
	if d.buf != nil {
		putBuf(d.buf)
		d.buf = nil
	}
}

// next reads one frame and returns its CRC-verified payload, valid
// until the next call.
func (d *Decoder) next() ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return nil, err // io.EOF between frames means a clean close
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if d.max > 0 && int64(n) > d.max {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, d.max)
	}
	if d.buf == nil {
		d.buf = getBuf()
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	telemetry.WireBytesBinaryIn.Add(float64(n + frameHeaderLen))
	if got := crc32.ChecksumIEEE(d.buf); got != want {
		return nil, fmt.Errorf("wire: frame CRC mismatch: got %08x, want %08x", got, want)
	}
	telemetry.WireMsgsBinaryIn.Inc()
	return d.buf, nil
}

// DecodeRequest reads and decodes one framed request into req.
func (d *Decoder) DecodeRequest(req *Request) error {
	payload, err := d.next()
	if err != nil {
		return err
	}
	return DecodeRequest(payload, req, d.Reuse)
}

// DecodeResponse reads and decodes one framed response into resp.
func (d *Decoder) DecodeResponse(resp *Response) error {
	payload, err := d.next()
	if err != nil {
		return err
	}
	return DecodeResponse(payload, resp, d.Reuse)
}
