// Package wire is drdp's wire subsystem: the protocol message types
// shared by every tier (edge client, cloud server, shard cluster), a
// versioned fixed-layout binary codec for them, and the per-connection
// negotiation handshake that picks a codec while keeping gob as the
// universal fallback.
//
// # Codecs
//
// Two codecs can carry the (Request, Response) exchange:
//
//   - CodecGob: one gob stream per direction, exactly the original
//     protocol. Every pre-negotiation peer speaks it, so it is the
//     interop floor: an old edge against a new server (no hello sent →
//     the server answers gob) and a new edge against an old server
//     (hello rejected → the client redials and speaks gob) both work.
//   - CodecBinary: fixed-layout little-endian encoding framed as
//     [u32 length][u32 IEEE CRC32][payload]. No reflection on either
//     side; message buffers are reused per connection (and pooled
//     across short-lived encoders), so steady-state decode performs
//     zero allocations for payloads the caller does not retain.
//
// # Negotiation
//
// A binary-capable client opens every connection with a 12-byte hello:
//
//	[0x0b]['D' 'R' 'D' 'W'][version][preferred codec][5 reserved bytes]
//
// The leading 0x0b doubles as a gob message length (11 bytes follow), so
// a legacy gob server consumes the hello fully, fails decoding it, and
// closes the connection immediately — the client detects the closed
// stream, redials, and speaks pure gob. A negotiating server peeks at
// the first five bytes: on the magic it consumes the hello and answers
// an 8-byte ack naming the chosen codec; anything else is a legacy gob
// client and the peeked bytes flow unchanged into the gob decoder.
//
// Message kinds, framing, and the binary layouts are documented on the
// types in this package and in DESIGN.md (S22).
package wire

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Codec identifies how (Request, Response) values are serialized on a
// connection.
type Codec uint8

// Codecs, in negotiation-preference order.
const (
	// CodecGob is the reflection-based fallback every peer speaks.
	CodecGob Codec = iota
	// CodecBinary is the fixed-layout little-endian codec.
	CodecBinary
)

// String names the codec as it appears in telemetry labels and trace
// attributes.
func (c Codec) String() string {
	switch c {
	case CodecGob:
		return "gob"
	case CodecBinary:
		return "binary"
	default:
		return fmt.Sprintf("Codec(%d)", uint8(c))
	}
}

// Preference is a client-side dial policy: negotiate for binary (with
// the gob fallback), require binary strictly, or skip negotiation
// entirely.
type Preference int

// Dial preferences.
const (
	// PreferAuto sends the hello and takes whatever the server picks,
	// falling back to pure gob when the server predates negotiation.
	PreferAuto Preference = iota
	// PreferGob skips the hello and speaks pure gob — byte-for-byte the
	// pre-negotiation client, used against legacy servers and by the
	// dual-codec test matrix.
	PreferGob
	// PreferBinary sends the hello and requires the binary codec: a
	// server that kills the handshake (legacy gob-only) or answers gob
	// fails the dial with an error instead of silently falling back.
	// Use it where a gob session would be a deployment bug — e.g. a
	// regional uplink sized for the binary codec's byte budget.
	PreferBinary
)

// String names the preference as it appears in flags and errors.
func (p Preference) String() string {
	switch p {
	case PreferAuto:
		return "auto"
	case PreferGob:
		return "gob"
	case PreferBinary:
		return "binary"
	default:
		return fmt.Sprintf("Preference(%d)", int(p))
	}
}

// ParsePreference maps a configuration string to a Preference: "" and
// "auto" negotiate with gob fallback, "binary" requires the binary
// codec strictly, "gob" skips negotiation. Any other value — including
// the typo'd codec name that used to silently mean auto — is an error,
// so a misconfigured -wire/DRDP_WIRE fails loudly instead of quietly
// changing the fleet's codec mix.
func ParsePreference(s string) (Preference, error) {
	switch s {
	case "", "auto":
		return PreferAuto, nil
	case "gob":
		return PreferGob, nil
	case "binary":
		return PreferBinary, nil
	default:
		return PreferAuto, fmt.Errorf("wire: unknown codec preference %q (valid: auto, binary, gob)", s)
	}
}

// DefaultPreference is the process-wide dial policy, read once from the
// DRDP_WIRE environment variable ("gob" forces the fallback codec,
// "binary" requires the binary codec strictly, ""/"auto" negotiates).
// An unrecognized value is reported as an error alongside PreferAuto;
// dial paths refuse to proceed on it. The chaos and cluster suites run
// twice, once per value, to pin both codec paths.
var DefaultPreference = sync.OnceValues(func() (Preference, error) {
	p, err := ParsePreference(os.Getenv("DRDP_WIRE"))
	if err != nil {
		return PreferAuto, fmt.Errorf("DRDP_WIRE: %w", err)
	}
	return p, nil
})

// Negotiation constants.
const (
	// Version is the wire-protocol version carried in hello and ack.
	Version = 1
	// helloLen is the on-the-wire hello size: the gob-compatible length
	// byte plus magic, version, codec, and reserved padding.
	helloLen = 12
	// ackLen is the on-the-wire ack size.
	ackLen = 8
	// DefaultNegotiateTimeout bounds the hello/ack exchange so a client
	// against a silent peer degrades to gob quickly instead of hanging.
	DefaultNegotiateTimeout = 2 * time.Second
)

// magic tags negotiation messages. The hello's leading length byte is
// not part of it; see the package comment.
var magic = [4]byte{'D', 'R', 'D', 'W'}

// WriteHello sends the client hello naming the preferred codec.
func WriteHello(w io.Writer, prefer Codec) error {
	var b [helloLen]byte
	b[0] = helloLen - 1 // a valid gob message length: legacy servers consume the rest
	copy(b[1:5], magic[:])
	b[5] = Version
	b[6] = byte(prefer)
	_, err := w.Write(b[:])
	return err
}

// SniffHello reports whether the connection's first bytes are a
// negotiation hello, without consuming them. A short or failed peek
// (EOF, deadline) reports false and lets the caller's decode path
// surface the underlying condition.
func SniffHello(br *bufio.Reader) bool {
	b, err := br.Peek(5)
	if err != nil || len(b) < 5 {
		return false
	}
	return b[0] == helloLen-1 && b[1] == magic[0] && b[2] == magic[1] && b[3] == magic[2] && b[4] == magic[3]
}

// ReadHello consumes a sniffed hello and returns the client's preferred
// codec and protocol version.
func ReadHello(r io.Reader) (Codec, byte, error) {
	var b [helloLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return CodecGob, 0, fmt.Errorf("wire: read hello: %w", err)
	}
	if b[0] != helloLen-1 || [4]byte(b[1:5]) != magic {
		return CodecGob, 0, fmt.Errorf("wire: bad hello magic")
	}
	return Codec(b[6]), b[5], nil
}

// WriteAck answers a hello with the server's chosen codec.
func WriteAck(w io.Writer, chosen Codec) error {
	var b [ackLen]byte
	copy(b[0:4], magic[:])
	b[4] = Version
	b[5] = byte(chosen)
	_, err := w.Write(b[:])
	return err
}

// ReadAck reads the server's negotiation answer. Any error — including
// a peer that closed the connection because it never heard of the
// handshake — means the caller must drop the connection and fall back
// to gob on a fresh one.
func ReadAck(r io.Reader) (Codec, error) {
	var b [ackLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return CodecGob, fmt.Errorf("wire: read ack: %w", err)
	}
	if [4]byte(b[0:4]) != magic {
		return CodecGob, fmt.Errorf("wire: bad ack magic")
	}
	c := Codec(b[5])
	if c != CodecGob && c != CodecBinary {
		return CodecGob, fmt.Errorf("wire: server chose unknown codec %d", b[5])
	}
	return c, nil
}
