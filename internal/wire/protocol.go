package wire

import (
	"errors"
	"fmt"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/store"
)

// The protocol message types live here so both codecs — and every tier
// that speaks them — share one definition. Package edge re-exports them
// under their historical names; the type names themselves are unchanged,
// which keeps the gob stream byte-compatible with pre-move peers (gob
// identifies struct types by bare name, not package path).

// RequestKind enumerates protocol operations.
type RequestKind int

// Protocol operations.
const (
	// GetPrior asks the cloud for the current DP prior.
	GetPrior RequestKind = iota + 1
	// ReportTask uploads a solved task posterior for incorporation.
	ReportTask
	// GetStats asks for cloud-side counters (task count, prior version).
	GetStats
	// GetPriorDelta asks for the difference between the prior at
	// KnownVersion (which the client holds) and the current prior. The
	// server answers with a component-level delta when it still retains
	// that version and the delta beats the full prior on the wire;
	// otherwise it falls back to the full prior. NotModified when the
	// client is already current.
	GetPriorDelta
	// PullLog is the replication stream: a follower asks its leader for
	// the log frames after AfterSeq (the follower's durable version, which
	// doubles as its fsync-gated acknowledgement) plus the current verdict
	// sidecar. The leader records the ack before answering, so semi-sync
	// appends can wait on it.
	PullLog
	// GetShardMap asks the coordinator for the current shard map.
	// KnownVersion makes it conditional, like GetPrior: an unchanged map
	// costs a handshake, not a payload.
	GetShardMap
	// BatchAddTask uploads a whole round's task posteriors in one framed
	// write (Request.Tasks). The server appends them in order, kicks one
	// rebuild, and waits for the semi-sync quorum once — on the final
	// version — instead of per task. Response.BatchDone counts the tasks
	// applied, so a mid-batch validation rejection tells the client
	// exactly where the batch stopped.
	BatchAddTask
)

// String names the request kind.
func (k RequestKind) String() string {
	switch k {
	case GetPrior:
		return "get-prior"
	case ReportTask:
		return "report-task"
	case GetStats:
		return "get-stats"
	case GetPriorDelta:
		return "get-prior-delta"
	case PullLog:
		return "pull-log"
	case GetShardMap:
		return "get-shard-map"
	case BatchAddTask:
		return "batch-add-task"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Request is the client→server message.
type Request struct {
	Kind RequestKind
	// Dim is the parameter dimensionality the edge expects (GetPrior);
	// the server rejects mismatches instead of shipping a useless prior.
	Dim int
	// KnownVersion enables conditional fetch (GetPrior) and delta sync
	// (GetPriorDelta): it names the prior version the client already
	// holds. When the cloud's prior version still equals it, the server
	// answers NotModified with no payload — the refresh costs a handshake
	// instead of the prior. For GetPriorDelta it is additionally the base
	// version the returned delta patches.
	KnownVersion uint64
	// Task carries the uploaded posterior for ReportTask.
	Task *dpprior.TaskPosterior
	// Tasks carries a round's posteriors for BatchAddTask, in upload
	// order. Old gob peers ignore the field (gob skips unknown fields),
	// and old servers reject the kind itself, so the batch op degrades
	// loudly, never silently.
	Tasks []dpprior.TaskPosterior
	// MinVersion is the read-your-writes floor for GetPrior/GetPriorDelta
	// against a replica: the highest prior version this edge has already
	// applied. A replica whose built prior is older answers CodeLagging
	// instead of serving a prior the edge would have to roll back to.
	// Zero disables the gate.
	MinVersion uint64
	// FollowerID identifies the pulling replica on PullLog, so the leader
	// can track per-follower acknowledgements for semi-sync appends.
	FollowerID int
	// AfterSeq, for PullLog, is the follower's durable store version: the
	// leader streams frames strictly above it. Because the follower only
	// advances its version after an fsync, AfterSeq is also its
	// acknowledgement of everything at or below.
	AfterSeq uint64
	// MaxFrames caps one PullLog batch (0 = server default).
	MaxFrames int
	// TraceID and ParentSpan propagate distributed-trace context
	// (internal/trace). Zero means untraced — the server allocates no
	// spans — and is what every pre-trace client sends, so old clients
	// and new servers (and vice versa) stay wire-compatible: both codecs
	// leave missing fields at their zero value.
	TraceID    uint64
	ParentSpan uint64
}

// RespCode classifies server-side failures so clients can tell a
// legitimate condition (cold cloud) from a real rejection without
// string-matching across the wire.
type RespCode int

// Response codes.
const (
	// CodeOK is the zero value: no error.
	CodeOK RespCode = iota
	// CodeNoTasks means the cloud has no prior yet — a normal cold start,
	// not a fault; devices should train locally and try again later.
	CodeNoTasks
	// CodeBadRequest covers validation rejections (dim mismatch,
	// malformed task). Retrying the identical request cannot succeed.
	CodeBadRequest
	// CodeInternal covers unexpected server-side failures.
	CodeInternal
	// CodeOverloaded means the server shed the request to protect itself
	// (connection limit reached or handler deadline exceeded). Unlike the
	// other rejections it is retryable: the same request is expected to
	// succeed once load drains, so ResilientClient backs off and retries
	// instead of failing.
	CodeOverloaded
	// CodeNotLeader means a write (ReportTask) or replication pull reached
	// a follower replica. Not retryable against the same node: the cluster
	// client re-resolves the shard map and redirects to the leader.
	CodeNotLeader
	// CodeLagging means this replica's built prior is older than the
	// Request.MinVersion floor the edge already holds. Not retryable
	// against the same node; the cluster client falls through to the
	// shard leader (or keeps its cached prior).
	CodeLagging
)

// Response is the server→client message. Err is non-empty on failure
// (neither codec can carry error values faithfully across processes);
// Code classifies it.
type Response struct {
	Err   string
	Code  RespCode
	Prior *dpprior.Prior
	// Delta, for GetPriorDelta, patches the prior at Request.KnownVersion
	// up to Version; exactly one of Prior/Delta is set on a successful
	// prior response with a payload.
	Delta   *dpprior.PriorDelta
	Stats   Stats
	Version uint64 // prior version at the time of the response
	// NotModified reports that the client's KnownVersion is current and
	// no prior payload was shipped.
	NotModified bool
	// Frames is the PullLog payload: verbatim log frames after AfterSeq.
	Frames []store.Frame
	// VerdictMap, on PullLog, replicates the leader's admission verdict
	// sidecar (seq → quarantined) so a promoted follower keeps every
	// quarantine decision.
	VerdictMap map[uint64]bool
	// UpTo, on PullLog, is the leader's store version at answer time; the
	// follower's lag is UpTo minus its own version.
	UpTo uint64
	// Map is the GetShardMap payload.
	Map *ShardMap
	// BatchDone, on BatchAddTask, counts the tasks applied before the
	// batch completed or was rejected.
	BatchDone int
}

// Stats are cloud-side counters.
type Stats struct {
	Tasks        int    // task posteriors incorporated so far
	PriorVersion uint64 // bumped on every rebuild
	Components   int    // components in the current prior
	WireBytes    int    // approximate serialized prior size
	Accepted     int    // tasks admitted into the served prior
	Quarantined  int    // tasks held out of the prior by the admission judge
	Rejected     int    // uploads refused by semantic validation
}

// ShardMap is the cluster topology an edge needs to route requests: one
// replica set per shard, with the leader named explicitly. The
// coordinator serves it over GetShardMap with the same conditional-fetch
// discipline as the prior (KnownVersion → NotModified), and bumps
// Version on every change — a promotion after leader loss reaches edges
// as a version bump, so redirect handling is just "refetch the map when
// a node answers CodeNotLeader or stops answering".
type ShardMap struct {
	// Version increases on every topology change (promotion, membership).
	Version uint64
	// Shards lists the replica sets; routing is by index.
	Shards []ShardReplicas
}

// ShardReplicas is one shard's replica set.
type ShardReplicas struct {
	// Leader is the address that accepts writes (ReportTask) and serves
	// the replication stream.
	Leader string
	// Followers are the read replicas pulling the leader's log.
	Followers []string
}

// Validate checks structural sanity: at least one shard, every shard led.
func (m *ShardMap) Validate() error {
	if len(m.Shards) == 0 {
		return errors.New("edge: shard map has no shards")
	}
	for i, s := range m.Shards {
		if s.Leader == "" {
			return fmt.Errorf("edge: shard %d has no leader", i)
		}
	}
	return nil
}

// ShardOf routes a task fingerprint to a shard by rendezvous
// (highest-random-weight) hashing: each shard scores the key through a
// mix keyed by its index, and the highest score wins. Every client with
// the same map computes the same owner, no coordination; and unlike
// fp % N, changing the shard count only moves the keys that must move.
func (m *ShardMap) ShardOf(fingerprint uint64) int {
	best, bestScore := 0, uint64(0)
	for i := range m.Shards {
		score := mix64(fingerprint ^ mix64(uint64(i)+0x9e3779b97f4a7c15))
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Replicas returns the shard's full replica set, leader first — the
// fall-through order for version-gated reads.
func (s *ShardReplicas) Replicas() []string {
	out := make([]string, 0, 1+len(s.Followers))
	out = append(out, s.Leader)
	out = append(out, s.Followers...)
	return out
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mix for rendezvous scoring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
