package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/store"
)

// The fixed-layout binary codec. Every message payload (the bytes
// inside one [length][crc] frame) starts with a message-type byte and
// encodes fields in a fixed order, little-endian, with float64s as
// IEEE-754 bits. Optional payloads are gated by a flags word instead of
// per-field presence bytes. There is no reflection anywhere: encoding
// appends into a caller-owned buffer, decoding walks an offset through
// the payload with explicit bounds checks, and every element count is
// sanity-checked against the bytes actually remaining before anything
// is allocated — a malformed frame can fail, but it cannot balloon
// memory or panic.

// Message type bytes.
const (
	msgRequest  = 1
	msgResponse = 2
)

// Request flag bits.
const (
	reqHasTask = 1 << iota
	reqHasTasks
)

// Response flag bits.
const (
	respHasErr = 1 << iota
	respNotModified
	respHasPrior
	respHasDelta
	respHasFrames
	respHasVerdicts
	respHasMap
	respHasStats
)

// maxWireString bounds one decoded string (error text, node address).
const maxWireString = 1 << 20

// ---------------------------------------------------------------------
// append helpers (encode side)

func appendU8(b []byte, v byte) []byte     { return append(b, v) }
func appendU16(b []byte, v uint16) []byte  { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte  { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(b, v) }
func appendI32(b []byte, v int) []byte     { return appendU32(b, uint32(int32(v))) }
func appendI64(b []byte, v int64) []byte   { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendF64s(b []byte, xs []float64) []byte {
	b = appendU32(b, uint32(len(xs)))
	for _, x := range xs {
		b = appendU64(b, math.Float64bits(x))
	}
	return b
}

// ---------------------------------------------------------------------
// rbuf (decode side): an offset walking a payload with a sticky error.
// Every getter bounds-checks; after the first failure all getters
// return zero values, so decode functions read straight through and
// check r.err once.

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *rbuf) remaining() int { return len(r.b) - r.off }

func (r *rbuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.fail("truncated payload: need %d bytes, have %d", n, r.remaining())
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *rbuf) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *rbuf) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *rbuf) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *rbuf) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *rbuf) i32() int      { return int(int32(r.u32())) }
func (r *rbuf) i64() int64    { return int64(r.u64()) }
func (r *rbuf) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *rbuf) boolean() bool { return r.u8() != 0 }

func (r *rbuf) str() string {
	n := r.u32()
	if n > maxWireString {
		r.fail("string length %d exceeds limit", n)
		return ""
	}
	s := r.take(int(n))
	return string(s)
}

// count reads an element count and verifies the payload could actually
// hold that many elements of at least minBytes each — the guard that
// keeps a corrupt count from driving a giant allocation.
func (r *rbuf) count(minBytes int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minBytes) > int64(r.remaining()) {
		r.fail("element count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

// f64s decodes a counted float64 slice. With reuse, dst's backing array
// is kept when it is big enough — the zero-allocation steady state.
func (r *rbuf) f64s(dst []float64, reuse bool) []float64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	if !reuse || cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	s := r.take(8 * n)
	if r.err != nil {
		return nil
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(s[8*i:]))
	}
	return dst
}

// bytes decodes a counted byte slice, copying out of the frame buffer
// (which the decoder reuses for the next frame). With reuse, dst's
// backing array is kept when big enough.
func (r *rbuf) bytes(dst []byte, reuse bool) []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	if !reuse || cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	copy(dst, r.take(n))
	if r.err != nil {
		return nil
	}
	return dst
}

// ---------------------------------------------------------------------
// TaskPosterior

func appendTask(b []byte, t *dpprior.TaskPosterior) []byte {
	b = appendF64s(b, t.Mu)
	b = appendDense(b, t.Sigma)
	b = appendI64(b, int64(t.N))
	return b
}

func decodeTask(r *rbuf, t *dpprior.TaskPosterior, reuse bool) {
	t.Mu = r.f64s(t.Mu, reuse)
	t.Sigma = decodeDense(r, t.Sigma, reuse)
	t.N = int(r.i64())
}

func appendDense(b []byte, d *mat.Dense) []byte {
	if d == nil {
		return appendU8(b, 0)
	}
	b = appendU8(b, 1)
	b = appendU32(b, uint32(d.Rows))
	b = appendU32(b, uint32(d.Cols))
	b = appendF64s(b, d.Data)
	return b
}

func decodeDense(r *rbuf, old *mat.Dense, reuse bool) *mat.Dense {
	if !r.boolean() {
		return nil
	}
	rows, cols := int(r.u32()), int(r.u32())
	d := old
	if !reuse || d == nil {
		d = &mat.Dense{}
	}
	d.Rows, d.Cols = rows, cols
	d.Data = r.f64s(d.Data, reuse)
	if r.err == nil && len(d.Data) != rows*cols {
		r.fail("dense %dx%d carries %d values", rows, cols, len(d.Data))
	}
	return d
}

// ---------------------------------------------------------------------
// Prior / PriorDelta

func appendPrior(b []byte, p *dpprior.Prior) []byte {
	b = appendF64(b, p.Alpha)
	b = appendF64(b, p.BaseWeight)
	b = appendF64(b, p.BaseSigma)
	b = appendI32(b, p.Dim)
	b = appendU32(b, uint32(len(p.Components)))
	for i := range p.Components {
		b = appendComponent(b, &p.Components[i])
	}
	return b
}

func decodePrior(r *rbuf, old *dpprior.Prior, reuse bool) *dpprior.Prior {
	p := old
	if !reuse || p == nil {
		p = &dpprior.Prior{}
	}
	p.Alpha = r.f64()
	p.BaseWeight = r.f64()
	p.BaseSigma = r.f64()
	p.Dim = r.i32()
	// A component is at least weight+count+muLen+sigmaFlag = 21 bytes.
	n := r.count(21)
	if r.err != nil {
		return nil
	}
	if !reuse || cap(p.Components) < n {
		p.Components = make([]dpprior.Component, n)
	}
	p.Components = p.Components[:n]
	for i := range p.Components {
		decodeComponent(r, &p.Components[i], reuse)
	}
	return p
}

func appendComponent(b []byte, c *dpprior.Component) []byte {
	b = appendF64(b, c.Weight)
	b = appendF64(b, c.Count)
	b = appendF64s(b, c.Mu)
	b = appendDense(b, c.Sigma)
	return b
}

func decodeComponent(r *rbuf, c *dpprior.Component, reuse bool) {
	c.Weight = r.f64()
	c.Count = r.f64()
	c.Mu = r.f64s(c.Mu, reuse)
	c.Sigma = decodeDense(r, c.Sigma, reuse)
}

func appendDelta(b []byte, d *dpprior.PriorDelta) []byte {
	b = appendU64(b, d.FromVersion)
	b = appendU64(b, d.ToVersion)
	b = appendF64(b, d.Alpha)
	b = appendF64(b, d.BaseWeight)
	b = appendF64(b, d.BaseSigma)
	b = appendI32(b, d.Dim)
	b = appendI32(b, d.NumComponents)
	b = appendU32(b, uint32(len(d.Keep)))
	for _, k := range d.Keep {
		b = appendI32(b, k.Old)
		b = appendI32(b, k.New)
		b = appendF64(b, k.Weight)
		b = appendF64(b, k.Count)
	}
	b = appendU32(b, uint32(len(d.Add)))
	for i := range d.Add {
		b = appendI32(b, d.Add[i].New)
		b = appendComponent(b, &d.Add[i].Comp)
	}
	return b
}

func decodeDelta(r *rbuf, old *dpprior.PriorDelta, reuse bool) *dpprior.PriorDelta {
	d := old
	if !reuse || d == nil {
		d = &dpprior.PriorDelta{}
	}
	d.FromVersion = r.u64()
	d.ToVersion = r.u64()
	d.Alpha = r.f64()
	d.BaseWeight = r.f64()
	d.BaseSigma = r.f64()
	d.Dim = r.i32()
	d.NumComponents = r.i32()
	nk := r.count(24)
	if r.err != nil {
		return nil
	}
	if !reuse || cap(d.Keep) < nk {
		d.Keep = make([]dpprior.DeltaKeep, nk)
	}
	d.Keep = d.Keep[:nk]
	for i := range d.Keep {
		d.Keep[i].Old = r.i32()
		d.Keep[i].New = r.i32()
		d.Keep[i].Weight = r.f64()
		d.Keep[i].Count = r.f64()
	}
	na := r.count(25)
	if r.err != nil {
		return nil
	}
	if !reuse || cap(d.Add) < na {
		d.Add = make([]dpprior.DeltaAdd, na)
	}
	d.Add = d.Add[:na]
	for i := range d.Add {
		d.Add[i].New = r.i32()
		decodeComponent(r, &d.Add[i].Comp, reuse)
	}
	return d
}

// ---------------------------------------------------------------------
// Request

// AppendRequest encodes req after b's current contents and returns the
// extended slice. Exposed for benchmarks and tests; connections go
// through Encoder, which adds the frame header.
func AppendRequest(b []byte, req *Request) []byte {
	b = appendU8(b, msgRequest)
	b = appendU8(b, byte(req.Kind))
	var flags uint16
	if req.Task != nil {
		flags |= reqHasTask
	}
	if len(req.Tasks) > 0 {
		flags |= reqHasTasks
	}
	b = appendU16(b, flags)
	b = appendI32(b, req.Dim)
	b = appendU64(b, req.KnownVersion)
	b = appendU64(b, req.MinVersion)
	b = appendI32(b, req.FollowerID)
	b = appendU64(b, req.AfterSeq)
	b = appendI32(b, req.MaxFrames)
	b = appendU64(b, req.TraceID)
	b = appendU64(b, req.ParentSpan)
	if req.Task != nil {
		b = appendTask(b, req.Task)
	}
	if len(req.Tasks) > 0 {
		b = appendU32(b, uint32(len(req.Tasks)))
		for i := range req.Tasks {
			b = appendTask(b, &req.Tasks[i])
		}
	}
	return b
}

// DecodeRequest decodes one request payload into req, overwriting every
// field. With reuse, payload slices already hanging off req are
// recycled — only safe when the caller does not retain them past the
// next decode.
func DecodeRequest(payload []byte, req *Request, reuse bool) error {
	r := &rbuf{b: payload}
	if t := r.u8(); r.err == nil && t != msgRequest {
		return fmt.Errorf("wire: message type %d, want request", t)
	}
	req.Kind = RequestKind(r.u8())
	flags := r.u16()
	req.Dim = r.i32()
	req.KnownVersion = r.u64()
	req.MinVersion = r.u64()
	req.FollowerID = r.i32()
	req.AfterSeq = r.u64()
	req.MaxFrames = r.i32()
	req.TraceID = r.u64()
	req.ParentSpan = r.u64()
	if flags&reqHasTask != 0 {
		t := req.Task
		if !reuse || t == nil {
			t = &dpprior.TaskPosterior{}
		}
		decodeTask(r, t, reuse)
		req.Task = t
	} else {
		req.Task = nil
	}
	if flags&reqHasTasks != 0 {
		// A task is at least muLen+sigmaFlag+n = 13 bytes.
		n := r.count(13)
		if r.err != nil {
			return r.err
		}
		if !reuse || cap(req.Tasks) < n {
			req.Tasks = make([]dpprior.TaskPosterior, n)
		}
		req.Tasks = req.Tasks[:n]
		for i := range req.Tasks {
			decodeTask(r, &req.Tasks[i], reuse)
		}
	} else {
		req.Tasks = nil
	}
	if r.err == nil && r.remaining() != 0 {
		r.fail("request has %d trailing bytes", r.remaining())
	}
	return r.err
}

// ---------------------------------------------------------------------
// Response

// AppendResponse encodes resp after b's current contents and returns
// the extended slice.
func AppendResponse(b []byte, resp *Response) []byte {
	b = appendU8(b, msgResponse)
	b = appendU8(b, byte(resp.Code))
	var flags uint16
	if resp.Err != "" {
		flags |= respHasErr
	}
	if resp.NotModified {
		flags |= respNotModified
	}
	if resp.Prior != nil {
		flags |= respHasPrior
	}
	if resp.Delta != nil {
		flags |= respHasDelta
	}
	if resp.Frames != nil {
		flags |= respHasFrames
	}
	if resp.VerdictMap != nil {
		flags |= respHasVerdicts
	}
	if resp.Map != nil {
		flags |= respHasMap
	}
	if resp.Stats != (Stats{}) {
		flags |= respHasStats
	}
	b = appendU16(b, flags)
	b = appendU64(b, resp.Version)
	b = appendU64(b, resp.UpTo)
	b = appendI32(b, resp.BatchDone)
	if flags&respHasErr != 0 {
		b = appendStr(b, resp.Err)
	}
	if flags&respHasStats != 0 {
		b = appendI64(b, int64(resp.Stats.Tasks))
		b = appendU64(b, resp.Stats.PriorVersion)
		b = appendI64(b, int64(resp.Stats.Components))
		b = appendI64(b, int64(resp.Stats.WireBytes))
		b = appendI64(b, int64(resp.Stats.Accepted))
		b = appendI64(b, int64(resp.Stats.Quarantined))
		b = appendI64(b, int64(resp.Stats.Rejected))
	}
	if flags&respHasPrior != 0 {
		b = appendPrior(b, resp.Prior)
	}
	if flags&respHasDelta != 0 {
		b = appendDelta(b, resp.Delta)
	}
	if flags&respHasFrames != 0 {
		b = appendU32(b, uint32(len(resp.Frames)))
		for i := range resp.Frames {
			b = appendU64(b, resp.Frames[i].Seq)
			b = appendU32(b, uint32(len(resp.Frames[i].Bytes)))
			b = append(b, resp.Frames[i].Bytes...)
		}
	}
	if flags&respHasVerdicts != 0 {
		b = appendU32(b, uint32(len(resp.VerdictMap)))
		for seq, q := range resp.VerdictMap {
			b = appendU64(b, seq)
			if q {
				b = appendU8(b, 1)
			} else {
				b = appendU8(b, 0)
			}
		}
	}
	if flags&respHasMap != 0 {
		b = appendU64(b, resp.Map.Version)
		b = appendU32(b, uint32(len(resp.Map.Shards)))
		for i := range resp.Map.Shards {
			b = appendStr(b, resp.Map.Shards[i].Leader)
			b = appendU32(b, uint32(len(resp.Map.Shards[i].Followers)))
			for _, f := range resp.Map.Shards[i].Followers {
				b = appendStr(b, f)
			}
		}
	}
	return b
}

// DecodeResponse decodes one response payload into resp, overwriting
// every field. With reuse, payload slices already hanging off resp are
// recycled — only safe when the caller does not retain them past the
// next decode.
func DecodeResponse(payload []byte, resp *Response, reuse bool) error {
	r := &rbuf{b: payload}
	if t := r.u8(); r.err == nil && t != msgResponse {
		return fmt.Errorf("wire: message type %d, want response", t)
	}
	resp.Code = RespCode(r.u8())
	flags := r.u16()
	resp.Version = r.u64()
	resp.UpTo = r.u64()
	resp.BatchDone = r.i32()
	resp.NotModified = flags&respNotModified != 0
	if flags&respHasErr != 0 {
		resp.Err = r.str()
	} else {
		resp.Err = ""
	}
	if flags&respHasStats != 0 {
		resp.Stats.Tasks = int(r.i64())
		resp.Stats.PriorVersion = r.u64()
		resp.Stats.Components = int(r.i64())
		resp.Stats.WireBytes = int(r.i64())
		resp.Stats.Accepted = int(r.i64())
		resp.Stats.Quarantined = int(r.i64())
		resp.Stats.Rejected = int(r.i64())
	} else {
		resp.Stats = Stats{}
	}
	if flags&respHasPrior != 0 {
		resp.Prior = decodePrior(r, resp.Prior, reuse)
	} else {
		resp.Prior = nil
	}
	if flags&respHasDelta != 0 {
		resp.Delta = decodeDelta(r, resp.Delta, reuse)
	} else {
		resp.Delta = nil
	}
	if flags&respHasFrames != 0 {
		// A frame is at least seq+len = 12 bytes.
		n := r.count(12)
		if r.err != nil {
			return r.err
		}
		if !reuse || cap(resp.Frames) < n {
			resp.Frames = make([]store.Frame, n)
		}
		resp.Frames = resp.Frames[:n]
		for i := range resp.Frames {
			resp.Frames[i].Seq = r.u64()
			resp.Frames[i].Bytes = r.bytes(resp.Frames[i].Bytes, reuse)
		}
	} else {
		resp.Frames = nil
	}
	if flags&respHasVerdicts != 0 {
		n := r.count(9)
		if r.err != nil {
			return r.err
		}
		m := resp.VerdictMap
		if !reuse || m == nil {
			m = make(map[uint64]bool, n)
		} else {
			clear(m)
		}
		for i := 0; i < n; i++ {
			m[r.u64()] = r.boolean()
		}
		resp.VerdictMap = m
	} else {
		resp.VerdictMap = nil
	}
	if flags&respHasMap != 0 {
		m := resp.Map
		if !reuse || m == nil {
			m = &ShardMap{}
		}
		m.Version = r.u64()
		// A shard entry is at least leaderLen+followerCount = 8 bytes.
		n := r.count(8)
		if r.err != nil {
			return r.err
		}
		if !reuse || cap(m.Shards) < n {
			m.Shards = make([]ShardReplicas, n)
		}
		m.Shards = m.Shards[:n]
		for i := range m.Shards {
			m.Shards[i].Leader = r.str()
			nf := r.count(4)
			if r.err != nil {
				return r.err
			}
			if !reuse || cap(m.Shards[i].Followers) < nf {
				m.Shards[i].Followers = make([]string, nf)
			}
			m.Shards[i].Followers = m.Shards[i].Followers[:nf]
			for j := range m.Shards[i].Followers {
				m.Shards[i].Followers[j] = r.str()
			}
		}
		resp.Map = m
	} else {
		resp.Map = nil
	}
	if r.err == nil && r.remaining() != 0 {
		r.fail("response has %d trailing bytes", r.remaining())
	}
	return r.err
}
