package wire

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
)

// The codec microbenchmarks behind Table 16: one hot upload message (a
// batch of task posteriors) and one hot download message (a prior),
// encoded and decoded by both codecs. The gob side measures a
// persistent stream — type definitions paid once, exactly as on a real
// connection — so the comparison is steady-state against steady-state.

func benchRequest() *Request {
	tasks := make([]dpprior.TaskPosterior, 16)
	for i := range tasks {
		tasks[i] = testTask(8, float64(i))
	}
	return &Request{Kind: BatchAddTask, Tasks: tasks}
}

func benchResponse() *Response {
	return &Response{Prior: testPrior(8, 12), Version: 42}
}

// replayReader serves a gob stream's head (type definitions + first
// value) once, then replays one message's bytes forever — a persistent
// connection delivering the same message repeatedly.
type replayReader struct {
	head []byte
	msg  []byte
	off  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if len(r.head) > 0 {
		n := copy(p, r.head)
		r.head = r.head[n:]
		return n, nil
	}
	if r.off == len(r.msg) {
		r.off = 0
	}
	n := copy(p, r.msg[r.off:])
	r.off += n
	return n, nil
}

func benchEncodeBinary[T any](b *testing.B, v *T, enc func([]byte, *T) []byte) {
	var buf []byte
	buf = enc(buf[:0], v)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = enc(buf[:0], v)
	}
}

func benchEncodeGob[T any](b *testing.B, v *T) {
	enc := gob.NewEncoder(io.Discard)
	if err := enc.Encode(v); err != nil {
		b.Fatal(err)
	}
	var count bytes.Buffer
	if err := gob.NewEncoder(&count).Encode(v); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(count.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeGob[T any](b *testing.B, v *T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		b.Fatal(err)
	}
	head := buf.Len()
	if err := enc.Encode(v); err != nil {
		b.Fatal(err)
	}
	all := buf.Bytes()
	r := &replayReader{head: all[:head], msg: all[head:]}
	dec := gob.NewDecoder(r)
	out := new(T)
	if err := dec.Decode(out); err != nil { // consumes the head value
		b.Fatal(err)
	}
	b.SetBytes(int64(len(all) - head))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireRequestEncode(b *testing.B) {
	req := benchRequest()
	b.Run("binary", func(b *testing.B) { benchEncodeBinary(b, req, AppendRequest) })
	b.Run("gob", func(b *testing.B) { benchEncodeGob(b, req) })
}

func BenchmarkWireRequestDecode(b *testing.B) {
	req := benchRequest()
	b.Run("binary", func(b *testing.B) {
		payload := AppendRequest(nil, req)
		var out Request
		if err := DecodeRequest(payload, &out, true); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := DecodeRequest(payload, &out, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) { benchDecodeGob(b, req) })
}

func BenchmarkWireResponseEncode(b *testing.B) {
	resp := benchResponse()
	b.Run("binary", func(b *testing.B) { benchEncodeBinary(b, resp, AppendResponse) })
	b.Run("gob", func(b *testing.B) { benchEncodeGob(b, resp) })
}

func BenchmarkWireResponseDecode(b *testing.B) {
	resp := benchResponse()
	b.Run("binary", func(b *testing.B) {
		payload := AppendResponse(nil, resp)
		var out Response
		if err := DecodeResponse(payload, &out, true); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := DecodeResponse(payload, &out, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) { benchDecodeGob(b, resp) })
}
