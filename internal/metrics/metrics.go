// Package metrics implements the evaluation measurements reported by the
// experiment suite: accuracy/error, negative log-likelihood, confusion
// matrices, expected calibration error, and robust-loss certificates.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

// Report aggregates the standard per-(model, dataset) measurements.
type Report struct {
	Accuracy   float64
	ErrorRate  float64
	NLL        float64 // mean loss (negative log likelihood for classifiers)
	RobustLoss float64 // worst-case loss certificate (0 radius = NLL)
}

// Evaluate computes a Report for params on ds under the given
// uncertainty set (pass the zero Set for plain evaluation).
func Evaluate(m model.Model, params mat.Vec, ds *data.Dataset, set dro.Set) Report {
	losses := m.Losses(params, ds.X, ds.Y, nil)
	acc := model.Accuracy(m, params, ds.X, ds.Y)
	robust, _ := set.WorstCase(losses, m.Lipschitz(params))
	return Report{
		Accuracy:   acc,
		ErrorRate:  1 - acc,
		NLL:        mat.Mean(losses),
		RobustLoss: robust,
	}
}

// ConfusionMatrix returns counts[i][j] = samples of true class i predicted
// as class j, for classification datasets. Binary ±1 labels map to rows
// {0: −1, 1: +1}.
func ConfusionMatrix(m model.Model, params mat.Vec, ds *data.Dataset) ([][]int, error) {
	classes := ds.NumClasses
	if classes < 2 {
		return nil, fmt.Errorf("metrics: ConfusionMatrix needs a classification dataset")
	}
	idx := func(y float64) int {
		if classes == 2 {
			if y > 0 {
				return 1
			}
			return 0
		}
		return int(y)
	}
	out := make([][]int, classes)
	for i := range out {
		out[i] = make([]int, classes)
	}
	for i := 0; i < ds.Len(); i++ {
		truth := idx(ds.Y[i])
		pred := idx(m.Predict(params, ds.X.Row(i)))
		if truth < 0 || truth >= classes || pred < 0 || pred >= classes {
			return nil, fmt.Errorf("metrics: label/prediction out of range at row %d", i)
		}
		out[truth][pred]++
	}
	return out, nil
}

// ECE computes the expected calibration error of a binary probabilistic
// classifier over the given number of equal-width confidence bins.
// proba must return P(y=+1 | x).
func ECE(proba func(x mat.Vec) float64, ds *data.Dataset, bins int) (float64, error) {
	if ds.NumClasses != 2 {
		return 0, fmt.Errorf("metrics: ECE needs binary ±1 labels")
	}
	if bins <= 0 {
		bins = 10
	}
	type bin struct {
		conf, correct, n float64
	}
	bs := make([]bin, bins)
	for i := 0; i < ds.Len(); i++ {
		p := proba(ds.X.Row(i))
		// Confidence of the predicted class.
		pred, conf := 1.0, p
		if p < 0.5 {
			pred, conf = -1.0, 1-p
		}
		b := int(conf * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		bs[b].conf += conf
		bs[b].n++
		if pred == ds.Y[i] {
			bs[b].correct++
		}
	}
	var ece float64
	total := float64(ds.Len())
	for _, b := range bs {
		if b.n == 0 {
			continue
		}
		ece += (b.n / total) * math.Abs(b.correct/b.n-b.conf/b.n)
	}
	return ece, nil
}

// ParamError returns ‖params − truth‖₂ — parameter recovery error against
// a known ground-truth task.
func ParamError(params, truth mat.Vec) float64 {
	return mat.Dist2(params, truth)
}

// RMSE returns the root-mean-square prediction error of a regression
// model on ds.
func RMSE(m model.Model, params mat.Vec, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var ss float64
	for i := 0; i < ds.Len(); i++ {
		r := m.Predict(params, ds.X.Row(i)) - ds.Y[i]
		ss += r * r
	}
	return math.Sqrt(ss / float64(ds.Len()))
}

// AUC computes the ROC area under the curve for a binary (±1) dataset
// given a scoring function (higher = more positive), via the
// Mann-Whitney rank statistic with midrank tie handling.
func AUC(score func(x mat.Vec) float64, ds *data.Dataset) (float64, error) {
	if ds.NumClasses != 2 {
		return 0, fmt.Errorf("metrics: AUC needs binary ±1 labels")
	}
	n := ds.Len()
	type scored struct {
		s   float64
		pos bool
	}
	all := make([]scored, n)
	var nPos, nNeg float64
	for i := 0; i < n; i++ {
		all[i] = scored{s: score(ds.X.Row(i)), pos: ds.Y[i] > 0}
		if all[i].pos {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("metrics: AUC needs both classes present")
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	// Midranks over ties.
	var rankSumPos float64
	i := 0
	for i < n {
		j := i
		for j < n && all[j].s == all[i].s {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSumPos += midrank
			}
		}
		i = j
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg), nil
}

// MinorityRecall returns the recall of the minority class of a binary
// dataset under the model's hard predictions.
func MinorityRecall(m model.Model, params mat.Vec, ds *data.Dataset) (float64, error) {
	if ds.NumClasses != 2 {
		return 0, fmt.Errorf("metrics: MinorityRecall needs binary ±1 labels")
	}
	counts := ds.ClassCounts()
	minority := 1.0
	if counts[1] > counts[-1] {
		minority = -1
	}
	var total, hit int
	for i := 0; i < ds.Len(); i++ {
		if ds.Y[i] != minority {
			continue
		}
		total++
		if m.Predict(params, ds.X.Row(i)) == minority {
			hit++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("metrics: minority class absent")
	}
	return float64(hit) / float64(total), nil
}
