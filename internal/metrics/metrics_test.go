package metrics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

func TestEvaluate(t *testing.T) {
	m := model.Logistic{Dim: 1}
	params := mat.Vec{10, 0} // confident sign classifier
	ds := &data.Dataset{
		X:          mat.FromRows([][]float64{{1}, {-1}, {2}}),
		Y:          []float64{1, -1, 1},
		NumClasses: 2,
	}
	r := Evaluate(m, params, ds, dro.Set{})
	if r.Accuracy != 1 || r.ErrorRate != 0 {
		t.Errorf("accuracy %v error %v", r.Accuracy, r.ErrorRate)
	}
	if r.NLL > 0.01 {
		t.Errorf("NLL %v for confident correct classifier", r.NLL)
	}
	// With robustness, the certificate exceeds the empirical loss.
	rRob := Evaluate(m, params, ds, dro.Set{Kind: dro.Wasserstein, Rho: 0.1})
	if rRob.RobustLoss <= r.NLL {
		t.Errorf("robust %v should exceed plain %v", rRob.RobustLoss, r.NLL)
	}
}

func TestConfusionMatrixBinary(t *testing.T) {
	m := model.Logistic{Dim: 1}
	params := mat.Vec{1, 0}
	ds := &data.Dataset{
		X:          mat.FromRows([][]float64{{1}, {-1}, {1}, {-1}}),
		Y:          []float64{1, -1, -1, 1},
		NumClasses: 2,
	}
	cm, err := ConfusionMatrix(m, params, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = true −1: one predicted −1 (correct), one predicted +1.
	if cm[0][0] != 1 || cm[0][1] != 1 || cm[1][1] != 1 || cm[1][0] != 1 {
		t.Errorf("confusion %v", cm)
	}
}

func TestConfusionMatrixMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	b, err := data.NewBlobTask(rng, 2, 3, 6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Sample(rng, 90)
	// A perfect nearest-center classifier via softmax trained offline is
	// overkill; instead use an oracle predictor via a wrapped model. Use
	// softmax with weights set to 2·center (Bayes for equal covariance).
	sm := model.Softmax{Dim: 2, Classes: 3}
	params := make(mat.Vec, sm.NumParams())
	for c := 0; c < 3; c++ {
		copy(params[c*2:(c+1)*2], b.Centers[c])
		mat.Scale(2/(0.3*0.3)/2, params[c*2:(c+1)*2])
		params[3*2+c] = -mat.Dot(b.Centers[c], b.Centers[c]) / (0.3 * 0.3) / 2
	}
	cm, err := ConfusionMatrix(sm, params, ds)
	if err != nil {
		t.Fatal(err)
	}
	var diag, total int
	for i := range cm {
		for j := range cm[i] {
			total += cm[i][j]
			if i == j {
				diag += cm[i][j]
			}
		}
	}
	if total != 90 {
		t.Errorf("confusion total %d", total)
	}
	if float64(diag)/float64(total) < 0.95 {
		t.Errorf("oracle accuracy %v", float64(diag)/float64(total))
	}
	// Regression dataset rejected.
	reg := &data.Dataset{X: mat.NewDense(1, 2), Y: []float64{0.5}, NumClasses: 0}
	if _, err := ConfusionMatrix(sm, params, reg); err == nil {
		t.Error("regression dataset accepted")
	}
}

func TestECEPerfectCalibration(t *testing.T) {
	// A classifier that outputs its true accuracy as confidence has ECE 0.
	rng := rand.New(rand.NewSource(121))
	n := 4000
	x := mat.NewDense(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		p := rng.Float64()
		x.Set(i, 0, p) // feature IS the probability
		if rng.Float64() < p {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	ds := &data.Dataset{X: x, Y: y, NumClasses: 2}
	ece, err := ECE(func(xi mat.Vec) float64 { return xi[0] }, ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece > 0.05 {
		t.Errorf("well-calibrated ECE = %v", ece)
	}
	// An always-overconfident classifier has large ECE.
	over, err := ECE(func(xi mat.Vec) float64 {
		if xi[0] >= 0.5 {
			return 0.999
		}
		return 0.001
	}, ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if over < 0.15 {
		t.Errorf("overconfident ECE = %v, expected large", over)
	}
	reg := &data.Dataset{X: mat.NewDense(1, 1), Y: []float64{0.3}, NumClasses: 0}
	if _, err := ECE(func(mat.Vec) float64 { return 0.5 }, reg, 10); err == nil {
		t.Error("regression dataset accepted")
	}
}

func TestAUC(t *testing.T) {
	ds := &data.Dataset{
		X:          mat.FromRows([][]float64{{1}, {2}, {3}, {4}}),
		Y:          []float64{-1, -1, 1, 1},
		NumClasses: 2,
	}
	score := func(x mat.Vec) float64 { return x[0] }
	// Perfect separation: AUC 1.
	auc, err := AUC(score, ds)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("perfect AUC = %v", auc)
	}
	// Inverted scorer: AUC 0.
	auc, err = AUC(func(x mat.Vec) float64 { return -x[0] }, ds)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Errorf("inverted AUC = %v", auc)
	}
	// Constant scorer: ties → 0.5 by midranks.
	auc, err = AUC(func(mat.Vec) float64 { return 7 }, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v", auc)
	}
	// Error cases.
	onlyPos := &data.Dataset{X: mat.NewDense(1, 1), Y: []float64{1}, NumClasses: 2}
	if _, err := AUC(score, onlyPos); err == nil {
		t.Error("single-class AUC accepted")
	}
	reg := &data.Dataset{X: mat.NewDense(1, 1), Y: []float64{0.3}, NumClasses: 0}
	if _, err := AUC(score, reg); err == nil {
		t.Error("regression AUC accepted")
	}
}

func TestAUCRandomScorerNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	n := 4000
	x := mat.NewDense(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		if i%2 == 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	ds := &data.Dataset{X: x, Y: y, NumClasses: 2}
	auc, err := AUC(func(xi mat.Vec) float64 { return xi[0] }, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Errorf("random AUC = %v, want ≈ 0.5", auc)
	}
}

func TestMinorityRecall(t *testing.T) {
	m := model.Logistic{Dim: 1}
	params := mat.Vec{1, 0} // predicts sign(x)
	// Minority = +1 (1 of 4); it sits at x=2 → correctly predicted.
	ds := &data.Dataset{
		X:          mat.FromRows([][]float64{{2}, {-1}, {-2}, {-3}}),
		Y:          []float64{1, -1, -1, -1},
		NumClasses: 2,
	}
	rec, err := MinorityRecall(m, params, ds)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 1 {
		t.Errorf("recall = %v, want 1", rec)
	}
	// Move the positive to x=-2: missed → recall 0.
	ds.X.Set(0, 0, -2)
	rec, err = MinorityRecall(m, params, ds)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 0 {
		t.Errorf("recall = %v, want 0", rec)
	}
	reg := &data.Dataset{X: mat.NewDense(1, 1), Y: []float64{0.5}, NumClasses: 0}
	if _, err := MinorityRecall(m, params, reg); err == nil {
		t.Error("regression accepted")
	}
}

func TestRMSE(t *testing.T) {
	m := model.LeastSquares{Dim: 1}
	params := mat.Vec{1, 0} // predicts x
	ds := &data.Dataset{
		X:          mat.FromRows([][]float64{{1}, {2}}),
		Y:          []float64{2, 4}, // errors 1 and 2
		NumClasses: 0,
	}
	want := math.Sqrt((1 + 4) / 2.0)
	if got := RMSE(m, params, ds); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	empty := &data.Dataset{X: mat.NewDense(0, 1), NumClasses: 0}
	if got := RMSE(m, params, empty); got != 0 {
		t.Errorf("empty RMSE = %v", got)
	}
}

func TestParamError(t *testing.T) {
	if got := ParamError(mat.Vec{1, 1}, mat.Vec{1, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("ParamError = %v", got)
	}
}
