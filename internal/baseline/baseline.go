// Package baseline implements the comparison methods the paper's
// evaluation measures DRDP against — the "standard learning approaches
// using local edge data only" of the abstract, plus the standard
// knowledge-transfer alternatives:
//
//   - ERM: local maximum-likelihood training, no prior, no robustness.
//   - Ridge: ERM with an l2 penalty (the strongest purely-local recipe).
//   - GaussMAP: MAP with a single Gaussian prior at the cloud mean — what
//     knowledge transfer looks like without the DP mixture.
//   - CloudOnly: ship the cloud's model, no local adaptation at all.
//   - FineTune: start from the cloud model, take a few local steps.
//   - DRO: distributionally robust training without any prior.
//
// All baselines implement Trainer so the experiment harness can sweep
// them uniformly.
package baseline

import (
	"errors"
	"fmt"

	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
)

// Trainer trains model parameters on a local sample.
type Trainer interface {
	// Name identifies the method in experiment tables.
	Name() string
	// Train returns fitted flattened parameters.
	Train(x *mat.Dense, y []float64) (mat.Vec, error)
}

// ERM is plain empirical risk minimization.
type ERM struct {
	Model model.Model
	Opts  opt.Options
}

var _ Trainer = ERM{}

// Name implements Trainer.
func (e ERM) Name() string { return "local-erm" }

// Train implements Trainer.
func (e ERM) Train(x *mat.Dense, y []float64) (mat.Vec, error) {
	l, err := core.New(e.Model, core.WithMStepOptions(e.Opts))
	if err != nil {
		return nil, fmt.Errorf("baseline: erm: %w", err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		return nil, fmt.Errorf("baseline: erm: %w", err)
	}
	return res.Params, nil
}

// Ridge is l2-regularized ERM: mean loss + (Lambda/2)‖θ‖².
type Ridge struct {
	Model  model.Model
	Lambda float64
	Opts   opt.Options
}

var _ Trainer = Ridge{}

// Name implements Trainer.
func (r Ridge) Name() string { return "local-ridge" }

// Train implements Trainer.
func (r Ridge) Train(x *mat.Dense, y []float64) (mat.Vec, error) {
	if r.Lambda < 0 {
		return nil, fmt.Errorf("baseline: ridge: negative lambda %g", r.Lambda)
	}
	return fitPenalized(r.Model, x, y, r.Opts, func(theta, grad mat.Vec) float64 {
		v := 0.5 * r.Lambda * mat.Dot(theta, theta)
		if grad != nil {
			mat.Axpy(r.Lambda, theta, grad)
		}
		return v
	}, nil)
}

// GaussMAP is MAP estimation under a single Gaussian prior N(Mu, I/Lambda):
// mean loss + (Lambda/2)‖θ − Mu‖². This is standard cloud-to-edge transfer
// without the Dirichlet-process mixture.
type GaussMAP struct {
	Model  model.Model
	Mu     mat.Vec
	Lambda float64
	Opts   opt.Options
}

var _ Trainer = GaussMAP{}

// Name implements Trainer.
func (g GaussMAP) Name() string { return "gauss-map" }

// Train implements Trainer.
func (g GaussMAP) Train(x *mat.Dense, y []float64) (mat.Vec, error) {
	if g.Lambda < 0 {
		return nil, fmt.Errorf("baseline: gauss-map: negative lambda %g", g.Lambda)
	}
	if len(g.Mu) != g.Model.NumParams() {
		return nil, fmt.Errorf("baseline: gauss-map: prior mean dim %d, want %d",
			len(g.Mu), g.Model.NumParams())
	}
	return fitPenalized(g.Model, x, y, g.Opts, func(theta, grad mat.Vec) float64 {
		diff := mat.SubVec(theta, g.Mu)
		v := 0.5 * g.Lambda * mat.Dot(diff, diff)
		if grad != nil {
			mat.Axpy(g.Lambda, diff, grad)
		}
		return v
	}, g.Mu)
}

// CloudOnly returns the cloud's parameters untouched: zero local learning.
type CloudOnly struct {
	Params mat.Vec
}

var _ Trainer = CloudOnly{}

// Name implements Trainer.
func (c CloudOnly) Name() string { return "cloud-only" }

// Train implements Trainer.
func (c CloudOnly) Train(x *mat.Dense, y []float64) (mat.Vec, error) {
	if len(c.Params) == 0 {
		return nil, errors.New("baseline: cloud-only: no cloud parameters")
	}
	return mat.CloneVec(c.Params), nil
}

// FineTune starts from the cloud parameters and runs a budgeted number of
// local gradient-descent iterations (early-stopping transfer).
type FineTune struct {
	Model model.Model
	Init  mat.Vec
	Steps int // default 10
}

var _ Trainer = FineTune{}

// Name implements Trainer.
func (f FineTune) Name() string { return "fine-tune" }

// Train implements Trainer.
func (f FineTune) Train(x *mat.Dense, y []float64) (mat.Vec, error) {
	if len(f.Init) != f.Model.NumParams() {
		return nil, fmt.Errorf("baseline: fine-tune: init dim %d, want %d",
			len(f.Init), f.Model.NumParams())
	}
	steps := f.Steps
	if steps <= 0 {
		steps = 10
	}
	l, err := core.New(f.Model,
		core.WithInit(f.Init),
		core.WithMStepOptions(opt.Options{MaxIter: steps, Tol: 1e-12}))
	if err != nil {
		return nil, fmt.Errorf("baseline: fine-tune: %w", err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		return nil, fmt.Errorf("baseline: fine-tune: %w", err)
	}
	return res.Params, nil
}

// DRO trains with an uncertainty set but no prior: robustness without
// knowledge transfer.
type DRO struct {
	Model model.Model
	Set   dro.Set
	Opts  opt.Options
}

var _ Trainer = DRO{}

// Name implements Trainer.
func (d DRO) Name() string { return "dro-noprior" }

// Train implements Trainer.
func (d DRO) Train(x *mat.Dense, y []float64) (mat.Vec, error) {
	l, err := core.New(d.Model,
		core.WithUncertaintySet(d.Set),
		core.WithMStepOptions(d.Opts))
	if err != nil {
		return nil, fmt.Errorf("baseline: dro: %w", err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		return nil, fmt.Errorf("baseline: dro: %w", err)
	}
	return res.Params, nil
}

// fitPenalized minimizes mean loss + penalty(θ) by gradient descent.
// init may be nil for a zero start.
func fitPenalized(m model.Model, x *mat.Dense, y []float64, opts opt.Options,
	penalty func(theta, grad mat.Vec) float64, init mat.Vec) (mat.Vec, error) {
	if x == nil || x.Rows == 0 {
		return nil, errors.New("baseline: empty training set")
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("baseline: %d rows but %d labels", x.Rows, len(y))
	}
	n := x.Rows
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1 / float64(n)
	}
	losses := make([]float64, n)
	f := func(theta, grad mat.Vec) float64 {
		m.Losses(theta, x, y, losses)
		v := mat.Mean(losses)
		if grad != nil {
			mat.Fill(grad, 0)
			m.WeightedGrad(theta, x, y, uniform, grad)
		}
		return v + penalty(theta, grad)
	}
	theta0 := make(mat.Vec, m.NumParams())
	if init != nil {
		copy(theta0, init)
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 300
	}
	res := opt.GD(f, theta0, opts)
	return res.Theta, nil
}
