package baseline

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

func testTask(seed int64, n int) (*data.Dataset, data.LinearTask) {
	rng := rand.New(rand.NewSource(seed))
	task := data.LinearTask{W: mat.Vec{2, -1, 1}, Bias: 0.3, Flip: 0.05}
	return task.Sample(rng, n), task
}

func TestAllTrainersProduceValidParams(t *testing.T) {
	ds, task := testTask(100, 120)
	m := model.Logistic{Dim: 3}
	cloud := task.Params()
	trainers := []Trainer{
		ERM{Model: m},
		Ridge{Model: m, Lambda: 0.1},
		GaussMAP{Model: m, Mu: cloud, Lambda: 1},
		CloudOnly{Params: cloud},
		FineTune{Model: m, Init: cloud, Steps: 5},
		DRO{Model: m, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.1}},
	}
	seen := map[string]bool{}
	for _, tr := range trainers {
		params, err := tr.Train(ds.X, ds.Y)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if len(params) != m.NumParams() {
			t.Errorf("%s: %d params, want %d", tr.Name(), len(params), m.NumParams())
		}
		if acc := model.Accuracy(m, params, ds.X, ds.Y); acc < 0.8 {
			t.Errorf("%s: training accuracy %v", tr.Name(), acc)
		}
		if seen[tr.Name()] {
			t.Errorf("duplicate trainer name %q", tr.Name())
		}
		seen[tr.Name()] = true
	}
}

func TestRidgeShrinksNorm(t *testing.T) {
	ds, _ := testTask(101, 80)
	m := model.Logistic{Dim: 3}
	erm, err := ERM{Model: m}.Train(ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := Ridge{Model: m, Lambda: 5}.Train(ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Norm2(ridge) >= mat.Norm2(erm) {
		t.Errorf("ridge norm %v >= erm norm %v", mat.Norm2(ridge), mat.Norm2(erm))
	}
}

func TestGaussMAPPullsTowardPrior(t *testing.T) {
	ds, _ := testTask(102, 10)
	m := model.Logistic{Dim: 3}
	target := mat.Vec{9, 9, 9, 9} // deliberately far from the data optimum
	strong, err := GaussMAP{Model: m, Mu: target, Lambda: 100}.Train(ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := GaussMAP{Model: m, Mu: target, Lambda: 0.001}.Train(ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Dist2(strong, target) >= mat.Dist2(weak, target) {
		t.Errorf("stronger prior should land closer to mu: %v vs %v",
			mat.Dist2(strong, target), mat.Dist2(weak, target))
	}
}

func TestCloudOnlyIgnoresData(t *testing.T) {
	ds, task := testTask(103, 20)
	params, err := CloudOnly{Params: task.Params()}.Train(ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Dist2(params, task.Params()) != 0 {
		t.Error("CloudOnly changed the parameters")
	}
	// Returned slice must be a copy.
	params[0] = 99
	if task.Params()[0] == 99 {
		t.Error("CloudOnly aliased its input")
	}
	if _, err := (CloudOnly{}).Train(ds.X, ds.Y); err == nil {
		t.Error("empty CloudOnly accepted")
	}
}

func TestFineTuneMovesFromInit(t *testing.T) {
	ds, _ := testTask(104, 100)
	m := model.Logistic{Dim: 3}
	init := make(mat.Vec, m.NumParams()) // zeros: far from optimum
	params, err := FineTune{Model: m, Init: init, Steps: 20}.Train(ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Norm2(params) == 0 {
		t.Error("fine-tune did not move")
	}
	if _, err := (FineTune{Model: m, Init: mat.Vec{1}}).Train(ds.X, ds.Y); err == nil {
		t.Error("bad init dim accepted")
	}
}

func TestErrorPropagation(t *testing.T) {
	m := model.Logistic{Dim: 3}
	empty := mat.NewDense(0, 3)
	for _, tr := range []Trainer{
		ERM{Model: m},
		Ridge{Model: m, Lambda: 1},
		GaussMAP{Model: m, Mu: make(mat.Vec, 4), Lambda: 1},
		DRO{Model: m, Set: dro.Set{Kind: dro.KL, Rho: 0.1}},
	} {
		if _, err := tr.Train(empty, nil); err == nil {
			t.Errorf("%s accepted empty data", tr.Name())
		}
	}
	if _, err := (Ridge{Model: m, Lambda: -1}).Train(mat.NewDense(1, 3), []float64{1}); err == nil {
		t.Error("negative ridge lambda accepted")
	}
	if _, err := (GaussMAP{Model: m, Mu: mat.Vec{1}, Lambda: 1}).Train(mat.NewDense(1, 3), []float64{1}); err == nil {
		t.Error("wrong prior mean dim accepted")
	}
}

func TestLaplacePosteriorSharpensWithData(t *testing.T) {
	// More data → smaller posterior covariance (trace).
	m := model.Logistic{Dim: 2}
	rng := rand.New(rand.NewSource(105))
	task := data.LinearTask{W: mat.Vec{1, -1}, Flip: 0.1}
	small := task.Sample(rng, 30)
	large := task.Sample(rng, 300)
	params, err := ERM{Model: m}.Train(large.X, large.Y)
	if err != nil {
		t.Fatal(err)
	}
	covSmall, err := model.LaplacePosterior(m, params, small.X, small.Y, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	covLarge, err := model.LaplacePosterior(m, params, large.X, large.Y, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if covLarge.Trace() >= covSmall.Trace() {
		t.Errorf("posterior did not sharpen: %v vs %v", covLarge.Trace(), covSmall.Trace())
	}
	if _, err := model.LaplacePosterior(m, params, small.X, small.Y, -1); err == nil {
		t.Error("negative ridge accepted")
	}
}
