package core

import (
	"fmt"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
)

// WithStochasticMStep replaces the full-batch M-step solver with
// minibatch Adam: batch samples per step, the given number of epochs per
// M-step, learning rate lr. Intended for edge datasets large enough that
// full-batch gradient descent per EM iteration is wasteful (n in the
// thousands).
//
// For the KL and χ² uncertainty sets the worst-case weights are computed
// per minibatch (batch-level DRO) — a standard approximation; the
// Wasserstein reformulation is exact under minibatching since its weights
// stay uniform. The EM descent guarantee becomes approximate: the
// objective trace may wiggle within stochastic noise.
func WithStochasticMStep(batch, epochs int, lr float64, seed int64) Option {
	return func(l *Learner) error {
		if batch <= 0 {
			return fmt.Errorf("core: stochastic M-step batch %d must be positive", batch)
		}
		if epochs <= 0 {
			return fmt.Errorf("core: stochastic M-step epochs %d must be positive", epochs)
		}
		if lr <= 0 {
			return fmt.Errorf("core: stochastic M-step lr %g must be positive", lr)
		}
		l.sgd = &sgdConfig{batch: batch, epochs: epochs, lr: lr, seed: seed}
		return nil
	}
}

type sgdConfig struct {
	batch  int
	epochs int
	lr     float64
	seed   int64
}

// stochasticMStep minimizes the same surrogate objective as mStep with
// minibatch Adam. scaled are the τ-scaled responsibilities (nil without
// a prior).
func (p *drdpProblem) stochasticMStep(theta mat.Vec, scaled []float64) mat.Vec {
	l := p.learner
	mdl := l.model
	cfg := l.sgd
	n := p.x.Rows
	batch := cfg.batch
	if batch > n {
		batch = n
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	adam := &opt.Adam{LR: cfg.lr}
	out := mat.CloneVec(theta)
	grad := make(mat.Vec, len(out))
	weights := make([]float64, n)
	bLosses := make([]float64, batch)

	steps := 0
	for epoch := 0; epoch < cfg.epochs; epoch++ {
		perm := rng.Perm(n)
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			idx := perm[start:end]
			// Batch-level worst case: losses on the batch only.
			bl := bLosses[:len(idx)]
			bx, by := p.batchView(idx)
			model.ParLosses(l.pool, mdl, out, bx, by, bl)
			_, w := l.set.WorstCasePool(l.pool, bl, l.lipschitz(out))
			// Scatter batch weights into the full-weight vector.
			for i := range weights {
				weights[i] = 0
			}
			for k, i := range idx {
				weights[i] = w[k]
			}
			mat.Fill(grad, 0)
			model.ParWeightedGrad(l.pool, mdl, out, p.x, p.y, weights, grad)
			if rho := l.set.ThetaPenalty(); rho > 0 {
				l.lipschitzGrad(out, rho, grad)
			}
			if scaled != nil {
				l.prior.SurrogateGrad(out, scaled, grad)
			}
			adam.Step(out, grad)
			steps++
		}
	}
	// Adam does not track a terminal gradient norm; report step count
	// only.
	p.lastMStepIters, p.lastGradNorm = steps, 0
	return out
}

// batchView materializes the selected rows as a small matrix + labels.
func (p *drdpProblem) batchView(idx []int) (*mat.Dense, []float64) {
	bx := mat.NewDense(len(idx), p.x.Cols)
	by := make([]float64, len(idx))
	for k, i := range idx {
		copy(bx.Row(k), p.x.Row(i))
		by[k] = p.y[i]
	}
	return bx, by
}
