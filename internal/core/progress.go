package core

import (
	"github.com/drdp/drdp/internal/em"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/telemetry"
)

// Progress is the per-EM-iteration report delivered to a WithProgress
// callback: which multi-start run and iteration produced it, the true
// objective and its change, and what the inner M-step solver did to get
// there. Without a prior, Fit is a single convex solve and emits exactly
// one Progress event.
type Progress struct {
	// Start indexes the multi-start run this iteration belongs to
	// (0-based; always 0 with WithInit, WithSingleStart or no prior).
	Start int
	// Iter is the 1-based EM iteration within the run.
	Iter int
	// Objective is the true DRDP objective after this iteration.
	Objective float64
	// Delta is Objective minus the previous iteration's objective
	// (non-positive by the MM descent property, up to solver noise).
	Delta float64
	// GradNorm is the final gradient norm reported by the inner M-step
	// solver (0 for the minibatch-Adam solver, which does not track it).
	GradNorm float64
	// MStepIters is how many inner iterations the M-step solver ran.
	MStepIters int
	// Theta is the current iterate. It is shared with the EM loop — read
	// it or copy it, do not mutate it.
	Theta mat.Vec
}

// WithProgress registers a callback invoked after every EM iteration of
// every start during Fit. Callbacks are serialized (never concurrent),
// but with WithParallelism the multi-start runs interleave, so events
// from different Start indexes may arrive in any order; keep the
// callback cheap. Telemetry counters and gauges (drdp_core_*) are
// updated regardless of whether a callback is set.
func WithProgress(fn func(Progress)) Option {
	return func(l *Learner) error {
		l.progress = fn
		return nil
	}
}

// iterHook adapts em.Options.OnIter to Progress + telemetry for one
// multi-start run.
func (l *Learner) iterHook(start int, prob *drdpProblem) func(em.Iteration) {
	return func(it em.Iteration) {
		l.recordIteration(Progress{
			Start:      start,
			Iter:       it.Iter,
			Objective:  it.Objective,
			Delta:      it.Objective - it.Prev,
			GradNorm:   prob.lastGradNorm,
			MStepIters: prob.lastMStepIters,
			Theta:      it.Theta,
		})
	}
}

// recordIteration publishes one iteration to telemetry and the user
// callback, serialized across parallel multi-start runs and concurrent
// Fit calls.
func (l *Learner) recordIteration(p Progress) {
	l.progressMu.Lock()
	defer l.progressMu.Unlock()
	telemetry.CoreEMIterations.Inc()
	telemetry.CoreMStepIters.Add(float64(p.MStepIters))
	telemetry.CoreObjective.Set(p.Objective)
	telemetry.CoreObjectiveDelta.Set(p.Delta)
	telemetry.CoreGradNorm.Set(p.GradNorm)
	if l.progress != nil {
		l.progress(p)
	}
}
