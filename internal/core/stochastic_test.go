package core

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

func TestStochasticMStepMatchesBatchOnLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	wstar := mat.Vec{2, -1, 1, 0.5}
	x, y := linearTask(rng, 2000, 4, wstar, 0.08)
	testX, testY := linearTask(rng, 2000, 4, wstar, 0)

	batchLearner, err := New(model.Logistic{Dim: 4},
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	batchRes, err := batchLearner.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}

	sgdLearner, err := New(model.Logistic{Dim: 4},
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.02}),
		WithStochasticMStep(64, 8, 0.05, 7))
	if err != nil {
		t.Fatal(err)
	}
	sgdRes, err := sgdLearner.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}

	accBatch := model.Accuracy(batchLearner.Model(), batchRes.Params, testX, testY)
	accSGD := model.Accuracy(sgdLearner.Model(), sgdRes.Params, testX, testY)
	if accSGD < accBatch-0.02 {
		t.Errorf("stochastic M-step accuracy %v vs batch %v", accSGD, accBatch)
	}
}

func TestStochasticMStepWithPriorAndKL(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	wstar := mat.Vec{1, 2}
	x, y := linearTask(rng, 500, 2, wstar, 0.1)
	prior := priorAround(t, mat.Vec{1, 2, 0}, 0.3, 0.8)
	l, err := New(model.Logistic{Dim: 2},
		WithPrior(prior),
		WithUncertaintySet(dro.Set{Kind: dro.KL, Rho: 0.1}),
		WithStochasticMStep(50, 4, 0.05, 3),
		WithEMIters(8, 1e-7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(l.Model(), res.Params, x, y); acc < 0.85 {
		t.Errorf("train accuracy %v", acc)
	}
	// Objective should have improved overall even if not monotone.
	if res.Trace[len(res.Trace)-1] >= res.Trace[0] {
		t.Errorf("objective did not improve: %v", res.Trace)
	}
}

func TestWithStochasticMStepValidation(t *testing.T) {
	m := model.Logistic{Dim: 2}
	cases := []struct {
		name          string
		batch, epochs int
		lr            float64
	}{
		{"zero batch", 0, 1, 0.1},
		{"zero epochs", 10, 0, 0.1},
		{"zero lr", 10, 1, 0},
	}
	for _, tc := range cases {
		if _, err := New(m, WithStochasticMStep(tc.batch, tc.epochs, tc.lr, 1)); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestStochasticBatchLargerThanN(t *testing.T) {
	// Batch larger than the dataset degrades to full-batch Adam cleanly.
	rng := rand.New(rand.NewSource(162))
	x, y := linearTask(rng, 30, 2, mat.Vec{1, -1}, 0)
	l, err := New(model.Logistic{Dim: 2}, WithStochasticMStep(1000, 30, 0.1, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(l.Model(), res.Params, x, y); acc < 0.9 {
		t.Errorf("accuracy %v", acc)
	}
}
