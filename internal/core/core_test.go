package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/em"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
)

// linearTask draws a binary classification task: true weights w*, labels
// by sign(w*ᵀx + noise-flip).
func linearTask(rng *rand.Rand, n, d int, wstar mat.Vec, flip float64) (*mat.Dense, []float64) {
	x := mat.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if mat.Dot(wstar, row) >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
		if rng.Float64() < flip {
			y[i] = -y[i]
		}
	}
	return x, y
}

// priorAround builds a 1-component DP prior centered at mu.
func priorAround(t *testing.T, mu mat.Vec, scale float64, weight float64) *dpprior.Compiled {
	t.Helper()
	sigma := mat.Eye(len(mu))
	sigma.ScaleBy(scale)
	p := &dpprior.Prior{
		Alpha: 1,
		Components: []dpprior.Component{
			{Weight: weight, Mu: mu, Sigma: sigma, Count: 5},
		},
		BaseWeight: 1 - weight,
		BaseSigma:  10,
		Dim:        len(mu),
	}
	c, err := dpprior.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil model accepted")
	}
	m := model.Logistic{Dim: 2}
	if _, err := New(m, WithUncertaintySet(dro.Set{Rho: -1})); err == nil {
		t.Error("invalid set accepted")
	}
	if _, err := New(m, WithPrior(nil)); err == nil {
		t.Error("nil prior accepted")
	}
	if _, err := New(m, WithPriorWeight(-1)); err == nil {
		t.Error("negative prior weight accepted")
	}
	if _, err := New(m, WithEMIters(0, 0)); err == nil {
		t.Error("zero EM iters accepted")
	}
	if _, err := New(m, WithInit(mat.Vec{1})); err == nil {
		t.Error("wrong init length accepted")
	}
	bad := priorAround(t, mat.Vec{1, 2, 3, 4}, 1, 0.8) // dim 4 != 3 params
	if _, err := New(m, WithPrior(bad)); err == nil {
		t.Error("prior dim mismatch accepted")
	}
}

func TestFitValidation(t *testing.T) {
	m := model.Logistic{Dim: 2}
	l, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fit(mat.NewDense(0, 2), nil); err == nil {
		t.Error("empty training set accepted")
	}
	x := mat.FromRows([][]float64{{1, 2}})
	if _, err := l.Fit(x, []float64{1, -1}); err == nil {
		t.Error("label count mismatch accepted")
	}
	if _, err := l.Fit(mat.FromRows([][]float64{{1}}), []float64{1}); err == nil {
		t.Error("feature dim mismatch accepted")
	}
}

func TestFitERMSeparatesLinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	wstar := mat.Vec{2, -1, 0.5}
	x, y := linearTask(rng, 200, 3, wstar, 0)
	l, err := New(model.Logistic{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(l.Model(), res.Params, x, y); acc < 0.97 {
		t.Errorf("ERM training accuracy %v", acc)
	}
	if res.EmpiricalLoss > 0.3 {
		t.Errorf("ERM loss %v", res.EmpiricalLoss)
	}
}

func TestWassersteinShrinksParams(t *testing.T) {
	// The dual-norm penalty must shrink the weight norm vs plain ERM.
	rng := rand.New(rand.NewSource(71))
	wstar := mat.Vec{2, -1}
	x, y := linearTask(rng, 100, 2, wstar, 0.05)
	fit := func(rho float64) mat.Vec {
		l, err := New(model.Logistic{Dim: 2},
			WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: rho}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Fit(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return res.Params
	}
	erm := fit(0)
	robust := fit(0.5)
	ermNorm := mat.Norm2(erm[:2])
	robNorm := mat.Norm2(robust[:2])
	if robNorm >= ermNorm {
		t.Errorf("Wasserstein penalty did not shrink weights: %v vs %v", robNorm, ermNorm)
	}
}

func TestRobustLossIsCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	x, y := linearTask(rng, 50, 2, mat.Vec{1, 1}, 0.1)
	for _, kind := range []dro.Kind{dro.Wasserstein, dro.KL, dro.Chi2} {
		l, err := New(model.Logistic{Dim: 2},
			WithUncertaintySet(dro.Set{Kind: kind, Rho: 0.2}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Fit(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.RobustLoss < res.EmpiricalLoss-1e-9 {
			t.Errorf("%v: robust loss %v below empirical %v", kind, res.RobustLoss, res.EmpiricalLoss)
		}
		cert := l.Certificate(res.Params, x, y)
		if math.Abs(cert-res.RobustLoss) > 1e-9 {
			t.Errorf("%v: Certificate %v != RobustLoss %v", kind, cert, res.RobustLoss)
		}
	}
}

func TestPriorPullsSolutionWithFewSamples(t *testing.T) {
	// With n=5 noisy samples and a confident prior at w*, the prior-guided
	// fit must land closer to w* than the prior-free fit.
	rng := rand.New(rand.NewSource(73))
	wstar := mat.Vec{3, -2}
	target := append(mat.CloneVec(wstar), 0) // true params incl. bias
	x, y := linearTask(rng, 5, 2, wstar, 0.2)

	plain, err := New(model.Logistic{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := plain.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}

	prior := priorAround(t, target, 0.05, 0.9)
	guided, err := New(model.Logistic{Dim: 2}, WithPrior(prior), WithPriorWeight(1.0))
	if err != nil {
		t.Fatal(err)
	}
	guidedRes, err := guided.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	dPlain := mat.Dist2(plainRes.Params, target)
	dGuided := mat.Dist2(guidedRes.Params, target)
	if dGuided >= dPlain {
		t.Errorf("prior did not help: guided dist %v vs plain %v", dGuided, dPlain)
	}
	if guidedRes.Responsibilities == nil {
		t.Error("missing responsibilities with a prior")
	}
}

func TestEMTraceMonotone(t *testing.T) {
	// The core MM guarantee: the objective trace never increases, across
	// uncertainty sets and across prior structures.
	rng := rand.New(rand.NewSource(74))
	wstar := mat.Vec{1, 1, -1}
	x, y := linearTask(rng, 30, 3, wstar, 0.1)
	// Two-component prior: one near w*, one decoy far away.
	sigma := mat.Eye(4)
	sigma.ScaleBy(0.2)
	p := &dpprior.Prior{
		Alpha: 1,
		Components: []dpprior.Component{
			{Weight: 0.4, Mu: mat.Vec{1, 1, -1, 0}, Sigma: sigma.Clone(), Count: 3},
			{Weight: 0.4, Mu: mat.Vec{-5, 5, 5, 1}, Sigma: sigma.Clone(), Count: 3},
		},
		BaseWeight: 0.2,
		BaseSigma:  10,
		Dim:        4,
	}
	prior, err := dpprior.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []dro.Kind{dro.None, dro.Wasserstein, dro.KL, dro.Chi2} {
		l, err := New(model.Logistic{Dim: 3},
			WithPrior(prior),
			WithUncertaintySet(dro.Set{Kind: kind, Rho: 0.1}),
			WithEMIters(15, 1e-9))
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Fit(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if err := em.CheckMonotone(res.Trace, 1e-6); err != nil {
			t.Errorf("%v: %v (trace %v)", kind, err, res.Trace)
		}
		if len(res.Trace) < 2 {
			t.Errorf("%v: trace too short: %v", kind, res.Trace)
		}
	}
}

func TestResponsibilitiesPickCorrectComponent(t *testing.T) {
	// With abundant data agreeing with component 0, the EM should assign
	// nearly all responsibility to it.
	rng := rand.New(rand.NewSource(75))
	wstar := mat.Vec{2, -2}
	x, y := linearTask(rng, 300, 2, wstar, 0.02)
	sigma := mat.Eye(3)
	sigma.ScaleBy(0.3)
	p := &dpprior.Prior{
		Alpha: 1,
		Components: []dpprior.Component{
			{Weight: 0.45, Mu: mat.Vec{2, -2, 0}, Sigma: sigma.Clone(), Count: 1},
			{Weight: 0.45, Mu: mat.Vec{-2, 2, 0}, Sigma: sigma.Clone(), Count: 1},
		},
		BaseWeight: 0.1,
		BaseSigma:  10,
		Dim:        3,
	}
	prior, err := dpprior.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(model.Logistic{Dim: 2}, WithPrior(prior), WithEMIters(20, 1e-8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Responsibilities[0] < 0.9 {
		t.Errorf("component 0 responsibility %v, want > 0.9 (all %v)",
			res.Responsibilities[0], res.Responsibilities)
	}
}

func TestPriorWashesOutWithAbundantData(t *testing.T) {
	// Regression test for the τ-scaling bug: with n=400 samples and the
	// default τ=1/n, a misleading prior must NOT pin the solution — the
	// fit has to approach the data optimum, not the prior mean.
	rng := rand.New(rand.NewSource(78))
	wstar := mat.Vec{3, -2}
	x, y := linearTask(rng, 400, 2, wstar, 0.05)
	misleading := mat.Vec{-3, 2, 0} // opposite direction
	prior := priorAround(t, misleading, 0.05, 0.9)
	l, err := New(model.Logistic{Dim: 2}, WithPrior(prior), WithEMIters(20, 1e-9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(l.Model(), res.Params, x, y); acc < 0.9 {
		t.Errorf("misleading prior pinned the fit: train accuracy %v", acc)
	}
	if mat.Dist2(res.Params, misleading) < 1 {
		t.Errorf("params %v stuck at the misleading prior mean", res.Params)
	}
}

// TestMStepGradientConsistency finite-difference-checks the full M-step
// objective (robust loss + τ·surrogate) through a probe of the fitted
// objective: a small perturbation of the solution must not decrease the
// objective (first-order optimality of the inner solver).
func TestMStepGradientConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	wstar := mat.Vec{1, 2}
	x, y := linearTask(rng, 60, 2, wstar, 0.1)
	prior := priorAround(t, mat.Vec{1, 2, 0}, 0.5, 0.8)
	l, err := New(model.Logistic{Dim: 2}, WithPrior(prior),
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
		WithEMIters(30, 1e-10),
		WithMStepOptions(opt.Options{MaxIter: 500, Tol: 1e-9}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Probe the true objective around the solution: J(θ*) should be a
	// local minimum up to solver tolerance.
	obj := func(theta mat.Vec) float64 {
		losses := l.Model().Losses(theta, x, y, nil)
		v, _ := l.Set().WorstCase(losses, l.Model().Lipschitz(theta))
		return v + (1.0/float64(len(y)))*(-prior.LogDensity(theta))
	}
	base := obj(res.Params)
	for trial := 0; trial < 20; trial++ {
		probe := mat.CloneVec(res.Params)
		for i := range probe {
			probe[i] += 0.05 * rng.NormFloat64()
		}
		if obj(probe) < base-1e-3 {
			t.Fatalf("objective not minimized: J(probe)=%v < J(θ*)=%v", obj(probe), base)
		}
	}
}

func TestMultiStartVetoesMisleadingComponent(t *testing.T) {
	// A prior whose heavy component is adversarial: single-start EM from
	// the heaviest mean gets trapped; the default multi-start must escape
	// via the base start and classify well.
	rng := rand.New(rand.NewSource(178))
	wstar := mat.Vec{3, -2}
	x, y := linearTask(rng, 40, 2, wstar, 0.05)
	test, testY := linearTask(rng, 1000, 2, wstar, 0)
	sigma := mat.Eye(3)
	sigma.ScaleBy(0.02)
	p := &dpprior.Prior{
		Alpha: 1,
		Components: []dpprior.Component{
			{Weight: 0.8, Mu: mat.Vec{-3, 2, 0}, Sigma: sigma, Count: 4}, // adversarial
		},
		BaseWeight: 0.2,
		BaseSigma:  10,
		Dim:        3,
	}
	prior, err := dpprior.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := New(model.Logistic{Dim: 2}, WithPrior(prior), WithEMIters(15, 1e-8))
	if err != nil {
		t.Fatal(err)
	}
	resMulti, err := multi.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(multi.Model(), resMulti.Params, test, testY); acc < 0.85 {
		t.Errorf("multi-start accuracy %v: trapped by adversarial component", acc)
	}

	single, err := New(model.Logistic{Dim: 2}, WithPrior(prior), WithEMIters(15, 1e-8),
		WithSingleStart())
	if err != nil {
		t.Fatal(err)
	}
	resSingle, err := single.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-start can never end with a worse objective than single-start
	// (its start set includes more basins and both descend).
	if resMulti.Objective > resSingle.Objective+1e-6 {
		t.Errorf("multi-start objective %v worse than single-start %v",
			resMulti.Objective, resSingle.Objective)
	}
}

func TestWithInitRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	x, y := linearTask(rng, 20, 2, mat.Vec{1, 0}, 0)
	init := mat.Vec{0.5, 0.5, 0}
	l, err := New(model.Logistic{Dim: 2}, WithInit(init),
		WithMStepOptions(optZeroIter()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// With a 1-iteration inner solve the result stays near the init,
	// proving init was used (zeros would stay at zero).
	if mat.Norm2(res.Params) == 0 {
		t.Error("init ignored")
	}
	// And the passed-in slice must not have been mutated.
	if init[0] != 0.5 || init[2] != 0 {
		t.Error("WithInit mutated caller slice")
	}
}

func TestSoftmaxMulticlassFit(t *testing.T) {
	// 3 well-separated Gaussian blobs; softmax + DRDP should fit well.
	rng := rand.New(rand.NewSource(77))
	centers := []mat.Vec{{-4, 0}, {4, 0}, {0, 6}}
	n := 150
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		c := i % 3
		y[i] = float64(c)
		row := x.Row(i)
		for j := range row {
			row[j] = centers[c][j] + 0.7*rng.NormFloat64()
		}
	}
	l, err := New(model.Softmax{Dim: 2, Classes: 3},
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.01}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(l.Model(), res.Params, x, y); acc < 0.95 {
		t.Errorf("multiclass accuracy %v", acc)
	}
}

func TestRegressionEndToEnd(t *testing.T) {
	// Least-squares through the full DRDP pipeline: a prior over
	// regression weights plus scarce noisy data must beat local fitting
	// on parameter recovery.
	rng := rand.New(rand.NewSource(88))
	wstar := mat.Vec{1.5, -2, 0.5}
	truth := append(mat.CloneVec(wstar), 0.3)
	gen := func(n int) (*mat.Dense, []float64) {
		x := mat.NewDense(n, 3)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			y[i] = mat.Dot(wstar, row) + 0.3 + 0.8*rng.NormFloat64()
		}
		return x, y
	}
	x, y := gen(8) // scarce and noisy
	m := model.LeastSquares{Dim: 3}

	local, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := local.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}

	prior := priorAround(t, truth, 0.05, 0.9)
	guided, err := New(m, WithPrior(prior), WithPriorWeight(1))
	if err != nil {
		t.Fatal(err)
	}
	guidedRes, err := guided.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	dLocal := mat.Dist2(localRes.Params, truth)
	dGuided := mat.Dist2(guidedRes.Params, truth)
	if dGuided >= dLocal {
		t.Errorf("regression prior did not help: guided %v vs local %v", dGuided, dLocal)
	}
	// Prediction works end to end.
	if pred := guided.Predict(guidedRes.Params, mat.Vec{1, 0, 0}); math.Abs(pred-1.8) > 1 {
		t.Errorf("prediction %v far from 1.8", pred)
	}
}

// optZeroIter returns M-step options that stop almost immediately.
func optZeroIter() opt.Options {
	return opt.Options{MaxIter: 1, Tol: 1e-12}
}
