package core

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

// determinismTask builds a fit large enough to span many parallel chunks
// (n > 2·ChunkRows) with a 2-component prior, so multi-start EM, the
// E-step fan-out and the chunked loss/gradient paths all engage.
func determinismTask(t *testing.T) (*mat.Dense, []float64, *dpprior.Compiled) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	wstar := mat.Vec{1.5, -2, 0.5, 1}
	x, y := linearTask(rng, 600, 4, wstar, 0.05)
	sigma := mat.Eye(5)
	p := &dpprior.Prior{
		Alpha: 1,
		Components: []dpprior.Component{
			{Weight: 0.5, Mu: mat.Vec{1.4, -1.9, 0.4, 0.9, 0}, Sigma: sigma, Count: 5},
			{Weight: 0.3, Mu: mat.Vec{-1, 1, -1, 1, 0.2}, Sigma: sigma.Clone(), Count: 3},
		},
		BaseWeight: 0.2,
		BaseSigma:  5,
		Dim:        5,
	}
	c, err := dpprior.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return x, y, c
}

func fitWith(t *testing.T, x *mat.Dense, y []float64, prior *dpprior.Compiled, set dro.Set, extra ...Option) *Result {
	t.Helper()
	opts := append([]Option{
		WithUncertaintySet(set),
		WithPrior(prior),
		WithEMIters(4, 1e-9),
	}, extra...)
	l, err := New(model.Logistic{Dim: 4}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertBitIdentical compares every float of two results by bits — the
// tentpole's determinism invariant, far stricter than any tolerance.
func assertBitIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	bits := func(v float64) uint64 { return math.Float64bits(v) }
	if bits(a.Objective) != bits(b.Objective) {
		t.Fatalf("%s: objective bits differ: %x vs %x", label, bits(a.Objective), bits(b.Objective))
	}
	if len(a.Params) != len(b.Params) {
		t.Fatalf("%s: param lengths differ", label)
	}
	for i := range a.Params {
		if bits(a.Params[i]) != bits(b.Params[i]) {
			t.Fatalf("%s: param %d bits differ: %x vs %x", label, i, bits(a.Params[i]), bits(b.Params[i]))
		}
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if bits(a.Trace[i]) != bits(b.Trace[i]) {
			t.Fatalf("%s: trace[%d] bits differ", label, i)
		}
	}
	if len(a.Responsibilities) != len(b.Responsibilities) {
		t.Fatalf("%s: responsibility lengths differ", label)
	}
	for i := range a.Responsibilities {
		if bits(a.Responsibilities[i]) != bits(b.Responsibilities[i]) {
			t.Fatalf("%s: responsibility %d bits differ", label, i)
		}
	}
	if bits(a.RobustLoss) != bits(b.RobustLoss) || bits(a.EmpiricalLoss) != bits(b.EmpiricalLoss) {
		t.Fatalf("%s: loss summaries differ", label)
	}
}

func TestFitBitIdenticalAcrossParallelism(t *testing.T) {
	x, y, prior := determinismTask(t)
	sets := []dro.Set{
		{Kind: dro.Wasserstein, Rho: 0.05},
		{Kind: dro.KL, Rho: 0.1},
		{Kind: dro.Chi2, Rho: 0.1},
	}
	for _, set := range sets {
		serial := fitWith(t, x, y, prior, set, WithParallelism(1))

		// Default (no option) must be the same inline reference path.
		def := fitWith(t, x, y, prior, set)
		assertBitIdentical(t, set.Kind.String()+" default-vs-1", def, serial)

		for _, par := range []int{2, 8} {
			got := fitWith(t, x, y, prior, set, WithParallelism(par))
			assertBitIdentical(t, set.Kind.String()+" parallel", got, serial)
		}
	}
}

func TestFitBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	x, y, prior := determinismTask(t)
	set := dro.Set{Kind: dro.KL, Rho: 0.1}

	prev := runtime.GOMAXPROCS(1)
	ref := fitWith(t, x, y, prior, set, WithParallelism(4))
	runtime.GOMAXPROCS(4)
	got := fitWith(t, x, y, prior, set, WithParallelism(4))
	runtime.GOMAXPROCS(prev)

	assertBitIdentical(t, "gomaxprocs 1-vs-4", ref, got)
}

// TestLearnerConcurrentFit exercises the documented contract that one
// Learner may serve concurrent Fit/Certificate calls (run under -race in
// CI): all concurrent fits of the same data must agree bit-for-bit.
func TestLearnerConcurrentFit(t *testing.T) {
	x, y, prior := determinismTask(t)
	l, err := New(model.Logistic{Dim: 4},
		WithUncertaintySet(dro.Set{Kind: dro.KL, Rho: 0.1}),
		WithPrior(prior),
		WithEMIters(3, 1e-9),
		WithParallelism(4),
		WithProgress(func(Progress) {}), // exercise the serialized sink
	)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	results := make([]*Result, goroutines)
	certs := make([]float64, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			res, err := l.Fit(x, y)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
			certs[g] = l.Certificate(res.Params, x, y)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] == nil {
			t.Fatal("missing result")
		}
		assertBitIdentical(t, "concurrent fit", results[0], results[g])
		if math.Float64bits(certs[g]) != math.Float64bits(certs[0]) {
			t.Fatalf("concurrent certificates differ: %g vs %g", certs[g], certs[0])
		}
	}
}
