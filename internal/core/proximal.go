package core

import (
	"errors"

	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
)

// WithProximalMStep switches the inner solver to proximal gradient
// descent, handling the Wasserstein dual-norm penalty ρ·‖w‖₂ through its
// exact proximal operator (block soft threshold) instead of a
// subgradient. Requires a model implementing model.BlockNormer (logistic,
// least squares); validated at construction. With non-Wasserstein sets
// the prox is the identity and the solver reduces to plain proximal GD.
//
// The proximal form converges faster near sparse/shrunk optima and can
// set the weight block exactly to zero at large ρ, which the subgradient
// solver never does.
func WithProximalMStep() Option {
	return func(l *Learner) error {
		if _, ok := l.model.(model.BlockNormer); !ok {
			return errors.New("core: WithProximalMStep requires a model with a single penalized weight block (model.BlockNormer)")
		}
		l.proximal = true
		return nil
	}
}

// WithLBFGSMStep switches the inner solver to limited-memory BFGS with
// the given history length (≤ 0 picks 8). Quasi-Newton curvature makes
// it markedly faster than gradient descent when prior components are
// much stiffer in some directions than the data likelihood.
func WithLBFGSMStep(memory int) Option {
	return func(l *Learner) error {
		if memory <= 0 {
			memory = 8
		}
		l.lbfgsMem = memory
		return nil
	}
}

// lbfgsMStep minimizes the same objective as mStep with opt.LBFGS.
func (p *drdpProblem) lbfgsMStep(theta mat.Vec, scaled []float64) mat.Vec {
	l := p.learner
	mdl := l.model
	f := func(th mat.Vec, grad mat.Vec) float64 {
		model.ParLosses(l.pool, mdl, th, p.x, p.y, p.losses)
		value, weights := l.set.WorstCasePool(l.pool, p.losses, l.lipschitz(th))
		if scaled != nil {
			value += l.prior.SurrogateValue(th, scaled)
		}
		if grad != nil {
			mat.Fill(grad, 0)
			model.ParWeightedGrad(l.pool, mdl, th, p.x, p.y, weights, grad)
			if rho := l.set.ThetaPenalty(); rho > 0 {
				l.lipschitzGrad(th, rho, grad)
			}
			if scaled != nil {
				l.prior.SurrogateGrad(th, scaled, grad)
			}
		}
		return value
	}
	res := opt.LBFGS(f, theta, opt.LBFGSOptions{Options: l.mstep, Memory: l.lbfgsMem})
	p.lastMStepIters, p.lastGradNorm = res.Iterations, res.GradNorm
	return res.Theta
}

// proximalMStep minimizes the surrogate objective with opt.ProxGD: the
// smooth part is the worst-case-weighted loss plus the τ-scaled prior
// surrogate; the Wasserstein penalty enters via its prox.
func (p *drdpProblem) proximalMStep(theta mat.Vec, scaled []float64) mat.Vec {
	l := p.learner
	mdl := l.model
	bn := mdl.(model.BlockNormer) // validated in WithProximalMStep
	from, to := bn.WeightBlock()

	rho := l.set.ThetaPenalty()
	// The smooth part must exclude the penalty the prox handles; for
	// KL/χ² sets ThetaPenalty is 0 and WorstCase carries everything.
	smoothSet := l.set
	if smoothSet.Kind == dro.Wasserstein {
		smoothSet = dro.Set{Kind: dro.None}
	}

	f := func(th mat.Vec, grad mat.Vec) float64 {
		model.ParLosses(l.pool, mdl, th, p.x, p.y, p.losses)
		value, weights := smoothSet.WorstCasePool(l.pool, p.losses, 0)
		if scaled != nil {
			value += l.prior.SurrogateValue(th, scaled)
		}
		if grad != nil {
			mat.Fill(grad, 0)
			model.ParWeightedGrad(l.pool, mdl, th, p.x, p.y, weights, grad)
			if scaled != nil {
				l.prior.SurrogateGrad(th, scaled, grad)
			}
		}
		return value
	}
	penalty := func(th mat.Vec) float64 {
		if rho == 0 {
			return 0
		}
		return rho * mat.Norm2(th[from:to])
	}
	res := opt.ProxGD(f, opt.ProxL2Block(rho, from, to), penalty, theta, l.mstep)
	p.lastMStepIters, p.lastGradNorm = res.Iterations, res.GradNorm
	return res.Theta
}
