package core

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

func TestGroundMetricValidation(t *testing.T) {
	// Non-ℓ2 grounds need a BlockNormer model.
	if _, err := New(model.Softmax{Dim: 3, Classes: 3},
		WithGroundMetric(dro.GroundLInf)); err == nil {
		t.Error("softmax accepted for linf ground")
	}
	// ℓ2 ground works for any model.
	if _, err := New(model.Softmax{Dim: 3, Classes: 3},
		WithGroundMetric(dro.GroundL2)); err != nil {
		t.Errorf("l2 ground rejected: %v", err)
	}
	// Proximal M-step is ℓ2-only.
	if _, err := New(model.Logistic{Dim: 3},
		WithGroundMetric(dro.GroundLInf), WithProximalMStep()); err == nil {
		t.Error("proximal + linf ground accepted")
	}
}

func TestLInfGroundDefendsAgainstSignAttack(t *testing.T) {
	// Train one model per ground metric at matched "attack strength"
	// (ρ·E[margin drop]); evaluate under the ℓ∞ sign attack. The
	// ℓ∞-ground model (ℓ1 penalty) must hold up better than plain ERM.
	rng := rand.New(rand.NewSource(250))
	task := data.LinearTask{W: mat.Vec{3, -2, 1.5, 0, 0, 0}, Flip: 0.03}
	train := task.Sample(rng, 300)
	test := task.Sample(rng, 2000)
	m := model.Logistic{Dim: 6}

	fit := func(opts ...Option) mat.Vec {
		t.Helper()
		l, err := New(m, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Fit(train.X, train.Y)
		if err != nil {
			t.Fatal(err)
		}
		return res.Params
	}
	erm := fit()
	linf := fit(
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.08}),
		WithGroundMetric(dro.GroundLInf))

	// Sign attack with the TRUE weights as the scorer (transferable
	// attack, fair to both models) at ℓ∞ budget 0.3.
	attacked, err := data.AdversarialShiftLInf(test, task.W, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	accERM := model.Accuracy(m, erm, attacked.X, attacked.Y)
	accLInf := model.Accuracy(m, linf, attacked.X, attacked.Y)
	if accLInf <= accERM {
		t.Errorf("linf-ground model (%v) should beat ERM (%v) under the sign attack",
			accLInf, accERM)
	}
	// The ℓ1 penalty should shrink the irrelevant coordinates harder:
	// weights 3..5 are zero in the true task.
	var ermTail, linfTail float64
	for j := 3; j < 6; j++ {
		ermTail += abs(erm[j])
		linfTail += abs(linf[j])
	}
	if linfTail >= ermTail {
		t.Errorf("l1 penalty did not sparsify the irrelevant weights: %v vs %v",
			linfTail, ermTail)
	}
}

func TestGroundMetricCertificateUsesDualNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	task := data.LinearTask{W: mat.Vec{1, 1}, Flip: 0.05}
	train := task.Sample(rng, 60)
	m := model.Logistic{Dim: 2}
	params := mat.Vec{2, -1, 0} // ‖w‖₂=√5≈2.24, ‖w‖₁=3, ‖w‖∞=2

	cert := func(g dro.GroundNorm) float64 {
		l, err := New(m,
			WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 1}),
			WithGroundMetric(g))
		if err != nil {
			t.Fatal(err)
		}
		return l.Certificate(params, train.X, train.Y)
	}
	c2 := cert(dro.GroundL2)
	c1 := cert(dro.GroundL1)
	cInf := cert(dro.GroundLInf)
	// Certificates differ exactly by the dual-norm term: mean + ρ·dual.
	// dual(l1 ground)=‖w‖∞=2 < dual(l2)=2.236 < dual(linf ground)=‖w‖₁=3.
	if !(c1 < c2 && c2 < cInf) {
		t.Errorf("certificates not ordered by dual norm: l1=%v l2=%v linf=%v", c1, c2, cInf)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
