package core

import (
	"errors"
	"fmt"

	"github.com/drdp/drdp/internal/mat"
)

// Online wraps a Learner for streaming edge data: each Observe call
// appends freshly labeled samples and refits, warm-starting EM from the
// previous solution so incremental updates are far cheaper than
// retraining from scratch (the first fit still uses the learner's full
// multi-start strategy to pick the right prior basin). The prior weight
// τ keeps its 1/n semantics against the *accumulated* sample count, so
// cloud knowledge fades naturally as the stream lengthens.
type Online struct {
	learner *Learner
	rows    [][]float64
	labels  []float64
	params  mat.Vec // warm start; nil before the first Observe
	window  int     // 0 = unbounded
}

// NewOnline creates a streaming wrapper around l. The learner is used
// as configured (prior, uncertainty set, M-step options).
func NewOnline(l *Learner) (*Online, error) {
	if l == nil {
		return nil, errors.New("core: NewOnline: nil learner")
	}
	return &Online{learner: l}, nil
}

// NewOnlineWindow creates a streaming wrapper that keeps only the most
// recent window samples — the right mode under concept drift, where old
// samples describe a distribution that no longer exists.
func NewOnlineWindow(l *Learner, window int) (*Online, error) {
	if l == nil {
		return nil, errors.New("core: NewOnlineWindow: nil learner")
	}
	if window <= 0 {
		return nil, fmt.Errorf("core: NewOnlineWindow: window %d must be positive", window)
	}
	return &Online{learner: l, window: window}, nil
}

// Len returns the number of accumulated samples.
func (o *Online) Len() int { return len(o.rows) }

// Params returns the current fitted parameters (nil before any data).
func (o *Online) Params() mat.Vec { return o.params }

// Observe appends a batch of samples and refits, returning the fit
// result over the accumulated data.
func (o *Online) Observe(x *mat.Dense, y []float64) (*Result, error) {
	if x == nil || x.Rows == 0 {
		return nil, errors.New("core: Observe: empty batch")
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("core: Observe: %d rows but %d labels", x.Rows, len(y))
	}
	if x.Cols != o.learner.model.InputDim() {
		return nil, fmt.Errorf("core: Observe: %d feature columns, want %d",
			x.Cols, o.learner.model.InputDim())
	}
	for i := 0; i < x.Rows; i++ {
		o.rows = append(o.rows, mat.CloneVec(x.Row(i)))
		o.labels = append(o.labels, y[i])
	}
	if o.window > 0 && len(o.rows) > o.window {
		drop := len(o.rows) - o.window
		o.rows = append([][]float64(nil), o.rows[drop:]...)
		o.labels = append([]float64(nil), o.labels[drop:]...)
	}

	all := mat.NewDense(len(o.rows), x.Cols)
	for i, r := range o.rows {
		copy(all.Row(i), r)
	}

	// Warm start after the first fit: a shallow copy of the learner with
	// the previous solution as the single EM start.
	l := o.learner
	if o.params != nil {
		warm := *o.learner
		warm.init = o.params
		l = &warm
	}
	res, err := l.Fit(all, o.labels)
	if err != nil {
		return nil, err
	}
	o.params = res.Params
	return res, nil
}
