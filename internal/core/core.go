// Package core implements the paper's primary contribution: the
// distributionally robust edge learner with a Dirichlet-process prior
// (DRDP). An edge device with a small local sample solves
//
//	min_θ  sup_{Q ∈ B_ρ(P̂_n)} E_Q[ℓ(θ; ξ)]  +  τ · (−log p(θ))
//
// where B_ρ is the local uncertainty ball (Wasserstein, KL or χ²), p is
// the truncated DP mixture prior received from the cloud, and τ is the
// prior weight (default 1/n, so cloud knowledge dominates when local
// evidence is scarce and washes out as n grows).
//
// The inner sup is collapsed by duality (see package dro); the mixture
// prior's non-convex −log p is handled by the paper's EM-inspired convex
// relaxation: the E-step computes component responsibilities at the
// current iterate, the M-step minimizes the resulting convex quadratic
// surrogate plus the single-layer robust loss.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/em"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
	"github.com/drdp/drdp/internal/parallel"
	"github.com/drdp/drdp/internal/telemetry"
)

// Learner is a configured DRDP edge learner. Construct with New; the
// zero value is not usable.
//
// A Learner is immutable after New and safe for concurrent use: Fit,
// Predict and Certificate may be called from any number of goroutines at
// once. Each Fit call allocates its own scratch state (per-start when
// multi-start runs in parallel), so concurrent fits never share buffers;
// the only shared mutable state is the progress/telemetry sink, which is
// serialized internally.
type Learner struct {
	model       model.Model
	set         dro.Set
	prior       *dpprior.Compiled
	priorWeight float64 // τ; 0 means "use 1/n at fit time"
	emIters     int
	emTol       float64
	mstep       opt.Options
	init        mat.Vec
	singleStart bool
	sgd         *sgdConfig
	proximal    bool
	lbfgsMem    int            // > 0 selects the L-BFGS inner solver
	ground      dro.GroundNorm // transport cost of the Wasserstein ball
	progress    func(Progress) // per-EM-iteration callback; nil = none
	pool        *parallel.Pool // nil = inline serial reference path
	// progressMu serializes recordIteration across parallel starts and
	// concurrent fits. A pointer so the online warm-start shallow copy
	// shares the sink lock instead of copying a locked mutex.
	progressMu *sync.Mutex
}

// Option configures a Learner.
type Option func(*Learner) error

// WithUncertaintySet selects the local uncertainty ball (default: none).
func WithUncertaintySet(s dro.Set) Option {
	return func(l *Learner) error {
		if err := s.Validate(); err != nil {
			return err
		}
		l.set = s
		return nil
	}
}

// WithParallelism fans the training hot paths — per-sample losses,
// worst-case weight solves, weighted gradients, E-step component
// densities and the multi-start EM runs — out over n worker goroutines;
// n <= 0 picks runtime.GOMAXPROCS(0). The default (no option) runs
// everything inline on the calling goroutine.
//
// Parallelism never changes the result: work is split on the fixed chunk
// grid of package parallel and partials combine by its fixed-order tree
// reduction, so a fit with any parallelism is bit-for-bit identical to
// the inline path. The only observable difference is the arrival order
// of WithProgress callbacks across multi-start runs (callbacks are still
// serialized, never concurrent).
func WithParallelism(n int) Option {
	return func(l *Learner) error {
		l.pool = parallel.New(n)
		return nil
	}
}

// WithPrior installs the cloud DP prior (compiled form).
func WithPrior(p *dpprior.Compiled) Option {
	return func(l *Learner) error {
		if p == nil {
			return errors.New("core: WithPrior: nil prior")
		}
		l.prior = p
		return nil
	}
}

// WithPriorWeight overrides the prior weight τ (default 1/n).
func WithPriorWeight(tau float64) Option {
	return func(l *Learner) error {
		if tau < 0 {
			return fmt.Errorf("core: prior weight %g must be non-negative", tau)
		}
		l.priorWeight = tau
		return nil
	}
}

// WithEMIters sets the maximum EM iterations (default 25) and the
// relative-objective convergence tolerance (default 1e-6; pass 0 to keep).
func WithEMIters(iters int, tol float64) Option {
	return func(l *Learner) error {
		if iters <= 0 {
			return fmt.Errorf("core: EM iterations %d must be positive", iters)
		}
		l.emIters = iters
		if tol > 0 {
			l.emTol = tol
		}
		return nil
	}
}

// WithMStepOptions overrides the inner convex solver's options.
func WithMStepOptions(o opt.Options) Option {
	return func(l *Learner) error {
		l.mstep = o
		return nil
	}
}

// WithInit sets the initial parameters, disabling the default multi-start
// strategy (default without this option: one EM run per prior component
// mean plus a zero start, best final objective wins; zeros without a
// prior).
func WithInit(theta mat.Vec) Option {
	return func(l *Learner) error {
		l.init = mat.CloneVec(theta)
		return nil
	}
}

// WithSingleStart disables multi-start: a single EM run from the prior's
// heaviest component mean (the cloud's best guess). Cheaper, but a
// misleading cloud component can then trap the non-convex EM in a bad
// basin; the default multi-start lets the local data veto it.
func WithSingleStart() Option {
	return func(l *Learner) error {
		l.singleStart = true
		return nil
	}
}

// WithGroundMetric selects the Wasserstein ball's transport cost (the
// norm bounding sample perturbations); the training penalty becomes the
// corresponding dual norm of the weights: ℓ2→‖w‖₂ (default), ℓ1→‖w‖∞,
// ℓ∞→‖w‖₁ (the sign-attack geometry). Non-ℓ2 metrics require a model
// with a single penalized weight block (model.BlockNormer).
func WithGroundMetric(g dro.GroundNorm) Option {
	return func(l *Learner) error {
		if g != dro.GroundL2 {
			if _, ok := l.model.(model.BlockNormer); !ok {
				return fmt.Errorf("core: ground metric %v requires a model with a single weight block", g)
			}
		}
		l.ground = g
		return nil
	}
}

// lipschitz returns the loss's feature-Lipschitz constant under the
// configured ground metric.
func (l *Learner) lipschitz(params mat.Vec) float64 {
	if l.ground == dro.GroundL2 {
		return l.model.Lipschitz(params)
	}
	bn := l.model.(model.BlockNormer) // validated in WithGroundMetric
	from, to := bn.WeightBlock()
	return l.ground.Dual(params[from:to])
}

// lipschitzGrad accumulates coef·∂lipschitz/∂θ into grad.
func (l *Learner) lipschitzGrad(params mat.Vec, coef float64, grad mat.Vec) {
	if l.ground == dro.GroundL2 {
		l.model.LipschitzGrad(params, coef, grad)
		return
	}
	bn := l.model.(model.BlockNormer)
	from, to := bn.WeightBlock()
	l.ground.DualGrad(params[from:to], coef, grad[from:to])
}

// New builds a learner for the given model.
func New(m model.Model, options ...Option) (*Learner, error) {
	if m == nil {
		return nil, errors.New("core: New: nil model")
	}
	l := &Learner{
		model:      m,
		emIters:    25,
		emTol:      1e-6,
		mstep:      opt.Options{MaxIter: 200, Tol: 1e-6},
		progressMu: &sync.Mutex{},
	}
	for _, o := range options {
		if err := o(l); err != nil {
			return nil, err
		}
	}
	if l.prior != nil && l.prior.Dim() != m.NumParams() {
		return nil, fmt.Errorf("core: prior dimension %d does not match model parameter count %d",
			l.prior.Dim(), m.NumParams())
	}
	if l.init != nil && len(l.init) != m.NumParams() {
		return nil, fmt.Errorf("core: init length %d does not match model parameter count %d",
			len(l.init), m.NumParams())
	}
	if l.proximal && l.ground != dro.GroundL2 {
		return nil, fmt.Errorf("core: the proximal M-step implements the ℓ2 dual-norm prox only; ground metric %v is not supported", l.ground)
	}
	return l, nil
}

// Result reports a completed fit.
type Result struct {
	// Params are the learned flattened model parameters.
	Params mat.Vec
	// Objective is the final DRDP objective value.
	Objective float64
	// Trace records the objective after each EM iteration, starting with
	// the value at the initial point; it is non-increasing by the MM
	// descent property.
	Trace []float64
	// Responsibilities are the final E-step responsibilities over the
	// prior's components (last entry = base measure); nil without a prior.
	Responsibilities []float64
	// RobustLoss is the final worst-case training loss over the ball —
	// the robustness certificate.
	RobustLoss float64
	// EmpiricalLoss is the final plain average training loss.
	EmpiricalLoss float64
	// EMIterations is the number of EM iterations executed.
	EMIterations int
	// Converged reports whether the EM loop met its tolerance.
	Converged bool
}

// Fit trains on the local sample (x rows are feature vectors; y carries
// labels in the model's convention) and returns the result.
func (l *Learner) Fit(x *mat.Dense, y []float64) (*Result, error) {
	if x == nil || x.Rows == 0 {
		return nil, errors.New("core: Fit: empty training set")
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("core: Fit: %d rows but %d labels", x.Rows, len(y))
	}
	if x.Cols != l.model.InputDim() {
		return nil, fmt.Errorf("core: Fit: %d feature columns, want %d", x.Cols, l.model.InputDim())
	}
	n := x.Rows
	tau := l.priorWeight
	if tau == 0 && l.prior != nil {
		tau = 1 / float64(n)
	}

	prob := &drdpProblem{
		learner: l,
		x:       x,
		y:       y,
		tau:     tau,
		losses:  make([]float64, n),
	}

	fitStart := time.Now()
	telemetry.ParallelWorkers.Set(float64(l.pool.Workers()))
	var res em.Result
	if l.prior == nil {
		// No prior: a single convex M-step solves the whole problem.
		theta := prob.mStep(l.startingPoints()[0], nil)
		obj := prob.objective(theta)
		res = em.Result{Theta: theta, Objective: obj, Trace: []float64{obj},
			Iterations: 1, Converged: true}
		l.recordIteration(Progress{Start: 0, Iter: 1, Objective: obj,
			GradNorm: prob.lastGradNorm, MStepIters: prob.lastMStepIters, Theta: theta})
	} else {
		// The mixture prior makes the objective multi-basin; run EM from
		// each candidate start and keep the best final objective, so the
		// local data can veto a misleading cloud component.
		res = l.runStarts(prob)
	}

	final := mat.Vec(res.Theta)
	model.ParLosses(l.pool, l.model, final, x, y, prob.losses)
	robust, _ := l.set.WorstCasePool(l.pool, prob.losses, l.lipschitz(final))
	out := &Result{
		Params:        final,
		Objective:     res.Objective,
		Trace:         res.Trace,
		RobustLoss:    robust,
		EmpiricalLoss: mat.Mean(prob.losses),
		EMIterations:  res.Iterations,
		Converged:     res.Converged,
	}
	if l.prior != nil {
		out.Responsibilities = l.prior.ResponsibilitiesPool(l.pool, final)
	}

	// Publish the winning run: final objective/delta gauges and the
	// per-iteration objective trace from the start that won the
	// multi-start selection.
	telemetry.CoreFits.Inc()
	telemetry.CoreFitSeconds.Observe(time.Since(fitStart).Seconds())
	telemetry.CoreObjective.Set(res.Objective)
	if k := len(res.Trace); k >= 2 {
		telemetry.CoreObjectiveDelta.Set(res.Trace[k-1] - res.Trace[k-2])
	}
	telemetry.SetEMTrace(res.Trace)
	return out, nil
}

// runStarts executes one EM run per starting point and returns the run
// with the best final objective (first-best on ties, in start order —
// the same selection the sequential loop makes). With a multi-worker
// pool the starts run concurrently on their own goroutines, each on a
// private clone of the problem (own loss scratch and inner-solver
// stats); each run's computation is unchanged, so the winner is
// bit-identical to the sequential path.
func (l *Learner) runStarts(prob *drdpProblem) em.Result {
	starts := l.startingPoints()
	opts := func(i int, p *drdpProblem) em.Options {
		return em.Options{MaxIters: l.emIters, Tol: l.emTol, OnIter: l.iterHook(i, p)}
	}
	runs := make([]em.Result, len(starts))
	if l.pool.Workers() > 1 && len(starts) > 1 {
		telemetry.CoreParallelStarts.Add(float64(len(starts)))
		var (
			wg      sync.WaitGroup
			panicMu sync.Mutex
			panicV  any
		)
		wg.Add(len(starts))
		for i, start := range starts {
			go func(i int, start mat.Vec) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicV == nil {
							panicV = r
						}
						panicMu.Unlock()
					}
				}()
				p := prob.clone()
				runs[i] = em.Run[[]float64](p, start, opts(i, p))
			}(i, start)
		}
		wg.Wait()
		if panicV != nil {
			panic(panicV)
		}
	} else {
		for i, start := range starts {
			runs[i] = em.Run[[]float64](prob, start, opts(i, prob))
		}
	}
	best := runs[0]
	for _, run := range runs[1:] {
		if run.Objective < best.Objective {
			best = run
		}
	}
	return best
}

// Predict returns the model prediction for one feature vector under the
// fitted parameters.
func (l *Learner) Predict(params mat.Vec, x mat.Vec) float64 {
	return l.model.Predict(params, x)
}

// Certificate returns the worst-case expected loss of params over the
// configured uncertainty ball centered at the empirical distribution of
// (x, y) — an out-of-sample robustness certificate.
func (l *Learner) Certificate(params mat.Vec, x *mat.Dense, y []float64) float64 {
	losses := model.ParLosses(l.pool, l.model, params, x, y, nil)
	v, _ := l.set.WorstCasePool(l.pool, losses, l.lipschitz(params))
	return v
}

// Model returns the learner's model.
func (l *Learner) Model() model.Model { return l.model }

// Set returns the learner's uncertainty set.
func (l *Learner) Set() dro.Set { return l.set }

// startingPoints returns the EM starts: the explicit init when given; the
// heaviest component mean under WithSingleStart; otherwise every prior
// component mean plus a zero (base-basin) start. Without a prior it is a
// single zero start.
func (l *Learner) startingPoints() []mat.Vec {
	if l.init != nil {
		return []mat.Vec{mat.CloneVec(l.init)}
	}
	p := l.model.NumParams()
	if l.prior == nil || l.prior.NumComponents() == 0 {
		return []mat.Vec{make(mat.Vec, p)}
	}
	if l.singleStart {
		best, bestW := 0, 0.0
		for i, c := range l.prior.Prior.Components {
			if c.Weight > bestW {
				best, bestW = i, c.Weight
			}
		}
		return []mat.Vec{mat.CloneVec(l.prior.Prior.Components[best].Mu)}
	}
	starts := make([]mat.Vec, 0, l.prior.NumComponents()+1)
	for _, c := range l.prior.Prior.Components {
		starts = append(starts, mat.CloneVec(c.Mu))
	}
	starts = append(starts, make(mat.Vec, p))
	return starts
}

// drdpProblem adapts the DRDP objective to the em.Problem interface.
// The E-step aux value is the responsibility vector γ.
type drdpProblem struct {
	learner *Learner
	x       *mat.Dense
	y       []float64
	tau     float64
	losses  []float64 // scratch, length n

	// Inner-solver stats from the most recent mStep call, read by the
	// progress hook right after each EM iteration (the EM loop is
	// sequential, so no synchronization is needed).
	lastMStepIters int
	lastGradNorm   float64
}

var _ em.Problem[[]float64] = (*drdpProblem)(nil)

// clone returns a problem sharing the learner and data but with private
// scratch, so parallel multi-start runs never race on the loss buffer or
// the inner-solver stats.
func (p *drdpProblem) clone() *drdpProblem {
	return &drdpProblem{
		learner: p.learner,
		x:       p.x,
		y:       p.y,
		tau:     p.tau,
		losses:  make([]float64, len(p.losses)),
	}
}

// EStep computes prior responsibilities at the current iterate.
func (p *drdpProblem) EStep(theta []float64) []float64 {
	return p.learner.prior.ResponsibilitiesPool(p.learner.pool, theta)
}

// MStep minimizes the convex surrogate
//
//	F(θ; γ) = worst-case loss (via duality) + τ·S(θ; γ)
//
// starting from the current iterate, so the MM descent property holds.
func (p *drdpProblem) MStep(theta []float64, gamma []float64) []float64 {
	return p.mStep(mat.Vec(theta), gamma)
}

func (p *drdpProblem) mStep(theta mat.Vec, gamma []float64) mat.Vec {
	l := p.learner
	mdl := l.model
	// The surrogate is linear in the responsibilities, so folding the
	// prior weight τ into them keeps value and gradient consistent.
	var scaled []float64
	if gamma != nil {
		scaled = make([]float64, len(gamma))
		for i, g := range gamma {
			scaled[i] = p.tau * g
		}
	}
	if l.sgd != nil {
		return p.stochasticMStep(theta, scaled)
	}
	if l.proximal {
		return p.proximalMStep(theta, scaled)
	}
	if l.lbfgsMem > 0 {
		return p.lbfgsMStep(theta, scaled)
	}
	f := func(th mat.Vec, grad mat.Vec) float64 {
		model.ParLosses(l.pool, mdl, th, p.x, p.y, p.losses)
		lip := l.lipschitz(th)
		value, weights := l.set.WorstCasePool(l.pool, p.losses, lip)
		if scaled != nil {
			value += l.prior.SurrogateValue(th, scaled)
		}
		if grad != nil {
			mat.Fill(grad, 0)
			// Danskin: gradient through the worst-case weights; normalize
			// by n is built into weights (they sum to 1).
			model.ParWeightedGrad(l.pool, mdl, th, p.x, p.y, weights, grad)
			if rho := l.set.ThetaPenalty(); rho > 0 {
				l.lipschitzGrad(th, rho, grad)
			}
			if scaled != nil {
				l.prior.SurrogateGrad(th, scaled, grad)
			}
		}
		return value
	}
	res := opt.GD(f, theta, l.mstep)
	p.lastMStepIters, p.lastGradNorm = res.Iterations, res.GradNorm
	return res.Theta
}

// Objective evaluates the true DRDP objective (robust loss + τ·(−log p)).
func (p *drdpProblem) objective(theta mat.Vec) float64 {
	l := p.learner
	model.ParLosses(l.pool, l.model, theta, p.x, p.y, p.losses)
	v, _ := l.set.WorstCasePool(l.pool, p.losses, l.lipschitz(theta))
	if l.prior != nil {
		v += p.tau * -l.prior.LogDensity(theta)
	}
	return v
}

// Objective implements em.Problem.
func (p *drdpProblem) Objective(theta []float64) float64 {
	return p.objective(mat.Vec(theta))
}
