package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/telemetry"
)

// progressFixture builds a small logistic problem plus a 2-component
// prior so Fit exercises the full multi-start EM path.
func progressFixture(t *testing.T) (*mat.Dense, []float64, *dpprior.Compiled) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	const n, dim = 40, 3
	x := mat.NewDense(n, dim)
	y := make([]float64, n)
	truth := mat.Vec{1.5, -1, 0.5}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		var dot float64
		for j := range row {
			row[j] = rng.NormFloat64()
			dot += row[j] * truth[j]
		}
		if 1/(1+math.Exp(-dot)) > rng.Float64() {
			y[i] = 1
		}
	}
	// model.Logistic{Dim: 3} has 4 parameters (weights + bias).
	const nparams = dim + 1
	sigmaA, sigmaB := mat.Eye(nparams), mat.Eye(nparams)
	sigmaA.ScaleBy(0.5)
	sigmaB.ScaleBy(0.5)
	p := &dpprior.Prior{
		Alpha: 1,
		Components: []dpprior.Component{
			{Weight: 0.5, Mu: mat.Vec{1.4, -0.9, 0.4, 0}, Sigma: sigmaA, Count: 5},
			{Weight: 0.4, Mu: mat.Vec{-2, 2, -2, 0}, Sigma: sigmaB, Count: 5},
		},
		BaseWeight: 0.1,
		BaseSigma:  10,
		Dim:        nparams,
	}
	compiled, err := dpprior.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return x, y, compiled
}

func TestWithProgressReportsEveryIteration(t *testing.T) {
	x, y, prior := progressFixture(t)

	var events []Progress
	l, err := New(model.Logistic{Dim: 3},
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
		WithPrior(prior),
		WithEMIters(10, 1e-8),
		WithProgress(func(p Progress) { events = append(events, p) }),
	)
	if err != nil {
		t.Fatal(err)
	}

	base := telemetry.Snapshot()
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	now := telemetry.Snapshot()

	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	starts := map[int]bool{}
	lastIter := map[int]int{}
	for _, p := range events {
		starts[p.Start] = true
		if p.Iter != lastIter[p.Start]+1 {
			t.Fatalf("start %d: iteration %d does not follow %d", p.Start, p.Iter, lastIter[p.Start])
		}
		lastIter[p.Start] = p.Iter
		if p.MStepIters < 0 {
			t.Fatalf("event %+v: negative M-step iterations", p)
		}
		if p.GradNorm < 0 || math.IsNaN(p.GradNorm) {
			t.Fatalf("event %+v: bad gradient norm", p)
		}
		if len(p.Theta) != 4 {
			t.Fatalf("event %+v: theta length %d", p, len(p.Theta))
		}
	}
	// Multi-start default: prior components + base start = 3 runs.
	if len(starts) != 3 {
		t.Fatalf("saw %d starts, want 3", len(starts))
	}
	var anyInner bool
	for _, p := range events {
		if p.MStepIters > 0 {
			anyInner = true
		}
	}
	if !anyInner {
		t.Fatal("no event reported inner M-step iterations")
	}

	// Telemetry agrees with the callback count and the winning trace.
	if got := now.CounterDelta(base, "drdp_core_em_iterations_total"); got != float64(len(events)) {
		t.Fatalf("em iterations counter delta %v, want %d", got, len(events))
	}
	if got := now.CounterDelta(base, "drdp_core_fits_total"); got != 1 {
		t.Fatalf("fits counter delta %v, want 1", got)
	}
	var sumMStep float64
	for _, p := range events {
		sumMStep += float64(p.MStepIters)
	}
	if got := now.CounterDelta(base, "drdp_core_mstep_iterations_total"); got != sumMStep {
		t.Fatalf("mstep counter delta %v, want %v", got, sumMStep)
	}
	if got := now.Gauge("drdp_core_em_objective"); got != res.Objective {
		t.Fatalf("objective gauge %v, want %v", got, res.Objective)
	}
	for i, want := range res.Trace {
		got := now.Gauge("drdp_core_em_objective_iter", telemetry.L("iter", strconv.Itoa(i)))
		if got != want {
			t.Fatalf("trace gauge iter %d = %v, want %v", i, got, want)
		}
	}
}

func TestProgressNoPriorSingleEvent(t *testing.T) {
	x, y, _ := progressFixture(t)
	var events []Progress
	l, err := New(model.Logistic{Dim: 3},
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
		WithProgress(func(p Progress) { events = append(events, p) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("no-prior fit emitted %d events, want 1", len(events))
	}
	if events[0].Objective != res.Objective || events[0].Iter != 1 {
		t.Fatalf("bad synthetic event %+v (objective %v)", events[0], res.Objective)
	}
}
