package core

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/em"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

func TestLBFGSMStepMatchesGD(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	wstar := mat.Vec{2, -1, 1}
	x, y := linearTask(rng, 100, 3, wstar, 0.08)
	set := dro.Set{Kind: dro.Wasserstein, Rho: 0.05}
	prior := priorAround(t, mat.Vec{2, -1, 1, 0}, 0.3, 0.8)

	fit := func(opts ...Option) *Result {
		t.Helper()
		l, err := New(model.Logistic{Dim: 3},
			append([]Option{WithUncertaintySet(set), WithPrior(prior),
				WithEMIters(10, 1e-8)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Fit(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gd := fit()
	lb := fit(WithLBFGSMStep(8))
	if diff := lb.Objective - gd.Objective; diff > 1e-3 {
		t.Errorf("lbfgs objective %v worse than gd %v", lb.Objective, gd.Objective)
	}
	if mat.Dist2(lb.Params, gd.Params) > 0.15 {
		t.Errorf("solutions differ: %v vs %v", lb.Params, gd.Params)
	}
	if err := em.CheckMonotone(lb.Trace, 1e-6); err != nil {
		t.Errorf("lbfgs trace not monotone: %v", err)
	}
}

func TestLBFGSMStepKLSet(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	x, y := linearTask(rng, 80, 2, mat.Vec{1, 2}, 0.1)
	l, err := New(model.Logistic{Dim: 2},
		WithUncertaintySet(dro.Set{Kind: dro.KL, Rho: 0.1}),
		WithLBFGSMStep(0)) // 0 → default memory
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// 10 % of the labels are flipped and the KL worst case upweights the
	// hard samples, so ~0.82 train accuracy is the expected regime.
	if acc := model.Accuracy(l.Model(), res.Params, x, y); acc < 0.78 {
		t.Errorf("accuracy %v", acc)
	}
}
