package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/parallel"
)

// benchTask builds a gradient-dominated fit: n large enough that the
// per-iteration cost is the chunked loss/gradient sweeps, not the solver
// bookkeeping.
func benchTask(n, d int) (*mat.Dense, []float64, *dpprior.Compiled, mat.Vec) {
	rng := rand.New(rand.NewSource(123))
	wstar := make(mat.Vec, d)
	for i := range wstar {
		wstar[i] = rng.NormFloat64()
	}
	x := mat.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if mat.Dot(wstar, row) >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	p := d + 1 // logistic bias
	sigma := mat.Eye(p)
	mu := make(mat.Vec, p)
	copy(mu, wstar)
	prior := &dpprior.Prior{
		Alpha:      1,
		Components: []dpprior.Component{{Weight: 0.8, Mu: mu, Sigma: sigma, Count: 5}},
		BaseWeight: 0.2,
		BaseSigma:  5,
		Dim:        p,
	}
	c, err := dpprior.Compile(prior)
	if err != nil {
		panic(err)
	}
	return x, y, c, wstar
}

// BenchmarkFitParallelism measures the full training loop at several
// worker counts; `make bench-json` records the serial-vs-parallel
// comparison from these timings. The fitted parameters are bit-identical
// across all cases by the determinism invariant (see determinism_test.go).
func BenchmarkFitParallelism(b *testing.B) {
	x, y, prior, _ := benchTask(8192, 16)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			l, err := New(model.Logistic{Dim: 16},
				WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
				WithPrior(prior),
				WithSingleStart(),
				WithEMIters(2, 1e-9),
				WithParallelism(workers),
			)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParWeightedGrad isolates the dominant kernel: the chunked
// weighted-gradient sweep that the M-step calls once per inner iteration.
func BenchmarkParWeightedGrad(b *testing.B) {
	x, y, _, wstar := benchTask(8192, 16)
	m := model.Logistic{Dim: 16}
	params := make(mat.Vec, m.NumParams())
	copy(params, wstar)
	w := make([]float64, x.Rows)
	for i := range w {
		w[i] = 1 / float64(x.Rows)
	}
	grad := make(mat.Vec, m.NumParams())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := parallel.New(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mat.Fill(grad, 0)
				model.ParWeightedGrad(pool, m, params, x, y, w, grad)
			}
		})
	}
}

// BenchmarkParLosses isolates the per-sample loss sweep.
func BenchmarkParLosses(b *testing.B) {
	x, y, _, wstar := benchTask(8192, 16)
	m := model.Logistic{Dim: 16}
	params := make(mat.Vec, m.NumParams())
	copy(params, wstar)
	out := make([]float64, x.Rows)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := parallel.New(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.ParLosses(pool, m, params, x, y, out)
			}
		})
	}
}
