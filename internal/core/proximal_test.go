package core

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

func TestProximalMStepMatchesSubgradient(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	wstar := mat.Vec{2, -1, 1}
	x, y := linearTask(rng, 120, 3, wstar, 0.08)
	set := dro.Set{Kind: dro.Wasserstein, Rho: 0.1}

	fit := func(opts ...Option) *Result {
		t.Helper()
		l, err := New(model.Logistic{Dim: 3},
			append([]Option{WithUncertaintySet(set)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Fit(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sub := fit()
	prox := fit(WithProximalMStep())
	// Both solve the same convex problem; objectives must agree closely.
	if diff := prox.Objective - sub.Objective; diff > 1e-3 {
		t.Errorf("proximal objective %v worse than subgradient %v", prox.Objective, sub.Objective)
	}
	if mat.Dist2(prox.Params, sub.Params) > 0.1 {
		t.Errorf("solutions differ: %v vs %v", prox.Params, sub.Params)
	}
}

func TestProximalMStepExactZeroAtLargeRho(t *testing.T) {
	// At a radius exceeding the data signal the prox must zero the weight
	// block exactly (the subgradient solver only shrinks toward zero).
	rng := rand.New(rand.NewSource(181))
	x, y := linearTask(rng, 60, 2, mat.Vec{1, 1}, 0.3)
	l, err := New(model.Logistic{Dim: 2},
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 5}),
		WithProximalMStep())
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if norm := mat.Norm2(res.Params[:2]); norm != 0 {
		t.Errorf("weight block %v, want exact zero at rho=5", norm)
	}
}

func TestProximalMStepWithPriorMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	wstar := mat.Vec{1, -2}
	x, y := linearTask(rng, 40, 2, wstar, 0.1)
	prior := priorAround(t, mat.Vec{1, -2, 0}, 0.3, 0.8)
	l, err := New(model.Logistic{Dim: 2},
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.05}),
		WithPrior(prior),
		WithProximalMStep(),
		WithEMIters(15, 1e-9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1]+1e-6 {
			t.Fatalf("trace not monotone at %d: %v", i, res.Trace)
		}
	}
	if acc := model.Accuracy(l.Model(), res.Params, x, y); acc < 0.85 {
		t.Errorf("train accuracy %v", acc)
	}
}

func TestProximalRequiresBlockNormer(t *testing.T) {
	// Softmax has a max-over-blocks constant: no exact prox; rejected.
	if _, err := New(model.Softmax{Dim: 3, Classes: 3}, WithProximalMStep()); err == nil {
		t.Fatal("softmax accepted for proximal M-step")
	}
	if _, err := New(model.MLP{Dim: 3, Hidden: 2, Classes: 2}, WithProximalMStep()); err == nil {
		t.Fatal("mlp accepted for proximal M-step")
	}
}
