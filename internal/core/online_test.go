package core

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

func TestOnlineAccumulatesAndImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	wstar := mat.Vec{2, -1, 1}
	testX, testY := linearTask(rng, 2000, 3, wstar, 0)

	l, err := New(model.Logistic{Dim: 3},
		WithUncertaintySet(dro.Set{Kind: dro.Wasserstein, Rho: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	online, err := NewOnline(l)
	if err != nil {
		t.Fatal(err)
	}
	var accs []float64
	for batchNum := 0; batchNum < 5; batchNum++ {
		bx, by := linearTask(rng, 20, 3, wstar, 0.1)
		res, err := online.Observe(bx, by)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, model.Accuracy(l.Model(), res.Params, testX, testY))
	}
	if online.Len() != 100 {
		t.Errorf("accumulated %d samples, want 100", online.Len())
	}
	// Later accuracy should clearly beat the first-batch accuracy.
	if accs[4] <= accs[0] {
		t.Errorf("stream did not improve: %v", accs)
	}
	if accs[4] < 0.9 {
		t.Errorf("final streaming accuracy %v", accs[4])
	}
}

func TestOnlineMatchesBatchRefit(t *testing.T) {
	// Online (warm-started) and from-scratch training on the same data
	// must land at (nearly) the same solution — the objective is convex
	// without a prior.
	rng := rand.New(rand.NewSource(141))
	wstar := mat.Vec{1, 2}
	l1, err := New(model.Logistic{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	online, err := NewOnline(l1)
	if err != nil {
		t.Fatal(err)
	}
	var allX *mat.Dense
	var allY []float64
	var last *Result
	for batchNum := 0; batchNum < 3; batchNum++ {
		bx, by := linearTask(rng, 30, 2, wstar, 0.15)
		if allX == nil {
			allX = bx.Clone()
		} else {
			merged := mat.NewDense(allX.Rows+bx.Rows, 2)
			copy(merged.Data, allX.Data)
			copy(merged.Data[allX.Rows*2:], bx.Data)
			allX = merged
		}
		allY = append(allY, by...)
		var err error
		last, err = online.Observe(bx, by)
		if err != nil {
			t.Fatal(err)
		}
	}
	l2, err := New(model.Logistic{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := l2.Fit(allX, allY)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.Dist2(last.Params, batch.Params); d > 0.05 {
		t.Errorf("online params %.3f from batch params", d)
	}
}

func TestOnlineWithPriorFadesIt(t *testing.T) {
	// τ=1/n semantics: with a slightly-off prior, the solution should
	// drift from the prior mean toward the data optimum as data arrives.
	rng := rand.New(rand.NewSource(142))
	wstar := mat.Vec{3, -2}
	target := append(mat.CloneVec(wstar), 0)
	offPrior := mat.Vec{1.5, -3.5, 0.5}
	prior := priorAround(t, offPrior, 0.05, 0.9)
	l, err := New(model.Logistic{Dim: 2}, WithPrior(prior))
	if err != nil {
		t.Fatal(err)
	}
	online, err := NewOnline(l)
	if err != nil {
		t.Fatal(err)
	}
	var distToPrior []float64
	for batchNum := 0; batchNum < 4; batchNum++ {
		bx, by := linearTask(rng, 50, 2, wstar, 0.05)
		res, err := online.Observe(bx, by)
		if err != nil {
			t.Fatal(err)
		}
		distToPrior = append(distToPrior, mat.Dist2(res.Params, offPrior))
	}
	if distToPrior[3] <= distToPrior[0] {
		t.Errorf("prior did not fade over the stream: %v", distToPrior)
	}
	_ = target
}

func TestOnlineWindowTrims(t *testing.T) {
	l, err := New(model.Logistic{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	online, err := NewOnlineWindow(l, 25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(145))
	for i := 0; i < 4; i++ {
		bx, by := linearTask(rng, 10, 2, mat.Vec{1, 1}, 0)
		if _, err := online.Observe(bx, by); err != nil {
			t.Fatal(err)
		}
	}
	if online.Len() != 25 {
		t.Errorf("window kept %d samples, want 25", online.Len())
	}
	if _, err := NewOnlineWindow(l, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewOnlineWindow(nil, 5); err == nil {
		t.Error("nil learner accepted")
	}
}

func TestOnlineWindowForgetsOldConcept(t *testing.T) {
	// Feed one concept, then its exact opposite; a small window must
	// switch allegiance to the new concept.
	rng := rand.New(rand.NewSource(146))
	l, err := New(model.Logistic{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	online, err := NewOnlineWindow(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	oldX, oldY := linearTask(rng, 40, 2, mat.Vec{2, 1}, 0)
	if _, err := online.Observe(oldX, oldY); err != nil {
		t.Fatal(err)
	}
	newX, newY := linearTask(rng, 40, 2, mat.Vec{-2, -1}, 0)
	res, err := online.Observe(newX, newY)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := linearTask(rng, 500, 2, mat.Vec{-2, -1}, 0)
	if acc := model.Accuracy(l.Model(), res.Params, testX, testY); acc < 0.95 {
		t.Errorf("windowed learner stuck on the old concept: %v", acc)
	}
}

func TestOnlineValidation(t *testing.T) {
	if _, err := NewOnline(nil); err == nil {
		t.Error("nil learner accepted")
	}
	l, err := New(model.Logistic{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	online, err := NewOnline(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := online.Observe(mat.NewDense(0, 2), nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := online.Observe(mat.NewDense(1, 3), []float64{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := online.Observe(mat.NewDense(1, 2), []float64{1, 1}); err == nil {
		t.Error("label mismatch accepted")
	}
	if online.Params() != nil {
		t.Error("params should be nil before data")
	}
}
