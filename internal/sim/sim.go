// Package sim is a discrete-event simulator of a drdp deployment: a
// fleet of edge devices arriving over time, fetching the DP prior from
// one cloud over heterogeneous links (WiFi/4G/3G), training locally, and
// reporting their solved tasks back. Training inside the simulation is
// real (the actual DRDP learner runs and real accuracies are measured);
// only the clock is modeled — transfer times from the link profiles and
// a calibrated compute-rate model for training time.
//
// The simulator answers the deployment questions the evaluation's
// systems analysis raises: how prior staleness (cloud rebuild policy),
// link quality and arrival order interact to shape fleet-wide
// time-to-model and accuracy (EXPERIMENTS.md Figure 10).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/telemetry"
)

// DeviceSpec describes one simulated edge device.
type DeviceSpec struct {
	ID       int
	ArriveAt time.Duration
	Link     edge.LinkProfile
	Samples  int  // local training samples
	Report   bool // upload the solved task posterior
	Cluster  int  // task-family cluster the device's task comes from
	// LossRate is the probability that one transfer attempt (prior fetch
	// or report upload) fails on this device's link. Failed attempts cost
	// time (detection + backoff per Config.Retry); when every attempt
	// fails the device degrades: it trains prior-free, and a lost report
	// never reaches the cloud.
	LossRate float64
	// RefreshEvery, with Refreshes, runs a background prior-sync loop
	// after training: every RefreshEvery the device refreshes its held
	// prior — by version handshake when current, by component delta when
	// the cloud still retains the held version, by full prior otherwise,
	// and by falling back to the held copy when the cloud is down.
	RefreshEvery time.Duration
	// Refreshes is how many refresh rounds the device runs (0 = none).
	Refreshes int
	// Poison corrupts this device's uploaded posterior (training itself
	// stays honest, so the device's own accuracy is unaffected): the
	// poisoned-edge threat model where a compromised edge attacks the
	// fleet's shared prior.
	Poison PoisonKind
}

// PoisonKind enumerates the ways a hostile device corrupts its upload.
type PoisonKind int

// Poison kinds.
const (
	// PoisonNone uploads the honest posterior.
	PoisonNone PoisonKind = iota
	// PoisonNaN plants a NaN in the posterior mean — the "merely broken"
	// edge. Semantic validation catches it outright.
	PoisonNaN
	// PoisonAdversarial uploads a finite, well-formed but hostile
	// posterior: a far-off mean with a tiny covariance and a huge sample
	// count, crafted to drag the aggregated prior away from the true task
	// distribution. Only statistical quarantine catches it.
	PoisonAdversarial
)

// Config tunes a simulation run.
type Config struct {
	// Family generates device tasks; Model is the shared model family.
	Family *data.TaskFamily
	Model  model.Logistic
	// Set is the local uncertainty ball each device trains with.
	Set dro.Set
	// Alpha is the cloud's DP concentration.
	Alpha float64
	// RebuildEvery batches prior rebuilds: the cloud folds reports into
	// the served prior only after this many accumulate (1 = immediately).
	RebuildEvery int
	// ComputeRate calibrates simulated training time: parameter-gradient
	// evaluations per second (default 5e6).
	ComputeRate float64
	// TestSamples sizes the per-device accuracy measurement (default 1000).
	TestSamples int
	// Flip is the label noise on device tasks.
	Flip float64
	// Retry is the per-device transfer retry schedule used when a link
	// has a LossRate (zero value = one attempt, no retries). Mirrors the
	// live transport's ResilientClient policy so the simulator and the
	// real stack degrade the same way.
	Retry edge.RetryPolicy
	// Admission turns on the cloud's admission control: uploads are
	// semantically validated (rejects never enter the pool) and the
	// admission judge quarantines statistical outliers out of rebuilds —
	// mirroring the live CloudServer with SetAdmission.
	Admission bool
	// TrimFrac caps the fraction of the pool one judgment round may
	// quarantine (0 = dpprior default). Only meaningful with Admission.
	TrimFrac float64
	// OutageStart/OutageEnd model a cloud crash and recovery: in
	// [OutageStart, OutageEnd) every cloud interaction fails after the
	// retry budget, so arriving devices train prior-free and refreshing
	// devices fall back to their held prior. At OutageEnd the cloud comes
	// back with its durable state (tasks, served prior, version) intact
	// but its in-memory delta history empty — exactly what a drdp-cloud
	// restart on a -data-dir looks like: the first refresh after recovery
	// resyncs in full, later ones by delta again. Equal values = no outage.
	OutageStart time.Duration
	OutageEnd   time.Duration
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.RebuildEvery <= 0 {
		c.RebuildEvery = 1
	}
	if c.ComputeRate <= 0 {
		c.ComputeRate = 5e6
	}
	if c.TestSamples <= 0 {
		c.TestSamples = 1000
	}
	return c
}

// DeviceResult reports one device's simulated lifecycle.
type DeviceResult struct {
	ID              int
	ArriveAt        time.Duration
	FetchedVersion  uint64 // 0 = cold cloud, trained without a prior
	PriorComponents int
	Accuracy        float64
	DownlinkTime    time.Duration // prior transfer (including failed attempts)
	TrainTime       time.Duration // simulated compute time
	UplinkTime      time.Duration // report transfer (0 if not reporting)
	TimeToModel     time.Duration // arrive → model ready
	Retries         int           // failed transfer attempts that were retried
	Degraded        bool          // fetch attempts exhausted: trained prior-free
	ReportLost      bool          // upload attempts exhausted: cloud never saw the task
	Refreshes       int           // background prior-sync rounds run
	DeltaRefreshes  int           // refreshes answered with a component delta
	FullRefreshes   int           // refreshes that moved the full prior
	CachedFallbacks int           // refreshes that fell back to the held prior (cloud down/unreachable)
	FinalVersion    uint64        // prior version held when the run ended
	Rejected        bool          // upload refused by semantic validation
	Quarantined     bool          // upload admitted but held out of rebuilds by the judge
}

// Result aggregates the run.
type Result struct {
	Devices      []DeviceResult
	FinalVersion uint64
	Rebuilds     int
	BytesDown    int // total prior bytes shipped to devices (fetch + refresh)
	BytesUp      int // total posterior bytes reported
	Degraded     int // devices that trained without a prior due to link loss
	ReportsLost  int // reports that never reached the cloud

	Refreshes       int // background prior-sync rounds across the fleet
	DeltaRefreshes  int // refreshes served as component deltas
	FullRefreshes   int // refreshes that moved the full prior
	CachedFallbacks int // refreshes that fell back to the held prior
	DeltaBytesSaved int // full-prior bytes the delta refreshes avoided

	RejectedUploads    int // uploads refused by semantic validation
	QuarantinedUploads int // uploads held out of rebuilds by the admission judge
}

// event is one scheduled simulator transition.
type event struct {
	at   time.Duration
	seq  int // tie-breaker for determinism
	kind eventKind
	dev  int // index into devices
}

type eventKind int

const (
	evArrive eventKind = iota
	evFetched
	evTrained
	evReportArrived
	evRefresh
)

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// simDeltaHistory mirrors the live server's delta retention: how many
// built priors the simulated cloud keeps for delta refreshes.
const simDeltaHistory = 8

// cloudState is the simulated cloud: accumulated tasks, the currently
// served prior (rebuilt per policy), and a ring of recent priors for
// delta refreshes — the same retention the live CloudServer has.
type cloudState struct {
	tasks        []dpprior.TaskPosterior
	taskDev      []int // device index that reported tasks[i]
	pendingSince int   // tasks not yet folded into the served prior
	served       *dpprior.Prior
	version      uint64
	rebuilds     int
	alpha        float64
	seed         int64
	admission    bool
	trimFrac     float64
	dim          int          // pinned by the first admitted task
	rejected     int          // uploads refused by validation
	decided      map[int]bool // task index → quarantined
	deferred     map[int]bool // flagged but over budget last round: no verdict yet
	history      map[uint64]*dpprior.Prior
	histOrder    []uint64
}

// report handles one uploaded posterior; accepted is false when
// admission validation refused it (the upload never enters the pool).
func (c *cloudState) report(t dpprior.TaskPosterior, dev, rebuildEvery int) (accepted bool) {
	if c.admission {
		if err := t.Validate(c.dim); err != nil {
			c.rejected++
			return false
		}
		if c.dim == 0 {
			c.dim = len(t.Mu)
		}
	}
	c.tasks = append(c.tasks, t)
	c.taskDev = append(c.taskDev, dev)
	c.pendingSince++
	if c.pendingSince >= rebuildEvery {
		c.rebuild()
		c.pendingSince = 0
	}
	return true
}

// rebuild folds admitted tasks into a fresh served prior, mirroring the
// live server: a failed build keeps the previous prior serving.
func (c *cloudState) rebuild() {
	admitted := c.admit()
	if len(admitted) == 0 {
		return
	}
	p, err := dpprior.Build(admitted, dpprior.BuildOptions{Alpha: c.alpha, Seed: c.seed})
	if err != nil {
		return
	}
	c.served = p
	c.version++
	c.rebuilds++
	if c.history == nil {
		c.history = make(map[uint64]*dpprior.Prior, simDeltaHistory)
	}
	c.history[c.version] = p
	c.histOrder = append(c.histOrder, c.version)
	for len(c.histOrder) > simDeltaHistory {
		delete(c.history, c.histOrder[0])
		c.histOrder = c.histOrder[1:]
	}
}

// admit mirrors CloudServer.admit: undecided tasks are judged against
// the served prior, verdicts stick, and the admitted set is assembled in
// report order (which keeps a seeded Build byte-identical to a clean
// baseline when the admitted sets match). Candidates the judge flagged
// but could not quarantine within the trim budget get no verdict: they
// are held out of this rebuild and re-judged next round.
func (c *cloudState) admit() []dpprior.TaskPosterior {
	if !c.admission {
		return c.tasks
	}
	if c.decided == nil {
		c.decided = make(map[int]bool)
	}
	var acceptedRef, undecided []dpprior.TaskPosterior
	var undecidedIdx []int
	for i, t := range c.tasks {
		q, ok := c.decided[i]
		switch {
		case !ok:
			undecided = append(undecided, t)
			undecidedIdx = append(undecidedIdx, i)
		case !q:
			acceptedRef = append(acceptedRef, t)
		}
	}
	deferred := make(map[int]bool)
	if len(undecided) > 0 {
		var served *dpprior.Compiled
		if c.served != nil {
			if comp, err := dpprior.Compile(c.served); err == nil {
				served = comp
			}
		}
		opts := dpprior.AdmissionOptions{TrimFrac: c.trimFrac}
		if q, def, ok := dpprior.Judge(served, acceptedRef, undecided, opts); ok {
			for i, quarantined := range q {
				if def[i] {
					// Flagged but over the trim budget: no sticky verdict,
					// held out of this rebuild, re-judged next round.
					deferred[undecidedIdx[i]] = true
					continue
				}
				c.decided[undecidedIdx[i]] = quarantined
			}
		}
	}
	c.deferred = deferred
	admitted := make([]dpprior.TaskPosterior, 0, len(c.tasks))
	for i, t := range c.tasks {
		if c.decided[i] || deferred[i] {
			continue
		}
		admitted = append(admitted, t)
	}
	return admitted
}

// restart models the recovery side of an outage: the durable store
// brings back tasks, served prior and version, but the in-memory delta
// history is gone — refreshes right after recovery go full.
func (c *cloudState) restart() {
	c.history = nil
	c.histOrder = nil
}

// transfer simulates one possibly-lossy transfer: each failed attempt
// costs a detection delay (two one-way latencies — the timed-out
// handshake) plus the policy's backoff, and ok reports whether any
// attempt within the retry budget succeeded. Deterministic per rng.
func transfer(rng *rand.Rand, loss float64, policy edge.RetryPolicy, link edge.LinkProfile) (retries int, waste time.Duration, ok bool) {
	attempts := policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if loss <= 0 || rng.Float64() >= loss {
			return retries, waste, true
		}
		waste += 2 * link.Latency
		if i < attempts-1 {
			retries++
			waste += policy.Delay(i, rng)
		}
	}
	return retries, waste, false
}

// deviceState carries a device's in-flight data between events.
type deviceState struct {
	spec          DeviceSpec
	task          data.LinearTask
	train         *data.Dataset
	test          *data.Dataset
	prior         *dpprior.Prior
	version       uint64
	result        DeviceResult
	fit           *core.Result
	cov           *mat.Dense // Laplace posterior covariance, computed once
	refreshesLeft int
}

// Run executes the simulation and returns per-device results ordered by
// device arrival.
func Run(cfg Config, specs []DeviceSpec) (*Result, error) {
	if cfg.Family == nil {
		return nil, errors.New("sim: Config.Family is required")
	}
	if len(specs) == 0 {
		return nil, errors.New("sim: no devices")
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	devices := make([]*deviceState, len(specs))
	for i, spec := range specs {
		if spec.Samples <= 0 {
			return nil, fmt.Errorf("sim: device %d has no samples", spec.ID)
		}
		task := cfg.Family.SampleTask(rng, spec.Cluster)
		task.Flip = cfg.Flip
		devices[i] = &deviceState{
			spec:  spec,
			task:  task,
			train: task.Sample(rng, spec.Samples),
			test:  task.Sample(rng, cfg.TestSamples),
			result: DeviceResult{
				ID:       spec.ID,
				ArriveAt: spec.ArriveAt,
			},
		}
	}

	cloud := &cloudState{
		alpha:     cfg.Alpha,
		seed:      cfg.Seed + 1,
		admission: cfg.Admission,
		trimFrac:  cfg.TrimFrac,
	}
	// Link faults draw from their own stream so enabling loss does not
	// perturb task sampling.
	linkRng := rand.New(rand.NewSource(cfg.Seed + 2))
	q := &eventQueue{}
	seq := 0
	push := func(at time.Duration, kind eventKind, dev int) {
		heap.Push(q, event{at: at, seq: seq, kind: kind, dev: dev})
		seq++
	}
	for i, d := range devices {
		push(d.spec.ArriveAt, evArrive, i)
	}

	out := &Result{}
	hasOutage := cfg.OutageEnd > cfg.OutageStart
	recovered := !hasOutage
	for q.Len() > 0 {
		e := heap.Pop(q).(event)
		d := devices[e.dev]
		// Outage window: every interaction starting inside it fails after
		// the retry budget, as if the cloud process were dead.
		down := hasOutage && e.at >= cfg.OutageStart && e.at < cfg.OutageEnd
		if !recovered && e.at >= cfg.OutageEnd {
			cloud.restart()
			recovered = true
		}
		lossFor := func(base float64) float64 {
			if down {
				return 1
			}
			return base
		}
		switch e.kind {
		case evArrive:
			// The lossy link may eat fetch attempts before (or instead of)
			// the prior coming through.
			retries, waste, ok := transfer(linkRng, lossFor(d.spec.LossRate), cfg.Retry, d.spec.Link)
			d.result.Retries += retries
			// Snapshot the served prior NOW; downlink delay follows.
			d.prior = cloud.served
			d.version = cloud.version
			var downlink time.Duration
			if !ok {
				// Every attempt lost: degrade to prior-free training, like
				// a live Device with FallbackLocal and a cold cache.
				d.prior = nil
				d.version = 0
				d.result.Degraded = true
				out.Degraded++
				downlink = waste
			} else if d.prior != nil {
				wire := d.prior.WireSize()
				downlink = waste + d.spec.Link.TransferTime(wire)
				out.BytesDown += wire
			} else {
				downlink = waste + d.spec.Link.Latency // empty "no prior yet" reply
			}
			d.result.DownlinkTime = downlink
			d.result.FetchedVersion = d.version
			if d.prior != nil {
				d.result.PriorComponents = len(d.prior.Components)
			}
			push(e.at+downlink, evFetched, e.dev)

		case evFetched:
			// Real training; simulated duration from the compute model.
			dev := &edge.Device{ID: d.spec.ID, Model: cfg.Model, Set: cfg.Set}
			res, err := dev.TrainWithPrior(d.prior, d.train.X, d.train.Y)
			if err != nil {
				return nil, fmt.Errorf("sim: device %d train: %w", d.spec.ID, err)
			}
			d.fit = res
			d.result.Accuracy = model.Accuracy(cfg.Model, res.Params, d.test.X, d.test.Y)
			// Cost model: EM iterations × M-step budget × n × params.
			ops := float64(res.EMIterations) * 200 * float64(d.train.Len()) * float64(cfg.Model.NumParams())
			d.result.TrainTime = time.Duration(ops / cfg.ComputeRate * float64(time.Second))
			push(e.at+d.result.TrainTime, evTrained, e.dev)

		case evTrained:
			d.result.TimeToModel = e.at - d.spec.ArriveAt
			if d.spec.Refreshes > 0 && d.spec.RefreshEvery > 0 {
				// Start the background prior-sync loop.
				d.refreshesLeft = d.spec.Refreshes
				push(e.at+d.spec.RefreshEvery, evRefresh, e.dev)
			}
			if !d.spec.Report {
				break
			}
			cov, err := model.LaplacePosterior(cfg.Model, d.fit.Params, d.train.X, d.train.Y, 1e-3)
			if err != nil {
				return nil, fmt.Errorf("sim: device %d posterior: %w", d.spec.ID, err)
			}
			d.cov = cov
			retries, waste, ok := transfer(linkRng, lossFor(d.spec.LossRate), cfg.Retry, d.spec.Link)
			d.result.Retries += retries
			if !ok {
				// The upload never made it: the device keeps its model but
				// the fleet's prior misses this task.
				d.result.ReportLost = true
				out.ReportsLost++
				d.result.UplinkTime = waste
				break
			}
			wire := 8 * (len(d.fit.Params) + len(cov.Data) + 1)
			d.result.UplinkTime = waste + d.spec.Link.TransferTime(wire)
			out.BytesUp += wire
			push(e.at+d.result.UplinkTime, evReportArrived, e.dev)

		case evReportArrived:
			task := dpprior.TaskPosterior{
				Mu:    d.fit.Params,
				Sigma: d.cov,
				N:     d.train.Len(),
			}
			if d.spec.Poison != PoisonNone {
				task = poisonTask(task, d.spec.Poison)
			}
			if !cloud.report(task, e.dev, cfg.RebuildEvery) {
				d.result.Rejected = true
				out.RejectedUploads++
			}

		case evRefresh:
			d.refreshesLeft--
			if d.refreshesLeft > 0 {
				push(e.at+d.spec.RefreshEvery, evRefresh, e.dev)
			}
			d.result.Refreshes++
			out.Refreshes++
			retries, _, ok := transfer(linkRng, lossFor(d.spec.LossRate), cfg.Retry, d.spec.Link)
			d.result.Retries += retries
			switch {
			case !ok:
				// Cloud down or link dead: the device keeps serving itself
				// from the prior it already holds — the PriorCache path.
				d.result.CachedFallbacks++
				out.CachedFallbacks++
			case cloud.served == nil || cloud.version == d.version:
				// Cold cloud or already current: a version handshake, no
				// payload.
			default:
				full := cloud.served.WireSize()
				wire := full
				delta := false
				if old := cloud.history[d.version]; old != nil && d.prior != nil {
					pd := dpprior.Diff(old, cloud.served, d.version, cloud.version)
					if pd.WireSize() < full {
						wire = pd.WireSize()
						delta = true
					}
				}
				if delta {
					d.result.DeltaRefreshes++
					out.DeltaRefreshes++
					out.DeltaBytesSaved += full - wire
				} else {
					d.result.FullRefreshes++
					out.FullRefreshes++
				}
				out.BytesDown += wire
				d.prior = cloud.served
				d.version = cloud.version
			}
		}
	}

	for idx, quarantined := range cloud.decided {
		if quarantined {
			devices[cloud.taskDev[idx]].result.Quarantined = true
			out.QuarantinedUploads++
		}
	}
	// A task still deferred when the run ends never got a verdict, but it
	// was held out of rebuilds by the judge all the same — report it.
	for idx, def := range cloud.deferred {
		if def {
			devices[cloud.taskDev[idx]].result.Quarantined = true
			out.QuarantinedUploads++
		}
	}
	for _, d := range devices {
		d.result.FinalVersion = d.version
		out.Devices = append(out.Devices, d.result)
	}
	out.FinalVersion = cloud.version
	out.Rebuilds = cloud.rebuilds

	// Mirror the aggregate result into the process-wide registry so a
	// simulation shows up on /metrics (and in Snapshot-based assertions)
	// the same way a live fleet would.
	retries := 0
	for _, d := range out.Devices {
		retries += d.Retries
	}
	telemetry.SimDevices.Add(float64(len(out.Devices)))
	telemetry.SimDegraded.Add(float64(out.Degraded))
	telemetry.SimReportsLost.Add(float64(out.ReportsLost))
	telemetry.SimRetries.Add(float64(retries))
	telemetry.SimRebuilds.Add(float64(out.Rebuilds))
	telemetry.SimBytesDown.Add(float64(out.BytesDown))
	telemetry.SimBytesUp.Add(float64(out.BytesUp))
	telemetry.SimRefreshes.Add(float64(out.Refreshes))
	telemetry.SimDeltaRefreshes.Add(float64(out.DeltaRefreshes))
	telemetry.SimFullRefreshes.Add(float64(out.FullRefreshes))
	telemetry.SimCachedFallbacks.Add(float64(out.CachedFallbacks))
	telemetry.SimDeltaSavedBytes.Add(float64(out.DeltaBytesSaved))
	telemetry.SimRejected.Add(float64(out.RejectedUploads))
	telemetry.SimQuarantined.Add(float64(out.QuarantinedUploads))
	return out, nil
}

// poisonTask corrupts an honest posterior per the device's poison kind.
// It never touches the honest task's backing arrays (clean uploads stay
// bit-identical across poisoned and clean runs).
func poisonTask(t dpprior.TaskPosterior, kind PoisonKind) dpprior.TaskPosterior {
	dim := len(t.Mu)
	mu := make([]float64, dim)
	switch kind {
	case PoisonNaN:
		copy(mu, t.Mu)
		mu[0] = math.NaN()
		return dpprior.TaskPosterior{Mu: mu, Sigma: t.Sigma, N: t.N}
	case PoisonAdversarial:
		// Finite and well-formed, but hostile: a small-norm anti-correlated
		// mean, overconfident (tiny covariance) and heavy (huge N). The
		// small norm keeps the basin cheap in data loss, so the component's
		// overconfident density spike can win the multi-start objective on
		// data-poor devices — a far-off mean would lose that race outright —
		// and the huge N hijacks any sample-weighted aggregation it reaches.
		for j, v := range t.Mu {
			mu[j] = -0.2 * v
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(1e-4)
		return dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100000}
	default:
		return t
	}
}
