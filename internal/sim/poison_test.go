package sim

import (
	"testing"

	"github.com/drdp/drdp/internal/edge"
)

// poisonedFleet is fleet() with the poison kind planted on a subset of
// the pioneers, evenly spread through the arrival order.
func poisonedFleet(pioneers, late, poisoners int, kind PoisonKind) []DeviceSpec {
	specs := fleet(pioneers, late, edge.LinkWiFi)
	for i := 0; i < pioneers; i++ {
		if ((i+1)*poisoners)/pioneers > (i*poisoners)/pioneers {
			specs[i].Poison = kind
		}
	}
	return specs
}

// TestSimNaNPoisonRejectedAtUpload: the "merely broken" device — its NaN
// posterior is refused by validation at upload time, never enters the
// pool, and the run completes normally for everyone else.
func TestSimNaNPoisonRejectedAtUpload(t *testing.T) {
	cfg := simConfig(t, 220)
	cfg.Admission = true
	cfg.RebuildEvery = 1
	specs := poisonedFleet(4, 4, 1, PoisonNaN)
	res, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectedUploads != 1 {
		t.Errorf("RejectedUploads = %d, want 1", res.RejectedUploads)
	}
	var flagged int
	for i, d := range res.Devices {
		if d.Rejected {
			flagged++
			if specs[i].Poison != PoisonNaN {
				t.Errorf("honest device %d marked rejected", d.ID)
			}
		}
	}
	if flagged != 1 {
		t.Errorf("%d devices marked rejected, want 1", flagged)
	}
	// Everyone still trains; the fleet is not poisoned.
	for _, d := range res.Devices {
		if d.Accuracy <= 0.5 {
			t.Errorf("device %d accuracy %.3f under NaN poisoning", d.ID, d.Accuracy)
		}
	}
}

// TestSimAdversarialPoisonQuarantined is the fleet-level chaos test:
// with 30% of pioneers uploading adversarial posteriors and admission
// on, the quarantine must catch exactly the poisoners (precision and
// recall 1.0), and the late clean devices must do strictly better than
// the same fleet with admission off. (Exact byte-stability against a
// poison-free baseline is asserted at the server layer, where uploads
// are fixed; here training feeds back — a pioneer that fetched a
// transiently tainted prior uploads a slightly different honest task.)
func TestSimAdversarialPoisonQuarantined(t *testing.T) {
	const pioneers, late, poisoners = 10, 6, 3
	cfg := simConfig(t, 221)
	cfg.Admission = true
	cfg.TrimFrac = 0.6
	cfg.RebuildEvery = 1

	specs := poisonedFleet(pioneers, late, poisoners, PoisonAdversarial)
	res, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}

	// Quarantine precision/recall against ground truth.
	for i, d := range res.Devices {
		isPoisoner := specs[i].Poison == PoisonAdversarial
		flagged := d.Rejected || d.Quarantined
		if isPoisoner && !flagged {
			t.Errorf("poisoner %d not caught", d.ID)
		}
		if !isPoisoner && flagged {
			t.Errorf("honest device %d flagged", d.ID)
		}
	}
	if res.QuarantinedUploads != poisoners {
		t.Errorf("QuarantinedUploads = %d, want %d", res.QuarantinedUploads, poisoners)
	}

	// The same poisoned fleet with admission off: the hostile components
	// reach every late device's prior, and their accuracy must suffer
	// relative to the defended run.
	offCfg := simConfig(t, 221)
	offCfg.RebuildEvery = 1
	off, err := Run(offCfg, poisonedFleet(pioneers, late, poisoners, PoisonAdversarial))
	if err != nil {
		t.Fatal(err)
	}
	var accOn, accOff float64
	for i := pioneers; i < pioneers+late; i++ {
		accOn += res.Devices[i].Accuracy / late
		accOff += off.Devices[i].Accuracy / late
	}
	if accOn <= accOff {
		t.Errorf("admission on late-device accuracy %.3f not above admission off %.3f",
			accOn, accOff)
	}
}

// TestSimAdmissionOffAdmitsEverything: with admission off nothing is
// rejected or quarantined — the knob actually gates the machinery.
func TestSimAdmissionOffAdmitsEverything(t *testing.T) {
	cfg := simConfig(t, 222)
	cfg.RebuildEvery = 1
	res, err := Run(cfg, poisonedFleet(6, 2, 2, PoisonAdversarial))
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectedUploads != 0 || res.QuarantinedUploads != 0 {
		t.Errorf("admission off rejected %d / quarantined %d",
			res.RejectedUploads, res.QuarantinedUploads)
	}
}
