package sim

import (
	"bytes"
	"testing"

	"github.com/drdp/drdp/internal/telemetry"
)

// TestRunClusterByteIdenticalVsControl is the tier's acceptance
// scenario end to end: 3 shards × 2 replicas, the leader of shard 0
// killed before round 2, and the recovered cluster's merged prior must
// be byte-identical to an unfailed control run over the same workload.
func TestRunClusterByteIdenticalVsControl(t *testing.T) {
	base := ClusterConfig{
		Shards: 3, Replicas: 2,
		Rounds: 4, TasksPerRound: 4, Dim: 4,
		KillShard: -1,
		Seed:      501,
		Logger:    telemetry.Discard(),
	}
	control, err := RunCluster(base)
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	if control.Killed != "" || control.FailoverTime != 0 {
		t.Fatalf("control run reported a kill: %+v", control)
	}
	if control.Tasks != base.Rounds*base.TasksPerRound {
		t.Fatalf("control delivered %d tasks, want %d", control.Tasks, base.Rounds*base.TasksPerRound)
	}
	if control.RoundsPerSec <= 0 {
		t.Fatalf("control RoundsPerSec = %v", control.RoundsPerSec)
	}

	killed := base
	killed.KillShard = 0
	killed.KillRound = 2
	chaos, err := RunCluster(killed)
	if err != nil {
		t.Fatalf("kill run: %v", err)
	}
	if chaos.Killed == "" {
		t.Fatal("kill run killed nothing")
	}
	if chaos.FailoverTime <= 0 || chaos.RecoveryTime < chaos.FailoverTime {
		t.Fatalf("implausible failover/recovery times: %v / %v", chaos.FailoverTime, chaos.RecoveryTime)
	}
	if chaos.MapVersion <= control.MapVersion {
		t.Fatalf("map version %d did not bump past control's %d", chaos.MapVersion, control.MapVersion)
	}
	if chaos.Tasks != control.Tasks {
		t.Fatalf("kill run delivered %d tasks, control %d", chaos.Tasks, control.Tasks)
	}
	if !bytes.Equal(control.PriorBytes, chaos.PriorBytes) {
		t.Fatalf("merged prior after failover differs from control (%d vs %d bytes)",
			len(chaos.PriorBytes), len(control.PriorBytes))
	}
}

// TestRunClusterSingleShard: the tier degenerates cleanly to one shard,
// one replica — no replication, no coordinator failover, still a valid
// merged prior.
func TestRunClusterSingleShard(t *testing.T) {
	res, err := RunCluster(ClusterConfig{
		Shards: 1, Replicas: 1,
		Rounds: 2, TasksPerRound: 3, Dim: 3,
		KillShard: -1,
		Seed:      502,
		Logger:    telemetry.Discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 6 || res.MergedComponents == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if len(res.FinalVersions) != 1 || res.FinalVersions[0] != 6 {
		t.Fatalf("single shard should hold all 6 tasks: %v", res.FinalVersions)
	}
}

// TestRunClusterRejectsBadFaultConfig: killing a leader without a
// follower to promote is a configuration error, not a hang.
func TestRunClusterRejectsBadFaultConfig(t *testing.T) {
	if _, err := RunCluster(ClusterConfig{Shards: 1, Replicas: 1, KillShard: 0, Seed: 503, Logger: telemetry.Discard()}); err == nil {
		t.Fatal("kill with a single replica was accepted")
	}
	if _, err := RunCluster(ClusterConfig{Shards: 2, Replicas: 2, KillShard: 5, Seed: 504, Logger: telemetry.Discard()}); err == nil {
		t.Fatal("out-of-range kill shard was accepted")
	}
}
