package sim

import (
	"bytes"
	"testing"

	"github.com/drdp/drdp/internal/telemetry"
)

// TestRunDiskChaos is the acceptance test for the disk-fault chaos
// scenario: with bit rot on one replica's disk and a slow (not dead)
// leader, the scrubber must repair the rotted log byte-identical to the
// leader's, the coordinator must demote (not kill) the gray leader, and
// hedged reads must keep the round read latency in the fault-free
// neighborhood — all of it visible in the telemetry counters, and the
// final merged prior byte-identical to the fault-free control run.
func TestRunDiskChaos(t *testing.T) {
	slowLeader := DiskChaosConfig{}.withDefaults().SlowLeader
	control, err := RunDiskChaos(DiskChaosConfig{
		Dir:    t.TempDir(),
		Chaos:  false,
		Seed:   61,
		Logger: telemetry.Discard(),
	})
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	chaos, err := RunDiskChaos(DiskChaosConfig{
		Dir:    t.TempDir(),
		Chaos:  true,
		Seed:   61,
		Logger: telemetry.Discard(),
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	// The tentpole invariant: every defense fired, and the data is
	// exactly — not approximately — what the fault-free run produced.
	if !bytes.Equal(control.PriorBytes, chaos.PriorBytes) {
		t.Fatalf("chaos merged prior differs from control (%d vs %d bytes)",
			len(chaos.PriorBytes), len(control.PriorBytes))
	}
	if !chaos.Repaired {
		t.Fatal("rotted log was not repaired byte-identical")
	}
	if chaos.RotFlips == 0 {
		t.Fatal("fault injector never flipped a byte — the chaos run tested nothing")
	}
	if chaos.Demoted == "" || chaos.Demotions < 1 {
		t.Fatalf("gray leader was not demoted (demoted=%q, demotions=%v)", chaos.Demoted, chaos.Demotions)
	}
	if chaos.Tasks != control.Tasks {
		t.Fatalf("chaos run delivered %d tasks, control %d", chaos.Tasks, control.Tasks)
	}

	// Hedged reads: the slow demoted replica sits first in read order, so
	// without hedging every post-demotion read — and with it every round
	// — would cost the full serve delay. The direct hedging claim is the
	// read p99 staying far under that delay. The round-p99 bound vs the
	// fault-free run carries a SlowLeader/2 allowance on top of the 2×:
	// the whole cluster shares one process (in CI, one core, under the
	// race detector), so the control p99 itself jitters by more than the
	// hedge overhead the bound is trying to expose; the allowance keeps
	// the gate meaningful — an unhedged run pays the full SlowLeader
	// every round and still fails it — without gating on scheduler noise.
	if chaos.ReadP99 >= slowLeader/2 {
		t.Fatalf("chaos read p99 %v is not clearly under the slow replica's %v delay",
			chaos.ReadP99, slowLeader)
	}
	limit := 2*control.RoundP99 + slowLeader/2
	if chaos.RoundP99 > limit {
		t.Fatalf("chaos round p99 %v exceeds 2×control (%v) + %v = %v",
			chaos.RoundP99, control.RoundP99, slowLeader/2, limit)
	}

	// Satellite telemetry: the chaos run moves the counters...
	if chaos.ScrubRepairedFrames < 1 {
		t.Fatalf("drdp_store_scrub_repaired_total moved by %v, want ≥ 1", chaos.ScrubRepairedFrames)
	}
	if chaos.FaultsInjected < 1 {
		t.Fatalf("drdp_store_fault_injected_total moved by %v, want ≥ 1", chaos.FaultsInjected)
	}
	if chaos.HedgeFired < 1 || chaos.HedgeWon < 1 {
		t.Fatalf("hedge counters did not move (fired=%v won=%v)", chaos.HedgeFired, chaos.HedgeWon)
	}
	// ...and the control run does not: a healthy cluster neither repairs
	// nor demotes, and its hedges stay quiet.
	if control.Demotions != 0 || control.FaultsInjected != 0 {
		t.Fatalf("control run moved fault counters (demotions=%v faults=%v)",
			control.Demotions, control.FaultsInjected)
	}
}
