package sim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/drdp/drdp/internal/cluster"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
)

// DiskChaosConfig sizes the disk-fault chaos scenario: one shard,
// Replicas replicas, with two concurrent gray failures injected
// mid-run — bit rot on one follower's disk (a FaultFS corrupting
// acknowledged writes behind the store's back) and a slow-but-alive
// leader. The run exercises all three defenses at once: the rotted
// node's background scrubber quarantines and re-pulls the damaged
// range from its leader, the coordinator's latency EWMA demotes the
// slow leader without killing it, and the client's hedged reads keep
// the read path fast while the demoted node still answers slowly.
type DiskChaosConfig struct {
	// Replicas is the replica count of the single shard (default 3;
	// chaos needs ≥ 3 so a rotted follower and a demoted leader still
	// leave a healthy replica).
	Replicas int
	// Rounds of TasksPerRound uploads, each ending in a merged-prior
	// fetch (defaults 12 × 4 — keeps the log under the snapshot
	// threshold so byte-identity is checked against the full log).
	Rounds        int
	TasksPerRound int
	// Dim is the task posterior dimension (default 4).
	Dim int
	// Alpha is the DP concentration (default 1).
	Alpha float64
	// Dir is the base store directory. Required: byte-identity of the
	// repaired log is checked on disk.
	Dir string
	// Chaos injects the faults; false is the control run.
	Chaos bool
	// ChaosRound is the round before which both faults land
	// (default Rounds/2).
	ChaosRound int
	// SlowLeader is the serve delay injected on the leader — alive, but
	// slow (default 300ms; must stay under the coordinator's 500ms probe
	// timeout or ordinary failover wins the race, and far above
	// GrayLatency so only the injected fault trips the policy).
	SlowLeader time.Duration
	// GrayLatency/GrayAfter arm the coordinator's demotion policy
	// (defaults 150ms / 5). The threshold is deliberately generous: the
	// whole cluster shares one process (and often one core, under the
	// race detector), so a healthy-but-loaded replica's probe RTT is
	// scheduler noise well above anything a production deployment sees.
	GrayLatency time.Duration
	GrayAfter   int
	// HedgeDelay is the client's fixed hedge delay (default 20ms).
	HedgeDelay time.Duration
	// ScrubEvery is every node's scrub cadence (default 50ms).
	ScrubEvery time.Duration
	// Seed drives the workload, cluster jitter, and the fault plan.
	Seed   int64
	Logger *slog.Logger
}

func (c DiskChaosConfig) withDefaults() DiskChaosConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 12
	}
	if c.TasksPerRound <= 0 {
		c.TasksPerRound = 4
	}
	if c.Dim <= 0 {
		c.Dim = 4
	}
	if c.Alpha <= 0 {
		c.Alpha = 1
	}
	if c.ChaosRound <= 0 {
		c.ChaosRound = c.Rounds / 2
	}
	if c.SlowLeader <= 0 {
		c.SlowLeader = 300 * time.Millisecond
	}
	if c.GrayLatency <= 0 {
		c.GrayLatency = 150 * time.Millisecond
	}
	if c.GrayAfter <= 0 {
		c.GrayAfter = 5
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 20 * time.Millisecond
	}
	if c.ScrubEvery <= 0 {
		c.ScrubEvery = 50 * time.Millisecond
	}
	return c
}

// DiskChaosResult reports one disk-chaos scenario run.
type DiskChaosResult struct {
	Replicas int
	Rounds   int
	Tasks    int
	Elapsed  time.Duration

	// ReadP99/ReadMax summarize the per-round merged-prior fetch
	// latencies — the numbers hedging is supposed to protect.
	ReadP99 time.Duration
	ReadMax time.Duration
	// RoundP99/RoundMax cover the whole round (upload + read), excluding
	// the injection itself — the acceptance bound is round p99 within 2×
	// of the fault-free run.
	RoundP99 time.Duration
	RoundMax time.Duration

	Rot          string        // rotted node name ("" = control run)
	RotFlips     int           // bytes the FaultFS corrupted on its disk
	Demoted      string        // demoted gray leader ("" = control run)
	DemotionTime time.Duration // slow-down → new leader in the map
	Repaired     bool          // rotted log ended byte-identical to the leader's
	RepairTime   time.Duration // end of rounds → byte-identity observed

	// Counter deltas over the run (satellite telemetry: the chaos run
	// must show them moving, the control run must not).
	ScrubRepairedFrames float64
	FaultsInjected      float64
	Demotions           float64
	HedgeFired          float64
	HedgeWon            float64
	HedgeCancelled      float64

	FinalVersion     uint64
	MergedComponents int
	PriorBytes       []byte // gob of the final merged prior (byte-identity vs control)
}

// rotReplica is the replica index carrying the FaultFS. Not replica 1:
// on a version tie the demotion promotes the lowest-index follower, and
// the promoted node scrubs detect-only — rotting it would leave nobody
// to repair from. Rotting the highest-index replica keeps the promotion
// target (replica 1) clean.
func rotReplica(replicas int) int { return replicas - 1 }

// RunDiskChaos executes one disk-fault chaos scenario. Chaos and
// control runs over the same seed must converge to byte-identical
// PriorBytes, and the chaos run's rotted log must end byte-identical to
// its leader's — repaired over the wire, not rebuilt locally.
func RunDiskChaos(cfg DiskChaosConfig) (*DiskChaosResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("sim: disk chaos needs a store directory (byte-identity is checked on disk)")
	}
	if cfg.Chaos && cfg.Replicas < 3 {
		return nil, errors.New("sim: disk chaos needs at least 3 replicas")
	}
	logger := telemetry.OrDefault(cfg.Logger)

	base := struct{ scrub, faults, demote, fired, won, cancelled float64 }{
		scrub:     telemetry.StoreScrubRepaired.Value(),
		faults:    telemetry.StoreFaultInjected("bit-flip").Value(),
		demote:    telemetry.ClusterDemotions.Value(),
		fired:     telemetry.ClusterHedgeFired.Value(),
		won:       telemetry.ClusterHedgeWon.Value(),
		cancelled: telemetry.ClusterHedgeCancelled.Value(),
	}

	// The rotted replica's disk: a seeded FaultFS flipping a byte of
	// every acknowledged write while armed. Disarmed until the chaos
	// round — setup replicates clean.
	rot := rotReplica(cfg.Replicas)
	faultFS := store.NewFaultFS(nil, store.FaultPlan{Seed: cfg.Seed + 9, BitFlipRate: 1})
	faultFS.Disarm()

	ccfg := cluster.Config{
		Shards:        1,
		Replicas:      cfg.Replicas,
		Dir:           cfg.Dir,
		Build:         dpprior.BuildOptions{Alpha: cfg.Alpha, Seed: cfg.Seed + 1},
		SyncReplicas:  1,
		AckTimeout:    500 * time.Millisecond,
		PullInterval:  10 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
		FailThreshold: 3,
		GrayLatency:   cfg.GrayLatency,
		GrayAfter:     cfg.GrayAfter,
		ScrubEvery:    cfg.ScrubEvery,
		Seed:          cfg.Seed,
		Logger:        cfg.Logger,
	}
	if cfg.Chaos {
		ccfg.NodeFS = func(shard, replica int) store.FS {
			if replica == rot {
				return faultFS
			}
			return nil
		}
	}
	cl, err := cluster.Start(ccfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// Deterministic workload: control and chaos runs feed identical bytes.
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	total := cfg.Rounds * cfg.TasksPerRound
	tasks := make([]dpprior.TaskPosterior, total)
	for i := range tasks {
		mu := make(mat.Vec, cfg.Dim)
		for j := range mu {
			mu[j] = rng.NormFloat64()
		}
		sigma := mat.Eye(cfg.Dim)
		sigma.ScaleBy(0.1)
		tasks[i] = dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
	}

	sc := cluster.DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		Seed: cfg.Seed + 3, Logger: telemetry.Discard(),
	})
	defer sc.Close()
	// Hedging is armed in BOTH runs — the control run shows it stays
	// quiet on a healthy cluster (HedgeFired ≈ 0), the chaos run shows
	// it covering the slow demoted replica.
	sc.SetHedge(cluster.HedgeConfig{Delay: cfg.HedgeDelay})

	out := &DiskChaosResult{Replicas: cfg.Replicas, Rounds: cfg.Rounds}
	reads := make([]time.Duration, 0, cfg.Rounds)
	rounds := make([]time.Duration, 0, cfg.Rounds)
	start := time.Now()
	for round := 0; round < cfg.Rounds; round++ {
		if cfg.Chaos && round == cfg.ChaosRound {
			// Fault 1: the rotted replica's disk starts flipping bytes.
			faultFS.Arm()
			out.Rot = cl.Node(0, rot).Name()
			// Fault 2: the leader turns gray — alive, slow on every request.
			slow := cl.LeaderOf(0)
			oldAddr := slow.Addr()
			slow.Server().SetServeDelay(cfg.SlowLeader)
			slowedAt := time.Now()
			logger.Info("sim: disk chaos injected",
				"rot", out.Rot, "slow-leader", slow.Name(), "round", round)
			if !cl.WaitFailover(0, oldAddr, 15*time.Second) {
				return nil, errors.New("sim: gray leader was never demoted")
			}
			out.Demoted = slow.Name()
			out.DemotionTime = time.Since(slowedAt)
			if !slow.Server().IsFollower() {
				return nil, errors.New("sim: demoted leader is not a follower")
			}
			// A production client polls the shard map on a timer; here the
			// conditional poll stands in for it, so the rounds below
			// measure hedged-read protection against the slow replica, not
			// the one-time stale-map redirect.
			if _, err := sc.Map(); err != nil {
				return nil, fmt.Errorf("sim: refreshing shard map: %w", err)
			}
		}
		roundStart := time.Now()
		batch := tasks[round*cfg.TasksPerRound : (round+1)*cfg.TasksPerRound]
		n, err := sc.BatchReportTasks(batch)
		if err != nil {
			return nil, fmt.Errorf("sim: round %d batch upload: %w", round, err)
		}
		out.Tasks += n
		readStart := time.Now()
		if _, err := sc.FetchMergedPrior(cfg.Dim); err != nil && !errors.Is(err, edge.ErrNoPrior) {
			return nil, fmt.Errorf("sim: round %d merged fetch: %w", round, err)
		}
		reads = append(reads, time.Since(readStart))
		rounds = append(rounds, time.Since(roundStart))
		logger.Debug("sim: round done", "round", round,
			"took", rounds[len(rounds)-1], "read", reads[len(reads)-1])
		if cfg.Chaos && round == cfg.ChaosRound {
			// Real bit rot is an event, not a permanent property of the
			// medium: the armed window covers one round of replicated
			// writes, then the scrubber's repairs are allowed to stick.
			// Leaving the FaultFS armed would re-flip every repair splice,
			// saturating the rotted store's lock with scrub passes and
			// degrading the whole shard — a different (and less
			// interesting) failure than the one under test.
			faultFS.Disarm()
		}
	}
	faultFS.Disarm()
	out.RotFlips = faultFS.Injected("bit-flip")
	out.Elapsed = time.Since(start)

	sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
	out.ReadMax = reads[len(reads)-1]
	out.ReadP99 = reads[(len(reads)*99+99)/100-1]
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	out.RoundMax = rounds[len(rounds)-1]
	out.RoundP99 = rounds[(len(rounds)*99+99)/100-1]

	if !cl.Quiesce(15 * time.Second) {
		return nil, errors.New("sim: cluster did not quiesce")
	}

	// Byte-identity of the repaired log: the rotted replica's tasks.log
	// must converge to exactly its leader's bytes — verbatim frames
	// re-pulled over the wire, spliced at the quarantine boundary.
	leaderIdx := -1
	leaderAddr := cl.Coordinator().Map().Shards[0].Leader
	for r := 0; r < cfg.Replicas; r++ {
		if n := cl.Node(0, r); n != nil && n.Addr() == leaderAddr {
			leaderIdx = r
		}
	}
	if leaderIdx < 0 {
		return nil, errors.New("sim: no live leader after the run")
	}
	leaderLog := filepath.Join(cfg.Dir, "s0", fmt.Sprintf("r%d", leaderIdx), "tasks.log")
	rotLog := filepath.Join(cfg.Dir, "s0", fmt.Sprintf("r%d", rot), "tasks.log")
	want, err := os.ReadFile(leaderLog)
	if err != nil {
		return nil, fmt.Errorf("sim: reading leader log: %w", err)
	}
	repairStart := time.Now()
	deadline := repairStart.Add(15 * time.Second)
	for {
		got, err := os.ReadFile(rotLog)
		if err == nil && bytes.Equal(got, want) {
			out.Repaired = true
			out.RepairTime = time.Since(repairStart)
			break
		}
		if time.Now().After(deadline) {
			if cfg.Chaos {
				return nil, fmt.Errorf("sim: rotted log never converged to the leader's bytes (%d vs %d bytes)", len(got), len(want))
			}
			return nil, errors.New("sim: control-run follower log differs from leader")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The read path a rebooted edge sees: fresh client, cold caches.
	fresh := cluster.DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		Seed: cfg.Seed + 5, Logger: telemetry.Discard(),
	})
	defer fresh.Close()
	merged, err := fresh.FetchMergedPrior(cfg.Dim)
	if err != nil {
		return nil, fmt.Errorf("sim: final merged prior: %w", err)
	}
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("sim: final merged prior invalid: %w", err)
	}
	out.MergedComponents = len(merged.Components)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(merged); err != nil {
		return nil, err
	}
	out.PriorBytes = buf.Bytes()
	out.FinalVersion = cl.LeaderOf(0).Server().Store().Version()

	out.ScrubRepairedFrames = telemetry.StoreScrubRepaired.Value() - base.scrub
	out.FaultsInjected = telemetry.StoreFaultInjected("bit-flip").Value() - base.faults
	out.Demotions = telemetry.ClusterDemotions.Value() - base.demote
	out.HedgeFired = telemetry.ClusterHedgeFired.Value() - base.fired
	out.HedgeWon = telemetry.ClusterHedgeWon.Value() - base.won
	out.HedgeCancelled = telemetry.ClusterHedgeCancelled.Value() - base.cancelled
	return out, nil
}
