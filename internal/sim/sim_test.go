package sim

import (
	"math/rand"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/telemetry"
)

func simConfig(t *testing.T, seed int64) Config {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	family, err := data.NewTaskFamily(rng, 6, 2, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Family: family,
		Model:  model.Logistic{Dim: 6},
		Set:    dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
		Alpha:  1,
		Flip:   0.05,
		Seed:   seed,
	}
}

// fleet builds a pioneer/late-arrival fleet: early data-rich reporters,
// then data-poor consumers.
func fleet(pioneers, late int, link edge.LinkProfile) []DeviceSpec {
	var specs []DeviceSpec
	for i := 0; i < pioneers; i++ {
		specs = append(specs, DeviceSpec{
			ID: i, ArriveAt: time.Duration(i) * time.Second,
			Link: link, Samples: 200, Report: true, Cluster: i % 2,
		})
	}
	for i := 0; i < late; i++ {
		specs = append(specs, DeviceSpec{
			ID: pioneers + i, ArriveAt: time.Duration(100+i) * time.Second,
			Link: link, Samples: 12, Report: false, Cluster: i % 2,
		})
	}
	return specs
}

func TestSimPioneersBootstrapLateDevices(t *testing.T) {
	cfg := simConfig(t, 210)
	res, err := Run(cfg, fleet(4, 4, edge.LinkWiFi))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 8 {
		t.Fatalf("got %d device results", len(res.Devices))
	}
	// The first pioneer sees a cold cloud; later pioneers may already see
	// earlier reports (they arrive seconds apart); late devices must see
	// a warm prior.
	var pioneerAcc, lateAcc float64
	for _, d := range res.Devices {
		if d.ID < 4 {
			if d.ID == 0 && d.FetchedVersion != 0 {
				t.Errorf("pioneer 0 fetched version %d, want 0 (cold cloud)", d.FetchedVersion)
			}
			pioneerAcc += d.Accuracy / 4
		} else {
			if d.FetchedVersion == 0 {
				t.Errorf("late device %d fetched a cold cloud", d.ID)
			}
			if d.PriorComponents == 0 {
				t.Errorf("late device %d got an empty prior", d.ID)
			}
			lateAcc += d.Accuracy / 4
		}
	}
	if lateAcc < 0.75 {
		t.Errorf("late devices (12 samples + prior) mean accuracy %v", lateAcc)
	}
	if res.FinalVersion != 4 || res.Rebuilds != 4 {
		t.Errorf("cloud version %d rebuilds %d, want 4/4", res.FinalVersion, res.Rebuilds)
	}
	if res.BytesUp == 0 || res.BytesDown == 0 {
		t.Errorf("traffic accounting empty: %+v", res)
	}
}

func TestSimBatchedRebuildPolicy(t *testing.T) {
	cfg := simConfig(t, 211)
	cfg.RebuildEvery = 4
	res, err := Run(cfg, fleet(4, 2, edge.LinkWiFi))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilds != 1 {
		t.Errorf("batched policy rebuilt %d times, want 1", res.Rebuilds)
	}
}

func TestSimLinkAffectsTimeToModel(t *testing.T) {
	cfgA := simConfig(t, 212)
	wifi, err := Run(cfgA, fleet(2, 2, edge.LinkWiFi))
	if err != nil {
		t.Fatal(err)
	}
	cfgB := simConfig(t, 212)
	g3, err := Run(cfgB, fleet(2, 2, edge.Link3G))
	if err != nil {
		t.Fatal(err)
	}
	// Compare the late devices (they pay a real prior downlink).
	var wifiTTM, g3TTM time.Duration
	for i, d := range wifi.Devices {
		if d.ID >= 2 {
			wifiTTM += d.TimeToModel
			g3TTM += g3.Devices[i].TimeToModel
		}
	}
	if g3TTM <= wifiTTM {
		t.Errorf("3G time-to-model %v should exceed WiFi %v", g3TTM, wifiTTM)
	}
}

func TestSimOverlappingLifecycles(t *testing.T) {
	// A device that arrives while a pioneer is still training must see
	// the pre-report prior (version 0 here): event ordering correctness.
	cfg := simConfig(t, 213)
	cfg.ComputeRate = 1e3 // training takes a long simulated time
	specs := []DeviceSpec{
		{ID: 0, ArriveAt: 0, Link: edge.LinkWiFi, Samples: 100, Report: true},
		{ID: 1, ArriveAt: time.Second, Link: edge.LinkWiFi, Samples: 10},
	}
	res, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Devices[1].FetchedVersion != 0 {
		t.Errorf("device 1 fetched version %d while pioneer still training", res.Devices[1].FetchedVersion)
	}
}

func TestSimValidation(t *testing.T) {
	cfg := simConfig(t, 214)
	if _, err := Run(Config{}, fleet(1, 0, edge.LinkWiFi)); err == nil {
		t.Error("missing family accepted")
	}
	if _, err := Run(cfg, nil); err == nil {
		t.Error("no devices accepted")
	}
	if _, err := Run(cfg, []DeviceSpec{{ID: 0, Samples: 0, Link: edge.LinkWiFi}}); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestSimDeterministic(t *testing.T) {
	r1, err := Run(simConfig(t, 215), fleet(2, 2, edge.Link4G))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(simConfig(t, 215), fleet(2, 2, edge.Link4G))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Devices {
		if r1.Devices[i].Accuracy != r2.Devices[i].Accuracy ||
			r1.Devices[i].TimeToModel != r2.Devices[i].TimeToModel {
			t.Fatalf("nondeterministic at device %d", i)
		}
	}
}

// lossyFleet marks every device's link with the given loss rate.
func lossyFleet(pioneers, late int, link edge.LinkProfile, loss float64) []DeviceSpec {
	specs := fleet(pioneers, late, link)
	for i := range specs {
		specs[i].LossRate = loss
	}
	return specs
}

func TestSimLossyLinkDegradesAndRetries(t *testing.T) {
	cfg := simConfig(t, 216)
	cfg.Retry = edge.RetryPolicy{MaxAttempts: 3, Base: 50 * time.Millisecond, Multiplier: 2}

	// Total loss: every fetch exhausts its retries, every device trains
	// prior-free, every report is lost.
	res, err := Run(cfg, lossyFleet(2, 2, edge.Link3G, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 4 || res.ReportsLost != 2 {
		t.Fatalf("total loss: degraded=%d reportsLost=%d", res.Degraded, res.ReportsLost)
	}
	if res.FinalVersion != 0 || res.BytesDown != 0 || res.BytesUp != 0 {
		t.Errorf("traffic crossed a fully lossy link: %+v", res)
	}
	for _, d := range res.Devices {
		if !d.Degraded || d.FetchedVersion != 0 {
			t.Errorf("device %d not degraded under total loss: %+v", d.ID, d)
		}
		if d.Retries == 0 {
			t.Errorf("device %d recorded no retries under total loss", d.ID)
		}
	}

	// Moderate loss: the run completes, retries appear, and waste makes
	// time-to-model no better than the lossless fleet's.
	lossless, err := Run(simConfig(t, 216), fleet(2, 2, edge.Link3G))
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Run(cfg, lossyFleet(2, 2, edge.Link3G, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	for _, d := range lossy.Devices {
		retries += d.Retries
	}
	if retries == 0 {
		t.Error("40% loss produced zero retries across the fleet")
	}
	var ttmLossless, ttmLossy time.Duration
	for i := range lossless.Devices {
		ttmLossless += lossless.Devices[i].TimeToModel
		ttmLossy += lossy.Devices[i].TimeToModel
	}
	if ttmLossy < ttmLossless {
		t.Errorf("lossy fleet was faster: %v < %v", ttmLossy, ttmLossless)
	}
}

func TestSimLossyDeterministic(t *testing.T) {
	mk := func() (*Result, error) {
		cfg := simConfig(t, 217)
		cfg.Retry = edge.RetryPolicy{MaxAttempts: 3, Base: 20 * time.Millisecond, Jitter: 0.3}
		return Run(cfg, lossyFleet(2, 2, edge.Link4G, 0.3))
	}
	r1, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Devices {
		a, b := r1.Devices[i], r2.Devices[i]
		if a.Retries != b.Retries || a.Degraded != b.Degraded || a.TimeToModel != b.TimeToModel {
			t.Fatalf("lossy run nondeterministic at device %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestSimTelemetryMirrorsResult asserts that one simulation run adds
// exactly its aggregate Result to the process-wide registry — the
// simulator and a live fleet share the same observability surface.
func TestSimTelemetryMirrorsResult(t *testing.T) {
	cfg := simConfig(t, 216)
	cfg.Retry = edge.RetryPolicy{MaxAttempts: 3, Base: 50 * time.Millisecond, Multiplier: 2}

	before := telemetry.Snapshot()
	res, err := Run(cfg, lossyFleet(2, 2, edge.Link3G, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	after := telemetry.Snapshot()

	retries := 0
	for _, d := range res.Devices {
		retries += d.Retries
	}
	for _, tc := range []struct {
		name string
		want int
	}{
		{"drdp_sim_devices_total", len(res.Devices)},
		{"drdp_sim_degraded_total", res.Degraded},
		{"drdp_sim_reports_lost_total", res.ReportsLost},
		{"drdp_sim_retries_total", retries},
		{"drdp_sim_prior_rebuilds_total", res.Rebuilds},
		{"drdp_sim_down_bytes_total", res.BytesDown},
		{"drdp_sim_up_bytes_total", res.BytesUp},
	} {
		if got := after.CounterDelta(before, tc.name); got != float64(tc.want) {
			t.Errorf("%s delta = %g, want %d (Result)", tc.name, got, tc.want)
		}
	}
	// Real training ran inside the simulation, so the core instruments
	// must have moved too.
	if got := after.CounterDelta(before, "drdp_core_fits_total"); got != float64(len(res.Devices)) {
		t.Errorf("core fits delta = %g, want %d", got, len(res.Devices))
	}
}

// TestSimCloudRestart exercises the outage/recovery scenario: the cloud
// dies mid-run, refreshing devices fall back to their held priors,
// devices arriving during the outage train prior-free, and after the
// cloud recovers (durable state intact, delta history lost) the fleet
// resynchronizes — in full right after the restart, by delta once the
// history refills.
func TestSimCloudRestart(t *testing.T) {
	cfg := simConfig(t, 321)
	cfg.OutageStart = 60 * time.Second
	cfg.OutageEnd = 120 * time.Second

	var specs []DeviceSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, DeviceSpec{
			ID: i, ArriveAt: time.Duration(i) * time.Second,
			Link: edge.LinkWiFi, Samples: 200, Report: true, Cluster: i % 2,
			RefreshEvery: 20 * time.Second, Refreshes: 8,
		})
	}
	// Arrives while the cloud is down: must degrade, then resync later.
	specs = append(specs, DeviceSpec{
		ID: 4, ArriveAt: 70 * time.Second,
		Link: edge.LinkWiFi, Samples: 12, Cluster: 0,
		RefreshEvery: 20 * time.Second, Refreshes: 5,
	})
	// Arrives after recovery: reports so the post-restart history refills
	// and later refreshes can go by delta again.
	specs = append(specs, DeviceSpec{
		ID: 5, ArriveAt: 130 * time.Second,
		Link: edge.LinkWiFi, Samples: 200, Report: true, Cluster: 1,
	})

	res, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("totals: refreshes=%d delta=%d full=%d cached=%d saved=%dB finalVersion=%d degraded=%d",
		res.Refreshes, res.DeltaRefreshes, res.FullRefreshes, res.CachedFallbacks,
		res.DeltaBytesSaved, res.FinalVersion, res.Degraded)

	// During the outage every refresh must fall back to the held prior.
	if res.CachedFallbacks == 0 {
		t.Error("no cached fallbacks during a 60s outage")
	}
	// After recovery the delta history is gone, so resyncs go full first;
	// once post-restart reports refill it, at least one refresh must have
	// gone by delta and saved bytes.
	if res.FullRefreshes == 0 {
		t.Error("no full resyncs after the restart")
	}
	if res.DeltaRefreshes == 0 || res.DeltaBytesSaved <= 0 {
		t.Errorf("delta refreshes=%d saved=%dB; delta sync never engaged",
			res.DeltaRefreshes, res.DeltaBytesSaved)
	}
	for _, d := range res.Devices {
		switch {
		case d.ID <= 3:
			// Pioneers refresh through the outage: some rounds fell back,
			// and the final rounds resynchronized to the current prior.
			if d.Refreshes != 8 {
				t.Errorf("pioneer %d ran %d refreshes, want 8", d.ID, d.Refreshes)
			}
			if d.CachedFallbacks == 0 {
				t.Errorf("pioneer %d never fell back during the outage", d.ID)
			}
			if d.FinalVersion != res.FinalVersion {
				t.Errorf("pioneer %d ended at version %d, fleet is at %d",
					d.ID, d.FinalVersion, res.FinalVersion)
			}
		case d.ID == 4:
			// Arrived mid-outage: trained prior-free, resynced afterwards.
			if !d.Degraded || d.FetchedVersion != 0 {
				t.Errorf("mid-outage device: degraded=%v fetched=%d, want prior-free arrival",
					d.Degraded, d.FetchedVersion)
			}
			if d.FinalVersion != res.FinalVersion {
				t.Errorf("mid-outage device ended at version %d, fleet is at %d",
					d.FinalVersion, res.FinalVersion)
			}
		case d.ID == 5:
			// Arrived after recovery: a normal warm fetch off the durable
			// state, no degradation.
			if d.Degraded || d.FetchedVersion == 0 {
				t.Errorf("post-recovery device: degraded=%v fetched=%d, want warm fetch",
					d.Degraded, d.FetchedVersion)
			}
		}
	}
}
