package sim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"time"

	"github.com/drdp/drdp/internal/cluster"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

// ClusterConfig sizes a replicated-shard-tier scenario. Unlike the
// discrete-event simulator in this package, the cluster scenario runs
// the REAL tier — cluster.Start launches every node in-process with
// real listeners, real log streaming, and a real coordinator — and the
// fault injector kills an actual leader mid-round. Only the workload is
// synthetic.
type ClusterConfig struct {
	// Shards × Replicas sizes the tier (defaults 3 × 2).
	Shards   int
	Replicas int
	// Rounds of TasksPerRound uploads each (defaults 6 × 4); every round
	// ends with a merged-prior fetch, the read edges do after training.
	Rounds        int
	TasksPerRound int
	// Dim is the task posterior dimension (default 4).
	Dim int
	// KillShard/KillRound inject the fault: before round KillRound the
	// current leader of KillShard is killed abruptly. KillShard < 0
	// disables injection (the control run).
	KillShard int
	KillRound int
	// Alpha is the DP concentration shared by every shard.
	Alpha float64
	// SyncReplicas gates leader acks on follower durability (default 1
	// when Replicas > 1).
	SyncReplicas int
	// Dir is the base store directory ("" = memory-only).
	Dir string
	// Audit enables round-audit tracing: head sampling on trace.Default
	// is forced to 1 for the run (restored after), every round's uploads
	// and merged fetch run under one "cluster-round" root span, and the
	// flight-recorder snapshot is captured into the result — including
	// the coordinator's pinned "failover" trace when a kill is injected.
	Audit bool
	// Seed drives the synthetic workload and all cluster jitter.
	Seed   int64
	Logger *slog.Logger
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Rounds <= 0 {
		c.Rounds = 6
	}
	if c.TasksPerRound <= 0 {
		c.TasksPerRound = 4
	}
	if c.Dim <= 0 {
		c.Dim = 4
	}
	if c.Alpha <= 0 {
		c.Alpha = 1
	}
	if c.SyncReplicas == 0 && c.Replicas > 1 {
		c.SyncReplicas = 1
	}
	return c
}

// ClusterResult reports one cluster scenario run.
type ClusterResult struct {
	Shards   int
	Replicas int
	Tasks    int // uploads delivered (all of them — acked uploads survive the kill)
	Rounds   int

	Elapsed      time.Duration
	RoundsPerSec float64

	Killed       string        // name of the killed leader ("" = control run)
	FailoverTime time.Duration // kill → new leader in the shard map
	RecoveryTime time.Duration // kill → merged prior served again on the read path

	MapVersion       uint64   // final shard-map version (bumps count promotions)
	FinalVersions    []uint64 // per-shard leader store versions at the end
	MergedComponents int
	PriorBytes       []byte // gob of the final merged prior (byte-identity checks)

	// Codecs tallies the upload client's negotiated wire codecs at the end
	// of the run (codec name → connection count), so results state whether
	// the rounds ran binary or fell back to gob.
	Codecs map[string]int

	// Traces is the flight-recorder snapshot at the end of an Audit run
	// (nil otherwise).
	Traces *trace.Snapshot
}

// RunCluster executes one replicated-shard-tier scenario: feed Rounds
// rounds of deterministic task posteriors through a sharded client,
// optionally kill a leader mid-round, quiesce, and fetch the merged
// prior with a FRESH client (cold map, cold caches — a rebooted edge).
// Two runs with the same config and seed, one with the kill and one
// without, must return byte-identical PriorBytes: that is the tier's
// recovery acceptance criterion.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	cfg = cfg.withDefaults()
	if cfg.KillShard >= cfg.Shards {
		return nil, fmt.Errorf("sim: kill shard %d out of range (%d shards)", cfg.KillShard, cfg.Shards)
	}
	if cfg.KillShard >= 0 && cfg.Replicas < 2 {
		return nil, errors.New("sim: killing a leader needs at least 2 replicas")
	}
	logger := telemetry.OrDefault(cfg.Logger)
	if cfg.Audit {
		prevRate := trace.Default.SampleRate()
		trace.Default.SetSampleRate(1)
		defer trace.Default.SetSampleRate(prevRate)
	}
	cl, err := cluster.Start(cluster.Config{
		Shards:        cfg.Shards,
		Replicas:      cfg.Replicas,
		Dir:           cfg.Dir,
		Build:         dpprior.BuildOptions{Alpha: cfg.Alpha, Seed: cfg.Seed + 1},
		SyncReplicas:  cfg.SyncReplicas,
		AckTimeout:    500 * time.Millisecond,
		PullInterval:  2 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 2,
		Seed:          cfg.Seed,
		Logger:        cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// The workload: Rounds×TasksPerRound posteriors, deterministic in the
	// seed so the control and kill runs feed identical bytes.
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	total := cfg.Rounds * cfg.TasksPerRound
	tasks := make([]dpprior.TaskPosterior, total)
	for i := range tasks {
		mu := make(mat.Vec, cfg.Dim)
		for j := range mu {
			mu[j] = rng.NormFloat64()
		}
		sigma := mat.Eye(cfg.Dim)
		sigma.ScaleBy(0.1)
		tasks[i] = dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
	}

	sc := cluster.DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		Seed: cfg.Seed + 3, Logger: telemetry.Discard(),
	})
	defer sc.Close()

	out := &ClusterResult{Shards: cfg.Shards, Replicas: cfg.Replicas, Rounds: cfg.Rounds}
	start := time.Now()
	for round := 0; round < cfg.Rounds; round++ {
		if cfg.KillShard >= 0 && round == cfg.KillRound {
			old := cl.Coordinator().Map().Shards[cfg.KillShard].Leader
			killedAt := time.Now()
			name, err := cl.KillLeader(cfg.KillShard)
			if err != nil {
				return nil, fmt.Errorf("sim: fault injection: %w", err)
			}
			out.Killed = name
			logger.Info("sim: killed shard leader mid-round", "shard", cfg.KillShard, "node", name, "round", round)
			if !cl.WaitFailover(cfg.KillShard, old, 10*time.Second) {
				return nil, fmt.Errorf("sim: shard %d never failed over", cfg.KillShard)
			}
			out.FailoverTime = time.Since(killedAt)
			// Recovery on the read path: a cold client can assemble the
			// merged prior again (warm shards only — the killed shard may
			// still be cold this early).
			probe := cluster.DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
				Seed: cfg.Seed + 4, Logger: telemetry.Discard(),
			})
			for {
				if _, err := probe.FetchMergedPrior(cfg.Dim); err == nil || errors.Is(err, edge.ErrNoPrior) {
					break
				}
				if time.Since(killedAt) > 10*time.Second {
					probe.Close()
					return nil, errors.New("sim: merged prior unreachable after failover")
				}
				time.Sleep(2 * time.Millisecond)
			}
			probe.Close()
			out.RecoveryTime = time.Since(killedAt)
		}
		// In an Audit run, the whole round — every upload and the merged
		// fetch — hangs off one root span, so /tracez shows per-round trees.
		rspan := trace.Default.StartTrace("cluster-round", trace.Int("round", int64(round)))
		sc.SetTraceParent(rspan)
		roundErr := func() error {
			// One batched upload per round: the sharded client groups the
			// tasks by shard (preserving order, so the leaders' append order
			// — and hence PriorBytes — matches the sequential path) and
			// ships each group as a single BatchAddTask frame.
			batch := tasks[round*cfg.TasksPerRound : (round+1)*cfg.TasksPerRound]
			n, err := sc.BatchReportTasks(batch)
			if err != nil {
				return fmt.Errorf("sim: round %d batch upload: %w", round, err)
			}
			out.Tasks += n
			// The round's read: every edge refreshes its merged prior.
			if _, err := sc.FetchMergedPrior(cfg.Dim); err != nil && !errors.Is(err, edge.ErrNoPrior) {
				return fmt.Errorf("sim: round %d merged fetch: %w", round, err)
			}
			return nil
		}()
		sc.SetTraceParent(nil)
		rspan.EndErr(roundErr)
		if roundErr != nil {
			return nil, roundErr
		}
	}
	out.Elapsed = time.Since(start)
	if s := out.Elapsed.Seconds(); s > 0 {
		out.RoundsPerSec = float64(cfg.Rounds) / s
	}
	out.Codecs = sc.Codecs()

	if !cl.Quiesce(15 * time.Second) {
		return nil, errors.New("sim: cluster did not quiesce")
	}
	fresh := cluster.DialSharded(cl.CoordinatorAddr(), edge.ResilientOptions{
		Seed: cfg.Seed + 5, Logger: telemetry.Discard(),
	})
	defer fresh.Close()
	merged, err := fresh.FetchMergedPrior(cfg.Dim)
	if err != nil {
		return nil, fmt.Errorf("sim: final merged prior: %w", err)
	}
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("sim: final merged prior invalid: %w", err)
	}
	out.MergedComponents = len(merged.Components)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(merged); err != nil {
		return nil, err
	}
	out.PriorBytes = buf.Bytes()
	out.MapVersion = cl.Coordinator().Map().Version
	if cfg.Audit {
		snap := trace.Default.Snapshot()
		out.Traces = &snap
	}
	for s := 0; s < cfg.Shards; s++ {
		if n := cl.LeaderOf(s); n != nil {
			out.FinalVersions = append(out.FinalVersions, n.Server().Store().Version())
		} else {
			out.FinalVersions = append(out.FinalVersions, 0)
		}
	}
	return out, nil
}
