package sim

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/drdp/drdp/internal/telemetry"
)

// TestRunRegionsPartitionChaos is the hierarchical tier's acceptance
// test: one control run and one partition run (same config, same
// seed), asserting
//
//  1. the partition walks region 1's devices down the full degradation
//     ladder in order — fresh → regional → cached → local-only,
//  2. after the partition heals, the final round is fresh again,
//  3. the final cloud prior is byte-identical across the pair (a
//     healed partition is invisible to the cloud), and
//  4. summarized upward sync cut cloud upload bytes at least 2×.
func TestRunRegionsPartitionChaos(t *testing.T) {
	cfg := RegionsConfig{Seed: 31, Logger: telemetry.Discard()}

	control, err := RunRegions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Partition = true
	cfg.Gossip = true
	faulted, err := RunRegions(cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantLadder := []string{"fresh-prior", "regional-prior", "cached-prior", "local-only"}
	if !reflect.DeepEqual(faulted.LadderOrder, wantLadder) {
		t.Errorf("partition ladder = %v, want %v (counts %v)",
			faulted.LadderOrder, wantLadder, faulted.LadderCounts)
	}
	if got := control.LadderOrder; len(got) != 1 || got[0] != "fresh-prior" {
		t.Errorf("control run degraded: ladder %v, counts %v", got, control.LadderCounts)
	}
	if !faulted.Recovered {
		t.Errorf("region-1 devices not back on fresh priors after heal (counts %v)", faulted.LadderCounts)
	}

	if len(control.PriorBytes) == 0 {
		t.Fatal("control run produced no cloud prior")
	}
	if !bytes.Equal(control.PriorBytes, faulted.PriorBytes) {
		t.Errorf("cloud prior DIVERGED across the partition: control %d bytes, faulted %d bytes",
			len(control.PriorBytes), len(faulted.PriorBytes))
	}

	for name, r := range map[string]*RegionsResult{"control": control, "faulted": faulted} {
		if r.Reduction < 2 {
			t.Errorf("%s run upload reduction %.2fx (raw %d, up %d), want >= 2x",
				name, r.Reduction, r.RawBytes, r.UpBytes)
		}
	}
	if faulted.GossipInjected == 0 {
		t.Error("gossip absorbed nothing during the partition")
	}
	if faulted.Accuracy < 0.5 || control.Accuracy < 0.5 {
		t.Errorf("accuracy collapsed: control %.3f, faulted %.3f", control.Accuracy, faulted.Accuracy)
	}
}

// TestRunRegionsDeterministic: the scenario is a pure function of its
// config — two identical partition runs agree on everything the
// acceptance checks read.
func TestRunRegionsDeterministic(t *testing.T) {
	cfg := RegionsConfig{Seed: 33, Partition: true, Logger: telemetry.Discard()}
	a, err := RunRegions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRegions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.PriorBytes, b.PriorBytes) {
		t.Error("cloud prior differs across identical runs")
	}
	if !reflect.DeepEqual(a.LadderCounts, b.LadderCounts) {
		t.Errorf("ladder counts differ: %v vs %v", a.LadderCounts, b.LadderCounts)
	}
	if a.RawBytes != b.RawBytes || a.UpBytes != b.UpBytes {
		t.Errorf("byte accounting differs: %d/%d vs %d/%d", a.RawBytes, a.UpBytes, b.RawBytes, b.UpBytes)
	}
}

// TestRunRegionsRejectsBadSchedule: phase rounds must be ascending and
// inside the run.
func TestRunRegionsRejectsBadSchedule(t *testing.T) {
	cfg := RegionsConfig{Seed: 1, Rounds: 4, PartitionStart: 3, RegionCutStart: 2, PartitionEnd: 5}
	if _, err := RunRegions(cfg); err == nil {
		t.Error("out-of-order phase schedule accepted")
	}
}
