package sim

import (
	"testing"

	"github.com/drdp/drdp/internal/trace"
)

// TestClusterAuditTraces runs the failover scenario in audit mode and
// checks the captured flight recorder: the promotion is retained as a
// pinned failover trace, and the rounds after the kill trace through the
// shard-map redirect onto the promoted leader.
func TestClusterAuditTraces(t *testing.T) {
	res, err := RunCluster(ClusterConfig{
		Shards: 2, Replicas: 2, Rounds: 4, TasksPerRound: 3,
		KillShard: 0, KillRound: 2, Seed: 1234, Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces == nil {
		t.Fatal("audit run captured no flight-recorder snapshot")
	}
	if res.Killed == "" {
		t.Fatal("kill was not injected")
	}

	// The promotion survives as a pinned failover trace naming the new
	// leader.
	var promoted string
	for _, td := range res.Traces.Notable {
		if td.Name != "failover" || !td.Pinned {
			continue
		}
		root := td.Root()
		if !root.HasEvent("promoted") {
			t.Fatalf("failover trace lacks a promoted event:\n%s", td.Tree())
		}
		for _, ev := range root.Events {
			if ev.Name != "promoted" {
				continue
			}
			for _, a := range ev.Attrs {
				if a.Key == "node" {
					promoted = a.Value
				}
			}
		}
	}
	if promoted == "" {
		t.Fatal("no pinned failover trace with a promoted event in the notable ring")
	}

	// Group every retained fragment by trace and merge, so each round is
	// one cross-node tree.
	byTrace := make(map[string][]*trace.TraceDump)
	for _, td := range append(append([]*trace.TraceDump(nil), res.Traces.Recent...), res.Traces.Notable...) {
		byTrace[td.Trace] = append(byTrace[td.Trace], td)
	}
	sawRedirect, sawPromotedServe := false, false
	for _, frags := range byTrace {
		td := trace.MergeDumps(frags)
		if td.Name != "cluster-round" {
			continue
		}
		for i := range td.Spans {
			sd := &td.Spans[i]
			if sd.HasEvent("redirect") {
				sawRedirect = true
			}
			// Rounds upload through BatchReportTasks, so the promoted
			// leader's successful serve span carries the batch kind.
			if sd.Name == "serve batch-add-task" && sd.Attr("node") == promoted && sd.Err == "" {
				sawPromotedServe = true
			}
		}
	}
	if !sawRedirect {
		t.Error("no round trace recorded the shard-map redirect after the kill")
	}
	if !sawPromotedServe {
		t.Errorf("no round trace holds a successful upload served by the promoted leader %s", promoted)
	}
}
