package sim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/region"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/wire"
)

// RegionsConfig sizes a hierarchical edge → region → cloud scenario.
// Like the cluster scenario it runs the REAL tier in-process: real
// regional aggregators (store + admission + rebuild + sync), real
// listeners, real protocol both hops. The fault is a regional cloud
// partition: region 1's uplink and its devices' direct cloud links go
// dark mid-run, then — deeper into the outage — the devices lose their
// region too, walking the full degradation ladder
// fresh → regional → cached → local-only.
//
// The phase schedule (PartitionStart/RegionCutStart/PartitionEnd, and
// the derived upload-skip and flush-barrier rounds) applies to the
// control run too — Partition only decides whether the links actually
// cut. That keeps the cloud's ingest stream identical across the pair,
// which is what makes the byte-identity acceptance check meaningful.
type RegionsConfig struct {
	// Regions × DevicesPerRegion sizes the tier (defaults 2 × 3).
	Regions          int
	DevicesPerRegion int
	// Rounds of the synchronous round loop (default 9).
	Rounds int
	// UploadsPerRound is how many synthetic task posteriors land on each
	// region per round (default 6) — the raw stream the regions
	// summarize upward.
	UploadsPerRound int
	// Dim is the parameter dimensionality (default 4).
	Dim int
	// Samples is the per-device training set size (default 30).
	Samples int
	// Alpha is the DP concentration shared by cloud and regions.
	Alpha float64
	// SummaryComponents caps each upward flush's summary count
	// (default 4); the upload-byte reduction is roughly window/summary.
	SummaryComponents int
	// Partition injects the fault; false runs the control with the same
	// schedule but healthy links.
	Partition bool
	// PartitionStart..PartitionEnd is the cloud-partition round window
	// for region 1 (defaults 2..7, i.e. rounds 2-6 dark). RegionCutStart
	// (default 4) is the round its devices lose the region too.
	PartitionStart int
	PartitionEnd   int
	RegionCutStart int
	// Gossip lets region 1 exchange component deltas with region 0
	// while the cloud is unreachable (partition runs only).
	Gossip bool
	// Seed drives the synthetic workload, training data, and every
	// summarization seed.
	Seed   int64
	Logger *slog.Logger
}

func (c RegionsConfig) withDefaults() RegionsConfig {
	if c.Regions <= 0 {
		c.Regions = 2
	}
	if c.DevicesPerRegion <= 0 {
		c.DevicesPerRegion = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 9
	}
	if c.UploadsPerRound <= 0 {
		c.UploadsPerRound = 6
	}
	if c.Dim <= 0 {
		c.Dim = 4
	}
	if c.Samples <= 0 {
		c.Samples = 30
	}
	if c.Alpha <= 0 {
		c.Alpha = 1
	}
	if c.SummaryComponents <= 0 {
		c.SummaryComponents = 4
	}
	if c.PartitionStart <= 0 {
		c.PartitionStart = 2
	}
	if c.PartitionEnd <= 0 {
		c.PartitionEnd = 7
	}
	if c.RegionCutStart <= 0 {
		c.RegionCutStart = 4
	}
	return c
}

// RegionsResult reports one hierarchical scenario run.
type RegionsResult struct {
	Rounds  int
	Devices int

	// LadderOrder is the order degradation levels were FIRST observed
	// across region 1's device rounds — the acceptance check is that a
	// partition walks it strictly downward:
	// fresh-prior, regional-prior, cached-prior, local-only.
	LadderOrder []string
	// LadderCounts tallies device rounds per degradation level
	// (region 1 only).
	LadderCounts map[string]int
	// Accuracy is the mean test accuracy over every device round.
	Accuracy float64
	// Recovered reports that after the partition healed, every region-1
	// device was back on a fresh cloud prior by the final round.
	Recovered bool

	// RawBytes is what shipping every raw task posterior to the cloud
	// would have cost; UpBytes is what the summarized flushes actually
	// cost; Reduction is their ratio (the Table 18 headline).
	RawBytes  int64
	UpBytes   int64
	Reduction float64
	// GossipInjected counts peer components region 1 absorbed while the
	// cloud was unreachable.
	GossipInjected int

	// PriorBytes is the gob encoding of the final cloud prior; a
	// partition run and its control must match byte for byte.
	PriorBytes        []byte
	FinalCloudVersion uint64
	RegionStats       []region.SyncStats
}

// gatedCloud wraps an edge.Cloud behind a partition gate: while the
// gate is up every call fails like a dead link, deterministically and
// without burning real dial timeouts. This is the sim's link model for
// device-side connections; the region's uplink is gated at the
// net.Conn layer instead so its live mux connection dies realistically
// mid-stream.
type gatedCloud struct {
	cut   *atomic.Bool
	inner edge.Cloud
}

var errPartitioned = errors.New("sim: link partitioned")

func (g gatedCloud) FetchPrior(dim int) (*dpprior.Prior, uint64, error) {
	if g.cut.Load() {
		return nil, 0, errPartitioned
	}
	return g.inner.FetchPrior(dim)
}

func (g gatedCloud) FetchPriorIfNewer(dim int, known uint64) (*dpprior.Prior, uint64, error) {
	if g.cut.Load() {
		return nil, 0, errPartitioned
	}
	return g.inner.FetchPriorIfNewer(dim, known)
}

func (g gatedCloud) FetchPriorDelta(dim int, known uint64, old *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	if g.cut.Load() {
		return nil, 0, errPartitioned
	}
	return g.inner.FetchPriorDelta(dim, known, old)
}

func (g gatedCloud) ReportTask(t dpprior.TaskPosterior) (uint64, error) {
	if g.cut.Load() {
		return 0, errPartitioned
	}
	return g.inner.ReportTask(t)
}

// gatedConn fails a live connection's I/O while the gate is up, so an
// established uplink dies mid-stream the way a real partition kills it
// (poisoning the mux), instead of staying healthy because loopback TCP
// never noticed.
type gatedConn struct {
	net.Conn
	cut *atomic.Bool
}

func (g gatedConn) Read(p []byte) (int, error) {
	if g.cut.Load() {
		return 0, errPartitioned
	}
	return g.Conn.Read(p)
}

func (g gatedConn) Write(p []byte) (int, error) {
	if g.cut.Load() {
		return 0, errPartitioned
	}
	return g.Conn.Write(p)
}

// RunRegions executes one hierarchical scenario: a cloud, Regions
// regional aggregators serving DevicesPerRegion devices each, a
// deterministic per-round upload stream each region summarizes upward
// at fixed flush barriers, and (when Partition is set) a mid-run cloud
// partition of region 1 that deepens into a full regional outage
// before healing. Two runs with the same config — one Partition, one
// control — must return byte-identical PriorBytes.
func RunRegions(cfg RegionsConfig) (*RegionsResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Regions < 2 {
		return nil, errors.New("sim: regions scenario needs at least 2 regions")
	}
	if !(cfg.PartitionStart < cfg.RegionCutStart && cfg.RegionCutStart < cfg.PartitionEnd && cfg.PartitionEnd <= cfg.Rounds) {
		return nil, fmt.Errorf("sim: phase schedule %d/%d/%d must be ascending within %d rounds",
			cfg.PartitionStart, cfg.RegionCutStart, cfg.PartitionEnd, cfg.Rounds)
	}
	logger := telemetry.OrDefault(cfg.Logger)
	// Priors live in model parameter space: logistic weights + bias.
	pdim := model.Logistic{Dim: cfg.Dim}.NumParams()

	// The synthetic upload stream: deterministic in the seed, generated
	// up front in (round, region, k) order so control and partition runs
	// feed the regions identical bytes.
	taskRng := rand.New(rand.NewSource(cfg.Seed + 2))
	uploads := make([][][]dpprior.TaskPosterior, cfg.Rounds)
	for round := range uploads {
		uploads[round] = make([][]dpprior.TaskPosterior, cfg.Regions)
		for r := range uploads[round] {
			batch := make([]dpprior.TaskPosterior, cfg.UploadsPerRound)
			for k := range batch {
				mu := make(mat.Vec, pdim)
				for j := range mu {
					mu[j] = taskRng.NormFloat64()
				}
				sigma := mat.Eye(pdim)
				sigma.ScaleBy(0.1)
				batch[k] = dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
			}
			uploads[round][r] = batch
		}
	}

	// The cloud, pre-warmed so round 0 devices fetch a real prior.
	seedRng := rand.New(rand.NewSource(cfg.Seed + 3))
	seedTasks := make([]dpprior.TaskPosterior, 4)
	for i := range seedTasks {
		mu := make(mat.Vec, pdim)
		for j := range mu {
			mu[j] = seedRng.NormFloat64()
		}
		sigma := mat.Eye(pdim)
		sigma.ScaleBy(0.1)
		seedTasks[i] = dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
	}
	cloud, err := edge.NewCloudServer(seedTasks, dpprior.BuildOptions{Alpha: cfg.Alpha, Seed: cfg.Seed + 1}, logger)
	if err != nil {
		return nil, fmt.Errorf("sim: cloud: %w", err)
	}
	defer cloud.Close()
	cloudAddrCh := make(chan string, 1)
	go cloud.ListenAndServe("127.0.0.1:0", cloudAddrCh)
	cloudAddr := <-cloudAddrCh

	// Partition gates. cloudCut severs region 1 (uplink + its devices'
	// direct cloud links); regionCut additionally severs its devices
	// from the region itself.
	var cloudCut, regionCut atomic.Bool

	regions := make([]*region.Region, cfg.Regions)
	regionAddrs := make([]string, cfg.Regions)
	defer func() {
		for _, r := range regions {
			if r != nil {
				r.Close()
			}
		}
	}()
	for i := 0; i < cfg.Regions; i++ {
		rcfg := region.Config{
			Name:      fmt.Sprintf("region-%d", i),
			CloudAddr: cloudAddr,
			Build: dpprior.BuildOptions{
				Alpha:         cfg.Alpha,
				MaxComponents: cfg.SummaryComponents,
				Seed:          cfg.Seed + 100 + int64(i),
			},
			WireCodec:   wire.PreferAuto,
			DialTimeout: 2 * time.Second,
			Seed:        cfg.Seed + 200 + int64(i),
			Logger:      logger,
		}
		if i == 1 {
			rcfg.Dial = func() (net.Conn, error) {
				if cloudCut.Load() {
					return nil, errPartitioned
				}
				conn, err := net.DialTimeout("tcp", cloudAddr, 2*time.Second)
				if err != nil {
					return nil, err
				}
				return gatedConn{Conn: conn, cut: &cloudCut}, nil
			}
			if cfg.Gossip {
				rcfg.Peers = []string{regionAddrs[0]}
			}
		}
		r, err := region.Start(rcfg, nil)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", rcfg.Name, err)
		}
		regions[i] = r
		addrCh := make(chan string, 1)
		go r.ListenAndServe("127.0.0.1:0", addrCh)
		regionAddrs[i] = <-addrCh
	}

	// Per-region uploader muxes: the device-fleet upload path.
	uploaders := make([]*edge.MuxClient, cfg.Regions)
	for i, addr := range regionAddrs {
		u, err := edge.DialMux(addr, 2*time.Second, wire.PreferAuto)
		if err != nil {
			return nil, fmt.Errorf("sim: uploader for region %d: %w", i, err)
		}
		defer u.Close()
		uploaders[i] = u
	}

	// Devices: real training data from a task family, real DRDP fits.
	// Region 1's last device has a cold cache and FallbackLocal — the
	// device that walks all the way down to local-only.
	dataRng := rand.New(rand.NewSource(cfg.Seed + 4))
	family, err := data.NewTaskFamily(dataRng, cfg.Dim, 2, 4, 0.3)
	if err != nil {
		return nil, err
	}
	m := model.Logistic{Dim: cfg.Dim}
	type simDevice struct {
		dev     *edge.Device
		primary edge.Cloud
		train   *data.Dataset
		test    *data.Dataset
	}
	devices := make([][]simDevice, cfg.Regions)
	for i := 0; i < cfg.Regions; i++ {
		devices[i] = make([]simDevice, cfg.DevicesPerRegion)
		for j := 0; j < cfg.DevicesPerRegion; j++ {
			task := family.SampleTask(dataRng, j%2)
			task.Flip = 0.05
			d := &edge.Device{
				ID:      i*100 + j,
				Model:   m,
				Set:     dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
				EMIters: 3,
			}
			cold := i == 1 && j == cfg.DevicesPerRegion-1
			if !cold {
				cache, err := edge.NewPriorCache("")
				if err != nil {
					return nil, err
				}
				d.Cache = cache
			} else {
				d.FallbackLocal = true
			}
			rc, err := edge.Dial(regionAddrs[i], 2*time.Second)
			if err != nil {
				return nil, fmt.Errorf("sim: device %d region dial: %w", d.ID, err)
			}
			defer rc.Close()
			regionGate := &atomic.Bool{} // region 0 devices never lose their region
			if i == 1 {
				regionGate = &regionCut
			}
			d.Regional = gatedCloud{cut: regionGate, inner: rc}
			cc, err := edge.Dial(cloudAddr, 2*time.Second)
			if err != nil {
				return nil, fmt.Errorf("sim: device %d cloud dial: %w", d.ID, err)
			}
			defer cc.Close()
			cloudGate := &atomic.Bool{}
			if i == 1 {
				cloudGate = &cloudCut
			}
			devices[i][j] = simDevice{
				dev:     d,
				primary: gatedCloud{cut: cloudGate, inner: cc},
				train:   task.Sample(dataRng, cfg.Samples),
				test:    task.Sample(dataRng, 300),
			}
		}
	}

	out := &RegionsResult{
		Rounds:       cfg.Rounds,
		Devices:      cfg.Regions * cfg.DevicesPerRegion,
		LadderCounts: make(map[string]int),
	}
	seen := make(map[string]bool)
	var accSum float64
	var accN int
	var lastRoundFresh bool

	inPartition := func(round int) bool {
		return cfg.Partition && round >= cfg.PartitionStart && round < cfg.PartitionEnd
	}
	// Upload-skip schedule: while region 1's devices can't reach their
	// region, their uploads don't happen — in BOTH runs, so the regions'
	// flush windows stay comparable.
	uploadsSkipped := func(round, r int) bool {
		return r == 1 && round >= cfg.RegionCutStart && round < cfg.PartitionEnd
	}
	// Flush barriers sit strictly outside the partition window: the
	// region tier's sync invariant (DESIGN.md) is that a partition that
	// heals before the next barrier is invisible to the cloud.
	flushRound := func(round int) bool {
		return round == cfg.PartitionStart-1 || round == cfg.Rounds-1
	}

	for round := 0; round < cfg.Rounds; round++ {
		cloudCut.Store(inPartition(round))
		regionCut.Store(cfg.Partition && round >= cfg.RegionCutStart && round < cfg.PartitionEnd)

		roundFresh := true
		for i := range devices {
			for j := range devices[i] {
				sd := &devices[i][j]
				// report=false: training posteriors differ between control
				// and partition runs (degraded rounds train with different
				// priors), so the cloud-bound stream is the deterministic
				// upload schedule below, not the fits.
				res, st, err := sd.dev.RunWithStatus(sd.primary, sd.train.X, sd.train.Y, false)
				if err != nil {
					return nil, fmt.Errorf("sim: round %d device %d: %w", round, sd.dev.ID, err)
				}
				accSum += model.Accuracy(m, res.Params, sd.test.X, sd.test.Y)
				accN++
				if i == 1 {
					lvl := st.Degradation.String()
					out.LadderCounts[lvl]++
					if !seen[lvl] {
						seen[lvl] = true
						out.LadderOrder = append(out.LadderOrder, lvl)
					}
					if st.Degradation != edge.DegradedNone {
						roundFresh = false
					}
				}
			}
		}
		if round == cfg.Rounds-1 {
			lastRoundFresh = roundFresh
		}

		for i := range regions {
			if uploadsSkipped(round, i) {
				continue
			}
			if _, _, err := uploaders[i].BatchReportTasks(uploads[round][i]); err != nil {
				return nil, fmt.Errorf("sim: round %d uploads to region %d: %w", round, i, err)
			}
		}

		for i, r := range regions {
			if err := r.SyncDown(); err != nil && !(i == 1 && inPartition(round)) {
				return nil, fmt.Errorf("sim: round %d region %d down-sync: %w", round, i, err)
			}
		}

		if cfg.Gossip && inPartition(round) {
			n, err := regions[1].GossipOnce()
			if err != nil {
				logger.Warn("sim: gossip round failed", "round", round, "err", err)
			}
			out.GossipInjected += n
		}

		if flushRound(round) {
			for i, r := range regions {
				if _, err := r.FlushUp(); err != nil {
					return nil, fmt.Errorf("sim: round %d region %d flush: %w", round, i, err)
				}
			}
		}
	}

	out.Accuracy = accSum / float64(accN)
	out.Recovered = lastRoundFresh

	for _, r := range regions {
		st := r.Stats()
		out.RegionStats = append(out.RegionStats, st)
		out.RawBytes += st.RawBytes
		out.UpBytes += st.UpBytes
	}
	if out.UpBytes > 0 {
		out.Reduction = float64(out.RawBytes) / float64(out.UpBytes)
	}

	cloud.WaitCaughtUp()
	final, version, err := cloud.Prior()
	if err != nil {
		return nil, fmt.Errorf("sim: final cloud prior: %w", err)
	}
	out.FinalCloudVersion = version
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(final); err != nil {
		return nil, err
	}
	out.PriorBytes = buf.Bytes()

	telemetry.SimDevices.Add(float64(out.Devices))
	return out, nil
}
