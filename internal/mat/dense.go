package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense returns a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: NewDense: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must share a length.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: FromRows: row %d has length %d, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Eye returns the n-by-n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d Vec) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// At returns the (i,j) entry.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the (i,j) entry.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.Data[i*m.Cols+j] = v
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) Vec {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: Row: index %d out of range [0,%d)", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// RowSlice returns rows [from, to) as a matrix view aliasing the
// storage of m — the chunk shape the parallel evaluation layer feeds to
// per-sample kernels. Mutating the view mutates m.
func (m *Dense) RowSlice(from, to int) *Dense {
	if from < 0 || to < from || to > m.Rows {
		panic(fmt.Sprintf("mat: RowSlice: range [%d,%d) out of [0,%d)", from, to, m.Rows))
	}
	return &Dense{Rows: to - from, Cols: m.Cols, Data: m.Data[from*m.Cols : to*m.Cols]}
}

// Col returns column j as a fresh slice.
func (m *Dense) Col(j int) Vec {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: Col: index %d out of range [0,%d)", j, m.Cols))
	}
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MulVec returns m*x as a new vector (gemv).
func (m *Dense) MulVec(x Vec) Vec {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec: vector length %d, want %d", len(x), m.Cols))
	}
	y := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecT returns mᵀ*x as a new vector.
func (m *Dense) MulVecT(x Vec) Vec {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecT: vector length %d, want %d", len(x), m.Rows))
	}
	y := make(Vec, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// Mul returns m*b as a new matrix (gemm, ikj loop order).
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul: inner dimensions %d != %d", m.Cols, b.Rows))
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, v := range brow {
				orow[j] += a * v
			}
		}
	}
	return out
}

// Add returns m + b as a new matrix.
func (m *Dense) Add(b *Dense) *Dense {
	m.checkSameShape("Add", b)
	out := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns m - b as a new matrix.
func (m *Dense) Sub(b *Dense) *Dense {
	m.checkSameShape("Sub", b)
	out := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// ScaleBy multiplies every entry of m by a, in place.
func (m *Dense) ScaleBy(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddScaled computes m += a*b in place.
func (m *Dense) AddScaled(a float64, b *Dense) {
	m.checkSameShape("AddScaled", b)
	for i, v := range b.Data {
		m.Data[i] += a * v
	}
}

// OuterAdd computes m += a * x yᵀ in place (rank-1 update).
func (m *Dense) OuterAdd(a float64, x, y Vec) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("mat: OuterAdd: got %dx%d update for %dx%d matrix",
			len(x), len(y), m.Rows, m.Cols))
	}
	for i, xi := range x {
		s := a * xi
		if s == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] += s * yj
		}
	}
}

// QuadForm returns xᵀ m x for square m.
func (m *Dense) QuadForm(x Vec) float64 {
	m.checkSquare("QuadForm")
	return Dot(x, m.MulVec(x))
}

// Trace returns the trace of square m.
func (m *Dense) Trace() float64 {
	m.checkSquare("Trace")
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var best float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Symmetrize overwrites m with (m + mᵀ)/2 for square m, removing the
// round-off asymmetry that accumulates in covariance updates.
func (m *Dense) Symmetrize() {
	m.checkSquare("Symmetrize")
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// Equal reports whether m and b have the same shape and entries within tol.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

func (m *Dense) checkSquare(op string) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("mat: %s: matrix is %dx%d, want square", op, m.Rows, m.Cols))
	}
}

func (m *Dense) checkSameShape(op string, b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s: shape mismatch %dx%d vs %dx%d",
			op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
