package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPSD reports that a matrix handed to Cholesky was not (numerically)
// symmetric positive definite even after jitter escalation.
var ErrNotPSD = errors.New("mat: matrix is not positive definite")

// ErrNotFinite reports that a matrix handed to Cholesky contained NaN or
// ±Inf entries. No amount of diagonal jitter repairs this, so jitter
// escalation fails fast on it.
var ErrNotFinite = errors.New("mat: matrix has non-finite entries")

// Cholesky holds a lower-triangular factor L with A = L Lᵀ.
type Cholesky struct {
	L *Dense // lower triangular, upper part zero
}

// NewCholesky factors the symmetric positive-definite matrix a.
// It fails with ErrNotPSD when a is not numerically PD — including when
// a pivot is positive but below working precision relative to the
// matrix scale (n·eps·max diag), where the factor would be dominated by
// rounding noise and solves would silently amplify it — and with
// ErrNotFinite when a contains NaN or ±Inf entries.
func NewCholesky(a *Dense) (*Cholesky, error) {
	a.checkSquare("Cholesky")
	n := a.Rows
	var maxDiag float64
	for i, v := range a.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: entry (%d,%d) is %g", ErrNotFinite, i/a.Cols, i%a.Cols, v)
		}
	}
	for i := 0; i < n; i++ {
		if d := a.Data[i*n+i]; d > maxDiag {
			maxDiag = d
		}
	}
	// Relative pivot floor: a rank-deficient matrix rarely produces an
	// exactly-zero pivot in floating point — cancellation leaves a tiny
	// residual of either sign at the roundoff scale of the entries that
	// cancelled. Accepting such a pivot yields 1/sqrt(residual) factors
	// of pure noise.
	const eps = 0x1p-52
	tol := float64(n) * eps * maxDiag
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			v := l.Data[j*n+k]
			d += v * v
		}
		d = a.Data[j*n+j] - d
		if d <= tol || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g (tolerance %g)", ErrNotPSD, j, d, tol)
		}
		ljj := math.Sqrt(d)
		l.Data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.Data[i*n+k] * l.Data[j*n+k]
			}
			l.Data[i*n+j] = (a.Data[i*n+j] - s) / ljj
		}
	}
	return &Cholesky{L: l}, nil
}

// NewCholeskyJitter factors a, escalating a diagonal jitter from jitter0
// by factors of 10 up to maxTries times until the factorization succeeds.
// It returns the factor and the jitter that was finally applied. A matrix
// with non-finite entries fails immediately with ErrNotFinite — jitter
// only repairs rank deficiency, not NaN/Inf poison.
func NewCholeskyJitter(a *Dense, jitter0 float64, maxTries int) (*Cholesky, float64, error) {
	if jitter0 <= 0 {
		jitter0 = 1e-10
	}
	ch, err := NewCholesky(a)
	if err == nil {
		return ch, 0, nil
	}
	if errors.Is(err, ErrNotFinite) {
		return nil, 0, err
	}
	jitter := jitter0
	for try := 0; try < maxTries; try++ {
		aj := a.Clone()
		for i := 0; i < aj.Rows; i++ {
			aj.Data[i*aj.Cols+i] += jitter
		}
		if ch, err := NewCholesky(aj); err == nil {
			return ch, jitter, nil
		}
		jitter *= 10
	}
	return nil, 0, fmt.Errorf("cholesky with jitter up to %g: %w", jitter/10, ErrNotPSD)
}

// SolveVec solves A x = b given A = L Lᵀ, returning x.
func (c *Cholesky) SolveVec(b Vec) Vec {
	n := c.L.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: Cholesky.SolveVec: length %d, want %d", len(b), n))
	}
	// Forward substitution: L y = b.
	y := make(Vec, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / c.L.Data[i*n+i]
	}
	// Back substitution: Lᵀ x = y.
	x := make(Vec, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.Data[k*n+i] * x[k]
		}
		x[i] = s / c.L.Data[i*n+i]
	}
	return x
}

// Solve solves A X = B column-by-column.
func (c *Cholesky) Solve(b *Dense) *Dense {
	if b.Rows != c.L.Rows {
		panic(fmt.Sprintf("mat: Cholesky.Solve: got %d rows, want %d", b.Rows, c.L.Rows))
	}
	out := NewDense(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		x := c.SolveVec(b.Col(j))
		for i, v := range x {
			out.Data[i*out.Cols+j] = v
		}
	}
	return out
}

// Inverse returns A⁻¹.
func (c *Cholesky) Inverse() *Dense {
	return c.Solve(Eye(c.L.Rows))
}

// LogDet returns log det A = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	n := c.L.Rows
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(c.L.Data[i*n+i])
	}
	return 2 * s
}

// MulVecL returns L x, used to sample from N(mu, A) as mu + L z.
func (c *Cholesky) MulVecL(x Vec) Vec {
	n := c.L.Rows
	if len(x) != n {
		panic(fmt.Sprintf("mat: Cholesky.MulVecL: length %d, want %d", len(x), n))
	}
	y := make(Vec, n)
	for i := 0; i < n; i++ {
		var s float64
		row := c.L.Data[i*n : i*n+i+1]
		for k, v := range row {
			s += v * x[k]
		}
		y[i] = s
	}
	return y
}

// SolveL solves L y = b (forward substitution only). The squared norm of
// the result is the Mahalanobis quadratic (b)ᵀA⁻¹(b), which the Gaussian
// log-density uses without completing the full solve.
func (c *Cholesky) SolveL(b Vec) Vec {
	n := c.L.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: Cholesky.SolveL: length %d, want %d", len(b), n))
	}
	y := make(Vec, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / c.L.Data[i*n+i]
	}
	return y
}
