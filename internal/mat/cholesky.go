package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPSD reports that a matrix handed to Cholesky was not (numerically)
// symmetric positive definite even after jitter escalation.
var ErrNotPSD = errors.New("mat: matrix is not positive definite")

// Cholesky holds a lower-triangular factor L with A = L Lᵀ.
type Cholesky struct {
	L *Dense // lower triangular, upper part zero
}

// NewCholesky factors the symmetric positive-definite matrix a.
// It fails with ErrNotPSD when a is not numerically PD.
func NewCholesky(a *Dense) (*Cholesky, error) {
	a.checkSquare("Cholesky")
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			v := l.Data[j*n+k]
			d += v * v
		}
		d = a.Data[j*n+j] - d
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotPSD, j, d)
		}
		ljj := math.Sqrt(d)
		l.Data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.Data[i*n+k] * l.Data[j*n+k]
			}
			l.Data[i*n+j] = (a.Data[i*n+j] - s) / ljj
		}
	}
	return &Cholesky{L: l}, nil
}

// NewCholeskyJitter factors a, escalating a diagonal jitter from jitter0
// by factors of 10 up to maxTries times until the factorization succeeds.
// It returns the factor and the jitter that was finally applied.
func NewCholeskyJitter(a *Dense, jitter0 float64, maxTries int) (*Cholesky, float64, error) {
	if jitter0 <= 0 {
		jitter0 = 1e-10
	}
	if ch, err := NewCholesky(a); err == nil {
		return ch, 0, nil
	}
	jitter := jitter0
	for try := 0; try < maxTries; try++ {
		aj := a.Clone()
		for i := 0; i < aj.Rows; i++ {
			aj.Data[i*aj.Cols+i] += jitter
		}
		if ch, err := NewCholesky(aj); err == nil {
			return ch, jitter, nil
		}
		jitter *= 10
	}
	return nil, 0, fmt.Errorf("cholesky with jitter up to %g: %w", jitter/10, ErrNotPSD)
}

// SolveVec solves A x = b given A = L Lᵀ, returning x.
func (c *Cholesky) SolveVec(b Vec) Vec {
	n := c.L.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: Cholesky.SolveVec: length %d, want %d", len(b), n))
	}
	// Forward substitution: L y = b.
	y := make(Vec, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / c.L.Data[i*n+i]
	}
	// Back substitution: Lᵀ x = y.
	x := make(Vec, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.Data[k*n+i] * x[k]
		}
		x[i] = s / c.L.Data[i*n+i]
	}
	return x
}

// Solve solves A X = B column-by-column.
func (c *Cholesky) Solve(b *Dense) *Dense {
	if b.Rows != c.L.Rows {
		panic(fmt.Sprintf("mat: Cholesky.Solve: got %d rows, want %d", b.Rows, c.L.Rows))
	}
	out := NewDense(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		x := c.SolveVec(b.Col(j))
		for i, v := range x {
			out.Data[i*out.Cols+j] = v
		}
	}
	return out
}

// Inverse returns A⁻¹.
func (c *Cholesky) Inverse() *Dense {
	return c.Solve(Eye(c.L.Rows))
}

// LogDet returns log det A = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	n := c.L.Rows
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(c.L.Data[i*n+i])
	}
	return 2 * s
}

// MulVecL returns L x, used to sample from N(mu, A) as mu + L z.
func (c *Cholesky) MulVecL(x Vec) Vec {
	n := c.L.Rows
	if len(x) != n {
		panic(fmt.Sprintf("mat: Cholesky.MulVecL: length %d, want %d", len(x), n))
	}
	y := make(Vec, n)
	for i := 0; i < n; i++ {
		var s float64
		row := c.L.Data[i*n : i*n+i+1]
		for k, v := range row {
			s += v * x[k]
		}
		y[i] = s
	}
	return y
}

// SolveL solves L y = b (forward substitution only). The squared norm of
// the result is the Mahalanobis quadratic (b)ᵀA⁻¹(b), which the Gaussian
// log-density uses without completing the full solve.
func (c *Cholesky) SolveL(b Vec) Vec {
	n := c.L.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: Cholesky.SolveL: length %d, want %d", len(b), n))
	}
	y := make(Vec, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / c.L.Data[i*n+i]
	}
	return y
}
