package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		x, y Vec
		want float64
	}{
		{"empty", Vec{}, Vec{}, 0},
		{"single", Vec{2}, Vec{3}, 6},
		{"orthogonal", Vec{1, 0}, Vec{0, 1}, 0},
		{"general", Vec{1, 2, 3}, Vec{4, 5, 6}, 32},
		{"negative", Vec{-1, 2}, Vec{3, -4}, -11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.x, tt.y); got != tt.want {
				t.Errorf("Dot(%v,%v) = %v, want %v", tt.x, tt.y, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestAxpy(t *testing.T) {
	y := Vec{1, 1, 1}
	Axpy(2, Vec{1, 2, 3}, y)
	want := Vec{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", y, want)
		}
	}
}

func TestNorms(t *testing.T) {
	x := Vec{3, -4}
	if got := Norm2(x); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum-of-squares would overflow here; scaled form must not.
	x := Vec{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(x); !almostEq(got, want, 1e-12) {
		t.Errorf("Norm2 overflow-guard: got %v, want %v", got, want)
	}
}

func TestDist2(t *testing.T) {
	if got := Dist2(Vec{0, 0}, Vec{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Errorf("Dist2 = %v, want 5", got)
	}
}

func TestSumMeanFill(t *testing.T) {
	x := Vec{1, 2, 3, 4}
	if Sum(x) != 10 {
		t.Errorf("Sum = %v, want 10", Sum(x))
	}
	if Mean(x) != 2.5 {
		t.Errorf("Mean = %v, want 2.5", Mean(x))
	}
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) = %v, want 0", Mean(nil))
	}
	Fill(x, 7)
	for _, v := range x {
		if v != 7 {
			t.Fatalf("Fill failed: %v", x)
		}
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		x    Vec
		want int
	}{
		{nil, -1},
		{Vec{5}, 0},
		{Vec{1, 3, 2}, 1},
		{Vec{2, 2, 2}, 0}, // tie goes to lowest index
		{Vec{-5, -1, -9}, 1},
	}
	for _, tt := range tests {
		if got := ArgMax(tt.x); got != tt.want {
			t.Errorf("ArgMax(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	tests := []struct {
		name string
		x    Vec
		want float64
	}{
		{"pair", Vec{0, 0}, math.Log(2)},
		{"single", Vec{3}, 3},
		{"huge", Vec{1000, 1000}, 1000 + math.Log(2)},
		{"tiny", Vec{-1000, -1000}, -1000 + math.Log(2)},
		{"neginf", Vec{math.Inf(-1), 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LogSumExp(tt.x); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("LogSumExp(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax(Vec{1, 1, 1}, nil)
	for _, v := range p {
		if !almostEq(v, 1.0/3, 1e-12) {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	// Extreme logits must not produce NaN.
	p = Softmax(Vec{1e4, 0}, nil)
	if math.IsNaN(p[0]) || !almostEq(p[0], 1, 1e-12) {
		t.Errorf("extreme softmax = %v", p)
	}
}

// Property: softmax output is always a probability vector.
func TestSoftmaxSimplexProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make(Vec, len(raw))
		for i, v := range raw {
			// Clamp quick's wild values into a finite range.
			x[i] = math.Mod(v, 50)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		p := Softmax(x, nil)
		var s float64
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			s += v
		}
		return almostEq(s, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |<x,y>| <= ||x|| ||y||.
func TestCauchySchwarzProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		x, y := make(Vec, n), make(Vec, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		if math.Abs(Dot(x, y)) > Norm2(x)*Norm2(y)*(1+1e-12)+1e-12 {
			t.Fatalf("Cauchy-Schwarz violated: x=%v y=%v", x, y)
		}
	}
}

func TestAddSubVec(t *testing.T) {
	x, y := Vec{1, 2}, Vec{3, 5}
	s := AddVec(x, y)
	d := SubVec(y, x)
	if s[0] != 4 || s[1] != 7 {
		t.Errorf("AddVec = %v", s)
	}
	if d[0] != 2 || d[1] != 3 {
		t.Errorf("SubVec = %v", d)
	}
	// Inputs must be untouched.
	if x[0] != 1 || y[0] != 3 {
		t.Error("AddVec/SubVec mutated inputs")
	}
}

func TestCloneVecIndependence(t *testing.T) {
	x := Vec{1, 2, 3}
	y := CloneVec(x)
	y[0] = 99
	if x[0] != 1 {
		t.Error("CloneVec shares storage with original")
	}
}

func TestScale(t *testing.T) {
	x := Vec{1, -2, 3}
	Scale(-2, x)
	want := Vec{-2, 4, -6}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Scale = %v, want %v", x, want)
		}
	}
}
