package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randPSD returns a random symmetric positive-definite matrix A = BᵀB + εI.
func randPSD(rng *rand.Rand, n int) *Dense {
	b := randMat(rng, n, n)
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += 0.5
	}
	a.Symmetrize()
	return a
}

func TestDenseAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Error("fresh matrix entries must be zero")
	}
}

func TestDenseAtPanics(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows wrong layout: %+v", m)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Error("FromRows(nil) should be 0x0")
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestEyeDiag(t *testing.T) {
	e := Eye(3)
	if e.Trace() != 3 {
		t.Errorf("Eye(3) trace = %v", e.Trace())
	}
	d := Diag(Vec{1, 2, 3})
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Errorf("Diag wrong: %+v", d)
	}
}

func TestMulVecIdentity(t *testing.T) {
	x := Vec{1, 2, 3}
	y := Eye(3).MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I*x = %v", y)
		}
	}
}

func TestMulVsMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 4, 3)
	b := randMat(rng, 3, 5)
	ab := a.Mul(b)
	// Column j of A*B equals A * (column j of B).
	for j := 0; j < 5; j++ {
		want := a.MulVec(b.Col(j))
		got := ab.Col(j)
		for i := range want {
			if !almostEq(got[i], want[i], 1e-12) {
				t.Fatalf("Mul col %d mismatch: %v vs %v", j, got, want)
			}
		}
	}
}

func TestMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 4, 3)
	x := Vec{1, -2, 0.5, 3}
	got := a.MulVecT(x)
	want := a.T().MulVec(x)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("MulVecT = %v, want %v", got, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 3, 7)
	if !a.T().T().Equal(a, 0) {
		t.Error("(Aᵀ)ᵀ != A")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		p, q, r, s := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a, b, c := randMat(rng, p, q), randMat(rng, q, r), randMat(rng, r, s)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		if !left.Equal(right, 1e-9) {
			t.Fatalf("associativity violated at trial %d", trial)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	s := a.Add(b)
	if s.At(1, 1) != 12 {
		t.Errorf("Add = %v", s)
	}
	d := b.Sub(a)
	if d.At(0, 0) != 4 {
		t.Errorf("Sub = %v", d)
	}
	c := a.Clone()
	c.ScaleBy(2)
	if c.At(1, 0) != 6 || a.At(1, 0) != 3 {
		t.Error("ScaleBy wrong or Clone aliased")
	}
	c.AddScaled(-2, a)
	if c.MaxAbs() != 0 {
		t.Errorf("AddScaled should zero out: %v", c)
	}
}

func TestOuterAdd(t *testing.T) {
	m := NewDense(2, 3)
	m.OuterAdd(2, Vec{1, 2}, Vec{3, 4, 5})
	if m.At(0, 0) != 6 || m.At(1, 2) != 20 {
		t.Errorf("OuterAdd = %+v", m)
	}
}

func TestQuadForm(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	if got := a.QuadForm(Vec{1, 2}); got != 14 {
		t.Errorf("QuadForm = %v, want 14", got)
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {4, 1}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %+v", a)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 3, 5, 10, 25} {
		a := randPSD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// L Lᵀ must reconstruct A.
		recon := ch.L.Mul(ch.L.T())
		if !recon.Equal(a, 1e-8) {
			t.Fatalf("n=%d: LLᵀ does not reconstruct A (max err %g)",
				n, recon.Sub(a).MaxAbs())
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randPSD(rng, n)
		x := make(Vec, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := ch.SolveVec(b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-7) {
				t.Fatalf("solve mismatch: got %v want %v", got, x)
			}
		}
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randPSD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.Inverse()
	if !a.Mul(inv).Equal(Eye(6), 1e-8) {
		t.Error("A * A⁻¹ != I")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// det(diag(2,3,4)) = 24.
	a := Diag(Vec{2, 3, 4})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.LogDet(); !almostEq(got, math.Log(24), 1e-12) {
		t.Errorf("LogDet = %v, want log 24 = %v", got, math.Log(24))
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected ErrNotPSD for indefinite matrix")
	}
}

func TestCholeskyJitterRecovers(t *testing.T) {
	// Singular PSD matrix: rank 1.
	a := NewDense(3, 3)
	a.OuterAdd(1, Vec{1, 1, 1}, Vec{1, 1, 1})
	ch, jitter, err := NewCholeskyJitter(a, 1e-10, 12)
	if err != nil {
		t.Fatalf("jittered cholesky failed: %v", err)
	}
	if jitter <= 0 {
		t.Errorf("expected positive jitter, got %g", jitter)
	}
	if ch == nil || ch.L.Rows != 3 {
		t.Error("bad factor")
	}
}

func TestCholeskySolveL(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randPSD(rng, 5)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make(Vec, 5)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// ||L⁻¹ b||² must equal bᵀ A⁻¹ b.
	y := ch.SolveL(b)
	lhs := Dot(y, y)
	rhs := Dot(b, ch.SolveVec(b))
	if !almostEq(lhs, rhs, 1e-9) {
		t.Errorf("Mahalanobis identity: %v vs %v", lhs, rhs)
	}
}

func TestCholeskyMulVecL(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randPSD(rng, 4)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	z := Vec{1, -1, 2, 0.5}
	got := ch.MulVecL(z)
	want := ch.L.MulVec(z)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("MulVecL = %v, want %v", got, want)
		}
	}
}
