package mat

import (
	"errors"
	"math"
	"testing"
)

func TestCholeskySPD(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("SPD matrix rejected: %v", err)
	}
	x := ch.SolveVec(Vec{1, 2})
	// Verify A x = b.
	b := a.MulVec(x)
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-2) > 1e-12 {
		t.Errorf("solve residual: A x = %v, want [1 2]", b)
	}
}

// TestCholeskyRankDeficient is the silent-garbage regression: an exactly
// rank-deficient matrix reaches the deficient pivot as a tiny roundoff
// residual of either sign, not exactly zero, and the old `d <= 0` check
// let positive residuals through — producing 1/sqrt(noise) factors whose
// solves were garbage with no error. The relative pivot tolerance must
// reject all of these.
func TestCholeskyRankDeficient(t *testing.T) {
	// vvᵀ has rank 1; entries chosen so cancellation leaves a nonzero
	// residual at pivot 1.
	v := Vec{1.1, 0.7, 0.31}
	a := NewDense(3, 3)
	a.OuterAdd(1, v, v)
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPSD) {
		t.Fatalf("rank-1 vvᵀ accepted (err=%v); factor would be rounding noise", err)
	}

	if _, err := NewCholesky(FromRows([][]float64{{1, 1}, {1, 1}})); !errors.Is(err, ErrNotPSD) {
		t.Fatalf("singular all-ones matrix accepted (err=%v)", err)
	}

	// Indefinite must keep failing too.
	if _, err := NewCholesky(FromRows([][]float64{{1, 2}, {2, 1}})); !errors.Is(err, ErrNotPSD) {
		t.Fatalf("indefinite matrix accepted (err=%v)", err)
	}
}

func TestCholeskyTinyScaleStillAccepted(t *testing.T) {
	// The pivot floor is relative: a well-conditioned matrix at a tiny
	// absolute scale must still factor.
	a := FromRows([][]float64{{1e-200, 0}, {0, 2e-200}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("tiny-scale SPD matrix rejected: %v", err)
	}
	if got := ch.L.At(0, 0); math.Abs(got-1e-100) > 1e-112 {
		t.Errorf("L00 = %g, want 1e-100", got)
	}
}

func TestCholeskyNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		a := FromRows([][]float64{{1, 0}, {0, bad}})
		if _, err := NewCholesky(a); !errors.Is(err, ErrNotFinite) {
			t.Errorf("matrix with %g accepted (err=%v)", bad, err)
		}
		// Jitter cannot repair non-finite input and must fail fast with
		// the same sentinel instead of escalating.
		if _, _, err := NewCholeskyJitter(a, 1e-10, 8); !errors.Is(err, ErrNotFinite) {
			t.Errorf("jitter on matrix with %g returned err=%v, want ErrNotFinite", bad, err)
		}
	}
}

func TestCholeskyJitterRecoversRankDeficient(t *testing.T) {
	v := Vec{1, 2, 3}
	a := NewDense(3, 3)
	a.OuterAdd(1, v, v)
	ch, jitter, err := NewCholeskyJitter(a, 1e-8, 10)
	if err != nil {
		t.Fatalf("jitter escalation failed on rank-1 matrix: %v", err)
	}
	if jitter <= 0 {
		t.Fatalf("rank-deficient matrix factored without jitter (jitter=%g)", jitter)
	}
	// The recovered factor must be finite and usable.
	if ld := ch.LogDet(); math.IsNaN(ld) || math.IsInf(ld, 0) {
		t.Errorf("jittered factor has non-finite log det %g", ld)
	}
	x := ch.SolveVec(Vec{1, 1, 1})
	for i, xi := range x {
		if math.IsNaN(xi) || math.IsInf(xi, 0) {
			t.Errorf("jittered solve produced non-finite x[%d] = %g", i, xi)
		}
	}
}
