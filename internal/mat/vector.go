// Package mat provides the dense linear-algebra substrate used throughout
// the drdp library: vectors as []float64, a row-major dense matrix type,
// BLAS-like kernels (dot, axpy, gemv, gemm), and the Cholesky machinery
// needed for multivariate-Gaussian priors and quadratic surrogates.
//
// Shape mismatches are programmer errors and panic with a descriptive
// message, mirroring the Go runtime's slice bounds checks. Numerical
// failures (for example a non-positive-definite matrix handed to Cholesky)
// are reported as errors.
package mat

import (
	"fmt"
	"math"
)

// Vec is a dense vector. It is a plain slice so callers can use the full
// slice toolbox; the functions below treat it as a mathematical vector.
type Vec = []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// CloneVec returns a copy of x.
func CloneVec(x Vec) Vec {
	y := make(Vec, len(x))
	copy(y, x)
	return y
}

// Dot returns the inner product of x and y.
func Dot(x, y Vec) float64 {
	checkLen("Dot", len(x), len(y))
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y Vec) {
	checkLen("Axpy", len(x), len(y))
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale computes x *= a in place.
func Scale(a float64, x Vec) {
	for i := range x {
		x[i] *= a
	}
}

// AddVec returns x + y as a new vector.
func AddVec(x, y Vec) Vec {
	checkLen("AddVec", len(x), len(y))
	z := make(Vec, len(x))
	for i, v := range x {
		z[i] = v + y[i]
	}
	return z
}

// SubVec returns x - y as a new vector.
func SubVec(x, y Vec) Vec {
	checkLen("SubVec", len(x), len(y))
	z := make(Vec, len(x))
	for i, v := range x {
		z[i] = v - y[i]
	}
	return z
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x Vec) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the l1 norm of x.
func Norm1(x Vec) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the l-infinity norm of x.
func NormInf(x Vec) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Dist2 returns the Euclidean distance between x and y.
func Dist2(x, y Vec) float64 {
	checkLen("Dist2", len(x), len(y))
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the entries of x.
func Sum(x Vec) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty vector.
func Mean(x Vec) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Fill sets every entry of x to v.
func Fill(x Vec, v float64) {
	for i := range x {
		x[i] = v
	}
}

// ArgMax returns the index of the largest entry of x; -1 for empty x.
// Ties resolve to the lowest index.
func ArgMax(x Vec) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// LogSumExp returns log(sum_i exp(x_i)) computed stably.
// It returns -Inf for an empty vector, matching the empty-sum convention.
func LogSumExp(x Vec) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Softmax writes the softmax of x into dst (allocating when dst is nil)
// and returns dst. The result is a probability vector.
func Softmax(x, dst Vec) Vec {
	if dst == nil {
		dst = make(Vec, len(x))
	}
	checkLen("Softmax", len(x), len(dst))
	lse := LogSumExp(x)
	for i, v := range x {
		dst[i] = math.Exp(v - lse)
	}
	return dst
}

func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("mat: %s: length mismatch %d != %d", op, a, b))
	}
}
