package mat

import (
	"math/rand"
	"testing"
)

func benchMat(n int) *Dense {
	rng := rand.New(rand.NewSource(1))
	m := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func benchVec(n int) Vec {
	rng := rand.New(rand.NewSource(2))
	v := make(Vec, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func BenchmarkDot1k(b *testing.B) {
	x, y := benchVec(1024), benchVec(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkAxpy1k(b *testing.B) {
	x, y := benchVec(1024), benchVec(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x, y)
	}
}

func BenchmarkMulVec128(b *testing.B) {
	m := benchMat(128)
	x := benchVec(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVec(x)
	}
}

func BenchmarkGemm64(b *testing.B) {
	m := benchMat(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Mul(m)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randPSD(rng, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve64(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randPSD(rng, 64)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchVec(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch.SolveVec(rhs)
	}
}

func BenchmarkLogSumExp(b *testing.B) {
	x := benchVec(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LogSumExp(x)
	}
}
