// Package region implements the middle tier of the hierarchical
// edge → region → cloud topology: a regional aggregator that runs the
// full store + admission + rebuild stack locally, admits raw device
// task posteriors nearby, and speaks the existing edge protocol both
// ways — as a CloudServer to its devices and as a multiplexed client
// to the cloud.
//
// Upward, a region does not forward raw tasks: each sync flushes the
// window of tasks admitted since the last successful sync as a handful
// of DP component summaries (dpprior.SummarizeTasks) through the same
// BatchAddTask request a device fleet would use, cutting cloud upload
// bytes by roughly window/components. Downward, it refreshes the
// cloud's merged prior by version (GetPriorDelta) and folds the cloud's
// components into its local store as pseudo-tasks, so the prior a
// region serves during a cloud partition still carries global
// knowledge. Sideways (optional), regions gossip component deltas with
// peer regions so two regions cut off from the cloud keep exchanging
// what their devices learn.
//
// Every pseudo-task injected from above or sideways is tracked by
// fingerprint and excluded from upward flushes: knowledge that came
// from the cloud (directly or via a peer that synced it) is never
// echoed back, which is what keeps the cloud store — and therefore the
// cloud prior — byte-identical to a flat topology feeding it the same
// summaries.
package region

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

// DefaultDialTimeout bounds uplink and gossip dials when Config leaves
// the timeout unset.
const DefaultDialTimeout = 2 * time.Second

// Config describes one regional aggregator.
type Config struct {
	// Name labels the region in logs, traces, and telemetry.
	Name string
	// CloudAddr is the upstream cloud endpoint. Empty disables upward
	// sync (an isolated region still serves and aggregates its devices).
	CloudAddr string
	// Dial overrides the uplink dial — chaos tests gate or fault the
	// cloud link here. nil dials CloudAddr over TCP.
	Dial func() (net.Conn, error)
	// PeerDial overrides gossip dials by peer address. nil dials TCP.
	PeerDial func(addr string) (net.Conn, error)
	// Peers lists sibling regions' serve addresses for gossip.
	Peers []string
	// Dir is the region store directory ("" = in-memory).
	Dir string
	// Build configures the local DP rebuild AND upward summarization;
	// its Alpha must match the cloud's for merged priors to compose.
	Build dpprior.BuildOptions
	// Admission, when non-nil, turns on the local admission judge so a
	// poisoned device is quarantined at the region instead of the cloud.
	Admission *edge.AdmissionConfig
	// WireCodec is the uplink codec preference (see wire.Preference).
	WireCodec wire.Preference
	// DialTimeout bounds uplink/gossip dials and negotiation
	// (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// Seed derives deterministic summarization seeds per flush window.
	Seed int64
	// Logger receives structured sync/gossip notices.
	Logger *slog.Logger
}

// SyncStats counts what the region's sync machinery actually did.
type SyncStats struct {
	Flushes     int   // successful upward flushes
	Deferred    int   // flushes deferred by an unreachable cloud
	RawTasks    int   // raw tasks summarized upward so far
	Summaries   int   // summary pseudo-tasks shipped upward so far
	RawBytes    int64 // wire bytes the raw tasks would have cost
	UpBytes     int64 // wire bytes the summaries actually cost
	DownSyncs   int   // successful downward prior refreshes
	GossipIn    int   // components absorbed from peers
	GossipPeers int   // successful peer exchanges
}

// Region is a running regional aggregator. All methods are safe for
// concurrent use; the embedded CloudServer serves devices concurrently
// on its own.
type Region struct {
	cfg Config
	srv *edge.CloudServer

	mu         sync.Mutex
	up         *edge.MuxClient
	syncedSeq  uint64              // store version covered by the last successful flush
	injected   map[uint64]struct{} // fingerprints of down-sync/gossip pseudo-tasks
	cloudPrior *dpprior.Prior
	cloudVer   uint64
	peerPriors map[string]*dpprior.Prior
	stats      SyncStats
	closed     bool
}

// Start opens the region's store, builds its local cloud-server stack,
// and returns the region ready to Serve devices and sync. Nothing is
// dialed yet: the uplink is established lazily on the first flush, so
// a cloud that is down at region start only defers sync.
func Start(cfg Config, seed []dpprior.TaskPosterior) (*Region, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	cfg.Logger = telemetry.OrDefault(cfg.Logger)
	if cfg.Name == "" {
		cfg.Name = "region"
	}
	st, err := store.Open(store.Options{
		Dir:      cfg.Dir,
		Logger:   cfg.Logger,
		Validate: dpprior.TaskValidator(),
	})
	if err != nil {
		return nil, fmt.Errorf("region %s: open store: %w", cfg.Name, err)
	}
	srv, err := edge.NewCloudServerWithStore(st, seed, cfg.Build, cfg.Logger)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("region %s: %w", cfg.Name, err)
	}
	if cfg.Admission != nil {
		srv.SetAdmission(*cfg.Admission)
	}
	return &Region{
		cfg:        cfg,
		srv:        srv,
		injected:   make(map[uint64]struct{}),
		peerPriors: make(map[string]*dpprior.Prior),
	}, nil
}

// Server exposes the region's local cloud-server stack — devices in
// the same process attach clients to it via Serve/net.Pipe, and tests
// reach the store and prior through it.
func (r *Region) Server() *edge.CloudServer { return r.srv }

// Serve accepts device connections on ln (blocks; run in a goroutine).
func (r *Region) Serve(ln net.Listener) error { return r.srv.Serve(ln) }

// ListenAndServe binds addr and serves devices, sending the bound
// address on addrCh if non-nil.
func (r *Region) ListenAndServe(addr string, addrCh chan<- string) error {
	return r.srv.ListenAndServe(addr, addrCh)
}

// Pending reports how many locally admitted raw tasks await the next
// upward flush.
func (r *Region) Pending() int {
	r.srv.WaitCaughtUp()
	tasks, seqs, _ := r.srv.Store().ViewRecords()
	verdicts := r.srv.Store().Verdicts()
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i, seq := range seqs {
		if r.flushable(tasks[i], seq, verdicts) {
			n++
		}
	}
	return n
}

// flushable reports whether a stored record belongs in the next upward
// window: newer than the last synced version, not quarantined, and not
// a pseudo-task injected from the cloud or a peer. Callers hold r.mu.
func (r *Region) flushable(t dpprior.TaskPosterior, seq uint64, verdicts map[uint64]bool) bool {
	if seq <= r.syncedSeq || verdicts[seq] {
		return false
	}
	_, fromOutside := r.injected[t.Fingerprint()]
	return !fromOutside
}

// uplink returns the live mux connection to the cloud, dialing one if
// needed. Callers hold r.mu.
func (r *Region) uplink() (*edge.MuxClient, error) {
	if r.up != nil {
		return r.up, nil
	}
	if r.cfg.CloudAddr == "" && r.cfg.Dial == nil {
		return nil, errors.New("region: no cloud configured")
	}
	dial := r.cfg.Dial
	if dial == nil {
		dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", r.cfg.CloudAddr, r.cfg.DialTimeout)
		}
	}
	up, err := edge.DialMuxFunc(dial, r.cfg.DialTimeout, r.cfg.WireCodec)
	if err != nil {
		return nil, err
	}
	r.up = up
	return up, nil
}

// dropUplink closes a (possibly poisoned) uplink so the next sync
// redials. Close surfaces the transport error that killed the
// connection — that is the one worth logging, not the close itself.
// Callers hold r.mu.
func (r *Region) dropUplink() {
	if r.up == nil {
		return
	}
	if derr := r.up.Close(); derr != nil {
		r.cfg.Logger.Warn("region: cloud uplink died", "region", r.cfg.Name, "err", derr)
	}
	r.up = nil
}

// FlushUp summarizes every raw task admitted since the last successful
// flush and ships the summaries to the cloud in one batched upload. It
// returns the number of summaries shipped (0 with a nil error means
// the window was empty). On transport failure nothing advances: the
// same window — extended by whatever arrived meanwhile — goes up on
// the next flush after the link heals, in the same order, summarized
// with the same per-window seed.
func (r *Region) FlushUp() (int, error) {
	r.srv.WaitCaughtUp()
	tasks, seqs, version := r.srv.Store().ViewRecords()
	verdicts := r.srv.Store().Verdicts()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, errors.New("region: closed")
	}
	var window []dpprior.TaskPosterior
	var rawBytes int64
	for i, seq := range seqs {
		if r.flushable(tasks[i], seq, verdicts) {
			window = append(window, tasks[i])
			rawBytes += int64(tasks[i].WireSize())
		}
	}
	if len(window) == 0 {
		r.syncedSeq = version
		return 0, nil
	}

	sp := trace.Default.StartTrace("region-flush",
		trace.Str("region", r.cfg.Name), trace.Int("window", int64(len(window))))
	defer sp.End()

	// The summarization seed is a pure function of the region seed and
	// the flush ordinal — NOT the store version, which down-sync and
	// gossip pseudo-tasks advance. Two runs that flush the same device
	// windows in the same order summarize identically even when their
	// pseudo-task traffic differed (that is what keeps the cloud prior
	// byte-identical across a partition), and a deferred flush retried
	// after an outage reuses its seed.
	opts := r.cfg.Build
	opts.Seed = r.cfg.Seed ^ (int64(r.stats.Flushes+1) * 0x9e3779b9)
	sums, err := dpprior.SummarizeTasks(window, opts)
	if err != nil {
		sp.EndErr(err)
		return 0, fmt.Errorf("region %s: summarize: %w", r.cfg.Name, err)
	}
	var upBytes int64
	for _, s := range sums {
		upBytes += int64(s.WireSize())
	}

	up, err := r.uplink()
	if err == nil {
		_, _, err = up.BatchReportTasks(sums)
	}
	if err != nil {
		r.dropUplink()
		telemetry.RegionSyncDeferred.Inc()
		r.stats.Deferred++
		sp.EndErr(err)
		return 0, fmt.Errorf("region %s: flush deferred: %w", r.cfg.Name, err)
	}
	r.syncedSeq = version
	r.stats.Flushes++
	r.stats.RawTasks += len(window)
	r.stats.Summaries += len(sums)
	r.stats.RawBytes += rawBytes
	r.stats.UpBytes += upBytes
	telemetry.RegionSyncFlushes.Inc()
	telemetry.RegionSyncRawTasks.Add(float64(len(window)))
	telemetry.RegionSyncSummaries.Add(float64(len(sums)))
	telemetry.RegionBytesRaw.Add(float64(rawBytes))
	telemetry.RegionBytesUp.Add(float64(upBytes))
	sp.Event("shipped", trace.Int("summaries", int64(len(sums))),
		trace.Int("up-bytes", upBytes), trace.Int("raw-bytes", rawBytes))
	return len(sums), nil
}

// SyncDown refreshes the region's copy of the cloud prior by version
// (delta when possible) and folds any newly seen cloud components into
// the local store as pseudo-tasks, so the prior served to devices
// during a later partition carries global knowledge. Pseudo-tasks are
// fingerprint-tracked and never flushed back up. A cold cloud
// (ErrNoPrior) is not an error.
func (r *Region) SyncDown() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("region: closed")
	}
	up, err := r.uplink()
	if err != nil {
		telemetry.RegionDownErrors.Inc()
		return fmt.Errorf("region %s: sync down: %w", r.cfg.Name, err)
	}
	p, v, err := up.FetchPriorDelta(r.dim(), r.cloudVer, r.cloudPrior)
	if err != nil {
		if errors.Is(err, edge.ErrNoPrior) {
			return nil
		}
		r.dropUplink()
		telemetry.RegionDownErrors.Inc()
		return fmt.Errorf("region %s: sync down: %w", r.cfg.Name, err)
	}
	if p == nil { // NotModified
		return nil
	}
	r.cloudPrior, r.cloudVer = p, v
	r.stats.DownSyncs++
	telemetry.RegionDownSyncs.Inc()
	r.absorb(p, "cloud")
	return nil
}

// dim reports the parameter dimensionality the region serves, learned
// from its store or, before any local task, its cloud prior. 0 lets
// the server answer with its own dim. Callers hold r.mu.
func (r *Region) dim() int {
	if tasks, _, _ := r.srv.Store().ViewRecords(); len(tasks) > 0 {
		return len(tasks[0].Mu)
	}
	if r.cloudPrior != nil {
		return r.cloudPrior.Dim
	}
	return 0
}

// absorb folds a prior's components into the local store as
// fingerprint-tracked pseudo-tasks. Components already absorbed (same
// fingerprint) are skipped, so repeated syncs don't pile up duplicate
// pseudo-tasks. Callers hold r.mu.
func (r *Region) absorb(p *dpprior.Prior, from string) int {
	total := 0
	for _, c := range p.Components {
		total += int(c.Count + 0.5)
	}
	injected := 0
	for _, t := range dpprior.ComponentTasks(p, total) {
		fp := t.Fingerprint()
		if _, ok := r.injected[fp]; ok {
			continue
		}
		if _, err := r.srv.AddTask(t); err != nil {
			r.cfg.Logger.Warn("region: absorbing component failed",
				"region", r.cfg.Name, "from", from, "err", err)
			continue
		}
		r.injected[fp] = struct{}{}
		injected++
	}
	return injected
}

// GossipOnce exchanges component deltas with every configured peer
// region: fetch the peer's current prior and absorb its components as
// pseudo-tasks (fingerprint-deduplicated, excluded from upward sync).
// It returns how many components were newly absorbed. Unreachable
// peers are skipped, not fatal — gossip exists precisely for partial
// connectivity.
func (r *Region) GossipOnce() (int, error) {
	r.mu.Lock()
	peers := append([]string(nil), r.cfg.Peers...)
	timeout := r.cfg.DialTimeout
	peerDial := r.cfg.PeerDial
	r.mu.Unlock()

	injected := 0
	var firstErr error
	for _, addr := range peers {
		var c *edge.Client
		var err error
		if peerDial != nil {
			var conn net.Conn
			if conn, err = peerDial(addr); err == nil {
				c = edge.NewClient(conn)
			}
		} else {
			c, err = edge.Dial(addr, timeout)
		}
		if err == nil {
			var p *dpprior.Prior
			p, _, err = c.FetchPrior(0)
			c.Close()
			if err == nil {
				r.mu.Lock()
				r.peerPriors[addr] = p
				n := r.absorb(p, addr)
				r.stats.GossipIn += n
				r.stats.GossipPeers++
				r.mu.Unlock()
				injected += n
				telemetry.RegionGossipExchanges.Inc()
				telemetry.RegionGossipComponents.Add(float64(n))
				continue
			}
		}
		if errors.Is(err, edge.ErrNoPrior) {
			continue // cold peer: nothing to exchange yet
		}
		telemetry.RegionGossipErrors.Inc()
		if firstErr == nil {
			firstErr = fmt.Errorf("region %s: gossip %s: %w", r.cfg.Name, addr, err)
		}
	}
	return injected, firstErr
}

// MergedPrior returns the best global prior the region can currently
// offer: the locally built prior (which already folds in device
// uploads, down-synced cloud components, and gossip), merged — via
// dpprior.MergePriors, deterministically, peers in address order —
// with any peer priors gossip has collected that the local build may
// not have absorbed yet. With a cold local store it falls back to the
// last down-synced cloud prior.
func (r *Region) MergedPrior() (*dpprior.Prior, uint64, error) {
	own, ver, err := r.srv.Prior()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		if errors.Is(err, edge.ErrNoPrior) && r.cloudPrior != nil {
			return r.cloudPrior, r.cloudVer, nil
		}
		return nil, 0, err
	}
	if len(r.peerPriors) == 0 {
		return own, ver, nil
	}
	shards := []*dpprior.Prior{own}
	addrs := make([]string, 0, len(r.peerPriors))
	for a := range r.peerPriors {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		shards = append(shards, r.peerPriors[a])
	}
	merged, err := dpprior.MergePriors(shards)
	if err != nil {
		// Peers with incompatible hyperparameters can't merge; the local
		// prior alone is still valid.
		return own, ver, nil
	}
	return merged, ver, nil
}

// Stats returns a snapshot of the region's sync counters.
func (r *Region) Stats() SyncStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// SyncedSeq reports the store version covered by the last successful
// upward flush.
func (r *Region) SyncedSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.syncedSeq
}

// Close shuts the uplink and the local server stack (which syncs and
// closes the store).
func (r *Region) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.dropUplink()
	r.mu.Unlock()
	return r.srv.Close()
}
