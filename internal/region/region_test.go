package region

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/wire"
)

func synthTasks(rng *rand.Rand, k, dim int) []dpprior.TaskPosterior {
	out := make([]dpprior.TaskPosterior, k)
	for i := range out {
		mu := make(mat.Vec, dim)
		for j := range mu {
			mu[j] = rng.NormFloat64()
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(0.1)
		out[i] = dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
	}
	return out
}

// startCloud launches an in-process cloud server on a real listener.
func startCloud(t *testing.T, seed []dpprior.TaskPosterior) (string, *edge.CloudServer) {
	t.Helper()
	srv, err := edge.NewCloudServer(seed, dpprior.BuildOptions{Alpha: 1, Seed: 7}, telemetry.Discard())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addrCh := make(chan string, 1)
	go srv.ListenAndServe("127.0.0.1:0", addrCh)
	return <-addrCh, srv
}

func startRegion(t *testing.T, cfg Config) *Region {
	t.Helper()
	r, err := Start(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestFlushSummarizesWindow: a window larger than the component budget
// reaches the cloud as at most budget summaries, the byte counters
// show the saving, and a second flush with nothing new is a no-op.
func TestFlushSummarizesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	addr, cloud := startCloud(t, nil)
	r := startRegion(t, Config{
		Name:      "r0",
		CloudAddr: addr,
		Build:     dpprior.BuildOptions{Alpha: 1, MaxComponents: 3, Seed: 11},
		Seed:      42,
		Logger:    telemetry.Discard(),
	})
	for _, task := range synthTasks(rng, 12, 4) {
		if _, err := r.Server().AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Pending(); got != 12 {
		t.Fatalf("Pending = %d, want 12", got)
	}
	n, err := r.FlushUp()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n > 3 {
		t.Fatalf("flush shipped %d summaries, want 1..3", n)
	}
	cloud.WaitCaughtUp()
	if got := cloud.Stats().Tasks; got != n {
		t.Errorf("cloud has %d tasks, want the %d summaries", got, n)
	}
	st := r.Stats()
	if st.RawTasks != 12 || st.Summaries != n || st.Flushes != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.UpBytes >= st.RawBytes {
		t.Errorf("summarization saved nothing: raw %d, up %d", st.RawBytes, st.UpBytes)
	}
	if got := r.Pending(); got != 0 {
		t.Errorf("Pending after flush = %d, want 0", got)
	}
	if n2, err := r.FlushUp(); err != nil || n2 != 0 {
		t.Errorf("empty flush = %d, %v", n2, err)
	}
}

// TestFlushDeferredThenRetried: with the cloud unreachable the flush
// defers (nothing advances); once the link heals the same window ships
// and lands byte-identical to a region that never deferred.
func TestFlushDeferredThenRetried(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tasks := synthTasks(rng, 10, 4)

	run := func(defer1 bool) []byte {
		addr, cloud := startCloud(t, nil)
		var cut atomic.Bool
		r := startRegion(t, Config{
			Name: "r0",
			Dial: func() (net.Conn, error) {
				if cut.Load() {
					return nil, errors.New("test: partitioned")
				}
				return net.DialTimeout("tcp", addr, time.Second)
			},
			Build:  dpprior.BuildOptions{Alpha: 1, MaxComponents: 3, Seed: 11},
			Seed:   42,
			Logger: telemetry.Discard(),
		})
		for _, task := range tasks {
			if _, err := r.Server().AddTask(task); err != nil {
				t.Fatal(err)
			}
		}
		if defer1 {
			cut.Store(true)
			if _, err := r.FlushUp(); err == nil {
				t.Fatal("flush over a dead link succeeded")
			}
			if r.Stats().Deferred != 1 {
				t.Fatalf("deferred not counted: %+v", r.Stats())
			}
			cut.Store(false)
		}
		if _, err := r.FlushUp(); err != nil {
			t.Fatal(err)
		}
		cloud.WaitCaughtUp()
		p, _, err := cloud.Prior()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	direct := run(false)
	deferred := run(true)
	if !bytes.Equal(direct, deferred) {
		t.Error("cloud prior differs between a direct flush and a deferred+retried one")
	}
}

// TestSyncDownAbsorbsCloudComponents: a down-sync captures the cloud
// prior and injects its components locally as pseudo-tasks that are
// excluded from the next upward flush — cloud knowledge never echoes
// back up.
func TestSyncDownAbsorbsCloudComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	addr, cloud := startCloud(t, synthTasks(rng, 6, 4))
	r := startRegion(t, Config{
		Name:      "r0",
		CloudAddr: addr,
		Build:     dpprior.BuildOptions{Alpha: 1, MaxComponents: 3, Seed: 11},
		Seed:      42,
		Logger:    telemetry.Discard(),
	})
	if err := r.SyncDown(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().DownSyncs != 1 {
		t.Fatalf("down-sync not counted: %+v", r.Stats())
	}
	// The pseudo-tasks are in the local store (so the served prior
	// reflects cloud knowledge) but none of them is flushable.
	r.Server().WaitCaughtUp()
	if tasks, _, _ := r.Server().Store().ViewRecords(); len(tasks) == 0 {
		t.Fatal("down-sync absorbed nothing")
	}
	if got := r.Pending(); got != 0 {
		t.Fatalf("pseudo-tasks are flushable: Pending = %d", got)
	}
	before := cloud.Stats().Tasks
	if n, err := r.FlushUp(); err != nil || n != 0 {
		t.Fatalf("flush after pure down-sync = %d, %v; want 0", n, err)
	}
	if got := cloud.Stats().Tasks; got != before {
		t.Errorf("down-synced knowledge echoed back: cloud tasks %d → %d", before, got)
	}
	// A second sync with an unchanged cloud is a version handshake.
	if err := r.SyncDown(); err != nil {
		t.Fatal(err)
	}
}

// TestGossipAbsorbsPeerComponents: a region cut off from the cloud
// absorbs a peer region's components, serves a prior that reflects
// them, and still never flushes them upward.
func TestGossipAbsorbsPeerComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cloudAddr, cloud := startCloud(t, nil)

	// Peer region with local knowledge and a listener.
	peer := startRegion(t, Config{
		Name:      "peer",
		CloudAddr: cloudAddr,
		Build:     dpprior.BuildOptions{Alpha: 1, MaxComponents: 3, Seed: 11},
		Seed:      43,
		Logger:    telemetry.Discard(),
	})
	for _, task := range synthTasks(rng, 8, 4) {
		if _, err := peer.Server().AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	peer.Server().WaitCaughtUp()
	addrCh := make(chan string, 1)
	go peer.ListenAndServe("127.0.0.1:0", addrCh)
	peerAddr := <-addrCh

	r := startRegion(t, Config{
		Name:      "r1",
		CloudAddr: cloudAddr,
		Peers:     []string{peerAddr},
		Build:     dpprior.BuildOptions{Alpha: 1, MaxComponents: 3, Seed: 11},
		Seed:      44,
		Logger:    telemetry.Discard(),
	})
	n, err := r.GossipOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("gossip absorbed nothing from a warm peer")
	}
	// Absorbed components serve locally...
	r.Server().WaitCaughtUp()
	if _, _, err := r.MergedPrior(); err != nil {
		t.Fatalf("no merged prior after gossip: %v", err)
	}
	// ...but never go upward.
	if got := r.Pending(); got != 0 {
		t.Fatalf("gossiped components are flushable: Pending = %d", got)
	}
	if _, err := r.FlushUp(); err != nil {
		t.Fatal(err)
	}
	cloud.WaitCaughtUp()
	if got := cloud.Stats().Tasks; got != 0 {
		t.Errorf("gossiped knowledge reached the cloud: %d tasks", got)
	}
	// Re-gossip is idempotent: same components, nothing new absorbed.
	if n2, err := r.GossipOnce(); err != nil || n2 != 0 {
		t.Errorf("second gossip absorbed %d (err %v), want 0", n2, err)
	}
}

// TestRegionServesDevicesOverWire: a region is a real CloudServer —
// an edge client negotiates binary against it, uploads, and fetches
// the regional prior back.
func TestRegionServesDevicesOverWire(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := startRegion(t, Config{
		Name:   "r0",
		Build:  dpprior.BuildOptions{Alpha: 1, MaxComponents: 3, Seed: 11},
		Seed:   42,
		Logger: telemetry.Discard(),
	})
	addrCh := make(chan string, 1)
	go r.ListenAndServe("127.0.0.1:0", addrCh)
	addr := <-addrCh

	c, err := edge.DialPreference(addr, time.Second, wire.PreferBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.BatchReportTasks(synthTasks(rng, 4, 3)); err != nil {
		t.Fatal(err)
	}
	r.Server().WaitCaughtUp()
	p, version, err := c.FetchPrior(3)
	if err != nil {
		t.Fatal(err)
	}
	if version == 0 || p.Dim != 3 {
		t.Fatalf("regional prior version=%d dim=%d", version, p.Dim)
	}
}
