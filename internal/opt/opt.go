// Package opt provides the first-order optimizers used by drdp's M-step
// and baselines: full-batch gradient descent with Armijo backtracking,
// proximal gradient descent for composite objectives (smooth loss plus a
// dual-norm penalty), stochastic steppers (SGD with momentum, Adam), the
// block soft-threshold proximal operator of the l2 norm, and 1-D
// golden-section minimization and bisection.
package opt

import (
	"fmt"
	"math"

	"github.com/drdp/drdp/internal/mat"
)

// Func evaluates an objective at theta and, when grad is non-nil, writes
// ∇f(theta) into grad (overwriting it). It returns f(theta).
type Func func(theta mat.Vec, grad mat.Vec) float64

// Options configures the batch minimizers. The zero value picks sensible
// defaults.
type Options struct {
	MaxIter  int     // default 500
	Tol      float64 // first-order tolerance; default 1e-6
	InitStep float64 // initial line-search step; default 1.0
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.InitStep <= 0 {
		o.InitStep = 1.0
	}
	return o
}

// Result reports the outcome of a minimization.
type Result struct {
	Theta      mat.Vec
	Value      float64
	Iterations int
	Converged  bool
	GradNorm   float64
}

// GD minimizes f by gradient descent with Armijo backtracking line search,
// starting from theta0 (which is not modified).
func GD(f Func, theta0 mat.Vec, opts Options) Result {
	o := opts.withDefaults()
	theta := mat.CloneVec(theta0)
	grad := make(mat.Vec, len(theta))
	value := f(theta, grad)
	step := o.InitStep

	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		gnorm := mat.Norm2(grad)
		if gnorm <= o.Tol {
			return Result{Theta: theta, Value: value, Iterations: iter, Converged: true, GradNorm: gnorm}
		}
		// Backtracking: find t with f(θ − t g) ≤ f(θ) − c t ‖g‖².
		const c, shrink = 1e-4, 0.5
		t := step
		trial := make(mat.Vec, len(theta))
		var trialVal float64
		accepted := false
		for ls := 0; ls < 50; ls++ {
			copy(trial, theta)
			mat.Axpy(-t, grad, trial)
			trialVal = f(trial, nil)
			if trialVal <= value-c*t*gnorm*gnorm {
				accepted = true
				break
			}
			t *= shrink
		}
		if !accepted {
			// No descent direction progress possible at machine precision.
			return Result{Theta: theta, Value: value, Iterations: iter, Converged: false, GradNorm: gnorm}
		}
		copy(theta, trial)
		value = f(theta, grad)
		// Mild step growth so a too-small initial step recovers.
		step = math.Min(t*2, o.InitStep*64)
	}
	return Result{Theta: theta, Value: value, Iterations: iter, Converged: false, GradNorm: mat.Norm2(grad)}
}

// Prox is a proximal operator: it maps theta in place to
// argmin_u  g(u) + ‖u − theta‖²/(2 step)  for its penalty g.
type Prox func(theta mat.Vec, step float64)

// ProxGD minimizes the composite objective f(θ) + g(θ) where f is smooth
// (evaluated by fn) and g enters only through its proximal operator. It
// uses backtracking on the standard quadratic upper-bound criterion.
// penalty evaluates g for progress reporting; it may be nil when the
// caller does not need composite values in Result.Value.
func ProxGD(fn Func, prox Prox, penalty func(mat.Vec) float64, theta0 mat.Vec, opts Options) Result {
	o := opts.withDefaults()
	theta := mat.CloneVec(theta0)
	grad := make(mat.Vec, len(theta))
	fval := fn(theta, grad)
	step := o.InitStep

	total := func(v float64, th mat.Vec) float64 {
		if penalty == nil {
			return v
		}
		return v + penalty(th)
	}

	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		t := step
		trial := make(mat.Vec, len(theta))
		var trialF float64
		accepted := false
		for ls := 0; ls < 50; ls++ {
			copy(trial, theta)
			mat.Axpy(-t, grad, trial)
			prox(trial, t)
			trialF = fn(trial, nil)
			// Quadratic upper bound: f(u) ≤ f(θ) + ∇f(θ)ᵀ(u−θ) + ‖u−θ‖²/(2t).
			diff := mat.SubVec(trial, theta)
			ub := fval + mat.Dot(grad, diff) + mat.Dot(diff, diff)/(2*t)
			if trialF <= ub+1e-12 {
				accepted = true
				break
			}
			t /= 2
		}
		if !accepted {
			return Result{Theta: theta, Value: total(fval, theta), Iterations: iter, Converged: false}
		}
		moved := mat.Dist2(trial, theta)
		copy(theta, trial)
		fval = fn(theta, grad)
		step = math.Min(t*2, o.InitStep*64)
		if moved/t <= o.Tol { // generalized gradient norm
			return Result{Theta: theta, Value: total(fval, theta), Iterations: iter + 1,
				Converged: true, GradNorm: moved / t}
		}
	}
	return Result{Theta: theta, Value: total(fval, theta), Iterations: iter, Converged: false,
		GradNorm: mat.Norm2(grad)}
}

// ProxL2Block returns a Prox applying the block soft threshold of
// coef·‖θ[from:to]‖₂ to the sub-slice [from, to): the standard proximal
// operator of a group-lasso / dual-norm penalty that leaves the remaining
// coordinates (for example the bias) untouched.
func ProxL2Block(coef float64, from, to int) Prox {
	if coef < 0 {
		panic(fmt.Sprintf("opt: ProxL2Block: negative coefficient %g", coef))
	}
	return func(theta mat.Vec, step float64) {
		if coef == 0 {
			return
		}
		block := theta[from:to]
		norm := mat.Norm2(block)
		t := step * coef
		if norm <= t {
			mat.Fill(block, 0)
			return
		}
		mat.Scale(1-t/norm, block)
	}
}

// SGD is a stochastic gradient stepper with classical momentum.
// The zero value is invalid; set LR > 0.
type SGD struct {
	LR       float64 // learning rate, > 0
	Momentum float64 // in [0, 1)

	velocity mat.Vec
}

// Step applies one update θ ← θ − LR·v with v ← momentum·v + grad.
func (s *SGD) Step(theta, grad mat.Vec) {
	if s.LR <= 0 {
		panic("opt: SGD: learning rate must be positive")
	}
	if s.velocity == nil {
		s.velocity = make(mat.Vec, len(theta))
	}
	for i, g := range grad {
		s.velocity[i] = s.Momentum*s.velocity[i] + g
		theta[i] -= s.LR * s.velocity[i]
	}
}

// Adam is the Adam stochastic stepper. Zero-value fields pick the usual
// defaults (beta1=0.9, beta2=0.999, eps=1e-8); LR must be set.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	m, v mat.Vec
	t    int
}

// Step applies one Adam update in place.
func (a *Adam) Step(theta, grad mat.Vec) {
	if a.LR <= 0 {
		panic("opt: Adam: learning rate must be positive")
	}
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.m == nil {
		a.m = make(mat.Vec, len(theta))
		a.v = make(mat.Vec, len(theta))
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, g := range grad {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		theta[i] -= a.LR * (a.m[i] / bc1) / (math.Sqrt(a.v[i]/bc2) + a.Eps)
	}
}

// GoldenSection minimizes a unimodal f on [a, b].
func GoldenSection(f func(float64) float64, a, b float64, iters int) float64 {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < iters && b-a > 1e-12*(1+math.Abs(a)); i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// Bisect finds a root of monotone f on [lo, hi]; f(lo) and f(hi) must
// bracket zero. It returns the midpoint after iters halvings.
func Bisect(f func(float64) float64, lo, hi float64, iters int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("opt: Bisect: no sign change on [%g, %g]", lo, hi)
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (fhi > 0) {
			hi, fhi = mid, fm
		} else {
			lo, flo = mid, fm
		}
	}
	return (lo + hi) / 2, nil
}
