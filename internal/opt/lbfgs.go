package opt

import (
	"github.com/drdp/drdp/internal/mat"
)

// LBFGSOptions extends Options with the history length of the limited-
// memory quasi-Newton approximation.
type LBFGSOptions struct {
	Options
	// Memory is the number of (s, y) curvature pairs kept (default 8).
	Memory int
}

// LBFGS minimizes f with the limited-memory BFGS two-loop recursion and
// Armijo backtracking on the quasi-Newton direction (falling back to the
// raw gradient when the direction fails to descend). Markedly faster
// than GD on the ill-conditioned M-step objectives that arise when prior
// components are much stiffer in some directions than the data.
func LBFGS(f Func, theta0 mat.Vec, opts LBFGSOptions) Result {
	o := opts.Options.withDefaults()
	m := opts.Memory
	if m <= 0 {
		m = 8
	}
	n := len(theta0)
	theta := mat.CloneVec(theta0)
	grad := make(mat.Vec, n)
	value := f(theta, grad)

	// Ring buffers of curvature pairs.
	ss := make([]mat.Vec, 0, m)
	ys := make([]mat.Vec, 0, m)
	rhos := make([]float64, 0, m)

	dir := make(mat.Vec, n)
	alpha := make([]float64, m)
	rejected := 0 // consecutive curvature-pair rejections

	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		gnorm := mat.Norm2(grad)
		if gnorm <= o.Tol {
			return Result{Theta: theta, Value: value, Iterations: iter, Converged: true, GradNorm: gnorm}
		}

		// Two-loop recursion: dir = −H·grad.
		copy(dir, grad)
		k := len(ss)
		for i := k - 1; i >= 0; i-- {
			alpha[i] = rhos[i] * mat.Dot(ss[i], dir)
			mat.Axpy(-alpha[i], ys[i], dir)
		}
		if k > 0 {
			// Initial scaling γ = sᵀy / yᵀy of the most recent pair.
			gamma := 1 / (rhos[k-1] * mat.Dot(ys[k-1], ys[k-1]))
			mat.Scale(gamma, dir)
		}
		for i := 0; i < k; i++ {
			beta := rhos[i] * mat.Dot(ys[i], dir)
			mat.Axpy(alpha[i]-beta, ss[i], dir)
		}
		mat.Scale(-1, dir)

		// Descent check; fall back to steepest descent if violated (can
		// happen with stale curvature on non-smooth objectives).
		dd := mat.Dot(dir, grad)
		if dd >= 0 {
			copy(dir, grad)
			mat.Scale(-1, dir)
			dd = -gnorm * gnorm
		}

		// Armijo backtracking along dir.
		const c, shrink = 1e-4, 0.5
		t := 1.0
		trial := make(mat.Vec, n)
		var trialVal float64
		accepted := false
		backtracks := 0
		for ls := 0; ls < 50; ls++ {
			copy(trial, theta)
			mat.Axpy(t, dir, trial)
			trialVal = f(trial, nil)
			if trialVal <= value+c*t*dd {
				accepted = true
				break
			}
			t *= shrink
			backtracks++
		}
		if !accepted {
			return Result{Theta: theta, Value: value, Iterations: iter, Converged: false, GradNorm: gnorm}
		}
		// Heavy backtracking signals a poor quasi-Newton model (stale
		// curvature in a strongly nonlinear region): reset the memory so
		// the next iteration restarts from steepest descent.
		if backtracks >= 8 {
			ss, ys, rhos = ss[:0], ys[:0], rhos[:0]
		}

		newGrad := make(mat.Vec, n)
		newVal := f(trial, newGrad)
		s := mat.SubVec(trial, theta)
		y := mat.SubVec(newGrad, grad)
		sy := mat.Dot(s, y)
		// Keep the pair only when curvature is positive (BFGS condition).
		if sy > 1e-12*mat.Norm2(s)*mat.Norm2(y) {
			if len(ss) == m {
				ss = ss[1:]
				ys = ys[1:]
				rhos = rhos[1:]
			}
			ss = append(ss, s)
			ys = append(ys, y)
			rhos = append(rhos, 1/sy)
			rejected = 0
		} else {
			// Negative curvature along the step: the quadratic model is
			// wrong here. Repeated rejections would freeze the memory on
			// a stale (often tiny) direction, so reset to a steepest-
			// descent restart.
			rejected++
			if rejected >= 2 {
				ss, ys, rhos = ss[:0], ys[:0], rhos[:0]
				rejected = 0
			}
		}
		copy(theta, trial)
		copy(grad, newGrad)
		value = newVal
	}
	return Result{Theta: theta, Value: value, Iterations: iter, Converged: false, GradNorm: mat.Norm2(grad)}
}
