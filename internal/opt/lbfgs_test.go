package opt

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func TestLBFGSQuadratic(t *testing.T) {
	c := mat.Vec{1, -2, 3, 0.5}
	f := quadratic(c, mat.Vec{1, 10, 100, 0.1}) // badly conditioned
	res := LBFGS(f, make(mat.Vec, 4), LBFGSOptions{Options: Options{Tol: 1e-9}})
	if !res.Converged {
		t.Fatalf("LBFGS did not converge: %+v", res)
	}
	if mat.Dist2(res.Theta, c) > 1e-5 {
		t.Errorf("solution %v, want %v", res.Theta, c)
	}
}

func TestLBFGSRosenbrockFasterThanGD(t *testing.T) {
	rosen := func(theta, grad mat.Vec) float64 {
		x, y := theta[0], theta[1]
		v := (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
		if grad != nil {
			grad[0] = -2*(1-x) - 400*x*(y-x*x)
			grad[1] = 200 * (y - x*x)
		}
		return v
	}
	lb := LBFGS(rosen, mat.Vec{-1.2, 1}, LBFGSOptions{Options: Options{MaxIter: 500, Tol: 1e-8}})
	if lb.Value > 1e-10 {
		t.Errorf("LBFGS Rosenbrock value %v after %d iters", lb.Value, lb.Iterations)
	}
	gd := GD(rosen, mat.Vec{-1.2, 1}, Options{MaxIter: 500, Tol: 1e-8})
	if lb.Iterations >= gd.Iterations && gd.Converged {
		t.Errorf("LBFGS (%d iters) not faster than GD (%d iters)", lb.Iterations, gd.Iterations)
	}
}

func TestLBFGSLogisticLikeObjective(t *testing.T) {
	// Smooth convex logistic-style objective with an l2 term; LBFGS and
	// GD must agree on the optimum.
	rng := rand.New(rand.NewSource(60))
	const n, d = 80, 6
	xs := make([]mat.Vec, n)
	ys := make([]float64, n)
	wstar := make(mat.Vec, d)
	for j := range wstar {
		wstar[j] = rng.NormFloat64()
	}
	for i := range xs {
		xs[i] = make(mat.Vec, d)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
		if mat.Dot(wstar, xs[i]) > 0 {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	f := func(theta, grad mat.Vec) float64 {
		if grad != nil {
			mat.Fill(grad, 0)
		}
		var v float64
		for i := range xs {
			m := ys[i] * mat.Dot(theta, xs[i])
			// log(1+e^-m) with stable computation and gradient.
			var loss, sig float64
			if m > 30 {
				loss, sig = 0, 0
			} else if m < -30 {
				loss, sig = -m, 1
			} else {
				sig = 1 / (1 + math.Exp(m))
				loss = math.Log(1 + math.Exp(-m))
			}
			v += loss / n
			if grad != nil {
				mat.Axpy(-ys[i]*sig/n, xs[i], grad)
			}
		}
		v += 0.05 * mat.Dot(theta, theta)
		if grad != nil {
			mat.Axpy(0.1, theta, grad)
		}
		return v
	}
	lb := LBFGS(f, make(mat.Vec, d), LBFGSOptions{Options: Options{Tol: 1e-8}})
	gd := GD(f, make(mat.Vec, d), Options{Tol: 1e-8, MaxIter: 5000})
	if mat.Dist2(lb.Theta, gd.Theta) > 1e-4 {
		t.Errorf("LBFGS %v vs GD %v", lb.Theta, gd.Theta)
	}
}

func TestLBFGSRespectsMaxIter(t *testing.T) {
	f := quadratic(mat.Vec{100}, mat.Vec{0.0001})
	res := LBFGS(f, mat.Vec{0}, LBFGSOptions{Options: Options{MaxIter: 2}})
	if res.Iterations > 2 {
		t.Errorf("ran %d iterations", res.Iterations)
	}
}
