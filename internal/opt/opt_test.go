package opt

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// quadratic returns f(x) = ½ (x−c)ᵀ diag(d) (x−c) and its gradient.
func quadratic(c mat.Vec, d mat.Vec) Func {
	return func(theta, grad mat.Vec) float64 {
		var v float64
		for i := range theta {
			diff := theta[i] - c[i]
			v += 0.5 * d[i] * diff * diff
			if grad != nil {
				grad[i] = d[i] * diff
			}
		}
		return v
	}
}

func TestGDQuadratic(t *testing.T) {
	c := mat.Vec{1, -2, 3}
	f := quadratic(c, mat.Vec{1, 4, 0.5})
	res := GD(f, mat.Vec{0, 0, 0}, Options{})
	if !res.Converged {
		t.Fatalf("GD did not converge: %+v", res)
	}
	if mat.Dist2(res.Theta, c) > 1e-4 {
		t.Errorf("GD solution %v, want %v", res.Theta, c)
	}
	if res.Value > 1e-8 {
		t.Errorf("GD final value %v", res.Value)
	}
}

func TestGDRosenbrock(t *testing.T) {
	// Harder nonconvex-valley objective; GD should still make good progress.
	f := func(theta, grad mat.Vec) float64 {
		x, y := theta[0], theta[1]
		v := (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
		if grad != nil {
			grad[0] = -2*(1-x) - 400*x*(y-x*x)
			grad[1] = 200 * (y - x*x)
		}
		return v
	}
	res := GD(f, mat.Vec{-1, 1}, Options{MaxIter: 20000, Tol: 1e-5})
	if res.Value > 1e-3 {
		t.Errorf("Rosenbrock value after GD = %v (theta %v)", res.Value, res.Theta)
	}
}

func TestGDRespectsMaxIter(t *testing.T) {
	// Low curvature: each unit step moves only 1% of the way, so three
	// iterations cannot reach the optimum.
	f := quadratic(mat.Vec{100}, mat.Vec{0.01})
	res := GD(f, mat.Vec{0}, Options{MaxIter: 3})
	if res.Iterations > 3 {
		t.Errorf("ran %d iterations with MaxIter=3", res.Iterations)
	}
	if res.Converged {
		t.Error("cannot have converged in 3 iterations from that far")
	}
}

func TestGDDoesNotMutateStart(t *testing.T) {
	start := mat.Vec{5, 5}
	GD(quadratic(mat.Vec{0, 0}, mat.Vec{1, 1}), start, Options{MaxIter: 10})
	if start[0] != 5 || start[1] != 5 {
		t.Error("GD mutated its starting point")
	}
}

func TestProxGDLasso(t *testing.T) {
	// minimize ½‖x − a‖² + coef·‖x‖₂ (block prox on the whole vector).
	// Solution: block soft threshold of a.
	a := mat.Vec{3, 4} // ‖a‖ = 5
	coef := 2.5
	f := func(theta, grad mat.Vec) float64 {
		var v float64
		for i := range theta {
			d := theta[i] - a[i]
			v += 0.5 * d * d
			if grad != nil {
				grad[i] = d
			}
		}
		return v
	}
	prox := ProxL2Block(coef, 0, 2)
	res := ProxGD(f, prox, func(th mat.Vec) float64 { return coef * mat.Norm2(th) },
		mat.Vec{0, 0}, Options{MaxIter: 2000, Tol: 1e-10})
	// Analytic solution: a scaled by (1 − coef/‖a‖) = 0.5.
	want := mat.Vec{1.5, 2}
	if mat.Dist2(res.Theta, want) > 1e-5 {
		t.Errorf("prox solution %v, want %v", res.Theta, want)
	}
}

func TestProxGDShrinksToZero(t *testing.T) {
	// Penalty dominates: solution is exactly zero.
	a := mat.Vec{0.5, 0.5}
	f := func(theta, grad mat.Vec) float64 {
		var v float64
		for i := range theta {
			d := theta[i] - a[i]
			v += 0.5 * d * d
			if grad != nil {
				grad[i] = d
			}
		}
		return v
	}
	res := ProxGD(f, ProxL2Block(10, 0, 2), nil, mat.Vec{1, 1}, Options{MaxIter: 500})
	if mat.Norm2(res.Theta) > 1e-8 {
		t.Errorf("expected exact zero, got %v", res.Theta)
	}
}

func TestProxL2BlockLeavesBiasAlone(t *testing.T) {
	theta := mat.Vec{3, 4, 7} // block = first two, bias = last
	ProxL2Block(2.5, 0, 2)(theta, 1)
	if theta[2] != 7 {
		t.Errorf("bias changed: %v", theta)
	}
	if math.Abs(theta[0]-1.5) > 1e-12 || math.Abs(theta[1]-2) > 1e-12 {
		t.Errorf("block shrink wrong: %v", theta)
	}
}

func TestProxL2BlockZeroCoefIsIdentity(t *testing.T) {
	theta := mat.Vec{1, 2, 3}
	ProxL2Block(0, 0, 3)(theta, 5)
	if theta[0] != 1 || theta[1] != 2 || theta[2] != 3 {
		t.Errorf("zero-coef prox changed theta: %v", theta)
	}
}

func TestProxL2BlockPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative coefficient did not panic")
		}
	}()
	ProxL2Block(-1, 0, 1)
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	theta := mat.Vec{10, -10}
	s := &SGD{LR: 0.1, Momentum: 0.5}
	grad := make(mat.Vec, 2)
	for i := 0; i < 500; i++ {
		grad[0], grad[1] = theta[0], theta[1]
		s.Step(theta, grad)
	}
	if mat.Norm2(theta) > 1e-6 {
		t.Errorf("SGD did not converge: %v", theta)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	theta := mat.Vec{10, -10}
	a := &Adam{LR: 0.3}
	grad := make(mat.Vec, 2)
	for i := 0; i < 2000; i++ {
		grad[0], grad[1] = theta[0], 100*theta[1] // badly conditioned
		a.Step(theta, grad)
	}
	if mat.Norm2(theta) > 1e-3 {
		t.Errorf("Adam did not converge: %v", theta)
	}
}

func TestSteppersPanicWithoutLR(t *testing.T) {
	for name, fn := range map[string]func(){
		"sgd":  func() { (&SGD{}).Step(mat.Vec{1}, mat.Vec{1}) },
		"adam": func() { (&Adam{}).Step(mat.Vec{1}, mat.Vec{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s without LR did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGoldenSection(t *testing.T) {
	min := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 200)
	if math.Abs(min-3) > 1e-9 {
		t.Errorf("GoldenSection = %v, want 3", min)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x*x - 8 }, 0, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-2) > 1e-9 {
		t.Errorf("Bisect = %v, want 2", root)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 10); err == nil {
		t.Error("Bisect without bracket should error")
	}
	// Exact endpoint roots.
	if r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 10); err != nil || r != 0 {
		t.Errorf("Bisect endpoint root: %v, %v", r, err)
	}
}

func TestGDMatchesProxGDWithoutPenalty(t *testing.T) {
	// With a zero penalty the two algorithms should find the same optimum.
	rng := rand.New(rand.NewSource(50))
	c := mat.Vec{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	f := quadratic(c, mat.Vec{1, 2, 3})
	g := GD(f, mat.Vec{0, 0, 0}, Options{Tol: 1e-10})
	p := ProxGD(f, func(mat.Vec, float64) {}, nil, mat.Vec{0, 0, 0}, Options{Tol: 1e-10})
	if mat.Dist2(g.Theta, p.Theta) > 1e-6 {
		t.Errorf("GD %v vs ProxGD %v", g.Theta, p.Theta)
	}
}
