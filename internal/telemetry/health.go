package telemetry

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// HealthFunc reports one component's readiness: nil means healthy. It
// must be safe for concurrent use and cheap — /healthz calls every
// registered check on each probe.
type HealthFunc func() error

var health struct {
	mu     sync.Mutex
	next   int
	checks map[int]healthEntry
}

type healthEntry struct {
	name string
	fn   HealthFunc
}

// RegisterHealth adds a named readiness check to the process-wide
// /healthz endpoint and returns a function that removes it (call it from
// the component's Close). Multiple checks may share a name; each
// registration is tracked separately.
func RegisterHealth(name string, fn HealthFunc) (unregister func()) {
	health.mu.Lock()
	defer health.mu.Unlock()
	if health.checks == nil {
		health.checks = make(map[int]healthEntry)
	}
	tok := health.next
	health.next++
	health.checks[tok] = healthEntry{name: name, fn: fn}
	return func() {
		health.mu.Lock()
		defer health.mu.Unlock()
		delete(health.checks, tok)
	}
}

// HealthErrors runs every registered check and returns the failing ones
// by name (empty map = ready). Exposed for tests and embedders.
func HealthErrors() map[string]error {
	health.mu.Lock()
	entries := make([]healthEntry, 0, len(health.checks))
	for _, e := range health.checks {
		entries = append(entries, e)
	}
	health.mu.Unlock()
	out := make(map[string]error)
	for _, e := range entries {
		// Checks run outside the lock so a slow check cannot block
		// registration, and a check may itself register/unregister.
		if err := e.fn(); err != nil {
			out[e.name] = err
		}
	}
	return out
}

// healthHandler answers /healthz: 200 "ok" when every registered check
// passes, 503 listing the failing checks otherwise. No registered checks
// means ready (a bare telemetry process has nothing to wait for).
func healthHandler(w http.ResponseWriter, _ *http.Request) {
	failing := HealthErrors()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(failing) == 0 {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	names := make([]string, 0, len(failing))
	for name := range failing {
		names = append(names, name)
	}
	sort.Strings(names)
	w.WriteHeader(http.StatusServiceUnavailable)
	for _, name := range names {
		fmt.Fprintf(w, "%s: %v\n", name, failing[name])
	}
}
