package telemetry

import (
	"encoding/json"
	"expvar"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns an http.Handler serving r in Prometheus text format.
// A nil r serves the Default registry.
func Handler(r *Registry) http.Handler {
	if r == nil {
		r = Default
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

var publishOnce sync.Once

// publishExpvar exposes the Default registry under the expvar key
// "drdp" so /debug/vars carries the same numbers as /metrics.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("drdp", expvar.Func(func() any {
			return jsonSafeSnapshot(Default.Snapshot())
		}))
	})
}

// jsonSafeSnapshot converts a Values into a json.Marshal-able view:
// JSON has no NaN/Inf, so non-finite floats (e.g. the NaN markers on
// cleared EM-trace gauges) are rendered as strings.
func jsonSafeSnapshot(v Values) map[string]any {
	num := func(f float64) any {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return formatValue(f)
		}
		return f
	}
	counters := make(map[string]any, len(v.Counters))
	for k, f := range v.Counters {
		counters[k] = num(f)
	}
	gauges := make(map[string]any, len(v.Gauges))
	for k, f := range v.Gauges {
		gauges[k] = num(f)
	}
	hists := make(map[string]any, len(v.Histograms))
	for k, h := range v.Histograms {
		hv := map[string]any{
			"bounds": h.Bounds,
			"counts": h.Counts,
			"sum":    num(h.Sum),
			"count":  h.Count,
		}
		// Quantiles of an empty histogram are undefined (NaN sentinel);
		// omit the keys rather than shipping a bogus 0 or a "NaN" string
		// a dashboard would coerce to zero.
		if h.Count > 0 {
			hv["p50"] = num(h.Quantile(0.5))
			hv["p99"] = num(h.Quantile(0.99))
		}
		hists[k] = hv
	}
	return map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}

// NewMux returns a mux with the full observability surface mounted:
//
//	/metrics      Prometheus text exposition of r (nil = Default)
//	/tracez       flight-recorder traces (HTML, JSON, per-trace trees)
//	/healthz      readiness: 200 when every RegisterHealth check passes
//	/debug/vars   expvar JSON (includes a "drdp" snapshot of Default)
//	/debug/pprof  the standard pprof index, profiles and traces
//
// The mux is what Serve binds; embedders can also mount it themselves.
func NewMux(r *Registry) *http.ServeMux {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/tracez", TracezHandler(nil))
	mux.HandleFunc("/healthz", healthHandler)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{
			"metrics": "/metrics",
			"tracez":  "/tracez",
			"healthz": "/healthz",
			"expvar":  "/debug/vars",
			"pprof":   "/debug/pprof/",
		})
	})
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":9090") in a
// background goroutine and returns the server plus the bound address
// (useful with ":0"). Callers own shutdown via srv.Close. A nil r
// serves the Default registry.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
