package telemetry

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHealthRegisterAndUnregister(t *testing.T) {
	failing := errors.New("not ready")
	stop := RegisterHealth("widget", func() error { return failing })
	stopOK := RegisterHealth("gadget", func() error { return nil })
	defer stopOK()

	errs := HealthErrors()
	if errs["widget"] == nil {
		t.Error("failing check not reported")
	}
	if _, ok := errs["gadget"]; ok {
		t.Error("healthy check reported as failing")
	}

	stop()
	if errs := HealthErrors(); errs["widget"] != nil {
		t.Error("unregistered check still reported")
	}
}

func TestHealthzEndpoint(t *testing.T) {
	mux := NewMux(nil)

	get := func() (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/healthz", nil)
		mux.ServeHTTP(rec, req)
		body, err := io.ReadAll(rec.Result().Body)
		if err != nil {
			t.Fatal(err)
		}
		return rec.Code, string(body)
	}

	code, body := get()
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("ready probe: %d %q", code, body)
	}

	stop := RegisterHealth("stuck-worker", func() error {
		return errors.New("wedged")
	})
	code, body = get()
	if code != 503 {
		t.Errorf("failing probe status %d, want 503", code)
	}
	if !strings.Contains(body, "stuck-worker") || !strings.Contains(body, "wedged") {
		t.Errorf("failing probe body %q lacks check name and error", body)
	}

	stop()
	if code, _ := get(); code != 200 {
		t.Errorf("probe still failing after unregister: %d", code)
	}
}
