package telemetry

import (
	"sync"
	"time"
)

// Event is one structured occurrence worth keeping for post-hoc
// inspection: a breaker transition, a degradation decision, an EM fit
// summary. Events complement metrics: metrics aggregate, events keep
// the last few individual occurrences with their fields.
type Event struct {
	Time   time.Time
	Layer  string // "core", "edge-client", "edge-server", "sim", ...
	Kind   string // e.g. "breaker-transition", "fit-done"
	Fields map[string]any
}

// EventLog is a bounded ring buffer of Events. Writes never block and
// never allocate beyond the fields map the caller provides; once full,
// the oldest event is overwritten. The zero value is unusable; use
// NewEventLog.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count int
	total uint64
}

// NewEventLog returns a ring holding up to capacity events
// (capacity < 1 is clamped to 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Events is the process-wide event ring the standard instrumentation
// records into.
var Events = NewEventLog(256)

// Record appends an event. A zero Time is stamped with time.Now.
func (e *EventLog) Record(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	e.mu.Lock()
	e.buf[e.next] = ev
	e.next = (e.next + 1) % len(e.buf)
	if e.count < len(e.buf) {
		e.count++
	}
	e.total++
	e.mu.Unlock()
}

// RecordKV is Record with inline key/value pairs: RecordKV("edge-client",
// "breaker-transition", "from", "closed", "to", "open"). A trailing odd
// key is dropped.
func (e *EventLog) RecordKV(layer, kind string, kv ...any) {
	var fields map[string]any
	if len(kv) >= 2 {
		fields = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			k, ok := kv[i].(string)
			if !ok {
				continue
			}
			fields[k] = kv[i+1]
		}
	}
	e.Record(Event{Layer: layer, Kind: kind, Fields: fields})
}

// Recent returns up to n most-recent events, oldest first. n <= 0
// returns all buffered events.
func (e *EventLog) Recent(n int) []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n <= 0 || n > e.count {
		n = e.count
	}
	out := make([]Event, n)
	start := e.next - n
	if start < 0 {
		start += len(e.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = e.buf[(start+i)%len(e.buf)]
	}
	return out
}

// Total returns how many events have ever been recorded (including
// ones that have rotated out of the ring).
func (e *EventLog) Total() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}
