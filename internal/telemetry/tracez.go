package telemetry

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/trace"
)

// Exemplar links a latency histogram to one concrete recorded trace: the
// slowest recently traced request that fed the histogram. It is the
// bridge from "p99 looks bad" on /metrics to "here is a span tree of one
// such request" on /tracez.
type Exemplar struct {
	Histogram string    `json:"histogram"`
	Trace     string    `json:"trace"`
	Seconds   float64   `json:"seconds"`
	At        time.Time `json:"at"`
}

// exemplarTTL ages out a slow exemplar so a single historic outlier does
// not shadow current behavior forever.
const exemplarTTL = time.Minute

var (
	exemplarMu sync.Mutex
	exemplars  = map[string]Exemplar{}
)

// RecordExemplar offers traceID as the exemplar for histogram hist. The
// slowest observation wins until it ages past exemplarTTL; untraced
// observations (empty ID) are ignored.
func RecordExemplar(hist, traceID string, seconds float64) {
	if traceID == "" {
		return
	}
	exemplarMu.Lock()
	cur, ok := exemplars[hist]
	if !ok || seconds >= cur.Seconds || time.Since(cur.At) > exemplarTTL {
		exemplars[hist] = Exemplar{Histogram: hist, Trace: traceID, Seconds: seconds, At: time.Now()}
	}
	exemplarMu.Unlock()
}

// Exemplars snapshots the current histogram→trace exemplars, sorted by
// histogram name.
func Exemplars() []Exemplar {
	exemplarMu.Lock()
	out := make([]Exemplar, 0, len(exemplars))
	for _, e := range exemplars {
		out = append(out, e)
	}
	exemplarMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Histogram < out[j].Histogram })
	return out
}

// tracezSnapshot is the /tracez?format=json document: the flight
// recorder plus the histogram exemplars pointing into it.
type tracezSnapshot struct {
	trace.Snapshot
	SampleRate float64    `json:"sample_rate"`
	Exemplars  []Exemplar `json:"exemplars,omitempty"`
}

// TracezHandler serves the flight recorder of t (nil = trace.Default):
//
//	/tracez                     HTML: stats, notable + recent traces
//	/tracez?format=json         the full snapshot as JSON
//	/tracez?trace=<hexid>       one trace as an ASCII span tree
//	/tracez?trace=<id>&format=json  the same trace's dumps as JSON
func TracezHandler(t *trace.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tr := t
		if tr == nil {
			tr = trace.Default
		}
		q := req.URL.Query()
		if id := q.Get("trace"); id != "" {
			u, err := strconv.ParseUint(id, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			dumps := tr.Find(trace.TraceID(u))
			if len(dumps) == 0 {
				http.Error(w, "trace not retained", http.StatusNotFound)
				return
			}
			if q.Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				_ = json.NewEncoder(w).Encode(dumps)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, td := range dumps {
				fmt.Fprintln(w, td.Tree())
			}
			return
		}
		snap := tracezSnapshot{
			Snapshot:   tr.Snapshot(),
			SampleRate: tr.SampleRate(),
			Exemplars:  Exemplars(),
		}
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(snap)
			return
		}
		writeTracezHTML(w, snap)
	})
}

func writeTracezHTML(w http.ResponseWriter, snap tracezSnapshot) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><html><head><title>drdp tracez</title><style>
body{font-family:monospace;margin:1.5em}table{border-collapse:collapse;margin:0.5em 0}
td,th{border:1px solid #999;padding:2px 8px;text-align:left}
.err{color:#b00}.note{color:#850}h2{margin-top:1.2em}</style></head><body>
<h1>drdp flight recorder</h1>`)
	st := snap.Stats
	fmt.Fprintf(w, "<p>sample-rate %g · started %d · sampled %d · joined %d · completed %d · notable %d · spans-dropped %d</p>\n",
		snap.SampleRate, st.Started, st.Sampled, st.Joined, st.Completed, st.Notable, st.SpansDropped)
	if len(snap.Exemplars) > 0 {
		fmt.Fprint(w, "<h2>latency exemplars</h2><table><tr><th>histogram</th><th>seconds</th><th>trace</th></tr>\n")
		for _, e := range snap.Exemplars {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%.6f</td><td><a href=\"/tracez?trace=%s\">%s</a></td></tr>\n",
				html.EscapeString(e.Histogram), e.Seconds, e.Trace, e.Trace)
		}
		fmt.Fprint(w, "</table>\n")
	}
	table := func(title string, tds []*trace.TraceDump) {
		fmt.Fprintf(w, "<h2>%s (%d)</h2>", title, len(tds))
		if len(tds) == 0 {
			fmt.Fprint(w, "<p>none</p>\n")
			return
		}
		fmt.Fprint(w, "<table><tr><th>trace</th><th>root</th><th>dur</th><th>spans</th><th>flags</th></tr>\n")
		for i := len(tds) - 1; i >= 0; i-- { // newest first
			td := tds[i]
			flags := ""
			if td.Err {
				flags += `<span class=err>ERROR</span> `
			}
			if td.Pinned {
				flags += `<span class=note>pinned</span> `
			} else if td.Notable {
				flags += `<span class=note>slow</span> `
			}
			fmt.Fprintf(w, "<tr><td><a href=\"/tracez?trace=%s\">%s</a></td><td>%s</td><td>%s</td><td>%d</td><td>%s</td></tr>\n",
				td.Trace, td.Trace, html.EscapeString(td.Name), td.Dur.Round(time.Microsecond), len(td.Spans), flags)
		}
		fmt.Fprint(w, "</table>\n")
	}
	table("notable traces", snap.Notable)
	table("recent traces", snap.Recent)
	fmt.Fprint(w, "</body></html>\n")
}
