// Package telemetry is drdp's observability layer: an allocation-light,
// dependency-free metrics registry (atomic counters, gauges and streaming
// histograms with quantile estimation), Prometheus-text / expvar / pprof
// exposition over HTTP, a structured-event ring buffer, and the slog
// plumbing the transport and training layers log through.
//
// Metric names follow the convention drdp_<layer>_<name>_<unit>
// (see DESIGN.md): the layer is the package that emits the metric
// (core, edge_client, edge_server, sim, ...), the unit suffix is
// _total for counters, _seconds/_bytes for quantities, and bare names
// for gauges. The standard instrument set lives in instruments.go; all
// of it registers against Default so any drdp process exposes the full
// vocabulary (at zero) from its first scrape.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {Key: "kind", Value: "get-prior"}).
// Instruments with the same name but different labels are distinct time
// series within one metric family.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates instrument types within a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// instrument is the common surface of Counter, Gauge and Histogram that
// the registry needs for exposition.
type instrument interface {
	labelString() string // rendered `{k="v",...}` or ""
}

// family groups all instruments sharing one metric name.
type family struct {
	name string
	kind kind

	mu       sync.Mutex
	children map[string]instrument
	order    []instrument // insertion order for stable exposition
}

// Registry holds metric families and renders them for exposition. The
// zero value is not usable; call NewRegistry. All methods are safe for
// concurrent use, and instrument handles (Counter etc.) are safe to
// update from any goroutine without further synchronization.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	helps    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		helps:    make(map[string]string),
	}
}

// Default is the process-wide registry the standard drdp instruments
// register against and that Snapshot()/Handler default to.
var Default = NewRegistry()

// familyFor returns (creating if needed) the family for name, enforcing
// that one name maps to one instrument kind. A kind clash is a
// programming error (two call sites disagree about what the metric is)
// and panics, mirroring AddRow in package experiment.
func (r *Registry) familyFor(name string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, children: make(map[string]instrument)}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic("telemetry: metric " + name + " registered as " + f.kind.String() + ", requested as " + k.String())
	}
	return f
}

// child returns the existing instrument for the label set or stores and
// returns fresh (built by mk).
func (f *family) child(labels []Label, mk func(ls string) instrument) instrument {
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if in, ok := f.children[ls]; ok {
		return in
	}
	in := mk(ls)
	f.children[ls] = in
	f.order = append(f.order, in)
	return in
}

// Counter returns the counter for name+labels, creating it on first use.
// Repeated calls with the same name and labels return the same handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	f := r.familyFor(name, kindCounter)
	return f.child(labels, func(ls string) instrument {
		return &Counter{labels: ls}
	}).(*Counter)
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	f := r.familyFor(name, kindGauge)
	return f.child(labels, func(ls string) instrument {
		return &Gauge{labels: ls}
	}).(*Gauge)
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds (nil = DefBuckets) on first use. Bounds are
// sorted and deduplicated; an implicit +Inf bucket is always appended.
// Bounds are fixed at first creation: later calls reuse the existing
// histogram regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	f := r.familyFor(name, kindHistogram)
	return f.child(labels, func(ls string) instrument {
		return newHistogram(ls, bounds)
	}).(*Histogram)
}

// SetHelp attaches a HELP string to the metric family, emitted in the
// Prometheus exposition. Help may be declared before or after the first
// instrument registers under the name.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helps[name] = help
}

// helpFor returns the HELP string for a family name, if declared.
func (r *Registry) helpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.helps[name]
}

// sortedFamilies snapshots the family list ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// instruments snapshots a family's children in insertion order.
func (f *family) instruments() []instrument {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]instrument(nil), f.order...)
}

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern — the allocation-free primitive under counters and gauges.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) add(d float64) {
	for {
		old := a.bits.Load()
		cur := math.Float64frombits(old)
		if a.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically non-decreasing metric. The zero value is
// usable but unregistered; obtain counters from a Registry.
type Counter struct {
	labels string
	val    atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.val.add(1) }

// Add adds delta; negative or NaN deltas are ignored (counters only go
// up).
func (c *Counter) Add(delta float64) {
	if delta < 0 || math.IsNaN(delta) {
		return
	}
	c.val.add(delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.val.load() }

func (c *Counter) labelString() string { return c.labels }

// Gauge is a metric that can go up and down (state, sizes, last-seen
// values).
type Gauge struct {
	labels string
	val    atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.val.store(v) }

// Add adjusts the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta float64) { g.val.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.load() }

func (g *Gauge) labelString() string { return g.labels }

// renderLabels produces the canonical `{k="v",...}` form (keys sorted)
// or "" for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }
