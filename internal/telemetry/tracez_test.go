package telemetry

import (
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/drdp/drdp/internal/trace"
)

// TestEmptyHistogramQuantileNaN pins the empty-histogram sentinel: a
// quantile with no observations is NaN, never 0.
func TestEmptyHistogramQuantileNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_empty_seconds", nil)
	if q := h.Quantile(0.99); !math.IsNaN(q) {
		t.Fatalf("empty histogram p99 = %v, want NaN", q)
	}
	hv, ok := r.Snapshot().Histogram("test_empty_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if q := hv.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty snapshot p50 = %v, want NaN", q)
	}
}

// TestJSONSnapshotOmitsEmptyQuantiles checks the expvar/JSON view: an
// empty histogram carries no p50/p99 keys at all — a dashboard must not
// see a bogus 0 or a "NaN" string it would coerce to zero — while a
// populated one does.
func TestJSONSnapshotOmitsEmptyQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("test_cold_seconds", nil)
	warm := r.Histogram("test_warm_seconds", nil)
	warm.Observe(0.2)

	doc := jsonSafeSnapshot(r.Snapshot())
	if _, err := json.Marshal(doc); err != nil {
		t.Fatalf("snapshot not JSON-safe: %v", err)
	}
	hists := doc["histograms"].(map[string]any)
	cold := hists["test_cold_seconds"].(map[string]any)
	for _, k := range []string{"p50", "p99"} {
		if v, ok := cold[k]; ok {
			t.Errorf("empty histogram exposes %s=%v, want the key omitted", k, v)
		}
	}
	warmDoc := hists["test_warm_seconds"].(map[string]any)
	if _, ok := warmDoc["p99"]; !ok {
		t.Error("populated histogram lost its p99")
	}
}

// TestPrometheusNeverEmitsQuantileSeries guards the scrape surface: the
// exposition is buckets/sum/count only, so no scraper can ever read a
// fabricated quantile from an empty histogram.
func TestPrometheusNeverEmitsQuantileSeries(t *testing.T) {
	r := NewRegistry()
	r.Histogram("test_cold_seconds", nil)
	r.Histogram("test_warm_seconds", nil).Observe(0.3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "quantile=") {
		t.Fatalf("exposition contains a quantile series:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("exposition contains NaN:\n%s", out)
	}
	if !strings.Contains(out, `test_cold_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram lost its +Inf bucket:\n%s", out)
	}
}

// TestTracezHandler drives the /tracez surface end to end: JSON
// snapshot, HTML index, per-trace tree, and the exemplar linkage.
func TestTracezHandler(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: 1, Seed: 5, SlowThreshold: -1})
	sp := tr.StartTrace("round", trace.Int("device", 3))
	child := sp.Child("rpc report-task")
	child.Event("retry", trace.Int("attempt", 2))
	child.EndErr(errors.New("boom"))
	sp.End()
	id := sp.TraceID().String()
	RecordExemplar("drdp_edge_client_roundtrip_seconds", id, 0.25)

	h := TracezHandler(tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?format=json", nil))
	var snap struct {
		Recent    []*trace.TraceDump `json:"recent"`
		Notable   []*trace.TraceDump `json:"notable"`
		Exemplars []Exemplar         `json:"exemplars"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON snapshot: %v", err)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Trace != id {
		t.Fatalf("recent = %+v, want the one trace %s", snap.Recent, id)
	}
	if len(snap.Notable) != 1 {
		t.Fatalf("errored trace missing from the notable ring")
	}
	found := false
	for _, e := range snap.Exemplars {
		if e.Trace == id && e.Histogram == "drdp_edge_client_roundtrip_seconds" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplar not exposed: %+v", snap.Exemplars)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	htmlOut := rec.Body.String()
	if !strings.Contains(htmlOut, id) || !strings.Contains(htmlOut, "round") {
		t.Fatalf("HTML index does not list the trace:\n%s", htmlOut)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace="+id, nil))
	tree := rec.Body.String()
	if !strings.Contains(tree, "rpc report-task") || !strings.Contains(tree, "retry") {
		t.Fatalf("per-trace tree incomplete:\n%s", tree)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace=zzzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad trace id: code %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace=0000000000000001", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace: code %d, want 404", rec.Code)
	}
}

// TestRecordExemplarKeepsSlowest pins the replacement policy: within the
// TTL the slowest observation wins.
func TestRecordExemplarKeepsSlowest(t *testing.T) {
	RecordExemplar("test_hist", "aaa", 0.5)
	RecordExemplar("test_hist", "bbb", 0.1) // faster: must not displace
	RecordExemplar("test_hist", "", 9)      // untraced: ignored entirely
	for _, e := range Exemplars() {
		if e.Histogram == "test_hist" && e.Trace != "aaa" {
			t.Fatalf("faster exemplar displaced the slow one: %+v", e)
		}
	}
	RecordExemplar("test_hist", "ddd", 0.6) // slower: wins
	ok := false
	for _, e := range Exemplars() {
		if e.Histogram == "test_hist" && e.Trace == "ddd" && e.Seconds == 0.6 {
			ok = true
		}
	}
	if !ok {
		t.Fatal("slower exemplar did not win")
	}
}
