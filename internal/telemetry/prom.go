package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the
// Prometheus text exposition format (version 0.0.4): optional # HELP,
// # TYPE, then one line per series. Families are emitted in name order
// and series in registration order, so output is stable across scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if help := r.helpFor(f.name); help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, in := range f.instruments() {
			if err := writeInstrument(w, f.name, in); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeInstrument(w io.Writer, name string, in instrument) error {
	switch v := in.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, v.labels, formatValue(v.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, v.labels, formatValue(v.Value()))
		return err
	case *Histogram:
		bounds, cum, inf := v.buckets()
		for i, b := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, withLabel(v.labels, "le", formatValue(b)), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, withLabel(v.labels, "le", "+Inf"), inf); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, v.labels, formatValue(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, v.labels, v.Count())
		return err
	default:
		return nil
	}
}

// withLabel splices an extra label into an already-rendered label
// string: `{a="b"}` + le=0.5 -> `{a="b",le="0.5"}`.
func withLabel(rendered, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// HistogramValue is the exported state of one histogram series in a
// Values snapshot.
type HistogramValue struct {
	Bounds []float64 // finite upper bounds, ascending
	Counts []uint64  // cumulative counts per bound
	Sum    float64
	Count  uint64
}

// Quantile estimates the q-th quantile from the snapshot, with the same
// interpolation rule as Histogram.Quantile.
func (h HistogramValue) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) || h.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	prevCum := uint64(0)
	for i, cum := range h.Counts {
		n := float64(cum - prevCum)
		if n > 0 && float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			} else if h.Bounds[i] < 0 {
				lo = h.Bounds[i]
			}
			frac := (rank - float64(prevCum)) / n
			return lo + (h.Bounds[i]-lo)*frac
		}
		prevCum = cum
	}
	if len(h.Bounds) == 0 {
		return math.NaN()
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Delta returns the histogram's change between two snapshots of the
// same series (h later, base earlier), so quantiles can be computed
// over just the observations made in between. A zero-value base (the
// series did not exist yet) yields h unchanged.
func (h HistogramValue) Delta(base HistogramValue) HistogramValue {
	out := HistogramValue{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]uint64(nil), h.Counts...),
		Sum:    h.Sum - base.Sum,
		Count:  h.Count - base.Count,
	}
	if len(base.Counts) == len(h.Counts) {
		for i := range out.Counts {
			out.Counts[i] -= base.Counts[i]
		}
	}
	return out
}

// Values is a point-in-time copy of a registry, keyed by
// "name{labels}". It is what tests and the experiment suite assert
// against.
type Values struct {
	Counters   map[string]float64
	Gauges     map[string]float64
	Histograms map[string]HistogramValue
}

// Counter returns the counter series value, or 0 if absent.
func (v Values) Counter(name string, labels ...Label) float64 {
	return v.Counters[name+renderLabels(labels)]
}

// Gauge returns the gauge series value, or 0 if absent.
func (v Values) Gauge(name string, labels ...Label) float64 {
	return v.Gauges[name+renderLabels(labels)]
}

// Histogram returns the histogram series state; ok is false if absent.
func (v Values) Histogram(name string, labels ...Label) (HistogramValue, bool) {
	h, ok := v.Histograms[name+renderLabels(labels)]
	return h, ok
}

// CounterDelta returns the change of a counter series between two
// snapshots taken from the same registry (v later, base earlier).
func (v Values) CounterDelta(base Values, name string, labels ...Label) float64 {
	return v.Counter(name, labels...) - base.Counter(name, labels...)
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Values {
	out := Values{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramValue),
	}
	for _, f := range r.sortedFamilies() {
		for _, in := range f.instruments() {
			switch v := in.(type) {
			case *Counter:
				out.Counters[f.name+v.labels] = v.Value()
			case *Gauge:
				out.Gauges[f.name+v.labels] = v.Value()
			case *Histogram:
				bounds, cum, _ := v.buckets()
				out.Histograms[f.name+v.labels] = HistogramValue{
					Bounds: append([]float64(nil), bounds...),
					Counts: cum,
					Sum:    v.Sum(),
					Count:  v.Count(),
				}
			}
		}
	}
	return out
}

// Snapshot copies the Default registry's current state.
func Snapshot() Values { return Default.Snapshot() }
