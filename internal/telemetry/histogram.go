package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default histogram bounds, tuned for latencies in
// seconds from sub-millisecond LAN round trips up to multi-second
// retry-with-backoff chains.
var DefBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket streaming histogram. Observations land in
// the first bucket whose upper bound is >= the value; values above the
// last bound land in an implicit +Inf overflow bucket. All updates are
// lock-free atomic adds, so concurrent Observe calls never contend on a
// mutex. Count, Sum and the per-bucket counts are each individually
// atomic; a concurrent reader may observe a snapshot mid-update (sum
// updated, count not yet), which is acceptable for monitoring.
type Histogram struct {
	labels string
	bounds []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(labels string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Dedup and drop non-finite bounds (+Inf is implicit).
	out := bs[:0]
	for _, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == b {
			continue
		}
		out = append(out, b)
	}
	return &Histogram{
		labels: labels,
		bounds: out,
		counts: make([]atomic.Uint64, len(out)+1),
	}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation within the containing bucket, assuming observations are
// uniform inside each bucket. The first bucket interpolates from 0 (or
// the bound itself if it is negative); the overflow bucket returns the
// last finite bound. Returns NaN when the histogram is empty or q is
// out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: best available estimate is its lower edge.
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			} else if h.bounds[i] < 0 {
				lo = h.bounds[i]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// buckets returns cumulative counts per bound plus the +Inf total, for
// Prometheus exposition ({le="bound"} series are cumulative).
func (h *Histogram) buckets() (bounds []float64, cumulative []uint64, infCount uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	infCount = cum + h.counts[len(h.bounds)].Load()
	return bounds, cumulative, infCount
}

func (h *Histogram) labelString() string { return h.labels }
